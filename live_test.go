package egoist

import (
	"sync"
	"testing"
	"time"
)

func TestLiveOverlayDataPlane(t *testing.T) {
	lo, err := StartLocalOverlay(LiveOptions{N: 6, K: 2, Epoch: 80 * time.Millisecond, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	defer lo.Stop()

	// Wait for convergence.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		ready := true
		for i := 0; i < lo.N(); i++ {
			if lo.Known(i) < lo.N()-1 {
				ready = false
				break
			}
		}
		if ready {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}

	var mu sync.Mutex
	var gotSrc int
	var gotPayload []byte
	lo.OnData(5, func(src int, payload []byte) {
		mu.Lock()
		gotSrc, gotPayload = src, append([]byte(nil), payload...)
		mu.Unlock()
	})

	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		_ = lo.Send(0, 5, []byte("facade"))
		time.Sleep(50 * time.Millisecond)
		mu.Lock()
		done := string(gotPayload) == "facade"
		mu.Unlock()
		if done {
			break
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if string(gotPayload) != "facade" || gotSrc != 0 {
		t.Fatalf("delivery failed: src=%d payload=%q", gotSrc, gotPayload)
	}
	d, _, _ := lo.DataStats(5)
	if d == 0 {
		t.Fatal("delivery counter not incremented")
	}
}

func TestLiveOverlayFileTransfer(t *testing.T) {
	lo, err := StartLocalOverlay(LiveOptions{N: 6, K: 2, Epoch: 80 * time.Millisecond, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	defer lo.Stop()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		ready := true
		for i := 0; i < lo.N(); i++ {
			if lo.Known(i) < lo.N()-1 {
				ready = false
				break
			}
		}
		if ready {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}

	sender := lo.FileEndpoint(0)
	receiver := lo.FileEndpoint(4)
	var mu sync.Mutex
	var got []byte
	receiver.OnFile(func(src int, id uint64, data []byte) {
		mu.Lock()
		got = data
		mu.Unlock()
	})
	blob := make([]byte, 20000)
	for i := range blob {
		blob[i] = byte(i * 7)
	}
	if _, err := sender.SendFile(4, blob, true); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(12 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		done := len(got) == len(blob)
		mu.Unlock()
		if done {
			break
		}
		receiver.Repair()
		time.Sleep(50 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != len(blob) {
		t.Fatalf("transfer incomplete: %d/%d bytes", len(got), len(blob))
	}
	for i := range blob {
		if got[i] != blob[i] {
			t.Fatalf("corruption at byte %d", i)
		}
	}
}

func TestLiveOverlayHybridBR(t *testing.T) {
	lo, err := StartLocalOverlay(LiveOptions{N: 6, K: 3, Policy: HybridBR, Epoch: 80 * time.Millisecond, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	defer lo.Stop()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if lo.Known(0) >= lo.N()-1 {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatal("HybridBR live overlay never converged")
}
