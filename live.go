package egoist

import (
	"fmt"
	"time"

	"egoist/internal/core"
	"egoist/internal/linkstate"
	"egoist/internal/overlay"
	"egoist/internal/topology"
	"egoist/internal/transfer"
)

// LiveOptions configures an in-process live overlay: N goroutine-driven
// nodes speaking the real link-state protocol over an in-memory datagram
// bus, with a synthetic wide-area delay oracle layered on the echo probes.
type LiveOptions struct {
	// N nodes with K links each.
	N, K int
	// Epoch is the wiring epoch T (default 250ms for demos; the paper's
	// deployment used 60s).
	Epoch time.Duration
	// Policy defaults to BR; Donated configures HybridBR backbone links.
	Policy  PolicyKind
	Donated int
	// Epsilon is the BR(ε) threshold.
	Epsilon float64
	// Seed drives the synthetic delay geometry.
	Seed int64
}

// LiveOverlay is a running in-process overlay.
type LiveOverlay struct {
	nodes []*overlay.Node
	bus   *linkstate.Bus
	// Delays is the synthetic one-way delay matrix behind the probes.
	Delays topology.DelayMatrix
}

// StartLocalOverlay launches an in-process live overlay. Call Stop when
// done.
func StartLocalOverlay(opts LiveOptions) (*LiveOverlay, error) {
	if opts.N < 2 || opts.K < 1 {
		return nil, fmt.Errorf("egoist: bad live options N=%d K=%d", opts.N, opts.K)
	}
	if opts.Epoch <= 0 {
		opts.Epoch = 250 * time.Millisecond
	}
	var policy core.Policy
	switch opts.Policy {
	case BR, "":
		policy = core.BRPolicy{}
	case HybridBR:
		donated := opts.Donated
		if donated == 0 {
			donated = 2
		}
		policy = core.BRPolicy{Donated: donated}
	case KRandom:
		policy = core.KRandom{}
	case KClosest:
		policy = core.KClosest{}
	case KRegular:
		policy = core.KRegular{}
	case FullMesh:
		policy = core.FullMesh{}
	default:
		return nil, fmt.Errorf("egoist: unknown policy %q", opts.Policy)
	}

	lo := &LiveOverlay{
		bus:    linkstate.NewBus(opts.N),
		Delays: topology.Waxman(opts.N, 120, newRand(opts.Seed)),
	}
	for i := 0; i < opts.N; i++ {
		boot := []int{(i + opts.N - 1) % opts.N}
		node, err := overlay.Start(overlay.Config{
			ID: i, N: opts.N, K: opts.K,
			Policy:    policy,
			Transport: lo.bus.Endpoint(i),
			Epoch:     opts.Epoch,
			Epsilon:   opts.Epsilon,
			Bootstrap: boot,
			DelayOracle: func(from, to int) float64 {
				return lo.Delays[from][to]
			},
			Seed: opts.Seed + int64(i),
		})
		if err != nil {
			lo.Stop()
			return nil, err
		}
		lo.nodes = append(lo.nodes, node)
	}
	return lo, nil
}

// Stop terminates every node and the bus.
func (lo *LiveOverlay) Stop() {
	for _, n := range lo.nodes {
		if n != nil {
			n.Stop()
		}
	}
	if lo.bus != nil {
		lo.bus.Close()
	}
}

// N returns the overlay size.
func (lo *LiveOverlay) N() int { return len(lo.nodes) }

// Neighbors returns node i's current neighbor set.
func (lo *LiveOverlay) Neighbors(i int) []int { return lo.nodes[i].Neighbors() }

// Known returns how many peers node i has discovered via LSA flooding.
func (lo *LiveOverlay) Known(i int) int { return len(lo.nodes[i].KnownNodes()) }

// Rewires returns node i's cumulative established links.
func (lo *LiveOverlay) Rewires(i int) int { return lo.nodes[i].Rewires() }

// Estimate returns node i's smoothed delay estimate toward j in ms.
func (lo *LiveOverlay) Estimate(i, j int) (float64, bool) { return lo.nodes[i].Estimate(j) }

// Wiring snapshots every node's neighbor set.
func (lo *LiveOverlay) Wiring() [][]int {
	out := make([][]int, len(lo.nodes))
	for i, n := range lo.nodes {
		out[i] = n.Neighbors()
	}
	return out
}

// Send routes a payload from node src to node dst over the overlay using
// hop-by-hop shortest-path forwarding — EGOIST's data plane.
func (lo *LiveOverlay) Send(src, dst int, payload []byte) error {
	return lo.nodes[src].Send(dst, payload)
}

// SendVia routes a payload from src to dst forcing the first overlay hop —
// the redirection primitive of the Sect. 6 applications.
func (lo *LiveOverlay) SendVia(src, dst, via int, payload []byte) error {
	return lo.nodes[src].SendVia(dst, via, payload)
}

// OnData installs node's delivery callback for overlay-routed payloads.
func (lo *LiveOverlay) OnData(node int, handler func(src int, payload []byte)) {
	lo.nodes[node].SetDataHandler(handler)
}

// DataStats returns (delivered, forwarded, dropped) counters for a node.
func (lo *LiveOverlay) DataStats(node int) (delivered, forwarded, dropped int) {
	return lo.nodes[node].DataStats()
}

// FileEndpoint attaches a multipath file-transfer manager (Sect. 6.1) to a
// node. It takes over the node's data handler, so use either FileEndpoint
// or OnData on a given node, not both.
func (lo *LiveOverlay) FileEndpoint(node int) *FileTransfer {
	return &FileTransfer{mgr: transfer.New(lo.nodes[node])}
}

// FileTransfer sends and receives chunked payloads over the overlay with
// parallel first-hop redirection and NACK-based loss repair.
type FileTransfer struct {
	mgr *transfer.Manager
}

// SendFile transfers data to dst; multipath spreads chunks over the
// sender's first-hop neighbors. It returns the transfer id.
func (ft *FileTransfer) SendFile(dst int, data []byte, multipath bool) (uint64, error) {
	return ft.mgr.Transfer(dst, data, 0, multipath)
}

// OnFile installs the completion callback for received transfers.
func (ft *FileTransfer) OnFile(f func(src int, id uint64, data []byte)) {
	ft.mgr.OnComplete(f)
}

// Repair triggers one NACK round for incomplete inbound transfers; call
// it periodically while receiving over a lossy path.
func (ft *FileTransfer) Repair() { ft.mgr.Tick() }
