// Command benchjson converts `go test -bench` text output into the
// BENCH_*.json artifact schema ({name, ns_per_op, allocs_per_op, n})
// and optionally gates the build against a committed baseline: any
// gated benchmark whose best-of ns/op regresses beyond the threshold
// fails the run.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 3x -count 3 . | \
//	    benchjson -out BENCH_go.json \
//	              -baseline ci/bench_baseline.json \
//	              -gate '^BenchmarkBestResponseScratch/scratch' \
//	              -threshold 1.25
//
// Repeated runs of the same benchmark (-count) are merged by taking the
// minimum ns/op — the least-noise estimate of the code's speed.
//
// The -json form skips parsing and gates records already in the
// artifact schema — e.g. the scale engine's per-epoch wall-clock
// records from egoist-bench:
//
//	benchjson -json BENCH_scale.json \
//	          -baseline ci/bench_baseline.json \
//	          -gate '^scale/n=10000/' -threshold 1.30
//
// The -serve form gates the publish-cost record family of
// BENCH_serve.json (from egoist-route -publish-bench) against
// ci/serve_baseline.json: the delta publication's p50 cost must stay
// under max_delta_publish_frac of the full recompile's p50 measured on
// the same publication stream:
//
//	benchjson -serve BENCH_serve.json -serve-baseline ci/serve_baseline.json
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"

	"egoist/internal/experiments"
)

// benchLine matches one benchmark result line. The -N GOMAXPROCS
// suffix is stripped so baselines are portable across runner shapes.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:.*?\s([\d.]+) allocs/op)?`)

func parse(r io.Reader) ([]experiments.BenchRecord, error) {
	best := map[string]experiments.BenchRecord{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		n, _ := strconv.Atoi(m[2])
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		allocs := 0.0
		if m[4] != "" {
			allocs, _ = strconv.ParseFloat(m[4], 64)
		}
		rec := experiments.BenchRecord{Name: m[1], NsPerOp: ns, AllocsPerOp: allocs, N: n}
		if prev, ok := best[m[1]]; !ok {
			best[m[1]] = rec
			order = append(order, m[1])
		} else if rec.NsPerOp < prev.NsPerOp {
			best[m[1]] = rec
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]experiments.BenchRecord, 0, len(order))
	for _, name := range order {
		out = append(out, best[name])
	}
	return out, nil
}

// gate compares current records against the baseline for names matching
// re and returns the list of regressions beyond threshold, plus how
// many current records the gate actually covered (zero means the gate
// is a no-op — the caller must treat that as an error, or a renamed
// benchmark silently disables the regression check forever).
func gate(cur, base []experiments.BenchRecord, re *regexp.Regexp, threshold float64) (regressions, missing []string, matched int) {
	baseBy := map[string]experiments.BenchRecord{}
	for _, b := range base {
		baseBy[b.Name] = b
	}
	for _, c := range cur {
		if !re.MatchString(c.Name) {
			continue
		}
		matched++
		b, ok := baseBy[c.Name]
		if !ok {
			missing = append(missing, c.Name)
			continue
		}
		if c.NsPerOp > b.NsPerOp*threshold {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.0f ns/op vs baseline %.0f ns/op (%.2fx > %.2fx allowed)",
				c.Name, c.NsPerOp, b.NsPerOp, c.NsPerOp/b.NsPerOp, threshold))
		}
	}
	return regressions, missing, matched
}

// gateServe enforces the publish-cost gate: BENCH_serve.json must
// carry a publish_full / publish_delta record pair (egoist-route
// -publish-bench) and the delta p50 must stay under the baseline's
// max_delta_publish_frac of the full-recompile p50. A missing record
// or an unset fraction is an error, not a silent pass — a renamed
// record must never disable the gate.
func gateServe(recsPath, basePath string) error {
	if basePath == "" {
		return fmt.Errorf("-serve needs -serve-baseline")
	}
	recs, err := experiments.ReadServeJSON(recsPath)
	if err != nil {
		return err
	}
	var full, delta *experiments.ServeRecord
	for i := range recs {
		switch recs[i].Name {
		case "publish_full":
			full = &recs[i]
		case "publish_delta":
			delta = &recs[i]
		}
	}
	if full == nil || delta == nil {
		return fmt.Errorf("%s: needs both publish_full and publish_delta records (run egoist-route -publish-bench)", recsPath)
	}
	if full.P50us <= 0 || delta.P50us <= 0 {
		return fmt.Errorf("%s: empty publish measurements (full p50 %.2fµs, delta p50 %.2fµs)", recsPath, full.P50us, delta.P50us)
	}
	bl, err := experiments.ReadServeBaseline(basePath)
	if err != nil {
		return err
	}
	if bl.MaxDeltaPublishFrac <= 0 {
		return fmt.Errorf("%s: no max_delta_publish_frac — the publish gate would be a no-op", basePath)
	}
	frac := delta.P50us / full.P50us
	if frac > bl.MaxDeltaPublishFrac {
		return fmt.Errorf("REGRESSION: delta publish p50 %.1fµs is %.1f%% of the full-recompile p50 %.1fµs (max %.0f%%)",
			delta.P50us, 100*frac, full.P50us, 100*bl.MaxDeltaPublishFrac)
	}
	fmt.Printf("benchjson: publish gate passed: delta p50 %.1fµs = %.1f%% of full p50 %.1fµs (max %.0f%%)\n",
		delta.P50us, 100*frac, full.P50us, 100*bl.MaxDeltaPublishFrac)
	return nil
}

func main() {
	var (
		in        = flag.String("in", "-", "bench output to read ('-' = stdin)")
		inJSON    = flag.String("json", "", "read records from this BENCH_*.json artifact instead of parsing bench text (for gating non-benchmark records, e.g. scale epoch times)")
		out       = flag.String("out", "", "write parsed records to this JSON file")
		baseline  = flag.String("baseline", "", "baseline JSON file to gate against")
		gateRe    = flag.String("gate", "", "regexp of benchmark names the gate applies to")
		threshold = flag.Float64("threshold", 1.25, "allowed ns/op ratio vs baseline before failing")
		serveJSON = flag.String("serve", "", "gate the publish records of this BENCH_serve.json artifact instead of parsing bench text")
		serveBase = flag.String("serve-baseline", "", "serve baseline file for -serve (needs max_delta_publish_frac)")
	)
	flag.Parse()

	if *serveJSON != "" {
		if err := gateServe(*serveJSON, *serveBase); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var recs []experiments.BenchRecord
	var err error
	if *inJSON != "" {
		recs, err = experiments.ReadBenchJSON(*inJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
	} else {
		var src io.Reader = os.Stdin
		if *in != "-" {
			f, err := os.Open(*in)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
				os.Exit(2)
			}
			defer f.Close()
			src = f
		}
		recs, err = parse(src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
	}
	if len(recs) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark records found")
		os.Exit(2)
	}
	if *out != "" {
		if err := experiments.WriteBenchJSON(*out, recs); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("benchjson: wrote %d records to %s\n", len(recs), *out)
	}
	if *baseline != "" && *gateRe != "" {
		re, err := regexp.Compile(*gateRe)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: bad -gate: %v\n", err)
			os.Exit(2)
		}
		base, err := experiments.ReadBenchJSON(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		regressions, missing, matched := gate(recs, base, re, *threshold)
		if matched == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: -gate %q matched no benchmark in the input — the gate would be a no-op\n", *gateRe)
			os.Exit(2)
		}
		for _, m := range missing {
			fmt.Printf("benchjson: note: %s has no baseline entry (add it to %s)\n", m, *baseline)
		}
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Printf("benchjson: gate passed (%s matched %d, %.2fx)\n", *gateRe, matched, *threshold)
	}
}
