package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"egoist/internal/clitest"
	"egoist/internal/experiments"
)

// TestMainInProcess drives the convert path and a passing gate in
// process for coverage (subprocess smoke binaries run uninstrumented;
// see clitest.RunMain).
func TestMainInProcess(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(in, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	outJSON := filepath.Join(dir, "out.json")
	clitest.RunMain(t, main, "benchjson", "-in", in, "-out", outJSON)
	base := filepath.Join(dir, "baseline.json")
	baseline := []experiments.BenchRecord{{Name: "BenchmarkBestResponseScratch/scratch", NsPerOp: 880000, N: 3}}
	data, err := json.Marshal(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(base, data, 0o644); err != nil {
		t.Fatal(err)
	}
	clitest.RunMain(t, main, "benchjson", "-in", in, "-out", outJSON,
		"-baseline", base, "-gate", "^BenchmarkBestResponseScratch/scratch$", "-threshold", "1.25")
}

// Smoke test: the unit tests in main_test.go cover parse and gate in
// process; this builds the real binary and runs the -in/-out pipeline
// the CI bench job invokes, asserting exit status and that the
// artifact parses back as BenchRecords.

// TestSmokeConvert converts a bench fixture to JSON end to end.
func TestSmokeConvert(t *testing.T) {
	bin := clitest.Build(t, "benchjson")
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(in, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	outJSON := filepath.Join(dir, "out.json")
	out, err := exec.Command(bin, "-in", in, "-out", outJSON).CombinedOutput()
	if err != nil {
		t.Fatalf("benchjson: %v\n%s", err, out)
	}
	data, err := os.ReadFile(outJSON)
	if err != nil {
		t.Fatal(err)
	}
	var recs []experiments.BenchRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatalf("artifact does not parse: %v\n%s", err, data)
	}
	if len(recs) == 0 {
		t.Fatal("no records converted")
	}
	found := false
	for _, r := range recs {
		if r.Name == "BenchmarkBestResponseScratch/scratch" && r.NsPerOp == 900000 {
			found = true
		}
	}
	if !found {
		t.Fatalf("best-of scratch record missing: %+v", recs)
	}
}

// TestSmokeGateTrips checks the regression gate exits non-zero when
// the current run is slower than the baseline beyond the threshold.
func TestSmokeGateTrips(t *testing.T) {
	bin := clitest.Build(t, "benchjson")
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(in, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(dir, "baseline.json")
	baseline := []experiments.BenchRecord{{Name: "BenchmarkBestResponseScratch/scratch", NsPerOp: 100000, N: 3}}
	data, err := json.Marshal(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(base, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-in", in, "-out", filepath.Join(dir, "out.json"),
		"-baseline", base, "-gate", "^BenchmarkBestResponseScratch/scratch$", "-threshold", "1.25").CombinedOutput()
	if err == nil {
		t.Fatalf("9x regression passed the 1.25x gate:\n%s", out)
	}
}
