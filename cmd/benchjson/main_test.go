package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"egoist/internal/clitest"
	"egoist/internal/experiments"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: egoist
BenchmarkBestResponseScratch/alloc-4         	       3	   1200000 ns/op	     200 B/op	      21 allocs/op
BenchmarkBestResponseScratch/scratch-4       	       3	   1000000 ns/op	      48 B/op	       1 allocs/op
BenchmarkBestResponseScratch/scratch-4       	       3	    900000 ns/op	      48 B/op	       1 allocs/op
BenchmarkBestResponseScratch/scratch-4       	       3	    950000 ns/op	      48 B/op	       1 allocs/op
BenchmarkAPSPInto-4                          	      10	    500000 ns/op
PASS
`

func TestParseMergesCountsAndStripsSuffix(t *testing.T) {
	recs, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]experiments.BenchRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	sc, ok := byName["BenchmarkBestResponseScratch/scratch"]
	if !ok {
		t.Fatalf("scratch record missing: %+v", recs)
	}
	if sc.NsPerOp != 900000 {
		t.Errorf("want best-of ns/op 900000, got %f", sc.NsPerOp)
	}
	if sc.AllocsPerOp != 1 {
		t.Errorf("want 1 alloc/op, got %f", sc.AllocsPerOp)
	}
	if r := byName["BenchmarkAPSPInto"]; r.NsPerOp != 500000 || r.AllocsPerOp != 0 {
		t.Errorf("APSPInto parsed wrong: %+v", r)
	}
}

func TestGate(t *testing.T) {
	base := []experiments.BenchRecord{
		{Name: "BenchmarkBestResponseScratch/scratch", NsPerOp: 1000},
	}
	re := regexp.MustCompile(`^BenchmarkBestResponseScratch/scratch$`)
	pass, _, matched := gate([]experiments.BenchRecord{
		{Name: "BenchmarkBestResponseScratch/scratch", NsPerOp: 1200},
	}, base, re, 1.25)
	if len(pass) != 0 || matched != 1 {
		t.Errorf("1.2x should pass a 1.25x gate: %v (matched %d)", pass, matched)
	}
	fail, _, _ := gate([]experiments.BenchRecord{
		{Name: "BenchmarkBestResponseScratch/scratch", NsPerOp: 2000},
	}, base, re, 1.25)
	if len(fail) != 1 {
		t.Errorf("2x should fail a 1.25x gate: %v", fail)
	}
	_, missing, _ := gate([]experiments.BenchRecord{
		{Name: "BenchmarkBestResponseScratch/other", NsPerOp: 10},
	}, base, regexp.MustCompile(`^BenchmarkBestResponseScratch/`), 1.25)
	if len(missing) != 1 {
		t.Errorf("missing baseline entries should be reported: %v", missing)
	}
	if _, _, matched := gate([]experiments.BenchRecord{
		{Name: "BenchmarkRenamed", NsPerOp: 10},
	}, base, re, 1.25); matched != 0 {
		t.Errorf("renamed benchmark should match nothing, got %d", matched)
	}
}

// TestGateServe walks the publish-cost gate through every verdict: a
// healthy ratio passes, a regression fails, and every way of silently
// disabling the gate (missing record, empty measurement, unset
// fraction, missing files) is an error rather than a pass.
func TestGateServe(t *testing.T) {
	dir := t.TempDir()
	recs := filepath.Join(dir, "BENCH_serve.json")
	base := filepath.Join(dir, "serve_baseline.json")
	write := func(path, body string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	good := `[{"name":"publish_full","p50_us":700},{"name":"publish_delta","p50_us":150}]`
	write(recs, good)
	write(base, `{"min_onehop_qps":1,"max_delta_publish_frac":0.25}`)
	if err := gateServe(recs, base); err != nil {
		t.Fatalf("21%% ratio failed a 25%% gate: %v", err)
	}
	write(recs, `[{"name":"publish_full","p50_us":700},{"name":"publish_delta","p50_us":600}]`)
	if err := gateServe(recs, base); err == nil || !strings.Contains(err.Error(), "REGRESSION") {
		t.Fatalf("86%% ratio passed a 25%% gate: %v", err)
	}
	write(recs, `[{"name":"publish_full","p50_us":700}]`)
	if err := gateServe(recs, base); err == nil {
		t.Fatal("missing publish_delta record passed")
	}
	write(recs, `[{"name":"publish_full","p50_us":0},{"name":"publish_delta","p50_us":0}]`)
	if err := gateServe(recs, base); err == nil {
		t.Fatal("empty measurements passed")
	}
	write(recs, good)
	write(base, `{"min_onehop_qps":1}`)
	if err := gateServe(recs, base); err == nil {
		t.Fatal("baseline without max_delta_publish_frac passed (no-op gate)")
	}
	if err := gateServe(recs, ""); err == nil {
		t.Fatal("missing -serve-baseline passed")
	}
	if err := gateServe(filepath.Join(dir, "missing.json"), base); err == nil {
		t.Fatal("unreadable records passed")
	}
	write(recs, good)
	if err := gateServe(recs, filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("unreadable baseline passed")
	}
}

// TestMainServeGate drives the -serve branch of main in process.
func TestMainServeGate(t *testing.T) {
	dir := t.TempDir()
	recs := filepath.Join(dir, "BENCH_serve.json")
	base := filepath.Join(dir, "serve_baseline.json")
	if err := os.WriteFile(recs, []byte(`[{"name":"publish_full","p50_us":700},{"name":"publish_delta","p50_us":150}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(base, []byte(`{"min_onehop_qps":1,"max_delta_publish_frac":0.25}`), 0o644); err != nil {
		t.Fatal(err)
	}
	clitest.RunMain(t, main, "benchjson", "-serve", recs, "-serve-baseline", base)
}
