package main

import (
	"regexp"
	"strings"
	"testing"

	"egoist/internal/experiments"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: egoist
BenchmarkBestResponseScratch/alloc-4         	       3	   1200000 ns/op	     200 B/op	      21 allocs/op
BenchmarkBestResponseScratch/scratch-4       	       3	   1000000 ns/op	      48 B/op	       1 allocs/op
BenchmarkBestResponseScratch/scratch-4       	       3	    900000 ns/op	      48 B/op	       1 allocs/op
BenchmarkBestResponseScratch/scratch-4       	       3	    950000 ns/op	      48 B/op	       1 allocs/op
BenchmarkAPSPInto-4                          	      10	    500000 ns/op
PASS
`

func TestParseMergesCountsAndStripsSuffix(t *testing.T) {
	recs, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]experiments.BenchRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	sc, ok := byName["BenchmarkBestResponseScratch/scratch"]
	if !ok {
		t.Fatalf("scratch record missing: %+v", recs)
	}
	if sc.NsPerOp != 900000 {
		t.Errorf("want best-of ns/op 900000, got %f", sc.NsPerOp)
	}
	if sc.AllocsPerOp != 1 {
		t.Errorf("want 1 alloc/op, got %f", sc.AllocsPerOp)
	}
	if r := byName["BenchmarkAPSPInto"]; r.NsPerOp != 500000 || r.AllocsPerOp != 0 {
		t.Errorf("APSPInto parsed wrong: %+v", r)
	}
}

func TestGate(t *testing.T) {
	base := []experiments.BenchRecord{
		{Name: "BenchmarkBestResponseScratch/scratch", NsPerOp: 1000},
	}
	re := regexp.MustCompile(`^BenchmarkBestResponseScratch/scratch$`)
	pass, _, matched := gate([]experiments.BenchRecord{
		{Name: "BenchmarkBestResponseScratch/scratch", NsPerOp: 1200},
	}, base, re, 1.25)
	if len(pass) != 0 || matched != 1 {
		t.Errorf("1.2x should pass a 1.25x gate: %v (matched %d)", pass, matched)
	}
	fail, _, _ := gate([]experiments.BenchRecord{
		{Name: "BenchmarkBestResponseScratch/scratch", NsPerOp: 2000},
	}, base, re, 1.25)
	if len(fail) != 1 {
		t.Errorf("2x should fail a 1.25x gate: %v", fail)
	}
	_, missing, _ := gate([]experiments.BenchRecord{
		{Name: "BenchmarkBestResponseScratch/other", NsPerOp: 10},
	}, base, regexp.MustCompile(`^BenchmarkBestResponseScratch/`), 1.25)
	if len(missing) != 1 {
		t.Errorf("missing baseline entries should be reported: %v", missing)
	}
	if _, _, matched := gate([]experiments.BenchRecord{
		{Name: "BenchmarkRenamed", NsPerOp: 10},
	}, base, re, 1.25); matched != 0 {
		t.Errorf("renamed benchmark should match nothing, got %d", matched)
	}
}
