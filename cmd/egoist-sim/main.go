// Command egoist-sim runs a single simulated EGOIST overlay and prints its
// measurements: mean routing cost with confidence interval, efficiency,
// re-wiring counts and protocol overheads.
//
// Examples:
//
//	egoist-sim -n 50 -k 5 -policy BR -metric delay-ping
//	egoist-sim -n 50 -k 5 -policy HybridBR -churn 0.02
//	egoist-sim -n 50 -k 2 -cheaters 8 -epochs 40
//	egoist-sim -scenario ci/scenarios/churn-storm.json
//
// With -scenario the flags above are ignored: the declarative spec
// (the same format the scenario runner, examples/churn and the CI
// matrix consume) fully describes the run, executed here on the full
// simulator unless the spec pins an engine.
package main

import (
	"flag"
	"fmt"
	"os"

	"egoist"
	"egoist/internal/scenario"
	"egoist/internal/vis"
)

// runScenario executes a declarative spec file and prints its metrics.
func runScenario(path string, workers int) {
	spec, err := scenario.Load(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "egoist-sim: %v\n", err)
		os.Exit(2)
	}
	engine := spec.Engine
	if engine == "" {
		engine = scenario.EngineFull // this is the full simulator's CLI
	}
	m, runErr := scenario.Run(spec, scenario.Options{Engine: engine, Workers: workers})
	if m != nil {
		fmt.Printf("scenario %s on %s: n=%d k=%d seed=%d\n", m.Scenario, m.Engine, m.N, m.K, m.Seed)
		fmt.Printf("epochs=%d converged=%v churn=%.4f joins=%d leaves=%d\n",
			m.Epochs, m.Converged, m.ChurnRate, m.Joins, m.Leaves)
		fmt.Printf("%-7s %14s %9s\n", "epoch", "cost", "rewires")
		for e := 0; e < m.Epochs; e++ {
			fmt.Printf("%-7d %14.2f %9d\n", e, m.CostPerEpoch[e], m.RewiresPerEpoch[e])
		}
		fmt.Printf("pre-event cost=%.2f final=%.2f recovery epochs=%d\n",
			m.PreEventCost, m.FinalCost, m.RecoveryEpochs)
	}
	if runErr != nil {
		// Expectation violations still print the record above for
		// diagnosis, then fail.
		fmt.Fprintf(os.Stderr, "egoist-sim: %v\n", runErr)
		os.Exit(1)
	}
}

func main() {
	var (
		n        = flag.Int("n", 50, "overlay size")
		k        = flag.Int("k", 5, "neighbors per node")
		policy   = flag.String("policy", "BR", "BR | k-Random | k-Closest | k-Regular | HybridBR | Full mesh")
		metric   = flag.String("metric", "delay-ping", "delay-ping | delay-coords | load | bandwidth")
		seed     = flag.Int64("seed", 1, "random seed")
		epochs   = flag.Int("epochs", 25, "measured epochs (after warmup)")
		warm     = flag.Int("warm", 15, "warmup epochs")
		epsilon  = flag.Float64("epsilon", 0, "BR(eps) re-wiring threshold, e.g. 0.1")
		churnR   = flag.Float64("churn", 0, "approximate churn rate in events/epoch (0 = none)")
		cheaters = flag.Int("cheaters", 0, "number of free riders announcing 2x costs")
		delays   = flag.String("delays", "", "all-pairs delay trace file (replaces the synthetic underlay; see egoist-trace)")
		topoSVG  = flag.String("topo", "", "write the final overlay topology as SVG to this file")
		workers  = flag.Int("workers", 0, "parallel best-response workers per epoch (0 = NumCPU, 1 = sequential; identical results either way)")
		scenFile = flag.String("scenario", "", "run a declarative scenario spec file instead of the ad-hoc flags")
	)
	flag.Parse()

	if *scenFile != "" {
		runScenario(*scenFile, *workers)
		return
	}

	opts := egoist.SimOptions{
		N: *n, K: *k, Seed: *seed,
		Policy: egoist.PolicyKind(*policy), Metric: egoist.MetricKind(*metric),
		Epsilon:    *epsilon,
		WarmEpochs: *warm, MeasureEpochs: *epochs,
		Cheaters: *cheaters,
		Workers:  *workers,
	}
	if *delays != "" {
		m, err := egoist.LoadDelayTrace(*delays)
		if err != nil {
			fmt.Fprintf(os.Stderr, "egoist-sim: %v\n", err)
			os.Exit(1)
		}
		opts.Delays = m
		opts.N = m.N()
		fmt.Printf("loaded delay trace: %d nodes\n", m.N())
	}
	if *churnR > 0 {
		total := 2 / *churnR
		sched, err := egoist.MakeChurn(*n, float64(*warm+*epochs), total*5/6, total/6, *seed+1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "egoist-sim: churn: %v\n", err)
			os.Exit(1)
		}
		opts.Churn = sched
		fmt.Printf("churn: requested %.4f, generated %.4f events/epoch\n",
			*churnR, egoist.ChurnRate(sched, float64(*warm+*epochs)))
	}

	res, err := egoist.Simulate(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "egoist-sim: %v\n", err)
		os.Exit(1)
	}

	dir := "lower is better"
	if egoist.MetricKind(*metric).HigherIsBetter() {
		dir = "higher is better"
	}
	fmt.Printf("policy=%s metric=%s n=%d k=%d\n", *policy, *metric, opts.N, *k)
	fmt.Printf("mean cost          : %.2f ± %.2f (%s)\n", res.MeanCost, res.CI95, dir)
	fmt.Printf("mean efficiency    : %.5f\n", res.MeanEfficiency)
	fmt.Printf("steady re-wirings  : %.2f links/epoch\n", res.SteadyRewires)
	fmt.Printf("LSA traffic        : %.0f bits total\n", res.LSABits)
	for cat, bits := range res.ProbeBits {
		fmt.Printf("probe traffic %-6s: %.0f bits total\n", cat, bits)
	}
	fmt.Printf("final wiring (first 5 nodes):\n")
	for i := 0; i < 5 && i < len(res.FinalWiring); i++ {
		fmt.Printf("  node %2d -> %v\n", i, res.FinalWiring[i])
	}
	if *topoSVG != "" {
		f, err := os.Create(*topoSVG)
		if err != nil {
			fmt.Fprintf(os.Stderr, "egoist-sim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		g := vis.FromWiring(res.FinalWiring, nil)
		if err := vis.Topology(f, g, vis.CirclePositions(len(res.FinalWiring)), -1); err != nil {
			fmt.Fprintf(os.Stderr, "egoist-sim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("topology written to %s\n", *topoSVG)
	}
}
