package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"egoist/internal/clitest"
)

// TestMainInProcess drives both main() paths in process for coverage
// (subprocess smoke binaries run uninstrumented; see clitest.RunMain):
// the ad-hoc flag path and the -scenario path.
func TestMainInProcess(t *testing.T) {
	clitest.RunMain(t, main, "egoist-sim", "-n", "16", "-k", "2", "-warm", "1", "-epochs", "2", "-workers", "2")
	clitest.RunMain(t, main, "egoist-sim", "-scenario", writeSmokeSpec(t), "-workers", "2")
}

// Smoke tests: build the real binary and drive it end to end on
// tiny inputs — main() and its flag plumbing had no coverage at all
// before these, so a broken flag default or a panic in the print path
// could ship while every internal package stayed green.

// smokeSpecJSON is a tiny scale-engine scenario that finishes in well
// under a second.
const smokeSpecJSON = `{
  "name": "cli-smoke",
  "engine": "scale",
  "n": 60,
  "k": 2,
  "seed": 7,
  "epochs": 2,
  "sample": "uniform:8"
}
`

func writeSmokeSpec(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "smoke.json")
	if err := os.WriteFile(path, []byte(smokeSpecJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSmokeScenarioRun runs a declarative spec through the -scenario
// path: exit 0 and the metrics header on stdout.
func TestSmokeScenarioRun(t *testing.T) {
	bin := clitest.Build(t, "egoist-sim")
	out, err := exec.Command(bin, "-scenario", writeSmokeSpec(t), "-workers", "2").CombinedOutput()
	if err != nil {
		t.Fatalf("egoist-sim -scenario: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"scenario cli-smoke on scale", "epochs=2", "rewires"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

// TestSmokeAdHocRun runs the classic flag path on a tiny overlay.
func TestSmokeAdHocRun(t *testing.T) {
	bin := clitest.Build(t, "egoist-sim")
	out, err := exec.Command(bin, "-n", "16", "-k", "2", "-warm", "1", "-epochs", "2", "-workers", "2").CombinedOutput()
	if err != nil {
		t.Fatalf("egoist-sim: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"mean cost", "mean efficiency", "final wiring"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

// TestSmokeBadScenarioFails checks a malformed spec exits non-zero
// with a diagnostic instead of running garbage.
func TestSmokeBadScenarioFails(t *testing.T) {
	bin := clitest.Build(t, "egoist-sim")
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"name":"bad","n":1,"k":5,"epochs":0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-scenario", path).CombinedOutput()
	if err == nil {
		t.Fatalf("invalid spec accepted:\n%s", out)
	}
}
