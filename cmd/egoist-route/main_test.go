package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"egoist/internal/clitest"
)

// TestMainInProcess drives the converge→bench→save path in process for
// coverage (subprocess binaries run uninstrumented).
func TestMainInProcess(t *testing.T) {
	dir := t.TempDir()
	clitest.RunMain(t, main, "egoist-route",
		"-n", "120", "-workers", "2", "-bench", "-bench-duration", "100ms",
		"-bench-json", filepath.Join(dir, "BENCH_serve.json"),
		"-save-wiring", filepath.Join(dir, "wiring.json"))
}

// TestSmokeBenchArtifact converges a small overlay, runs the load
// generator, and checks the BENCH_serve.json artifact has both lookup
// paths with sane numbers.
func TestSmokeBenchArtifact(t *testing.T) {
	bin := clitest.Build(t, "egoist-route")
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "BENCH_serve.json")
	out, err := exec.Command(bin, "-n", "150", "-workers", "2",
		"-bench", "-bench-duration", "200ms", "-bench-json", jsonPath).CombinedOutput()
	if err != nil {
		t.Fatalf("egoist-route: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"converged=", "bench serve_onehop", "bench serve_route", "wrote"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var recs []ServeRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatalf("artifact not parseable: %v\n%s", err, data)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	for _, rec := range recs {
		if rec.N != 150 || rec.Lookups <= 0 || rec.QPS <= 0 || rec.Seconds <= 0 {
			t.Errorf("degenerate record %+v", rec)
		}
		if rec.P50us <= 0 || rec.P99us < rec.P50us {
			t.Errorf("bad quantiles %+v", rec)
		}
	}
}

// TestSmokeWiringRoundTrip saves a converged wiring, reloads it, and
// benches from the file — the serve-without-converging path.
func TestSmokeWiringRoundTrip(t *testing.T) {
	bin := clitest.Build(t, "egoist-route")
	dir := t.TempDir()
	wiring := filepath.Join(dir, "wiring.json")
	out, err := exec.Command(bin, "-n", "150", "-workers", "2", "-save-wiring", wiring).CombinedOutput()
	if err != nil {
		t.Fatalf("save: %v\n%s", err, out)
	}
	out, err = exec.Command(bin, "-wiring", wiring, "-bench", "-bench-duration", "100ms", "-modes", "onehop").CombinedOutput()
	if err != nil {
		t.Fatalf("load+bench: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "loaded wiring: n=150") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

// TestSmokeBaselineGate checks both gate outcomes: a met floor passes,
// an absurd floor fails the process.
func TestSmokeBaselineGate(t *testing.T) {
	bin := clitest.Build(t, "egoist-route")
	dir := t.TempDir()
	wiring := filepath.Join(dir, "wiring.json")
	if out, err := exec.Command(bin, "-n", "150", "-workers", "2", "-save-wiring", wiring).CombinedOutput(); err != nil {
		t.Fatalf("save: %v\n%s", err, out)
	}
	lenient := filepath.Join(dir, "lenient.json")
	if err := os.WriteFile(lenient, []byte(`{"min_onehop_qps": 10}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-wiring", wiring, "-bench", "-bench-duration", "100ms",
		"-modes", "onehop", "-baseline", lenient).CombinedOutput()
	if err != nil {
		t.Fatalf("lenient gate failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "serve gate: one-hop") {
		t.Fatalf("no gate line:\n%s", out)
	}
	absurd := filepath.Join(dir, "absurd.json")
	if err := os.WriteFile(absurd, []byte(`{"min_onehop_qps": 1e15}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(bin, "-wiring", wiring, "-bench", "-bench-duration", "100ms",
		"-modes", "onehop", "-baseline", absurd).CombinedOutput(); err == nil {
		t.Fatalf("absurd gate passed:\n%s", out)
	}
}

// TestSmokeBadWiringRejected covers the loader's validation.
func TestSmokeBadWiringRejected(t *testing.T) {
	bin := clitest.Build(t, "egoist-route")
	dir := t.TempDir()
	for name, body := range map[string]string{
		"not-json":     "nope",
		"short":        `{"n": 5, "k": 2, "wiring": [[1],[2]]}`,
		"out-of-range": `{"n": 3, "k": 1, "wiring": [[1],[9],[0]]}`,
	} {
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if out, err := exec.Command(bin, "-wiring", path).CombinedOutput(); err == nil {
			t.Errorf("%s accepted:\n%s", name, out)
		}
	}
}
