package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"egoist/internal/clitest"
	"egoist/internal/experiments"
)

// TestMainInProcess drives the converge→bench→save path in process for
// coverage (subprocess binaries run uninstrumented).
func TestMainInProcess(t *testing.T) {
	dir := t.TempDir()
	clitest.RunMain(t, main, "egoist-route",
		"-n", "120", "-workers", "2", "-bench", "-bench-duration", "100ms",
		"-bench-json", filepath.Join(dir, "BENCH_serve.json"),
		"-save-wiring", filepath.Join(dir, "wiring.json"))
}

// TestMainPublishBench drives the -publish-bench path in process: the
// artifact must carry the publish_full/publish_delta pair measured on
// the same publication stream, alongside the lookup record, and the
// lenient throughput baseline must pass.
func TestMainPublishBench(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "BENCH_serve.json")
	lenient := filepath.Join(dir, "lenient.json")
	if err := os.WriteFile(lenient, []byte(`{"min_onehop_qps": 10}`), 0o644); err != nil {
		t.Fatal(err)
	}
	clitest.RunMain(t, main, "egoist-route",
		"-n", "120", "-workers", "2", "-bench", "-bench-duration", "50ms",
		"-modes", "onehop", "-publish-bench", "1",
		"-bench-json", jsonPath, "-baseline", lenient)
	recs, err := experiments.ReadServeJSON(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]experiments.ServeRecord{}
	for _, rec := range recs {
		byName[rec.Name] = rec
	}
	for _, want := range []string{"serve_onehop", "publish_full", "publish_delta"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("artifact missing %s record: %+v", want, recs)
		}
	}
	full, delta := byName["publish_full"], byName["publish_delta"]
	if full.Lookups <= 0 || full.Lookups != delta.Lookups {
		t.Fatalf("publication counts diverge: full %d vs delta %d (must be the same stream)",
			full.Lookups, delta.Lookups)
	}
	if full.P50us <= 0 || delta.P50us <= 0 {
		t.Fatalf("degenerate publish quantiles: full %+v delta %+v", full, delta)
	}
}

// TestGateOutcomes covers the serve baseline gate's verdicts directly
// (the failing ones call os.Exit through main, so they can't run via
// RunMain).
func TestGateOutcomes(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "baseline.json")
	write := func(body string) {
		t.Helper()
		if err := os.WriteFile(base, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	onehop := []ServeRecord{{Name: "serve_onehop", QPS: 500}}
	write(`{"min_onehop_qps": 100}`)
	if err := gate(onehop, base); err != nil {
		t.Fatalf("met floor failed: %v", err)
	}
	write(`{"min_onehop_qps": 1000}`)
	if err := gate(onehop, base); err == nil {
		t.Fatal("missed floor passed")
	}
	write(`{}`)
	if err := gate(onehop, base); err == nil {
		t.Fatal("floorless baseline passed (no-op gate)")
	}
	write(`{"min_onehop_qps": 100}`)
	if err := gate([]ServeRecord{{Name: "publish_full", P50us: 1}}, base); err == nil {
		t.Fatal("gate passed without a serve_onehop record")
	}
	if err := gate(onehop, filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("unreadable baseline passed")
	}

	// The multi-core gates: absolute floor, scaling ratio, and the
	// missing-record shape (a baseline that names the gate must fail
	// when the run produced no multicore record, not skip silently).
	multi := []ServeRecord{
		{Name: "serve_onehop", QPS: 500},
		{Name: "serve_onehop_multicore", QPS: 1800, Cores: 4},
	}
	write(`{"min_onehop_qps": 100, "min_onehop_qps_multicore": 1500, "min_multicore_scaling": 3.0}`)
	if err := gate(multi, base); err != nil {
		t.Fatalf("met multicore gates failed: %v", err)
	}
	write(`{"min_onehop_qps": 100, "min_onehop_qps_multicore": 2500}`)
	if err := gate(multi, base); err == nil {
		t.Fatal("missed multicore floor passed")
	}
	write(`{"min_onehop_qps": 100, "min_multicore_scaling": 4.0}`)
	if err := gate(multi, base); err == nil {
		t.Fatal("missed scaling floor passed (1800/500 = 3.6x < 4x)")
	}
	write(`{"min_onehop_qps": 100, "min_multicore_scaling": 3.0}`)
	if err := gate(onehop, base); err == nil {
		t.Fatal("scaling gate passed without a serve_onehop_multicore record")
	}

	// The binary-vs-JSON batch gate.
	batches := []ServeRecord{
		{Name: "serve_onehop", QPS: 500},
		{Name: "serve_batchjson", QPS: 300000, Protocol: "http-json", Batch: 256},
		{Name: "serve_batchbin", QPS: 900000, Protocol: "tcp-binary", Batch: 256},
	}
	write(`{"min_onehop_qps": 100, "min_binary_batch_speedup": 2.0}`)
	if err := gate(batches, base); err != nil {
		t.Fatalf("met binary speedup failed: %v", err)
	}
	write(`{"min_onehop_qps": 100, "min_binary_batch_speedup": 4.0}`)
	if err := gate(batches, base); err == nil {
		t.Fatal("missed binary speedup passed (3x < 4x)")
	}
	write(`{"min_onehop_qps": 100, "min_binary_batch_speedup": 2.0}`)
	if err := gate(onehop, base); err == nil {
		t.Fatal("binary gate passed without batch records")
	}
}

// TestMainMulticoreAndBatchModes drives the sharded server and both
// batch transports in process: -cores 2 must add *_multicore records
// with the cores column, the batch modes must carry protocol/batch
// columns, and the lenient multi-core + binary gates must pass.
func TestMainMulticoreAndBatchModes(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "BENCH_serve.json")
	lenient := filepath.Join(dir, "lenient.json")
	// Throughput floors lenient enough for a loaded 1-core CI box; the
	// scaling and absolute multicore gates are exercised at their real
	// values only on the 4-core runner.
	if err := os.WriteFile(lenient, []byte(`{"min_onehop_qps": 10, "min_onehop_qps_multicore": 10, "min_binary_batch_speedup": 1.2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	clitest.RunMain(t, main, "egoist-route",
		"-n", "120", "-workers", "2", "-cores", "2", "-batch", "64",
		"-bench", "-bench-duration", "100ms",
		"-modes", "onehop,route,batchjson,batchbin",
		"-bench-json", jsonPath, "-baseline", lenient)
	recs, err := experiments.ReadServeJSON(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]experiments.ServeRecord{}
	for _, rec := range recs {
		byName[rec.Name] = rec
	}
	for _, want := range []string{"serve_onehop", "serve_onehop_multicore", "serve_route", "serve_route_multicore", "serve_batchjson", "serve_batchbin"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("artifact missing %s record: %+v", want, recs)
		}
	}
	multi := byName["serve_onehop_multicore"]
	if multi.Cores != 2 || multi.Clients != 2 || multi.Lookups <= 0 {
		t.Fatalf("multicore record %+v, want cores=2 clients=2", multi)
	}
	bj, bb := byName["serve_batchjson"], byName["serve_batchbin"]
	if bj.Protocol != "http-json" || bb.Protocol != "tcp-binary" || bj.Batch != 64 || bb.Batch != 64 {
		t.Fatalf("batch records missing protocol/batch columns: %+v %+v", bj, bb)
	}
	if bb.QPS <= bj.QPS {
		t.Fatalf("binary batch (%.0f qps) not faster than JSON (%.0f qps)", bb.QPS, bj.QPS)
	}
}

// TestLoadWiringValidation covers the loader in process: a saved file
// round-trips, and each malformed shape is rejected with an error.
func TestLoadWiringValidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.json")
	wf := &wiringFile{N: 3, K: 1, Seed: 5, Epoch: 2, Wiring: [][]int{{1}, {2}, {0}}}
	if err := saveWiring(path, wf); err != nil {
		t.Fatal(err)
	}
	got, err := loadWiring(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 3 || got.K != 1 || got.Seed != 5 || got.Epoch != 2 || len(got.Wiring) != 3 {
		t.Fatalf("round trip mangled the file: %+v", got)
	}
	if _, err := loadWiring(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	for name, body := range map[string]string{
		"not-json":     "nope",
		"short":        `{"n": 5, "k": 2, "wiring": [[1],[2]]}`,
		"out-of-range": `{"n": 3, "k": 1, "wiring": [[1],[9],[0]]}`,
	} {
		bad := filepath.Join(dir, name+".json")
		if err := os.WriteFile(bad, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := loadWiring(bad); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestSmokeBenchArtifact converges a small overlay, runs the load
// generator, and checks the BENCH_serve.json artifact has both lookup
// paths with sane numbers.
func TestSmokeBenchArtifact(t *testing.T) {
	bin := clitest.Build(t, "egoist-route")
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "BENCH_serve.json")
	out, err := exec.Command(bin, "-n", "150", "-workers", "2",
		"-bench", "-bench-duration", "200ms", "-bench-json", jsonPath).CombinedOutput()
	if err != nil {
		t.Fatalf("egoist-route: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"converged=", "bench serve_onehop", "bench serve_route", "wrote"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var recs []ServeRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatalf("artifact not parseable: %v\n%s", err, data)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	for _, rec := range recs {
		if rec.N != 150 || rec.Lookups <= 0 || rec.QPS <= 0 || rec.Seconds <= 0 {
			t.Errorf("degenerate record %+v", rec)
		}
		if rec.P50us <= 0 || rec.P99us < rec.P50us {
			t.Errorf("bad quantiles %+v", rec)
		}
	}
}

// TestSmokeWiringRoundTrip saves a converged wiring, reloads it, and
// benches from the file — the serve-without-converging path.
func TestSmokeWiringRoundTrip(t *testing.T) {
	bin := clitest.Build(t, "egoist-route")
	dir := t.TempDir()
	wiring := filepath.Join(dir, "wiring.json")
	out, err := exec.Command(bin, "-n", "150", "-workers", "2", "-save-wiring", wiring).CombinedOutput()
	if err != nil {
		t.Fatalf("save: %v\n%s", err, out)
	}
	out, err = exec.Command(bin, "-wiring", wiring, "-bench", "-bench-duration", "100ms", "-modes", "onehop").CombinedOutput()
	if err != nil {
		t.Fatalf("load+bench: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "loaded wiring: n=150") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

// TestSmokeBaselineGate checks both gate outcomes: a met floor passes,
// an absurd floor fails the process.
func TestSmokeBaselineGate(t *testing.T) {
	bin := clitest.Build(t, "egoist-route")
	dir := t.TempDir()
	wiring := filepath.Join(dir, "wiring.json")
	if out, err := exec.Command(bin, "-n", "150", "-workers", "2", "-save-wiring", wiring).CombinedOutput(); err != nil {
		t.Fatalf("save: %v\n%s", err, out)
	}
	lenient := filepath.Join(dir, "lenient.json")
	if err := os.WriteFile(lenient, []byte(`{"min_onehop_qps": 10}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-wiring", wiring, "-bench", "-bench-duration", "100ms",
		"-modes", "onehop", "-baseline", lenient).CombinedOutput()
	if err != nil {
		t.Fatalf("lenient gate failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "serve gate: one-hop") {
		t.Fatalf("no gate line:\n%s", out)
	}
	absurd := filepath.Join(dir, "absurd.json")
	if err := os.WriteFile(absurd, []byte(`{"min_onehop_qps": 1e15}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(bin, "-wiring", wiring, "-bench", "-bench-duration", "100ms",
		"-modes", "onehop", "-baseline", absurd).CombinedOutput(); err == nil {
		t.Fatalf("absurd gate passed:\n%s", out)
	}
}

// TestSmokeBadWiringRejected covers the loader's validation.
func TestSmokeBadWiringRejected(t *testing.T) {
	bin := clitest.Build(t, "egoist-route")
	dir := t.TempDir()
	for name, body := range map[string]string{
		"not-json":     "nope",
		"short":        `{"n": 5, "k": 2, "wiring": [[1],[2]]}`,
		"out-of-range": `{"n": 3, "k": 1, "wiring": [[1],[9],[0]]}`,
	} {
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if out, err := exec.Command(bin, "-wiring", path).CombinedOutput(); err == nil {
			t.Errorf("%s accepted:\n%s", name, out)
		}
	}
}
