// Command egoist-route is the data-plane face of the repository: it
// obtains a converged overlay wiring (by running the large-scale
// sampled engine, or by loading a wiring file saved earlier), compiles
// it into an immutable plane.Snapshot, and then serves route queries —
// over HTTP, or against an embedded load generator that measures
// lookup throughput and latency quantiles and writes the
// BENCH_serve.json artifact CI gates on.
//
// Examples:
//
//	egoist-route -n 10000 -sample demand:500 -workers 8 \
//	    -bench -bench-json BENCH_serve.json -baseline ci/serve_baseline.json
//	egoist-route -n 1000 -save-wiring wiring.json
//	egoist-route -wiring wiring.json -http 127.0.0.1:8080
//
// The load generator hits the in-process serving layer (the same
// Server the HTTP handlers call), so the reported numbers are the
// lookup paths themselves: the O(k) one-hop decision and the cached
// shortest-path route, not HTTP framing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"egoist/internal/churn"
	"egoist/internal/experiments"
	"egoist/internal/plane"
	"egoist/internal/sampling"
	"egoist/internal/sim"
	"egoist/internal/underlay"
)

// wiringFile is the JSON schema of -save-wiring / -wiring: everything
// needed to recompile the exact snapshot (the delay oracle is derived
// from n and seed, like the engine's default underlay).
type wiringFile struct {
	N      int     `json:"n"`
	K      int     `json:"k"`
	Seed   int64   `json:"seed"`
	Epoch  int64   `json:"epoch"`
	Wiring [][]int `json:"wiring"`
}

// ServeRecord is one load-generator or publish-bench measurement —
// the BENCH_serve.json schema, shared with cmd/benchjson via
// internal/experiments.
type ServeRecord = experiments.ServeRecord

func main() {
	var (
		n        = flag.Int("n", 10000, "overlay size for the convergence run")
		k        = flag.Int("k", 0, "degree budget (0 = 8, or 4 below 1000 nodes)")
		sample   = flag.String("sample", "", "sampling spec strategy:m (default demand:<n/20, capped 500>)")
		epochs   = flag.Int("epochs", 0, "epoch cap for the convergence run (0 = engine default)")
		seed     = flag.Int64("seed", 2008, "random seed")
		workers  = flag.Int("workers", 0, "convergence-run parallelism (0 = NumCPU; wiring is identical for any value)")
		wiringIn = flag.String("wiring", "", "load this wiring file instead of running the engine")
		saveW    = flag.String("save-wiring", "", "save the converged wiring to this file")
		httpAddr = flag.String("http", "", "serve route queries over HTTP on this address")
		bench    = flag.Bool("bench", false, "run the embedded load generator")
		benchDur = flag.Duration("bench-duration", 3*time.Second, "load-generator duration per mode")
		clients  = flag.Int("clients", 1, "concurrent load-generator clients (1 = the single-core number)")
		modes    = flag.String("modes", "onehop,route", "comma-separated lookup paths to bench: onehop, route")
		benchOut = flag.String("bench-json", "", "write BENCH_serve.json records to this path")
		baseline = flag.String("baseline", "", "gate against this serve-baseline file (fails below min_onehop_qps)")
		cacheRow = flag.Int("cache-rows", 256, "shortest-path row cache size (rows)")
		pubBench = flag.Int("publish-bench", 0, "run the publication-cost bench over this many churned epochs (0 = off): times every sub-round publication both as a delta Patch and as a full Compile and emits publish_delta/publish_full records")
	)
	flag.Parse()

	srv := plane.NewServer()
	var snap *plane.Snapshot
	var kUsed int
	seedUsed := *seed
	if *wiringIn != "" {
		wf, err := loadWiring(*wiringIn)
		if err != nil {
			fatal(err)
		}
		net, err := underlay.NewLite(wf.N, wf.Seed+1)
		if err != nil {
			fatal(err)
		}
		snap = plane.Compile(wf.Epoch, wf.Wiring, nil, net, plane.Options{RouteCacheRows: *cacheRow})
		kUsed = wf.K
		// The file's seed, not the flag's: the delay oracle is derived
		// from it, and a re-save must keep the pair consistent.
		seedUsed = wf.Seed
		fmt.Printf("loaded wiring: n=%d k=%d epoch=%d arcs=%d live=%d\n",
			wf.N, wf.K, wf.Epoch, snap.NumArcs(), snap.NumLive())
	} else {
		var err error
		snap, kUsed, err = converge(srv, *n, *k, *sample, *epochs, *seed, *workers, *cacheRow)
		if err != nil {
			fatal(err)
		}
	}
	srv.Publish(snap)

	if *saveW != "" {
		wf := wiringFile{N: snap.N(), K: kUsed, Seed: seedUsed, Epoch: snap.Epoch()}
		wf.Wiring = wiringOf(snap)
		if err := saveWiring(*saveW, &wf); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *saveW)
	}

	if *bench || *pubBench > 0 {
		var recs []ServeRecord
		if *bench {
			for _, mode := range strings.Split(*modes, ",") {
				mode = strings.TrimSpace(mode)
				if mode == "" {
					continue
				}
				rec, err := runBench(srv, snap, kUsed, mode, *clients, *benchDur, seedUsed)
				if err != nil {
					fatal(err)
				}
				recs = append(recs, rec)
				fmt.Printf("bench %-12s clients=%-3d lookups=%-10d qps=%-11.0f p50=%.2fµs p90=%.2fµs p99=%.2fµs\n",
					rec.Name, rec.Clients, rec.Lookups, rec.QPS, rec.P50us, rec.P90us, rec.P99us)
			}
		}
		if *pubBench > 0 {
			pubRecs, err := runPublishBench(*n, *k, *sample, seedUsed, *workers, *pubBench, *cacheRow)
			if err != nil {
				fatal(err)
			}
			recs = append(recs, pubRecs...)
		}
		if *benchOut != "" {
			if err := experiments.WriteServeJSON(*benchOut, recs); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (%d records)\n", *benchOut, len(recs))
		}
		if *baseline != "" {
			if err := gate(recs, *baseline); err != nil {
				fmt.Fprintf(os.Stderr, "egoist-route: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("serving /route /routes /snapshot on http://%s\n", ln.Addr())
		hs := &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		_ = hs.Close()
	}
}

// converge runs the scale engine to a converged wiring, publishing
// every epoch to srv on the way (the serving layer swaps snapshots
// while the control plane still re-wires — exactly the production
// shape), and returns the final snapshot.
func converge(srv *plane.Server, n, k int, sampleSpec string, epochs int, seed int64, workers, cacheRows int) (*plane.Snapshot, int, error) {
	if k <= 0 {
		k = 8
		if n < 1000 {
			k = 4
		}
	}
	if sampleSpec == "" {
		m := n / 20
		if m < k+2 {
			m = k + 2
		}
		if m > 500 {
			m = 500
		}
		sampleSpec = fmt.Sprintf("demand:%d", m)
	}
	spec, err := sampling.ParseSpec(sampleSpec)
	if err != nil {
		return nil, 0, err
	}
	net, err := underlay.NewLite(n, seed+1)
	if err != nil {
		return nil, 0, err
	}
	var snap *plane.Snapshot
	cfg := sim.ScaleConfig{
		N: n, K: k, Seed: seed, Sample: spec,
		MaxEpochs: epochs, Workers: workers, Net: net,
		OnEpoch: func(epoch int, wiring [][]int, active []bool) {
			snap = plane.Compile(int64(epoch), wiring, active, net, plane.Options{RouteCacheRows: cacheRows})
			srv.Publish(snap)
		},
	}
	start := time.Now()
	fmt.Printf("converging: n=%d k=%d sample=%s workers=%d\n", n, k, sampleSpec, workers)
	res, err := sim.RunScale(cfg)
	if err != nil {
		return nil, 0, err
	}
	fmt.Printf("converged=%v epochs=%d arcs=%d (%v)\n",
		res.Converged, res.Epochs, snap.NumArcs(), time.Since(start).Round(time.Millisecond))
	return snap, k, nil
}

// wiringOf decodes a snapshot's adjacency back into wiring rows (only
// used by -save-wiring, which wants the compiled truth, not the
// engine's transient state).
func wiringOf(snap *plane.Snapshot) [][]int {
	w := make([][]int, snap.N())
	for u := 0; u < snap.N(); u++ {
		if snap.Live(u) {
			w[u] = snap.Neighbors(u)
		}
	}
	return w
}

func loadWiring(path string) (*wiringFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var wf wiringFile
	if err := json.Unmarshal(data, &wf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if wf.N < 2 || len(wf.Wiring) != wf.N {
		return nil, fmt.Errorf("%s: wiring has %d rows for n=%d", path, len(wf.Wiring), wf.N)
	}
	for u, ws := range wf.Wiring {
		for _, v := range ws {
			if v < 0 || v >= wf.N {
				return nil, fmt.Errorf("%s: node %d wires out-of-range target %d", path, u, v)
			}
		}
	}
	return &wf, nil
}

func saveWiring(path string, wf *wiringFile) error {
	data, err := json.MarshalIndent(wf, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// latHist is a log-scale latency histogram: bucket i spans
// [base·g^i, base·g^(i+1)) nanoseconds with g = 1.25, covering ~45ns
// to ~80s in 96 buckets — ±12% quantile resolution, no allocation on
// the hot path.
type latHist struct {
	buckets [96]int64
	count   int64
}

const histBase = 45.0 // ns
var histLogG = math.Log(1.25)

func (h *latHist) add(ns int64) {
	idx := 0
	if f := float64(ns); f > histBase {
		idx = int(math.Log(f/histBase) / histLogG)
		if idx >= len(h.buckets) {
			idx = len(h.buckets) - 1
		}
	}
	h.buckets[idx]++
	h.count++
}

func (h *latHist) merge(o *latHist) {
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.count += o.count
}

// quantile returns the q-quantile in microseconds (the geometric mean
// of the bucket's bounds).
func (h *latHist) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := int64(q * float64(h.count))
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen > target {
			lo := histBase * math.Exp(float64(i)*histLogG)
			return lo * math.Sqrt(1.25) / 1e3
		}
	}
	return histBase * math.Exp(float64(len(h.buckets))*histLogG) / 1e3
}

// runBench hammers one lookup path with the given number of client
// goroutines for the given duration. The route mode draws sources from
// a 64-node hot set so the row cache behaves as it does for a skewed
// production workload (sources repeat); one-hop has no per-source
// state to warm.
func runBench(srv *plane.Server, snap *plane.Snapshot, k int, mode string, clients int, dur time.Duration, seed int64) (ServeRecord, error) {
	n := snap.N()
	if snap.NumLive() == 0 {
		return ServeRecord{}, fmt.Errorf("snapshot has no live nodes to bench against")
	}
	var hot []int
	switch mode {
	case "onehop":
	case "route":
		rng := rand.New(rand.NewSource(seed + 555))
		seen := map[int]bool{}
		for len(hot) < 64 && len(hot) < snap.NumLive() {
			v := rng.Intn(n)
			if snap.Live(v) && !seen[v] {
				seen[v] = true
				hot = append(hot, v)
			}
		}
		sort.Ints(hot)
		// Warm the cache so the measurement is the serving path, not
		// the one-time row fill.
		for _, src := range hot {
			snap.RouteCost(src, (src+1)%n)
		}
	default:
		return ServeRecord{}, fmt.Errorf("unknown bench mode %q (want onehop or route)", mode)
	}

	hists := make([]*latHist, clients)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(dur)
	for c := 0; c < clients; c++ {
		hists[c] = &latHist{}
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)*7919))
			h := hists[c]
			for b := 0; ; b++ {
				// Check the clock once per 64 lookups: a syscall-free
				// time source would be nicer, but this keeps the
				// per-lookup overhead at two monotonic reads.
				if b%64 == 0 && !time.Now().Before(deadline) {
					return
				}
				var src, dst int
				if mode == "route" {
					src = hot[rng.Intn(len(hot))]
					dst = rng.Intn(n)
				} else {
					src, dst = rng.Intn(n), rng.Intn(n)
				}
				t0 := time.Now()
				var err error
				if mode == "route" {
					_, _, _, err = srv.Route(src, dst)
				} else {
					_, _, err = srv.OneHop(src, dst)
				}
				if err != nil {
					panic(err) // ids are in range and a snapshot is published
				}
				h.add(time.Since(t0).Nanoseconds())
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	total := &latHist{}
	for _, h := range hists {
		total.merge(h)
	}
	return ServeRecord{
		Name:    "serve_" + mode,
		N:       n,
		K:       k,
		Epoch:   snap.Epoch(),
		Clients: clients,
		Seconds: elapsed,
		Lookups: total.count,
		QPS:     float64(total.count) / elapsed,
		P50us:   total.quantile(0.50),
		P90us:   total.quantile(0.90),
		P99us:   total.quantile(0.99),
	}, nil
}

// gate enforces the serve baseline: the one-hop record must meet the
// committed minimum throughput.
func gate(recs []ServeRecord, path string) error {
	bl, err := experiments.ReadServeBaseline(path)
	if err != nil {
		return err
	}
	if bl.MinOneHopQPS <= 0 {
		return fmt.Errorf("%s: no min_onehop_qps", path)
	}
	for _, rec := range recs {
		if rec.Name == "serve_onehop" {
			if rec.QPS < bl.MinOneHopQPS {
				return fmt.Errorf("one-hop throughput %.0f lookups/sec below the %.0f floor in %s",
					rec.QPS, bl.MinOneHopQPS, path)
			}
			fmt.Printf("serve gate: one-hop %.0f lookups/sec >= %.0f floor\n", rec.QPS, bl.MinOneHopQPS)
			return nil
		}
	}
	return fmt.Errorf("no serve_onehop record to gate against %s", path)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "egoist-route: %v\n", err)
	os.Exit(1)
}

// runPublishBench measures sub-epoch publication cost under churn: a
// fresh scale run (same n/k/sampling defaults as the serve run) plays
// the given number of epochs over an exponential background churn
// process, and every sub-round publication is executed both ways — a
// full from-scratch Compile and a delta Patch of the previous snapshot
// — so BENCH_serve.json carries the two cost columns measured on the
// identical publication stream. The two timings alternate order across
// publications to cancel allocator warm-up bias, and one route row is
// kept warm so the Patch timing includes its real carry/invalidate
// work, not just the CSR splice.
func runPublishBench(n, k int, sampleSpec string, seed int64, workers, epochs, cacheRows int) ([]ServeRecord, error) {
	if k <= 0 {
		k = 8
		if n < 1000 {
			k = 4
		}
	}
	if sampleSpec == "" {
		m := n / 20
		if m < k+2 {
			m = k + 2
		}
		if m > 500 {
			m = 500
		}
		sampleSpec = fmt.Sprintf("demand:%d", m)
	}
	spec, err := sampling.ParseSpec(sampleSpec)
	if err != nil {
		return nil, err
	}
	oracle, err := underlay.NewLite(n, seed+1)
	if err != nil {
		return nil, err
	}
	sched, err := churn.GenerateSynthetic(churn.SyntheticConfig{
		N: n, Horizon: float64(epochs),
		On:   churn.Exponential{Mean: 60},
		Off:  churn.Exponential{Mean: 12},
		Seed: seed + 101, StartOn: 0.9,
	})
	if err != nil {
		return nil, err
	}
	var (
		prev            *plane.Snapshot
		seq             int64
		deltaHist       latHist
		fullHist        latHist
		deltaNs, fullNs int64
		changedRows     int64
	)
	opts := plane.Options{RouteCacheRows: cacheRows}
	cfg := sim.ScaleConfig{
		N: n, K: k, Seed: seed, Sample: spec,
		MaxEpochs: epochs, Workers: workers, Net: oracle,
		Churn: sched, ConvergedFrac: -1,
		OnPublish: func(pub sim.Publication) {
			if pub.Full {
				prev = plane.Compile(seq, pub.Wiring, pub.Active, oracle, opts)
				seq++
				return
			}
			var next, full *plane.Snapshot
			timeFull := func() {
				t := time.Now()
				full = plane.Compile(seq, pub.Wiring, pub.Active, oracle, opts)
				fullNs += time.Since(t).Nanoseconds()
				fullHist.add(time.Since(t).Nanoseconds())
			}
			timeDelta := func() {
				t := time.Now()
				next = prev.Patch(seq, pub.Changed, pub.Wiring, pub.Active)
				deltaNs += time.Since(t).Nanoseconds()
				deltaHist.add(time.Since(t).Nanoseconds())
			}
			if seq%2 == 0 {
				timeFull()
				timeDelta()
			} else {
				timeDelta()
				timeFull()
			}
			_ = full
			prev = next
			seq++
			changedRows += int64(len(pub.Changed))
			prev.RouteCost(int(seq)%n, (int(seq)+1)%n)
		},
	}
	fmt.Printf("publish bench: n=%d k=%d sample=%s epochs=%d churn=exp(60,12)\n", n, k, sampleSpec, epochs)
	if _, err := sim.RunScale(cfg); err != nil {
		return nil, err
	}
	if fullHist.count == 0 {
		return nil, fmt.Errorf("publish bench ran no publications")
	}
	mk := func(name string, h *latHist, totalNs int64) ServeRecord {
		secs := float64(totalNs) / 1e9
		return ServeRecord{
			Name: name, N: n, K: k, Epoch: int64(epochs), Clients: 1,
			Seconds: secs, Lookups: h.count, QPS: float64(h.count) / secs,
			P50us: h.quantile(0.50), P90us: h.quantile(0.90), P99us: h.quantile(0.99),
		}
	}
	recs := []ServeRecord{
		mk("publish_full", &fullHist, fullNs),
		mk("publish_delta", &deltaHist, deltaNs),
	}
	for _, rec := range recs {
		fmt.Printf("bench %-13s publications=%-6d p50=%.2fµs p90=%.2fµs p99=%.2fµs\n",
			rec.Name, rec.Lookups, rec.P50us, rec.P90us, rec.P99us)
	}
	fmt.Printf("publish bench: delta p50 is %.1f%% of full-recompile p50 (%.1f changed rows/publication)\n",
		100*recs[1].P50us/recs[0].P50us, float64(changedRows)/float64(fullHist.count))
	return recs, nil
}
