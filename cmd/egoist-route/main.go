// Command egoist-route is the data-plane face of the repository: it
// obtains a converged overlay wiring (by running the large-scale
// sampled engine, or by loading a wiring file saved earlier), compiles
// it into an immutable plane.Snapshot, and then serves route queries —
// over HTTP, or against an embedded load generator that measures
// lookup throughput and latency quantiles and writes the
// BENCH_serve.json artifact CI gates on.
//
// Examples:
//
//	egoist-route -n 10000 -sample demand:500 -workers 8 \
//	    -bench -bench-json BENCH_serve.json -baseline ci/serve_baseline.json
//	egoist-route -n 1000 -save-wiring wiring.json
//	egoist-route -wiring wiring.json -http 127.0.0.1:8080
//
// The load generator hits the in-process serving layer (the same
// Server the HTTP handlers call), so the reported numbers are the
// lookup paths themselves: the O(k) one-hop decision and the cached
// shortest-path route, not HTTP framing.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"egoist/internal/churn"
	"egoist/internal/experiments"
	"egoist/internal/obs"
	"egoist/internal/plane"
	"egoist/internal/sampling"
	"egoist/internal/sim"
	"egoist/internal/underlay"
)

// wiringFile is the JSON schema of -save-wiring / -wiring: everything
// needed to recompile the exact snapshot (the delay oracle is derived
// from n and seed, like the engine's default underlay).
type wiringFile struct {
	N      int     `json:"n"`
	K      int     `json:"k"`
	Seed   int64   `json:"seed"`
	Epoch  int64   `json:"epoch"`
	Wiring [][]int `json:"wiring"`
}

// ServeRecord is one load-generator or publish-bench measurement —
// the BENCH_serve.json schema, shared with cmd/benchjson via
// internal/experiments.
type ServeRecord = experiments.ServeRecord

func main() {
	var (
		n         = flag.Int("n", 10000, "overlay size for the convergence run")
		k         = flag.Int("k", 0, "degree budget (0 = 8, or 4 below 1000 nodes)")
		sample    = flag.String("sample", "", "sampling spec strategy:m (default demand:<n/20, capped 500>)")
		epochs    = flag.Int("epochs", 0, "epoch cap for the convergence run (0 = engine default)")
		seed      = flag.Int64("seed", 2008, "random seed")
		workers   = flag.Int("workers", 0, "convergence-run parallelism (0 = NumCPU; wiring is identical for any value)")
		wiringIn  = flag.String("wiring", "", "load this wiring file instead of running the engine")
		saveW     = flag.String("save-wiring", "", "save the converged wiring to this file")
		httpAddr  = flag.String("http", "", "serve route queries over HTTP on this address")
		bench     = flag.Bool("bench", false, "run the embedded load generator")
		benchDur  = flag.Duration("bench-duration", 3*time.Second, "load-generator duration per mode")
		clients   = flag.Int("clients", 1, "concurrent load-generator clients (1 = the single-core number)")
		modes     = flag.String("modes", "onehop,route", "comma-separated lookup paths to bench: onehop, route, batchjson, batchbin")
		cores     = flag.Int("cores", 1, "server shards (0 = NumCPU); above 1 the onehop/route benches add *_multicore records with one pinned client per shard")
		batchSz   = flag.Int("batch", 256, "pairs per request in the batchjson/batchbin bench modes")
		binAddr   = flag.String("binary", "", "serve the length-prefixed binary batch protocol on this TCP address")
		benchOut  = flag.String("bench-json", "", "write BENCH_serve.json records to this path")
		baseline  = flag.String("baseline", "", "gate against this serve-baseline file (fails below min_onehop_qps)")
		cacheRow  = flag.Int("cache-rows", 256, "shortest-path row cache size (rows)")
		pprofFlag = flag.Bool("pprof", false, "also mount net/http/pprof under /debug/pprof/ on the -http mux")
		pubBench  = flag.Int("publish-bench", 0, "run the publication-cost bench over this many churned epochs (0 = off): times every sub-round publication both as a delta Patch and as a full Compile and emits publish_delta/publish_full records")
	)
	flag.Parse()

	srv := plane.NewServerShards(*cores)
	var snap *plane.Snapshot
	var kUsed int
	seedUsed := *seed
	if *wiringIn != "" {
		wf, err := loadWiring(*wiringIn)
		if err != nil {
			fatal(err)
		}
		net, err := underlay.NewLite(wf.N, wf.Seed+1)
		if err != nil {
			fatal(err)
		}
		snap = plane.Compile(wf.Epoch, wf.Wiring, nil, net, plane.Options{RouteCacheRows: *cacheRow})
		kUsed = wf.K
		// The file's seed, not the flag's: the delay oracle is derived
		// from it, and a re-save must keep the pair consistent.
		seedUsed = wf.Seed
		fmt.Printf("loaded wiring: n=%d k=%d epoch=%d arcs=%d live=%d\n",
			wf.N, wf.K, wf.Epoch, snap.NumArcs(), snap.NumLive())
	} else {
		var err error
		snap, kUsed, err = converge(srv, *n, *k, *sample, *epochs, *seed, *workers, *cacheRow)
		if err != nil {
			fatal(err)
		}
	}
	srv.Publish(snap)

	if *saveW != "" {
		wf := wiringFile{N: snap.N(), K: kUsed, Seed: seedUsed, Epoch: snap.Epoch()}
		wf.Wiring = wiringOf(snap)
		if err := saveWiring(*saveW, &wf); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *saveW)
	}

	if *bench || *pubBench > 0 {
		var recs []ServeRecord
		if *bench {
			report := func(rec ServeRecord) {
				recs = append(recs, rec)
				fmt.Printf("bench %-22s clients=%-3d lookups=%-10d qps=%-11.0f p50=%.2fµs p90=%.2fµs p99=%.2fµs\n",
					rec.Name, rec.Clients, rec.Lookups, rec.QPS, rec.P50us, rec.P90us, rec.P99us)
			}
			for _, mode := range strings.Split(*modes, ",") {
				mode = strings.TrimSpace(mode)
				if mode == "" {
					continue
				}
				switch mode {
				case "onehop", "route":
					rec, err := runBench(srv, snap, kUsed, mode, *clients, *benchDur, seedUsed)
					if err != nil {
						fatal(err)
					}
					report(rec)
					if srv.Shards() > 1 {
						// The multi-core record: one pinned client per
						// shard, same lookup path.
						rec, err := runBench(srv, snap, kUsed, mode, srv.Shards(), *benchDur, seedUsed)
						if err != nil {
							fatal(err)
						}
						rec.Name += "_multicore"
						rec.Cores = srv.Shards()
						report(rec)
					}
				case "batchjson", "batchbin":
					rec, err := runBatchBench(srv, snap, kUsed, mode, *clients, *batchSz, *benchDur, seedUsed)
					if err != nil {
						fatal(err)
					}
					report(rec)
				default:
					fatal(fmt.Errorf("unknown bench mode %q (want onehop, route, batchjson, or batchbin)", mode))
				}
			}
		}
		if *pubBench > 0 {
			pubRecs, err := runPublishBench(*n, *k, *sample, seedUsed, *workers, *pubBench, *cacheRow)
			if err != nil {
				fatal(err)
			}
			recs = append(recs, pubRecs...)
		}
		if *benchOut != "" {
			if err := experiments.WriteServeJSON(*benchOut, recs); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (%d records)\n", *benchOut, len(recs))
		}
		if *baseline != "" {
			if err := gate(recs, *baseline); err != nil {
				fmt.Fprintf(os.Stderr, "egoist-route: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if *httpAddr != "" || *binAddr != "" {
		var hs *http.Server
		var binLn net.Listener
		if *httpAddr != "" {
			ln, err := net.Listen("tcp", *httpAddr)
			if err != nil {
				fatal(err)
			}
			reg := obs.NewRegistry()
			srv.EnableMetrics(reg)
			mux := http.NewServeMux()
			mux.Handle("/", srv.Handler())
			mux.Handle("/metrics", reg.Handler())
			if *pprofFlag {
				obs.MountPprof(mux)
			}
			fmt.Printf("serving /route /routes /routes.bin /snapshot /metrics on http://%s\n", ln.Addr())
			hs = &http.Server{Handler: mux}
			go func() { _ = hs.Serve(ln) }()
		}
		if *binAddr != "" {
			var err error
			binLn, err = net.Listen("tcp", *binAddr)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("serving binary batch protocol on tcp://%s\n", binLn.Addr())
			go func() { _ = srv.ServeBinary(binLn) }()
		}
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		if hs != nil {
			_ = hs.Close()
		}
		if binLn != nil {
			_ = binLn.Close()
		}
	}
}

// converge runs the scale engine to a converged wiring, publishing
// every epoch to srv on the way (the serving layer swaps snapshots
// while the control plane still re-wires — exactly the production
// shape), and returns the final snapshot.
func converge(srv *plane.Server, n, k int, sampleSpec string, epochs int, seed int64, workers, cacheRows int) (*plane.Snapshot, int, error) {
	if k <= 0 {
		k = 8
		if n < 1000 {
			k = 4
		}
	}
	if sampleSpec == "" {
		m := n / 20
		if m < k+2 {
			m = k + 2
		}
		if m > 500 {
			m = 500
		}
		sampleSpec = fmt.Sprintf("demand:%d", m)
	}
	spec, err := sampling.ParseSpec(sampleSpec)
	if err != nil {
		return nil, 0, err
	}
	net, err := underlay.NewLite(n, seed+1)
	if err != nil {
		return nil, 0, err
	}
	var snap *plane.Snapshot
	cfg := sim.ScaleConfig{
		N: n, K: k, Seed: seed, Sample: spec,
		MaxEpochs: epochs, Workers: workers, Net: net,
		OnEpoch: func(epoch int, wiring [][]int, active []bool) {
			snap = plane.Compile(int64(epoch), wiring, active, net, plane.Options{RouteCacheRows: cacheRows})
			srv.Publish(snap)
		},
	}
	start := time.Now()
	fmt.Printf("converging: n=%d k=%d sample=%s workers=%d\n", n, k, sampleSpec, workers)
	res, err := sim.RunScale(cfg)
	if err != nil {
		return nil, 0, err
	}
	fmt.Printf("converged=%v epochs=%d arcs=%d (%v)\n",
		res.Converged, res.Epochs, snap.NumArcs(), time.Since(start).Round(time.Millisecond))
	return snap, k, nil
}

// wiringOf decodes a snapshot's adjacency back into wiring rows (only
// used by -save-wiring, which wants the compiled truth, not the
// engine's transient state).
func wiringOf(snap *plane.Snapshot) [][]int {
	w := make([][]int, snap.N())
	for u := 0; u < snap.N(); u++ {
		if snap.Live(u) {
			w[u] = snap.Neighbors(u)
		}
	}
	return w
}

func loadWiring(path string) (*wiringFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var wf wiringFile
	if err := json.Unmarshal(data, &wf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if wf.N < 2 || len(wf.Wiring) != wf.N {
		return nil, fmt.Errorf("%s: wiring has %d rows for n=%d", path, len(wf.Wiring), wf.N)
	}
	for u, ws := range wf.Wiring {
		for _, v := range ws {
			if v < 0 || v >= wf.N {
				return nil, fmt.Errorf("%s: node %d wires out-of-range target %d", path, u, v)
			}
		}
	}
	return &wf, nil
}

func saveWiring(path string, wf *wiringFile) error {
	data, err := json.MarshalIndent(wf, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// bucketSlice flattens a histogram's merged bucket vector for the
// LatBuckets field of a ServeRecord. The bucket scheme (and the
// quantile math the record's p50/p90/p99 come from) lives in
// internal/obs — this binary's private histogram moved there verbatim,
// so the reported quantiles are bit-identical to the pre-move ones.
func bucketSlice(h *obs.Histogram) []int64 {
	m := h.Merged()
	return append([]int64(nil), m[:]...)
}

// runBench hammers one lookup path with the given number of client
// goroutines for the given duration, each pinned to its own server
// shard (with clients <= shards no two clients share a cache or a
// counter — the multi-core scaling shape). The route mode draws sources
// from a 64-node hot set so the row cache behaves as it does for a
// skewed production workload (sources repeat), and warms it the
// production way: the priming queries feed the per-source counters,
// and a re-publish lets the server's hot-row precompute seed every
// shard. The measured loops are the zero-alloc paths (Shard.OneHop,
// Shard.AppendRoute with a recycled buffer).
func runBench(srv *plane.Server, snap *plane.Snapshot, k int, mode string, clients int, dur time.Duration, seed int64) (ServeRecord, error) {
	n := snap.N()
	if snap.NumLive() == 0 {
		return ServeRecord{}, fmt.Errorf("snapshot has no live nodes to bench against")
	}
	var hot []int
	switch mode {
	case "onehop":
	case "route":
		rng := rand.New(rand.NewSource(seed + 555))
		seen := map[int]bool{}
		for len(hot) < 64 && len(hot) < snap.NumLive() {
			v := rng.Intn(n)
			if snap.Live(v) && !seen[v] {
				seen[v] = true
				hot = append(hot, v)
			}
		}
		sort.Ints(hot)
		// Prime the hot-row counters, then re-publish: the measurement
		// is the serving path over publish-warmed rows, not the
		// one-time row fill.
		for _, src := range hot {
			if _, _, err := srv.Shard(0).RouteCost(src, (src+1)%n); err != nil {
				return ServeRecord{}, err
			}
		}
		srv.Publish(srv.Current())
	default:
		return ServeRecord{}, fmt.Errorf("unknown bench mode %q (want onehop or route)", mode)
	}

	// One padded histogram cell per client: no shared cache lines in the
	// measured loops, one merge at read time.
	hist := obs.NewHistogram(clients)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(dur)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sh := srv.Shard(c)
			rng := rand.New(rand.NewSource(seed + int64(c)*7919))
			var buf []int32
			for b := 0; ; b++ {
				// Check the clock once per 64 lookups: a syscall-free
				// time source would be nicer, but this keeps the
				// per-lookup overhead at two monotonic reads.
				if b%64 == 0 && !time.Now().Before(deadline) {
					return
				}
				var src, dst int
				if mode == "route" {
					src = hot[rng.Intn(len(hot))]
					dst = rng.Intn(n)
				} else {
					src, dst = rng.Intn(n), rng.Intn(n)
				}
				t0 := time.Now()
				var err error
				if mode == "route" {
					var path []int32
					path, _, _, err = sh.AppendRoute(src, dst, buf)
					buf = path[:0]
				} else {
					_, _, err = sh.OneHop(src, dst)
				}
				if err != nil {
					panic(err) // ids are in range and a snapshot is published
				}
				hist.ObserveShard(c, time.Since(t0).Nanoseconds())
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	count := hist.Count()
	return ServeRecord{
		Name:         "serve_" + mode,
		N:            n,
		K:            k,
		Epoch:        snap.Epoch(),
		Clients:      clients,
		Seconds:      elapsed,
		Lookups:      count,
		QPS:          float64(count) / elapsed,
		P50us:        hist.QuantileUS(0.50),
		P90us:        hist.QuantileUS(0.90),
		P99us:        hist.QuantileUS(0.99),
		LatBuckets:   bucketSlice(hist),
		BucketScheme: obs.BucketScheme,
	}, nil
}

// batchWireRequest / batchWireResponse mirror the JSON wire shape of
// POST /routes (the server's types are internal to plane; the bench is
// a real external client and pays real encode/decode costs).
type batchWireRequest struct {
	Mode  string   `json:"mode"`
	Pairs [][2]int `json:"pairs"`
}

type batchWireResponse struct {
	Epoch   int64 `json:"epoch"`
	Results []struct {
		Cost float64 `json:"cost"`
		Ok   bool    `json:"ok"`
	} `json:"results"`
}

// runBatchBench measures batched one-hop lookups through a real
// loopback transport: mode batchjson drives POST /routes (JSON
// marshal/unmarshal per batch), batchbin drives the length-prefixed
// binary protocol over TCP with reused buffers. Identical pair
// streams, so the two records differ only in protocol cost — the
// binary-vs-JSON CI gate compares their QPS. Quantiles are per-batch
// round-trip latency; Lookups counts pairs.
func runBatchBench(srv *plane.Server, snap *plane.Snapshot, k int, mode string, clients, batch int, dur time.Duration, seed int64) (ServeRecord, error) {
	n := snap.N()
	if batch < 1 || batch > 10000 {
		return ServeRecord{}, fmt.Errorf("batch size %d outside [1,10000]", batch)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return ServeRecord{}, err
	}
	defer ln.Close()
	rec := ServeRecord{
		Name: "serve_" + mode, N: n, K: k, Epoch: snap.Epoch(),
		Clients: clients, Batch: batch,
	}
	if srv.Shards() > 1 {
		rec.Cores = srv.Shards()
	}
	switch mode {
	case "batchjson":
		rec.Protocol = "http-json"
		hs := &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		defer hs.Close()
	case "batchbin":
		rec.Protocol = "tcp-binary"
		go func() { _ = srv.ServeBinary(ln) }()
	default:
		return ServeRecord{}, fmt.Errorf("unknown batch mode %q", mode)
	}
	addr := ln.Addr().String()

	hist := obs.NewHistogram(clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(dur)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)*104729))
			if mode == "batchbin" {
				client, err := plane.DialBinary(addr)
				if err != nil {
					errs[c] = err
					return
				}
				defer client.Close()
				pairs := make([]uint32, 2*batch)
				var results []plane.BinResult
				for !time.Now().After(deadline) {
					for i := range pairs {
						pairs[i] = uint32(rng.Intn(n))
					}
					t0 := time.Now()
					resp, err := client.Do(plane.BinModeOneHop, pairs)
					if err != nil {
						errs[c] = err
						return
					}
					_, rs, err := plane.DecodeBatchResponse(resp, plane.BinModeOneHop, results)
					if err != nil {
						errs[c] = err
						return
					}
					results = rs
					if len(rs) != batch {
						errs[c] = fmt.Errorf("binary batch answered %d of %d pairs", len(rs), batch)
						return
					}
					hist.ObserveShard(c, time.Since(t0).Nanoseconds())
				}
				return
			}
			httpc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 1}}
			req := batchWireRequest{Mode: "onehop", Pairs: make([][2]int, batch)}
			url := "http://" + addr + "/routes"
			for !time.Now().After(deadline) {
				for i := range req.Pairs {
					req.Pairs[i] = [2]int{rng.Intn(n), rng.Intn(n)}
				}
				t0 := time.Now()
				body, err := json.Marshal(req)
				if err != nil {
					errs[c] = err
					return
				}
				httpResp, err := httpc.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					errs[c] = err
					return
				}
				var resp batchWireResponse
				err = json.NewDecoder(httpResp.Body).Decode(&resp)
				httpResp.Body.Close()
				if err != nil {
					errs[c] = err
					return
				}
				if len(resp.Results) != batch {
					errs[c] = fmt.Errorf("JSON batch answered %d of %d pairs", len(resp.Results), batch)
					return
				}
				hist.ObserveShard(c, time.Since(t0).Nanoseconds())
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return ServeRecord{}, fmt.Errorf("%s client: %w", mode, err)
		}
	}
	count := hist.Count()
	if count == 0 {
		return ServeRecord{}, fmt.Errorf("%s bench completed no batches", mode)
	}
	rec.Seconds = elapsed
	rec.Lookups = count * int64(batch)
	rec.QPS = float64(rec.Lookups) / elapsed
	rec.P50us = hist.QuantileUS(0.50)
	rec.P90us = hist.QuantileUS(0.90)
	rec.P99us = hist.QuantileUS(0.99)
	rec.LatBuckets = bucketSlice(hist)
	rec.BucketScheme = obs.BucketScheme
	return rec, nil
}

// gate enforces the serve baseline: the one-hop record must meet the
// committed minimum throughput, and when the baseline carries the
// multi-core or binary-protocol gates, the records they need must be
// present and meet them — a missing record fails the gate rather than
// silently skipping it.
func gate(recs []ServeRecord, path string) error {
	bl, err := experiments.ReadServeBaseline(path)
	if err != nil {
		return err
	}
	if bl.MinOneHopQPS <= 0 {
		return fmt.Errorf("%s: no min_onehop_qps", path)
	}
	byName := map[string]ServeRecord{}
	for _, rec := range recs {
		byName[rec.Name] = rec
	}
	need := func(name string) (ServeRecord, error) {
		rec, ok := byName[name]
		if !ok {
			return ServeRecord{}, fmt.Errorf("no %s record to gate against %s", name, path)
		}
		return rec, nil
	}
	onehop, err := need("serve_onehop")
	if err != nil {
		return err
	}
	if onehop.QPS < bl.MinOneHopQPS {
		return fmt.Errorf("one-hop throughput %.0f lookups/sec below the %.0f floor in %s",
			onehop.QPS, bl.MinOneHopQPS, path)
	}
	fmt.Printf("serve gate: one-hop %.0f lookups/sec >= %.0f floor\n", onehop.QPS, bl.MinOneHopQPS)
	if bl.MinOneHopQPSMulticore > 0 || bl.MinMulticoreScaling > 0 {
		multi, err := need("serve_onehop_multicore")
		if err != nil {
			return err
		}
		if bl.MinOneHopQPSMulticore > 0 {
			if multi.QPS < bl.MinOneHopQPSMulticore {
				return fmt.Errorf("multi-core one-hop throughput %.0f lookups/sec (cores=%d) below the %.0f floor in %s",
					multi.QPS, multi.Cores, bl.MinOneHopQPSMulticore, path)
			}
			fmt.Printf("serve gate: multi-core one-hop %.0f lookups/sec (cores=%d) >= %.0f floor\n",
				multi.QPS, multi.Cores, bl.MinOneHopQPSMulticore)
		}
		if bl.MinMulticoreScaling > 0 {
			scaling := multi.QPS / onehop.QPS
			if scaling < bl.MinMulticoreScaling {
				return fmt.Errorf("multi-core one-hop scaling %.2fx (cores=%d) below the %.2fx floor in %s",
					scaling, multi.Cores, bl.MinMulticoreScaling, path)
			}
			fmt.Printf("serve gate: multi-core scaling %.2fx (cores=%d) >= %.2fx floor\n",
				scaling, multi.Cores, bl.MinMulticoreScaling)
		}
	}
	if bl.MinBinaryBatchSpeedup > 0 {
		jsonRec, err := need("serve_batchjson")
		if err != nil {
			return err
		}
		binRec, err := need("serve_batchbin")
		if err != nil {
			return err
		}
		speedup := binRec.QPS / jsonRec.QPS
		if speedup < bl.MinBinaryBatchSpeedup {
			return fmt.Errorf("binary batch protocol %.2fx the JSON throughput, below the %.2fx floor in %s",
				speedup, bl.MinBinaryBatchSpeedup, path)
		}
		fmt.Printf("serve gate: binary batch %.2fx JSON throughput >= %.2fx floor\n", speedup, bl.MinBinaryBatchSpeedup)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "egoist-route: %v\n", err)
	os.Exit(1)
}

// runPublishBench measures sub-epoch publication cost under churn: a
// fresh scale run (same n/k/sampling defaults as the serve run) plays
// the given number of epochs over an exponential background churn
// process, and every sub-round publication is executed both ways — a
// full from-scratch Compile and a delta Patch of the previous snapshot
// — so BENCH_serve.json carries the two cost columns measured on the
// identical publication stream. The delta Patch is timed inline (it IS
// the production publication path); the reference full Compile runs on
// a dedicated timing goroutine, fed copies of each publication's
// wiring, so its cost never lands inside the epochs being measured —
// the engine only pays a slice copy, not a Compile. One route row is
// kept warm so the Patch timing includes its real carry/invalidate
// work, not just the CSR splice.
func runPublishBench(n, k int, sampleSpec string, seed int64, workers, epochs, cacheRows int) ([]ServeRecord, error) {
	if k <= 0 {
		k = 8
		if n < 1000 {
			k = 4
		}
	}
	if sampleSpec == "" {
		m := n / 20
		if m < k+2 {
			m = k + 2
		}
		if m > 500 {
			m = 500
		}
		sampleSpec = fmt.Sprintf("demand:%d", m)
	}
	spec, err := sampling.ParseSpec(sampleSpec)
	if err != nil {
		return nil, err
	}
	oracle, err := underlay.NewLite(n, seed+1)
	if err != nil {
		return nil, err
	}
	sched, err := churn.GenerateSynthetic(churn.SyntheticConfig{
		N: n, Horizon: float64(epochs),
		On:   churn.Exponential{Mean: 60},
		Off:  churn.Exponential{Mean: 12},
		Seed: seed + 101, StartOn: 0.9,
	})
	if err != nil {
		return nil, err
	}
	var (
		prev            *plane.Snapshot
		seq             int64
		deltaNs, fullNs int64
		changedRows     int64
	)
	deltaHist := obs.NewHistogram(1)
	fullHist := obs.NewHistogram(1)
	opts := plane.Options{RouteCacheRows: cacheRows}
	// The timing goroutine owns fullHist/fullNs until fullWG is waited.
	type pubCopy struct {
		seq    int64
		wiring [][]int
		active []bool
	}
	fullCh := make(chan pubCopy, 32)
	var fullWG sync.WaitGroup
	fullWG.Add(1)
	go func() {
		defer fullWG.Done()
		for pc := range fullCh {
			t := time.Now()
			plane.Compile(pc.seq, pc.wiring, pc.active, oracle, opts)
			ns := time.Since(t).Nanoseconds()
			fullNs += ns
			fullHist.Observe(ns)
		}
	}()
	cfg := sim.ScaleConfig{
		N: n, K: k, Seed: seed, Sample: spec,
		MaxEpochs: epochs, Workers: workers, Net: oracle,
		Churn: sched, ConvergedFrac: -1,
		OnPublish: func(pub sim.Publication) {
			if pub.Full {
				prev = plane.Compile(seq, pub.Wiring, pub.Active, oracle, opts)
				seq++
				return
			}
			// The engine may keep mutating its wiring after the hook
			// returns, so the timing goroutine gets a copy — the only
			// cost the engine pays for the reference measurement.
			cp := pubCopy{seq: seq, wiring: make([][]int, len(pub.Wiring)), active: append([]bool(nil), pub.Active...)}
			for u, ws := range pub.Wiring {
				if ws != nil {
					cp.wiring[u] = append([]int(nil), ws...)
				}
			}
			fullCh <- cp
			t := time.Now()
			next := prev.Patch(seq, pub.Changed, pub.Wiring, pub.Active)
			deltaNs += time.Since(t).Nanoseconds()
			deltaHist.Observe(time.Since(t).Nanoseconds())
			prev = next
			seq++
			changedRows += int64(len(pub.Changed))
			prev.RouteCost(int(seq)%n, (int(seq)+1)%n)
		},
	}
	fmt.Printf("publish bench: n=%d k=%d sample=%s epochs=%d churn=exp(60,12)\n", n, k, sampleSpec, epochs)
	_, runErr := sim.RunScale(cfg)
	close(fullCh)
	fullWG.Wait()
	if runErr != nil {
		return nil, runErr
	}
	if fullHist.Count() == 0 {
		return nil, fmt.Errorf("publish bench ran no publications")
	}
	mk := func(name string, h *obs.Histogram, totalNs int64) ServeRecord {
		secs := float64(totalNs) / 1e9
		return ServeRecord{
			Name: name, N: n, K: k, Epoch: int64(epochs), Clients: 1,
			Seconds: secs, Lookups: h.Count(), QPS: float64(h.Count()) / secs,
			P50us: h.QuantileUS(0.50), P90us: h.QuantileUS(0.90), P99us: h.QuantileUS(0.99),
			LatBuckets: bucketSlice(h), BucketScheme: obs.BucketScheme,
		}
	}
	recs := []ServeRecord{
		mk("publish_full", fullHist, fullNs),
		mk("publish_delta", deltaHist, deltaNs),
	}
	for _, rec := range recs {
		fmt.Printf("bench %-13s publications=%-6d p50=%.2fµs p90=%.2fµs p99=%.2fµs\n",
			rec.Name, rec.Lookups, rec.P50us, rec.P90us, rec.P99us)
	}
	fmt.Printf("publish bench: delta p50 is %.1f%% of full-recompile p50 (%.1f changed rows/publication)\n",
		100*recs[1].P50us/recs[0].P50us, float64(changedRows)/float64(fullHist.Count()))
	return recs, nil
}
