// Command egoistd runs one live EGOIST overlay node speaking the
// link-state protocol over UDP. A roster file maps node ids to UDP
// addresses (one "id host:port" line each); every node in the roster runs
// its own egoistd.
//
// Example 3-node overlay on one machine:
//
//	cat > roster.txt <<EOF
//	0 127.0.0.1:7000
//	1 127.0.0.1:7001
//	2 127.0.0.1:7002
//	EOF
//	egoistd -id 0 -roster roster.txt -k 2 -epoch 5s &
//	egoistd -id 1 -roster roster.txt -k 2 -epoch 5s &
//	egoistd -id 2 -roster roster.txt -k 2 -epoch 5s &
//
// Each daemon periodically prints its neighbor set, its view of the
// overlay, and its delay estimates.
package main

import (
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"egoist/internal/core"
	"egoist/internal/linkstate"
	"egoist/internal/overlay"
	"egoist/internal/plane"
	"egoist/internal/roster"
)

func main() {
	var (
		id        = flag.Int("id", -1, "this node's id (must appear in the roster)")
		rosterPf  = flag.String("roster", "", "path to roster file: one 'id host:port' line per node")
		k         = flag.Int("k", 3, "neighbor budget")
		epoch     = flag.Duration("epoch", 60*time.Second, "wiring epoch T")
		epsilon   = flag.Float64("epsilon", 0, "BR(eps) threshold")
		donated   = flag.Int("donated", 0, "HybridBR donated links (k2)")
		immediate = flag.Bool("immediate", false, "repair dropped links immediately instead of at the next epoch")
		httpAddr  = flag.String("http", "", "serve /status and /topology.svg on this address (e.g. 127.0.0.1:8080)")
		verbose   = flag.Bool("v", false, "log protocol events")
	)
	flag.Parse()

	members, err := roster.Load(*rosterPf)
	if err != nil {
		log.Fatalf("egoistd: %v", err)
	}
	self, ok := members[*id]
	if !ok {
		log.Fatalf("egoistd: id %d not in roster %s", *id, *rosterPf)
	}

	transport, err := linkstate.NewUDPTransport(self)
	if err != nil {
		log.Fatalf("egoistd: %v", err)
	}
	for nid, addr := range members {
		if nid != *id {
			ua, err := net.ResolveUDPAddr("udp", addr)
			if err != nil {
				log.Fatalf("egoistd: roster entry %d: %v", nid, err)
			}
			transport.Register(nid, ua)
		}
	}
	maxID := members.MaxID()

	// Bootstrap from the first two other roster nodes.
	var boot []int
	for _, nid := range members.IDs() {
		if nid != *id && len(boot) < 2 {
			boot = append(boot, nid)
		}
	}

	mode := overlay.Delayed
	if *immediate {
		mode = overlay.Immediate
	}
	logf := func(string, ...interface{}) {}
	if *verbose {
		logf = log.Printf
	}
	node, err := overlay.Start(overlay.Config{
		ID: *id, N: maxID + 1, K: *k,
		Policy:    core.BRPolicy{Donated: *donated},
		Transport: transport,
		Epoch:     *epoch,
		Epsilon:   *epsilon,
		Mode:      mode,
		Bootstrap: boot,
		Seed:      int64(*id) + 1,
		Logf:      logf,
	})
	if err != nil {
		log.Fatalf("egoistd: %v", err)
	}
	log.Printf("egoistd: node %d up on %s (k=%d, T=%v)", *id, self, *k, *epoch)
	// The daemon's data plane: every epoch the node's link-state view is
	// compiled into an immutable plane.Snapshot and swapped into the
	// query server, so /route answers never block on (or observe) a
	// re-wiring in progress. Direct delays beyond announced links are
	// unknown to a live node, so one-hop decisions relay through
	// announced arcs only (plane.GraphDelays).
	publishPlane := func() {} // snapshots are only compiled when something can query them
	if *httpAddr != "" {
		planeSrv := plane.NewServer()
		publishPlane = func() {
			g := node.AnnouncedView()
			planeSrv.Publish(plane.CompileGraph(int64(node.Epochs()), g, plane.GraphDelays(g), plane.Options{}))
		}
		publishPlane()
		bound, shutdown, err := node.ServeHTTPWith(*httpAddr, func(mux *http.ServeMux) {
			h := planeSrv.Handler()
			mux.Handle("/route", h)
			mux.Handle("/routes", h)
			mux.Handle("/snapshot", h)
		})
		if err != nil {
			log.Fatalf("egoistd: http: %v", err)
		}
		defer shutdown()
		log.Printf("egoistd: status at http://%s/status, topology at http://%s/topology.svg, routes at http://%s/route", bound, bound, bound)
	}

	status := time.NewTicker(*epoch)
	defer status.Stop()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	for {
		select {
		case <-status.C:
			publishPlane()
			known := node.KnownNodes()
			sort.Ints(known)
			log.Printf("node %d: neighbors=%v known=%v rewires=%d",
				*id, node.Neighbors(), known, node.Rewires())
			for _, peer := range node.Neighbors() {
				if est, ok := node.Estimate(peer); ok {
					log.Printf("node %d: est delay to %d: %.2f ms", *id, peer, est)
				}
			}
		case s := <-sig:
			log.Printf("egoistd: node %d shutting down (%v)", *id, s)
			node.Stop()
			return
		}
	}
}
