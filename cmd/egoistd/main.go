// Command egoistd runs one live EGOIST overlay node speaking the
// link-state protocol over UDP. Membership comes from one of two modes:
//
// Roster mode (-roster): a file maps node ids to UDP addresses (one
// "id host:port" line each); every node in the roster runs its own
// egoistd and all addresses are known up front.
//
//	cat > roster.txt <<EOF
//	0 127.0.0.1:7000
//	1 127.0.0.1:7001
//	2 127.0.0.1:7002
//	EOF
//	egoistd -id 0 -roster roster.txt -k 2 -epoch 5s &
//	egoistd -id 1 -roster roster.txt -k 2 -epoch 5s &
//	egoistd -id 2 -roster roster.txt -k 2 -epoch 5s &
//
// PEX mode (-peers): the daemon binds -bind, learns membership by
// gossip (the peer-exchange protocol documented in
// internal/linkstate/pex.go), and needs only one or two rendezvous
// addresses — or none at all for the first node up:
//
//	egoistd -id 0 -n 50 -bind 127.0.0.1:0 -announce node0.json &
//	egoistd -id 1 -n 50 -bind 127.0.0.1:0 -peers 0@127.0.0.1:41234 &
//
// Each daemon periodically prints its neighbor set, its view of the
// overlay, and its delay estimates. With -http it serves /status,
// /topology.svg, the routing data plane (/route, /routes, /snapshot),
// and the fault-injection control endpoint /ctl/drop used by the lab
// harness (cmd/egoist-lab) to partition live processes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"egoist/internal/core"
	"egoist/internal/linkstate"
	"egoist/internal/obs"
	"egoist/internal/overlay"
	"egoist/internal/plane"
	"egoist/internal/roster"
	"egoist/internal/underlay"
)

// announceInfo is the ready file written by -announce: the addresses a
// supervisor (the lab harness) needs to reach a daemon it spawned with
// ephemeral ports.
type announceInfo struct {
	ID   int    `json:"id"`
	UDP  string `json:"udp"`
	HTTP string `json:"http,omitempty"`
}

func main() {
	var (
		id        = flag.Int("id", -1, "this node's id")
		rosterPf  = flag.String("roster", "", "roster file: one 'id host:port' line per node (static membership)")
		peersStr  = flag.String("peers", "", "comma-separated rendezvous peers 'id@host:port' (PEX membership; may be empty for the first node)")
		bindAddr  = flag.String("bind", "", "UDP bind address in PEX mode (e.g. 127.0.0.1:0)")
		nFlag     = flag.Int("n", 0, "overlay id space in PEX mode (roster mode infers it)")
		k         = flag.Int("k", 3, "neighbor budget")
		epoch     = flag.Duration("epoch", 60*time.Second, "wiring epoch T")
		epsilon   = flag.Float64("epsilon", 0, "BR(eps) threshold")
		donated   = flag.Int("donated", 0, "HybridBR donated links (k2)")
		immediate = flag.Bool("immediate", false, "repair dropped links immediately instead of at the next epoch")
		httpAddr  = flag.String("http", "", "serve /status, the data plane, /metrics, and /ctl/drop on this address (e.g. 127.0.0.1:0)")
		pprofFlag = flag.Bool("pprof", false, "also mount net/http/pprof under /debug/pprof/ on the -http mux")
		seed      = flag.Int64("seed", 0, "RNG seed (0 derives one from the id)")
		oracleStr = flag.String("oracle", "", "synthetic delay oracle 'lite:<seed>': adds Lite-underlay one-way delays to echo probes, so loopback deployments reproduce wide-area geometry")
		runFor    = flag.Duration("run-for", 0, "exit cleanly after this long (0 runs until SIGINT/SIGTERM)")
		announce  = flag.String("announce", "", "write a JSON ready file with the bound UDP/HTTP addresses")
		verbose   = flag.Bool("v", false, "log protocol events")
	)
	flag.Parse()

	if *id < 0 {
		log.Fatalf("egoistd: -id is required")
	}

	var (
		transport *linkstate.UDPTransport
		book      linkstate.AddressBook
		boot      []int
		n         int
		err       error
	)
	switch {
	case *rosterPf != "":
		transport, n, boot, err = rosterMembership(*id, *rosterPf)
	default:
		transport, n, boot, err = pexMembership(*id, *nFlag, *bindAddr, *peersStr)
		book = transport
	}
	if err != nil {
		log.Fatalf("egoistd: %v", err)
	}

	var oracle func(from, to int) float64
	if *oracleStr != "" {
		oracle, err = parseOracle(*oracleStr, n)
		if err != nil {
			log.Fatalf("egoistd: %v", err)
		}
	}
	if *seed == 0 {
		*seed = int64(*id) + 1
	}
	mode := overlay.Delayed
	if *immediate {
		mode = overlay.Immediate
	}
	logf := func(string, ...interface{}) {}
	if *verbose {
		logf = log.Printf
	}

	// The daemon's metrics registry. The probe instruments exist before
	// the node starts (OnProbe fires from the first echo reply); the
	// scrape-time callbacks over node and transport state register right
	// after Start.
	reg := obs.NewRegistry()
	probeNS := reg.Histogram("egoistd_probe_latency_ns", "accepted one-way probe delay samples (ns)")
	probes := reg.Counter("egoistd_probes_total", "echo measurements folded into the delay estimator")

	node, err := overlay.Start(overlay.Config{
		ID: *id, N: n, K: *k,
		Policy:      core.BRPolicy{Donated: *donated},
		Transport:   transport,
		Epoch:       *epoch,
		Epsilon:     *epsilon,
		Mode:        mode,
		Bootstrap:   boot,
		Book:        book,
		DelayOracle: oracle,
		// Clock-derived sequence base: a restarted daemon must outrun the
		// LSAs of its previous life or peers discard it as stale (see
		// Config.SeqBase).
		SeqBase: uint64(time.Now().UnixNano()),
		Seed:    *seed,
		OnProbe: func(peer int, oneWayMS float64) {
			probes.Inc()
			probeNS.Observe(int64(oneWayMS * 1e6))
		},
		Logf: logf,
	})
	if err != nil {
		log.Fatalf("egoistd: %v", err)
	}
	log.Printf("egoistd: node %d up on %s (k=%d, T=%v)", *id, transport.LocalAddr(), *k, *epoch)

	// Protocol state the node and transport already maintain, read at
	// scrape time.
	reg.GaugeFunc("egoistd_lsa_seq", "sequence number of this node's latest LSA", func() float64 {
		return float64(node.Seq())
	})
	reg.GaugeFunc("egoistd_pex_peers", "peers learned via bootstrap replies or PEX gossip", func() float64 {
		return float64(node.JoinedPeers())
	})
	reg.GaugeFunc("egoistd_neighbors", "current out-neighbor count", func() float64 {
		return float64(len(node.Neighbors()))
	})
	reg.CounterFunc("egoistd_rewires_total", "links established after bootstrap", func() int64 {
		return int64(node.Rewires())
	})
	reg.CounterFunc("egoistd_epochs_total", "wiring epochs run", func() int64 {
		return int64(node.Epochs())
	})
	reg.CounterFunc("egoistd_fault_drops_send_total", "datagrams discarded on send by injected fault rules", func() int64 {
		send, _ := transport.FaultDrops()
		return send
	})
	reg.CounterFunc("egoistd_fault_drops_recv_total", "inbound datagrams discarded by injected fault rules", func() int64 {
		_, recv := transport.FaultDrops()
		return recv
	})

	// The daemon's data plane: every epoch the node's link-state view is
	// compiled into an immutable plane.Snapshot and swapped into the
	// query server, so /route answers never block on (or observe) a
	// re-wiring in progress. Direct delays beyond announced links are
	// unknown to a live node, so one-hop decisions relay through
	// announced arcs only (plane.GraphDelays).
	publishPlane := func() {} // snapshots are only compiled when something can query them
	boundHTTP := ""
	if *httpAddr != "" {
		planeSrv := plane.NewServer()
		planeSrv.EnableMetrics(reg)
		publishPlane = func() {
			g := node.AnnouncedView()
			planeSrv.Publish(plane.CompileGraph(int64(node.Epochs()), g, plane.GraphDelays(g), plane.Options{}))
		}
		publishPlane()
		bound, shutdown, err := node.ServeHTTPWith(*httpAddr, func(mux *http.ServeMux) {
			h := planeSrv.Handler()
			mux.Handle("/route", h)
			mux.Handle("/routes", h)
			mux.Handle("/snapshot", h)
			mux.Handle("/metrics", reg.Handler())
			mux.Handle("/ctl/drop", dropController(transport))
			if *pprofFlag {
				obs.MountPprof(mux)
			}
		})
		if err != nil {
			log.Fatalf("egoistd: http: %v", err)
		}
		defer shutdown()
		boundHTTP = bound
		log.Printf("egoistd: status at http://%s/status, routes at http://%s/route, faults at http://%s/ctl/drop", bound, bound, bound)
	}
	if *announce != "" {
		info := announceInfo{ID: *id, UDP: transport.LocalAddr().String(), HTTP: boundHTTP}
		if err := writeAnnounce(*announce, info); err != nil {
			log.Fatalf("egoistd: announce: %v", err)
		}
	}

	status := time.NewTicker(*epoch)
	defer status.Stop()
	var expired <-chan time.Time
	if *runFor > 0 {
		expired = time.After(*runFor)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	for {
		select {
		case <-status.C:
			publishPlane()
			known := node.KnownNodes()
			sort.Ints(known)
			log.Printf("node %d: neighbors=%v known=%v rewires=%d",
				*id, node.Neighbors(), known, node.Rewires())
			for _, peer := range node.Neighbors() {
				if est, ok := node.Estimate(peer); ok {
					log.Printf("node %d: est delay to %d: %.2f ms", *id, peer, est)
				}
			}
		case <-expired:
			log.Printf("egoistd: node %d run-for %v elapsed", *id, *runFor)
			node.Stop()
			return
		case s := <-sig:
			log.Printf("egoistd: node %d shutting down (%v)", *id, s)
			node.Stop()
			return
		}
	}
}

// rosterMembership binds at the roster's address for id and statically
// registers every other member. The overlay size is the roster's id
// space; bootstrap contacts are the first two other members.
func rosterMembership(id int, path string) (*linkstate.UDPTransport, int, []int, error) {
	members, err := roster.Load(path)
	if err != nil {
		return nil, 0, nil, err
	}
	self, ok := members[id]
	if !ok {
		return nil, 0, nil, fmt.Errorf("id %d not in roster %s", id, path)
	}
	for nid, addr := range members {
		if nid != id && addr == self {
			return nil, 0, nil, fmt.Errorf("roster %s: node %d shares this node's address %s — a node cannot peer with itself", path, nid, self)
		}
	}
	transport, err := linkstate.NewUDPTransport(self)
	if err != nil {
		return nil, 0, nil, err
	}
	var boot []int
	for nid, addr := range members {
		if nid == id {
			continue
		}
		ua, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			transport.Close()
			return nil, 0, nil, fmt.Errorf("roster entry %d: %v", nid, err)
		}
		transport.Register(nid, ua)
	}
	for _, nid := range members.IDs() {
		if nid != id && len(boot) < 2 {
			boot = append(boot, nid)
		}
	}
	return transport, members.MaxID() + 1, boot, nil
}

// pexMembership binds the given address and seeds the transport's book
// with this node plus the rendezvous peers; everything else arrives by
// gossip. An empty peer list is legal — the first node of an overlay
// has nobody to call.
func pexMembership(id, n int, bind, peers string) (*linkstate.UDPTransport, int, []int, error) {
	if bind == "" {
		return nil, 0, nil, fmt.Errorf("-bind is required without -roster")
	}
	if n < 2 {
		return nil, 0, nil, fmt.Errorf("-n %d: PEX mode needs the overlay id space (-n >= 2)", n)
	}
	seeds := map[int]*net.UDPAddr{}
	var boot []int
	if peers != "" {
		for _, entry := range strings.Split(peers, ",") {
			pid, addr, err := parsePeer(strings.TrimSpace(entry))
			if err != nil {
				return nil, 0, nil, err
			}
			if pid == id {
				return nil, 0, nil, fmt.Errorf("-peers entry %q references this node itself", entry)
			}
			if _, dup := seeds[pid]; !dup {
				boot = append(boot, pid)
			}
			seeds[pid] = addr
		}
	}
	transport, err := linkstate.NewUDPTransport(bind)
	if err != nil {
		return nil, 0, nil, err
	}
	transport.Register(id, transport.LocalAddr()) // self entry, gossiped to others
	for pid, addr := range seeds {
		transport.Register(pid, addr)
	}
	sort.Ints(boot)
	return transport, n, boot, nil
}

// parsePeer splits one "id@host:port" rendezvous entry.
func parsePeer(entry string) (int, *net.UDPAddr, error) {
	at := strings.IndexByte(entry, '@')
	if at <= 0 {
		return 0, nil, fmt.Errorf("-peers entry %q: want id@host:port", entry)
	}
	pid, err := strconv.Atoi(entry[:at])
	if err != nil || pid < 0 {
		return 0, nil, fmt.Errorf("-peers entry %q: bad id", entry)
	}
	addr, err := net.ResolveUDPAddr("udp", entry[at+1:])
	if err != nil {
		return 0, nil, fmt.Errorf("-peers entry %q: %v", entry, err)
	}
	return pid, addr, nil
}

// parseOracle builds the synthetic delay function from its flag form.
// "lite:<seed>" is the Lite underlay the scale engine defaults to, so a
// lab deployment with -oracle lite:<spec.Seed+1> measures the same
// geometry as sim.RunScale on the same spec.
func parseOracle(s string, n int) (func(from, to int) float64, error) {
	rest, ok := strings.CutPrefix(s, "lite:")
	if !ok {
		return nil, fmt.Errorf("-oracle %q: only 'lite:<seed>' is supported", s)
	}
	oseed, err := strconv.ParseInt(rest, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("-oracle %q: bad seed", s)
	}
	lite, err := underlay.NewLite(n, oseed)
	if err != nil {
		return nil, fmt.Errorf("-oracle %q: %v", s, err)
	}
	return func(from, to int) float64 {
		if from < 0 || to < 0 || from >= n || to >= n {
			return 0
		}
		return lite.Delay(from, to)
	}, nil
}

// writeAnnounce publishes the ready file atomically (temp + rename), so
// a poller never reads a half-written JSON object.
func writeAnnounce(path string, info announceInfo) error {
	data, err := json.Marshal(info)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// dropController is the lab harness's fault-injection endpoint:
//
//	POST /ctl/drop {"peers":[3,7]}  drop all traffic to/from nodes 3 and 7
//	POST /ctl/drop {"peers":[]}    heal (clear all rules)
//	GET  /ctl/drop                 current drop set
//
// Rules apply to both directions (the transport consults them on send
// and on receive), so dropping every other node isolates this one — the
// harness's partition and outage primitive.
func dropController(t *linkstate.UDPTransport) http.Handler {
	var (
		mu      sync.Mutex
		current []int
	)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			mu.Lock()
			peers := append([]int(nil), current...)
			mu.Unlock()
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string][]int{"peers": peers})
		case http.MethodPost:
			var req struct {
				Peers []int `json:"peers"`
			}
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			set := make(map[int]bool, len(req.Peers))
			for _, p := range req.Peers {
				set[p] = true
			}
			mu.Lock()
			current = append([]int(nil), req.Peers...)
			if len(set) == 0 {
				t.SetFault(nil)
			} else {
				t.SetFault(func(peer int) bool { return set[peer] })
			}
			mu.Unlock()
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "use GET or POST", http.StatusMethodNotAllowed)
		}
	})
}
