package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"egoist/internal/clitest"
)

// egoistd was the last CLI with zero test coverage — and the one that
// fronts every real deployment. These smoke tests drive both membership
// modes end to end (in process for coverage, as subprocesses for the
// failure exits) and pin the daemon's contract with the lab harness:
// the announce ready file, the /status and /snapshot endpoints, and a
// clean non-zero exit on every misconfiguration instead of a hang.

// freeUDPPort reserves an ephemeral port and releases it for the
// daemon to bind (a benign race, confined to loopback).
func freeUDPPort(t *testing.T) int {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	port := conn.LocalAddr().(*net.UDPAddr).Port
	conn.Close()
	return port
}

func readAnnounce(t *testing.T, path string, deadline time.Duration) announceInfo {
	t.Helper()
	var info announceInfo
	stop := time.Now().Add(deadline)
	for {
		data, err := os.ReadFile(path)
		if err == nil && json.Unmarshal(data, &info) == nil {
			return info
		}
		if time.Now().After(stop) {
			t.Fatalf("announce file %s never appeared: %v", path, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestMainInProcessRoster runs the roster mode happy path in process so
// main's own statements appear in the coverage profile. The peer
// addresses point at ports nobody listens on — UDP sends to the void
// are fine; the node runs alone for a few epochs and exits via
// -run-for.
func TestMainInProcessRoster(t *testing.T) {
	dir := t.TempDir()
	self := freeUDPPort(t)
	rosterPath := filepath.Join(dir, "roster.txt")
	roster := fmt.Sprintf("0 127.0.0.1:%d\n1 127.0.0.1:%d\n2 127.0.0.1:%d\n",
		self, freeUDPPort(t), freeUDPPort(t))
	if err := os.WriteFile(rosterPath, []byte(roster), 0o644); err != nil {
		t.Fatal(err)
	}
	clitest.RunMain(t, main, "egoistd",
		"-id", "0", "-roster", rosterPath, "-k", "2",
		"-epoch", "80ms", "-run-for", "300ms")
}

// TestMainInProcessPex runs the PEX rendezvous happy path in process:
// an overlay's first node with an empty peer list, the lite oracle, an
// HTTP endpoint, and an announce file whose addresses must round-trip.
func TestMainInProcessPex(t *testing.T) {
	ready := filepath.Join(t.TempDir(), "node0.json")
	done := make(chan struct{})
	go func() {
		defer close(done)
		clitest.RunMain(t, main, "egoistd",
			"-id", "0", "-n", "4", "-bind", "127.0.0.1:0",
			"-http", "127.0.0.1:0", "-oracle", "lite:5",
			"-epoch", "80ms", "-run-for", "600ms",
			"-announce", ready, "-immediate", "-seed", "42")
	}()
	info := readAnnounce(t, ready, 5*time.Second)
	if info.ID != 0 || info.UDP == "" || info.HTTP == "" {
		t.Fatalf("announce file incomplete: %+v", info)
	}
	// The daemon is live: /status and the drop controller must answer
	// while the run-for clock ticks down.
	resp, err := http.Get("http://" + info.HTTP + "/status")
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	var st struct {
		ID int `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.ID != 0 {
		t.Fatalf("status id %d, want 0", st.ID)
	}
	if _, err := http.Post("http://"+info.HTTP+"/ctl/drop", "application/json",
		strings.NewReader(`{"peers":[1]}`)); err != nil {
		t.Fatalf("drop: %v", err)
	}
	resp, err = http.Get("http://" + info.HTTP + "/ctl/drop")
	if err != nil {
		t.Fatal(err)
	}
	var drop struct {
		Peers []int `json:"peers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&drop); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(drop.Peers) != 1 || drop.Peers[0] != 1 {
		t.Fatalf("drop set %v, want [1]", drop.Peers)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("-run-for never expired")
	}
}

// TestSmokePexConvergence is the 3-node distributed smoke: real
// processes on loopback, PEX bootstrap from one rendezvous address, and
// a /status + /snapshot round-trip proving the overlay wired itself.
func TestSmokePexConvergence(t *testing.T) {
	bin := clitest.Build(t, "egoistd")
	dir := t.TempDir()
	const n = 3
	procs := make([]*exec.Cmd, 0, n)
	defer func() {
		for _, p := range procs {
			_ = p.Process.Kill()
			_ = p.Wait()
		}
	}()
	launch := func(id int, peers string) announceInfo {
		t.Helper()
		ready := filepath.Join(dir, fmt.Sprintf("node%d.json", id))
		args := []string{
			"-id", fmt.Sprint(id), "-n", fmt.Sprint(n), "-k", "2",
			"-bind", "127.0.0.1:0", "-http", "127.0.0.1:0",
			"-epoch", "300ms", "-oracle", "lite:7",
			"-announce", ready,
		}
		if peers != "" {
			args = append(args, "-peers", peers)
		}
		cmd := exec.Command(bin, args...)
		if err := cmd.Start(); err != nil {
			t.Fatalf("node %d: %v", id, err)
		}
		procs = append(procs, cmd)
		return readAnnounce(t, ready, 10*time.Second)
	}

	seed := launch(0, "")
	infos := []announceInfo{seed}
	for id := 1; id < n; id++ {
		infos = append(infos, launch(id, fmt.Sprintf("0@%s", seed.UDP)))
	}

	// Every node must discover full membership and wire its budget.
	deadline := time.Now().Add(30 * time.Second)
	for _, info := range infos {
		for {
			var st struct {
				ID        int   `json:"id"`
				Neighbors []int `json:"neighbors"`
				Known     []int `json:"known"`
			}
			resp, err := http.Get("http://" + info.HTTP + "/status")
			if err == nil {
				err = json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
			}
			if err == nil && len(st.Known) == n-1 && len(st.Neighbors) == 2 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d never converged: %+v (err %v)", info.ID, st, err)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}

	// The data plane serves a published snapshot of the wired overlay.
	resp, err := http.Get("http://" + infos[1].HTTP + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Published bool `json:"published"`
		Nodes     int  `json:"nodes"`
		Arcs      int  `json:"arcs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !snap.Published || snap.Nodes != n || snap.Arcs == 0 {
		t.Fatalf("snapshot %+v, want published n=%d with arcs", snap, n)
	}
}

// TestSmokeBadInputsFail covers every misconfiguration exit: the daemon
// must die non-zero with a clear message, never hang or panic.
func TestSmokeBadInputsFail(t *testing.T) {
	bin := clitest.Build(t, "egoistd")
	dir := t.TempDir()
	selfPort := freeUDPPort(t)
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	selfRef := write("selfref.txt",
		fmt.Sprintf("0 127.0.0.1:%d\n1 127.0.0.1:%d\n", selfPort, selfPort))
	okRoster := write("ok.txt",
		fmt.Sprintf("0 127.0.0.1:%d\n1 127.0.0.1:%d\n", selfPort, freeUDPPort(t)))

	// A held socket makes the daemon's bind fail: it must exit, not hang.
	held, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer held.Close()
	heldAddr := held.LocalAddr().String()
	heldRoster := write("held.txt",
		fmt.Sprintf("0 %s\n1 127.0.0.1:%d\n", heldAddr, freeUDPPort(t)))

	cases := []struct {
		name string
		args []string
	}{
		{"no id", []string{"-roster", okRoster}},
		{"id not in roster", []string{"-id", "9", "-roster", okRoster}},
		{"roster references itself", []string{"-id", "0", "-roster", selfRef}},
		{"missing roster file", []string{"-id", "0", "-roster", filepath.Join(dir, "nope.txt")}},
		{"bind in use (roster)", []string{"-id", "0", "-roster", heldRoster}},
		{"bind in use (pex)", []string{"-id", "0", "-n", "4", "-bind", heldAddr}},
		{"pex without bind", []string{"-id", "0", "-n", "4"}},
		{"pex without n", []string{"-id", "0", "-bind", "127.0.0.1:0"}},
		{"peers self-reference", []string{"-id", "0", "-n", "4", "-bind", "127.0.0.1:0", "-peers", "0@127.0.0.1:7000"}},
		{"peers bad syntax", []string{"-id", "0", "-n", "4", "-bind", "127.0.0.1:0", "-peers", "1=127.0.0.1:7000"}},
		{"bad oracle", []string{"-id", "0", "-n", "4", "-bind", "127.0.0.1:0", "-oracle", "heavy:3"}},
		{"bad oracle seed", []string{"-id", "0", "-n", "4", "-bind", "127.0.0.1:0", "-oracle", "lite:x"}},
	}
	for _, tc := range cases {
		cmd := exec.Command(bin, tc.args...)
		done := make(chan error, 1)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err == nil {
				t.Errorf("%s: exited zero, want failure", tc.name)
			}
		case <-time.After(15 * time.Second):
			_ = cmd.Process.Kill()
			<-done
			t.Errorf("%s: daemon hung instead of exiting", tc.name)
		}
	}
}
