package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"egoist/internal/clitest"
	"egoist/internal/scenario"
)

func buildEgoistd(t *testing.T) string {
	t.Helper()
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go toolchain not on PATH: %v", err)
	}
	bin := filepath.Join(t.TempDir(), "egoistd")
	out, err := exec.Command(goTool, "build", "-o", bin, "egoist/cmd/egoistd").CombinedOutput()
	if err != nil {
		t.Fatalf("go build egoistd: %v\n%s", err, out)
	}
	return bin
}

// TestMainDeploysFleet runs the whole command in process — spec file
// load, a real 8-process deployment, and the metrics artifact — so the
// happy path lands in the coverage profile.
func TestMainDeploysFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("deploys a process fleet")
	}
	egoistd := buildEgoistd(t)
	dir := t.TempDir()
	spec := scenario.Spec{
		Name: "cli-smoke", Engine: "scale",
		N: 8, K: 2, Seed: 11, Epochs: 3,
		Sample: "demand:6",
		Events: []scenario.Event{{Epoch: 1.5, Kind: scenario.LeaveWave, Frac: 0.15}},
	}
	specPath := filepath.Join(dir, "spec.json")
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(specPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	jsonOut := filepath.Join(dir, "BENCH_lab.json")
	clitest.RunMain(t, main, "egoist-lab",
		"-spec", specPath, "-bin", egoistd,
		"-epoch", "250ms", "-bound", "0.8",
		"-json", jsonOut, "-v=false")

	raw, err := os.ReadFile(jsonOut)
	if err != nil {
		t.Fatalf("metrics artifact: %v", err)
	}
	var records []scenario.Metrics
	if err := json.Unmarshal(raw, &records); err != nil {
		t.Fatalf("metrics artifact: %v", err)
	}
	if len(records) != 1 {
		t.Fatalf("artifact has %d records, want 1", len(records))
	}
	m := records[0]
	if m.Engine != scenario.EngineLab || m.Lab == nil {
		t.Fatalf("record engine %q lab=%v, want lab engine with lab half", m.Engine, m.Lab)
	}
	if m.Lab.Processes != 8 || m.Lab.Kills != 1 {
		t.Errorf("processes=%d kills=%d, want 8 and 1", m.Lab.Processes, m.Lab.Kills)
	}
}

// TestBadInputsFail drives every fatal path as a subprocess: the
// command must exit non-zero, never hang, on each misconfiguration.
func TestBadInputsFail(t *testing.T) {
	bin := clitest.Build(t, "egoist-lab")
	dir := t.TempDir()
	badSpec := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badSpec, []byte(`{"name":"x"`), 0o644); err != nil {
		t.Fatal(err)
	}
	fakeBin := filepath.Join(dir, "egoistd")
	if err := os.WriteFile(fakeBin, []byte("#!/bin/sh\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
	}{
		{"no spec", []string{"-bin", fakeBin}},
		{"no bin", []string{"-spec", "leave-wave"}},
		{"unknown spec name", []string{"-spec", "not-a-builtin", "-bin", fakeBin}},
		{"unparsable spec file", []string{"-spec", badSpec, "-bin", fakeBin}},
		{"missing bin file", []string{"-spec", "leave-wave", "-bin", filepath.Join(dir, "nope")}},
	}
	for _, tc := range cases {
		cmd := exec.Command(bin, tc.args...)
		done := make(chan error, 1)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err == nil {
				t.Errorf("%s: exited zero, want failure", tc.name)
			}
		case <-time.After(15 * time.Second):
			_ = cmd.Process.Kill()
			<-done
			t.Errorf("%s: hung instead of exiting", tc.name)
		}
	}
}

// TestGapGateWritesArtifactAndFails pins the contract CI relies on:
// when the convergence gate fails, the metrics artifact is still
// written (the evidence) and the exit is non-zero (the verdict).
func TestGapGateWritesArtifactAndFails(t *testing.T) {
	if testing.Short() {
		t.Skip("deploys a process fleet")
	}
	bin := clitest.Build(t, "egoist-lab")
	egoistd := buildEgoistd(t)
	dir := t.TempDir()
	spec := scenario.Spec{
		Name: "cli-gate", Engine: "scale",
		N: 6, K: 2, Seed: 3, Epochs: 2, Sample: "demand:4",
	}
	specPath := filepath.Join(dir, "spec.json")
	data, _ := json.Marshal(spec)
	if err := os.WriteFile(specPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	jsonOut := filepath.Join(dir, "gate.json")
	// An absurdly tight bound makes the gate fail deterministically: a
	// live fleet never matches the sim to within one part in a million.
	out, err := exec.Command(bin,
		"-spec", specPath, "-bin", egoistd,
		"-epoch", "250ms", "-bound", "0.000001",
		"-json", jsonOut, "-v=false").CombinedOutput()
	if err == nil {
		t.Fatalf("gap gate passed at bound 1e-6:\n%s", out)
	}
	var records []scenario.Metrics
	raw, rerr := os.ReadFile(jsonOut)
	if rerr != nil || json.Unmarshal(raw, &records) != nil || len(records) != 1 {
		t.Fatalf("failed gate must still write the artifact: read=%v\n%s", rerr, out)
	}
	if records[0].Lab == nil || records[0].Lab.Gap <= 0.000001 {
		t.Fatalf("artifact gap %+v does not explain the failure", records[0].Lab)
	}
}
