// Command egoist-lab is the real-process deployment harness: it takes
// one scenario spec, runs the reference simulation, then launches a
// fleet of real egoistd daemons on loopback UDP — membership
// bootstrapped by PEX gossip, no static roster — replays the spec's
// event timeline against the live processes (leave waves kill -9,
// join waves restart, outages inject transport drop rules), measures
// the distributed overlay's per-pair cost from the nodes' own data
// planes every epoch, and gates the run on the final costs of the two
// legs agreeing to within a bound.
//
//	egoist-lab -spec leave-wave -n 50 -epoch 2s -json BENCH_lab.json
//
// exits non-zero when the sim leg's expectations fail, the fleet never
// bootstraps, or the convergence gap exceeds -bound.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"egoist/internal/scenario"
)

func main() {
	var (
		specArg = flag.String("spec", "", "scenario spec: a JSON file path or a builtin name ("+strings.Join(scenario.BuiltinNames(), ", ")+")")
		n       = flag.Int("n", 0, "override the spec's overlay size (0 keeps it)")
		epoch   = flag.Duration("epoch", 2*time.Second, "live wiring epoch T")
		bound   = flag.Float64("bound", 0.10, "relative final-cost gap gate vs the sim leg")
		bin     = flag.String("bin", "", "egoistd binary to deploy (required)")
		jsonOut = flag.String("json", "", "write the metrics record (BENCH_lab.json) here")
		metrics = flag.String("metrics-json", "", "write the fleet /metrics scrape timeline (BENCH_lab_metrics.json) here")
		workers = flag.Int("workers", 0, "sim-leg parallelism (0 = NumCPU)")
		dir     = flag.String("dir", "", "keep per-node logs and announce files here (default: temp dir, removed on success)")
		verbose = flag.Bool("v", true, "log deployment progress")
	)
	flag.Parse()

	if *specArg == "" {
		log.Fatalf("egoist-lab: -spec is required")
	}
	if *bin == "" {
		log.Fatalf("egoist-lab: -bin is required (go build -o egoistd ./cmd/egoistd)")
	}
	var spec scenario.Spec
	if _, err := os.Stat(*specArg); err == nil {
		spec, err = scenario.Load(*specArg)
		if err != nil {
			log.Fatalf("egoist-lab: %v", err)
		}
	} else if s, ok := scenario.Builtin(*specArg); ok {
		spec = s
	} else {
		log.Fatalf("egoist-lab: %q is neither a spec file nor a builtin (%s)", *specArg, strings.Join(scenario.BuiltinNames(), ", "))
	}

	logf := func(string, ...interface{}) {}
	if *verbose {
		logf = log.Printf
	}
	m, err := scenario.RunLab(spec, scenario.LabOptions{
		Bin: *bin, N: *n, Epoch: *epoch, Bound: *bound,
		Workers: *workers, Dir: *dir, MetricsJSON: *metrics, Logf: logf,
	})
	if m != nil && *jsonOut != "" {
		if werr := scenario.WriteMetricsJSON(*jsonOut, []*scenario.Metrics{m}); werr != nil {
			log.Fatalf("egoist-lab: %v", werr)
		}
		log.Printf("egoist-lab: metrics written to %s", *jsonOut)
	}
	if err != nil {
		log.Fatalf("egoist-lab: %v", err)
	}
	lab := m.Lab
	fmt.Printf("lab %s: n=%d processes=%d kills=%d restarts=%d isolated=%d\n",
		m.Scenario, m.N, lab.Processes, lab.Kills, lab.Restarts, lab.Isolated)
	fmt.Printf("lab %s: cost lab=%.2f sim=%.2f gap=%.1f%% (bound %.0f%%) bootstrap=%.1fs wall=%.1fs\n",
		m.Scenario, lab.LabFinalCost, lab.SimFinalCost, lab.Gap*100, lab.Bound*100,
		lab.BootstrapSeconds, lab.WallSeconds)
}
