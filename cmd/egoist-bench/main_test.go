package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"egoist/internal/clitest"
	"egoist/internal/experiments"
	"egoist/internal/scenario"
)

// TestMainInProcess drives main()'s scenario, list and scale paths in
// process for coverage (subprocess smoke binaries run uninstrumented;
// see clitest.RunMain).
func TestMainInProcess(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "smoke.json")
	spec := `{"name":"bench-main-smoke","engine":"scale","n":60,"k":2,"seed":7,"epochs":2,"sample":"uniform:8"}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	outJSON := filepath.Join(dir, "out.json")
	clitest.RunMain(t, main, "egoist-bench", "-scenario", specPath, "-workers", "2", "-scenarios-json", outJSON)
	if _, err := scenario.ReadMetricsJSON(outJSON); err != nil {
		t.Fatal(err)
	}
	clitest.RunMain(t, main, "egoist-bench", "-list")
	clitest.RunMain(t, main, "egoist-bench", "-scale", "80", "-sample", "uniform:10", "-k", "2", "-epochs", "2", "-workers", "2",
		"-bench-json", filepath.Join(dir, "scale.json"))

	// The n-sweep path: both sizes converge well inside 24 epochs, and
	// the artifact carries one record per size with the RSS column set.
	sweepJSON := filepath.Join(dir, "sweep.json")
	clitest.RunMain(t, main, "egoist-bench", "-scale-sweep", "60,40", "-epochs", "24", "-workers", "2", "-shards", "2",
		"-bench-json", sweepJSON)
	recs, err := experiments.ReadBenchJSON(sweepJSON)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Name != "scale/n=40/demand:6" || recs[1].Name != "scale/n=60/demand:6" {
		t.Fatalf("sweep records = %+v, want ascending n=40,60", recs)
	}
	for _, rec := range recs {
		if rec.NsPerOp <= 0 {
			t.Fatalf("sweep record missing per-epoch wall-clock: %+v", rec)
		}
	}
}

// Smoke tests: build the real binary and drive its scenario mode end
// to end, asserting exit status and that the JSON artifact it writes
// parses back — the contract the CI scenario matrix and the nightly
// 10k job depend on.

// TestSmokeScenarioJSON runs one tiny spec file through -scenario and
// round-trips the BENCH_scenarios.json artifact.
func TestSmokeScenarioJSON(t *testing.T) {
	bin := clitest.Build(t, "egoist-bench")
	dir := t.TempDir()
	specPath := filepath.Join(dir, "smoke.json")
	spec := `{"name":"bench-smoke","engine":"scale","n":60,"k":2,"seed":7,"epochs":2,"sample":"uniform:8"}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	outJSON := filepath.Join(dir, "out.json")
	out, err := exec.Command(bin, "-scenario", specPath, "-workers", "2", "-scenarios-json", outJSON).CombinedOutput()
	if err != nil {
		t.Fatalf("egoist-bench -scenario: %v\n%s", err, out)
	}
	recs, err := scenario.ReadMetricsJSON(outJSON)
	if err != nil {
		t.Fatalf("artifact does not parse: %v\n%s", err, out)
	}
	if len(recs) != 1 || recs[0].Scenario != "bench-smoke" || recs[0].Engine != "scale" {
		t.Fatalf("unexpected records: %+v", recs)
	}
	if recs[0].Epochs != 2 || len(recs[0].CostPerEpoch) != 2 {
		t.Fatalf("record incomplete: %+v", recs[0])
	}
}

// TestSmokeBuiltinScenario resolves a built-in scenario by name — the
// exact invocation shape of the nightly leave-wave-10k job, on the
// smallest builtin.
func TestSmokeBuiltinScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("builtin scenario run in -short mode")
	}
	bin := clitest.Build(t, "egoist-bench")
	outJSON := filepath.Join(t.TempDir(), "out.json")
	out, err := exec.Command(bin, "-scenario", "flash-crowd", "-workers", "2", "-scenarios-json", outJSON).CombinedOutput()
	if err != nil {
		t.Fatalf("egoist-bench -scenario flash-crowd: %v\n%s", err, out)
	}
	recs, err := scenario.ReadMetricsJSON(outJSON)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Scenario != "flash-crowd" {
		t.Fatalf("unexpected records: %+v", recs)
	}
}

// TestSmokeList checks -list prints the figure index and exits 0.
func TestSmokeList(t *testing.T) {
	bin := clitest.Build(t, "egoist-bench")
	out, err := exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("egoist-bench -list: %v\n%s", err, out)
	}
	if strings.TrimSpace(string(out)) == "" {
		t.Fatal("-list printed nothing")
	}
}

// TestSmokeUnknownScenarioFails checks a bad -scenario argument exits
// non-zero.
func TestSmokeUnknownScenarioFails(t *testing.T) {
	bin := clitest.Build(t, "egoist-bench")
	out, err := exec.Command(bin, "-scenario", "no-such-scenario").CombinedOutput()
	if err == nil {
		t.Fatalf("unknown scenario accepted:\n%s", out)
	}
}
