// Command egoist-bench regenerates the paper's evaluation figures
// (Sect. 4–6) as text tables: the same series, normalizations and axes the
// paper plots, produced by the simulator over the synthetic underlay.
//
// Usage:
//
//	egoist-bench -fig 1a              # one figure, paper-scale
//	egoist-bench -fig all -scale quick
//	egoist-bench -list
//	egoist-bench -scale 10000 -sample demand:500 -bench-json BENCH_scale.json
//	egoist-bench -scale-sweep 10000,30000,100000 -shards 4 -bench-json BENCH_scale.json
//	egoist-bench -scenario leave-wave-10k -scenarios-json BENCH_scenarios.json
//	egoist-bench -scenarios ci/scenarios -engines scale,full
//
// The -scale <n> form runs the large-scale sampled simulation engine (a
// single convergence run of n nodes, sampled best responses) and writes
// the machine-readable benchmark record CI uploads as an artifact. The
// -scenario form runs one declarative scenario (a built-in name or a
// spec file) and -scenarios runs a whole directory of specs as a
// matrix across the listed engines, writing the BENCH_scenarios.json
// artifact.
//
// See DESIGN.md §4 for the figure index and EXPERIMENTS.md for recorded
// output.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"egoist/internal/experiments"
	"egoist/internal/obs"
	"egoist/internal/sampling"
	"egoist/internal/scenario"
	"egoist/internal/sim"
)

// loadScenario resolves a -scenario argument: a built-in name first,
// then a spec file path.
func loadScenario(arg string) (scenario.Spec, error) {
	if spec, ok := scenario.Builtin(arg); ok {
		return spec, nil
	}
	return scenario.Load(arg)
}

// runScenarios executes specs × engines (a spec with an explicit
// engine runs only there) and writes the metrics artifact.
func runScenarios(specs []scenario.Spec, engines []string, workers, shards int, outJSON string) {
	var recs []*scenario.Metrics
	failed := false
	for _, spec := range specs {
		specEngines := engines
		if spec.Engine != "" {
			specEngines = []string{spec.Engine}
		}
		for _, eng := range specEngines {
			start := time.Now()
			m, err := scenario.Run(spec, scenario.Options{Engine: eng, Workers: workers, Shards: shards})
			if err != nil {
				fmt.Fprintf(os.Stderr, "egoist-bench: scenario %s/%s: %v\n", spec.Name, eng, err)
				failed = true
				if m == nil {
					continue
				}
			}
			recs = append(recs, m)
			fmt.Printf("scenario %-18s %-5s n=%-6d epochs=%-3d churn=%.4f joins=%-4d leaves=%-4d rewires/ep=%.1f recovery=%d final=%.1f (%v)\n",
				m.Scenario, m.Engine, m.N, m.Epochs, m.ChurnRate, m.Joins, m.Leaves,
				m.MeanRewires, m.RecoveryEpochs, m.FinalCost, time.Since(start).Round(time.Millisecond))
		}
	}
	if outJSON != "" {
		if err := scenario.WriteMetricsJSON(outJSON, recs); err != nil {
			fmt.Fprintf(os.Stderr, "egoist-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d records)\n", outJSON, len(recs))
	}
	if failed {
		os.Exit(1)
	}
}

// parsePositiveInt parses s as a positive integer (an overlay size for
// the large-scale mode), rejecting the named scales and any trailing
// garbage.
func parsePositiveInt(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if n <= 0 {
		return 0, fmt.Errorf("not positive: %d", n)
	}
	return n, nil
}

// writeSVG renders one figure to dir/fig-<id>.svg.
func writeSVG(dir string, fig *experiments.Figure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "fig-"+fig.ID+".svg"))
	if err != nil {
		return err
	}
	defer f.Close()
	return experiments.RenderSVG(f, fig)
}

// runScaleSize executes one large-scale convergence run and returns
// its benchmark record plus whether the run converged. A non-empty
// tracePath streams every engine phase event as one JSON line.
func runScaleSize(n int, sampleSpec string, epochs, k, workers, shards int, tracePath string) (experiments.BenchRecord, bool, error) {
	spec, err := sampling.ParseSpec(sampleSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "egoist-bench: %v\n", err)
		os.Exit(2)
	}
	if k <= 0 {
		k = 8
		if n < 1000 {
			k = 4
		}
	}
	cfg := sim.ScaleConfig{
		N: n, K: k, Seed: 2008, Sample: spec,
		MaxEpochs: epochs, Workers: workers, Shards: shards,
	}
	if tracePath != "" {
		tw, err := obs.OpenTrace(tracePath)
		if err != nil {
			return experiments.BenchRecord{}, false, err
		}
		defer tw.Close()
		cfg.OnPhase = func(ev sim.PhaseEvent) {
			if err := tw.Emit(ev); err != nil {
				fmt.Fprintf(os.Stderr, "egoist-bench: trace: %v\n", err)
				os.Exit(1)
			}
		}
	}
	start := time.Now()
	res, rec, err := experiments.MeasureScale(cfg)
	if err != nil {
		return rec, false, err
	}
	fmt.Printf("scale run: n=%d k=%d sample=%v workers=%d shards=%d\n", n, k, spec, workers, cfg.Shards)
	fmt.Printf("%-7s %9s %14s %14s %6s %9s\n", "epoch", "rewires", "est cost", "95% band", "pool", "wall")
	for e, ep := range res.PerEpoch {
		fmt.Printf("%-7d %9d %14.1f %14.1f %6d %8.1fs\n",
			e, ep.Rewires, ep.MeanEstCost, ep.MeanBand, ep.PoolSize, float64(ep.WallNS)/1e9)
	}
	fmt.Printf("converged=%v epochs=%d meanSample=%.1f peakRSS=%.0fMB total=%v\n",
		res.Converged, res.Epochs, res.MeanSampleSize, rec.PeakRSSBytes/1e6,
		time.Since(start).Round(time.Millisecond))
	return rec, res.Converged, nil
}

// runScaleMode executes one large-scale convergence run and optionally
// writes its BENCH_scale.json record.
func runScaleMode(n int, sampleSpec string, epochs, k, workers, shards int, benchJSON, tracePath string) {
	rec, _, err := runScaleSize(n, sampleSpec, epochs, k, workers, shards, tracePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "egoist-bench: scale run: %v\n", err)
		os.Exit(1)
	}
	if benchJSON != "" {
		if err := experiments.WriteBenchJSON(benchJSON, []experiments.BenchRecord{rec}); err != nil {
			fmt.Fprintf(os.Stderr, "egoist-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", benchJSON)
	}
}

// runScaleSweep runs the explicit n-sweep (sizes ascending, so each
// VmHWM reading is that size's own peak — see peakRSSBytes) and writes
// one record per size. Sample sizes follow the headline recipe
// min(n/20, 500). Unlike the single -scale mode, a non-converging
// size fails the sweep: the nightly n-sweep doubles as the
// converges-within-the-bound acceptance gate.
func runScaleSweep(sizesCSV string, epochs, k, workers, shards int, benchJSON string) {
	var sizes []int
	for _, f := range strings.Split(sizesCSV, ",") {
		n, err := parsePositiveInt(strings.TrimSpace(f))
		if err != nil {
			fmt.Fprintf(os.Stderr, "egoist-bench: bad -scale-sweep size %q: %v\n", f, err)
			os.Exit(2)
		}
		sizes = append(sizes, n)
	}
	sort.Ints(sizes)
	var recs []experiments.BenchRecord
	for _, n := range sizes {
		kk := k
		if kk <= 0 {
			kk = 8
			if n < 1000 {
				kk = 4
			}
		}
		m := n / 20
		if m > 500 {
			m = 500
		}
		if m < kk+2 {
			m = kk + 2
		}
		rec, converged, err := runScaleSize(n, fmt.Sprintf("demand:%d", m), epochs, k, workers, shards, "")
		if err == nil && !converged {
			err = fmt.Errorf("n=%d did not converge in %d epochs", n, rec.N)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "egoist-bench: scale sweep: %v\n", err)
			os.Exit(1)
		}
		recs = append(recs, rec)
	}
	if benchJSON != "" {
		if err := experiments.WriteBenchJSON(benchJSON, recs); err != nil {
			fmt.Fprintf(os.Stderr, "egoist-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d records)\n", benchJSON, len(recs))
	}
}

func main() {
	var (
		figID     = flag.String("fig", "all", "figure id to regenerate (see -list), or 'all'")
		scale     = flag.String("scale", "full", "experiment scale: full (paper dimensions) or quick — or an overlay size n (e.g. 10000) to run the large-scale sampled engine instead of figures")
		list      = flag.Bool("list", false, "list available figure ids and exit")
		maxRows   = flag.Int("rows", 30, "max table rows per figure (time series are downsampled)")
		svgDir    = flag.String("svg", "", "also write one SVG plot per figure into this directory")
		workers   = flag.Int("workers", 0, "concurrent simulations per figure sweep (0 = NumCPU, 1 = sequential; identical output either way)")
		sample    = flag.String("sample", "demand:500", "sampling spec for the large-scale engine: strategy:m (uniform, demand, strat)")
		epochs    = flag.Int("epochs", 0, "epoch cap for the large-scale engine (0 = engine default)")
		kFlag     = flag.Int("k", 0, "degree budget for the large-scale engine (0 = size default)")
		shards    = flag.Int("shards", 0, "shard count for the scale engine's directory and proposal phase (0 = 1 for -scale runs, spec value for scenarios; results are byte-identical for any value)")
		scaleSwp  = flag.String("scale-sweep", "", "comma-separated overlay sizes (e.g. 10000,30000,100000): run the large-scale engine once per size, ascending, and write one BENCH record each")
		benchJSON = flag.String("bench-json", "", "write BENCH_scale.json-style records to this path (scale runs and -fig scale)")
		traceOut  = flag.String("trace", "", "stream engine phase events (propose/adopt/churn/publish timings) as JSONL to this path during a -scale <n> run")
		scenOne   = flag.String("scenario", "", "run one declarative scenario: a built-in name (see internal/scenario) or a spec file")
		scenDir   = flag.String("scenarios", "", "run every *.json scenario spec in this directory as a matrix across -engines")
		enginesF  = flag.String("engines", "scale", "comma-separated engines for scenario runs: scale,full (specs with an explicit engine ignore this)")
		scenJSON  = flag.String("scenarios-json", "BENCH_scenarios.json", "write scenario metric records to this path ('' disables)")
	)
	flag.Parse()
	experiments.SetWorkers(*workers)

	if *scenOne != "" || *scenDir != "" {
		engines, err := scenario.EngineList(*enginesF)
		if err != nil {
			fmt.Fprintf(os.Stderr, "egoist-bench: %v\n", err)
			os.Exit(2)
		}
		var specs []scenario.Spec
		if *scenOne != "" {
			spec, err := loadScenario(*scenOne)
			if err != nil {
				fmt.Fprintf(os.Stderr, "egoist-bench: %v\n", err)
				os.Exit(2)
			}
			specs = append(specs, spec)
		}
		if *scenDir != "" {
			dirSpecs, err := scenario.LoadDir(*scenDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "egoist-bench: %v\n", err)
				os.Exit(2)
			}
			specs = append(specs, dirSpecs...)
		}
		runScenarios(specs, engines, *workers, *shards, *scenJSON)
		return
	}

	if *scaleSwp != "" {
		runScaleSweep(*scaleSwp, *epochs, *kFlag, *workers, *shards, *benchJSON)
		return
	}

	if n, err := parsePositiveInt(*scale); err == nil {
		runScaleMode(n, *sample, *epochs, *kFlag, *workers, *shards, *benchJSON, *traceOut)
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	var sc experiments.Scale
	switch *scale {
	case "full":
		sc = experiments.Full
	case "quick":
		sc = experiments.Quick
	default:
		fmt.Fprintf(os.Stderr, "egoist-bench: unknown scale %q (want full or quick)\n", *scale)
		os.Exit(2)
	}

	ids := []string{*figID}
	if *figID == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		runner, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "egoist-bench: unknown figure %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		var fig *experiments.Figure
		var err error
		if id == "scale" && *benchJSON != "" {
			var recs []experiments.BenchRecord
			fig, recs, err = experiments.ScaleSweepRecords(sc)
			if err == nil {
				err = experiments.WriteBenchJSON(*benchJSON, recs)
			}
		} else {
			fig, err = runner(sc)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "egoist-bench: figure %s: %v\n", id, err)
			os.Exit(1)
		}
		if err := experiments.Render(os.Stdout, fig, *maxRows); err != nil {
			fmt.Fprintf(os.Stderr, "egoist-bench: render %s: %v\n", id, err)
			os.Exit(1)
		}
		if *svgDir != "" {
			if err := writeSVG(*svgDir, fig); err != nil {
				fmt.Fprintf(os.Stderr, "egoist-bench: svg %s: %v\n", id, err)
				os.Exit(1)
			}
		}
		fmt.Printf("  [figure %s computed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
