// Command egoist-bench regenerates the paper's evaluation figures
// (Sect. 4–6) as text tables: the same series, normalizations and axes the
// paper plots, produced by the simulator over the synthetic underlay.
//
// Usage:
//
//	egoist-bench -fig 1a              # one figure, paper-scale
//	egoist-bench -fig all -scale quick
//	egoist-bench -list
//
// See DESIGN.md §4 for the figure index and EXPERIMENTS.md for recorded
// output.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"egoist/internal/experiments"
)

// writeSVG renders one figure to dir/fig-<id>.svg.
func writeSVG(dir string, fig *experiments.Figure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "fig-"+fig.ID+".svg"))
	if err != nil {
		return err
	}
	defer f.Close()
	return experiments.RenderSVG(f, fig)
}

func main() {
	var (
		figID   = flag.String("fig", "all", "figure id to regenerate (see -list), or 'all'")
		scale   = flag.String("scale", "full", "experiment scale: full (paper dimensions) or quick")
		list    = flag.Bool("list", false, "list available figure ids and exit")
		maxRows = flag.Int("rows", 30, "max table rows per figure (time series are downsampled)")
		svgDir  = flag.String("svg", "", "also write one SVG plot per figure into this directory")
		workers = flag.Int("workers", 0, "concurrent simulations per figure sweep (0 = NumCPU, 1 = sequential; identical output either way)")
	)
	flag.Parse()
	experiments.SetWorkers(*workers)

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	var sc experiments.Scale
	switch *scale {
	case "full":
		sc = experiments.Full
	case "quick":
		sc = experiments.Quick
	default:
		fmt.Fprintf(os.Stderr, "egoist-bench: unknown scale %q (want full or quick)\n", *scale)
		os.Exit(2)
	}

	ids := []string{*figID}
	if *figID == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		runner, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "egoist-bench: unknown figure %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		fig, err := runner(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "egoist-bench: figure %s: %v\n", id, err)
			os.Exit(1)
		}
		if err := experiments.Render(os.Stdout, fig, *maxRows); err != nil {
			fmt.Fprintf(os.Stderr, "egoist-bench: render %s: %v\n", id, err)
			os.Exit(1)
		}
		if *svgDir != "" {
			if err := writeSVG(*svgDir, fig); err != nil {
				fmt.Fprintf(os.Stderr, "egoist-bench: svg %s: %v\n", id, err)
				os.Exit(1)
			}
		}
		fmt.Printf("  [figure %s computed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
