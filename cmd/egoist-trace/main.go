// Command egoist-trace generates and inspects the trace files the
// simulators consume: all-pairs delay matrices (the format of the paper's
// n=295 PlanetLab ping dataset) and ON/OFF churn schedules.
//
// Examples:
//
//	egoist-trace delays -n 295 -model geo -o delays.txt
//	egoist-trace delays -n 100 -model ba -o as-like.txt
//	egoist-trace churn  -n 50 -horizon 600 -on 25 -off 3 -o churn.txt
//	egoist-trace info   -in delays.txt
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"egoist/internal/churn"
	"egoist/internal/topology"
	"egoist/internal/underlay"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "delays":
		delaysCmd(os.Args[2:])
	case "churn":
		churnCmd(os.Args[2:])
	case "info":
		infoCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: egoist-trace <delays|churn|info> [flags]
  delays -n N -model geo|waxman|ba|ring -seed S -o FILE
  churn  -n N -horizon H -on MEAN -off MEAN -pareto -seed S -o FILE
  info   -in FILE`)
	os.Exit(2)
}

func delaysCmd(args []string) {
	fs := flag.NewFlagSet("delays", flag.ExitOnError)
	n := fs.Int("n", 295, "number of sites")
	model := fs.String("model", "geo", "geo | waxman | ba | ring")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)

	var m topology.DelayMatrix
	rng := rand.New(rand.NewSource(*seed))
	switch *model {
	case "geo":
		u, err := underlay.New(underlay.Config{N: *n, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		m = topology.NewMatrix(*n)
		for i := 0; i < *n; i++ {
			for j := 0; j < *n; j++ {
				if i != j {
					m[i][j] = u.Delay(i, j)
				}
			}
		}
	case "waxman":
		m = topology.Waxman(*n, 200, rng)
	case "ba":
		m = topology.BarabasiAlbert(*n, 2, rng)
	case "ring":
		m = topology.RingLattice(*n, 10)
	default:
		fatal(fmt.Errorf("unknown model %q", *model))
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := topology.WriteTrace(w, m); err != nil {
		fatal(err)
	}
}

func churnCmd(args []string) {
	fs := flag.NewFlagSet("churn", flag.ExitOnError)
	n := fs.Int("n", 50, "number of nodes")
	horizon := fs.Float64("horizon", 100, "schedule length in epochs")
	onMean := fs.Float64("on", 25, "mean ON duration (epochs)")
	offMean := fs.Float64("off", 3, "mean OFF duration (epochs)")
	pareto := fs.Bool("pareto", false, "heavy-tailed (Pareto 1.8) session times")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)

	var on churn.SessionDist = churn.Exponential{Mean: *onMean}
	if *pareto {
		on = churn.Pareto{Mean: *onMean, Alpha: 1.8}
	}
	s, err := churn.GenerateSynthetic(churn.SyntheticConfig{
		N: *n, Horizon: *horizon,
		On: on, Off: churn.Exponential{Mean: *offMean},
		Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "generated %d events, churn rate %.5f per epoch\n",
		len(s.Events), s.Rate(*horizon))
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := churn.WriteTrace(w, s); err != nil {
		fatal(err)
	}
}

func infoCmd(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "", "trace file")
	fs.Parse(args)
	if *in == "" {
		fatal(fmt.Errorf("missing -in"))
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	// Try the delay format first, then churn.
	if m, err := topology.ReadTrace(f); err == nil {
		min, max, sum := m[0][1], m[0][1], 0.0
		count := 0
		for i := range m {
			for j := range m[i] {
				if i == j {
					continue
				}
				d := m[i][j]
				if d < min {
					min = d
				}
				if d > max {
					max = d
				}
				sum += d
				count++
			}
		}
		fmt.Printf("delay matrix: n=%d pairs=%d min=%.2fms mean=%.2fms max=%.2fms\n",
			m.N(), count, min, sum/float64(count), max)
		return
	}
	if _, err := f.Seek(0, 0); err != nil {
		fatal(err)
	}
	if s, err := churn.ReadTrace(f); err == nil {
		horizon := 0.0
		if len(s.Events) > 0 {
			horizon = s.Events[len(s.Events)-1].Time
		}
		on := 0
		for _, b := range s.InitialOn {
			if b {
				on++
			}
		}
		fmt.Printf("churn schedule: n=%d events=%d initial-on=%d span=%.1f epochs rate=%.5f\n",
			s.N, len(s.Events), on, horizon, s.Rate(horizon+1e-9))
		return
	}
	fatal(fmt.Errorf("%s: not a recognized delay or churn trace", *in))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "egoist-trace: %v\n", err)
	os.Exit(1)
}
