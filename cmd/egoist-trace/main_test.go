package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"egoist/internal/clitest"
	"egoist/internal/topology"
)

// egoist-trace was the last CLI with zero coverage: a broken flag
// default or a format drift in the trace writers would have shipped
// silently. These smoke tests drive every subcommand end to end via
// the shared clitest harness.

// TestMainInProcess drives the happy paths of all three subcommands in
// process, so main's own statements appear in the coverage profile.
func TestMainInProcess(t *testing.T) {
	dir := t.TempDir()
	delays := filepath.Join(dir, "delays.txt")
	churn := filepath.Join(dir, "churn.txt")
	clitest.RunMain(t, main, "egoist-trace", "delays", "-n", "20", "-model", "waxman", "-o", delays)
	clitest.RunMain(t, main, "egoist-trace", "churn", "-n", "10", "-horizon", "30", "-on", "10", "-off", "2", "-o", churn)
	clitest.RunMain(t, main, "egoist-trace", "info", "-in", delays)
	clitest.RunMain(t, main, "egoist-trace", "info", "-in", churn)
}

// TestSmokeDelaysRoundTrip generates a delay matrix with the real
// binary for every model and checks info reads it back with the right
// dimensions.
func TestSmokeDelaysRoundTrip(t *testing.T) {
	bin := clitest.Build(t, "egoist-trace")
	for _, model := range []string{"geo", "waxman", "ba", "ring"} {
		path := filepath.Join(t.TempDir(), model+".txt")
		out, err := exec.Command(bin, "delays", "-n", "24", "-model", model, "-o", path).CombinedOutput()
		if err != nil {
			t.Fatalf("delays -model %s: %v\n%s", model, err, out)
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		m, err := topology.ReadTrace(f)
		f.Close()
		if err != nil {
			t.Fatalf("model %s wrote an unreadable trace: %v", model, err)
		}
		if m.N() != 24 {
			t.Fatalf("model %s: n=%d, want 24", model, m.N())
		}
		info, err := exec.Command(bin, "info", "-in", path).CombinedOutput()
		if err != nil {
			t.Fatalf("info: %v\n%s", err, info)
		}
		if !strings.Contains(string(info), "delay matrix: n=24") {
			t.Fatalf("model %s: unexpected info output: %s", model, info)
		}
	}
}

// TestSmokeChurnSchedule generates a churn trace (both session models)
// and checks the info summary.
func TestSmokeChurnSchedule(t *testing.T) {
	bin := clitest.Build(t, "egoist-trace")
	for _, extra := range [][]string{nil, {"-pareto"}} {
		path := filepath.Join(t.TempDir(), "churn.txt")
		args := append([]string{"churn", "-n", "16", "-horizon", "50", "-on", "12", "-off", "3", "-o", path}, extra...)
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err != nil {
			t.Fatalf("churn %v: %v\n%s", extra, err, out)
		}
		if !strings.Contains(string(out), "generated") || !strings.Contains(string(out), "churn rate") {
			t.Fatalf("missing generation summary: %s", out)
		}
		info, err := exec.Command(bin, "info", "-in", path).CombinedOutput()
		if err != nil {
			t.Fatalf("info: %v\n%s", err, info)
		}
		if !strings.Contains(string(info), "churn schedule: n=16") {
			t.Fatalf("unexpected info output: %s", info)
		}
	}
}

// TestSmokeBadInputsFail covers the exits: unknown subcommand, missing
// -in, unknown model, unreadable file.
func TestSmokeBadInputsFail(t *testing.T) {
	bin := clitest.Build(t, "egoist-trace")
	if out, err := exec.Command(bin, "frobnicate").CombinedOutput(); err == nil {
		t.Fatalf("unknown subcommand accepted:\n%s", out)
	}
	if out, err := exec.Command(bin).CombinedOutput(); err == nil {
		t.Fatalf("no subcommand accepted:\n%s", out)
	}
	if out, err := exec.Command(bin, "info").CombinedOutput(); err == nil {
		t.Fatalf("info without -in accepted:\n%s", out)
	}
	if out, err := exec.Command(bin, "delays", "-model", "escher").CombinedOutput(); err == nil {
		t.Fatalf("unknown model accepted:\n%s", out)
	}
	garbled := filepath.Join(t.TempDir(), "garbled.txt")
	if err := os.WriteFile(garbled, []byte("not a trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(bin, "info", "-in", garbled).CombinedOutput(); err == nil {
		t.Fatalf("garbled trace accepted:\n%s", out)
	}
}
