package egoist_test

import (
	"fmt"

	"egoist"
)

// ExampleSimulate runs a small overlay simulation with the default
// Best-Response policy and checks the overlay stayed connected.
func ExampleSimulate() {
	res, err := egoist.Simulate(egoist.SimOptions{
		N: 20, K: 3, Seed: 1,
		WarmEpochs: 5, MeasureEpochs: 5,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("connected:", res.MeanCost < 1e6)
	fmt.Println("nodes wired:", len(res.FinalWiring))
	// Output:
	// connected: true
	// nodes wired: 20
}

// ExampleCompare reproduces the Fig. 1 primitive: heuristic policies cost
// more than Best Response under the delay metric.
func ExampleCompare() {
	cmp, err := egoist.Compare(egoist.SimOptions{
		N: 20, K: 3, Seed: 1, WarmEpochs: 5, MeasureEpochs: 5,
	}, egoist.KRandom, egoist.KRegular)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("BR normalized:", cmp.Normalized[egoist.BR])
	fmt.Println("k-Random worse than BR:", cmp.Normalized[egoist.KRandom] > 1)
	fmt.Println("k-Regular worse than BR:", cmp.Normalized[egoist.KRegular] > 1)
	// Output:
	// BR normalized: 1
	// k-Random worse than BR: true
	// k-Regular worse than BR: true
}

// ExampleSampleJoin shows a newcomer joining a large overlay with BR over
// a topology-biased sample (Sect. 5).
func ExampleSampleJoin() {
	res, err := egoist.SampleJoin(egoist.SampleJoinOptions{
		N: 60, K: 3, SampleSize: 12, Radius: 2, Seed: 4,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("baseline ratio:", res.Ratio["BR-no-sampling"])
	fmt.Println("sampled BR within 3x of full BR:", res.Ratio["BR"] < 3)
	// Output:
	// baseline ratio: 1
	// sampled BR within 3x of full BR: true
}
