package egoist

import (
	"math"
	"testing"
	"time"

	"egoist/internal/churn"
	"egoist/internal/topology"
)

func TestSimulateDefaults(t *testing.T) {
	res, err := Simulate(SimOptions{N: 20, K: 3, Seed: 1, WarmEpochs: 4, MeasureEpochs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanCost <= 0 || math.IsNaN(res.MeanCost) {
		t.Fatalf("MeanCost = %v", res.MeanCost)
	}
	if len(res.FinalWiring) != 20 {
		t.Fatalf("FinalWiring size %d", len(res.FinalWiring))
	}
}

func TestSimulateRejectsUnknownKinds(t *testing.T) {
	if _, err := Simulate(SimOptions{N: 10, K: 2, Policy: "nope"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := Simulate(SimOptions{N: 10, K: 2, Metric: "nope"}); err == nil {
		t.Fatal("unknown metric accepted")
	}
	if _, err := Simulate(SimOptions{N: 10, K: 2, CheaterIDs: []int{99}}); err == nil {
		t.Fatal("out-of-range cheater accepted")
	}
}

func TestCompareNormalizesAgainstBR(t *testing.T) {
	cmp, err := Compare(SimOptions{N: 20, K: 2, Seed: 3, WarmEpochs: 4, MeasureEpochs: 3},
		KRandom, KRegular)
	if err != nil {
		t.Fatal(err)
	}
	if got := cmp.Normalized[BR]; math.Abs(got-1) > 1e-12 {
		t.Fatalf("BR normalized = %v, want 1", got)
	}
	for _, p := range []PolicyKind{KRandom, KRegular} {
		if cmp.Normalized[p] < 1 {
			t.Fatalf("%v normalized %.3f < 1; BR should win on delay", p, cmp.Normalized[p])
		}
	}
}

func TestCompareBandwidthRatiosBelowOne(t *testing.T) {
	cmp, err := Compare(SimOptions{N: 18, K: 2, Seed: 4, Metric: Bandwidth, WarmEpochs: 4, MeasureEpochs: 3},
		KRandom)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Normalized[KRandom] > 1 {
		t.Fatalf("bandwidth ratio %v > 1; BR should have more bandwidth", cmp.Normalized[KRandom])
	}
}

func TestMakeChurnAndRate(t *testing.T) {
	s, err := MakeChurn(20, 50, 10, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if ChurnRate(s, 50) <= 0 {
		t.Fatal("expected positive churn rate")
	}
}

func TestSimulateWithCheaters(t *testing.T) {
	res, err := Simulate(SimOptions{N: 20, K: 2, Seed: 5, WarmEpochs: 4, MeasureEpochs: 3, Cheaters: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanCost <= 0 {
		t.Fatalf("MeanCost = %v", res.MeanCost)
	}
}

func TestSampleJoinRatios(t *testing.T) {
	res, err := SampleJoin(SampleJoinOptions{N: 50, K: 3, SampleSize: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Ratio["BR-no-sampling"]; got != 1 {
		t.Fatalf("baseline ratio = %v", got)
	}
	for name, r := range res.Ratio {
		if r <= 0 || math.IsNaN(r) {
			t.Fatalf("ratio[%s] = %v", name, r)
		}
	}
}

func TestSampleJoinUnknownGraph(t *testing.T) {
	if _, err := SampleJoin(SampleJoinOptions{N: 30, K: 3, SampleSize: 8, Graph: "nope"}); err == nil {
		t.Fatal("unknown base graph accepted")
	}
}

func TestMultipathAndDisjointFacade(t *testing.T) {
	u, err := NewUnderlay(14, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(SimOptions{N: 14, K: 3, Seed: 8, Metric: Bandwidth, WarmEpochs: 3, MeasureEpochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := MultipathGain(u, res.FinalWiring)
	if err != nil {
		t.Fatal(err)
	}
	if mp.ParallelGain < 1 || mp.RedirectionGain < mp.ParallelGain-1e-9 {
		t.Fatalf("gains inconsistent: %+v", mp)
	}
	dp, err := DisjointPaths(res.FinalWiring)
	if err != nil {
		t.Fatal(err)
	}
	if dp.MeanPaths <= 0 || dp.Pairs != 14*13 {
		t.Fatalf("disjoint report %+v", dp)
	}
}

func TestMultipathNilUnderlay(t *testing.T) {
	if _, err := MultipathGain(nil, nil); err == nil {
		t.Fatal("nil underlay accepted")
	}
}

func TestStartLocalOverlayLifecycle(t *testing.T) {
	lo, err := StartLocalOverlay(LiveOptions{N: 6, K: 2, Epoch: 60 * time.Millisecond, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer lo.Stop()
	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for i := 0; i < lo.N(); i++ {
			if lo.Known(i) < lo.N()-1 {
				done = false
				break
			}
		}
		if done {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatal("live overlay never reached full mutual knowledge")
}

func TestStartLocalOverlayValidation(t *testing.T) {
	if _, err := StartLocalOverlay(LiveOptions{N: 1, K: 1}); err == nil {
		t.Fatal("N=1 accepted")
	}
	if _, err := StartLocalOverlay(LiveOptions{N: 5, K: 1, Policy: "nope"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestSimulateOverDelayTrace(t *testing.T) {
	m := topology.Waxman(16, 120, newRand(3))
	res, err := Simulate(SimOptions{
		N: 16, K: 3, Seed: 2, WarmEpochs: 4, MeasureEpochs: 3, Delays: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanCost <= 0 || res.MeanCost >= 1e6 {
		t.Fatalf("trace-driven cost %v", res.MeanCost)
	}
	// Size mismatch must be rejected.
	if _, err := Simulate(SimOptions{N: 10, K: 2, Delays: m}); err == nil {
		t.Fatal("trace size mismatch accepted")
	}
}

func TestLoadDelayTraceMissing(t *testing.T) {
	if _, err := LoadDelayTrace("/nonexistent/trace.txt"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestPolicyAndMetricEnumerations(t *testing.T) {
	if len(Policies()) != 6 {
		t.Fatalf("Policies() = %v", Policies())
	}
	if len(Metrics()) != 4 {
		t.Fatalf("Metrics() = %v", Metrics())
	}
	if !Bandwidth.HigherIsBetter() || DelayPing.HigherIsBetter() {
		t.Fatal("HigherIsBetter wrong")
	}
}

func TestScaleRunWithChurn(t *testing.T) {
	// A public-API churn run: 10% of a 150-node overlay leaves at epoch
	// 2.5; the run must report the events and every survivor must end
	// wired to alive targets only.
	sched := &churn.Schedule{N: 150, InitialOn: make([]bool, 150)}
	for i := range sched.InitialOn {
		sched.InitialOn[i] = true
	}
	dead := map[int]bool{}
	for v := 0; v < 150; v += 10 {
		sched.Events = append(sched.Events, churn.Event{Time: 2.5, Node: v, On: false})
		dead[v] = true
	}
	res, err := ScaleRun(ScaleOptions{
		N: 150, K: 3, Seed: 9, Sample: "uniform:25", Epochs: 6, Workers: 2,
		Churn: sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Leaves != len(dead) {
		t.Fatalf("leaves = %d, want %d", res.Leaves, len(dead))
	}
	sawEvent := false
	for _, ep := range res.PerEpoch {
		if ep.Leaves > 0 {
			sawEvent = true
			if ep.Alive != 150-len(dead) {
				t.Fatalf("alive after wave = %d, want %d", ep.Alive, 150-len(dead))
			}
		}
	}
	if !sawEvent {
		t.Fatal("no epoch recorded the wave")
	}
	for i, w := range res.Wiring {
		if dead[i] {
			continue
		}
		if len(w) == 0 {
			t.Fatalf("alive node %d ended unwired", i)
		}
		for _, v := range w {
			if dead[v] {
				t.Fatalf("node %d wired to departed node %d", i, v)
			}
		}
	}
}
