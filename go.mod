module egoist

go 1.21
