// Package-level benchmarks: one testing.B benchmark per paper table/figure
// (regenerating its data series at Quick scale; use cmd/egoist-bench
// -scale full for paper-scale output), plus ablation benches for the
// design choices called out in DESIGN.md §5.
package egoist

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"egoist/internal/backbone"
	"egoist/internal/churn"
	"egoist/internal/core"
	"egoist/internal/experiments"
	"egoist/internal/graph"
	"egoist/internal/sampling"
	"egoist/internal/sim"
	"egoist/internal/topology"
	"egoist/internal/underlay"
)

// benchFigure runs a figure's experiment once per iteration.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	runner := experiments.Registry[id]
	if runner == nil {
		b.Fatalf("unknown figure %s", id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := runner(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Series) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFig1DelayPing(b *testing.B)             { benchFigure(b, "1a") }
func BenchmarkFig1DelayCoords(b *testing.B)           { benchFigure(b, "1b") }
func BenchmarkFig1Load(b *testing.B)                  { benchFigure(b, "1c") }
func BenchmarkFig1Bandwidth(b *testing.B)             { benchFigure(b, "1d") }
func BenchmarkFig2ChurnByK(b *testing.B)              { benchFigure(b, "2a") }
func BenchmarkFig2ChurnRate(b *testing.B)             { benchFigure(b, "2b") }
func BenchmarkFig3Rewirings(b *testing.B)             { benchFigure(b, "3a") }
func BenchmarkFig3BRTradeoff(b *testing.B)            { benchFigure(b, "3b") }
func BenchmarkFig3BREpsilon(b *testing.B)             { benchFigure(b, "3c") }
func BenchmarkFig4OneFreeRider(b *testing.B)          { benchFigure(b, "4a") }
func BenchmarkFig4ManyFreeRiders(b *testing.B)        { benchFigure(b, "4b") }
func BenchmarkFig5SamplingBRGraph(b *testing.B)       { benchFigure(b, "5") }
func BenchmarkFig6SamplingKRandomGraph(b *testing.B)  { benchFigure(b, "6") }
func BenchmarkFig7SamplingKRegularGraph(b *testing.B) { benchFigure(b, "7") }
func BenchmarkFig8SamplingKClosestGraph(b *testing.B) { benchFigure(b, "8") }
func BenchmarkFig10Multipath(b *testing.B)            { benchFigure(b, "10") }
func BenchmarkFig11DisjointPaths(b *testing.B)        { benchFigure(b, "11") }
func BenchmarkOverheadAccounting(b *testing.B)        { benchFigure(b, "overhead") }

// --- micro-benchmarks of the core machinery --------------------------------

// brInstance builds a representative best-response instance of size n.
func brInstance(n int, seed int64) *core.Instance {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for _, w := range []int{(u + 1) % n, (u + 7) % n, (u + n/2) % n} {
			if w != u {
				g.AddArc(u, w, 1+rng.Float64()*40)
			}
		}
	}
	direct := make([]float64, n)
	for j := 1; j < n; j++ {
		direct[j] = 1 + rng.Float64()*40
	}
	return &core.Instance{
		Self: 0, Kind: core.Additive, Direct: direct,
		Resid: core.BuildResid(g, 0, core.Additive, nil),
	}
}

// BenchmarkBestResponse50 measures one BR computation at deployment scale
// (n=50, k=5) — what every EGOIST node runs once per wiring epoch.
func BenchmarkBestResponse50(b *testing.B) {
	in := brInstance(50, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.BestResponse(in, 5, core.BROptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBestResponse295 measures BR at the paper's simulation scale.
func BenchmarkBestResponse295(b *testing.B) {
	in := brInstance(295, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.BestResponse(in, 3, core.BROptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatedEpoch measures a full 50-node simulation epoch
// (underlay step + probing + 50 staggered BR re-wirings + measurement).
func BenchmarkSimulatedEpoch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := sim.Run(sim.Config{
			N: 50, K: 5, Seed: 3, Metric: sim.DelayPing, Policy: core.BRPolicy{},
			WarmEpochs: 0, MeasureEpochs: 1, Workers: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBestResponseScratch contrasts the allocating solver path with
// scratch reuse on a deployment-scale instance: the per-call Dijkstra
// heaps, per-destination arrays and membership sets all come from one
// reused Scratch in the second variant.
func BenchmarkBestResponseScratch(b *testing.B) {
	in := brInstance(50, 1)
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.BestResponse(in, 5, core.BROptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scratch", func(b *testing.B) {
		var s core.Scratch
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.BestResponseScratch(in, 5, core.BROptions{}, &s); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBestResponseParallel measures a multi-epoch BR simulation —
// dominated by the per-epoch best-response phase — on the sequential
// engine versus the speculative worker pool at NumCPU. The warm epochs
// exercise the fallback-heavy transient, the tail the fully speculative
// steady state; byte-identical results are pinned by the sim package's
// determinism tests.
func BenchmarkBestResponseParallel(b *testing.B) {
	run := func(b *testing.B, workers int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, err := sim.Run(sim.Config{
				N: 64, K: 4, Seed: 9, Metric: sim.DelayPing, Policy: core.BRPolicy{},
				WarmEpochs: 6, MeasureEpochs: 2, Workers: workers,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("sequential", func(b *testing.B) { run(b, 1) })
	b.Run(fmt.Sprintf("parallel-%d", runtime.NumCPU()), func(b *testing.B) { run(b, runtime.NumCPU()) })
}

// BenchmarkResidIncremental contrasts the proposal phase's two
// residual-matrix strategies at one epoch's scale: a full APSP per node
// (BuildResidScratch) versus one shortest-path forest repaired
// per node (SPForest.RemoveOut/RestoreOut, Config.Incremental). Both
// produce bit-identical matrices; the forest pays one APSP up front and
// then only the affected-subtree repairs.
func BenchmarkResidIncremental(b *testing.B) {
	const n = 192
	rng := rand.New(rand.NewSource(11))
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for _, w := range []int{(u + 1) % n, (u + 11) % n, (u + n/3) % n, (u + n/2) % n} {
			if w != u {
				g.AddArc(u, w, 1+rng.Float64()*40)
			}
		}
	}
	b.Run("full-apsp-per-node", func(b *testing.B) {
		var s core.Scratch
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for u := 0; u < n; u++ {
				core.BuildResidScratch(g, u, core.Additive, nil, &s)
			}
		}
	})
	b.Run("forest-repair-per-node", func(b *testing.B) {
		f := graph.NewSPForest()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.Reset(g, false)
			for u := 0; u < n; u++ {
				f.RemoveOut(u)
				_ = f.Dist()
				f.RestoreOut()
			}
		}
	})
}

// BenchmarkScaleEpoch measures the large-scale sampled engine at a
// CI-friendly size: a full convergence-bounded run of sampled best
// responses over the constant-memory underlay.
func BenchmarkScaleEpoch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := sim.RunScale(sim.ScaleConfig{
			N: 400, K: 4, Seed: 7,
			Sample:    sampling.Spec{Strategy: sampling.Demand, M: 40},
			MaxEpochs: 3, Workers: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benches (DESIGN.md §5) ---------------------------------------

// BenchmarkAblationExactVsLocal reports the cost gap between exact and
// local-search BR on instances small enough to enumerate.
func BenchmarkAblationExactVsLocal(b *testing.B) {
	in := brInstance(16, 4)
	var gap float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, approxVal, err := core.BestResponse(in, 3, core.BROptions{})
		if err != nil {
			b.Fatal(err)
		}
		_, exactVal, err := core.BestResponse(in, 3, core.BROptions{Exact: true})
		if err != nil {
			b.Fatal(err)
		}
		gap = approxVal/exactVal - 1
	}
	b.ReportMetric(gap*100, "%cost-gap")
}

// BenchmarkAblationSwapDepth compares local-search pass budgets.
func BenchmarkAblationSwapDepth(b *testing.B) {
	for _, passes := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("passes=%d", passes), func(b *testing.B) {
			in := brInstance(100, 5)
			b.ReportAllocs()
			b.ResetTimer()
			var val float64
			for i := 0; i < b.N; i++ {
				_, v, err := core.BestResponse(in, 4, core.BROptions{MaxPasses: passes})
				if err != nil {
					b.Fatal(err)
				}
				val = v
			}
			b.ReportMetric(val, "cost")
		})
	}
}

// BenchmarkAblationSamplingRadius sweeps the biased-sampling radius r.
func BenchmarkAblationSamplingRadius(b *testing.B) {
	delays := topology.Waxman(120, 150, rand.New(rand.NewSource(6)))
	for _, r := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				res, err := sim.RunNewcomer(sim.NewcomerConfig{
					Delays: delays, K: 3, Grow: sim.GrowKRandom,
					SampleSize: 10, Radius: r, Seed: int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				ratio += res.Ratio[sim.NewcomerBRtp]
			}
			b.ReportMetric(ratio/float64(b.N), "BRtp-ratio")
		})
	}
}

// BenchmarkAblationRewireMode compares delayed (paper default) and
// immediate failure repair under fixed churn.
func BenchmarkAblationRewireMode(b *testing.B) {
	sched, err := churn.GenerateSynthetic(churn.SyntheticConfig{
		N: 26, Horizon: 12, On: churn.Exponential{Mean: 2}, Off: churn.Exponential{Mean: 0.7}, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, immediate := range []bool{false, true} {
		name := "delayed"
		if immediate {
			name = "immediate"
		}
		b.Run(name, func(b *testing.B) {
			var eff float64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(sim.Config{
					N: 26, K: 3, Seed: 8, Metric: sim.DelayPing,
					Policy:     core.BRPolicy{},
					WarmEpochs: 2, MeasureEpochs: 10,
					Churn: sched, Immediate: immediate,
				})
				if err != nil {
					b.Fatal(err)
				}
				eff = res.Efficiency.Mean
			}
			b.ReportMetric(eff*1000, "eff-x1000")
		})
	}
}

// BenchmarkAblationBackbone compares the construction and single-failure
// maintenance cost of the cycle backbone against k-MST (Sect. 3.3's
// design argument).
func BenchmarkAblationBackbone(b *testing.B) {
	const n = 50
	u, err := underlay.New(underlay.Config{N: n, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	for _, kind := range []backbone.Kind{backbone.Cycles, backbone.MST} {
		b.Run(kind.String(), func(b *testing.B) {
			after := append([]bool(nil), active...)
			after[n/2] = false
			var churnLinks int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				links, err := backbone.Links(kind, n, active, u.Delay, 2)
				if err != nil {
					b.Fatal(err)
				}
				if !backbone.Connected(links, active) {
					b.Fatal("backbone disconnected")
				}
				churnLinks, err = backbone.MaintenanceCost(kind, n, active, after, u.Delay, 2)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(churnLinks), "links/failure")
		})
	}
}

// BenchmarkAblationDonatedLinks sweeps HybridBR's k2 under fixed churn.
func BenchmarkAblationDonatedLinks(b *testing.B) {
	sched, err := churn.GenerateSynthetic(churn.SyntheticConfig{
		N: 26, Horizon: 12, On: churn.Exponential{Mean: 1.2}, Off: churn.Exponential{Mean: 0.4}, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, k2 := range []int{0, 2, 4} {
		b.Run(fmt.Sprintf("k2=%d", k2), func(b *testing.B) {
			var eff float64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(sim.Config{
					N: 26, K: 5, Seed: 8, Metric: sim.DelayPing,
					Policy:     core.BRPolicy{Donated: k2},
					WarmEpochs: 4, MeasureEpochs: 8, Churn: sched,
				})
				if err != nil {
					b.Fatal(err)
				}
				eff = res.Efficiency.Mean
			}
			b.ReportMetric(eff*1000, "eff-x1000")
		})
	}
}
