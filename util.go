package egoist

import "math/rand"

// newRand returns a seeded RNG (a tiny helper shared by the facade files).
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
