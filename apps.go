package egoist

import (
	"fmt"

	"egoist/internal/apps"
	"egoist/internal/underlay"
)

// MultipathReport summarizes the multipath file-transfer application
// (Sect. 6.1) over all source-target pairs of an overlay.
type MultipathReport struct {
	// ParallelGain is the mean ratio of aggregate parallel-session rate to
	// the direct IP-path rate when the source redirects through its k
	// first-hop neighbors (Fig. 10, lower curve).
	ParallelGain float64
	// RedirectionGain is the mean ratio when all peers allow multipath
	// redirection — the max-flow bound (Fig. 10, upper curve).
	RedirectionGain float64
	// Pairs is the number of source-target pairs evaluated.
	Pairs int
}

// MultipathGain evaluates the multipath transfer gains over a wiring
// produced by Simulate (use a Bandwidth-metric run for the paper's
// setting). The underlay must be the same size as the wiring.
func MultipathGain(u *underlay.Underlay, wiring [][]int) (*MultipathReport, error) {
	if u == nil {
		return nil, fmt.Errorf("egoist: nil underlay")
	}
	par, mf, err := apps.SweepMultipathGain(u, wiring)
	if err != nil {
		return nil, err
	}
	return &MultipathReport{
		ParallelGain:    par.Mean,
		RedirectionGain: mf.Mean,
		Pairs:           par.N,
	}, nil
}

// DisjointPathReport summarizes path diversity for real-time traffic
// (Sect. 6.2).
type DisjointPathReport struct {
	// MeanPaths is the mean number of vertex-disjoint overlay paths per
	// source-target pair (Fig. 11).
	MeanPaths float64
	// MinPaths and MaxPaths bound the per-pair counts.
	MinPaths, MaxPaths float64
	// Pairs is the number of pairs evaluated.
	Pairs int
}

// DisjointPaths counts vertex-disjoint overlay paths over a wiring.
func DisjointPaths(wiring [][]int) (*DisjointPathReport, error) {
	stats, err := apps.SweepDisjointPaths(wiring)
	if err != nil {
		return nil, err
	}
	return &DisjointPathReport{
		MeanPaths: stats.Mean,
		MinPaths:  stats.Min,
		MaxPaths:  stats.Max,
		Pairs:     stats.N,
	}, nil
}
