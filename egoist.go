// Package egoist is the public API of the EGOIST overlay routing library —
// a reproduction of "EGOIST: Overlay Routing using Selfish Neighbor
// Selection" (Smaragdakis et al., CoNEXT 2008).
//
// EGOIST overlays let every node selfishly choose its k overlay neighbors
// with a Best-Response (BR) strategy: minimize its own (weighted) sum of
// shortest-path costs to all destinations, given the residual overlay
// learned through a link-state protocol. The package exposes three layers:
//
//   - Simulate / Compare: epoch-driven simulations over a synthetic
//     wide-area underlay, reproducing the paper's PlanetLab experiments
//     (delay, load and bandwidth metrics; churn; free riders; BR(ε)).
//   - SampleJoin: the scalability-by-sampling experiments of Sect. 5.
//   - ScaleRun: the large-scale simulation mode — sampled best-response
//     dynamics for overlays of 10k+ nodes with an unbiased cost
//     estimator (Sect. 5 generalized to every node's periodic
//     re-wiring).
//   - StartLocalOverlay / overlay daemon (cmd/egoistd): the live,
//     goroutine-per-node runtime speaking the link-state protocol over an
//     in-memory bus or real UDP sockets.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// figure-by-figure reproduction record.
package egoist

import (
	"fmt"
	"math/rand"
	"os"

	"egoist/internal/cheat"
	"egoist/internal/churn"
	"egoist/internal/core"
	"egoist/internal/sampling"
	"egoist/internal/sim"
	"egoist/internal/topology"
	"egoist/internal/underlay"
)

// PolicyKind names a neighbor-selection policy.
type PolicyKind string

// The neighbor-selection policies of Sect. 3.2–3.3.
const (
	// BR is the Best-Response strategy, EGOIST's default.
	BR PolicyKind = "BR"
	// KRandom picks k random neighbors.
	KRandom PolicyKind = "k-Random"
	// KClosest picks the k nodes with best direct cost.
	KClosest PolicyKind = "k-Closest"
	// KRegular wires a fixed offset pattern over the id ring.
	KRegular PolicyKind = "k-Regular"
	// HybridBR donates part of the degree budget to a connectivity
	// backbone and plays BR with the rest.
	HybridBR PolicyKind = "HybridBR"
	// FullMesh links to everyone: the O(n²) RON-style upper bound.
	FullMesh PolicyKind = "Full mesh"
)

// Policies lists every selectable policy kind.
func Policies() []PolicyKind {
	return []PolicyKind{BR, KRandom, KClosest, KRegular, HybridBR, FullMesh}
}

// MetricKind names a link-cost metric (Sect. 4.1).
type MetricKind string

// The cost metrics incorporated in EGOIST.
const (
	// DelayPing measures one-way delay with active pings.
	DelayPing MetricKind = "delay-ping"
	// DelayCoords estimates delay from a virtual coordinate system.
	DelayCoords MetricKind = "delay-coords"
	// NodeLoad charges each link the smoothed CPU load of its target.
	NodeLoad MetricKind = "load"
	// Bandwidth maximizes bottleneck available bandwidth (higher=better).
	Bandwidth MetricKind = "bandwidth"
)

// Metrics lists every metric kind.
func Metrics() []MetricKind {
	return []MetricKind{DelayPing, DelayCoords, NodeLoad, Bandwidth}
}

func (m MetricKind) toSim() (sim.Metric, error) {
	switch m {
	case DelayPing, "":
		return sim.DelayPing, nil
	case DelayCoords:
		return sim.DelayCoords, nil
	case NodeLoad:
		return sim.Load, nil
	case Bandwidth:
		return sim.Bandwidth, nil
	default:
		return 0, fmt.Errorf("egoist: unknown metric %q", m)
	}
}

// HigherIsBetter reports whether larger values of the metric are better.
func (m MetricKind) HigherIsBetter() bool { return m == Bandwidth }

// SimOptions configures one simulated overlay run.
type SimOptions struct {
	// N is the overlay size (paper deployment: 50). K is the per-node
	// neighbor budget.
	N, K int
	// Seed makes runs reproducible. Runs with the same Seed observe
	// identical underlay conditions regardless of policy, enabling the
	// paper's concurrent-deployment comparisons.
	Seed int64
	// Metric selects the cost metric; default DelayPing.
	Metric MetricKind
	// Policy selects neighbor selection; default BR.
	Policy PolicyKind
	// Epsilon enables BR(ε): re-wire only on improvements above this
	// fraction (Sect. 4.3).
	Epsilon float64
	// Donated is HybridBR's k2 (ignored for other policies; default 2
	// when Policy is HybridBR).
	Donated int
	// WarmEpochs (default 10) run before the MeasureEpochs (default 10)
	// that produce measurements.
	WarmEpochs, MeasureEpochs int
	// Churn optionally drives membership. Use MakeChurn or load a trace.
	Churn *churn.Schedule
	// Cheaters installs that many free riders announcing costs scaled by
	// CheatFactor (default 2 when Cheaters > 0).
	Cheaters int
	// CheatFactor scales cheaters' announced outgoing costs.
	CheatFactor float64
	// CheaterIDs pins the cheater identities (overrides Cheaters count).
	CheaterIDs []int
	// Delays, when non-nil, replaces the synthetic underlay with a
	// measured all-pairs delay matrix (see internal/topology's trace
	// format and cmd/egoist-trace). Only the delay metrics are meaningful
	// over a trace. N must equal the matrix size.
	Delays topology.DelayMatrix
	// DelayJitter is the per-epoch relative delay wobble applied on top of
	// a trace (default 0.05 when Delays is set).
	DelayJitter float64
	// Workers bounds the parallelism of the per-epoch best-response phase
	// (0 = runtime.NumCPU(), 1 = sequential). Results are identical for
	// any value; see sim.Config.Workers.
	Workers int
}

func (o SimOptions) build() (sim.Config, error) {
	metric, err := o.Metric.toSim()
	if err != nil {
		return sim.Config{}, err
	}
	cfg := sim.Config{
		N: o.N, K: o.K, Seed: o.Seed, Metric: metric,
		Epsilon:    o.Epsilon,
		WarmEpochs: o.WarmEpochs, MeasureEpochs: o.MeasureEpochs,
		Churn: o.Churn, Workers: o.Workers,
	}
	if cfg.WarmEpochs == 0 {
		cfg.WarmEpochs = 10
	}
	if cfg.MeasureEpochs == 0 {
		cfg.MeasureEpochs = 10
	}
	switch o.Policy {
	case BR, "":
		cfg.Policy = core.BRPolicy{}
	case KRandom:
		cfg.Policy = core.KRandom{}
		cfg.EnforceCycle = true
	case KClosest:
		cfg.Policy = core.KClosest{}
		cfg.EnforceCycle = true
	case KRegular:
		cfg.Policy = core.KRegular{}
	case HybridBR:
		donated := o.Donated
		if donated == 0 {
			donated = 2
		}
		cfg.Policy = core.BRPolicy{Donated: donated}
	case FullMesh:
		cfg.Policy = core.FullMesh{}
		cfg.K = o.N - 1
	default:
		return sim.Config{}, fmt.Errorf("egoist: unknown policy %q", o.Policy)
	}
	factor := o.CheatFactor
	if factor == 0 {
		factor = 2
	}
	switch {
	case len(o.CheaterIDs) > 0:
		m := cheat.None(o.N)
		m.Factor = factor
		for _, id := range o.CheaterIDs {
			if id < 0 || id >= o.N {
				return sim.Config{}, fmt.Errorf("egoist: cheater id %d out of range", id)
			}
			m.Cheater[id] = true
		}
		cfg.Cheat = m
	case o.Cheaters > 0:
		cfg.Cheat = cheat.Population(o.N, o.Cheaters, factor, rand.New(rand.NewSource(o.Seed+77)))
	}
	if o.Delays != nil {
		if o.Delays.N() != o.N {
			return sim.Config{}, fmt.Errorf("egoist: delay trace has %d nodes, N is %d", o.Delays.N(), o.N)
		}
		jitter := o.DelayJitter
		if jitter == 0 {
			jitter = 0.05
		}
		net, err := sim.NewTraceNetwork(o.Delays, jitter, o.Seed+11)
		if err != nil {
			return sim.Config{}, err
		}
		cfg.Network = net
	}
	return cfg, nil
}

// LoadDelayTrace reads an all-pairs delay matrix in the trace format of
// cmd/egoist-trace (and of public all-pairs ping datasets).
func LoadDelayTrace(path string) (topology.DelayMatrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return topology.ReadTrace(f)
}

// SimResult reports a simulation's measurements.
type SimResult struct {
	// MeanCost is the mean per-node routing cost (aggregate bandwidth for
	// the Bandwidth metric, where higher is better).
	MeanCost float64
	// CI95 is the 95% confidence half-width across nodes.
	CI95 float64
	// PerNodeCost is each node's time-averaged cost.
	PerNodeCost []float64
	// MeanEfficiency is the churn-robustness metric of Sect. 4.4.
	MeanEfficiency float64
	// RewiresPerEpoch counts established links per epoch.
	RewiresPerEpoch []int
	// SteadyRewires is the mean re-wiring rate over the last third of the
	// run.
	SteadyRewires float64
	// FinalWiring is the final neighbor set of every node.
	FinalWiring [][]int
	// ProbeBits tallies measurement traffic in bits by category; LSABits
	// is the link-state announcement traffic.
	ProbeBits map[string]float64
	LSABits   float64
}

// Simulate runs one simulated overlay and reports its measurements.
func Simulate(opts SimOptions) (*SimResult, error) {
	cfg, err := opts.build()
	if err != nil {
		return nil, err
	}
	r, err := sim.Run(cfg)
	if err != nil {
		return nil, err
	}
	return &SimResult{
		MeanCost:        r.Cost.Mean,
		CI95:            r.Cost.CI95,
		PerNodeCost:     r.PerNodeCost,
		MeanEfficiency:  r.Efficiency.Mean,
		RewiresPerEpoch: r.Rewires.PerEpoch(),
		SteadyRewires:   r.Rewires.Tail(1.0 / 3),
		FinalWiring:     r.FinalWiring,
		ProbeBits:       r.ProbeBits,
		LSABits:         r.LSABits,
	}, nil
}

// Comparison holds per-policy results over identical network conditions,
// plus each policy's cost normalized by BR's — the exact quantity Fig. 1
// plots.
type Comparison struct {
	Results    map[PolicyKind]*SimResult
	Normalized map[PolicyKind]float64
}

// Compare runs the listed policies (default: all but FullMesh) under
// identical conditions and normalizes their costs by BR's cost. BR is
// always included.
func Compare(opts SimOptions, policies ...PolicyKind) (*Comparison, error) {
	if len(policies) == 0 {
		policies = []PolicyKind{BR, KRandom, KClosest, KRegular}
	}
	hasBR := false
	for _, p := range policies {
		if p == BR {
			hasBR = true
		}
	}
	if !hasBR {
		policies = append([]PolicyKind{BR}, policies...)
	}
	cmp := &Comparison{
		Results:    map[PolicyKind]*SimResult{},
		Normalized: map[PolicyKind]float64{},
	}
	for _, p := range policies {
		o := opts
		o.Policy = p
		res, err := Simulate(o)
		if err != nil {
			return nil, fmt.Errorf("egoist: policy %v: %w", p, err)
		}
		cmp.Results[p] = res
	}
	// Fig. 1 plots policy-cost/BR-cost for cost metrics (>= 1 when BR wins)
	// and policy-bandwidth/BR-bandwidth for the bandwidth metric (<= 1 when
	// BR wins); both are the same ratio.
	br := cmp.Results[BR].MeanCost
	for p, r := range cmp.Results {
		cmp.Normalized[p] = r.MeanCost / br
	}
	return cmp, nil
}

// MakeChurn builds a synthetic ON/OFF churn schedule with exponential
// session (mean onEpochs) and gap (mean offEpochs) durations over the
// given horizon in epochs.
func MakeChurn(n int, horizon, onEpochs, offEpochs float64, seed int64) (*churn.Schedule, error) {
	return churn.GenerateSynthetic(churn.SyntheticConfig{
		N: n, Horizon: horizon,
		On:   churn.Exponential{Mean: onEpochs},
		Off:  churn.Exponential{Mean: offEpochs},
		Seed: seed,
	})
}

// ChurnRate computes the paper's churn metric of a schedule over a horizon.
func ChurnRate(s *churn.Schedule, horizon float64) float64 { return s.Rate(horizon) }

// SampleJoinOptions configures a Sect.-5 sampling experiment: a newcomer
// joins a grown n-node overlay using BR over a sample.
type SampleJoinOptions struct {
	// N is the total node count including the newcomer (paper: 295+1
	// sites from the all-pairs ping trace; here a Waxman stand-in unless
	// Delays is given).
	N int
	// K is the degree budget (paper: 3).
	K int
	// SampleSize is m; Radius is the bias radius r (paper: 2).
	SampleSize, Radius int
	// Graph selects the base overlay's construction policy: BR, KRandom,
	// KRegular or KClosest (Figs. 5–8).
	Graph PolicyKind
	// Seed drives the randomness; Delays optionally replaces the synthetic
	// delay matrix with a trace.
	Seed   int64
	Delays topology.DelayMatrix
}

// SampleJoinResult maps strategy name to the newcomer's cost ratio versus
// BR without sampling.
type SampleJoinResult struct {
	// Ratio[name] is newcomer-cost(name)/newcomer-cost(BR-no-sampling).
	Ratio map[string]float64
}

// SampleJoin runs one newcomer-join experiment.
func SampleJoin(opts SampleJoinOptions) (*SampleJoinResult, error) {
	grow := sim.GrowBR
	switch opts.Graph {
	case BR, "":
	case KRandom:
		grow = sim.GrowKRandom
	case KRegular:
		grow = sim.GrowKRegular
	case KClosest:
		grow = sim.GrowKClosest
	default:
		return nil, fmt.Errorf("egoist: unsupported base graph %q", opts.Graph)
	}
	delays := opts.Delays
	if delays == nil {
		if opts.N < 4 {
			return nil, fmt.Errorf("egoist: N = %d too small", opts.N)
		}
		delays = topology.Waxman(opts.N, 180, rand.New(rand.NewSource(opts.Seed+5)))
	}
	res, err := sim.RunNewcomer(sim.NewcomerConfig{
		Delays: delays, K: opts.K, Grow: grow,
		SampleSize: opts.SampleSize, Radius: opts.Radius, Seed: opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	out := &SampleJoinResult{Ratio: map[string]float64{}}
	for s, r := range res.Ratio {
		out.Ratio[s.String()] = r
	}
	return out, nil
}

// NewUnderlay builds the synthetic wide-area underlay used by the
// simulations, exposed for applications that want to evaluate multipath
// gains (see MultipathGain).
func NewUnderlay(n int, seed int64) (*underlay.Underlay, error) {
	return underlay.New(underlay.Config{N: n, Seed: seed})
}

// ScaleOptions configures a large-scale sampled simulation (ScaleRun):
// best-response dynamics where every node optimizes an unbiased
// estimate of its full-roster cost computed on a weighted destination
// sample, which is what makes 10k+-node overlays tractable.
type ScaleOptions struct {
	// N is the overlay size; K the degree budget (0 = 8, or 4 below
	// 1000 nodes).
	N, K int
	// Sample is the sampling spec "strategy:m" — strategies uniform,
	// demand (preference-proportional) and strat (distance-stratified).
	// Empty selects "demand:<n/20>".
	Sample string
	// Epochs caps the run (0 = engine default with early convergence
	// stop). Epsilon is the BR(ε) adoption threshold (0 = 0.05).
	Epochs  int
	Epsilon float64
	// Seed drives all randomness; Workers the parallelism (0 = NumCPU;
	// results are byte-identical for any value).
	Seed    int64
	Workers int
	// Shards partitions the facility directory and proposal phase into
	// contiguous id bands (0 = 1). Like Workers a physical layout knob:
	// results are byte-identical for any value.
	Shards int
	// Churn optionally drives dynamic membership (times in epochs):
	// joins bootstrap into the overlay and its facility directory,
	// leaves orphan their in-links immediately and the victims re-wire
	// within one epoch. Use MakeChurn or load a trace.
	Churn *churn.Schedule
}

// ScaleEpochStats is one epoch's aggregate measurements of a ScaleRun.
type ScaleEpochStats struct {
	// Rewires counts nodes that adopted a new wiring.
	Rewires int
	// EstCost is the mean per-node estimated full-roster cost; Band the
	// mean 95% confidence half-width of that estimate.
	EstCost, Band float64
	// Joins and Leaves count membership events applied this epoch;
	// Alive is the population at the epoch's end.
	Joins, Leaves int
	Alive         int
}

// ScaleRunResult reports a large-scale run.
type ScaleRunResult struct {
	// Epochs run; Converged reports whether re-wiring activity fell
	// below 1% of alive nodes (with no membership events pending)
	// before the epoch cap.
	Epochs    int
	Converged bool
	// PerEpoch holds the per-epoch statistics; Wiring the final overlay
	// (nil rows for departed nodes).
	PerEpoch []ScaleEpochStats
	Wiring   [][]int
	// Joins and Leaves total the membership events applied.
	Joins, Leaves int
}

// ScaleRun executes one large-scale sampled simulation.
func ScaleRun(opts ScaleOptions) (*ScaleRunResult, error) {
	k := opts.K
	if k <= 0 {
		k = 8
		if opts.N < 1000 {
			k = 4
		}
	}
	specStr := opts.Sample
	if specStr == "" {
		m := opts.N / 20
		if m < k+2 {
			m = k + 2
		}
		if m > 500 {
			m = 500 // the tuned headline configuration caps at demand:500
		}
		specStr = fmt.Sprintf("demand:%d", m)
	}
	spec, err := sampling.ParseSpec(specStr)
	if err != nil {
		return nil, err
	}
	res, err := sim.RunScale(sim.ScaleConfig{
		N: opts.N, K: k, Seed: opts.Seed, Sample: spec,
		Epsilon: opts.Epsilon, MaxEpochs: opts.Epochs, Workers: opts.Workers,
		Shards: opts.Shards,
		Churn:  opts.Churn,
	})
	if err != nil {
		return nil, err
	}
	out := &ScaleRunResult{
		Epochs:    res.Epochs,
		Converged: res.Converged,
		Wiring:    res.Wiring,
		Joins:     res.Joins,
		Leaves:    res.Leaves,
	}
	for _, ep := range res.PerEpoch {
		out.PerEpoch = append(out.PerEpoch, ScaleEpochStats{
			Rewires: ep.Rewires, EstCost: ep.MeanEstCost, Band: ep.MeanBand,
			Joins: ep.Joins, Leaves: ep.Leaves, Alive: ep.Alive,
		})
	}
	return out, nil
}
