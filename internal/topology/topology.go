// Package topology provides delay-matrix sources for EGOIST simulations:
// synthetic generators (Waxman, Barabási–Albert/BRITE-like, ring lattice)
// and a text trace format compatible with all-pairs ping datasets like the
// one the paper uses for its n=295 PlanetLab simulations.
//
// A delay matrix is the static input of the large-scale simulations of
// Sect. 5; the live system instead derives delays from internal/underlay.
package topology

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"egoist/internal/graph"
)

// DelayMatrix holds pairwise one-way delays in milliseconds.
// M[i][j] is the delay from i to j; M[i][i] is 0.
type DelayMatrix [][]float64

// N returns the number of nodes.
func (m DelayMatrix) N() int { return len(m) }

// Validate checks that the matrix is square, has a zero diagonal, and all
// off-diagonal entries are positive and finite.
func (m DelayMatrix) Validate() error {
	n := len(m)
	for i, row := range m {
		if len(row) != n {
			return fmt.Errorf("topology: row %d has %d entries, want %d", i, len(row), n)
		}
		for j, d := range row {
			switch {
			case i == j && d != 0:
				return fmt.Errorf("topology: diagonal entry (%d,%d) = %v, want 0", i, j, d)
			case i != j && (d <= 0 || math.IsNaN(d) || math.IsInf(d, 0)):
				return fmt.Errorf("topology: entry (%d,%d) = %v, want positive finite", i, j, d)
			}
		}
	}
	return nil
}

// NewMatrix allocates an n×n zero matrix.
func NewMatrix(n int) DelayMatrix {
	m := make(DelayMatrix, n)
	backing := make([]float64, n*n)
	for i := range m {
		m[i], backing = backing[:n], backing[n:]
	}
	return m
}

// Waxman generates an n-node delay matrix from the Waxman random graph
// model: nodes are placed uniformly in a unit square and the delay between
// two nodes is proportional to their Euclidean distance, scaled to scaleMS
// milliseconds across the diagonal, with multiplicative noise. The full
// matrix is produced (the overlay can link any pair), so alpha/beta edge
// probabilities are not needed — only the distance geometry matters.
func Waxman(n int, scaleMS float64, rng *rand.Rand) DelayMatrix {
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i], ys[i] = rng.Float64(), rng.Float64()
	}
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d := math.Hypot(xs[i]-xs[j], ys[i]-ys[j]) / math.Sqrt2 * scaleMS
			noise := 1 + math.Abs(rng.NormFloat64())*0.1
			m[i][j] = math.Max(0.1, d*noise+1)
		}
	}
	return m
}

// BarabasiAlbert generates an n-node delay matrix from a BRITE-like
// preferential-attachment topology: a scale-free router graph is grown with
// mAttach edges per new node, each underlay edge gets a random latency, and
// the delay between two overlay nodes is their shortest-path distance in the
// router graph. This reproduces the heavy-tailed, hub-dominated delay
// structure of AS-level topologies.
func BarabasiAlbert(n, mAttach int, rng *rand.Rand) DelayMatrix {
	if mAttach < 1 {
		mAttach = 1
	}
	g := graph.New(n)
	// Track attachment targets proportional to degree using the repeated
	// endpoint list trick.
	var endpoints []int
	for v := 1; v < n; v++ {
		attach := mAttach
		if attach > v {
			attach = v
		}
		chosen := map[int]bool{}
		for len(chosen) < attach {
			var target int
			if len(endpoints) == 0 || rng.Float64() < 0.2 {
				target = rng.Intn(v)
			} else {
				target = endpoints[rng.Intn(len(endpoints))]
			}
			if target != v {
				chosen[target] = true
			}
		}
		for target := range chosen {
			w := 2 + rng.ExpFloat64()*15 // ms per router hop
			g.AddArc(v, target, w)
			g.AddArc(target, v, w*(1+math.Abs(rng.NormFloat64())*0.05))
			endpoints = append(endpoints, v, target)
		}
	}
	dist := graph.APSP(g)
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m[i][j] = dist[i][j]
			}
		}
	}
	return m
}

// RingLattice generates a delay matrix where nodes sit on a ring and the
// delay is proportional to ring distance. Useful as a pathological case for
// k-Regular (which matches it perfectly) and as a deterministic fixture.
func RingLattice(n int, hopMS float64) DelayMatrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d := (j - i + n) % n
			if rev := (i - j + n) % n; rev < d {
				d = rev
			}
			m[i][j] = float64(d) * hopMS
		}
	}
	return m
}

// WriteTrace writes the matrix in the all-pairs ping trace format:
// a header line "n <count>" followed by one "i j delay_ms" line per
// directed pair.
func WriteTrace(w io.Writer, m DelayMatrix) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", m.N()); err != nil {
		return err
	}
	for i := range m {
		for j := range m[i] {
			if i == j {
				continue
			}
			if _, err := fmt.Fprintf(bw, "%d %d %.4f\n", i, j, m[i][j]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadTrace parses the format emitted by WriteTrace. Missing pairs are an
// error; the matrix must be complete for the simulations to be meaningful.
func ReadTrace(r io.Reader) (DelayMatrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("topology: empty trace")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 2 || header[0] != "n" {
		return nil, fmt.Errorf("topology: bad header %q", sc.Text())
	}
	n, err := strconv.Atoi(header[1])
	if err != nil || n < 2 {
		return nil, fmt.Errorf("topology: bad node count %q", header[1])
	}
	m := NewMatrix(n)
	seen := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 3 {
			return nil, fmt.Errorf("topology: bad line %q", line)
		}
		i, err1 := strconv.Atoi(f[0])
		j, err2 := strconv.Atoi(f[1])
		d, err3 := strconv.ParseFloat(f[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("topology: bad line %q", line)
		}
		if i < 0 || i >= n || j < 0 || j >= n || i == j {
			return nil, fmt.Errorf("topology: bad pair (%d,%d)", i, j)
		}
		m[i][j] = d
		seen++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if seen != n*(n-1) {
		return nil, fmt.Errorf("topology: trace has %d pairs, want %d", seen, n*(n-1))
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
