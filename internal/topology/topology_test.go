package topology

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestWaxmanValid(t *testing.T) {
	m := Waxman(50, 200, rand.New(rand.NewSource(1)))
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.N() != 50 {
		t.Fatalf("N = %d, want 50", m.N())
	}
}

func TestBarabasiAlbertValid(t *testing.T) {
	m := BarabasiAlbert(80, 2, rand.New(rand.NewSource(2)))
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBarabasiAlbertConnected(t *testing.T) {
	// Preferential attachment always yields a connected graph, so every
	// delay must be finite (Validate checks this) even with mAttach=1.
	m := BarabasiAlbert(40, 1, rand.New(rand.NewSource(3)))
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRingLatticeStructure(t *testing.T) {
	m := RingLattice(6, 10)
	if m[0][1] != 10 || m[0][3] != 30 || m[0][5] != 10 {
		t.Fatalf("ring distances wrong: %v", m[0])
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadDiagonal(t *testing.T) {
	m := NewMatrix(3)
	for i := range m {
		for j := range m[i] {
			if i != j {
				m[i][j] = 1
			}
		}
	}
	m[1][1] = 5
	if err := m.Validate(); err == nil {
		t.Fatal("expected diagonal error")
	}
}

func TestValidateCatchesNonPositive(t *testing.T) {
	m := NewMatrix(2)
	m[0][1] = 1
	m[1][0] = 0 // invalid: off-diagonal zero
	if err := m.Validate(); err == nil {
		t.Fatal("expected non-positive entry error")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	m := Waxman(12, 100, rand.New(rand.NewSource(4)))
	var buf bytes.Buffer
	if err := WriteTrace(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != m.N() {
		t.Fatalf("round trip N = %d, want %d", got.N(), m.N())
	}
	for i := range m {
		for j := range m[i] {
			diff := got[i][j] - m[i][j]
			if diff > 1e-3 || diff < -1e-3 {
				t.Fatalf("entry (%d,%d): %v vs %v", i, j, got[i][j], m[i][j])
			}
		}
	}
}

func TestReadTraceRejectsIncomplete(t *testing.T) {
	in := "n 3\n0 1 5.0\n"
	if _, err := ReadTrace(strings.NewReader(in)); err == nil {
		t.Fatal("expected error for incomplete trace")
	}
}

func TestReadTraceRejectsBadHeader(t *testing.T) {
	for _, in := range []string{"", "x 3\n", "n -1\n", "n abc\n"} {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Fatalf("expected error for header %q", in)
		}
	}
}

func TestReadTraceRejectsSelfPair(t *testing.T) {
	in := "n 2\n0 0 5.0\n0 1 1\n1 0 1\n"
	if _, err := ReadTrace(strings.NewReader(in)); err == nil {
		t.Fatal("expected error for self pair")
	}
}

func TestReadTraceSkipsComments(t *testing.T) {
	in := "n 2\n# comment\n0 1 5.0\n\n1 0 6.0\n"
	m, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m[0][1] != 5 || m[1][0] != 6 {
		t.Fatalf("parsed %v", m)
	}
}

// Property: generated matrices of any seed validate.
func TestGeneratorsAlwaysValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		if err := Waxman(n, 150, rng).Validate(); err != nil {
			return false
		}
		return BarabasiAlbert(n, 1+rng.Intn(3), rng).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
