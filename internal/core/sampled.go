package core

import (
	"fmt"

	"egoist/internal/sampling"
)

// This file is the sampled best-response solver of the large-scale
// simulation mode: the node solves the SNS game against a weighted
// destination sample instead of the full roster (the scaled-input
// formulation of Sect. 5, generalized from the newcomer experiments to
// every node's periodic re-wiring). The sample's inverse-probability
// weights are folded into the preference vector, so the solver's
// objective is by construction the Horvitz–Thompson estimate of the
// full-roster cost — unbiased for any fixed wiring — and the companion
// estimator reports the 95% confidence band the adoption tests and the
// accuracy property tests consume.

// sampledInstance derives the weighted sampled instance from in: the
// objective runs over the sampled destinations with pref·invProb
// weights. Candidates are left as in's (the caller restricts them when
// the candidate set is sampled too). The weight vector lives in s when
// one is supplied, keeping the scale engine's hot path allocation-free.
func sampledInstance(in *Instance, ds *sampling.DestSample, s *Scratch) *Instance {
	var w []float64
	if s != nil {
		s.prefW = floats(s.prefW, in.n())
		w = s.prefW
	} else {
		w = make([]float64, in.n())
	}
	for i, j := range ds.Dests {
		w[j] = in.pref(j) * ds.InvProb[i]
	}
	out := *in
	out.Dests = ds.Dests
	out.Pref = w
	return &out
}

// BestResponseSampled solves the best-response problem against the
// destination sample ds: the solver sees only the sampled destinations,
// weighted so its objective estimates the full-roster cost without bias.
// It returns the chosen wiring and the estimate of the chosen wiring's
// full-roster objective, with its 95% confidence band.
//
// The returned estimate is computed on the optimization sample, so it is
// optimistically biased for the chosen wiring (the wiring was picked to
// minimize exactly this estimate). Paired comparisons on the same sample
// — the BR(ε) adoption test — are unaffected, but an honest standalone
// cost estimate needs a fresh draw: re-evaluate with EvalSampled on an
// independent sample, as the accuracy property tests do.
//
// The instance's Candidates field governs which facilities may be wired;
// pass ds.Dests (or a superset including the current wiring) for the
// fully sampled game.
func BestResponseSampled(in *Instance, k int, ds *sampling.DestSample, opts BROptions, s *Scratch) ([]int, sampling.Estimate, error) {
	if ds == nil || len(ds.Dests) == 0 {
		return nil, sampling.Estimate{}, fmt.Errorf("core: empty destination sample")
	}
	sin := sampledInstance(in, ds, s)
	chosen, _, err := BestResponseScratch(sin, k, opts, s)
	if err != nil {
		return nil, sampling.Estimate{}, err
	}
	return chosen, EvalSampled(in, chosen, ds, s), nil
}

// EvalSampled estimates the full-roster objective of wiring chosen from
// the destination sample ds: the Horvitz–Thompson expansion of the
// per-destination weighted costs, with its 95% band. For AggSum the
// estimate is unbiased for Eval's full-roster value of the same wiring.
func EvalSampled(in *Instance, chosen []int, ds *sampling.DestSample, s *Scratch) sampling.Estimate {
	var best []float64
	if s != nil {
		s.best = floats(s.best, in.n())
		best = s.best
	} else {
		best = make([]float64, in.n())
	}
	in.bestPerDestInto(chosen, best)
	return ds.Estimate(func(j int) float64 {
		return in.pref(j) * in.Kind.finalize(best[j])
	})
}
