package core

import (
	"math/rand"
	"testing"

	"egoist/internal/graph"
)

// runBRDynamics plays rounds of best-response dynamics over a static cost
// matrix until no node re-wires or maxRounds elapse. It returns the number
// of rounds until quiescence, or -1 if it never settled.
func runBRDynamics(t *testing.T, cost [][]float64, k, maxRounds int) (int, [][]int) {
	t.Helper()
	n := len(cost)
	wiring := make([][]int, n)
	// Start from a ring so the graph is connected.
	for v := 0; v < n; v++ {
		wiring[v] = []int{(v + 1) % n}
	}
	build := func() *graph.Digraph {
		g := graph.New(n)
		for v, ws := range wiring {
			for _, w := range ws {
				g.AddArc(v, w, cost[v][w])
			}
		}
		return g
	}
	for round := 0; round < maxRounds; round++ {
		changed := false
		for v := 0; v < n; v++ {
			inst := &Instance{
				Self:   v,
				Kind:   Additive,
				Direct: cost[v],
				Resid:  BuildResid(build(), v, Additive, nil),
			}
			chosen, newVal, err := BestResponse(inst, k, BROptions{})
			if err != nil {
				t.Fatal(err)
			}
			curVal := inst.Eval(wiring[v])
			if ShouldRewire(Additive, curVal, newVal, 0) {
				wiring[v] = chosen
				changed = true
			}
		}
		if !changed {
			return round, wiring
		}
	}
	return -1, wiring
}

// TestBRDynamicsReachStableWirings exercises the paper's premise (from the
// SNS game [21,20]): under static conditions, best-response dynamics with
// uniform preferences settle quickly into a stable wiring — a pure Nash
// equilibrium of the game restricted to the local-search strategy space.
func TestBRDynamicsReachStableWirings(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 12
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				if i != j {
					cost[i][j] = 1 + rng.Float64()*50
				}
			}
		}
		rounds, wiring := runBRDynamics(t, cost, 3, 30)
		if rounds < 0 {
			t.Fatalf("seed %d: BR dynamics did not settle in 30 rounds", seed)
		}
		// The settled overlay must be strongly connected: disconnection
		// carries the penalty, so any stable state is connected.
		g := graph.New(n)
		for v, ws := range wiring {
			for _, w := range ws {
				g.AddArc(v, w, 1)
			}
		}
		if !graph.StronglyConnected(g, nil) {
			t.Fatalf("seed %d: stable wiring disconnected", seed)
		}
	}
}

// TestBRDynamicsStableStateIsLocalOptimum verifies that in the settled
// state no node can improve by a local-search re-wiring — the "near
// equilibria in the Nash sense" the paper builds on.
func TestBRDynamicsStableStateIsLocalOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 10
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			if i != j {
				cost[i][j] = 1 + rng.Float64()*30
			}
		}
	}
	rounds, wiring := runBRDynamics(t, cost, 2, 40)
	if rounds < 0 {
		t.Skip("dynamics cycled on this instance (non-uniform games may lack equilibria)")
	}
	g := graph.New(n)
	for v, ws := range wiring {
		for _, w := range ws {
			g.AddArc(v, w, cost[v][w])
		}
	}
	for v := 0; v < n; v++ {
		inst := &Instance{
			Self:   v,
			Kind:   Additive,
			Direct: cost[v],
			Resid:  BuildResid(g, v, Additive, nil),
		}
		_, newVal, err := BestResponse(inst, 2, BROptions{})
		if err != nil {
			t.Fatal(err)
		}
		if cur := inst.Eval(wiring[v]); newVal < cur-1e-9 {
			t.Fatalf("node %d can still improve: %v -> %v", v, cur, newVal)
		}
	}
}
