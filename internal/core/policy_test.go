package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"egoist/internal/graph"
)

// testRequest builds a request over an n-node overlay with random direct
// costs and a ring announced graph.
func testRequest(rng *rand.Rand, n, k int) *Request {
	g := graph.New(n)
	direct := make([]float64, n)
	for v := 0; v < n; v++ {
		g.AddArc(v, (v+1)%n, 1+rng.Float64()*10)
		if v != 0 {
			direct[v] = 1 + rng.Float64()*10
		}
	}
	return &Request{Self: 0, K: k, Kind: Additive, Direct: direct, Graph: g, Rng: rng}
}

func checkWellFormed(t *testing.T, name string, out []int, req *Request) {
	t.Helper()
	if !sort.IntsAreSorted(out) {
		t.Fatalf("%s: result not sorted: %v", name, out)
	}
	seen := map[int]bool{}
	for _, v := range out {
		if v == req.Self {
			t.Fatalf("%s: self-link in %v", name, out)
		}
		if seen[v] {
			t.Fatalf("%s: duplicate in %v", name, out)
		}
		if req.Active != nil && !req.Active[v] {
			t.Fatalf("%s: dead node %d chosen", name, v)
		}
		seen[v] = true
	}
	if len(out) > req.K {
		t.Fatalf("%s: %d links exceed budget %d", name, len(out), req.K)
	}
}

func TestAllPoliciesWellFormed(t *testing.T) {
	policies := []Policy{KRandom{}, KClosest{}, KRegular{}, BRPolicy{}, BRPolicy{Donated: 2}, FullMesh{}}
	rng := rand.New(rand.NewSource(1))
	for _, p := range policies {
		req := testRequest(rng, 12, 4)
		out, err := p.Select(req)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if p.Name() != "Full mesh" {
			checkWellFormed(t, p.Name(), out, req)
			if len(out) != 4 {
				t.Fatalf("%s: %d links, want 4", p.Name(), len(out))
			}
		} else if len(out) != 11 {
			t.Fatalf("full mesh: %d links, want 11", len(out))
		}
	}
}

func TestKClosestPicksCheapest(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	req := testRequest(rng, 10, 3)
	for j := 1; j < 10; j++ {
		req.Direct[j] = float64(j)
	}
	out, err := KClosest{}.Select(req)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("KClosest = %v, want %v", out, want)
		}
	}
}

func TestKClosestBottleneckPicksFattest(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	req := testRequest(rng, 10, 2)
	req.Kind = Bottleneck
	for j := 1; j < 10; j++ {
		req.Direct[j] = float64(j)
	}
	out, err := KClosest{}.Select(req)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 8 || out[1] != 9 {
		t.Fatalf("KClosest bottleneck = %v, want [8 9]", out)
	}
}

func TestKRandomRequiresRng(t *testing.T) {
	req := &Request{Self: 0, K: 2, Direct: make([]float64, 5)}
	if _, err := (KRandom{}).Select(req); err == nil {
		t.Fatal("KRandom accepted nil Rng")
	}
}

func TestKRandomRespectsActiveMask(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	req := testRequest(rng, 10, 5)
	req.Active = make([]bool, 10)
	for _, v := range []int{0, 1, 2, 3} {
		req.Active[v] = true
	}
	out, err := KRandom{}.Select(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 { // only 3 alive candidates
		t.Fatalf("got %v, want 3 alive candidates", out)
	}
	checkWellFormed(t, "k-Random", out, req)
}

func TestKRegularOffsetsPaperFormula(t *testing.T) {
	// n=10, k=2: offsets o_j = 1 + (j-1)*9/3 = {1, 4}.
	rng := rand.New(rand.NewSource(5))
	req := testRequest(rng, 10, 2)
	out, err := KRegular{}.Select(req)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 4}
	if len(out) != 2 || out[0] != want[0] || out[1] != want[1] {
		t.Fatalf("KRegular = %v, want %v", out, want)
	}
}

func TestKRegularOverActiveRing(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	req := testRequest(rng, 10, 2)
	req.Active = make([]bool, 10)
	// Alive: 0,2,4,6,8 -> ring positions; self 0 at pos 0; n=5,k=2:
	// offsets 1 + (j-1)*4/3 = {1, 2} -> nodes 2 and 4.
	for v := 0; v < 10; v += 2 {
		req.Active[v] = true
	}
	out, err := KRegular{}.Select(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != 2 || out[1] != 4 {
		t.Fatalf("KRegular active ring = %v, want [2 4]", out)
	}
}

func TestBRPolicyBeatsRandomOnCost(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// A richer overlay where choices matter.
	n, k := 20, 3
	g := graph.New(n)
	direct := make([]float64, n)
	for v := 0; v < n; v++ {
		for _, w := range []int{(v + 1) % n, (v + 7) % n} {
			g.AddArc(v, w, 1+rng.Float64()*30)
		}
		if v != 0 {
			direct[v] = 1 + rng.Float64()*30
		}
	}
	req := &Request{Self: 0, K: k, Kind: Additive, Direct: direct, Graph: g, Rng: rng}
	brOut, err := (BRPolicy{}).Select(req)
	if err != nil {
		t.Fatal(err)
	}
	inst := &Instance{Self: 0, Kind: Additive, Direct: direct, Resid: BuildResid(g, 0, Additive, nil)}
	brCost := inst.Eval(brOut)
	worse := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		rOut, err := (KRandom{}).Select(req)
		if err != nil {
			t.Fatal(err)
		}
		if inst.Eval(rOut) >= brCost {
			worse++
		}
	}
	if worse < trials*3/4 {
		t.Fatalf("BR beat random only %d/%d times", worse, trials)
	}
}

func TestHybridBRDonatedLinksPresent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	req := testRequest(rng, 12, 5)
	out, err := (BRPolicy{Donated: 2}).Select(req)
	if err != nil {
		t.Fatal(err)
	}
	// Donated cycle with offset 1 over full ring: neighbors 1 and 11.
	if !containsInt(out, 1) || !containsInt(out, 11) {
		t.Fatalf("HybridBR output %v missing donated ring links 1,11", out)
	}
	if len(out) != 5 {
		t.Fatalf("HybridBR used %d links, want 5", len(out))
	}
}

func TestHybridBRDonatedExceedsK(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	req := testRequest(rng, 12, 2)
	out, err := (BRPolicy{Donated: 2}).Select(req)
	if err != nil {
		t.Fatal(err)
	}
	// All links donated, none left for BR.
	if len(out) != 2 {
		t.Fatalf("got %v, want exactly the 2 donated links", out)
	}
}

func TestBRPolicySampleRestrictsChoices(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	req := testRequest(rng, 15, 3)
	req.Sample = []int{3, 5, 7, 9}
	out, err := (BRPolicy{SampleDests: true}).Select(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if !containsInt(req.Sample, v) {
			t.Fatalf("BR chose %d outside sample %v", v, req.Sample)
		}
	}
}

func TestEnforceCycleConnectsDisconnected(t *testing.T) {
	// Two islands: {0,1} and {2,3}.
	wirings := [][]int{{1}, {0}, {3}, {2}}
	cost := func(i, j int) float64 { return 1 }
	changed := EnforceCycle(wirings, Additive, nil, cost)
	if !changed {
		t.Fatal("EnforceCycle reported no change on disconnected graph")
	}
	g := graph.New(4)
	for i, ws := range wirings {
		for _, j := range ws {
			g.AddArc(i, j, 1)
		}
	}
	if !graph.StronglyConnected(g, nil) {
		t.Fatalf("still disconnected after EnforceCycle: %v", wirings)
	}
}

func TestEnforceCycleNoOpWhenConnected(t *testing.T) {
	wirings := [][]int{{1}, {2}, {0}}
	if EnforceCycle(wirings, Additive, nil, func(i, j int) float64 { return 1 }) {
		t.Fatal("EnforceCycle changed an already-connected overlay")
	}
}

func TestEnforceCycleHonorsActiveMask(t *testing.T) {
	// Node 3 is down; active {0,1,2} disconnected pairs.
	wirings := [][]int{{1}, {0}, {1}, {}}
	active := []bool{true, true, true, false}
	EnforceCycle(wirings, Additive, active, func(i, j int) float64 { return 1 })
	g := graph.New(4)
	for i, ws := range wirings {
		if !active[i] {
			continue
		}
		for _, j := range ws {
			g.AddArc(i, j, 1)
		}
	}
	if !graph.StronglyConnected(g, active) {
		t.Fatalf("active subgraph still disconnected: %v", wirings)
	}
	if len(wirings[3]) != 0 {
		t.Fatal("dead node was rewired")
	}
}

// Property: EnforceCycle always yields a strongly connected alive subgraph
// while respecting each node's degree budget.
func TestEnforceCycleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(16)
		k := 1 + rng.Intn(3)
		wirings := make([][]int, n)
		for i := range wirings {
			perm := rng.Perm(n)
			for _, v := range perm {
				if v != i && len(wirings[i]) < k {
					wirings[i] = append(wirings[i], v)
				}
			}
			sort.Ints(wirings[i])
		}
		EnforceCycle(wirings, Additive, nil, func(i, j int) float64 { return rng.Float64() })
		g := graph.New(n)
		for i, ws := range wirings {
			if len(ws) > k {
				return false
			}
			for _, j := range ws {
				g.AddArc(i, j, 1)
			}
		}
		return graph.StronglyConnected(g, nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
