package core

import (
	"math/rand"
	"testing"

	"egoist/internal/graph"
)

func TestKRegularKExceedsAlive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	req := testRequest(rng, 4, 10) // k=10 > n-1=3
	out, err := KRegular{}.Select(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %v, want all 3 others", out)
	}
}

func TestKRegularSingleAliveNode(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	req := testRequest(rng, 5, 2)
	req.Active = []bool{true, false, false, false, false}
	out, err := KRegular{}.Select(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("lone node selected %v", out)
	}
}

func TestKRegularDeadSelfErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	req := testRequest(rng, 5, 2)
	req.Active = []bool{false, true, true, true, true}
	if _, err := (KRegular{}).Select(req); err == nil {
		t.Fatal("dead self accepted")
	}
}

func TestBRPolicyBottleneck(t *testing.T) {
	// Bandwidth BR: a fat link to a well-connected node should win over a
	// thin direct link.
	n := 6
	g := graph.New(n)
	for v := 1; v < n; v++ {
		for w := 1; w < n; w++ {
			if v != w {
				g.AddArc(v, w, 50)
			}
		}
	}
	direct := []float64{0, 100, 1, 1, 1, 1}
	req := &Request{Self: 0, K: 1, Kind: Bottleneck, Direct: direct, Graph: g}
	out, err := (BRPolicy{}).Select(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != 1 {
		t.Fatalf("bandwidth BR chose %v, want the fat link [1]", out)
	}
}

func TestDonatedTargetsEdgeCases(t *testing.T) {
	if got := DonatedTargets(0, 5, 0, nil); got != nil {
		t.Fatalf("k2=0 gave %v", got)
	}
	if got := DonatedTargets(0, 1, 2, nil); got != nil {
		t.Fatalf("singleton ring gave %v", got)
	}
	active := []bool{false, true, true}
	if got := DonatedTargets(0, 3, 2, active); got != nil {
		t.Fatalf("dead self gave %v", got)
	}
	// Two alive nodes: one possible target.
	two := DonatedTargets(1, 3, 2, active)
	if len(two) != 1 || two[0] != 2 {
		t.Fatalf("two-node ring gave %v", two)
	}
}

func TestDonatedTargetsFourLinks(t *testing.T) {
	// k2=4 over 9 nodes: offsets ±1 and ±2.
	got := DonatedTargets(4, 9, 4, nil)
	want := map[int]bool{3: true, 5: true, 2: true, 6: true}
	if len(got) != 4 {
		t.Fatalf("got %v", got)
	}
	for _, v := range got {
		if !want[v] {
			t.Fatalf("unexpected donated target %d in %v", v, got)
		}
	}
}

func TestEvalWithPrefAndFixedTogether(t *testing.T) {
	g := graph.New(4)
	g.AddArc(1, 2, 1)
	g.AddArc(2, 3, 1)
	in := &Instance{
		Self:   0,
		Kind:   Additive,
		Direct: []float64{0, 5, 50, 50},
		Resid:  BuildResid(g, 0, Additive, nil),
		Pref:   []float64{0, 1, 2, 3},
		Fixed:  []int{1},
	}
	// Via fixed 1: d(0,1)=5, d(0,2)=6, d(0,3)=7.
	want := 1*5.0 + 2*6.0 + 3*7.0
	if got := in.Eval(nil); got != want {
		t.Fatalf("Eval = %v, want %v", got, want)
	}
}

func TestBestResponseRespectsFixedBudget(t *testing.T) {
	g := graph.New(5)
	for v := 1; v < 5; v++ {
		for w := 1; w < 5; w++ {
			if v != w {
				g.AddArc(v, w, 10)
			}
		}
	}
	in := &Instance{
		Self:   0,
		Kind:   Additive,
		Direct: []float64{0, 1, 2, 3, 4},
		Resid:  BuildResid(g, 0, Additive, nil),
		Fixed:  []int{4},
	}
	chosen, _, err := BestResponse(in, 2, BROptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range chosen {
		if c == 4 {
			t.Fatalf("fixed facility re-chosen: %v", chosen)
		}
	}
	if len(chosen) != 2 {
		t.Fatalf("chose %v, want 2 more on top of the fixed one", chosen)
	}
}
