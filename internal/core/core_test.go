package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"egoist/internal/graph"
)

// buildInstance constructs an instance from a full overlay graph g with
// direct costs direct for node self.
func buildInstance(g *graph.Digraph, self int, kind CostKind, direct []float64) *Instance {
	return &Instance{
		Self:   self,
		Kind:   kind,
		Direct: direct,
		Resid:  BuildResid(g, self, kind, nil),
	}
}

// lineGraph builds 1->2->3->...->n-1 with unit weights (node 0 isolated,
// it is the decider).
func lineGraph(n int) *graph.Digraph {
	g := graph.New(n)
	for v := 1; v < n-1; v++ {
		g.AddArc(v, v+1, 1)
	}
	return g
}

func TestEvalSingleFacilityAdditive(t *testing.T) {
	// Nodes: 0 decider; residual line 1->2->3.
	g := lineGraph(4)
	direct := []float64{0, 10, 100, 100}
	in := buildInstance(g, 0, Additive, direct)
	// Choosing {1}: cost = d(0,1)+d(0,2)+d(0,3) = 10 + 11 + 12.
	if got := in.Eval([]int{1}); got != 33 {
		t.Fatalf("Eval({1}) = %v, want 33", got)
	}
	// Choosing {3}: 1 and 2 unreachable -> 2 penalties + 100.
	if got := in.Eval([]int{3}); got != 2*DisconnectedPenalty+100 {
		t.Fatalf("Eval({3}) = %v, want %v", got, 2*DisconnectedPenalty+100)
	}
}

func TestEvalRespectsPreferences(t *testing.T) {
	g := lineGraph(4)
	direct := []float64{0, 10, 100, 100}
	in := buildInstance(g, 0, Additive, direct)
	in.Pref = []float64{0, 1, 0, 0} // only care about node 1
	if got := in.Eval([]int{1}); got != 10 {
		t.Fatalf("Eval = %v, want 10", got)
	}
}

func TestEvalBottleneck(t *testing.T) {
	// Residual: 1->2 with bw 5.
	g := graph.New(3)
	g.AddArc(1, 2, 5)
	direct := []float64{0, 8, 2}
	in := buildInstance(g, 0, Bottleneck, direct)
	// Choosing {1}: bw(0,1)=8 (direct, resid self Inf), bw(0,2)=min(8,5)=5. Total 13.
	if got := in.Eval([]int{1}); got != 13 {
		t.Fatalf("Eval({1}) = %v, want 13", got)
	}
	// Choosing {2}: bw(0,2)=2; node 1 unreachable => 0. Total 2.
	if got := in.Eval([]int{2}); got != 2 {
		t.Fatalf("Eval({2}) = %v, want 2", got)
	}
}

func TestEvalFixedFacilities(t *testing.T) {
	g := lineGraph(4)
	direct := []float64{0, 10, 100, 100}
	in := buildInstance(g, 0, Additive, direct)
	in.Fixed = []int{1}
	// Empty chosen set still benefits from fixed facility 1.
	if got := in.Eval(nil); got != 33 {
		t.Fatalf("Eval(nil) with fixed {1} = %v, want 33", got)
	}
}

func TestValidateCatchesBadInstances(t *testing.T) {
	g := lineGraph(3)
	good := buildInstance(g, 0, Additive, []float64{0, 1, 1})
	if err := good.Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	bad := buildInstance(g, 0, Additive, []float64{0, 1, 1})
	bad.Self = 5
	if err := bad.Validate(); err == nil {
		t.Fatal("self out of range accepted")
	}
	bad2 := buildInstance(g, 0, Additive, []float64{0, 1, 1})
	bad2.Candidates = []int{0}
	if err := bad2.Validate(); err == nil {
		t.Fatal("self as candidate accepted")
	}
	bad3 := buildInstance(g, 0, Additive, []float64{0, 1, 1})
	bad3.Resid = bad3.Resid[:1]
	if err := bad3.Validate(); err == nil {
		t.Fatal("short Resid accepted")
	}
}

func TestBestResponsePicksObviousNeighbor(t *testing.T) {
	// Residual ring over 1..4; node 1 is cheap and central.
	g := graph.New(5)
	for v := 1; v <= 4; v++ {
		next := v + 1
		if next > 4 {
			next = 1
		}
		g.AddArc(v, next, 1)
	}
	direct := []float64{0, 1, 50, 50, 50}
	in := buildInstance(g, 0, Additive, direct)
	chosen, _, err := BestResponse(in, 1, BROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) != 1 || chosen[0] != 1 {
		t.Fatalf("chosen = %v, want [1]", chosen)
	}
}

func TestBestResponseKZero(t *testing.T) {
	g := lineGraph(3)
	in := buildInstance(g, 0, Additive, []float64{0, 1, 1})
	chosen, val, err := BestResponse(in, 0, BROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) != 0 {
		t.Fatalf("chosen = %v, want empty", chosen)
	}
	if val != 2*DisconnectedPenalty {
		t.Fatalf("val = %v, want full penalty", val)
	}
}

func TestBestResponseNegativeK(t *testing.T) {
	g := lineGraph(3)
	in := buildInstance(g, 0, Additive, []float64{0, 1, 1})
	if _, _, err := BestResponse(in, -1, BROptions{}); err == nil {
		t.Fatal("negative k accepted")
	}
}

func TestBestResponseKExceedsCandidates(t *testing.T) {
	g := lineGraph(3)
	in := buildInstance(g, 0, Additive, []float64{0, 1, 1})
	chosen, _, err := BestResponse(in, 10, BROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) != 2 {
		t.Fatalf("chosen %v, want both candidates", chosen)
	}
}

func TestExactBRRefusesHugeInstances(t *testing.T) {
	n := 60
	g := graph.New(n)
	direct := make([]float64, n)
	for i := 1; i < n; i++ {
		direct[i] = 1
	}
	in := buildInstance(g, 0, Additive, direct)
	if _, _, err := BestResponse(in, 20, BROptions{Exact: true, MaxCombinations: 1000}); err == nil {
		t.Fatal("expected combination-limit error")
	}
}

// randomInstance builds a random residual overlay of n nodes (decider 0)
// with random weights.
func randomInstance(rng *rand.Rand, n int, kind CostKind) *Instance {
	g := graph.New(n)
	for u := 1; u < n; u++ {
		for v := 1; v < n; v++ {
			if u != v && rng.Float64() < 0.4 {
				g.AddArc(u, v, 1+rng.Float64()*20)
			}
		}
	}
	direct := make([]float64, n)
	for j := 1; j < n; j++ {
		direct[j] = 1 + rng.Float64()*20
	}
	return buildInstance(g, 0, kind, direct)
}

// Property: local search matches exact BR on small additive instances
// within a modest approximation factor, and never returns something
// invalid.
func TestLocalSearchNearExactProperty(t *testing.T) {
	for _, kind := range []CostKind{Additive, Bottleneck} {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			n := 5 + rng.Intn(5)
			k := 1 + rng.Intn(3)
			in := randomInstance(rng, n, kind)
			approx, approxVal, err := BestResponse(in, k, BROptions{})
			if err != nil {
				return false
			}
			exact, exactVal, err := BestResponse(in, k, BROptions{Exact: true})
			if err != nil {
				return false
			}
			if len(approx) != len(exact) {
				return false
			}
			// Exact must be at least as good.
			if kind.better(approxVal, exactVal) && math.Abs(approxVal-exactVal) > 1e-9 {
				return false
			}
			// Local search within 25% of optimal on these tiny instances
			// (it is typically exact; the bound just avoids flakiness).
			if kind == Additive {
				return approxVal <= exactVal*1.25+1e-9
			}
			return approxVal >= exactVal*0.75-1e-9
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("kind %v: %v", kind, err)
		}
	}
}

// Property: BR's chosen sets are sorted, distinct, exclude self, and have
// size min(k, candidates).
func TestBRWellFormedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		k := 1 + rng.Intn(6)
		in := randomInstance(rng, n, Additive)
		chosen, _, err := BestResponse(in, k, BROptions{})
		if err != nil {
			return false
		}
		want := k
		if want > n-1 {
			want = n - 1
		}
		if len(chosen) != want {
			return false
		}
		if !sort.IntsAreSorted(chosen) {
			return false
		}
		seen := map[int]bool{}
		for _, c := range chosen {
			if c == 0 || seen[c] {
				return false
			}
			seen[c] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding a candidate never makes BR worse (more choice can't hurt).
func TestBRMonotoneInCandidatesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(6)
		in := randomInstance(rng, n, Additive)
		all := in.candidates()
		restricted := all[:len(all)-1]
		in.Candidates = restricted
		_, valR, err := BestResponse(in, 2, BROptions{Exact: true})
		if err != nil {
			return false
		}
		in.Candidates = all
		_, valA, err := BestResponse(in, 2, BROptions{Exact: true})
		if err != nil {
			return false
		}
		return valA <= valR+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestShouldRewire(t *testing.T) {
	cases := []struct {
		kind     CostKind
		cur, new float64
		eps      float64
		want     bool
	}{
		{Additive, 100, 99, 0, true},
		{Additive, 100, 100, 0, false},
		{Additive, 100, 101, 0, false},
		{Additive, 100, 95, 0.1, false}, // 5% < 10% threshold
		{Additive, 100, 85, 0.1, true},
		{Bottleneck, 100, 101, 0, true},
		{Bottleneck, 100, 99, 0, false},
		{Bottleneck, 100, 105, 0.1, false},
		{Bottleneck, 100, 115, 0.1, true},
	}
	for _, c := range cases {
		if got := ShouldRewire(c.kind, c.cur, c.new, c.eps); got != c.want {
			t.Errorf("ShouldRewire(%v,%v,%v,%v) = %v, want %v", c.kind, c.cur, c.new, c.eps, got, c.want)
		}
	}
}

func TestCombinations(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{5, 2, 10}, {10, 3, 120}, {49, 2, 1176}, {3, 5, 0}, {10, 0, 1},
	}
	for _, c := range cases {
		if got := combinations(c.n, c.k); got != c.want {
			t.Errorf("combinations(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestBuildResidExcludesSelfAndInactive(t *testing.T) {
	g := graph.New(4)
	g.AddArc(0, 1, 1) // self's own link must be ignored
	g.AddArc(1, 2, 1)
	g.AddArc(2, 3, 1)
	resid := BuildResid(g, 0, Additive, nil)
	if !math.IsInf(resid[0][1], 1) {
		t.Fatal("self out-link leaked into residual graph")
	}
	if resid[1][3] != 2 {
		t.Fatalf("resid[1][3] = %v, want 2", resid[1][3])
	}
	active := []bool{true, true, false, true}
	resid2 := BuildResid(g, 0, Additive, active)
	if !math.IsInf(resid2[1][3], 1) {
		t.Fatal("path through inactive node 2 survived")
	}
}
