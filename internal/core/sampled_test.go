package core

import (
	"math"
	"math/rand"
	"testing"

	"egoist/internal/graph"
	"egoist/internal/sampling"
)

// randomSampledInstance builds a random connected instance of n <= 12
// nodes for the sampled-vs-exact property tests.
func randomSampledInstance(rng *rand.Rand, n int, kind CostKind) *Instance {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		g.AddArc(u, (u+1)%n, 1+rng.Float64()*30) // ring keeps it connected
		for t := 0; t < 2; t++ {
			v := rng.Intn(n)
			if v != u {
				g.AddArc(u, v, 1+rng.Float64()*30)
			}
		}
	}
	direct := make([]float64, n)
	pref := make([]float64, n)
	for j := 1; j < n; j++ {
		direct[j] = 1 + rng.Float64()*30
		pref[j] = 0.2 + rng.Float64()
	}
	return &Instance{
		Self:   0,
		Kind:   kind,
		Direct: direct,
		Resid:  BuildResid(g, 0, kind, nil),
		Pref:   pref,
	}
}

// TestSampledWithinBandOfExact is the accuracy contract of the sampled
// solver: on random small instances, the sampled best response's cost —
// estimated honestly, i.e. on a fresh evaluation sample independent of
// the one it optimized — must sit within its own stated 95% confidence
// band of the exact solver's ground truth: of the chosen wiring's true
// cost at roughly the nominal rate (estimator validity), and of the
// exact optimum at better than ~5x the nominal miss rate (the
// sampled-vs-exact cost gap).
func TestSampledWithinBandOfExact(t *testing.T) {
	rng := rand.New(rand.NewSource(20080101))
	const trials = 300
	coveredChosen, coveredOpt := 0, 0
	for trial := 0; trial < trials; trial++ {
		n := 5 + rng.Intn(8) // 5..12
		k := 1 + rng.Intn(2)
		in := randomSampledInstance(rng, n, Additive)
		_, optVal, err := BestResponse(in, k, BROptions{Exact: true})
		if err != nil {
			t.Fatal(err)
		}
		m := k + 1 + rng.Intn(n-1-k) // k+1 .. n-1
		spec := []sampling.Spec{{Strategy: sampling.Uniform, M: m}, {Strategy: sampling.Demand, M: m}}[trial%2]
		ds, err := spec.Draw(rng, in.Self, n, in.Pref, in.Direct)
		if err != nil {
			t.Fatal(err)
		}
		chosen, _, err := BestResponseSampled(in, k, ds, BROptions{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(chosen) == 0 {
			t.Fatalf("trial %d: empty wiring", trial)
		}
		evalDS, err := spec.Draw(rng, in.Self, n, in.Pref, in.Direct)
		if err != nil {
			t.Fatal(err)
		}
		est := EvalSampled(in, chosen, evalDS, nil)
		trueChosen := in.Eval(chosen)
		if est.Contains(trueChosen) {
			coveredChosen++
		}
		if est.Hi >= optVal { // optimum can only be below the chosen cost
			coveredOpt++
		}
		if trueChosen < optVal-1e-9 {
			t.Fatalf("trial %d: chosen wiring beats the exact optimum: %f < %f", trial, trueChosen, optVal)
		}
	}
	if rate := float64(coveredChosen) / trials; rate < 0.88 {
		t.Errorf("95%% band covered the chosen wiring's true cost in only %.0f%% of trials", rate*100)
	}
	if rate := float64(coveredOpt) / trials; rate < 0.80 {
		t.Errorf("95%% band reached the exact optimum in only %.0f%% of trials", rate*100)
	}
}

// TestSampledFullRosterMatchesExact pins the degenerate case: with the
// sample equal to the full roster, the sampled solver is the plain
// solver and its estimate is exact (zero-width band).
func TestSampledFullRosterMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 6 + rng.Intn(6)
		in := randomSampledInstance(rng, n, Additive)
		ds, err := sampling.Spec{Strategy: sampling.Uniform, M: n - 1}.Draw(rng, in.Self, n, in.Pref, in.Direct)
		if err != nil {
			t.Fatal(err)
		}
		chosen, est, err := BestResponseSampled(in, 2, ds, BROptions{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		full, fullVal, err := BestResponse(in, 2, BROptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(chosen) != len(full) {
			t.Fatalf("wiring size mismatch: %v vs %v", chosen, full)
		}
		for i := range chosen {
			if chosen[i] != full[i] {
				t.Fatalf("full-roster sample diverged from plain solver: %v vs %v", chosen, full)
			}
		}
		if est.StdErr != 0 || math.Abs(est.Total-fullVal) > 1e-9 {
			t.Fatalf("full-roster estimate not exact: %+v vs %f", est, fullVal)
		}
	}
}

// TestEvalSampledUnbiased checks EvalSampled averages to Eval over many
// draws for a fixed wiring (the HT unbiasedness contract on the solver's
// own cost surface), for both cost algebras.
func TestEvalSampledUnbiased(t *testing.T) {
	for _, kind := range []CostKind{Additive, Bottleneck} {
		rng := rand.New(rand.NewSource(77))
		in := randomSampledInstance(rng, 12, kind)
		chosen := []int{2, 5, 9}
		truth := in.Eval(chosen)
		var s Scratch
		sum := 0.0
		const trials = 600
		for trial := 0; trial < trials; trial++ {
			ds, err := sampling.Spec{Strategy: sampling.Uniform, M: 5}.Draw(rng, in.Self, 12, in.Pref, in.Direct)
			if err != nil {
				t.Fatal(err)
			}
			sum += EvalSampled(in, chosen, ds, &s).Total
		}
		mean := sum / trials
		if rel := math.Abs(mean-truth) / math.Abs(truth); rel > 0.03 {
			t.Errorf("kind %v: mean sampled eval %.2f vs truth %.2f (rel %.3f)", kind, mean, truth, rel)
		}
	}
}
