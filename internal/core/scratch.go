package core

import (
	"egoist/internal/graph"
)

// Scratch holds one worker's reusable buffers for the best-response hot
// path: the residual graph and matrix of BuildResidScratch, the Dijkstra
// state behind it, and the per-destination arrays of Eval, greedy and local
// search. A Scratch may be reused across any number of calls but serves one
// goroutine at a time; the parallel simulation engine keeps one per worker.
//
// The zero value is ready to use. All methods that take a *Scratch accept
// nil, falling back to per-call allocation.
type Scratch struct {
	sp    graph.SPScratch
	rg    *graph.Digraph // residual-graph clone of BuildResidScratch
	resid [][]float64    // residual matrix of BuildResidScratch

	best    []float64 // per-node best-facility cost (Eval, greedy)
	used    []bool    // membership set (greedy, local search)
	candBuf []int     // materialized candidate list
	destBuf []int     // materialized destination list
	prefW   []float64 // weighted preference vector (BestResponseSampled)

	// Swap-evaluation caches of localSearch, indexed positionally by dests.
	sw1W []int
	sw1V []float64
	sw2V []float64
}

// floats returns buf resized to n, reusing its storage when possible.
func floats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// bools returns buf resized to n with every entry false.
func bools(buf []bool, n int) []bool {
	if cap(buf) < n {
		buf = make([]bool, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = false
	}
	return buf
}

// ints returns buf resized to n, reusing its storage when possible.
func ints(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// BuildResidScratch is BuildResid with reusable storage: the residual graph
// clone, the all-pairs matrix and the Dijkstra state all live in s and are
// overwritten by the next call. The returned matrix is therefore only valid
// until s is used again — callers that retain it must copy. With a nil
// scratch it behaves exactly like BuildResid.
func BuildResidScratch(g *graph.Digraph, self int, kind CostKind, active []bool, s *Scratch) [][]float64 {
	if s == nil {
		return BuildResid(g, self, kind, active)
	}
	if s.rg == nil {
		s.rg = graph.New(g.N())
	}
	s.rg.CopyFrom(g)
	s.rg.ClearOut(self)
	if active != nil {
		for v := 0; v < s.rg.N(); v++ {
			if !active[v] {
				s.rg.ClearNode(v)
			}
		}
	}
	if kind == Bottleneck {
		s.resid = graph.APWidestInto(s.rg, s.resid, &s.sp)
	} else {
		s.resid = graph.APSPInto(s.rg, s.resid, &s.sp)
	}
	return s.resid
}
