// Package core implements the paper's primary contribution: the Selfish
// Neighbor Selection (SNS) game and the Best-Response (BR) wiring machinery
// of EGOIST, together with the empirical neighbor-selection policies it is
// evaluated against (k-Random, k-Closest, k-Regular, HybridBR, full mesh).
//
// In the SNS game (Sect. 2.1) each node v_i picks a wiring s_i of k directed
// links to minimize its cost C_i(S) = Σ_j p_ij · d_S(v_i, v_j) under
// shortest-path routing over the global wiring S. Computing an exact best
// response is NP-hard (an asymmetric k-median); this package provides both
// an exact solver for small instances and the fast greedy + local-search
// approximation EGOIST deploys, for the additive (delay, load) and
// bottleneck-bandwidth cost models.
package core

import (
	"fmt"
	"math"

	"egoist/internal/graph"
)

// CostKind selects the path-cost algebra of the overlay metric.
type CostKind int

const (
	// Additive minimizes the sum of edge weights along a path — the
	// algebra of the delay and node-load metrics.
	Additive CostKind = iota
	// Bottleneck maximizes the minimum edge weight along a path — the
	// algebra of the available-bandwidth metric (Sect. 4.1).
	Bottleneck
)

// String names the cost kind.
func (k CostKind) String() string {
	switch k {
	case Additive:
		return "additive"
	case Bottleneck:
		return "bottleneck"
	default:
		return fmt.Sprintf("CostKind(%d)", int(k))
	}
}

// DisconnectedPenalty is the finite cost M·n stand-in for an unreachable
// destination under the additive algebra (the paper's d = M >> n). It must
// dominate any realistic path cost so that reconnecting is always a best
// response.
const DisconnectedPenalty = 1e9

// better reports whether cost a is preferable to b under the algebra.
func (k CostKind) better(a, b float64) bool {
	if k == Bottleneck {
		return a > b
	}
	return a < b
}

// worst is the identity element of the algebra's "best" reduction.
func (k CostKind) worst() float64 {
	if k == Bottleneck {
		return 0
	}
	return math.Inf(1)
}

// combine folds a direct-link cost with a residual-graph cost: addition for
// the additive algebra, min for the bottleneck algebra.
func (k CostKind) combine(direct, resid float64) float64 {
	if k == Bottleneck {
		return math.Min(direct, resid)
	}
	return direct + resid
}

// finalize maps an unreachable marker to the penalty the objective uses.
func (k CostKind) finalize(v float64) float64 {
	if k == Additive && math.IsInf(v, 1) {
		return DisconnectedPenalty
	}
	return v
}

// AggKind selects how per-destination costs combine into the objective.
type AggKind int

const (
	// AggSum is the paper's main objective: the (weighted) sum over all
	// destinations.
	AggSum AggKind = iota
	// AggWorst optimizes the worst destination: for Additive it minimizes
	// the maximum distance (an egocentric k-center); for Bottleneck it
	// maximizes the minimum bottleneck bandwidth — the "alternative
	// formulation" sketched at the end of Sect. 4.1.
	AggWorst
)

// String names the aggregation.
func (a AggKind) String() string {
	switch a {
	case AggSum:
		return "sum"
	case AggWorst:
		return "worst"
	default:
		return fmt.Sprintf("AggKind(%d)", int(a))
	}
}

// accum folds per-destination costs into the aggregate objective.
type accum struct {
	kind  CostKind
	agg   AggKind
	total float64
	init  bool
	sum   float64
	n     int
}

func newAccum(kind CostKind, agg AggKind) accum {
	return accum{kind: kind, agg: agg}
}

func (a *accum) add(pref, v float64) {
	if a.agg == AggSum {
		a.total += pref * v
		return
	}
	// AggWorst: track the worst weighted destination. "Worse" means larger
	// for Additive, smaller for Bottleneck — i.e. the opposite of better.
	w := pref * v
	if !a.init || a.kind.better(a.total, w) {
		a.total = w
		a.init = true
	}
	a.sum += w
	a.n++
}

// value returns the aggregate. For AggWorst a vanishing mean term breaks
// the ties a pure worst-case objective is full of (e.g. every wiring that
// leaves some destination disconnected scores the same penalty, stranding
// greedy and local search on a plateau): among wirings with an equal worst
// case, ones with a better mean win.
func (a *accum) value() float64 {
	if a.agg == AggSum {
		return a.total
	}
	if a.n == 0 {
		return a.total
	}
	// The same sign works for both algebras: a better mean is a lower sum
	// under Additive (minimize) and a higher one under Bottleneck
	// (maximize).
	return a.total + a.sum/float64(a.n)*1e-6
}

// Instance is one node's best-response problem: the data v_i derives from
// the link-state protocol (the residual graph G−i) and from its own
// measurements (the direct link costs d_ij), as described in Sect. 3.1.
//
// An Instance is never mutated by Eval or BestResponse, so distinct
// goroutines may solve the same Instance concurrently — each with its own
// Scratch (or none).
type Instance struct {
	// Self is the deciding node's identifier.
	Self int
	// Kind is the cost algebra.
	Kind CostKind
	// Direct[j] is the measured cost of a potential direct link Self->j.
	// Direct[Self] is ignored.
	Direct []float64
	// Resid[w][j] is the cost from w to j over the residual graph G−Self:
	// all-pairs shortest-path costs for Additive, all-pairs widest-path
	// values for Bottleneck. Resid[w][w] must be 0 (Additive) or +Inf
	// (Bottleneck). Rows of nodes that can never be facilities (outside
	// Candidates, Fixed and any evaluated wiring) may be nil — the scale
	// engine populates only the rows its pool provides.
	Resid [][]float64
	// Candidates are the nodes Self may link to. Nil means every node
	// except Self. Sampling policies (Sect. 5) restrict this set.
	Candidates []int
	// Dests are the destinations the objective sums over. Nil means every
	// node except Self. When computing BR on a sample, the paper limits
	// the objective to sampled pairs; set Dests accordingly.
	Dests []int
	// Pref[j] is the preference weight p_ij. Nil means uniform.
	Pref []float64
	// Fixed are facilities that are already wired and not subject to
	// choice — HybridBR's donated links (Sect. 3.3).
	Fixed []int
	// Agg selects the objective aggregation; the zero value is the paper's
	// weighted sum.
	Agg AggKind
}

// n returns the node count implied by the instance.
func (in *Instance) n() int { return len(in.Direct) }

// candidates materializes the candidate list.
func (in *Instance) candidates() []int {
	if in.Candidates != nil {
		return in.Candidates
	}
	out := make([]int, 0, in.n()-1)
	for j := 0; j < in.n(); j++ {
		if j != in.Self {
			out = append(out, j)
		}
	}
	return out
}

// dests materializes the destination list.
func (in *Instance) dests() []int {
	if in.Dests != nil {
		return in.Dests
	}
	out := make([]int, 0, in.n()-1)
	for j := 0; j < in.n(); j++ {
		if j != in.Self {
			out = append(out, j)
		}
	}
	return out
}

// candidatesInto is candidates with the materialized list stored in s's
// buffer. The result aliases in.Candidates when that is set.
func (in *Instance) candidatesInto(s *Scratch) []int {
	if in.Candidates != nil {
		return in.Candidates
	}
	if s == nil {
		return in.candidates()
	}
	buf := s.candBuf[:0]
	for j := 0; j < in.n(); j++ {
		if j != in.Self {
			buf = append(buf, j)
		}
	}
	s.candBuf = buf
	return buf
}

// destsInto is dests with the materialized list stored in s's buffer. The
// result aliases in.Dests when that is set.
func (in *Instance) destsInto(s *Scratch) []int {
	if in.Dests != nil {
		return in.Dests
	}
	if s == nil {
		return in.dests()
	}
	buf := s.destBuf[:0]
	for j := 0; j < in.n(); j++ {
		if j != in.Self {
			buf = append(buf, j)
		}
	}
	s.destBuf = buf
	return buf
}

func (in *Instance) pref(j int) float64 {
	if in.Pref == nil {
		return 1
	}
	return in.Pref[j]
}

// Validate checks structural consistency of the instance.
func (in *Instance) Validate() error {
	n := in.n()
	if n < 2 {
		return fmt.Errorf("core: instance has %d nodes, need >= 2", n)
	}
	if in.Self < 0 || in.Self >= n {
		return fmt.Errorf("core: self %d outside [0,%d)", in.Self, n)
	}
	if len(in.Resid) != n {
		return fmt.Errorf("core: Resid has %d rows, want %d", len(in.Resid), n)
	}
	for w, row := range in.Resid {
		if row != nil && len(row) != n {
			return fmt.Errorf("core: Resid row %d has %d cols, want %d", w, len(row), n)
		}
	}
	if in.Pref != nil && len(in.Pref) != n {
		return fmt.Errorf("core: Pref has %d entries, want %d", len(in.Pref), n)
	}
	for _, c := range in.Candidates {
		if c < 0 || c >= n || c == in.Self {
			return fmt.Errorf("core: bad candidate %d", c)
		}
	}
	for _, f := range in.Fixed {
		if f < 0 || f >= n || f == in.Self {
			return fmt.Errorf("core: bad fixed facility %d", f)
		}
	}
	return nil
}

// Eval computes the objective value of wiring the chosen set (plus the
// instance's Fixed facilities): total weighted cost for Additive (lower is
// better) or total weighted bottleneck bandwidth for Bottleneck (higher is
// better). A destination reachable through no facility contributes the
// DisconnectedPenalty (Additive) or zero (Bottleneck).
//
// Eval does not mutate the instance; distinct goroutines may evaluate the
// same Instance concurrently.
func (in *Instance) Eval(chosen []int) float64 {
	return in.EvalScratch(chosen, nil)
}

// EvalScratch is Eval with reusable buffers. A nil scratch falls back to
// per-call allocation.
func (in *Instance) EvalScratch(chosen []int, s *Scratch) float64 {
	var best []float64
	if s != nil {
		s.best = floats(s.best, in.n())
		best = s.best
	} else {
		best = make([]float64, in.n())
	}
	in.bestPerDestInto(chosen, best)
	acc := newAccum(in.Kind, in.Agg)
	if in.Dests == nil {
		for j := 0; j < in.n(); j++ {
			if j != in.Self {
				acc.add(in.pref(j), in.Kind.finalize(best[j]))
			}
		}
	} else {
		for _, j := range in.Dests {
			acc.add(in.pref(j), in.Kind.finalize(best[j]))
		}
	}
	return acc.value()
}

// bestPerDestInto fills best (length n) with, for every node j, the best
// achievable cost to j via any facility in chosen ∪ Fixed (indexed by node
// id; non-destination entries are still filled, harmlessly).
func (in *Instance) bestPerDestInto(chosen []int, best []float64) {
	for j := range best {
		best[j] = in.Kind.worst()
	}
	in.foldFacilities(best, in.Fixed)
	in.foldFacilities(best, chosen)
}

func (in *Instance) foldFacilities(best []float64, facilities []int) {
	for _, w := range facilities {
		dw := in.Direct[w]
		row := in.Resid[w]
		for j := range best {
			if c := in.Kind.combine(dw, row[j]); in.Kind.better(c, best[j]) {
				best[j] = c
			}
		}
	}
}

// BuildResid computes the residual-cost matrix for node self over the
// announced overlay graph g: it removes self's out-links (they are what is
// being re-chosen) and every link of inactive nodes, then runs all-pairs
// shortest (Additive) or widest (Bottleneck) paths. active may be nil.
func BuildResid(g *graph.Digraph, self int, kind CostKind, active []bool) [][]float64 {
	r := g.Clone()
	r.ClearOut(self)
	if active != nil {
		for v := 0; v < r.N(); v++ {
			if !active[v] {
				r.ClearNode(v)
			}
		}
	}
	if kind == Bottleneck {
		return graph.APWidest(r)
	}
	return graph.APSP(r)
}
