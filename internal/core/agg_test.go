package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"egoist/internal/graph"
)

func TestAggWorstPrefersBalancedFacility(t *testing.T) {
	// Candidate 1: distances {1, 100}. Candidate 2: distances {40, 41}.
	// Sum prefers 1 (101 < 81? no -> 2). Make sums favor 1: {1, 70} sum=71
	// vs {40, 41} sum=81; worst favors 2: max 70 vs 41.
	g := graph.New(5)
	g.AddArc(1, 3, 0.5)
	g.AddArc(1, 4, 69.5)
	g.AddArc(2, 3, 39.5)
	g.AddArc(2, 4, 40.5)
	direct := []float64{0, 0.5, 0.5, 999, 999}
	mk := func(agg AggKind) *Instance {
		return &Instance{
			Self: 0, Kind: Additive, Direct: direct,
			Resid:      BuildResid(g, 0, Additive, nil),
			Candidates: []int{1, 2},
			Dests:      []int{3, 4},
			Agg:        agg,
		}
	}
	sumSet, _, err := BestResponse(mk(AggSum), 1, BROptions{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	worstSet, _, err := BestResponse(mk(AggWorst), 1, BROptions{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if sumSet[0] != 1 {
		t.Fatalf("AggSum chose %v, want [1]", sumSet)
	}
	if worstSet[0] != 2 {
		t.Fatalf("AggWorst chose %v, want [2]", worstSet)
	}
}

func TestAggWorstBottleneckMaximizesMinBandwidth(t *testing.T) {
	// Candidate 1: bottlenecks {100, 1}; candidate 2: {30, 30}.
	g := graph.New(5)
	g.AddArc(1, 3, 100)
	g.AddArc(1, 4, 1)
	g.AddArc(2, 3, 30)
	g.AddArc(2, 4, 30)
	direct := []float64{0, 1000, 1000, 0.01, 0.01}
	mk := func(agg AggKind) *Instance {
		return &Instance{
			Self: 0, Kind: Bottleneck, Direct: direct,
			Resid:      BuildResid(g, 0, Bottleneck, nil),
			Candidates: []int{1, 2},
			Dests:      []int{3, 4},
			Agg:        agg,
		}
	}
	sumSet, _, err := BestResponse(mk(AggSum), 1, BROptions{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	worstSet, _, err := BestResponse(mk(AggWorst), 1, BROptions{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if sumSet[0] != 1 {
		t.Fatalf("AggSum (total bw) chose %v, want [1]", sumSet)
	}
	if worstSet[0] != 2 {
		t.Fatalf("AggWorst (max-min bw) chose %v, want [2]", worstSet)
	}
}

// Property: local search matches exact BR reasonably under AggWorst too.
func TestAggWorstLocalSearchNearExactProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(5)
		in := randomInstance(rng, n, Additive)
		in.Agg = AggWorst
		k := 1 + rng.Intn(2)
		_, approxVal, err := BestResponse(in, k, BROptions{})
		if err != nil {
			return false
		}
		_, exactVal, err := BestResponse(in, k, BROptions{Exact: true})
		if err != nil {
			return false
		}
		// Exact must be no worse; the quality bound only applies when the
		// approximation found a connected wiring (a worst-case objective
		// has plateaus where single swaps cannot escape disconnection).
		if Additive.better(approxVal, exactVal) && approxVal < exactVal-1e-9 {
			return false
		}
		if approxVal >= DisconnectedPenalty {
			return true
		}
		return approxVal <= exactVal*1.5+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAggStrings(t *testing.T) {
	if AggSum.String() != "sum" || AggWorst.String() != "worst" {
		t.Fatal("AggKind strings wrong")
	}
	if AggKind(9).String() == "" {
		t.Fatal("unknown AggKind should still print")
	}
}
