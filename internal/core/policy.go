package core

import (
	"fmt"
	"math/rand"
	"sort"

	"egoist/internal/graph"
)

// Request carries everything a neighbor-selection policy may consult when
// (re-)wiring one node: the announced overlay graph, the node's own direct
// cost measurements, the set of currently-alive nodes, and an optional
// candidate sample.
//
// Distinct Requests may be served concurrently (the parallel simulation
// engine issues one per node per epoch) as long as each has its own Rng and
// Scratch and the shared inputs (Graph, Active, Direct, Pref) are not
// mutated while Select runs.
type Request struct {
	Self   int
	K      int
	Kind   CostKind
	Direct []float64      // measured direct costs Self->j
	Graph  *graph.Digraph // announced overlay graph (link-state view)
	Active []bool         // alive mask; nil = all alive
	Pref   []float64      // preference weights; nil = uniform
	Sample []int          // candidate restriction from the sampling layer
	Rng    *rand.Rand     // randomness for stochastic policies

	// Resid, when non-nil, is the precomputed residual matrix of
	// BuildResid(Graph, Self, Kind, Active). Callers that also need the
	// matrix for the BR(ε) adoption test supply it here so it is computed
	// once per re-wiring instead of twice.
	Resid [][]float64
	// Scratch, when non-nil, provides reusable solver buffers (one per
	// worker in the parallel engine).
	Scratch *Scratch
}

// alive reports whether node v participates right now.
func (r *Request) alive(v int) bool { return r.Active == nil || r.Active[v] }

// aliveCandidates returns the nodes Self may wire to, honoring the alive
// mask and the sample restriction.
func (r *Request) aliveCandidates() []int {
	var out []int
	if r.Sample != nil {
		for _, j := range r.Sample {
			if j != r.Self && r.alive(j) {
				out = append(out, j)
			}
		}
		return out
	}
	for j := 0; j < len(r.Direct); j++ {
		if j != r.Self && r.alive(j) {
			out = append(out, j)
		}
	}
	return out
}

// Policy selects a node's overlay neighbors. Implementations are the
// policies of Sect. 3.2 plus HybridBR of Sect. 3.3.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Select returns the new neighbor set for the requesting node, at most
	// req.K nodes, all alive and distinct from Self.
	Select(req *Request) ([]int, error)
}

// KRandom selects k alive neighbors uniformly at random.
type KRandom struct{}

// Name implements Policy.
func (KRandom) Name() string { return "k-Random" }

// Select implements Policy.
func (KRandom) Select(req *Request) ([]int, error) {
	if req.Rng == nil {
		return nil, fmt.Errorf("core: k-Random requires a Rng")
	}
	cands := req.aliveCandidates()
	req.Rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	k := req.K
	if k > len(cands) {
		k = len(cands)
	}
	out := append([]int(nil), cands[:k]...)
	sort.Ints(out)
	return out, nil
}

// KClosest selects the k candidates with the best direct cost (minimum
// delay/load, maximum bandwidth).
type KClosest struct{}

// Name implements Policy.
func (KClosest) Name() string { return "k-Closest" }

// Select implements Policy.
func (KClosest) Select(req *Request) ([]int, error) {
	cands := req.aliveCandidates()
	sort.SliceStable(cands, func(a, b int) bool {
		return req.Kind.better(req.Direct[cands[a]], req.Direct[cands[b]])
	})
	k := req.K
	if k > len(cands) {
		k = len(cands)
	}
	out := append([]int(nil), cands[:k]...)
	sort.Ints(out)
	return out, nil
}

// KRegular wires every node with the same offset vector
// o_j = 1 + (j-1)·(n-1)/(k+1) over the ring of alive node identifiers
// (Sect. 3.2), dividing the ring periphery equally.
type KRegular struct{}

// Name implements Policy.
func (KRegular) Name() string { return "k-Regular" }

// Select implements Policy.
func (KRegular) Select(req *Request) ([]int, error) {
	ring := aliveRing(req)
	pos := ringIndex(ring, req.Self)
	if pos < 0 {
		return nil, fmt.Errorf("core: node %d not in alive ring", req.Self)
	}
	n := len(ring)
	if n <= 1 {
		return nil, nil
	}
	k := req.K
	if k > n-1 {
		k = n - 1
	}
	seen := map[int]bool{}
	var out []int
	for j := 1; j <= k; j++ {
		offset := 1 + (j-1)*(n-1)/(k+1)
		target := ring[(pos+offset)%n]
		for seen[target] || target == req.Self {
			offset++
			target = ring[(pos+offset)%n]
		}
		seen[target] = true
		out = append(out, target)
	}
	sort.Ints(out)
	return out, nil
}

// BRPolicy is EGOIST's default: the Best-Response strategy, optionally on a
// candidate sample, with optional HybridBR donated links.
type BRPolicy struct {
	// Opts tunes the solver.
	Opts BROptions
	// Donated is HybridBR's k2: the number of links donated to the
	// connectivity backbone (Sect. 3.3). Zero means plain BR. Donated
	// links form k2/2 bidirectional cycles over the alive ring and the
	// remaining k1 = K - k2 links are chosen by BR given their existence.
	Donated int
	// SampleDests restricts the BR objective to the sampled destinations
	// when a sample is present (the paper's scaled-input formulation).
	SampleDests bool
}

// Name implements Policy.
func (p BRPolicy) Name() string {
	if p.Donated > 0 {
		return "HybridBR"
	}
	return "BR"
}

// Select implements Policy.
func (p BRPolicy) Select(req *Request) ([]int, error) {
	donated := p.donatedLinks(req)
	k1 := req.K - len(donated)
	if k1 < 0 {
		k1 = 0
	}
	resid := req.Resid
	if resid == nil {
		resid = BuildResidScratch(req.Graph, req.Self, req.Kind, req.Active, req.Scratch)
	}
	inst := &Instance{
		Self:   req.Self,
		Kind:   req.Kind,
		Direct: req.Direct,
		Resid:  resid,
		Pref:   req.Pref,
		Fixed:  donated,
	}
	cands := req.aliveCandidates()
	// Donated links are fixed, not candidates.
	if len(donated) > 0 {
		d := map[int]bool{}
		for _, v := range donated {
			d[v] = true
		}
		var filtered []int
		for _, c := range cands {
			if !d[c] {
				filtered = append(filtered, c)
			}
		}
		cands = filtered
	}
	inst.Candidates = cands
	if req.Sample != nil && p.SampleDests {
		inst.Dests = cands
	}
	chosen, _, err := BestResponseScratch(inst, k1, p.Opts, req.Scratch)
	if err != nil {
		return nil, err
	}
	out := append(chosen, donated...)
	sort.Ints(out)
	return out, nil
}

// donatedLinks computes the HybridBR connectivity-backbone targets for the
// requesting node.
func (p BRPolicy) donatedLinks(req *Request) []int {
	return DonatedTargets(req.Self, len(req.Direct), p.Donated, req.Active)
}

// DonatedTargets returns the HybridBR backbone targets of node self in an
// n-id overlay with the given alive mask: for each of k2/2 bidirectional
// cycles with offset c, links to the ring successor and predecessor at
// offset c over the ring of alive node ids (Sect. 3.3). The backbone is a
// pure function of membership, so every node can re-derive and repair it
// immediately when membership changes — the "aggressive monitoring" of the
// donated links.
func DonatedTargets(self, n, donated int, active []bool) []int {
	if donated <= 0 {
		return nil
	}
	var ring []int
	for v := 0; v < n; v++ {
		if active == nil || active[v] {
			ring = append(ring, v)
		}
	}
	rn := len(ring)
	if rn <= 1 {
		return nil
	}
	pos := ringIndex(ring, self)
	if pos < 0 {
		return nil
	}
	seen := map[int]bool{self: true}
	var out []int
	cycles := donated / 2
	if cycles < 1 {
		cycles = 1
	}
	for c := 1; c <= cycles && len(out) < donated; c++ {
		for _, tgt := range []int{ring[(pos+c)%rn], ring[((pos-c)%rn+rn)%rn]} {
			if !seen[tgt] && len(out) < donated {
				seen[tgt] = true
				out = append(out, tgt)
			}
		}
	}
	return out
}

// FullMesh wires a node to every alive node — the O(n²)-link RON-style
// upper bound of Fig. 1 (top-left).
type FullMesh struct{}

// Name implements Policy.
func (FullMesh) Name() string { return "Full mesh" }

// Select implements Policy.
func (FullMesh) Select(req *Request) ([]int, error) {
	out := req.aliveCandidates()
	sort.Ints(out)
	return out, nil
}

// aliveRing returns the alive node ids in increasing order — the DHT-style
// identifier ring the k-Regular and HybridBR backbones are built on.
func aliveRing(req *Request) []int {
	var ring []int
	for v := 0; v < len(req.Direct); v++ {
		if req.alive(v) {
			ring = append(ring, v)
		}
	}
	return ring
}

func ringIndex(ring []int, v int) int {
	for i, u := range ring {
		if u == v {
			return i
		}
	}
	return -1
}

// EnforceCycle implements the connectivity fallback of k-Random and
// k-Closest (Sect. 3.2): if the directed overlay over the alive nodes is
// not strongly connected, each alive node's worst out-link is replaced by a
// link to its alive ring successor, guaranteeing a spanning cycle. wirings
// is modified in place; weights for new links come from cost(i,j). It
// reports whether a cycle was enforced.
func EnforceCycle(wirings [][]int, kind CostKind, active []bool, cost func(i, j int) float64) bool {
	n := len(wirings)
	g := graph.New(n)
	for i, ws := range wirings {
		if active != nil && !active[i] {
			continue
		}
		for _, j := range ws {
			g.AddArc(i, j, 1)
		}
	}
	if graph.StronglyConnected(g, active) {
		return false
	}
	var ring []int
	for v := 0; v < n; v++ {
		if active == nil || active[v] {
			ring = append(ring, v)
		}
	}
	if len(ring) <= 1 {
		return false
	}
	for idx, i := range ring {
		succ := ring[(idx+1)%len(ring)]
		if i == succ || containsInt(wirings[i], succ) {
			continue
		}
		if len(wirings[i]) == 0 {
			wirings[i] = []int{succ}
			continue
		}
		// Replace the worst-valued link to keep the degree budget k.
		worst := 0
		for l := 1; l < len(wirings[i]); l++ {
			if kind.better(cost(i, wirings[i][worst]), cost(i, wirings[i][l])) {
				worst = l
			}
		}
		wirings[i][worst] = succ
		sort.Ints(wirings[i])
	}
	return true
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
