package core

import (
	"fmt"
	"math"
	"sort"
)

// BROptions tunes the best-response solvers.
type BROptions struct {
	// MaxPasses bounds local-search improvement passes; 0 means a sensible
	// default (enough for convergence at overlay scales).
	MaxPasses int
	// Exact forces exhaustive enumeration. Enumeration refuses instances
	// with more than MaxCombinations subsets.
	Exact bool
	// MaxCombinations caps exact enumeration work; 0 means 5e6.
	MaxCombinations int64
}

func (o BROptions) maxPasses() int {
	if o.MaxPasses <= 0 {
		return 16
	}
	return o.MaxPasses
}

func (o BROptions) maxCombinations() int64 {
	if o.MaxCombinations <= 0 {
		return 5_000_000
	}
	return o.MaxCombinations
}

// BestResponse computes a wiring of k facilities for the instance: the
// exact optimum when opts.Exact is set (small instances only), otherwise
// the greedy + single-swap local search EGOIST deploys (Sect. 3.2), which
// matches the Arya et al. k-median local search the paper cites. It returns
// the chosen set (sorted) and its objective value.
//
// BestResponse reads but never writes the instance; concurrent calls on
// the same or distinct instances are safe.
func BestResponse(in *Instance, k int, opts BROptions) ([]int, float64, error) {
	return BestResponseScratch(in, k, opts, nil)
}

// BestResponseScratch is BestResponse with an explicit scratch: all solver
// working memory (per-destination arrays, membership sets, swap caches)
// lives in s and is reused by the next call, keeping the per-epoch hot path
// of the parallel simulation engine allocation-free. The returned set is
// freshly allocated and remains valid after s is reused. A nil s allocates
// a scratch for the call.
func BestResponseScratch(in *Instance, k int, opts BROptions, s *Scratch) ([]int, float64, error) {
	if err := in.Validate(); err != nil {
		return nil, 0, err
	}
	if s == nil {
		s = &Scratch{}
	}
	cands := in.candidatesInto(s)
	if k < 0 {
		return nil, 0, fmt.Errorf("core: negative k %d", k)
	}
	if k > len(cands) {
		k = len(cands)
	}
	if k == 0 {
		return nil, in.EvalScratch(nil, s), nil
	}
	if opts.Exact {
		return exactBR(in, k, cands, opts, s)
	}
	dests := in.destsInto(s)
	chosen := greedyBR(in, k, cands, dests, s)
	chosen, val := localSearch(in, chosen, cands, dests, opts.maxPasses(), s)
	sort.Ints(chosen)
	return chosen, val, nil
}

// greedyBR builds a k-set by repeatedly adding the facility with the best
// marginal improvement — the standard k-median greedy warm start.
func greedyBR(in *Instance, k int, cands, dests []int, s *Scratch) []int {
	s.best = floats(s.best, in.n())
	best := s.best
	in.bestPerDestInto(nil, best)
	s.used = bools(s.used, in.n())
	used := s.used
	chosen := make([]int, 0, k)
	for len(chosen) < k {
		bestCand := -1
		bestTotal := math.NaN()
		for _, w := range cands {
			if used[w] {
				continue
			}
			acc := newAccum(in.Kind, in.Agg)
			dw := in.Direct[w]
			row := in.Resid[w]
			for _, j := range dests {
				c := best[j]
				if alt := in.Kind.combine(dw, row[j]); in.Kind.better(alt, c) {
					c = alt
				}
				acc.add(in.pref(j), in.Kind.finalize(c))
			}
			total := acc.value()
			if bestCand == -1 || in.Kind.better(total, bestTotal) {
				bestCand, bestTotal = w, total
			}
		}
		if bestCand == -1 {
			break
		}
		chosen = append(chosen, bestCand)
		used[bestCand] = true
		in.foldFacilities(best, chosen[len(chosen)-1:])
	}
	return chosen
}

// localSearch improves a wiring with single swaps (drop one chosen
// facility, add one unchosen candidate) until no swap improves the
// objective or maxPasses passes elapse. It returns the improved set and
// its value. chosen must be caller-owned; it is modified in place.
//
// Swap evaluation is incremental: per destination the best and second-best
// facility values are cached, so evaluating one swap costs O(|dests|)
// instead of O(k·|dests|). This is what keeps epoch-level simulation of a
// 50-node overlay over hundreds of epochs cheap.
func localSearch(in *Instance, chosen, cands []int, dests []int, maxPasses int, s *Scratch) ([]int, float64) {
	cur := chosen
	s.used = bools(s.used, in.n())
	inSet := s.used
	for _, w := range cur {
		inSet[w] = true
	}
	st := newSwapState(in, dests, s)
	st.rebuild(cur)
	curVal := st.total()

	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for si := range cur {
			old := cur[si]
			bestC := -1
			bestVal := curVal
			for _, c := range cands {
				if inSet[c] {
					continue
				}
				if v := st.swapValue(old, c); in.Kind.better(v, bestVal) {
					bestVal, bestC = v, c
				}
			}
			if bestC >= 0 {
				cur[si] = bestC
				inSet[old] = false
				inSet[bestC] = true
				curVal = bestVal
				st.rebuild(cur)
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return cur, curVal
}

// swapState caches, for every destination, the best and second-best
// facility of the current set, enabling O(|dests|) single-swap evaluation.
type swapState struct {
	in    *Instance
	dests []int
	// Per destination (indexed positionally like dests):
	best1W           []int
	best1Val, best2V []float64
}

func newSwapState(in *Instance, dests []int, s *Scratch) *swapState {
	s.sw1W = ints(s.sw1W, len(dests))
	s.sw1V = floats(s.sw1V, len(dests))
	s.sw2V = floats(s.sw2V, len(dests))
	return &swapState{
		in:       in,
		dests:    dests,
		best1W:   s.sw1W,
		best1Val: s.sw1V,
		best2V:   s.sw2V,
	}
}

// rebuild recomputes the caches for the facility set cur ∪ Fixed.
func (st *swapState) rebuild(cur []int) {
	in := st.in
	for di := range st.dests {
		st.best1W[di] = -1
		st.best1Val[di] = in.Kind.worst()
		st.best2V[di] = in.Kind.worst()
	}
	fold := func(w int, removable bool) {
		dw := in.Direct[w]
		row := in.Resid[w]
		for di, j := range st.dests {
			c := in.Kind.combine(dw, row[j])
			if in.Kind.better(c, st.best1Val[di]) {
				st.best2V[di] = st.best1Val[di]
				st.best1Val[di] = c
				if removable {
					st.best1W[di] = w
				} else {
					st.best1W[di] = -1 // fixed facilities are never swapped out
				}
			} else if in.Kind.better(c, st.best2V[di]) {
				st.best2V[di] = c
			}
		}
	}
	for _, w := range in.Fixed {
		fold(w, false)
	}
	for _, w := range cur {
		fold(w, true)
	}
}

// total returns the objective of the current set.
func (st *swapState) total() float64 {
	in := st.in
	acc := newAccum(in.Kind, in.Agg)
	for di, j := range st.dests {
		acc.add(in.pref(j), in.Kind.finalize(st.best1Val[di]))
	}
	return acc.value()
}

// swapValue returns the objective after removing facility out and adding
// facility c, without mutating the caches.
func (st *swapState) swapValue(out, c int) float64 {
	in := st.in
	dc := in.Direct[c]
	rowC := in.Resid[c]
	acc := newAccum(in.Kind, in.Agg)
	for di, j := range st.dests {
		v := st.best1Val[di]
		if st.best1W[di] == out {
			v = st.best2V[di]
		}
		if cv := in.Kind.combine(dc, rowC[j]); in.Kind.better(cv, v) {
			v = cv
		}
		acc.add(in.pref(j), in.Kind.finalize(v))
	}
	return acc.value()
}

// exactBR enumerates all k-subsets of the candidates.
func exactBR(in *Instance, k int, cands []int, opts BROptions, s *Scratch) ([]int, float64, error) {
	if c := combinations(len(cands), k); c < 0 || c > opts.maxCombinations() {
		return nil, 0, fmt.Errorf("core: exact BR over %d candidates choose %d exceeds limit", len(cands), k)
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	var bestSet []int
	bestVal := math.NaN()
	subset := make([]int, k)
	for {
		for i, ix := range idx {
			subset[i] = cands[ix]
		}
		if v := in.EvalScratch(subset, s); bestSet == nil || in.Kind.better(v, bestVal) {
			bestVal = v
			bestSet = append(bestSet[:0], subset...)
		}
		// Advance the combination indices.
		i := k - 1
		for i >= 0 && idx[i] == len(cands)-k+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	sort.Ints(bestSet)
	return bestSet, bestVal, nil
}

// combinations returns C(n,k), or -1 on overflow.
func combinations(n, k int) int64 {
	if k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := int64(1)
	for i := 1; i <= k; i++ {
		c = c * int64(n-k+i) / int64(i)
		if c < 0 || c > (1<<62)/int64(n+1) {
			return -1
		}
	}
	return c
}

// ShouldRewire implements BR(ε) (Sect. 4.3): re-wiring happens only when
// the newly computed wiring improves on the current one by more than
// epsilon (a fraction of the current cost). With epsilon 0 any strict
// improvement triggers a re-wire.
func ShouldRewire(kind CostKind, curVal, newVal, epsilon float64) bool {
	if !kind.better(newVal, curVal) {
		return false
	}
	if epsilon <= 0 {
		return newVal != curVal
	}
	if kind == Bottleneck {
		return newVal > curVal*(1+epsilon)
	}
	return newVal < curVal*(1-epsilon)
}
