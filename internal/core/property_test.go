package core

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"egoist/internal/graph"
)

// localSearchBound is the factor by which greedy + single-swap local
// search may trail the enumerated optimum on the property-test instances.
// The Arya et al. k-median guarantee the paper cites is 5 for metric
// instances; the random instances below stay far inside it (the suite
// also records the observed worst case, which is ~1.0x).
const localSearchBound = 5.0

// randomInstance builds a small random best-response instance. Roughly a
// third get a candidate restriction, a fixed (donated) facility, or
// non-uniform preferences, matching the shapes the simulator produces.
func propInstance(rng *rand.Rand, kind CostKind) *Instance {
	n := 4 + rng.Intn(5) // 4..8 — small enough for exact enumeration
	g := graph.New(n)
	for u := 0; u < n; u++ {
		deg := 1 + rng.Intn(3)
		for d := 0; d < deg; d++ {
			if v := rng.Intn(n); v != u {
				g.AddArc(u, v, 1+rng.Float64()*30)
			}
		}
	}
	self := rng.Intn(n)
	direct := make([]float64, n)
	for j := range direct {
		if j != self {
			direct[j] = 1 + rng.Float64()*30
		}
	}
	in := &Instance{
		Self:   self,
		Kind:   kind,
		Direct: direct,
		Resid:  BuildResid(g, self, kind, nil),
	}
	others := make([]int, 0, n-1)
	for j := 0; j < n; j++ {
		if j != self {
			others = append(others, j)
		}
	}
	if rng.Intn(3) == 0 {
		rng.Shuffle(len(others), func(i, j int) { others[i], others[j] = others[j], others[i] })
		cands := append([]int(nil), others[:2+rng.Intn(len(others)-1)]...)
		sort.Ints(cands)
		in.Candidates = cands
	}
	if rng.Intn(3) == 0 {
		in.Fixed = []int{others[rng.Intn(len(others))]}
	}
	if rng.Intn(3) == 0 {
		pref := make([]float64, n)
		for j := range pref {
			pref[j] = 0.5 + rng.Float64()*2
		}
		in.Pref = pref
	}
	return in
}

// checkWellFormed asserts the structural invariants every BestResponse
// result must satisfy: sorted, duplicate-free, size min(k, |candidates|),
// drawn from the candidate set, and never Self or a Fixed facility.
func checkSolution(t *testing.T, in *Instance, chosen []int, k int) {
	t.Helper()
	if !sort.IntsAreSorted(chosen) {
		t.Fatalf("chosen %v not sorted", chosen)
	}
	cands := in.candidates()
	want := k
	if want > len(cands) {
		want = len(cands)
	}
	if len(chosen) != want {
		t.Fatalf("chosen %v has %d facilities, want %d", chosen, len(chosen), want)
	}
	inCands := map[int]bool{}
	for _, c := range cands {
		inCands[c] = true
	}
	fixed := map[int]bool{}
	for _, f := range in.Fixed {
		fixed[f] = true
	}
	seen := map[int]bool{}
	for _, w := range chosen {
		if w == in.Self {
			t.Fatalf("chosen %v contains self %d", chosen, in.Self)
		}
		if !inCands[w] {
			t.Fatalf("chosen %v contains non-candidate %d (candidates %v)", chosen, w, cands)
		}
		if seen[w] {
			t.Fatalf("chosen %v contains %d twice", chosen, w)
		}
		seen[w] = true
	}
	for _, w := range chosen {
		if fixed[w] && in.Candidates == nil {
			// Fixed facilities are legal candidates in the default set, but
			// choosing one wastes budget; flag it as a solver bug.
			t.Logf("note: chosen %v re-buys fixed facility %d", chosen, w)
		}
	}
}

// TestBestResponsePropertiesAgainstExact is the table-driven property
// suite: on random small instances the heuristic's wiring is well-formed,
// its reported value matches re-evaluation, and its objective is within
// the local-search approximation bound of the enumerated optimum.
func TestBestResponsePropertiesAgainstExact(t *testing.T) {
	worst := 1.0
	for _, kind := range []CostKind{Additive, Bottleneck} {
		for seed := int64(0); seed < 60; seed++ {
			rng := rand.New(rand.NewSource(seed))
			in := propInstance(rng, kind)
			k := 1 + rng.Intn(3)

			chosen, val, err := BestResponse(in, k, BROptions{})
			if err != nil {
				t.Fatalf("kind %v seed %d: %v", kind, seed, err)
			}
			checkSolution(t, in, chosen, k)
			if reval := in.Eval(chosen); reval != val {
				t.Fatalf("kind %v seed %d: reported %v, re-evaluated %v", kind, seed, val, reval)
			}

			exact, exactVal, err := BestResponse(in, k, BROptions{Exact: true})
			if err != nil {
				t.Fatalf("kind %v seed %d: exact: %v", kind, seed, err)
			}
			checkSolution(t, in, exact, k)
			if kind.better(val, exactVal) {
				t.Fatalf("kind %v seed %d: heuristic %v beats enumerated optimum %v", kind, seed, val, exactVal)
			}
			ratio := 1.0
			if kind == Additive && exactVal > 0 {
				ratio = val / exactVal
			} else if kind == Bottleneck && val > 0 {
				ratio = exactVal / val
			}
			if ratio > localSearchBound {
				t.Fatalf("kind %v seed %d: heuristic %v vs optimum %v exceeds %.1fx bound",
					kind, seed, val, exactVal, localSearchBound)
			}
			if ratio > worst {
				worst = ratio
			}
		}
	}
	t.Logf("worst heuristic/optimum ratio observed: %.4f", worst)
}

// TestExactBROptimalOverRandomSubsets cross-checks the enumerator itself:
// no random k-subset may beat the value it reports.
func TestExactBROptimalOverRandomSubsets(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := propInstance(rng, Additive)
		k := 1 + rng.Intn(2)
		_, exactVal, err := BestResponse(in, k, BROptions{Exact: true})
		if err != nil {
			t.Fatal(err)
		}
		cands := in.candidates()
		for trial := 0; trial < 50; trial++ {
			rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
			kk := k
			if kk > len(cands) {
				kk = len(cands)
			}
			subset := append([]int(nil), cands[:kk]...)
			if v := in.Eval(subset); in.Kind.better(v, exactVal) {
				t.Fatalf("seed %d: subset %v value %v beats exact %v", seed, subset, v, exactVal)
			}
		}
	}
}

// TestScratchReuseMatchesFreshAllocation pins the allocation-free path: a
// single Scratch reused across the whole instance table must produce
// byte-identical wirings and values to scratch-free calls.
func TestScratchReuseMatchesFreshAllocation(t *testing.T) {
	var s Scratch
	for _, kind := range []CostKind{Additive, Bottleneck} {
		for seed := int64(0); seed < 40; seed++ {
			rng := rand.New(rand.NewSource(seed))
			in := propInstance(rng, kind)
			k := 1 + rng.Intn(3)
			want, wantVal, err := BestResponse(in, k, BROptions{})
			if err != nil {
				t.Fatal(err)
			}
			got, gotVal, err := BestResponseScratch(in, k, BROptions{}, &s)
			if err != nil {
				t.Fatal(err)
			}
			if !equalIntSlices(want, got) || wantVal != gotVal {
				t.Fatalf("kind %v seed %d: scratch (%v, %v) != fresh (%v, %v)",
					kind, seed, got, gotVal, want, wantVal)
			}
			if ev := in.EvalScratch(got, &s); ev != in.Eval(got) {
				t.Fatalf("kind %v seed %d: EvalScratch %v != Eval %v", kind, seed, ev, in.Eval(got))
			}
		}
	}
}

// TestConcurrentBestResponseOnSharedInstance drives many goroutines over
// one shared Instance, each with its own scratch — the exact sharing shape
// of the simulator's proposal phase. Run with -race this pins the
// documented read-only contract.
func TestConcurrentBestResponseOnSharedInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := propInstance(rng, Additive)
	want, wantVal, err := BestResponse(in, 2, BROptions{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var s Scratch
			for it := 0; it < 50; it++ {
				got, gotVal, err := BestResponseScratch(in, 2, BROptions{}, &s)
				if err != nil {
					errs[g] = err.Error()
					return
				}
				if !equalIntSlices(want, got) || gotVal != wantVal {
					errs[g] = "concurrent result diverged"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, e := range errs {
		if e != "" {
			t.Fatal(e)
		}
	}
}

// TestBuildResidScratchMatchesBuildResid pins the scratch-backed residual
// construction (including alive-mask handling) to the allocating one.
func TestBuildResidScratchMatchesBuildResid(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var s Scratch
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(8)
		g := graph.New(n)
		for u := 0; u < n; u++ {
			for d := 0; d < 2; d++ {
				if v := rng.Intn(n); v != u {
					g.AddArc(u, v, 1+rng.Float64()*10)
				}
			}
		}
		var active []bool
		if rng.Intn(2) == 0 {
			active = make([]bool, n)
			for i := range active {
				active[i] = rng.Intn(4) > 0
			}
		}
		self := rng.Intn(n)
		kind := Additive
		if trial%2 == 1 {
			kind = Bottleneck
		}
		want := BuildResid(g, self, kind, active)
		got := BuildResidScratch(g, self, kind, active, &s)
		for u := range want {
			for v := range want[u] {
				if want[u][v] != got[u][v] {
					t.Fatalf("trial %d: resid[%d][%d] = %v, want %v", trial, u, v, got[u][v], want[u][v])
				}
			}
		}
	}
}

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
