// Package roster parses the node roster files the live deployment tools
// use: one "id host:port" line per overlay node, with #-comments.
package roster

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Roster maps overlay node ids to UDP addresses.
type Roster map[int]string

// Parse reads roster lines from r.
func Parse(r io.Reader) (Roster, error) {
	out := Roster{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("roster: line %d: want 'id host:port', got %q", lineNo, line)
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil || id < 0 {
			return nil, fmt.Errorf("roster: line %d: bad id %q", lineNo, fields[0])
		}
		if _, dup := out[id]; dup {
			return nil, fmt.Errorf("roster: line %d: duplicate id %d", lineNo, id)
		}
		if !strings.Contains(fields[1], ":") {
			return nil, fmt.Errorf("roster: line %d: address %q missing port", lineNo, fields[1])
		}
		out[id] = fields[1]
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) < 2 {
		return nil, fmt.Errorf("roster: needs at least 2 nodes, has %d", len(out))
	}
	return out, nil
}

// Load parses a roster file.
func Load(path string) (Roster, error) {
	if path == "" {
		return nil, fmt.Errorf("roster: missing path")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

// MaxID returns the largest node id, defining the overlay's id space.
func (r Roster) MaxID() int {
	maxID := 0
	for id := range r {
		if id > maxID {
			maxID = id
		}
	}
	return maxID
}

// IDs returns the sorted node ids.
func (r Roster) IDs() []int {
	out := make([]int, 0, len(r))
	for id := range r {
		out = append(out, id)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
