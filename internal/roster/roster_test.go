package roster

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseValid(t *testing.T) {
	in := `# three nodes
0 127.0.0.1:7000
1 127.0.0.1:7001

2 host.example:7002
`
	r, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 3 || r[2] != "host.example:7002" {
		t.Fatalf("parsed %v", r)
	}
	if r.MaxID() != 2 {
		t.Fatalf("MaxID = %d", r.MaxID())
	}
	ids := r.IDs()
	if len(ids) != 3 || ids[0] != 0 || ids[2] != 2 {
		t.Fatalf("IDs = %v", ids)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                // empty
		"0 127.0.0.1:7000\n",              // single node
		"x 127.0.0.1:7000\n0 a:1\n",       // bad id
		"-1 127.0.0.1:7000\n0 a:1\n",      // negative id
		"0 127.0.0.1:7000 extra\n1 a:1\n", // extra field
		"0 noport\n1 a:1\n",               // missing port
		"0 a:1\n0 b:2\n",                  // duplicate id
	}
	for _, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "roster.txt")
	if err := os.WriteFile(path, []byte("0 a:1\n1 b:2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 2 {
		t.Fatalf("loaded %v", r)
	}
	if _, err := Load(""); err == nil {
		t.Fatal("empty path accepted")
	}
	if _, err := Load(filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("missing file accepted")
	}
}
