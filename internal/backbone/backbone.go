// Package backbone implements connectivity backbones for HybridBR's
// donated links (Sect. 3.3): the bidirectional-cycle construction EGOIST
// uses, and the k-MST construction of Young et al. that the paper argues
// against. Both produce, for a given membership, the set of links each
// node must maintain; comparing how those sets shift when membership
// changes quantifies the paper's argument that MSTs "must always be
// updated" while cycles only touch a failure's ring neighbors.
package backbone

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"egoist/internal/core"
	"egoist/internal/graph"
)

// Kind selects the backbone construction.
type Kind int

const (
	// Cycles is EGOIST's construction: k2/2 bidirectional cycles over the
	// alive id ring.
	Cycles Kind = iota
	// MST builds minimum spanning trees over the (symmetrized) link
	// costs; k2 >= 4 adds a second, edge-disjoint tree.
	MST
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Cycles:
		return "cycles"
	case MST:
		return "k-MST"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Links returns, for every node, the sorted backbone adjacencies it must
// maintain under the given membership. cost(i,j) supplies link costs (only
// used by MST); k2 is the donated-link budget per node. Dead nodes get nil.
//
// Note the structural difference the paper calls out: with Cycles every
// alive node maintains exactly min(k2, alive-1) links, while an MST does
// not respect per-node budgets — hub nodes can exceed k2.
func Links(kind Kind, n int, active []bool, cost func(i, j int) float64, k2 int) ([][]int, error) {
	if k2 < 1 {
		return nil, fmt.Errorf("backbone: k2 = %d, need >= 1", k2)
	}
	switch kind {
	case Cycles:
		out := make([][]int, n)
		for v := 0; v < n; v++ {
			if active == nil || active[v] {
				out[v] = core.DonatedTargets(v, n, k2, active)
			}
		}
		return out, nil
	case MST:
		return mstLinks(n, active, cost, k2)
	default:
		return nil, fmt.Errorf("backbone: unknown kind %d", kind)
	}
}

// mstLinks builds one MST (k2 < 4) or two edge-disjoint MSTs (k2 >= 4)
// over the alive nodes and returns the bidirectional adjacency lists.
func mstLinks(n int, active []bool, cost func(i, j int) float64, k2 int) ([][]int, error) {
	if cost == nil {
		return nil, fmt.Errorf("backbone: MST requires a cost function")
	}
	var alive []int
	for v := 0; v < n; v++ {
		if active == nil || active[v] {
			alive = append(alive, v)
		}
	}
	out := make([][]int, n)
	if len(alive) < 2 {
		return out, nil
	}
	sym := func(i, j int) float64 {
		return math.Min(cost(i, j), cost(j, i))
	}
	forbidden := map[[2]int]bool{}
	trees := 1
	if k2 >= 4 {
		trees = 2
	}
	adj := make(map[int]map[int]bool, len(alive))
	for t := 0; t < trees; t++ {
		edges, err := prim(alive, sym, forbidden)
		if err != nil {
			if t == 0 {
				return nil, err
			}
			break // second edge-disjoint tree may not exist; keep the first
		}
		for _, e := range edges {
			forbidden[normPair(e[0], e[1])] = true
			if adj[e[0]] == nil {
				adj[e[0]] = map[int]bool{}
			}
			if adj[e[1]] == nil {
				adj[e[1]] = map[int]bool{}
			}
			adj[e[0]][e[1]] = true
			adj[e[1]][e[0]] = true
		}
	}
	for v, peers := range adj {
		for p := range peers {
			out[v] = append(out[v], p)
		}
		sort.Ints(out[v])
	}
	return out, nil
}

// prim computes an MST over members with the given symmetric cost,
// skipping forbidden edges. It returns the tree's edges.
func prim(members []int, cost func(i, j int) float64, forbidden map[[2]int]bool) ([][2]int, error) {
	in := map[int]bool{members[0]: true}
	var edges [][2]int
	pq := &edgeHeap{}
	push := func(from int) {
		for _, to := range members {
			if !in[to] && !forbidden[normPair(from, to)] {
				heap.Push(pq, edgeItem{from: from, to: to, w: cost(from, to)})
			}
		}
	}
	push(members[0])
	for len(in) < len(members) {
		if pq.Len() == 0 {
			return nil, fmt.Errorf("backbone: MST disconnected (forbidden edges exhausted)")
		}
		e := heap.Pop(pq).(edgeItem)
		if in[e.to] {
			continue
		}
		in[e.to] = true
		edges = append(edges, [2]int{e.from, e.to})
		push(e.to)
	}
	return edges, nil
}

func normPair(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

type edgeItem struct {
	from, to int
	w        float64
}

type edgeHeap []edgeItem

func (h edgeHeap) Len() int            { return len(h) }
func (h edgeHeap) Less(i, j int) bool  { return h[i].w < h[j].w }
func (h edgeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *edgeHeap) Push(x interface{}) { *h = append(*h, x.(edgeItem)) }
func (h *edgeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Connected reports whether the backbone adjacencies connect all alive
// nodes (treating links as bidirectional, as both constructions do).
func Connected(links [][]int, active []bool) bool {
	n := len(links)
	g := graph.New(n)
	for v, peers := range links {
		for _, p := range peers {
			g.AddArc(v, p, 1)
			g.AddArc(p, v, 1)
		}
	}
	return graph.StronglyConnected(g, active)
}

// MaintenanceCost reports how many link changes (additions across all
// nodes) moving from the backbone of membership `before` to that of
// `after` requires — the churn-maintenance burden of Sect. 3.3's
// discussion.
func MaintenanceCost(kind Kind, n int, before, after []bool, cost func(i, j int) float64, k2 int) (int, error) {
	oldLinks, err := Links(kind, n, before, cost, k2)
	if err != nil {
		return 0, err
	}
	newLinks, err := Links(kind, n, after, cost, k2)
	if err != nil {
		return 0, err
	}
	total := 0
	for v := 0; v < n; v++ {
		if after != nil && !after[v] {
			continue
		}
		om := map[int]bool{}
		for _, p := range oldLinks[v] {
			om[p] = true
		}
		for _, p := range newLinks[v] {
			if !om[p] {
				total++
			}
		}
	}
	return total, nil
}

// MaxDegree returns the largest per-node backbone degree — the budget
// violation risk of tree-based backbones.
func MaxDegree(links [][]int) int {
	maxd := 0
	for _, peers := range links {
		if len(peers) > maxd {
			maxd = len(peers)
		}
	}
	return maxd
}
