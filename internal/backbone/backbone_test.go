package backbone

import (
	"math/rand"
	"testing"
	"testing/quick"

	"egoist/internal/underlay"
)

func delayCost(t *testing.T, n int, seed int64) func(i, j int) float64 {
	t.Helper()
	u, err := underlay.New(underlay.Config{N: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return u.Delay
}

func allActive(n int) []bool {
	a := make([]bool, n)
	for i := range a {
		a[i] = true
	}
	return a
}

func TestCyclesConnected(t *testing.T) {
	const n = 20
	links, err := Links(Cycles, n, allActive(n), nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !Connected(links, allActive(n)) {
		t.Fatal("cycle backbone disconnected")
	}
	for v, peers := range links {
		if len(peers) != 2 {
			t.Fatalf("node %d has %d donated links, want 2", v, len(peers))
		}
	}
}

func TestCyclesRespectBudgetUnderChurn(t *testing.T) {
	const n = 15
	active := allActive(n)
	active[3], active[7], active[11] = false, false, false
	links, err := Links(Cycles, n, active, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !Connected(links, active) {
		t.Fatal("cycle backbone disconnected under churn")
	}
	for v, peers := range links {
		if !active[v] && peers != nil {
			t.Fatalf("dead node %d has links %v", v, peers)
		}
		if len(peers) > 4 {
			t.Fatalf("node %d exceeds budget: %v", v, peers)
		}
		for _, p := range peers {
			if !active[p] {
				t.Fatalf("node %d links to dead node %d", v, p)
			}
		}
	}
}

func TestMSTConnectedAndMinimal(t *testing.T) {
	const n = 20
	cost := delayCost(t, n, 1)
	links, err := Links(MST, n, allActive(n), cost, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !Connected(links, allActive(n)) {
		t.Fatal("MST backbone disconnected")
	}
	// A tree over n nodes has n-1 edges = 2(n-1) adjacency entries.
	entries := 0
	for _, peers := range links {
		entries += len(peers)
	}
	if entries != 2*(n-1) {
		t.Fatalf("MST adjacency entries = %d, want %d", entries, 2*(n-1))
	}
}

func TestTwoEdgeDisjointMSTs(t *testing.T) {
	const n = 12
	cost := delayCost(t, n, 2)
	links, err := Links(MST, n, allActive(n), cost, 4)
	if err != nil {
		t.Fatal(err)
	}
	entries := 0
	for _, peers := range links {
		entries += len(peers)
	}
	// Two edge-disjoint trees: 2 * 2(n-1) entries (complete cost graph
	// always admits a second tree).
	if entries != 4*(n-1) {
		t.Fatalf("entries = %d, want %d for two trees", entries, 4*(n-1))
	}
	if !Connected(links, allActive(n)) {
		t.Fatal("double-MST backbone disconnected")
	}
}

func TestMSTCanExceedBudget(t *testing.T) {
	// A star-shaped cost function forces a hub: node 0 is near everyone,
	// everyone else is far apart.
	const n = 10
	cost := func(i, j int) float64 {
		if i == 0 || j == 0 {
			return 1
		}
		return 100
	}
	links, err := Links(MST, n, allActive(n), cost, 2)
	if err != nil {
		t.Fatal(err)
	}
	if MaxDegree(links) <= 2 {
		t.Fatalf("expected hub to exceed the k2=2 budget, max degree %d", MaxDegree(links))
	}
}

func TestMSTRequiresCost(t *testing.T) {
	if _, err := Links(MST, 5, allActive(5), nil, 2); err == nil {
		t.Fatal("MST without cost function accepted")
	}
}

func TestLinksValidation(t *testing.T) {
	if _, err := Links(Cycles, 5, nil, nil, 0); err == nil {
		t.Fatal("k2=0 accepted")
	}
	if _, err := Links(Kind(99), 5, nil, nil, 2); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// TestCyclesMaintenanceIsLocal checks the §3.3 claim for membership
// events: re-forming the ring after one failure touches only the
// failure's ring neighborhood — O(k2) link changes.
func TestCyclesMaintenanceIsLocal(t *testing.T) {
	const n = 40
	before := allActive(n)
	for victim := 0; victim < n; victim += 5 {
		after := allActive(n)
		after[victim] = false
		c, err := MaintenanceCost(Cycles, n, before, after, nil, 2)
		if err != nil {
			t.Fatal(err)
		}
		if c > 4 {
			t.Fatalf("victim %d: %d link changes, want <= 2*k2", victim, c)
		}
	}
}

// TestCyclesImmuneToWeightChangesUnlikeMST quantifies the other half of
// the §3.3 argument: an MST "must always be updated ... due to changes in
// edge weights over time", while the cycle construction is cost-oblivious
// and never re-wires on weight changes.
func TestCyclesImmuneToWeightChangesUnlikeMST(t *testing.T) {
	const n = 40
	active := allActive(n)
	u1 := delayCost(t, n, 3)
	// A perturbed view of the same network: different seed = the same
	// geography class with re-drawn jitter and inflation.
	u2 := delayCost(t, n, 4)

	mstBefore, err := Links(MST, n, active, u1, 2)
	if err != nil {
		t.Fatal(err)
	}
	mstAfter, err := Links(MST, n, active, u2, 2)
	if err != nil {
		t.Fatal(err)
	}
	mstChanges := diffLinks(mstBefore, mstAfter)
	if mstChanges == 0 {
		t.Fatal("weight perturbation left the MST unchanged; test not probing anything")
	}

	cyclesBefore, err := Links(Cycles, n, active, u1, 2)
	if err != nil {
		t.Fatal(err)
	}
	cyclesAfter, err := Links(Cycles, n, active, u2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if diffLinks(cyclesBefore, cyclesAfter) != 0 {
		t.Fatal("cycle backbone changed on a pure weight change")
	}
}

func diffLinks(a, b [][]int) int {
	total := 0
	for v := range a {
		am := map[int]bool{}
		for _, p := range a[v] {
			am[p] = true
		}
		for _, p := range b[v] {
			if !am[p] {
				total++
			}
		}
	}
	return total
}

// Property: both backbones connect any alive subset of size >= 2.
func TestBackbonesAlwaysConnectProperty(t *testing.T) {
	cost := func(i, j int) float64 { return float64((i*7+j*13)%17 + 1) }
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(16)
		active := make([]bool, n)
		aliveCount := 0
		for i := range active {
			active[i] = rng.Float64() < 0.7
			if active[i] {
				aliveCount++
			}
		}
		if aliveCount < 2 {
			return true
		}
		for _, kind := range []Kind{Cycles, MST} {
			links, err := Links(kind, n, active, cost, 2)
			if err != nil {
				return false
			}
			if !Connected(links, active) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
