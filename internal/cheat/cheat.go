// Package cheat models the free riders of Sect. 4.5: nodes that announce
// false costs for their outgoing links through the link-state protocol to
// discourage others from selecting them as upstream neighbors, plus the
// audit countermeasure sketched in Sect. 3.4.
package cheat

import (
	"math"
	"math/rand"
)

// Model describes a population of cost-misrepresenting free riders.
type Model struct {
	// Cheater[i] is true when node i misrepresents its outgoing costs.
	Cheater []bool
	// Factor multiplies announced outgoing-link costs: > 1 inflates delays
	// (the paper's main experiment uses 2), < 1 deflates them (footnote 10).
	Factor float64
}

// None returns a model with no cheaters.
func None(n int) *Model {
	return &Model{Cheater: make([]bool, n), Factor: 1}
}

// Single returns a model where only node `who` inflates costs by factor.
func Single(n, who int, factor float64) *Model {
	m := None(n)
	m.Cheater[who] = true
	m.Factor = factor
	return m
}

// Population returns a model with `count` cheaters drawn without
// replacement by rng, each inflating by factor.
func Population(n, count int, factor float64, rng *rand.Rand) *Model {
	m := None(n)
	m.Factor = factor
	perm := rng.Perm(n)
	if count > n {
		count = n
	}
	for _, v := range perm[:count] {
		m.Cheater[v] = true
	}
	return m
}

// Cheaters returns the ids of all cheating nodes.
func (m *Model) Cheaters() []int {
	var out []int
	for v, c := range m.Cheater {
		if c {
			out = append(out, v)
		}
	}
	return out
}

// Announced transforms the true cost of link (from -> to) into what `from`
// announces on the link-state protocol. Honest nodes announce the truth;
// cheaters scale their outgoing costs by Factor. For the bottleneck
// (bandwidth) algebra, callers should pass bottleneck=true so inflation
// *lowers* the announced bandwidth (an unattractive link means less
// bandwidth, not more).
func (m *Model) Announced(from int, trueCost float64, bottleneck bool) float64 {
	if m == nil || !m.Cheater[from] || m.Factor == 1 {
		return trueCost
	}
	if bottleneck {
		return trueCost / m.Factor
	}
	return trueCost * m.Factor
}

// Audit compares a node's announced cost against an independent estimate
// (e.g. from the virtual coordinate system, Sect. 3.4) and reports whether
// the discrepancy exceeds tolerance (a relative threshold such as 0.5).
// It is the detection mechanism the paper argues EGOIST can do without.
func Audit(announced, independent, tolerance float64) bool {
	if independent <= 0 {
		return false
	}
	return math.Abs(announced-independent)/independent > tolerance
}

// AuditSweep audits a random subset of nodes' announced outgoing costs and
// returns the detected cheater ids. announce(i,j) is the cost node i
// declares for its link to j; estimate(i,j) is the auditor's independent
// estimate. Each audited node is checked on up to probes random outgoing
// links.
func AuditSweep(n, audits, probes int, tolerance float64, rng *rand.Rand,
	announce, estimate func(i, j int) float64) []int {
	var detected []int
	perm := rng.Perm(n)
	if audits > n {
		audits = n
	}
	for _, i := range perm[:audits] {
		flagged := 0
		for p := 0; p < probes; p++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			if Audit(announce(i, j), estimate(i, j), tolerance) {
				flagged++
			}
		}
		if flagged > probes/2 {
			detected = append(detected, i)
		}
	}
	return detected
}
