package cheat

import (
	"math/rand"
	"testing"
)

func TestNoneAnnouncesTruth(t *testing.T) {
	m := None(5)
	if got := m.Announced(2, 10, false); got != 10 {
		t.Fatalf("honest announcement = %v, want 10", got)
	}
}

func TestNilModelSafe(t *testing.T) {
	var m *Model
	if got := m.Announced(0, 7, false); got != 7 {
		t.Fatalf("nil model announcement = %v, want 7", got)
	}
}

func TestSingleInflates(t *testing.T) {
	m := Single(5, 2, 2)
	if got := m.Announced(2, 10, false); got != 20 {
		t.Fatalf("cheater announcement = %v, want 20", got)
	}
	if got := m.Announced(1, 10, false); got != 10 {
		t.Fatalf("honest neighbor announcement = %v, want 10", got)
	}
	cs := m.Cheaters()
	if len(cs) != 1 || cs[0] != 2 {
		t.Fatalf("Cheaters = %v, want [2]", cs)
	}
}

func TestBottleneckInflationLowersBandwidth(t *testing.T) {
	m := Single(5, 0, 2)
	if got := m.Announced(0, 100, true); got != 50 {
		t.Fatalf("bandwidth cheat = %v, want 50 (halved)", got)
	}
}

func TestPopulationCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := Population(50, 16, 2, rng)
	if got := len(m.Cheaters()); got != 16 {
		t.Fatalf("population = %d, want 16", got)
	}
	over := Population(5, 100, 2, rng)
	if got := len(over.Cheaters()); got != 5 {
		t.Fatalf("over-population = %d, want clamped to 5", got)
	}
}

func TestAudit(t *testing.T) {
	if Audit(10, 10, 0.5) {
		t.Fatal("exact match flagged")
	}
	if !Audit(25, 10, 0.5) {
		t.Fatal("2.5x inflation not flagged at 50% tolerance")
	}
	if Audit(25, 0, 0.5) {
		t.Fatal("zero independent estimate should not flag")
	}
}

func TestAuditSweepFindsInflators(t *testing.T) {
	const n = 20
	m := Single(n, 7, 3)
	truth := func(i, j int) float64 { return 10 }
	announce := func(i, j int) float64 { return m.Announced(i, truth(i, j), false) }
	rng := rand.New(rand.NewSource(2))
	detected := AuditSweep(n, n, 8, 0.5, rng, announce, truth)
	found := false
	for _, d := range detected {
		if d == 7 {
			found = true
		} else {
			t.Fatalf("honest node %d flagged", d)
		}
	}
	if !found {
		t.Fatal("cheater 7 escaped a full audit sweep")
	}
}

func TestAuditSweepHonestPopulationClean(t *testing.T) {
	const n = 15
	truth := func(i, j int) float64 { return 5 }
	rng := rand.New(rand.NewSource(3))
	if detected := AuditSweep(n, n, 6, 0.5, rng, truth, truth); len(detected) != 0 {
		t.Fatalf("false positives: %v", detected)
	}
}
