//go:build race

package plane

// raceEnabled reports whether this test binary was built with the race
// detector. The zero-alloc gates skip under it: the detector's
// instrumentation allocates on paths that are allocation-free in a
// normal build, so AllocsPerRun would gate the instrumentation, not the
// code.
const raceEnabled = true
