package plane

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"testing"

	"egoist/internal/obs"
)

// TestServerMetricsExposition drives queries through an instrumented
// server and checks the registered series move: query counters track
// the shard atomics, latency histograms observe, cache counters
// classify, and the snapshot gauges report the serving epoch.
func TestServerMetricsExposition(t *testing.T) {
	const n, k = 80, 4
	net := testNet(t, n)
	srv := NewServerShards(2)
	reg := obs.NewRegistry()
	srv.EnableMetrics(reg)
	srv.Publish(Compile(7, randomWiring(n, k, rand.New(rand.NewSource(5))), nil, net, Options{}))

	for i := 0; i < 10; i++ {
		if _, _, err := srv.Shard(0).OneHop(i, n-1); err != nil {
			t.Fatal(err)
		}
		if _, _, err := srv.Shard(1).RouteCost(i%3, n-1); err != nil {
			t.Fatal(err)
		}
	}
	req := AppendBatchRequest(nil, BinModeOneHop, []uint32{1, 2, 3, 4})
	if _, err := srv.Shard(0).AnswerBinary(req, nil); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	m := obs.ParsePrometheus(buf.Bytes())
	for series, want := range map[string]float64{
		`plane_queries_onehop_total{shard="0"}`: 12, // 10 direct + 2 binary pairs
		`plane_queries_onehop_total{shard="1"}`: 0,
		`plane_queries_route_total{shard="1"}`:  10,
		`plane_onehop_latency_ns_count`:         10, // binary pairs land in the batch histogram
		`plane_route_latency_ns_count`:          10,
		`plane_batch_latency_ns_count`:          1,
		`plane_publish_latency_ns_count`:        1,
		`plane_snapshot_epoch`:                  7,
		`plane_snapshot_live`:                   float64(n),
	} {
		if got, ok := m[series]; !ok || got != want {
			t.Errorf("series %s = %v (present=%v), want %v", series, got, ok, want)
		}
	}
	// 10 RouteCost calls over 3 sources: 3 misses then hits.
	if m["plane_cache_misses_total"] != 3 {
		t.Errorf("cache misses = %v, want 3", m["plane_cache_misses_total"])
	}
	if m["plane_cache_hits_total"] != 7 {
		t.Errorf("cache hits = %v, want 7", m["plane_cache_hits_total"])
	}
	if age, ok := m["plane_snapshot_age_seconds"]; !ok || age < 0 {
		t.Errorf("snapshot age = %v (present=%v), want >= 0", age, ok)
	}
	st := srv.CacheStats()
	if st.Misses != 3 || st.Hits != 7 {
		t.Errorf("CacheStats() = %+v, want 3 misses / 7 hits", st)
	}
}

// TestSnapshotEndpointPerShard pins the GET /snapshot additions: the
// per-shard counter breakdown, the row-cache counters, and the
// snapshot age ride alongside the summed totals.
func TestSnapshotEndpointPerShard(t *testing.T) {
	const n, k = 60, 4
	net := testNet(t, n)
	srv := NewServerShards(2)
	srv.Publish(Compile(3, randomWiring(n, k, rand.New(rand.NewSource(9))), nil, net, Options{}))
	for i := 0; i < 5; i++ {
		if _, _, err := srv.Shard(0).OneHop(i, n-1); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := srv.Shard(1).RouteCost(0, n-1); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info struct {
		QueriesOneHop int64 `json:"queries_onehop"`
		PerShard      []struct {
			Shard  int   `json:"shard"`
			OneHop int64 `json:"onehop"`
			Routes int64 `json:"routes"`
		} `json:"per_shard"`
		Cache      CacheStats `json:"cache"`
		AgeSeconds *float64   `json:"age_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.QueriesOneHop != 5 {
		t.Fatalf("summed onehop = %d, want 5", info.QueriesOneHop)
	}
	if len(info.PerShard) != 2 {
		t.Fatalf("per_shard has %d rows, want 2", len(info.PerShard))
	}
	if info.PerShard[0].OneHop != 5 || info.PerShard[1].OneHop != 0 {
		t.Fatalf("per-shard onehop = %d/%d, want 5/0", info.PerShard[0].OneHop, info.PerShard[1].OneHop)
	}
	if info.PerShard[1].Routes != 1 {
		t.Fatalf("shard 1 routes = %d, want 1", info.PerShard[1].Routes)
	}
	if info.Cache.Misses != 1 {
		t.Fatalf("cache misses = %d, want 1", info.Cache.Misses)
	}
	if info.AgeSeconds == nil || *info.AgeSeconds < 0 {
		t.Fatalf("age_seconds = %v, want present and >= 0", info.AgeSeconds)
	}
}
