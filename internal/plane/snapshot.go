// Package plane is the overlay routing data plane: it turns a converged
// (or still-converging) wiring from the control plane — the full
// simulator, the large-scale sampled engine, or a live link-state view —
// into an immutable route-serving Snapshot, and serves route queries
// from it lock-free while the control plane keeps re-wiring underneath.
//
// The paper's thesis (Sect. 5–6) is that selfishly-constructed overlays
// are excellent routing substrates; this package is where that substrate
// actually answers queries. Two lookup paths are served:
//
//   - OneHop: the paper's O(k) source-routing decision — route direct,
//     or via whichever of src's k overlay neighbors minimizes the
//     first-hop delay plus the neighbor's direct delay to the
//     destination. No per-destination state, constant work per query.
//   - Route: the full overlay shortest path, from per-source Dijkstra
//     rows computed lazily on first use and kept behind an LRU with
//     singleflight, so a popular source costs one Dijkstra no matter
//     how many concurrent clients ask.
//
// Snapshots are immutable after Compile: readers never lock, and the
// control plane publishes a fresh Snapshot per epoch through
// Server.Publish (an atomic pointer swap, RCU-style — in-flight queries
// finish on the snapshot they started with and old snapshots drain to
// the garbage collector). Queries issued during a re-wiring sub-round
// therefore see the last published epoch, never a half-written wiring.
package plane

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"egoist/internal/graph"
)

// DelayNet is the underlay view a snapshot prices routes against:
// static pairwise one-way delays, computable on demand. It is the shape
// of underlay.Lite and of sim.ScaleNet.
type DelayNet interface {
	N() int
	Delay(i, j int) float64
}

// DelayFunc adapts a plain function (a delay matrix row lookup, a
// link-state estimate table) to a DelayNet.
type DelayFunc struct {
	Nodes int
	Fn    func(i, j int) float64
}

// N returns the node count.
func (d DelayFunc) N() int { return d.Nodes }

// Delay returns Fn(i, j).
func (d DelayFunc) Delay(i, j int) float64 { return d.Fn(i, j) }

// Options tunes snapshot compilation.
type Options struct {
	// RouteCacheRows bounds the shortest-path row cache (default 256
	// rows; one row is 12·n bytes). Lookups never fail when the cache
	// is cold or thrashing — they just recompute.
	RouteCacheRows int
}

// Snapshot is one epoch's immutable route-serving view: the overlay
// adjacency packed in CSR form, the underlay delay oracle, and the lazy
// shortest-path row cache. All methods are safe for unlimited
// concurrent use; nothing in a Snapshot mutates after Compile except
// the internal row cache, which synchronizes itself.
type Snapshot struct {
	epoch int64
	csr   *graph.CSR
	net   DelayNet
	live  []bool
	nLive int
	rows  *rowCache
}

// Compile builds a Snapshot from a wiring (wiring[u] lists u's overlay
// neighbors; nil rows are departed nodes). active, when non-nil, marks
// overlay membership — arcs from or to non-members are dropped, exactly
// like the control plane's announced view; when nil, every node with a
// non-nil wiring row is a member. net supplies the arc delays and the
// direct-path costs of one-hop decisions. The wiring is only read
// during the call, so the control plane may hand over its own live
// wiring and keep mutating it afterwards.
func Compile(epoch int64, wiring [][]int, active []bool, net DelayNet, opts Options) *Snapshot {
	n := net.N()
	s := &Snapshot{epoch: epoch, net: net, live: make([]bool, n)}
	for u := 0; u < n; u++ {
		if active != nil {
			s.live[u] = active[u]
		} else {
			s.live[u] = u < len(wiring) && wiring[u] != nil
		}
		if s.live[u] {
			s.nLive++
		}
	}
	var arcs []graph.Arc
	s.csr = graph.NewCSR(n, func(u int) []graph.Arc {
		arcs = arcs[:0]
		if !s.live[u] || u >= len(wiring) {
			return nil
		}
		for _, v := range wiring[u] {
			if s.live[v] {
				arcs = append(arcs, graph.Arc{To: v, W: net.Delay(u, v)})
			}
		}
		return arcs
	})
	s.rows = newRowCache(s, opts.RouteCacheRows)
	return s
}

// CompileGraph builds a Snapshot from an already-weighted overlay graph
// (a live node's link-state view): arc weights are taken from the graph
// itself and every node incident to an arc is live. net supplies the
// direct-path costs of one-hop decisions; pass GraphDelays(g) when the
// announced arcs are the only delay knowledge available.
func CompileGraph(epoch int64, g *graph.Digraph, net DelayNet, opts Options) *Snapshot {
	n := g.N()
	s := &Snapshot{epoch: epoch, net: net, live: make([]bool, n)}
	for u := 0; u < n; u++ {
		if g.OutDegree(u) > 0 {
			s.live[u] = true
			for _, a := range g.Out(u) {
				s.live[a.To] = true
			}
		}
	}
	for _, l := range s.live {
		if l {
			s.nLive++
		}
	}
	s.csr = graph.NewCSR(n, func(u int) []graph.Arc { return g.Out(u) })
	s.rows = newRowCache(s, opts.RouteCacheRows)
	return s
}

// GraphDelays is the DelayNet of a link-state view: the direct delay
// i→j is the announced arc weight, or +Inf when no arc is announced —
// a live node only knows the delays its overlay has measured.
func GraphDelays(g *graph.Digraph) DelayNet {
	return DelayFunc{Nodes: g.N(), Fn: func(i, j int) float64 {
		if i == j {
			return 0
		}
		if w, ok := g.Weight(i, j); ok {
			return w
		}
		return graph.Inf
	}}
}

// Epoch returns the control-plane epoch this snapshot was compiled at
// (-1 is the bootstrap wiring, before the first epoch played).
func (s *Snapshot) Epoch() int64 { return s.epoch }

// N returns the node-id space size.
func (s *Snapshot) N() int { return s.csr.N() }

// NumArcs returns the overlay link count.
func (s *Snapshot) NumArcs() int { return s.csr.NumArcs() }

// Live reports whether node u was an overlay member at compile time.
func (s *Snapshot) Live(u int) bool { return s.live[u] }

// NumLive returns the member count at compile time.
func (s *Snapshot) NumLive() int { return s.nLive }

// Neighbors returns u's overlay neighbors as a fresh slice.
func (s *Snapshot) Neighbors(u int) []int {
	to, _ := s.csr.Out(u)
	out := make([]int, len(to))
	for i, v := range to {
		out[i] = int(v)
	}
	return out
}

// Decision is one one-hop routing decision.
type Decision struct {
	// Via is the chosen first-hop overlay neighbor, or -1 for the
	// direct underlay path.
	Via int
	// Cost is the decision's delay: direct, or first-hop plus the
	// neighbor's direct delay to the destination. +Inf when no finite
	// option exists (an isolated source under a link-state DelayNet).
	Cost float64
}

// OneHop makes the paper's O(k) source-routing decision for src→dst:
// the direct underlay path, or one hop via whichever of src's overlay
// neighbors is cheapest. Ties go to the direct path, then to the
// earliest arc in the snapshot's adjacency order (the compiled wiring
// order) — deterministic for the equivalence suites.
// Out-of-range ids panic with a clear message (Server validates and
// returns errors instead).
func (s *Snapshot) OneHop(src, dst int) Decision {
	s.mustPair(src, dst)
	if src == dst {
		return Decision{Via: -1, Cost: 0}
	}
	best := Decision{Via: -1, Cost: s.net.Delay(src, dst)}
	to, w := s.csr.Out(src)
	for x, v := range to {
		if int(v) == dst {
			// The overlay link itself is the direct measurement.
			if w[x] < best.Cost {
				best = Decision{Via: -1, Cost: w[x]}
			}
			continue
		}
		if c := w[x] + s.net.Delay(int(v), dst); c < best.Cost {
			best = Decision{Via: int(v), Cost: c}
		}
	}
	return best
}

// Route is one full overlay shortest-path answer.
type Route struct {
	// Path lists the overlay nodes from src to dst inclusive.
	Path []int
	// Cost is the summed overlay link delay along Path.
	Cost float64
}

// Route returns the overlay shortest path src→dst, or ok=false when dst
// is not reachable over overlay links. The underlying per-source row is
// computed on first use and cached; the returned path is freshly
// allocated and owned by the caller.
func (s *Snapshot) Route(src, dst int) (Route, bool) {
	s.mustPair(src, dst)
	if src == dst {
		return Route{Path: []int{src}, Cost: 0}, true
	}
	row := s.rows.get(src)
	if row.dist[dst] >= graph.Inf {
		return Route{}, false
	}
	return Route{Path: graph.PathTo32(row.parent, src, dst), Cost: row.dist[dst]}, true
}

// RouteCost returns just the overlay shortest-path cost src→dst (+Inf
// when unreachable), skipping the path reconstruction.
func (s *Snapshot) RouteCost(src, dst int) float64 {
	s.mustPair(src, dst)
	if src == dst {
		return 0
	}
	return s.rows.get(src).dist[dst]
}

// RouteInto is Route with caller-owned path storage: the path is
// appended to buf (pass the previous call's path[:0] to reuse its
// backing array), so a serving loop that recycles its buffer runs the
// cache-warm route path without allocating. ok=false means dst is not
// overlay-reachable (cost +Inf, empty path) — note Route returns a
// zero cost there; RouteInto reports the row's actual +Inf.
func (s *Snapshot) RouteInto(src, dst int, buf []int32) (path []int32, cost float64, ok bool) {
	s.mustPair(src, dst)
	path = buf[:0]
	if src == dst {
		return append(path, int32(src)), 0, true
	}
	row := s.rows.get(src)
	if row.dist[dst] >= graph.Inf {
		return path, graph.Inf, false
	}
	// Walk dst→src over the parent pointers, then reverse in place —
	// the same route PathTo32 builds, without its allocation.
	for v := int32(dst); ; v = row.parent[v] {
		path = append(path, v)
		if int(v) == src {
			break
		}
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, row.dist[dst], true
}

// warmRows pre-computes (or re-uses) the shortest-path rows of srcs in
// parallel — the publish-time hot-row precompute. Row contents are
// identical to lazy computation (DijkstraCSR is deterministic), so
// warming never changes an answer, only when its cost is paid.
func (s *Snapshot) warmRows(srcs []int) {
	if len(srcs) == 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(srcs) {
		workers = len(srcs)
	}
	if workers <= 1 {
		for _, src := range srcs {
			s.rows.get(src)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(srcs) {
					return
				}
				s.rows.get(srcs[i])
			}
		}()
	}
	wg.Wait()
}

// shardView returns a serving view of s for one server shard: the same
// immutable topology (CSR, liveness, delay oracle — shared pointers)
// behind a private row cache, seeded with every row s has computed so
// far, shared by reference in s's LRU order. Views of different shards
// therefore answer identically and start equally warm, but their cache
// mutexes and LRU state never contend.
func (s *Snapshot) shardView() *Snapshot {
	view := &Snapshot{epoch: s.epoch, csr: s.csr, net: s.net, live: s.live, nLive: s.nLive}
	view.rows = newRowCache(view, s.rows.cap)
	s.rows.carryInto(view.rows, func(int, []float64, []int32) bool { return true })
	return view
}

// checkPair validates a query's node ids.
func (s *Snapshot) checkPair(src, dst int) error {
	if n := s.csr.N(); src < 0 || src >= n || dst < 0 || dst >= n {
		return fmt.Errorf("plane: query (%d,%d) outside [0,%d)", src, dst, n)
	}
	return nil
}

// mustPair is checkPair for the direct Snapshot API: a clean panic at
// the boundary, BEFORE any cache state is touched — an out-of-range
// src must never leave a half-inserted row entry other readers would
// block on.
func (s *Snapshot) mustPair(src, dst int) {
	if err := s.checkPair(src, dst); err != nil {
		panic(err)
	}
}
