package plane

import (
	"sync"
	"sync/atomic"

	"egoist/internal/graph"
)

// rowCache is the snapshot's lazy per-source shortest-path row store:
// an LRU bounded at cap rows with singleflight per source, so N
// concurrent queries from one source cost one Dijkstra and a source
// evicted under memory pressure simply recomputes on next use. Rows
// are immutable once their ready channel closes; eviction only drops
// the cache's reference, so readers holding a row keep a consistent
// view for as long as they need it.
type rowCache struct {
	snap *Snapshot
	cap  int

	mu      sync.Mutex
	entries map[int]*rowEntry
	head    *rowEntry // most recently used
	tail    *rowEntry // least recently used
	ready   int       // computed entries (only these are evictable)
	stats   *cacheStats

	scratch sync.Pool // *graph.SPScratch
}

// cacheStats are demand-path row-cache counters, owned by whoever
// serves the cache (the Server threads one instance through every
// snapshot and shard view it publishes, so the series survives
// publishes). A hit found a computed row; a collapse joined a row
// another goroutine was still computing (the singleflight path — the
// miss-storm signal); a miss paid the Dijkstra. Publish-time row
// warming and carry-over seeding are deliberate precompute, not demand
// traffic, and are not counted.
type cacheStats struct {
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	collapses atomic.Int64
}

// CacheStats is one consistent-enough read of the row-cache counters.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Collapses int64 `json:"collapses"`
}

func (st *cacheStats) read() CacheStats {
	return CacheStats{
		Hits:      st.hits.Load(),
		Misses:    st.misses.Load(),
		Evictions: st.evictions.Load(),
		Collapses: st.collapses.Load(),
	}
}

// setStats attaches the owner's counters (nil detaches). Rows computed
// while no stats are attached are simply not counted.
func (c *rowCache) setStats(st *cacheStats) {
	c.mu.Lock()
	c.stats = st
	c.mu.Unlock()
}

// rowEntry is one source's distance/parent row plus its LRU links.
type rowEntry struct {
	src        int
	prev, next *rowEntry
	done       chan struct{} // closed once dist/parent are final
	dist       []float64
	parent     []int32
}

func newRowCache(s *Snapshot, capRows int) *rowCache {
	if capRows <= 0 {
		capRows = 256
	}
	return &rowCache{
		snap:    s,
		cap:     capRows,
		entries: make(map[int]*rowEntry),
	}
}

// get returns src's row, computing it (or waiting for the computation
// another goroutine already started) as needed.
func (c *rowCache) get(src int) *rowEntry {
	c.mu.Lock()
	if e, ok := c.entries[src]; ok {
		c.moveFront(e)
		st := c.stats
		c.mu.Unlock()
		if st != nil {
			// Classify before blocking: a still-open ready channel means
			// this query joined an in-flight compute — the singleflight
			// collapse the miss-storm diagnostics watch.
			select {
			case <-e.done:
				st.hits.Add(1)
			default:
				st.collapses.Add(1)
			}
		}
		<-e.done
		return e
	}
	e := &rowEntry{src: src, done: make(chan struct{})}
	c.entries[src] = e
	c.pushFront(e)
	c.evictLocked()
	if c.stats != nil {
		c.stats.misses.Add(1)
	}
	c.mu.Unlock()

	sp, _ := c.scratch.Get().(*graph.SPScratch)
	if sp == nil {
		sp = &graph.SPScratch{}
	}
	n := c.snap.csr.N()
	e.dist = make([]float64, n)
	e.parent = make([]int32, n)
	sp.DijkstraCSR(c.snap.csr, src, e.dist, e.parent)
	c.scratch.Put(sp)

	c.mu.Lock()
	c.ready++
	c.mu.Unlock()
	close(e.done)
	return e
}

// evictLocked drops least-recently-used *computed* rows until the
// computed population fits the cap. In-flight rows are never evicted —
// their waiters hold the entry — so the cache can transiently exceed
// cap by the number of concurrent distinct-source misses.
func (c *rowCache) evictLocked() {
	for e := c.tail; e != nil && c.ready > 0 && len(c.entries) > c.cap; {
		prev := e.prev
		select {
		case <-e.done:
			c.unlink(e)
			delete(c.entries, e.src)
			c.ready--
			if c.stats != nil {
				c.stats.evictions.Add(1)
			}
		default:
		}
		e = prev
	}
}

func (c *rowCache) pushFront(e *rowEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *rowCache) unlink(e *rowEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *rowCache) moveFront(e *rowEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// carriedDone is the shared already-closed ready channel of carried
// rows: a seeded entry is final from the moment it is inserted.
var carriedDone = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// carryInto seeds dst with every computed row of c that keep approves —
// the delta publisher's carry-over path. Rows are shared, not copied
// (they are immutable once their ready channel closes), and LRU order
// is preserved: the iteration walks least-recent first so the
// most-recent row ends up at dst's head. In-flight rows are skipped;
// whoever wants them from the new snapshot recomputes on demand.
func (c *rowCache) carryInto(dst *rowCache, keep func(src int, dist []float64, parent []int32) bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for e := c.tail; e != nil; e = e.prev {
		select {
		case <-e.done:
		default:
			continue
		}
		if keep(e.src, e.dist, e.parent) {
			dst.seed(e.src, e.dist, e.parent)
		}
	}
}

// seed inserts an already-final row with shared storage.
func (c *rowCache) seed(src int, dist []float64, parent []int32) {
	c.mu.Lock()
	e := &rowEntry{src: src, done: carriedDone, dist: dist, parent: parent}
	c.entries[src] = e
	c.pushFront(e)
	c.ready++
	c.evictLocked()
	c.mu.Unlock()
}

// size reports the current entry count (tests).
func (c *rowCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
