package plane

import (
	"hash/fnv"
	"math"
	"math/rand"
	"testing"

	"egoist/internal/churn"
	"egoist/internal/graph"
	"egoist/internal/sampling"
	"egoist/internal/sim"
	"egoist/internal/underlay"
)

// This file pins the data plane onto the engines' determinism
// contract: snapshots published by a churn-heavy RunScale — and every
// one-hop and shortest-path decision served from them — must be
// byte-identical at any worker count, and must agree bit-for-bit with
// a direct internal/graph computation over the published wiring.

// epochDigest is one published epoch's fingerprint: an FNV hash over
// the CSR arrays plus a fixed panel of one-hop and route decisions.
type epochDigest struct {
	epoch int
	hash  uint64
}

// digestSnapshot fingerprints the topology and a deterministic query
// panel served from it.
func digestSnapshot(epoch int, snap *Snapshot) epochDigest {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	n := snap.N()
	w64(uint64(n))
	w64(uint64(snap.NumLive()))
	w64(uint64(snap.NumArcs()))
	for u := 0; u < n; u++ {
		if !snap.Live(u) {
			continue
		}
		r, _ := snap.Route(u, (u*7+1)%n)
		w64(math.Float64bits(r.Cost))
	}
	rng := rand.New(rand.NewSource(int64(epoch) + 42))
	for q := 0; q < 200; q++ {
		src, dst := rng.Intn(n), rng.Intn(n)
		d := snap.OneHop(src, dst)
		w64(uint64(int64(d.Via)))
		w64(math.Float64bits(d.Cost))
		w64(math.Float64bits(snap.RouteCost(src, dst)))
	}
	return epochDigest{epoch: epoch, hash: h.Sum64()}
}

// churnScaleConfig is a small but churn-heavy scale run: a leave wave
// mid-epoch 1 and a join/rejoin wave in epoch 3.
func churnScaleConfig(workers int, hook func(epoch int, wiring [][]int, active []bool)) sim.ScaleConfig {
	const n = 150
	sched := &churn.Schedule{N: n, InitialOn: make([]bool, n)}
	for i := range sched.InitialOn {
		sched.InitialOn[i] = true
	}
	for v := 0; v < n; v += 8 {
		sched.Events = append(sched.Events, churn.Event{Time: 1 + float64(v)/float64(n), Node: v, On: false})
	}
	for v := 0; v < n; v += 16 {
		sched.Events = append(sched.Events, churn.Event{Time: 3 + float64(v)/float64(n), Node: v, On: true})
	}
	return sim.ScaleConfig{
		N: n, K: 3, Seed: 23, MaxEpochs: 5,
		Sample:  sampling.Spec{Strategy: sampling.Uniform, M: 20},
		Churn:   sched,
		Workers: workers,
		OnEpoch: hook,
	}
}

// TestSnapshotsIdenticalAcrossWorkers runs the churn-heavy scale config
// at workers 1 and 4, publishing a snapshot per epoch through a Server,
// and requires identical epoch digests — the serving layer inherits the
// control plane's any-worker-count byte-identity.
func TestSnapshotsIdenticalAcrossWorkers(t *testing.T) {
	run := func(workers int) []epochDigest {
		net, err := underlay.NewLite(150, 23+1)
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer()
		var digests []epochDigest
		cfg := churnScaleConfig(workers, func(epoch int, wiring [][]int, active []bool) {
			srv.Publish(Compile(int64(epoch), wiring, active, net, Options{}))
			digests = append(digests, digestSnapshot(epoch, srv.Current()))
		})
		if _, err := sim.RunScale(cfg); err != nil {
			t.Fatal(err)
		}
		return digests
	}
	a := run(1)
	b := run(4)
	if len(a) != len(b) {
		t.Fatalf("published %d vs %d epochs", len(a), len(b))
	}
	if len(a) < 2 || a[0].epoch != -1 {
		t.Fatalf("expected a bootstrap publish then epochs, got %+v", a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("epoch %d digests diverged: %x vs %x", a[i].epoch, a[i].hash, b[i].hash)
		}
	}
}

// TestSnapshotMatchesEngineWiring cross-checks a published snapshot
// against a direct internal/graph computation over the same wiring:
// identical one-hop decisions (reference loop) and bit-identical
// shortest-path costs (graph.Dijkstra), including under churned-away
// members.
func TestSnapshotMatchesEngineWiring(t *testing.T) {
	net, err := underlay.NewLite(150, 23+1)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	cfg := churnScaleConfig(2, nil)
	cfg.OnEpoch = func(epoch int, wiring [][]int, active []bool) {
		snap := Compile(int64(epoch), wiring, active, net, Options{})
		g := graph.New(net.N())
		for u, ws := range wiring {
			if !active[u] {
				continue
			}
			for _, v := range ws {
				if active[v] {
					g.AddArc(u, v, net.Delay(u, v))
				}
			}
		}
		rng := rand.New(rand.NewSource(int64(epoch)))
		for q := 0; q < 40; q++ {
			src := rng.Intn(net.N())
			dist, _ := graph.Dijkstra(g, src)
			for dst := 0; dst < net.N(); dst += 13 {
				want := dist[dst]
				if !active[src] && src != dst {
					want = graph.Inf
				}
				if got := snap.RouteCost(src, dst); math.Float64bits(got) != math.Float64bits(want) {
					t.Errorf("epoch %d route %d->%d: %v vs graph %v", epoch, src, dst, got, want)
					return
				}
				checked++
			}
		}
	}
	if _, err := sim.RunScale(cfg); err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("no cross-checks ran")
	}
}

// digestServed fingerprints decisions as served — through Shard
// handles, exercising the per-shard caches, counters, and the
// publish-time hot-row precompute — rather than through the snapshot
// API. Queries spread across handles (Shard wraps mod the shard
// count), so any cross-shard divergence lands in the hash.
func digestServed(t *testing.T, epoch int, srv *Server) epochDigest {
	t.Helper()
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	n := srv.Current().N()
	w64(uint64(n))
	rng := rand.New(rand.NewSource(int64(epoch) + 7))
	var path []int32
	for q := 0; q < 200; q++ {
		sh := srv.Shard(q)
		src, dst := rng.Intn(n), rng.Intn(n)
		d, epoch1, err := sh.OneHop(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		w64(uint64(int64(d.Via)))
		w64(math.Float64bits(d.Cost))
		var cost float64
		var ok bool
		path, cost, ok, err = sh.AppendRoute(src, dst, path[:0])
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			w64(math.Float64bits(cost))
			for _, v := range path {
				w64(uint64(v))
			}
		} else {
			w64(^uint64(0))
		}
		rc, epoch2, err := sh.RouteCost(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		w64(math.Float64bits(rc))
		if epoch1 != epoch2 {
			t.Fatalf("epochs diverged within one digest: %d vs %d", epoch1, epoch2)
		}
	}
	return epochDigest{epoch: epoch, hash: h.Sum64()}
}

// TestServedIdenticalAcrossShardsAndWorkers is the ISSUE 9 acceptance
// gate: decisions served by the sharded server are byte-identical to
// the single-shard server's, across engine workers {1,4} × server
// shards {1,4}, with the hot-row precompute active (the route queries
// the digest issues feed the counters that seed the next epoch's
// warming — which must never change an answer, only its cost).
func TestServedIdenticalAcrossShardsAndWorkers(t *testing.T) {
	combos := [][2]int{{1, 1}, {1, 4}, {4, 1}, {4, 4}}
	if raceEnabled {
		combos = [][2]int{{1, 1}, {4, 4}} // trim the race run; the full grid runs in the normal pass
	}
	run := func(workers, shards int) []epochDigest {
		net, err := underlay.NewLite(150, 23+1)
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServerShards(shards)
		var digests []epochDigest
		cfg := churnScaleConfig(workers, func(epoch int, wiring [][]int, active []bool) {
			srv.Publish(Compile(int64(epoch), wiring, active, net, Options{}))
			digests = append(digests, digestServed(t, epoch, srv))
		})
		if _, err := sim.RunScale(cfg); err != nil {
			t.Fatal(err)
		}
		return digests
	}
	ref := run(combos[0][0], combos[0][1])
	if len(ref) < 2 {
		t.Fatalf("published only %d epochs", len(ref))
	}
	for _, c := range combos[1:] {
		got := run(c[0], c[1])
		if len(got) != len(ref) {
			t.Fatalf("workers=%d shards=%d: published %d vs %d epochs", c[0], c[1], len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d shards=%d epoch %d: served digest %x, reference %x", c[0], c[1], got[i].epoch, got[i].hash, ref[i].hash)
			}
		}
	}
}
