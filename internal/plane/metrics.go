package plane

import (
	"time"

	"egoist/internal/obs"
)

// serverMetrics are the serving layer's obs instruments. The pointer
// lives on every shard and is nil until EnableMetrics: the hot paths
// pay one predictable branch when metrics are off, and stay
// allocation-free either way (gated by TestServeHotPathsZeroAlloc,
// which runs with metrics enabled).
type serverMetrics struct {
	onehopNs  *obs.Histogram // per one-hop decision, per-shard cells
	routeNs   *obs.Histogram // per shortest-path answer, per-shard cells
	batchNs   *obs.Histogram // per binary batch answered, per-shard cells
	publishNs *obs.Histogram // per Publish (hot-row warming included)
}

// EnableMetrics registers the serving layer's instrument set on reg
// and attaches the latency histograms to the hot paths. The query and
// row-cache counters are exposed as scrape-time callbacks over the
// padded per-shard atomics the server already maintains — enabling
// metrics never adds a second counter write to a query. Call once,
// before serving; a second call panics on duplicate registration.
//
// Registered series:
//
//	plane_queries_onehop_total{shard=...}  delivered one-hop answers
//	plane_queries_route_total{shard=...}   delivered route answers
//	plane_queries_failed_total{shard=...}  rejected queries
//	plane_cache_{hits,misses,evictions,collapses}_total  row cache
//	plane_snapshot_epoch / _age_seconds / _live  serving snapshot
//	plane_{onehop,route,batch,publish}_latency_ns  summaries
func (s *Server) EnableMetrics(reg *obs.Registry) {
	p := len(s.shards)
	m := &serverMetrics{
		onehopNs:  reg.HistogramVec("plane_onehop_latency_ns", "one-hop decision latency", p),
		routeNs:   reg.HistogramVec("plane_route_latency_ns", "shortest-path answer latency (cache-warm or not)", p),
		batchNs:   reg.HistogramVec("plane_batch_latency_ns", "binary batch answer latency (whole batch)", p),
		publishNs: reg.Histogram("plane_publish_latency_ns", "snapshot publish latency, hot-row warming included"),
	}
	reg.CounterVecFunc("plane_queries_onehop_total", "delivered one-hop answers", p,
		func(i int) int64 { return s.shards[i].onehop.Load() })
	reg.CounterVecFunc("plane_queries_route_total", "delivered route answers", p,
		func(i int) int64 { return s.shards[i].routes.Load() })
	reg.CounterVecFunc("plane_queries_failed_total", "queries rejected before an answer", p,
		func(i int) int64 { return s.shards[i].failed.Load() })
	reg.CounterFunc("plane_cache_hits_total", "row-cache lookups answered from a computed row",
		func() int64 { return s.cstats.hits.Load() })
	reg.CounterFunc("plane_cache_misses_total", "row-cache lookups that paid a Dijkstra",
		func() int64 { return s.cstats.misses.Load() })
	reg.CounterFunc("plane_cache_evictions_total", "row-cache rows dropped under the cap",
		func() int64 { return s.cstats.evictions.Load() })
	reg.CounterFunc("plane_cache_collapses_total", "row-cache lookups that joined an in-flight compute (singleflight)",
		func() int64 { return s.cstats.collapses.Load() })
	reg.GaugeFunc("plane_snapshot_epoch", "serving snapshot epoch (-1 before the first publish)", func() float64 {
		if snap := s.base.Load(); snap != nil {
			return float64(snap.epoch)
		}
		return -1
	})
	reg.GaugeFunc("plane_snapshot_age_seconds", "seconds since the serving snapshot was published (-1 before the first publish)", func() float64 {
		return s.SnapshotAge().Seconds()
	})
	reg.GaugeFunc("plane_snapshot_live", "live overlay members in the serving snapshot", func() float64 {
		if snap := s.base.Load(); snap != nil {
			return float64(snap.nLive)
		}
		return 0
	})
	for _, sh := range s.shards {
		sh.m = m
	}
}

// CacheStats reads the server-lifetime row-cache counters (they
// survive publishes; every published snapshot and shard view feeds the
// same set).
func (s *Server) CacheStats() CacheStats { return s.cstats.read() }

// SnapshotAge reports the time since the last Publish, or -1s before
// the first one.
func (s *Server) SnapshotAge() time.Duration {
	t := s.pubTime.Load()
	if t == 0 {
		return -time.Second
	}
	return time.Duration(time.Now().UnixNano() - t)
}
