package plane

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"

	"egoist/internal/graph"
)

// Digest hashes the snapshot's routing surface: the liveness mask and
// the compiled CSR (per-row arc lists with their weight bits). The
// epoch tag and the row-cache state are deliberately excluded — two
// snapshots with equal digests answer every OneHop, Route and
// RouteCost query identically (up to equal-cost path ties). This is
// the delta-publication correctness currency: a chain of Patch calls
// must stay digest-identical to a from-scratch Compile of the same
// wiring.
func (s *Snapshot) Digest() [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	put := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	n := s.csr.N()
	put(uint64(n))
	put(uint64(s.nLive))
	for u := 0; u < n; u++ {
		if s.live[u] {
			put(uint64(u))
		}
	}
	for u := 0; u < n; u++ {
		to, w := s.csr.Out(u)
		put(uint64(len(to)))
		for i := range to {
			put(uint64(uint32(to[i])))
			put(math.Float64bits(w[i]))
		}
	}
	var out [sha256.Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Patch derives the next snapshot from s without a full recompile: only
// the changed rows are re-priced through the delay oracle (every other
// CSR row is copied byte-for-byte), and the cached shortest-path rows
// survive unless a changed arc actually crossed them — the same
// subtree-crossing test the SPForest repair machinery uses, so a
// carried row's distances are bit-identical to what a fresh Dijkstra
// over the patched graph would compute. Equal-cost ties are the one
// thing not carried exactly: a fresh computation may pick a different
// equal-cost predecessor, so Route paths are cost-identical, not
// arc-identical.
//
// changed must list, ascending, every node whose wiring row or
// membership differs from what s was compiled against. Under the
// engines' maintained invariant — wiring rows never reference departed
// nodes, because a leave rewrites (and thereby marks) every in-neighbor
// immediately — that set is exactly what a Publication carries; a
// caller without that invariant must additionally include every node
// whose row references a node whose membership flipped, since the
// compiled row drops arcs to non-members. Listing an unchanged node is
// harmless (its row re-prices to the same arcs and crosses nothing).
//
// wiring, active and the epoch have Compile's exact semantics; the
// patched snapshot is digest-identical to Compile(epoch, wiring,
// active, s's net, s's options) — pinned by the delta equivalence
// suites. s is not modified and stays fully servable: Patch is what the
// publisher calls while readers still hold the old snapshot.
func (s *Snapshot) Patch(epoch int64, changed []int, wiring [][]int, active []bool) *Snapshot {
	n := s.csr.N()
	if len(changed) == 0 {
		// Nothing moved: share everything, including the row cache (its
		// lazily computed rows answer from the same CSR either way).
		clone := *s
		clone.epoch = epoch
		return &clone
	}
	ns := &Snapshot{epoch: epoch, net: s.net, nLive: s.nLive}
	ns.live = make([]bool, n)
	copy(ns.live, s.live)
	isChanged := make(map[int]bool, len(changed))
	for _, u := range changed {
		if u < 0 || u >= n {
			panic(fmt.Errorf("plane: Patch changed node %d outside [0, %d)", u, n))
		}
		isChanged[u] = true
		was := ns.live[u]
		if active != nil {
			ns.live[u] = active[u]
		} else {
			ns.live[u] = u < len(wiring) && wiring[u] != nil
		}
		if ns.live[u] != was {
			if ns.live[u] {
				ns.nLive++
			} else {
				ns.nLive--
			}
		}
	}
	var arcs []graph.Arc
	ns.csr = graph.PatchCSR(s.csr, changed, func(u int) []graph.Arc {
		arcs = arcs[:0]
		if !ns.live[u] || u >= len(wiring) {
			return nil
		}
		for _, v := range wiring[u] {
			if ns.live[v] {
				arcs = append(arcs, graph.Arc{To: v, W: s.net.Delay(u, v)})
			}
		}
		return arcs
	})
	ns.rows = newRowCache(ns, s.rows.cap)
	s.rows.carryInto(ns.rows, func(src int, dist []float64, parent []int32) bool {
		if isChanged[src] {
			return false
		}
		for _, u := range changed {
			oldTo, oldW := s.csr.Out(u)
			newTo, newW := ns.csr.Out(u)
			if graph.RowCrossed(dist, parent, u, oldTo, oldW, newTo, newW) {
				return false
			}
		}
		return true
	})
	return ns
}
