package plane

import (
	"math/rand"
	"testing"

	"egoist/internal/obs"
)

// allocServer builds a sharded server with a published snapshot and
// pre-warms the rows the alloc gates will query, so every measured
// iteration runs the cache-warm path. Metrics are enabled: the gates
// hold for the instrumented paths — latency histogram observation and
// cache-counter classification included — not just the bare ones.
func allocServer(t *testing.T, shards int) (Shard, int) {
	t.Helper()
	const n, k = 120, 4
	net := testNet(t, n)
	wiring := randomWiring(n, k, rand.New(rand.NewSource(77)))
	srv := NewServerShards(shards)
	srv.EnableMetrics(obs.NewRegistry())
	srv.Publish(Compile(0, wiring, nil, net, Options{}))
	return srv.Shard(0), n
}

// TestServeHotPathsZeroAlloc is the ISSUE 9 allocation gate: the
// one-hop path and the cache-warm route paths (cost, full path with a
// caller-owned buffer, binary batch answering with reused buffers) must
// not allocate per query. A regression here is a throughput regression
// in disguise — GC pressure scales with query rate.
func TestServeHotPathsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on otherwise allocation-free paths")
	}
	h, n := allocServer(t, 4)

	// Warm the rows the route-mode gates touch.
	for src := 0; src < 8; src++ {
		if _, _, err := h.RouteCost(src, n-1); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("onehop", func(t *testing.T) {
		dst := 1
		if got := testing.AllocsPerRun(200, func() {
			if _, _, err := h.OneHop(0, dst); err != nil {
				t.Fatal(err)
			}
			dst = (dst + 1) % n
		}); got != 0 {
			t.Fatalf("Shard.OneHop allocates %.1f/op, want 0", got)
		}
	})

	t.Run("route-cost-warm", func(t *testing.T) {
		src := 0
		if got := testing.AllocsPerRun(200, func() {
			if _, _, err := h.RouteCost(src, n-1); err != nil {
				t.Fatal(err)
			}
			src = (src + 1) % 8
		}); got != 0 {
			t.Fatalf("Shard.RouteCost allocates %.1f/op on warm rows, want 0", got)
		}
	})

	t.Run("append-route-warm", func(t *testing.T) {
		buf := make([]int32, 0, n)
		src := 0
		if got := testing.AllocsPerRun(200, func() {
			path, _, ok, err := h.AppendRoute(src, n-1, buf)
			if err != nil || !ok {
				t.Fatalf("AppendRoute(%d,%d): ok=%v err=%v", src, n-1, ok, err)
			}
			buf = path[:0]
			src = (src + 1) % 8
		}); got != 0 {
			t.Fatalf("Shard.AppendRoute allocates %.1f/op on warm rows, want 0", got)
		}
	})

	t.Run("binary-batch-warm", func(t *testing.T) {
		pairs := make([]uint32, 0, 16)
		for src := 0; src < 8; src++ {
			pairs = append(pairs, uint32(src), uint32(n-1))
		}
		for _, mode := range []byte{BinModeOneHop, BinModeRoute} {
			req := AppendBatchRequest(nil, mode, pairs)
			// First call grows the response buffer; steady state reuses it.
			resp, err := h.AnswerBinary(req, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got := testing.AllocsPerRun(200, func() {
				out, err := h.AnswerBinary(req, resp[:0])
				if err != nil {
					t.Fatal(err)
				}
				resp = out
			}); got != 0 {
				t.Fatalf("Shard.AnswerBinary(mode=%d) allocates %.1f/op on warm rows, want 0", mode, got)
			}
		}
	})
}
