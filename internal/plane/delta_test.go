package plane

import (
	"math/rand"
	"testing"
)

// mutableWiring is a small churnable overlay for the patch tests: a
// random k-wiring with helpers applying the engine invariant (a leave
// rewrites every in-neighbor immediately, so no row ever references a
// departed node).
type mutableWiring struct {
	wiring [][]int
	active []bool
}

func newMutableWiring(rng *rand.Rand, n, k int) *mutableWiring {
	m := &mutableWiring{wiring: make([][]int, n), active: make([]bool, n)}
	for u := range m.active {
		m.active[u] = true
	}
	for u := 0; u < n; u++ {
		m.wiring[u] = m.randomRow(rng, u, k)
	}
	return m
}

func (m *mutableWiring) randomRow(rng *rand.Rand, u, k int) []int {
	var row []int
	for len(row) < k {
		v := rng.Intn(len(m.active))
		if v == u || !m.active[v] || containsInt(row, v) {
			continue
		}
		row = append(row, v)
	}
	return row
}

// churn applies one random membership or re-wiring step and returns the
// ascending changed set a Publication would carry.
func (m *mutableWiring) churn(rng *rand.Rand, k int) []int {
	changed := map[int]bool{}
	switch rng.Intn(3) {
	case 0: // re-wire a live node
		u := m.randomLive(rng)
		if u >= 0 {
			m.wiring[u] = m.randomRow(rng, u, k)
			changed[u] = true
		}
	case 1: // leave: orphan every in-neighbor immediately
		v := m.randomLive(rng)
		if v < 0 || m.liveCount() <= k+2 {
			break
		}
		m.active[v] = false
		m.wiring[v] = nil
		changed[v] = true
		for u := range m.wiring {
			for x, tgt := range m.wiring[u] {
				if tgt == v {
					m.wiring[u] = append(m.wiring[u][:x], m.wiring[u][x+1:]...)
					changed[u] = true
					break
				}
			}
		}
	case 2: // join with a bootstrap row
		v := -1
		for w, on := range m.active {
			if !on {
				v = w
				break
			}
		}
		if v < 0 {
			break
		}
		m.active[v] = true
		m.wiring[v] = m.randomRow(rng, v, k)
		changed[v] = true
	}
	out := make([]int, 0, len(changed))
	for u := range changed {
		out = append(out, u)
	}
	sortChanged(out)
	return out
}

func (m *mutableWiring) randomLive(rng *rand.Rand) int {
	for tries := 0; tries < 64; tries++ {
		u := rng.Intn(len(m.active))
		if m.active[u] {
			return u
		}
	}
	return -1
}

func (m *mutableWiring) liveCount() int {
	n := 0
	for _, on := range m.active {
		if on {
			n++
		}
	}
	return n
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func sortChanged(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// checkSnapshotsMatch byte-compares the two snapshots' full query
// surfaces: liveness, adjacency (order and weight bits), every
// RouteCost row, and the OneHop decisions of a seeded panel.
func checkSnapshotsMatch(t *testing.T, step int, got, want *Snapshot) {
	t.Helper()
	if got.N() != want.N() || got.NumLive() != want.NumLive() || got.NumArcs() != want.NumArcs() {
		t.Fatalf("step %d: shape (%d, %d live, %d arcs) vs (%d, %d, %d)",
			step, got.N(), got.NumLive(), got.NumArcs(), want.N(), want.NumLive(), want.NumArcs())
	}
	n := got.N()
	for u := 0; u < n; u++ {
		if got.Live(u) != want.Live(u) {
			t.Fatalf("step %d: live[%d] %v vs %v", step, u, got.Live(u), want.Live(u))
		}
		gn, wn := got.Neighbors(u), want.Neighbors(u)
		if len(gn) != len(wn) {
			t.Fatalf("step %d: node %d degree %d vs %d", step, u, len(gn), len(wn))
		}
		for x := range gn {
			if gn[x] != wn[x] {
				t.Fatalf("step %d: node %d arc %d: %d vs %d", step, u, x, gn[x], wn[x])
			}
		}
	}
	rng := rand.New(rand.NewSource(int64(step)*37 + 5))
	for q := 0; q < 24; q++ {
		src, dst := rng.Intn(n), rng.Intn(n)
		if gc, wc := got.RouteCost(src, dst), want.RouteCost(src, dst); gc != wc {
			t.Fatalf("step %d: RouteCost(%d,%d) %v vs %v", step, src, dst, gc, wc)
		}
		gd, wd := got.OneHop(src, dst), want.OneHop(src, dst)
		if gd != wd {
			t.Fatalf("step %d: OneHop(%d,%d) %+v vs %+v", step, src, dst, gd, wd)
		}
	}
}

// TestPatchMatchesCompile drives a long random churn/re-wiring sequence
// through a chain of Patch calls and byte-compares every link of the
// chain against a from-scratch Compile of the same wiring — the delta
// publication correctness contract. Queries between steps keep the row
// cache warm so the carry-over path is exercised for real.
func TestPatchMatchesCompile(t *testing.T) {
	const n, k = 80, 3
	net := testNet(t, n)
	rng := rand.New(rand.NewSource(42))
	m := newMutableWiring(rng, n, k)
	patched := Compile(-1, m.wiring, m.active, net, Options{})
	for step := 0; step < 60; step++ {
		// Warm some rows on the current snapshot so carry-over has
		// something to carry (and to invalidate).
		for q := 0; q < 12; q++ {
			patched.RouteCost(rng.Intn(n), rng.Intn(n))
		}
		changed := m.churn(rng, k)
		patched = patched.Patch(int64(step), changed, m.wiring, m.active)
		fresh := Compile(int64(step), m.wiring, m.active, net, Options{})
		checkSnapshotsMatch(t, step, patched, fresh)
		if patched.Epoch() != int64(step) {
			t.Fatalf("step %d: epoch %d", step, patched.Epoch())
		}
	}
}

// TestPatchCarriesUncrossedRows pins the cache economics: rows whose
// subtrees no changed arc crossed survive the patch by reference (no
// recompute), and the changed node's own row is dropped.
func TestPatchCarriesUncrossedRows(t *testing.T) {
	const n, k = 60, 3
	net := testNet(t, n)
	rng := rand.New(rand.NewSource(7))
	m := newMutableWiring(rng, n, k)
	base := Compile(0, m.wiring, m.active, net, Options{})
	for src := 0; src < n; src++ {
		base.rows.get(src)
	}
	// Re-wire one node and patch.
	u := 17
	m.wiring[u] = m.randomRow(rng, u, k)
	next := base.Patch(1, []int{u}, m.wiring, m.active)
	carried := next.rows.size()
	if carried == 0 {
		t.Fatal("no rows carried over a single-row patch")
	}
	if carried >= n {
		t.Fatalf("all %d rows carried across a re-wiring of node %d — the changed row must drop", carried, u)
	}
	next.rows.mu.Lock()
	if _, ok := next.rows.entries[u]; ok {
		next.rows.mu.Unlock()
		t.Fatalf("changed node %d's row survived the patch", u)
	}
	// Carried rows must share storage with the base rows (carry is a
	// reference, not a copy).
	shared := 0
	for src, e := range next.rows.entries {
		be, ok := base.rows.entries[src]
		if !ok {
			continue
		}
		if &e.dist[0] == &be.dist[0] {
			shared++
		}
	}
	next.rows.mu.Unlock()
	if shared == 0 {
		t.Fatal("carried rows were copied, not shared")
	}
}

// TestPatchEmptyChangedSharesEverything: the no-op publication (a
// sub-round where nothing moved) must not copy the CSR or drop a single
// cached row.
func TestPatchEmptyChangedSharesEverything(t *testing.T) {
	const n = 40
	net := testNet(t, n)
	rng := rand.New(rand.NewSource(3))
	m := newMutableWiring(rng, n, 2)
	base := Compile(0, m.wiring, m.active, net, Options{})
	base.rows.get(5)
	next := base.Patch(7, nil, m.wiring, m.active)
	if next.Epoch() != 7 {
		t.Fatalf("epoch %d", next.Epoch())
	}
	if next.csr != base.csr {
		t.Fatal("empty patch rebuilt the CSR")
	}
	if next.rows != base.rows {
		t.Fatal("empty patch dropped the shared row cache")
	}
	if c := next.RouteCost(5, 9); c != base.RouteCost(5, 9) {
		t.Fatalf("cost diverged: %v", c)
	}
}

// TestPatchNilActive covers Compile's active==nil convention (live =
// non-nil wiring row) on the patch path.
func TestPatchNilActive(t *testing.T) {
	const n = 30
	net := testNet(t, n)
	rng := rand.New(rand.NewSource(9))
	m := newMutableWiring(rng, n, 2)
	base := Compile(0, m.wiring, nil, net, Options{})
	// Depart node 4 under the invariant.
	v := 4
	changed := map[int]bool{v: true}
	m.wiring[v] = nil
	for u := range m.wiring {
		for x, tgt := range m.wiring[u] {
			if tgt == v {
				m.wiring[u] = append(m.wiring[u][:x], m.wiring[u][x+1:]...)
				changed[u] = true
				break
			}
		}
	}
	var list []int
	for u := range changed {
		list = append(list, u)
	}
	sortChanged(list)
	patched := base.Patch(1, list, m.wiring, nil)
	fresh := Compile(1, m.wiring, nil, net, Options{})
	checkSnapshotsMatch(t, 0, patched, fresh)
	if patched.Live(v) {
		t.Fatalf("departed node %d still live", v)
	}
}

// TestPatchRejectsOutOfRange: a malformed changed set must fail loudly,
// not corrupt a published snapshot.
func TestPatchRejectsOutOfRange(t *testing.T) {
	net := testNet(t, 10)
	m := newMutableWiring(rand.New(rand.NewSource(1)), 10, 2)
	base := Compile(0, m.wiring, m.active, net, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range changed node accepted")
		}
	}()
	base.Patch(1, []int{10}, m.wiring, m.active)
}
