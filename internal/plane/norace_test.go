//go:build !race

package plane

const raceEnabled = false
