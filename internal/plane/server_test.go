package plane

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func testServer(t *testing.T, n, k int) (*Server, *Snapshot) {
	t.Helper()
	net := testNet(t, n)
	wiring := randomWiring(n, k, rand.New(rand.NewSource(21)))
	snap := Compile(0, wiring, nil, net, Options{})
	srv := NewServer()
	srv.Publish(snap)
	return srv, snap
}

// TestServerNoSnapshot: queries before the first publish fail loudly
// (and are counted), never panic.
func TestServerNoSnapshot(t *testing.T) {
	srv := NewServer()
	if _, _, err := srv.OneHop(0, 1); err != ErrNoSnapshot {
		t.Fatalf("err = %v", err)
	}
	if _, _, _, err := srv.Route(0, 1); err != ErrNoSnapshot {
		t.Fatalf("err = %v", err)
	}
	if _, _, failed := srv.Stats(); failed != 2 {
		t.Fatalf("failed counter = %d", failed)
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/route?src=0&dst=1", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d", rec.Code)
	}
}

// TestServerAnswersMatchSnapshot: the serving layer is a pass-through
// to the published snapshot, with epochs reported.
func TestServerAnswersMatchSnapshot(t *testing.T) {
	srv, snap := testServer(t, 40, 3)
	d, epoch, err := srv.OneHop(2, 9)
	if err != nil || epoch != 0 {
		t.Fatalf("onehop: %v epoch %d", err, epoch)
	}
	if want := snap.OneHop(2, 9); d != want {
		t.Fatalf("decision %+v, want %+v", d, want)
	}
	r, ok, _, err := srv.Route(2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if wr, wok := snap.Route(2, 9); ok != wok || r.Cost != wr.Cost {
		t.Fatalf("route %+v/%v, want %+v/%v", r, ok, wr, wok)
	}
	if _, _, err := srv.OneHop(-1, 5); err == nil {
		t.Fatal("bad id accepted")
	}
	onehop, routes, failed := srv.Stats()
	if onehop != 1 || routes != 1 || failed != 1 {
		t.Fatalf("stats %d/%d/%d", onehop, routes, failed)
	}
}

// TestServerHTTPRoute drives GET /route in both modes.
func TestServerHTTPRoute(t *testing.T) {
	srv, snap := testServer(t, 40, 3)
	h := srv.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/route?src=3&dst=17", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var res routeResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	want := snap.OneHop(3, 17)
	if res.Mode != "onehop" || res.Cost != want.Cost || !res.Ok || res.Epoch != 0 {
		t.Fatalf("result %+v, want cost %v", res, want.Cost)
	}
	if (res.Via == nil) != (want.Via < 0) {
		t.Fatalf("via %v, want %d", res.Via, want.Via)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/route?src=3&dst=17&mode=route", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	wr, wok := snap.Route(3, 17)
	if res.Ok != wok || res.Cost != wr.Cost || len(res.Path) != len(wr.Path) {
		t.Fatalf("route result %+v, want %+v", res, wr)
	}

	for _, bad := range []string{"/route?src=x&dst=1", "/route?src=1", "/route?src=3abc&dst=5", "/route?src=1&dst=999", "/route?src=1&dst=2&mode=warp"} {
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", bad, nil))
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d", bad, rec.Code)
		}
	}
}

// TestServerHTTPBatch drives POST /routes: every pair answered from one
// epoch.
func TestServerHTTPBatch(t *testing.T) {
	srv, snap := testServer(t, 40, 3)
	h := srv.Handler()
	body := `{"mode":"route","pairs":[[0,5],[5,0],[7,7],[1,30]]}`
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/routes", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Epoch != 0 || len(resp.Results) != 4 {
		t.Fatalf("batch %+v", resp)
	}
	for _, res := range resp.Results {
		wr, wok := snap.Route(res.Src, res.Dst)
		if res.Ok != wok || res.Cost != wr.Cost {
			t.Fatalf("batch %d->%d: %+v want %+v", res.Src, res.Dst, res, wr)
		}
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/routes", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /routes: %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/routes", strings.NewReader("not json")))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad body: %d", rec.Code)
	}
}

// TestServerHTTPSnapshotInfo reads /snapshot metadata.
func TestServerHTTPSnapshotInfo(t *testing.T) {
	srv, snap := testServer(t, 40, 3)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/snapshot", nil))
	var info map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info["published"] != true || int(info["nodes"].(float64)) != snap.N() || int(info["arcs"].(float64)) != snap.NumArcs() {
		t.Fatalf("info %+v", info)
	}
}

// TestServerSwapUnderLoad is the RCU contract under the race detector:
// continuous publishes of fresh epochs race a storm of readers; every
// answer must come from a consistent snapshot (cost finite or the pair
// unreachable — never torn state), and epochs must only move forward
// within a reader's sequence of Current() calls... publication order is
// the single writer's program order.
func TestServerSwapUnderLoad(t *testing.T) {
	const n, k, epochs = 60, 3, 30
	net := testNet(t, n)
	srv := NewServer()
	srv.Publish(Compile(0, randomWiring(n, k, rand.New(rand.NewSource(100))), nil, net, Options{}))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			lastEpoch := int64(-1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				src, dst := rng.Intn(n), rng.Intn(n)
				d, epoch, err := srv.OneHop(src, dst)
				if err != nil {
					t.Errorf("onehop: %v", err)
					return
				}
				if epoch < lastEpoch {
					t.Errorf("epoch went backwards: %d after %d", epoch, lastEpoch)
					return
				}
				lastEpoch = epoch
				if src != dst && d.Cost <= 0 {
					t.Errorf("degenerate decision %+v", d)
					return
				}
				if _, _, _, err := srv.Route(src, dst); err != nil {
					t.Errorf("route: %v", err)
					return
				}
			}
		}(int64(w))
	}
	for e := 1; e <= epochs; e++ {
		srv.Publish(Compile(int64(e), randomWiring(n, k, rand.New(rand.NewSource(int64(100+e)))), nil, net, Options{}))
	}
	close(stop)
	wg.Wait()
}

// TestServerBatchInvalidPairsInBand pins the ISSUE 9 counter bugfix:
// one bad pair must not abort a batch — it is answered in its slot with
// ok=false and an error, while the valid pairs around it are delivered
// and tallied. A tallied onehop/routes query is a delivered result.
func TestServerBatchInvalidPairsInBand(t *testing.T) {
	srv, snap := testServer(t, 40, 3)
	h := srv.Handler()
	body := `{"mode":"onehop","pairs":[[0,5],[1,999],[7,7],[-3,2],[1,30]]}`
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/routes", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 5 {
		t.Fatalf("%d results, want all 5 pairs answered", len(resp.Results))
	}
	for i, res := range resp.Results {
		invalid := i == 1 || i == 3
		if invalid {
			if res.Ok || res.Error == "" || res.Cost != -1 {
				t.Fatalf("invalid pair %d answered %+v, want ok=false + error + cost -1", i, res)
			}
			continue
		}
		if res.Error != "" {
			t.Fatalf("valid pair %d carries error %q", i, res.Error)
		}
		if want := snap.OneHop(res.Src, res.Dst); res.Cost != want.Cost {
			t.Fatalf("valid pair %d cost %v, want %v", i, res.Cost, want.Cost)
		}
	}
	// Counter contract: 3 delivered one-hop answers, 2 failed pairs.
	onehop, routes, failed := srv.Stats()
	if onehop != 3 || routes != 0 || failed != 2 {
		t.Fatalf("Stats() = (%d, %d, %d), want (3, 0, 2)", onehop, routes, failed)
	}

	// An unknown batch mode is still a whole-request 400 (there is
	// nothing per-pair to answer).
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/routes", strings.NewReader(`{"mode":"warp","pairs":[[0,1]]}`)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown mode: status %d", rec.Code)
	}
}

// TestWriteJSONEncodesBeforeWriting pins the writeJSON bugfix: an
// unencodable value must produce a clean 500, not a 200 header followed
// by a truncated body.
func TestWriteJSONEncodesBeforeWriting(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, map[string]interface{}{"oops": func() {}})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("unencodable value answered %d, want 500", rec.Code)
	}
	if strings.Contains(rec.Header().Get("Content-Type"), "application/json") {
		t.Fatal("error response still claims application/json")
	}
	rec = httptest.NewRecorder()
	writeJSON(rec, map[string]int{"n": 1})
	if rec.Code != http.StatusOK || rec.Body.String() != "{\"n\":1}\n" {
		t.Fatalf("good value answered %d %q", rec.Code, rec.Body.String())
	}
}

// TestServerSharded drives the multi-shard configuration: handles are
// pinned, unpinned calls round-robin, stats aggregate across shards,
// and /snapshot reports the shard count.
func TestServerSharded(t *testing.T) {
	const n, k, shards = 40, 3, 4
	net := testNet(t, n)
	wiring := randomWiring(n, k, rand.New(rand.NewSource(21)))
	srv := NewServerShards(shards)
	if srv.Shards() != shards {
		t.Fatalf("Shards() = %d", srv.Shards())
	}
	srv.Publish(Compile(0, wiring, nil, net, Options{}))

	single := Compile(0, wiring, nil, net, Options{})
	for i := 0; i < shards; i++ {
		h := srv.Shard(i)
		for src := 0; src < n; src += 7 {
			d, _, err := h.OneHop(src, (src+11)%n)
			if err != nil {
				t.Fatal(err)
			}
			if want := single.OneHop(src, (src+11)%n); d != want {
				t.Fatalf("shard %d OneHop(%d,%d) = %+v, want %+v", i, src, (src+11)%n, d, want)
			}
		}
	}
	// Shard handles wrap: Shard(shards) is Shard(0), negatives clamp.
	if srv.Shard(shards).sh != srv.Shard(0).sh || srv.Shard(-1).sh != srv.Shard(0).sh {
		t.Fatal("shard handle indexing broken")
	}
	// Unpinned calls spread round-robin; stats sum across shards.
	for q := 0; q < 4*shards; q++ {
		if _, _, err := srv.OneHop(1, 2); err != nil {
			t.Fatal(err)
		}
	}
	perShard := make([]int64, shards)
	var total int64
	for i := 0; i < shards; i++ {
		perShard[i] = srv.shards[i].onehop.Load()
		total += perShard[i]
	}
	onehop, _, _ := srv.Stats()
	if onehop != total {
		t.Fatalf("Stats onehop %d, shard sum %d", onehop, total)
	}
	for i, c := range perShard {
		if c == 0 {
			t.Fatalf("shard %d served nothing — round-robin not spreading (%v)", i, perShard)
		}
	}

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/snapshot", nil))
	var info map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if int(info["shards"].(float64)) != shards {
		t.Fatalf("/snapshot shards = %v, want %d", info["shards"], shards)
	}
}

// TestServerShardedSwapUnderLoad is TestServerSwapUnderLoad with
// pinned shard handles: publishes race readers on every shard, epochs
// stay monotonic per handle, answers stay consistent.
func TestServerShardedSwapUnderLoad(t *testing.T) {
	const n, k, epochs, shards = 60, 3, 20, 4
	net := testNet(t, n)
	srv := NewServerShards(shards)
	srv.Publish(Compile(0, randomWiring(n, k, rand.New(rand.NewSource(100))), nil, net, Options{}))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := srv.Shard(w)
			rng := rand.New(rand.NewSource(int64(w)))
			lastEpoch := int64(-1)
			var buf []int32
			for {
				select {
				case <-stop:
					return
				default:
				}
				src, dst := rng.Intn(n), rng.Intn(n)
				d, epoch, err := h.OneHop(src, dst)
				if err != nil {
					t.Errorf("onehop: %v", err)
					return
				}
				if epoch < lastEpoch {
					t.Errorf("epoch went backwards: %d after %d", epoch, lastEpoch)
					return
				}
				lastEpoch = epoch
				if src != dst && d.Cost <= 0 {
					t.Errorf("degenerate decision %+v", d)
					return
				}
				path, cost, ok, err := h.AppendRoute(src, dst, buf)
				if err != nil {
					t.Errorf("append route: %v", err)
					return
				}
				if ok && len(path) > 0 && (int(path[0]) != src || int(path[len(path)-1]) != dst) {
					t.Errorf("path %v does not run %d->%d", path, src, dst)
				}
				if ok && src != dst && cost <= 0 {
					t.Errorf("degenerate route cost %v", cost)
				}
				buf = path[:0]
			}
		}(w)
	}
	for e := 1; e <= epochs; e++ {
		srv.Publish(Compile(int64(e), randomWiring(n, k, rand.New(rand.NewSource(int64(100+e)))), nil, net, Options{}))
	}
	close(stop)
	wg.Wait()
}
