package plane

import (
	"math/rand"
	"testing"
)

// TestDigest pins what the digest covers (liveness mask + weighted CSR
// rows) and what it deliberately ignores (the epoch tag and the row
// cache) — the equality the delta equivalence suites trade in.
func TestDigest(t *testing.T) {
	const n, k = 50, 3
	net := testNet(t, n)
	rng := rand.New(rand.NewSource(11))
	m := newMutableWiring(rng, n, k)
	a := Compile(0, m.wiring, m.active, net, Options{})
	b := Compile(99, m.wiring, m.active, net, Options{})
	b.RouteCost(1, 2) // warm a cached row on one side only
	if a.Digest() != b.Digest() {
		t.Fatal("digest must ignore the epoch tag and row-cache state")
	}
	changed := m.churn(rng, k)
	for len(changed) == 0 {
		changed = m.churn(rng, k)
	}
	c := a.Patch(1, changed, m.wiring, m.active)
	if c.Digest() == a.Digest() {
		t.Fatal("digest did not move across a real wiring change")
	}
	fresh := Compile(1, m.wiring, m.active, net, Options{})
	if c.Digest() != fresh.Digest() {
		t.Fatal("patched digest diverged from a from-scratch Compile")
	}
}
