package plane

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"egoist/internal/graph"
)

// ErrNoSnapshot is returned for queries issued before the control plane
// has published anything.
var ErrNoSnapshot = errors.New("plane: no snapshot published yet")

// Batch limits of POST /routes and the binary batch protocol.
const (
	maxBatchPairs = 10000
	maxBatchBytes = 1 << 20 // comfortably holds maxBatchPairs of JSON pairs
)

// DefaultHotRows is the publish-time row-precompute budget: at every
// Publish the server ranks sources by their route-query counters and
// pre-computes the shortest-path rows of the top DefaultHotRows before
// swapping the snapshot in, so a skewed production workload (the load
// generator's 64-source hot set, a popular CDN origin) never pays a
// Dijkstra on the serving path — the cost moves to publish time, once,
// instead of per-shard per-epoch. SetHotRows overrides; 0 disables.
const DefaultHotRows = 64

// Server is the query-serving layer, sharded per core: each shard owns
// an atomic snapshot pointer, its own shortest-path row cache (a
// per-shard view of the published snapshot), and its own counters, so
// readers pinned to different shards share no mutable state — no
// rowCache mutex contention, no counter cache-line ping-pong. Publish
// swaps every shard's pointer (RCU-style): queries in flight finish on
// the snapshot they started with, a batch grabs one shard's pointer
// once and answers every pair from that epoch, and old snapshots are
// garbage once their readers drain.
//
// Decisions are identical at any shard count: shards differ only in
// cache and counter placement, never in answers (pinned by the plane
// equivalence suite). One Server is safe for any number of concurrent
// Publish-ers and query-ers, though the engines publish from a single
// goroutine.
type Server struct {
	shards  []*shard
	base    atomic.Pointer[Snapshot]
	rr      atomic.Uint32 // round-robin shard pick for unpinned callers
	mu      sync.Mutex    // serializes Publish bookkeeping
	hotK    int
	pubTime atomic.Int64 // UnixNano of the last Publish (0 = never)
	cstats  cacheStats   // row-cache counters, threaded through every publish
}

// shard is one core's serving state. The counters of different shards
// live in different allocations (and the trailing pad keeps a shard's
// hot fields from sharing a line with a neighboring allocation), so
// shard-pinned readers never contend.
type shard struct {
	cur    atomic.Pointer[Snapshot]
	onehop atomic.Int64
	routes atomic.Int64
	failed atomic.Int64
	// hits counts route-mode queries per source id — the signal the
	// publish-time hot-row precompute ranks on. Swapped wholesale when
	// the snapshot's node-id space changes size.
	hits atomic.Pointer[[]uint64]
	idx  int            // this shard's index (metrics cell selector)
	m    *serverMetrics // nil until Server.EnableMetrics
	_    [64]byte
}

// NewServer returns a single-shard Server with no snapshot published —
// the zero-contention layout for single-goroutine callers, and the
// exact pre-sharding behavior (the published snapshot itself serves,
// so its row cache carries across Patch chains).
func NewServer() *Server { return NewServerShards(1) }

// NewServerShards returns a Server with p independent serving shards
// (p <= 0 means GOMAXPROCS). Callers that want multi-core throughput
// pin each worker to one Shard handle; unpinned Server-level calls and
// HTTP requests are spread round-robin.
func NewServerShards(p int) *Server {
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	s := &Server{shards: make([]*shard, p), hotK: DefaultHotRows}
	for i := range s.shards {
		s.shards[i] = &shard{idx: i}
	}
	return s
}

// Shards reports the shard count.
func (s *Server) Shards() int { return len(s.shards) }

// Shard returns a handle pinned to shard i mod Shards() — the
// multi-core serving API: one handle per worker, no shared mutable
// state between handles of different shards.
func (s *Server) Shard(i int) Shard {
	if i < 0 {
		i = 0
	}
	return Shard{sh: s.shards[i%len(s.shards)]}
}

// SetHotRows sets the publish-time hot-row precompute budget (0
// disables). Call before serving; the new budget applies from the next
// Publish.
func (s *Server) SetHotRows(k int) {
	s.mu.Lock()
	s.hotK = k
	s.mu.Unlock()
}

// pick spreads unpinned callers across shards. The round-robin counter
// is the one shared atomic on this path — callers that care about the
// last nanoseconds hold a Shard handle instead.
func (s *Server) pick() *shard {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	return s.shards[int(s.rr.Add(1))%len(s.shards)]
}

// Publish installs snap as the serving snapshot on every shard. Before
// the swap it pre-computes the shortest-path rows of the top-K sources
// by route-query count into snap's cache (pay at publish, not per
// query), then hands each shard its own view: same immutable topology,
// a private row cache seeded with every row snap already has — hot
// rows included — shared by reference, so the per-shard caches start
// warm without copying a byte. With one shard, snap itself serves
// (exact pre-sharding behavior).
func (s *Server) Publish(snap *Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t0 := time.Now()
	// Counters stay detached while warming: publish-time precompute is
	// deliberate work, not demand traffic, and must not skew the
	// hit/miss signal adaptive sizing would read.
	snap.rows.setStats(nil)
	if k := s.hotK; k > 0 {
		snap.warmRows(s.topHot(snap, k))
	}
	snap.rows.setStats(&s.cstats)
	n := snap.N()
	for _, sh := range s.shards {
		if p := sh.hits.Load(); p == nil || len(*p) != n {
			fresh := make([]uint64, n)
			sh.hits.Store(&fresh)
		}
	}
	s.base.Store(snap)
	if len(s.shards) == 1 {
		s.shards[0].cur.Store(snap)
	} else {
		for _, sh := range s.shards {
			view := snap.shardView()
			view.rows.setStats(&s.cstats)
			sh.cur.Store(view)
		}
	}
	s.pubTime.Store(time.Now().UnixNano())
	if m := s.shards[0].m; m != nil {
		m.publishNs.Observe(time.Since(t0).Nanoseconds())
	}
}

// topHot ranks sources by summed per-shard route-query counters and
// returns the top k live ones (count desc, id asc — deterministic for
// a given counter state). Sources never queried stay cold.
func (s *Server) topHot(snap *Snapshot, k int) []int {
	n := snap.N()
	sum := make([]uint64, n)
	for _, sh := range s.shards {
		p := sh.hits.Load()
		if p == nil || len(*p) != n {
			continue
		}
		for i := range *p {
			sum[i] += atomic.LoadUint64(&(*p)[i])
		}
	}
	var cand []int
	for i, c := range sum {
		if c > 0 && snap.Live(i) {
			cand = append(cand, i)
		}
	}
	sort.Slice(cand, func(a, b int) bool {
		if sum[cand[a]] != sum[cand[b]] {
			return sum[cand[a]] > sum[cand[b]]
		}
		return cand[a] < cand[b]
	})
	if len(cand) > k {
		cand = cand[:k]
	}
	return cand
}

// Current returns the published base snapshot, or nil before the first
// Publish. It stays valid (immutable) even after later publishes — and
// it is the snapshot to Patch when chaining delta publications, since
// its row cache is the one Publish seeds the per-shard views from.
func (s *Server) Current() *Snapshot { return s.base.Load() }

// Stats reports the served-query counters summed across shards; failed
// counts queries with no published snapshot or invalid node ids. The
// counter contract: a tallied onehop/routes query is a delivered
// result — queries rejected before an answer (bad ids, no snapshot)
// only ever increment failed.
func (s *Server) Stats() (onehop, routes, failed int64) {
	for _, sh := range s.shards {
		onehop += sh.onehop.Load()
		routes += sh.routes.Load()
		failed += sh.failed.Load()
	}
	return
}

// OneHop answers one O(k) source-routing query from a round-robin
// shard's current snapshot. Pinned callers use Shard.OneHop.
func (s *Server) OneHop(src, dst int) (Decision, int64, error) {
	return Shard{sh: s.pick()}.OneHop(src, dst)
}

// Route answers one full shortest-path query from a round-robin
// shard's current snapshot. ok=false means dst is not
// overlay-reachable from src in the serving epoch — still an answered
// query, unlike an error.
func (s *Server) Route(src, dst int) (Route, bool, int64, error) {
	return Shard{sh: s.pick()}.Route(src, dst)
}

// Shard is a handle pinned to one serving shard: the multi-core hot
// path. Handles are values; any number may point at the same shard.
type Shard struct {
	sh *shard
}

// Current returns the shard's serving snapshot view (nil before the
// first Publish). Multi-shard views share topology with the base
// snapshot but own their row cache.
func (h Shard) Current() *Snapshot { return h.sh.cur.Load() }

// hit records one route-mode query against src for the publish-time
// hot-row ranking.
func (sh *shard) hit(src int) {
	if p := sh.hits.Load(); p != nil && src < len(*p) {
		atomic.AddUint64(&(*p)[src], 1)
	}
}

// OneHop answers one one-hop query from this shard — zero allocations
// end-to-end (gated by TestServeHotPathsZeroAlloc).
func (h Shard) OneHop(src, dst int) (Decision, int64, error) {
	snap := h.sh.cur.Load()
	if snap == nil {
		h.sh.failed.Add(1)
		return Decision{}, -1, ErrNoSnapshot
	}
	if err := snap.checkPair(src, dst); err != nil {
		h.sh.failed.Add(1)
		return Decision{}, snap.epoch, err
	}
	h.sh.onehop.Add(1)
	if m := h.sh.m; m != nil {
		t0 := time.Now()
		d := snap.OneHop(src, dst)
		m.onehopNs.ObserveShard(h.sh.idx, time.Since(t0).Nanoseconds())
		return d, snap.epoch, nil
	}
	return snap.OneHop(src, dst), snap.epoch, nil
}

// Route answers one full shortest-path query from this shard. The
// returned path is freshly allocated; the serving hot loop uses
// AppendRoute instead.
func (h Shard) Route(src, dst int) (Route, bool, int64, error) {
	snap := h.sh.cur.Load()
	if snap == nil {
		h.sh.failed.Add(1)
		return Route{}, false, -1, ErrNoSnapshot
	}
	if err := snap.checkPair(src, dst); err != nil {
		h.sh.failed.Add(1)
		return Route{}, false, snap.epoch, err
	}
	h.sh.routes.Add(1)
	h.sh.hit(src)
	if m := h.sh.m; m != nil {
		t0 := time.Now()
		r, ok := snap.Route(src, dst)
		m.routeNs.ObserveShard(h.sh.idx, time.Since(t0).Nanoseconds())
		return r, ok, snap.epoch, nil
	}
	r, ok := snap.Route(src, dst)
	return r, ok, snap.epoch, nil
}

// RouteCost answers one shortest-path cost query from this shard
// (+Inf when unreachable), skipping path reconstruction — zero
// allocations once the source row is cached.
func (h Shard) RouteCost(src, dst int) (float64, int64, error) {
	snap := h.sh.cur.Load()
	if snap == nil {
		h.sh.failed.Add(1)
		return graph.Inf, -1, ErrNoSnapshot
	}
	if err := snap.checkPair(src, dst); err != nil {
		h.sh.failed.Add(1)
		return graph.Inf, snap.epoch, err
	}
	h.sh.routes.Add(1)
	h.sh.hit(src)
	if m := h.sh.m; m != nil {
		t0 := time.Now()
		c := snap.RouteCost(src, dst)
		m.routeNs.ObserveShard(h.sh.idx, time.Since(t0).Nanoseconds())
		return c, snap.epoch, nil
	}
	return snap.RouteCost(src, dst), snap.epoch, nil
}

// AppendRoute answers one full shortest-path query, appending the path
// to buf (pass the previous call's path[:0] to reuse storage) — the
// zero-allocation serving path once the source row is cached. ok=false
// means unreachable (cost +Inf, empty path).
func (h Shard) AppendRoute(src, dst int, buf []int32) (path []int32, cost float64, ok bool, err error) {
	snap := h.sh.cur.Load()
	if snap == nil {
		h.sh.failed.Add(1)
		return buf[:0], graph.Inf, false, ErrNoSnapshot
	}
	if err := snap.checkPair(src, dst); err != nil {
		h.sh.failed.Add(1)
		return buf[:0], graph.Inf, false, err
	}
	h.sh.routes.Add(1)
	h.sh.hit(src)
	if m := h.sh.m; m != nil {
		t0 := time.Now()
		path, cost, ok = snap.RouteInto(src, dst, buf)
		m.routeNs.ObserveShard(h.sh.idx, time.Since(t0).Nanoseconds())
		return path, cost, ok, nil
	}
	path, cost, ok = snap.RouteInto(src, dst, buf)
	return path, cost, ok, nil
}

// routeResult is the JSON shape of one answered query.
type routeResult struct {
	Src  int     `json:"src"`
	Dst  int     `json:"dst"`
	Mode string  `json:"mode"`
	Via  *int    `json:"via,omitempty"`  // one-hop relay (absent = direct)
	Path []int   `json:"path,omitempty"` // route mode
	Cost float64 `json:"cost"`
	Ok   bool    `json:"ok"` // false: unreachable this epoch, or Error set
	// Error reports an invalid pair answered in-band (batch queries
	// keep their slot instead of aborting the whole batch).
	Error string `json:"error,omitempty"`
	Epoch int64  `json:"epoch"`
}

// batchRequest is the JSON body of POST /routes.
type batchRequest struct {
	Mode  string   `json:"mode"` // "onehop" (default) or "route"
	Pairs [][2]int `json:"pairs"`
}

// batchResponse is the JSON reply of POST /routes: every pair answered
// from one consistent snapshot.
type batchResponse struct {
	Epoch   int64         `json:"epoch"`
	Results []routeResult `json:"results"`
}

// Handler returns the HTTP JSON face of the server:
//
//	GET  /route?src=I&dst=J[&mode=onehop|route]  one query
//	POST /routes {"mode":"onehop","pairs":[[i,j],...]}  batch, one epoch
//	POST /routes.bin  binary batch (see binary.go for the frame format)
//	GET  /snapshot  serving-snapshot metadata and query counters
//
// Each request is answered by one round-robin shard, so concurrent
// HTTP load spreads across the per-shard caches.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/route", s.handleRoute)
	mux.HandleFunc("/routes", s.handleBatch)
	mux.HandleFunc("/routes.bin", s.handleBatchBin)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	return mux
}

// validMode reports whether mode names a lookup path.
func validMode(mode string) bool {
	return mode == "" || mode == "onehop" || mode == "route"
}

// answerPair resolves one pre-validated-mode query against an explicit
// snapshot (so batches stay on one epoch) and tallies the shard's
// counters under the contract that a tallied onehop/routes query is a
// delivered result: an invalid pair is answered in-band (Ok=false,
// Error set, Cost -1) and only increments failed.
func answerPair(sh *shard, snap *Snapshot, mode string, src, dst int) routeResult {
	res := routeResult{Src: src, Dst: dst, Mode: mode, Epoch: snap.epoch}
	if res.Mode == "" {
		res.Mode = "onehop"
	}
	if err := snap.checkPair(src, dst); err != nil {
		sh.failed.Add(1)
		res.Cost = -1
		res.Error = err.Error()
		return res
	}
	switch mode {
	case "", "onehop":
		sh.onehop.Add(1)
		t0 := time.Time{}
		if sh.m != nil {
			t0 = time.Now()
		}
		d := snap.OneHop(src, dst)
		if sh.m != nil {
			sh.m.onehopNs.ObserveShard(sh.idx, time.Since(t0).Nanoseconds())
		}
		res.Cost = d.Cost
		res.Ok = d.Cost < graph.Inf
		if !res.Ok {
			res.Cost = -1 // +Inf has no JSON encoding
		}
		if d.Via >= 0 {
			via := d.Via
			res.Via = &via
		}
	case "route":
		sh.routes.Add(1)
		sh.hit(src)
		t0 := time.Time{}
		if sh.m != nil {
			t0 = time.Now()
		}
		r, ok := snap.Route(src, dst)
		if sh.m != nil {
			sh.m.routeNs.ObserveShard(sh.idx, time.Since(t0).Nanoseconds())
		}
		res.Cost = r.Cost
		res.Path = r.Path
		res.Ok = ok
		if !ok {
			res.Cost = -1 // match the one-hop unreachable encoding
		}
	}
	return res
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	sh := s.pick()
	snap := sh.cur.Load()
	if snap == nil {
		sh.failed.Add(1)
		http.Error(w, ErrNoSnapshot.Error(), http.StatusServiceUnavailable)
		return
	}
	mode := r.URL.Query().Get("mode")
	if !validMode(mode) {
		sh.failed.Add(1)
		http.Error(w, fmt.Sprintf("plane: unknown mode %q (want onehop or route)", mode), http.StatusBadRequest)
		return
	}
	src, err := strconv.Atoi(r.URL.Query().Get("src"))
	if err != nil {
		sh.failed.Add(1)
		http.Error(w, "plane: bad src: "+err.Error(), http.StatusBadRequest)
		return
	}
	dst, err := strconv.Atoi(r.URL.Query().Get("dst"))
	if err != nil {
		sh.failed.Add(1)
		http.Error(w, "plane: bad dst: "+err.Error(), http.StatusBadRequest)
		return
	}
	res := answerPair(sh, snap, mode, src, dst)
	if res.Error != "" {
		// Single-query endpoint: an invalid pair is the whole request.
		http.Error(w, res.Error, http.StatusBadRequest)
		return
	}
	writeJSON(w, res)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "plane: POST only", http.StatusMethodNotAllowed)
		return
	}
	sh := s.pick()
	snap := sh.cur.Load()
	if snap == nil {
		sh.failed.Add(1)
		http.Error(w, ErrNoSnapshot.Error(), http.StatusServiceUnavailable)
		return
	}
	// Bound the request: egoistd exposes this endpoint publicly, and an
	// unbounded pairs array is an amplification vector (each route-mode
	// pair can cost a Dijkstra).
	var req batchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBytes)).Decode(&req); err != nil {
		http.Error(w, "plane: bad batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Pairs) > maxBatchPairs {
		http.Error(w, fmt.Sprintf("plane: batch of %d pairs exceeds the %d cap", len(req.Pairs), maxBatchPairs), http.StatusRequestEntityTooLarge)
		return
	}
	if !validMode(req.Mode) {
		sh.failed.Add(1)
		http.Error(w, fmt.Sprintf("plane: unknown mode %q (want onehop or route)", req.Mode), http.StatusBadRequest)
		return
	}
	// Invalid pairs are answered in-band (ok=false + error) so one bad
	// pair can't discard a batch of already-answered results — the
	// onehop/routes counters only tally results the client receives.
	resp := batchResponse{Epoch: snap.epoch, Results: make([]routeResult, 0, len(req.Pairs))}
	for _, p := range req.Pairs {
		resp.Results = append(resp.Results, answerPair(sh, snap, req.Mode, p[0], p[1]))
	}
	writeJSON(w, resp)
}

// shardCounters is one shard's query-counter row in GET /snapshot —
// the per-shard breakdown that makes shard imbalance visible next to
// the summed totals.
type shardCounters struct {
	Shard  int   `json:"shard"`
	OneHop int64 `json:"onehop"`
	Routes int64 `json:"routes"`
	Failed int64 `json:"failed"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	snap := s.base.Load()
	onehop, routes, failed := s.Stats()
	perShard := make([]shardCounters, len(s.shards))
	for i, sh := range s.shards {
		perShard[i] = shardCounters{
			Shard:  i,
			OneHop: sh.onehop.Load(),
			Routes: sh.routes.Load(),
			Failed: sh.failed.Load(),
		}
	}
	info := map[string]interface{}{
		"published":      snap != nil,
		"shards":         len(s.shards),
		"queries_onehop": onehop,
		"queries_route":  routes,
		"queries_failed": failed,
		"per_shard":      perShard,
		"cache":          s.cstats.read(),
	}
	if snap != nil {
		info["epoch"] = snap.epoch
		info["nodes"] = snap.N()
		info["live"] = snap.NumLive()
		info["arcs"] = snap.NumArcs()
		info["age_seconds"] = s.SnapshotAge().Seconds()
	}
	writeJSON(w, info)
}

// writeJSON encodes v fully before touching the ResponseWriter: an
// encoding failure turns into a clean 500 instead of a 200 header
// followed by a truncated body (and a superfluous-WriteHeader log).
func writeJSON(w http.ResponseWriter, v interface{}) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	data = append(data, '\n')
	_, _ = w.Write(data)
}
