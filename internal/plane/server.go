package plane

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"

	"egoist/internal/graph"
)

// ErrNoSnapshot is returned for queries issued before the control plane
// has published anything.
var ErrNoSnapshot = errors.New("plane: no snapshot published yet")

// Batch limits of POST /routes.
const (
	maxBatchPairs = 10000
	maxBatchBytes = 1 << 20 // comfortably holds maxBatchPairs of JSON pairs
)

// Server is the query-serving layer: it holds the current Snapshot
// behind an atomic pointer and answers one-hop and shortest-path
// queries from it without ever blocking a reader. Publish swaps the
// pointer (RCU-style): queries in flight finish on the snapshot they
// started with, new queries see the new epoch, and the old snapshot is
// garbage once its readers drain. One Server is safe for any number of
// concurrent Publish-ers and query-ers, though the engines publish from
// a single goroutine.
type Server struct {
	cur atomic.Pointer[Snapshot]

	// Served query counters, by lookup path; failed counts queries
	// with no published snapshot or invalid node ids.
	onehop atomic.Int64
	routes atomic.Int64
	failed atomic.Int64
}

// NewServer returns a Server with no snapshot published.
func NewServer() *Server { return &Server{} }

// Publish atomically installs snap as the serving snapshot.
func (s *Server) Publish(snap *Snapshot) { s.cur.Store(snap) }

// Current returns the serving snapshot, or nil before the first
// Publish. The returned snapshot stays valid (immutable) even after
// later publishes — batch callers should grab it once so every query
// of the batch is answered from one consistent epoch.
func (s *Server) Current() *Snapshot { return s.cur.Load() }

// Stats reports the served-query counters.
func (s *Server) Stats() (onehop, routes, failed int64) {
	return s.onehop.Load(), s.routes.Load(), s.failed.Load()
}

// OneHop answers one O(k) source-routing query from the current
// snapshot.
func (s *Server) OneHop(src, dst int) (Decision, int64, error) {
	snap := s.cur.Load()
	if snap == nil {
		s.failed.Add(1)
		return Decision{}, -1, ErrNoSnapshot
	}
	if err := snap.checkPair(src, dst); err != nil {
		s.failed.Add(1)
		return Decision{}, snap.epoch, err
	}
	s.onehop.Add(1)
	return snap.OneHop(src, dst), snap.epoch, nil
}

// Route answers one full shortest-path query from the current snapshot.
// ok=false means dst is not overlay-reachable from src in the serving
// epoch — still an answered query, unlike an error.
func (s *Server) Route(src, dst int) (Route, bool, int64, error) {
	snap := s.cur.Load()
	if snap == nil {
		s.failed.Add(1)
		return Route{}, false, -1, ErrNoSnapshot
	}
	if err := snap.checkPair(src, dst); err != nil {
		s.failed.Add(1)
		return Route{}, false, snap.epoch, err
	}
	s.routes.Add(1)
	r, ok := snap.Route(src, dst)
	return r, ok, snap.epoch, nil
}

// routeResult is the JSON shape of one answered query.
type routeResult struct {
	Src   int     `json:"src"`
	Dst   int     `json:"dst"`
	Mode  string  `json:"mode"`
	Via   *int    `json:"via,omitempty"`  // one-hop relay (absent = direct)
	Path  []int   `json:"path,omitempty"` // route mode
	Cost  float64 `json:"cost"`
	Ok    bool    `json:"ok"` // false: not overlay-reachable this epoch
	Epoch int64   `json:"epoch"`
}

// batchRequest is the JSON body of POST /routes.
type batchRequest struct {
	Mode  string   `json:"mode"` // "onehop" (default) or "route"
	Pairs [][2]int `json:"pairs"`
}

// batchResponse is the JSON reply of POST /routes: every pair answered
// from one consistent snapshot.
type batchResponse struct {
	Epoch   int64         `json:"epoch"`
	Results []routeResult `json:"results"`
}

// Handler returns the HTTP JSON face of the server:
//
//	GET  /route?src=I&dst=J[&mode=onehop|route]  one query
//	POST /routes {"mode":"onehop","pairs":[[i,j],...]}  batch, one epoch
//	GET  /snapshot  serving-snapshot metadata and query counters
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/route", s.handleRoute)
	mux.HandleFunc("/routes", s.handleBatch)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	return mux
}

// answer resolves one query against an explicit snapshot (so batches
// stay on one epoch) and tallies the counters.
func (s *Server) answer(snap *Snapshot, mode string, src, dst int) (routeResult, error) {
	if err := snap.checkPair(src, dst); err != nil {
		s.failed.Add(1)
		return routeResult{}, err
	}
	res := routeResult{Src: src, Dst: dst, Mode: mode, Epoch: snap.epoch}
	switch mode {
	case "", "onehop":
		s.onehop.Add(1)
		d := snap.OneHop(src, dst)
		res.Mode = "onehop"
		res.Cost = d.Cost
		res.Ok = d.Cost < graph.Inf
		if !res.Ok {
			res.Cost = -1 // +Inf has no JSON encoding
		}
		if d.Via >= 0 {
			via := d.Via
			res.Via = &via
		}
	case "route":
		s.routes.Add(1)
		r, ok := snap.Route(src, dst)
		res.Cost = r.Cost
		res.Path = r.Path
		res.Ok = ok
		if !ok {
			res.Cost = -1 // match the one-hop unreachable encoding
		}
	default:
		s.failed.Add(1)
		return routeResult{}, fmt.Errorf("plane: unknown mode %q (want onehop or route)", mode)
	}
	return res, nil
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	snap := s.cur.Load()
	if snap == nil {
		s.failed.Add(1)
		http.Error(w, ErrNoSnapshot.Error(), http.StatusServiceUnavailable)
		return
	}
	src, err := strconv.Atoi(r.URL.Query().Get("src"))
	if err != nil {
		s.failed.Add(1)
		http.Error(w, "plane: bad src: "+err.Error(), http.StatusBadRequest)
		return
	}
	dst, err := strconv.Atoi(r.URL.Query().Get("dst"))
	if err != nil {
		s.failed.Add(1)
		http.Error(w, "plane: bad dst: "+err.Error(), http.StatusBadRequest)
		return
	}
	res, err := s.answer(snap, r.URL.Query().Get("mode"), src, dst)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, res)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "plane: POST only", http.StatusMethodNotAllowed)
		return
	}
	snap := s.cur.Load()
	if snap == nil {
		s.failed.Add(1)
		http.Error(w, ErrNoSnapshot.Error(), http.StatusServiceUnavailable)
		return
	}
	// Bound the request: egoistd exposes this endpoint publicly, and an
	// unbounded pairs array is an amplification vector (each route-mode
	// pair can cost a Dijkstra).
	var req batchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBytes)).Decode(&req); err != nil {
		http.Error(w, "plane: bad batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Pairs) > maxBatchPairs {
		http.Error(w, fmt.Sprintf("plane: batch of %d pairs exceeds the %d cap", len(req.Pairs), maxBatchPairs), http.StatusRequestEntityTooLarge)
		return
	}
	resp := batchResponse{Epoch: snap.epoch, Results: make([]routeResult, 0, len(req.Pairs))}
	for _, p := range req.Pairs {
		res, err := s.answer(snap, req.Mode, p[0], p[1])
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp.Results = append(resp.Results, res)
	}
	writeJSON(w, resp)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	snap := s.cur.Load()
	onehop, routes, failed := s.Stats()
	info := map[string]interface{}{
		"published":      snap != nil,
		"queries_onehop": onehop,
		"queries_route":  routes,
		"queries_failed": failed,
	}
	if snap != nil {
		info["epoch"] = snap.epoch
		info["nodes"] = snap.N()
		info["live"] = snap.NumLive()
		info["arcs"] = snap.NumArcs()
	}
	writeJSON(w, info)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
