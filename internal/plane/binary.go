package plane

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"time"

	"egoist/internal/graph"
)

// The compact binary batch protocol — the production-rate alternative
// to the JSON endpoints. One request/response exchange carries one
// batch, answered from one shard's snapshot (one consistent epoch).
//
// Over raw TCP (Server.ServeBinary / DialBinary) every payload is
// length-prefixed:
//
//	u32  payload length (little-endian, max 1 MiB requests)
//	...  payload
//
// Over HTTP (POST /routes.bin) the payload is the request/response
// body and the transport frames it.
//
// Request payload:
//
//	u8   mode: 0 = onehop, 1 = route
//	u32  pair count (max 10000, the JSON batch cap)
//	pair count × (u32 src, u32 dst)
//
// Response payload:
//
//	u8   status: 0 = batch answered, 1 = batch-level error
//	status 1: u16 message length, message bytes — e.g. no snapshot
//	status 0: i64 epoch, u32 result count, then per result:
//	  u8  result status: 0 = ok, 1 = unreachable, 2 = invalid pair
//	  f64 cost (-1 unless ok — the JSON encoding's sentinel, kept
//	      so the two protocols answer bit-identically)
//	  mode onehop: i32 via (-1 = direct underlay path)
//	  mode route:  u32 path length (0 unless ok), then path × u32
//
// Invalid pairs are answered in-band (result status 2), exactly like
// the JSON batch endpoint: a tallied query is a delivered result.
const (
	BinModeOneHop byte = 0
	BinModeRoute  byte = 1

	// Per-result statuses.
	BinOK          byte = 0
	BinUnreachable byte = 1
	BinInvalidPair byte = 2

	// Batch-level response statuses.
	binRespOK  byte = 0
	binRespErr byte = 1

	// maxBinRespBytes bounds what DialBinary clients will buffer for
	// one response (route mode paths can legitimately dwarf the
	// request).
	maxBinRespBytes = 64 << 20
)

// AppendBatchRequest appends the binary request payload for one batch
// to dst and returns the extended slice. pairs holds src,dst
// alternating (so len(pairs) must be even); the caller may reuse both
// slices across calls.
func AppendBatchRequest(dst []byte, mode byte, pairs []uint32) []byte {
	dst = append(dst, mode)
	dst = appendU32(dst, uint32(len(pairs)/2))
	for _, v := range pairs {
		dst = appendU32(dst, v)
	}
	return dst
}

// BinResult is one decoded result of a binary batch response.
type BinResult struct {
	Status byte
	Cost   float64
	Via    int32    // onehop mode: chosen relay, -1 = direct
	Path   []uint32 // route mode: src..dst inclusive when Status == BinOK
}

// DecodeBatchResponse decodes a binary batch response payload. buf is
// recycled (its entries' Path storage included) so a client loop that
// feeds the previous call's results back in approaches zero
// allocations. A batch-level error payload is returned as a non-nil
// error carrying the server's message.
func DecodeBatchResponse(payload []byte, mode byte, buf []BinResult) (epoch int64, results []BinResult, err error) {
	if len(payload) < 1 {
		return 0, nil, errors.New("plane: empty binary response")
	}
	if payload[0] == binRespErr {
		if len(payload) < 3 {
			return 0, nil, errors.New("plane: truncated binary error response")
		}
		n := int(binary.LittleEndian.Uint16(payload[1:3]))
		if len(payload) < 3+n {
			return 0, nil, errors.New("plane: truncated binary error response")
		}
		return 0, nil, errors.New(string(payload[3 : 3+n]))
	}
	if payload[0] != binRespOK || len(payload) < 13 {
		return 0, nil, fmt.Errorf("plane: bad binary response header")
	}
	epoch = int64(binary.LittleEndian.Uint64(payload[1:9]))
	count := int(binary.LittleEndian.Uint32(payload[9:13]))
	results = buf[:0]
	off := 13
	for i := 0; i < count; i++ {
		if off+9 > len(payload) {
			return 0, nil, fmt.Errorf("plane: truncated result %d of %d", i, count)
		}
		var res BinResult
		if cap(buf) > i {
			res = buf[:cap(buf)][i] // recycle the old Path storage
		}
		res.Status = payload[off]
		res.Cost = math.Float64frombits(binary.LittleEndian.Uint64(payload[off+1 : off+9]))
		off += 9
		switch mode {
		case BinModeOneHop:
			if off+4 > len(payload) {
				return 0, nil, fmt.Errorf("plane: truncated result %d of %d", i, count)
			}
			res.Via = int32(binary.LittleEndian.Uint32(payload[off : off+4]))
			off += 4
		case BinModeRoute:
			if off+4 > len(payload) {
				return 0, nil, fmt.Errorf("plane: truncated result %d of %d", i, count)
			}
			plen := int(binary.LittleEndian.Uint32(payload[off : off+4]))
			off += 4
			if off+4*plen > len(payload) {
				return 0, nil, fmt.Errorf("plane: truncated path in result %d", i)
			}
			res.Path = res.Path[:0]
			for p := 0; p < plen; p++ {
				res.Path = append(res.Path, binary.LittleEndian.Uint32(payload[off+4*p:]))
			}
			off += 4 * plen
		default:
			return 0, nil, fmt.Errorf("plane: unknown binary mode %d", mode)
		}
		results = append(results, res)
	}
	if off != len(payload) {
		return 0, nil, fmt.Errorf("plane: %d trailing bytes in binary response", len(payload)-off)
	}
	return epoch, results, nil
}

// AnswerBinary answers one binary batch request payload from the
// shard's current snapshot, appending the response payload to dst
// (pass the previous call's response[:0] to reuse storage — the answer
// loop allocates nothing once the buffer has grown). A missing
// snapshot is answered in-band (batch-level error payload, nil error);
// a malformed request returns a non-nil error and appends nothing —
// transports treat that as a protocol violation.
func (h Shard) AnswerBinary(req, dst []byte) ([]byte, error) {
	sh := h.sh
	if len(req) < 5 {
		return dst, fmt.Errorf("plane: binary request of %d bytes is shorter than its header", len(req))
	}
	mode := req[0]
	if mode != BinModeOneHop && mode != BinModeRoute {
		return dst, fmt.Errorf("plane: unknown binary mode %d (want 0 onehop or 1 route)", mode)
	}
	count := int(binary.LittleEndian.Uint32(req[1:5]))
	if count > maxBatchPairs {
		return dst, fmt.Errorf("plane: batch of %d pairs exceeds the %d cap", count, maxBatchPairs)
	}
	if len(req) != 5+8*count {
		return dst, fmt.Errorf("plane: binary request length %d does not match %d pairs", len(req), count)
	}
	snap := sh.cur.Load()
	if snap == nil {
		sh.failed.Add(1)
		return appendBinError(dst, ErrNoSnapshot.Error()), nil
	}
	t0 := time.Time{}
	if sh.m != nil {
		t0 = time.Now()
	}
	dst = append(dst, binRespOK)
	dst = appendU64(dst, uint64(snap.epoch))
	dst = appendU32(dst, uint32(count))
	n := snap.N()
	var nOneHop, nRoute, nFail int64
	for i := 0; i < count; i++ {
		off := 5 + 8*i
		src := int(binary.LittleEndian.Uint32(req[off:]))
		dstID := int(binary.LittleEndian.Uint32(req[off+4:]))
		if src >= n || dstID >= n {
			nFail++
			dst = append(dst, BinInvalidPair)
			dst = appendF64(dst, -1)
			if mode == BinModeOneHop {
				dst = appendU32(dst, uint32(0xFFFFFFFF)) // via -1
			} else {
				dst = appendU32(dst, 0) // empty path
			}
			continue
		}
		if mode == BinModeOneHop {
			nOneHop++
			d := snap.OneHop(src, dstID)
			if d.Cost < graph.Inf {
				dst = append(dst, BinOK)
				dst = appendF64(dst, d.Cost)
			} else {
				dst = append(dst, BinUnreachable)
				dst = appendF64(dst, -1)
			}
			dst = appendU32(dst, uint32(int32(d.Via)))
			continue
		}
		nRoute++
		sh.hit(src)
		if src == dstID {
			dst = append(dst, BinOK)
			dst = appendF64(dst, 0)
			dst = appendU32(dst, 1)
			dst = appendU32(dst, uint32(src))
			continue
		}
		row := snap.rows.get(src)
		if row.dist[dstID] >= graph.Inf {
			dst = append(dst, BinUnreachable)
			dst = appendF64(dst, -1)
			dst = appendU32(dst, 0)
			continue
		}
		dst = append(dst, BinOK)
		dst = appendF64(dst, row.dist[dstID])
		plenPos := len(dst)
		dst = appendU32(dst, 0)
		start := len(dst)
		// Walk dst→src over the parent pointers straight into the
		// response, then reverse the u32 run in place — the path Route
		// builds, without its allocation.
		for v := int32(dstID); ; v = row.parent[v] {
			dst = appendU32(dst, uint32(v))
			if int(v) == src {
				break
			}
		}
		plen := (len(dst) - start) / 4
		for a, b := start, len(dst)-4; a < b; a, b = a+4, b-4 {
			for x := 0; x < 4; x++ {
				dst[a+x], dst[b+x] = dst[b+x], dst[a+x]
			}
		}
		binary.LittleEndian.PutUint32(dst[plenPos:], uint32(plen))
	}
	if nOneHop > 0 {
		sh.onehop.Add(nOneHop)
	}
	if nRoute > 0 {
		sh.routes.Add(nRoute)
	}
	if nFail > 0 {
		sh.failed.Add(nFail)
	}
	if sh.m != nil {
		sh.m.batchNs.ObserveShard(sh.idx, time.Since(t0).Nanoseconds())
	}
	return dst, nil
}

// handleBatchBin is POST /routes.bin: the binary batch protocol over
// an HTTP body. Batch-level conditions keep their in-band encoding
// (status 200, error payload) so binary clients parse one shape on
// either transport; a malformed payload is the transport's problem and
// 400s.
func (s *Server) handleBatchBin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "plane: POST only", http.StatusMethodNotAllowed)
		return
	}
	req, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBatchBytes))
	if err != nil {
		http.Error(w, "plane: bad binary batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := Shard{sh: s.pick()}.AnswerBinary(req, nil)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(resp)
}

// ServeBinary serves the length-prefixed binary batch protocol on ln
// until Accept fails (closing the listener is the shutdown path); the
// error that stopped the accept loop is returned. Each connection is
// pinned to one shard, so a client keeping a connection per worker
// gets the same contention-free layout as in-process Shard handles.
func (s *Server) ServeBinary(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.serveBinaryConn(conn)
	}
}

// serveBinaryConn answers frames on one connection until read error or
// protocol violation. Request and response buffers are reused across
// frames, so a steady-state connection allocates nothing per batch.
func (s *Server) serveBinaryConn(conn net.Conn) {
	defer conn.Close()
	h := Shard{sh: s.pick()}
	br := bufio.NewReaderSize(conn, 64<<10)
	var lenBuf [4]byte
	var req, resp []byte
	for {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return
		}
		frameLen := int(binary.LittleEndian.Uint32(lenBuf[:]))
		if frameLen > maxBatchBytes {
			return
		}
		if cap(req) < frameLen {
			req = make([]byte, frameLen)
		}
		req = req[:frameLen]
		if _, err := io.ReadFull(br, req); err != nil {
			return
		}
		// Leave room for the length prefix so the frame goes out in one
		// write.
		resp = resp[:0]
		resp = append(resp, 0, 0, 0, 0)
		out, err := h.AnswerBinary(req, resp)
		if err != nil {
			// Protocol violation: report in-band, then drop the
			// connection — framing can no longer be trusted.
			out = appendBinError(resp, err.Error())
			binary.LittleEndian.PutUint32(out[:4], uint32(len(out)-4))
			_, _ = conn.Write(out)
			return
		}
		resp = out
		binary.LittleEndian.PutUint32(resp[:4], uint32(len(resp)-4))
		if _, err := conn.Write(resp); err != nil {
			return
		}
	}
}

// BinClient is a client connection to Server.ServeBinary: one
// request/response exchange per Do call, buffers reused throughout.
// Not safe for concurrent use — pin one client per worker, which also
// pins a server shard per worker.
type BinClient struct {
	conn net.Conn
	br   *bufio.Reader
	req  []byte
	resp []byte
}

// DialBinary connects to a Server.ServeBinary listener.
func DialBinary(addr string) (*BinClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &BinClient{conn: conn, br: bufio.NewReaderSize(conn, 64<<10)}, nil
}

// Close closes the connection.
func (c *BinClient) Close() error { return c.conn.Close() }

// Do sends one batch (pairs holds src,dst alternating) and returns the
// response payload, valid until the next Do. Decode it with
// DecodeBatchResponse.
func (c *BinClient) Do(mode byte, pairs []uint32) ([]byte, error) {
	c.req = append(c.req[:0], 0, 0, 0, 0)
	c.req = AppendBatchRequest(c.req, mode, pairs)
	binary.LittleEndian.PutUint32(c.req[:4], uint32(len(c.req)-4))
	if _, err := c.conn.Write(c.req); err != nil {
		return nil, err
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(c.br, lenBuf[:]); err != nil {
		return nil, err
	}
	respLen := int(binary.LittleEndian.Uint32(lenBuf[:]))
	if respLen > maxBinRespBytes {
		return nil, fmt.Errorf("plane: %d-byte binary response exceeds the %d cap", respLen, maxBinRespBytes)
	}
	if cap(c.resp) < respLen {
		c.resp = make([]byte, respLen)
	}
	c.resp = c.resp[:respLen]
	if _, err := io.ReadFull(c.br, c.resp); err != nil {
		return nil, err
	}
	return c.resp, nil
}

// appendBinError appends a batch-level error response payload.
func appendBinError(dst []byte, msg string) []byte {
	if len(msg) > 0xFFFF {
		msg = msg[:0xFFFF]
	}
	dst = append(dst, binRespErr)
	dst = append(dst, byte(len(msg)), byte(len(msg)>>8))
	return append(dst, msg...)
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func appendF64(dst []byte, v float64) []byte {
	return appendU64(dst, math.Float64bits(v))
}
