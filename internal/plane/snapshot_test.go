package plane

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"egoist/internal/graph"
	"egoist/internal/underlay"
)

// testNet builds the constant-memory underlay the scale engine defaults
// to — the delay oracle snapshots are priced against.
func testNet(t testing.TB, n int) *underlay.Lite {
	t.Helper()
	net, err := underlay.NewLite(n, 11)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// randomWiring wires every node to k distinct random targets.
func randomWiring(n, k int, rng *rand.Rand) [][]int {
	w := make([][]int, n)
	for u := 0; u < n; u++ {
		have := map[int]bool{u: true}
		for len(w[u]) < k {
			v := rng.Intn(n)
			if !have[v] {
				have[v] = true
				w[u] = append(w[u], v)
			}
		}
	}
	return w
}

// overlayGraph is the reference construction: the same wiring as a
// plain Digraph with underlay delays.
func overlayGraph(wiring [][]int, net DelayNet) *graph.Digraph {
	g := graph.New(net.N())
	for u, ws := range wiring {
		for _, v := range ws {
			g.AddArc(u, v, net.Delay(u, v))
		}
	}
	return g
}

// TestRouteMatchesGraphDijkstra pins the satellite equivalence claim:
// shortest-path decisions from a Snapshot are byte-identical (bit-level
// costs, same paths) to a direct internal/graph computation over the
// equivalent overlay graph.
func TestRouteMatchesGraphDijkstra(t *testing.T) {
	const n, k = 80, 3
	net := testNet(t, n)
	wiring := randomWiring(n, k, rand.New(rand.NewSource(3)))
	snap := Compile(0, wiring, nil, net, Options{})
	g := overlayGraph(wiring, net)
	for src := 0; src < n; src += 7 {
		dist, parent := graph.Dijkstra(g, src)
		for dst := 0; dst < n; dst++ {
			r, ok := snap.Route(src, dst)
			if ok != (dist[dst] < graph.Inf) {
				t.Fatalf("route %d->%d: ok=%v vs reference dist %v", src, dst, ok, dist[dst])
			}
			if !ok {
				continue
			}
			if math.Float64bits(r.Cost) != math.Float64bits(dist[dst]) {
				t.Fatalf("route %d->%d: cost %v vs reference %v", src, dst, r.Cost, dist[dst])
			}
			want := graph.PathTo(parent, src, dst)
			if len(r.Path) != len(want) {
				t.Fatalf("route %d->%d: path %v vs reference %v", src, dst, r.Path, want)
			}
			// Paths may tie-break differently only if costs tie; verify the
			// snapshot's path realizes the optimal cost arc by arc.
			cost := 0.0
			for i := 1; i < len(r.Path); i++ {
				w, ok := g.Weight(r.Path[i-1], r.Path[i])
				if !ok {
					t.Fatalf("route %d->%d: path %v uses non-overlay arc", src, dst, r.Path)
				}
				cost += w
			}
			if math.Abs(cost-r.Cost) > 1e-9*math.Max(1, cost) {
				t.Fatalf("route %d->%d: path cost %v vs claimed %v", src, dst, cost, r.Cost)
			}
		}
	}
}

// TestOneHopMatchesReference checks the O(k) decision against a naive
// reference over the same wiring.
func TestOneHopMatchesReference(t *testing.T) {
	const n, k = 60, 4
	net := testNet(t, n)
	wiring := randomWiring(n, k, rand.New(rand.NewSource(5)))
	snap := Compile(0, wiring, nil, net, Options{})
	rng := rand.New(rand.NewSource(6))
	for q := 0; q < 2000; q++ {
		src, dst := rng.Intn(n), rng.Intn(n)
		got := snap.OneHop(src, dst)
		if src == dst {
			if got.Cost != 0 || got.Via != -1 {
				t.Fatalf("self decision: %+v", got)
			}
			continue
		}
		bestCost, bestVia := net.Delay(src, dst), -1
		for _, v := range wiring[src] {
			var c float64
			if v == dst {
				c = net.Delay(src, v)
			} else {
				c = net.Delay(src, v) + net.Delay(v, dst)
			}
			if c < bestCost {
				bestCost = c
				if v == dst {
					bestVia = -1
				} else {
					bestVia = v
				}
			}
		}
		if math.Float64bits(got.Cost) != math.Float64bits(bestCost) || got.Via != bestVia {
			t.Fatalf("onehop %d->%d: got %+v, want via=%d cost=%v", src, dst, got, bestVia, bestCost)
		}
		if got.Cost > net.Delay(src, dst) {
			t.Fatalf("onehop %d->%d worse than direct", src, dst)
		}
	}
}

// TestCompileFiltersDeparted: arcs from or to non-members must not
// survive compilation, and departed nodes are not live.
func TestCompileFiltersDeparted(t *testing.T) {
	const n = 20
	net := testNet(t, n)
	wiring := randomWiring(n, 3, rand.New(rand.NewSource(9)))
	active := make([]bool, n)
	for i := range active {
		active[i] = i%5 != 0
	}
	snap := Compile(4, wiring, active, net, Options{})
	if snap.Epoch() != 4 {
		t.Fatalf("epoch %d", snap.Epoch())
	}
	for u := 0; u < n; u++ {
		if snap.Live(u) != active[u] {
			t.Fatalf("live[%d] = %v", u, snap.Live(u))
		}
		if !active[u] {
			if _, ok := snap.Route(u, (u+1)%n); ok {
				t.Fatalf("departed node %d routes", u)
			}
		}
	}
	g := overlayGraph(wiring, net)
	kept := 0
	for u := 0; u < n; u++ {
		for _, a := range g.Out(u) {
			if active[u] && active[a.To] {
				kept++
			}
		}
	}
	if snap.NumArcs() != kept {
		t.Fatalf("arcs %d, want %d member-to-member arcs", snap.NumArcs(), kept)
	}
}

// TestCompileGraphLinkState covers the live-node path: a link-state
// graph compiled directly, with GraphDelays as the only delay oracle.
func TestCompileGraphLinkState(t *testing.T) {
	g := graph.New(5)
	g.AddArc(0, 1, 10)
	g.AddArc(1, 2, 5)
	g.AddArc(0, 3, 2)
	g.AddArc(3, 2, 4)
	snap := CompileGraph(7, g, GraphDelays(g), Options{})
	if !snap.Live(0) || !snap.Live(2) || snap.Live(4) {
		t.Fatalf("liveness: %v %v %v", snap.Live(0), snap.Live(2), snap.Live(4))
	}
	r, ok := snap.Route(0, 2)
	if !ok || r.Cost != 6 || len(r.Path) != 3 || r.Path[1] != 3 {
		t.Fatalf("route: %+v ok=%v", r, ok)
	}
	// One-hop: no direct 0->2 announcement, so the decision must relay.
	d := snap.OneHop(0, 2)
	if d.Via != 3 || d.Cost != 6 {
		t.Fatalf("onehop: %+v", d)
	}
	// An isolated node has no finite option under a link-state oracle.
	if d := snap.OneHop(4, 2); d.Cost < graph.Inf {
		t.Fatalf("isolated source got finite decision %+v", d)
	}
}

// TestRowCacheBoundsAndSingleflight hammers one snapshot from many
// goroutines over more sources than the cache holds: the cache must
// stay bounded, answers must stay correct, and a popular source must
// not be recomputed per caller (singleflight), which we observe
// indirectly through identical row pointers.
func TestRowCacheBoundsAndSingleflight(t *testing.T) {
	const n, k, cacheRows = 120, 3, 8
	net := testNet(t, n)
	wiring := randomWiring(n, k, rand.New(rand.NewSource(13)))
	snap := Compile(0, wiring, nil, net, Options{RouteCacheRows: cacheRows})
	g := overlayGraph(wiring, net)
	refDist := make([][]float64, n)
	for src := 0; src < n; src++ {
		refDist[src], _ = graph.Dijkstra(g, src)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for q := 0; q < 500; q++ {
				src, dst := rng.Intn(n), rng.Intn(n)
				cost := snap.RouteCost(src, dst)
				if math.Float64bits(cost) != math.Float64bits(refDist[src][dst]) {
					t.Errorf("cost %d->%d = %v, want %v", src, dst, cost, refDist[src][dst])
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if size := snap.rows.size(); size > cacheRows+8 {
		t.Fatalf("cache grew to %d rows (cap %d + 8 in-flight)", size, cacheRows)
	}
	// Singleflight: two sequential gets of the same source share the row.
	a := snap.rows.get(1)
	b := snap.rows.get(1)
	if a != b {
		t.Fatal("same-source rows not shared")
	}
}
