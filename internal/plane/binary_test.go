package plane

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"

	"egoist/internal/graph"
)

// binPairs builds the test batch: valid pairs, a src==dst pair, and an
// out-of-range pair (answered in-band, status 2).
func binPairs(n int) []uint32 {
	return []uint32{
		0, uint32(n - 1),
		5, 7,
		9, 9,
		3, 0,
		uint32(n + 100), 2, // invalid src
		4, uint32(n + 5), // invalid dst
	}
}

// TestBinaryMatchesSnapshotAnswers: every binary result must carry
// exactly what the direct Snapshot API answers — costs bit-identical,
// paths element-identical, invalid pairs in-band with status 2 and the
// JSON -1 cost sentinel.
func TestBinaryMatchesSnapshotAnswers(t *testing.T) {
	srv, snap := testServer(t, 60, 4)
	h := srv.Shard(0)
	n := snap.N()
	pairs := binPairs(n)

	for _, mode := range []byte{BinModeOneHop, BinModeRoute} {
		resp, err := h.AnswerBinary(AppendBatchRequest(nil, mode, pairs), nil)
		if err != nil {
			t.Fatal(err)
		}
		epoch, results, err := DecodeBatchResponse(resp, mode, nil)
		if err != nil {
			t.Fatal(err)
		}
		if epoch != snap.Epoch() {
			t.Fatalf("mode %d: epoch %d, want %d", mode, epoch, snap.Epoch())
		}
		if len(results) != len(pairs)/2 {
			t.Fatalf("mode %d: %d results for %d pairs", mode, len(results), len(pairs)/2)
		}
		for i, res := range results {
			src, dst := int(pairs[2*i]), int(pairs[2*i+1])
			if src >= n || dst >= n {
				if res.Status != BinInvalidPair || res.Cost != -1 {
					t.Fatalf("mode %d pair %d: invalid pair answered status=%d cost=%v, want status 2 cost -1", mode, i, res.Status, res.Cost)
				}
				continue
			}
			switch mode {
			case BinModeOneHop:
				d := snap.OneHop(src, dst)
				if d.Cost < graph.Inf {
					if res.Status != BinOK || res.Cost != d.Cost || int(res.Via) != d.Via {
						t.Fatalf("onehop pair %d: got (%d, %v, via %d), snapshot says (%v, via %d)", i, res.Status, res.Cost, res.Via, d.Cost, d.Via)
					}
				} else if res.Status != BinUnreachable || res.Cost != -1 {
					t.Fatalf("onehop pair %d: unreachable answered status=%d cost=%v", i, res.Status, res.Cost)
				}
			case BinModeRoute:
				r, ok := snap.Route(src, dst)
				if !ok {
					if res.Status != BinUnreachable || res.Cost != -1 || len(res.Path) != 0 {
						t.Fatalf("route pair %d: unreachable answered status=%d cost=%v path=%v", i, res.Status, res.Cost, res.Path)
					}
					continue
				}
				if res.Status != BinOK || res.Cost != r.Cost {
					t.Fatalf("route pair %d: got (%d, %v), snapshot says %v", i, res.Status, res.Cost, r.Cost)
				}
				if len(res.Path) != len(r.Path) {
					t.Fatalf("route pair %d: path %v, snapshot says %v", i, res.Path, r.Path)
				}
				for p := range r.Path {
					if int(res.Path[p]) != r.Path[p] {
						t.Fatalf("route pair %d: path %v, snapshot says %v", i, res.Path, r.Path)
					}
				}
			}
		}
	}

	// Counter contract across both batches: onehop tallied only for the
	// 4 delivered one-hop results, routes for the 4 delivered route
	// results, failed for the 2 invalid pairs in each batch.
	onehop, routes, failed := srv.Stats()
	if onehop != 4 || routes != 4 || failed != 4 {
		t.Fatalf("Stats() = (%d, %d, %d), want (4, 4, 4)", onehop, routes, failed)
	}
}

// TestBinaryDecodeRecyclesBuffers: feeding the previous results slice
// back into DecodeBatchResponse must reuse its Path storage.
func TestBinaryDecodeRecyclesBuffers(t *testing.T) {
	srv, snap := testServer(t, 60, 4)
	h := srv.Shard(0)
	req := AppendBatchRequest(nil, BinModeRoute, []uint32{0, uint32(snap.N() - 1)})
	resp, err := h.AnswerBinary(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, results, err := DecodeBatchResponse(resp, BinModeRoute, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Status != BinOK || len(results[0].Path) == 0 {
		t.Fatalf("unexpected first decode: %+v", results)
	}
	before := &results[0].Path[0]
	_, results2, err := DecodeBatchResponse(resp, BinModeRoute, results)
	if err != nil {
		t.Fatal(err)
	}
	if &results2[0].Path[0] != before {
		t.Fatal("second decode reallocated the Path storage instead of recycling it")
	}
}

// TestBinaryMalformedRequests: short frames, bad modes, and
// count/length mismatches are protocol violations (non-nil error, no
// bytes appended), never panics or silent misparses.
func TestBinaryMalformedRequests(t *testing.T) {
	srv, _ := testServer(t, 20, 3)
	h := srv.Shard(0)
	bad := [][]byte{
		{},                 // empty
		{0, 1, 0},          // shorter than the header
		{9, 0, 0, 0, 0},    // unknown mode
		{0, 2, 0, 0, 0},    // count 2, no pairs
		{1, 1, 0, 0, 0, 1}, // truncated pair
		AppendBatchRequest(nil, 0, make([]uint32, 2*(maxBatchPairs+1))), // over cap
	}
	for i, req := range bad {
		out, err := h.AnswerBinary(req, nil)
		if err == nil {
			t.Fatalf("malformed request %d was answered", i)
		}
		if len(out) != 0 {
			t.Fatalf("malformed request %d appended %d bytes alongside the error", i, len(out))
		}
	}
	// Before the first publish: in-band batch-level error, nil error.
	empty := NewServerShards(2).Shard(0)
	resp, err := empty.AnswerBinary(AppendBatchRequest(nil, BinModeOneHop, []uint32{0, 1}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, derr := DecodeBatchResponse(resp, BinModeOneHop, nil); derr == nil || derr.Error() != ErrNoSnapshot.Error() {
		t.Fatalf("no-snapshot batch decoded to %v, want in-band %q", derr, ErrNoSnapshot)
	}
}

// TestBinaryTCPRoundTrip: the length-prefixed TCP transport end to end
// — ServeBinary + DialBinary — answers identically to the in-process
// shard API, across multiple frames on one connection.
func TestBinaryTCPRoundTrip(t *testing.T) {
	srv, snap := testServer(t, 60, 4)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go srv.ServeBinary(ln)

	client, err := DialBinary(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	n := snap.N()
	pairs := binPairs(n)
	rng := rand.New(rand.NewSource(9))
	var results []BinResult
	for frame := 0; frame < 20; frame++ {
		mode := byte(frame % 2)
		resp, err := client.Do(mode, pairs)
		if err != nil {
			t.Fatalf("frame %d: %v", frame, err)
		}
		epoch, rs, err := DecodeBatchResponse(resp, mode, results)
		if err != nil {
			t.Fatalf("frame %d: %v", frame, err)
		}
		results = rs
		if epoch != snap.Epoch() || len(rs) != len(pairs)/2 {
			t.Fatalf("frame %d: epoch %d, %d results", frame, epoch, len(rs))
		}
		src, dst := int(pairs[0]), int(pairs[1])
		if mode == BinModeOneHop && rs[0].Status == BinOK {
			if want := snap.OneHop(src, dst); rs[0].Cost != want.Cost {
				t.Fatalf("frame %d: pair (%d,%d) cost %v, snapshot says %v", frame, src, dst, rs[0].Cost, want.Cost)
			}
		}
		pairs[0], pairs[1] = uint32(rng.Intn(n)), uint32(rng.Intn(n))
	}
}

// TestBinaryHTTPRoundTrip: the same payloads over POST /routes.bin.
func TestBinaryHTTPRoundTrip(t *testing.T) {
	srv, snap := testServer(t, 60, 4)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	n := snap.N()
	req := AppendBatchRequest(nil, BinModeRoute, binPairs(n))
	resp, err := http.Post(ts.URL+"/routes.bin", "application/octet-stream", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	epoch, results, err := DecodeBatchResponse(payload, BinModeRoute, nil)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != snap.Epoch() || len(results) != len(binPairs(n))/2 {
		t.Fatalf("epoch %d, %d results", epoch, len(results))
	}
	want, _ := snap.Route(0, n-1)
	if results[0].Status != BinOK || results[0].Cost != want.Cost {
		t.Fatalf("result 0 = %+v, snapshot says cost %v", results[0], want.Cost)
	}

	// Malformed body → 400 (transport problem, not an in-band error).
	bad, err := http.Post(ts.URL+"/routes.bin", "application/octet-stream", bytes.NewReader([]byte{9, 9}))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed binary body answered %d, want 400", bad.StatusCode)
	}
}
