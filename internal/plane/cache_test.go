package plane

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// cacheSnapshot compiles a small snapshot with a row-cache cap low
// enough that the tests below can push it over.
func cacheSnapshot(t *testing.T, n, capRows int) *Snapshot {
	t.Helper()
	wiring := randomWiring(n, 4, rand.New(rand.NewSource(31)))
	return Compile(0, wiring, nil, testNet(t, n), Options{RouteCacheRows: capRows})
}

// TestRowCacheOverCapBound pins the documented transient over-cap
// bound: under G concurrent workers the cache may hold up to cap+G
// entries (in-flight rows are never evicted), but once the misses
// resolve and one more get runs eviction, the population is back at
// cap. The bound is asserted against the cache's real counters — the
// resident population is exactly misses − evictions, and every get is
// classified exactly once as hit, miss, or singleflight collapse — so
// the test watches the same signals /metrics exports instead of
// private LRU state.
func TestRowCacheOverCapBound(t *testing.T) {
	const n, capRows, g = 120, 8, 16
	snap := cacheSnapshot(t, n, capRows)
	var st cacheStats
	snap.rows.setStats(&st)

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			// Every worker walks every source (offset by w), so sources
			// are contended: concurrent gets on one source collapse onto
			// a single Dijkstra.
			for i := 0; i < n; i++ {
				snap.rows.get((w + i) % n)
				// Misses first, evictions second: evictions only grow, so
				// the estimate never exceeds the true population at the
				// time the miss counter was read.
				if held := st.misses.Load() - st.evictions.Load(); held > capRows+g {
					t.Errorf("cache held %d rows, over-cap bound is cap+G = %d", held, capRows+g)
				}
			}
		}(w)
	}
	close(start)
	wg.Wait()

	if total := st.hits.Load() + st.misses.Load() + st.collapses.Load(); total != g*n {
		t.Fatalf("hits+misses+collapses = %d, want one classification per get = %d", total, g*n)
	}

	// One more miss runs evictLocked with nothing in flight: the
	// steady-state population is the cap again (+1 transiently for the
	// in-flight row itself, which resolves before get returns... and is
	// then evictable, so bound at cap+1).
	snap.rows.get(0)
	held := st.misses.Load() - st.evictions.Load()
	if held > capRows+1 {
		t.Fatalf("counters say %d rows held after misses drained, want <= cap+1 = %d", held, capRows+1)
	}
	if got := snap.rows.size(); int64(got) != held {
		t.Fatalf("misses-evictions = %d but cache holds %d entries — counters drifted from the population", held, got)
	}
}

// TestRowCacheCollapseCounter pins the singleflight-collapse signal
// deterministically: a get that joins a row another goroutine is still
// computing is counted as a collapse — not a hit, not a miss — before
// it blocks. This is the miss-storm indicator: collapses spiking while
// misses stay flat means many clients piled onto few cold rows.
func TestRowCacheCollapseCounter(t *testing.T) {
	const n = 10
	snap := cacheSnapshot(t, n, 4)
	var st cacheStats
	c := snap.rows
	c.setStats(&st)

	// An in-flight entry, constructed by hand (open done channel).
	c.mu.Lock()
	e := &rowEntry{src: 5, done: make(chan struct{})}
	c.entries[5] = e
	c.pushFront(e)
	c.mu.Unlock()

	got := make(chan *rowEntry)
	go func() { got <- c.get(5) }()

	// The collapse is counted before the waiter blocks on the row.
	deadline := time.Now().Add(5 * time.Second)
	for st.collapses.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("collapse counter never moved while a get waited on an in-flight row")
		}
		time.Sleep(time.Millisecond)
	}

	// Resolve the row; the waiter returns it.
	c.mu.Lock()
	e.dist = make([]float64, n)
	e.parent = make([]int32, n)
	c.ready++
	c.mu.Unlock()
	close(e.done)
	if row := <-got; row != e {
		t.Fatal("waiter returned a different entry than the in-flight row")
	}
	if h, m, co := st.hits.Load(), st.misses.Load(), st.collapses.Load(); h != 0 || m != 0 || co != 1 {
		t.Fatalf("hits=%d misses=%d collapses=%d, want 0/0/1", h, m, co)
	}

	// A repeat get on the now-computed row is a plain hit.
	c.get(5)
	if h := st.hits.Load(); h != 1 {
		t.Fatalf("hits = %d after a warm get, want 1", h)
	}
}

// TestCarryIntoPreservesLRUOrder: carrying rows into a fresh cache must
// keep their recency order, or the first evictions in the new epoch
// would drop the hottest rows. Touch order in the source cache is
// 0..9 with 3 re-touched last; after two carries and an over-cap burst
// in the destination, 3 must still be resident and 4 (the coldest
// survivor boundary) evicted first.
func TestCarryIntoPreservesLRUOrder(t *testing.T) {
	const n = 60
	snap := cacheSnapshot(t, n, 32)
	for src := 0; src < 10; src++ {
		snap.rows.get(src)
	}
	snap.rows.get(3) // most recent

	keepAll := func(int, []float64, []int32) bool { return true }

	// Carry twice: order must survive chained carries (Patch chains do
	// exactly this every epoch).
	mid := newRowCache(snap, 32)
	snap.rows.carryInto(mid, keepAll)
	dst := newRowCache(snap, 10)
	mid.carryInto(dst, keepAll)

	if dst.size() != 10 {
		t.Fatalf("carried %d rows, want 10", dst.size())
	}
	// Expected recency, most recent first: 3, 9, 8, 7, 6, 5, 4, 2, 1, 0.
	want := []int{3, 9, 8, 7, 6, 5, 4, 2, 1, 0}
	i := 0
	dst.mu.Lock()
	for e := dst.head; e != nil; e = e.next {
		if i >= len(want) || e.src != want[i] {
			dst.mu.Unlock()
			t.Fatalf("LRU position %d holds src %d, want %d", i, e.src, want[i])
		}
		i++
	}
	dst.mu.Unlock()

	// Seed one more row into the full cache: the coldest carried row
	// (src 0) must be the one evicted.
	dst.seed(50, make([]float64, n), make([]int32, n))
	dst.mu.Lock()
	_, kept3 := dst.entries[3]
	_, kept0 := dst.entries[0]
	dst.mu.Unlock()
	if !kept3 || kept0 {
		t.Fatalf("after over-cap seed: src 3 resident=%v (want true), src 0 resident=%v (want false)", kept3, kept0)
	}
}

// TestEvictionSkipsInFlightRows: an entry whose Dijkstra is still
// running must never be evicted — its waiters hold the entry and would
// otherwise block forever on a row the cache no longer owns. The test
// constructs in-flight entries by hand (open done channels) and drives
// eviction past them.
func TestEvictionSkipsInFlightRows(t *testing.T) {
	const n = 40
	snap := cacheSnapshot(t, n, 2)
	c := snap.rows

	// Two in-flight entries at the LRU tail.
	c.mu.Lock()
	for src := 30; src < 32; src++ {
		e := &rowEntry{src: src, done: make(chan struct{})}
		c.entries[src] = e
		c.pushFront(e)
	}
	c.mu.Unlock()

	// Computed rows push the population far over cap; every eviction
	// pass walks the tail, where the in-flight entries sit.
	for src := 0; src < 8; src++ {
		c.get(src)
	}

	c.mu.Lock()
	for src := 30; src < 32; src++ {
		if _, ok := c.entries[src]; !ok {
			c.mu.Unlock()
			t.Fatalf("in-flight row %d was evicted", src)
		}
	}
	inFlight := 2
	if len(c.entries) > c.cap+inFlight {
		c.mu.Unlock()
		t.Fatalf("cache holds %d entries, want <= cap+inflight = %d", len(c.entries), c.cap+inFlight)
	}
	c.mu.Unlock()

	// Resolve them; the next get may now evict them like any row.
	c.mu.Lock()
	for src := 30; src < 32; src++ {
		e := c.entries[src]
		e.dist = make([]float64, n)
		e.parent = make([]int32, n)
		c.ready++
		close(e.done)
	}
	c.mu.Unlock()
	c.get(9)
	if got := c.size(); got > c.cap+1 {
		t.Fatalf("cache holds %d entries after rows resolved, want <= cap+1 = %d", got, c.cap+1)
	}
}

// TestShardViewsShareRowStorage: the per-shard caches of a sharded
// server are views — a row computed in the base snapshot is seeded into
// every shard by reference, not copied, and answers through a view are
// identical to the base snapshot's.
func TestShardViewsShareRowStorage(t *testing.T) {
	const n = 80
	snap := cacheSnapshot(t, n, 32)
	baseRow := snap.rows.get(5)

	srv := NewServerShards(4)
	srv.Publish(snap)
	for i := 0; i < 4; i++ {
		view := srv.Shard(i).Current()
		if view == snap {
			t.Fatalf("shard %d serves the base snapshot, want a private view", i)
		}
		row := view.rows.get(5)
		if &row.dist[0] != &baseRow.dist[0] {
			t.Fatalf("shard %d copied row 5 instead of sharing it", i)
		}
		for dst := 0; dst < n; dst++ {
			want := snap.RouteCost(5, dst)
			if got := view.RouteCost(5, dst); got != want {
				t.Fatalf("shard %d RouteCost(5,%d) = %v, base says %v", i, dst, got, want)
			}
		}
	}
	// Misses in one view must not leak into the others.
	srv.Shard(0).Current().rows.get(17)
	view1 := srv.Shard(1).Current()
	view1.mustPair(17, 0)
	view1.rows.mu.Lock()
	_, leaked := view1.rows.entries[17]
	view1.rows.mu.Unlock()
	if leaked {
		t.Fatal("a miss in shard 0's cache appeared in shard 1's")
	}
}

// TestPublishWarmsHotRows: per-source route-query counters drive the
// publish-time precompute — after re-publishing, the top-K queried
// sources are resident in every shard's cache before any query runs.
func TestPublishWarmsHotRows(t *testing.T) {
	const n = 80
	snap := cacheSnapshot(t, n, 64)
	srv := NewServerShards(2)
	srv.SetHotRows(4)
	srv.Publish(snap)

	// Query sources 10..15 through shard handles with a skew: 10 and 11
	// hottest.
	for i, src := range []int{10, 10, 10, 11, 11, 12, 13, 14, 15} {
		if _, _, err := srv.Shard(i%2).RouteCost(src, 0); err != nil {
			t.Fatal(err)
		}
	}

	next := Compile(1, randomWiring(n, 4, rand.New(rand.NewSource(31))), nil, testNet(t, n), Options{})
	srv.Publish(next)

	for i := 0; i < 2; i++ {
		view := srv.Shard(i).Current()
		view.rows.mu.Lock()
		resident := len(view.rows.entries)
		_, hot10 := view.rows.entries[10]
		_, hot11 := view.rows.entries[11]
		view.rows.mu.Unlock()
		if !hot10 || !hot11 {
			t.Fatalf("shard %d: hottest sources resident = (10:%v, 11:%v), want both", i, hot10, hot11)
		}
		if resident != 4 {
			t.Fatalf("shard %d holds %d precomputed rows, want hot-row budget 4", i, resident)
		}
	}

	// Warmed rows answer identically to cold computation.
	cold := Compile(1, randomWiring(n, 4, rand.New(rand.NewSource(31))), nil, testNet(t, n), Options{})
	for dst := 0; dst < n; dst++ {
		want := cold.RouteCost(10, dst)
		if got := srv.Shard(0).Current().RouteCost(10, dst); got != want {
			t.Fatalf("warmed RouteCost(10,%d) = %v, cold compile says %v", dst, got, want)
		}
	}
}
