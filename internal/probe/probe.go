// Package probe provides the measurement tools an EGOIST node uses to
// estimate link costs (Sect. 4.1): an active pinger (RTT/2 with noise,
// EWMA-smoothed), a pathChirp-like available-bandwidth estimator, and a
// local load monitor. Every probe is charged to an overhead Accountant so
// the harness can reproduce the protocol-overhead numbers of Sect. 4.3.
package probe

import (
	"math"
	"math/rand"
	"sync"
)

// Accountant tallies measurement traffic injected into the network, in
// bits, so experiments can report bps overheads like Sect. 4.3.
type Accountant struct {
	mu   sync.Mutex
	bits map[string]float64
}

// NewAccountant returns an empty accountant.
func NewAccountant() *Accountant {
	return &Accountant{bits: make(map[string]float64)}
}

// Charge adds bits of traffic under a category ("ping", "coord", "chirp",
// "lsa", "heartbeat").
func (a *Accountant) Charge(category string, bits float64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.bits[category] += bits
	a.mu.Unlock()
}

// Total returns the bits charged to a category.
func (a *Accountant) Total(category string) float64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.bits[category]
}

// Categories returns the set of charged categories.
func (a *Accountant) Categories() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.bits))
	for c := range a.bits {
		out = append(out, c)
	}
	return out
}

// PingBits is the size of one ICMP ECHO request/reply exchange per the
// paper: 320 bits.
const PingBits = 320

// CoordQueryBits returns the size of one coordinate-system query for an
// n-node overlay per the paper: ≈ 320 + 32·n bits.
func CoordQueryBits(n int) float64 { return 320 + 32*float64(n) }

// Pinger estimates one-way delays by active probing: each Measure samples
// the true RTT (2× one-way delay) with measurement noise, divides by two,
// and folds the sample into a per-pair EWMA, exactly like the ping-based
// estimator of Sect. 4.1.
type Pinger struct {
	mu      sync.Mutex
	rng     *rand.Rand
	noise   float64 // relative stddev of a single RTT sample
	alpha   float64 // EWMA weight of the newest sample
	ewma    map[[2]int]float64
	account *Accountant
}

// NewPinger creates a pinger with the given sample noise (e.g. 0.05 for
// 5 % RTT jitter) and EWMA weight alpha in (0,1].
func NewPinger(seed int64, noise, alpha float64, account *Accountant) *Pinger {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	return &Pinger{
		rng:     rand.New(rand.NewSource(seed)),
		noise:   noise,
		alpha:   alpha,
		ewma:    make(map[[2]int]float64),
		account: account,
	}
}

// Measure probes the pair (i,j) whose true one-way delay is trueDelayMS and
// returns the updated smoothed estimate.
func (p *Pinger) Measure(i, j int, trueDelayMS float64) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.account.Charge("ping", PingBits)
	rtt := 2 * trueDelayMS * (1 + p.rng.NormFloat64()*p.noise)
	if rtt < 0.01 {
		rtt = 0.01
	}
	sample := rtt / 2
	key := [2]int{i, j}
	if prev, ok := p.ewma[key]; ok {
		sample = p.alpha*sample + (1-p.alpha)*prev
	}
	p.ewma[key] = sample
	return sample
}

// Estimate returns the current smoothed estimate for (i,j) and whether any
// sample exists.
func (p *Pinger) Estimate(i, j int) (float64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.ewma[[2]int{i, j}]
	return v, ok
}

// Forget drops the EWMA state for (i,j), as when a link is torn down.
func (p *Pinger) Forget(i, j int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.ewma, [2]int{i, j})
}

// BandwidthEstimator is the pathChirp stand-in: it reports the true
// available bandwidth of a pair with bounded relative error, and charges
// the accountant the paper's ≈2 % probing budget.
type BandwidthEstimator struct {
	mu      sync.Mutex
	rng     *rand.Rand
	relErr  float64
	account *Accountant
}

// NewBandwidthEstimator creates an estimator with the given relative error
// (e.g. 0.05).
func NewBandwidthEstimator(seed int64, relErr float64, account *Accountant) *BandwidthEstimator {
	return &BandwidthEstimator{
		rng:     rand.New(rand.NewSource(seed)),
		relErr:  relErr,
		account: account,
	}
}

// Measure estimates available bandwidth (Mbps) given the true value. The
// probing cost charged is 2 % of the measured bandwidth over a nominal
// 1-second chirp train, in bits.
func (b *BandwidthEstimator) Measure(trueMbps float64) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	est := trueMbps * (1 + b.rng.NormFloat64()*b.relErr)
	if est < 0.01 {
		est = 0.01
	}
	b.account.Charge("chirp", 0.02*trueMbps*1e6)
	return est
}

// LoadMonitor is the local load sensor: it applies the paper's
// exponentially-weighted moving average (computed over a 1-minute interval)
// to raw loadavg readings. Local measurement injects no network traffic.
type LoadMonitor struct {
	mu    sync.Mutex
	alpha float64
	ewma  float64
	init  bool
}

// NewLoadMonitor creates a monitor with EWMA weight alpha in (0,1].
func NewLoadMonitor(alpha float64) *LoadMonitor {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	return &LoadMonitor{alpha: alpha}
}

// Observe folds a raw load reading into the moving average and returns the
// smoothed value.
func (m *LoadMonitor) Observe(raw float64) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.init {
		m.ewma = raw
		m.init = true
	} else {
		m.ewma = m.alpha*raw + (1-m.alpha)*m.ewma
	}
	return m.ewma
}

// Value returns the current smoothed load (0 before any observation).
func (m *LoadMonitor) Value() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ewma
}

// RelativeError returns |est-truth|/truth, a helper shared by tests.
func RelativeError(est, truth float64) float64 {
	if truth == 0 {
		return math.Abs(est)
	}
	return math.Abs(est-truth) / math.Abs(truth)
}
