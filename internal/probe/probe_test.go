package probe

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestPingerConvergesToTruth(t *testing.T) {
	acc := NewAccountant()
	p := NewPinger(1, 0.05, 0.3, acc)
	var last float64
	for i := 0; i < 200; i++ {
		last = p.Measure(0, 1, 40)
	}
	if RelativeError(last, 40) > 0.1 {
		t.Fatalf("estimate %v after 200 samples, want within 10%% of 40", last)
	}
}

func TestPingerChargesAccountant(t *testing.T) {
	acc := NewAccountant()
	p := NewPinger(1, 0.05, 0.3, acc)
	for i := 0; i < 10; i++ {
		p.Measure(0, 1, 10)
	}
	if got := acc.Total("ping"); got != 10*PingBits {
		t.Fatalf("charged %v bits, want %v", got, 10*PingBits)
	}
}

func TestPingerEstimateLifecycle(t *testing.T) {
	p := NewPinger(1, 0, 1, nil)
	if _, ok := p.Estimate(0, 1); ok {
		t.Fatal("estimate exists before measurement")
	}
	p.Measure(0, 1, 25)
	if v, ok := p.Estimate(0, 1); !ok || math.Abs(v-25) > 1e-9 {
		t.Fatalf("estimate = %v,%v, want 25,true (zero noise, alpha=1)", v, ok)
	}
	p.Forget(0, 1)
	if _, ok := p.Estimate(0, 1); ok {
		t.Fatal("estimate survives Forget")
	}
}

func TestPingerDirectionalKeys(t *testing.T) {
	p := NewPinger(1, 0, 1, nil)
	p.Measure(0, 1, 10)
	if _, ok := p.Estimate(1, 0); ok {
		t.Fatal("reverse direction should have no estimate")
	}
}

func TestPingerNeverNegative(t *testing.T) {
	f := func(seed int64, d float64) bool {
		d = math.Abs(d)
		if math.IsNaN(d) || math.IsInf(d, 0) {
			return true
		}
		p := NewPinger(seed, 0.5, 0.5, nil)
		for i := 0; i < 20; i++ {
			if p.Measure(0, 1, d) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBandwidthEstimatorAccuracy(t *testing.T) {
	acc := NewAccountant()
	b := NewBandwidthEstimator(2, 0.05, acc)
	sum := 0.0
	const rounds = 500
	for i := 0; i < rounds; i++ {
		sum += b.Measure(100)
	}
	if avg := sum / rounds; RelativeError(avg, 100) > 0.05 {
		t.Fatalf("mean estimate %v, want within 5%% of 100", avg)
	}
	if acc.Total("chirp") <= 0 {
		t.Fatal("chirp probing not charged")
	}
}

func TestBandwidthEstimatorPositive(t *testing.T) {
	b := NewBandwidthEstimator(3, 2.0, nil) // absurd noise
	for i := 0; i < 100; i++ {
		if b.Measure(1) <= 0 {
			t.Fatal("bandwidth estimate must stay positive")
		}
	}
}

func TestLoadMonitorEWMA(t *testing.T) {
	m := NewLoadMonitor(0.5)
	if m.Value() != 0 {
		t.Fatal("initial value should be 0")
	}
	m.Observe(4)
	if m.Value() != 4 {
		t.Fatalf("first observation should seed EWMA, got %v", m.Value())
	}
	m.Observe(0)
	if m.Value() != 2 {
		t.Fatalf("EWMA after 4,0 with alpha .5 = %v, want 2", m.Value())
	}
}

func TestLoadMonitorBadAlphaDefaults(t *testing.T) {
	m := NewLoadMonitor(-3)
	m.Observe(10)
	m.Observe(0)
	if v := m.Value(); v <= 0 || v >= 10 {
		t.Fatalf("default alpha should smooth: got %v", v)
	}
}

func TestCoordQueryBits(t *testing.T) {
	if got := CoordQueryBits(50); got != 320+32*50 {
		t.Fatalf("CoordQueryBits(50) = %v", got)
	}
}

func TestAccountantConcurrent(t *testing.T) {
	acc := NewAccountant()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				acc.Charge("x", 1)
			}
		}()
	}
	wg.Wait()
	if got := acc.Total("x"); got != 8000 {
		t.Fatalf("Total = %v, want 8000", got)
	}
	if cats := acc.Categories(); len(cats) != 1 || cats[0] != "x" {
		t.Fatalf("Categories = %v", cats)
	}
}

func TestNilAccountantSafe(t *testing.T) {
	var acc *Accountant
	acc.Charge("x", 1) // must not panic
	if acc.Total("x") != 0 {
		t.Fatal("nil accountant total should be 0")
	}
}
