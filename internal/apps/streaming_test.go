package apps

import (
	"testing"

	"egoist/internal/topology"
)

func streamCfg(n, k int) StreamingConfig {
	m := topology.RingLattice(n, 5)
	return StreamingConfig{
		Wiring:     ringWiring(n, k),
		Delay:      func(i, j int) float64 { return m[i][j] },
		Copies:     2,
		DeadlineMS: 100,
		LossPerHop: 0.05,
		JitterFrac: 0.1,
		Packets:    300,
		Seed:       1,
	}
}

func TestStreamValidation(t *testing.T) {
	cfg := streamCfg(8, 2)
	if _, err := Stream(cfg, 0, 0); err == nil {
		t.Fatal("same pair accepted")
	}
	bad := cfg
	bad.Copies = 0
	if _, err := Stream(bad, 0, 3); err == nil {
		t.Fatal("zero copies accepted")
	}
	bad2 := cfg
	bad2.Delay = nil
	if _, err := Stream(bad2, 0, 3); err == nil {
		t.Fatal("nil delay accepted")
	}
}

func TestStreamDeliversOnCleanNetwork(t *testing.T) {
	cfg := streamCfg(8, 2)
	cfg.LossPerHop = 0
	cfg.JitterFrac = 0
	cfg.DeadlineMS = 1e6
	res, err := Stream(cfg, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.InTime != 1 || res.Lost != 0 {
		t.Fatalf("clean network: %+v", res)
	}
	if res.PathsUsed < 2 {
		t.Fatalf("found %d disjoint paths on k=2 ring, want 2", res.PathsUsed)
	}
}

func TestStreamImpossibleDeadline(t *testing.T) {
	cfg := streamCfg(8, 2)
	cfg.DeadlineMS = 0.0001
	res, err := Stream(cfg, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.InTime != 0 {
		t.Fatalf("in-time fraction %v with an impossible deadline", res.InTime)
	}
}

func TestStreamRedundancyBeatsLoss(t *testing.T) {
	// With heavy loss, more copies should raise in-time delivery.
	cfg := streamCfg(10, 3)
	cfg.LossPerHop = 0.25
	cfg.DeadlineMS = 1e6
	cfg.Packets = 800

	one := cfg
	one.Copies = 1
	r1, err := Stream(one, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	three := cfg
	three.Copies = 3
	r3, err := Stream(three, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r3.InTime <= r1.InTime {
		t.Fatalf("redundancy did not help: 1 copy %.2f vs 3 copies %.2f", r1.InTime, r3.InTime)
	}
	if r3.Lost >= r1.Lost {
		t.Fatalf("loss did not shrink: %.2f vs %.2f", r1.Lost, r3.Lost)
	}
}

func TestStreamSweepIncreasing(t *testing.T) {
	cfg := streamCfg(12, 3)
	cfg.LossPerHop = 0.2
	cfg.DeadlineMS = 1e6
	curve, err := StreamSweep(cfg, 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 3 {
		t.Fatalf("curve %v", curve)
	}
	if curve[2] <= curve[0] {
		t.Fatalf("delivery did not improve with copies: %v", curve)
	}
}

func TestDisjointPathSetActuallyDisjoint(t *testing.T) {
	cfg := streamCfg(10, 3)
	paths := disjointPathSet(cfg.Wiring, cfg.Delay, 0, 5, 3)
	seen := map[int]bool{}
	for _, p := range paths {
		if p[0] != 0 || p[len(p)-1] != 5 {
			t.Fatalf("path %v has wrong endpoints", p)
		}
		for _, v := range p[1 : len(p)-1] {
			if seen[v] {
				t.Fatalf("intermediate node %d shared between paths", v)
			}
			seen[v] = true
		}
	}
}
