package apps

import (
	"math"
	"testing"

	"egoist/internal/underlay"
)

func testUnderlay(t *testing.T, n int) *underlay.Underlay {
	t.Helper()
	u, err := underlay.New(underlay.Config{N: n, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// ringWiring wires node i to its k ring successors.
func ringWiring(n, k int) [][]int {
	w := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 1; j <= k; j++ {
			w[i] = append(w[i], (i+j)%n)
		}
	}
	return w
}

func TestMultipathValidation(t *testing.T) {
	u := testUnderlay(t, 10)
	w := ringWiring(10, 2)
	if _, err := Multipath(u, w, 0, 0); err == nil {
		t.Fatal("same src/dst accepted")
	}
	if _, err := Multipath(u, w, -1, 3); err == nil {
		t.Fatal("negative src accepted")
	}
	if _, err := Multipath(u, w[:5], 0, 3); err == nil {
		t.Fatal("short wiring accepted")
	}
}

func TestMultipathGainAtLeastOne(t *testing.T) {
	u := testUnderlay(t, 16)
	w := ringWiring(16, 3)
	for d := 1; d < 16; d++ {
		res, err := Multipath(u, w, 0, d)
		if err != nil {
			t.Fatal(err)
		}
		if res.Direct <= 0 {
			t.Fatalf("direct rate to %d = %v", d, res.Direct)
		}
		if g := res.Gain(); g < 1-1e-9 || math.IsNaN(g) {
			t.Fatalf("gain to %d = %v, want >= 1", d, g)
		}
		if res.MaxFlow < res.Parallel-1e-9 {
			t.Fatalf("max-flow %v below parallel %v", res.MaxFlow, res.Parallel)
		}
	}
}

func TestMultipathMoreNeighborsMoreGain(t *testing.T) {
	u := testUnderlay(t, 20)
	sum := func(k int) float64 {
		w := ringWiring(20, k)
		stats, _, err := SweepMultipathGain(u, w)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Mean
	}
	if g2, g6 := sum(2), sum(6); g6 < g2 {
		t.Fatalf("gain with k=6 (%.2f) below k=2 (%.2f)", g6, g2)
	}
}

func TestDisjointPathsRing(t *testing.T) {
	// Simple ring k=1: exactly one path between any pair.
	w := ringWiring(6, 1)
	p, err := DisjointPaths(w, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Fatalf("ring disjoint paths = %d, want 1", p)
	}
	// k=2 ring (chords): 2 disjoint paths.
	w2 := ringWiring(6, 2)
	p2, err := DisjointPaths(w2, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != 2 {
		t.Fatalf("k=2 ring disjoint paths = %d, want 2", p2)
	}
}

func TestDisjointPathsGrowWithK(t *testing.T) {
	stats := func(k int) float64 {
		s, err := SweepDisjointPaths(ringWiring(12, k))
		if err != nil {
			t.Fatal(err)
		}
		return s.Mean
	}
	if s2, s4 := stats(2), stats(4); s4 <= s2 {
		t.Fatalf("disjoint paths did not grow with k: k=2 %.2f k=4 %.2f", s2, s4)
	}
}

func TestDisjointPathsValidation(t *testing.T) {
	w := ringWiring(5, 1)
	if _, err := DisjointPaths(w, 2, 2); err == nil {
		t.Fatal("same pair accepted")
	}
	if _, err := DisjointPaths(w, 0, 9); err == nil {
		t.Fatal("out of range accepted")
	}
}

func TestSweepStatsShape(t *testing.T) {
	u := testUnderlay(t, 10)
	par, mf, err := SweepMultipathGain(u, ringWiring(10, 2))
	if err != nil {
		t.Fatal(err)
	}
	if par.N != 90 || mf.N != 90 {
		t.Fatalf("pair counts %d/%d, want 90", par.N, mf.N)
	}
	if par.Mean < 1 || mf.Mean < par.Mean-1e-9 {
		t.Fatalf("means parallel %.2f maxflow %.2f violate ordering", par.Mean, mf.Mean)
	}
	if par.Min > par.Mean || par.Max < par.Mean {
		t.Fatalf("min/mean/max inconsistent: %+v", par)
	}
}
