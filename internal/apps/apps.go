// Package apps implements the two applications of Sect. 6 that use EGOIST
// as a redirection stepping-stone:
//
//   - multipath file transfer: a source opens up to k parallel sessions to
//     a target, each redirected through a different first-hop overlay
//     neighbor, to escape per-session rate caps at AS peering points
//     (Fig. 9/10);
//   - real-time traffic: counting vertex-disjoint overlay paths available
//     for redundant transmission (Fig. 11).
package apps

import (
	"fmt"
	"math"

	"egoist/internal/graph"
	"egoist/internal/underlay"
)

// MultipathResult reports the achievable rates between one source-target
// pair.
type MultipathResult struct {
	// Direct is the single-session rate over the native IP path.
	Direct float64
	// Parallel is the aggregate rate of parallel sessions redirected
	// through the source's first-hop overlay neighbors (one session each).
	Parallel float64
	// MaxFlow is the theoretical bound when every peer allows multipath
	// redirection: the max-flow from source to target over the overlay.
	MaxFlow float64
}

// Gain returns Parallel/Direct, the paper's "available bandwidth gain".
func (r MultipathResult) Gain() float64 {
	if r.Direct == 0 {
		return math.NaN()
	}
	return r.Parallel / r.Direct
}

// MaxGain returns MaxFlow/Direct.
func (r MultipathResult) MaxGain() float64 {
	if r.Direct == 0 {
		return math.NaN()
	}
	return r.MaxFlow / r.Direct
}

// Multipath evaluates the multipath transfer application for a
// source-target pair over an overlay wiring. u supplies session caps and
// available bandwidths; wiring[i] lists i's overlay neighbors.
//
// Each of the source's first-hop neighbors carries at most one session
// whose rate is limited by (a) the session cap at the source's peering
// point toward that neighbor, (b) the available bandwidth of the overlay
// hop, and (c) the bottleneck of the remaining overlay path from the
// neighbor to the target.
func Multipath(u *underlay.Underlay, wiring [][]int, src, dst int) (MultipathResult, error) {
	n := u.N()
	if src < 0 || src >= n || dst < 0 || dst >= n || src == dst {
		return MultipathResult{}, fmt.Errorf("apps: bad pair (%d,%d)", src, dst)
	}
	if len(wiring) != n {
		return MultipathResult{}, fmt.Errorf("apps: wiring has %d nodes, want %d", len(wiring), n)
	}
	g := bwGraph(u, wiring)

	res := MultipathResult{
		Direct: math.Min(u.AvailBW(src, dst), u.PeeringSessionCap(src, dst)),
	}

	// Parallel sessions: one per first-hop neighbor. A session through
	// neighbor w gets min(cap(src,w), bw(src,w), widest(w->dst) in the
	// residual overlay without src).
	resid := g.WithoutNode(src)
	for _, w := range wiring[src] {
		var hop2 float64
		if w == dst {
			hop2 = math.Inf(1)
		} else {
			widest, _ := graph.Widest(resid, w)
			hop2 = widest[dst]
		}
		rate := math.Min(u.PeeringSessionCap(src, w), math.Min(u.AvailBW(src, w), hop2))
		if rate > 0 && !math.IsInf(rate, 1) {
			res.Parallel += rate
		} else if math.IsInf(rate, 1) {
			res.Parallel += u.PeeringSessionCap(src, w)
		}
	}
	// A source that may also use the direct path keeps its own session.
	res.Parallel = math.Max(res.Parallel, res.Direct)

	res.MaxFlow = graph.MaxFlow(g, src, dst)
	if res.MaxFlow < res.Parallel {
		res.MaxFlow = res.Parallel
	}
	return res, nil
}

// bwGraph builds the overlay graph whose edge capacities are the session-
// capped available bandwidths of established links.
func bwGraph(u *underlay.Underlay, wiring [][]int) *graph.Digraph {
	g := graph.New(u.N())
	for i, ws := range wiring {
		for _, j := range ws {
			capij := math.Min(u.AvailBW(i, j), u.PeeringSessionCap(i, j))
			g.AddArc(i, j, capij)
		}
	}
	return g
}

// DisjointPaths counts the vertex-disjoint overlay paths from src to dst
// over the wiring — the redundancy available to a real-time application
// sending duplicate streams (Fig. 11).
func DisjointPaths(wiring [][]int, src, dst int) (int, error) {
	n := len(wiring)
	if src < 0 || src >= n || dst < 0 || dst >= n || src == dst {
		return 0, fmt.Errorf("apps: bad pair (%d,%d)", src, dst)
	}
	g := graph.New(n)
	for i, ws := range wiring {
		for _, j := range ws {
			g.AddArc(i, j, 1)
		}
	}
	return graph.VertexDisjointPaths(g, src, dst), nil
}

// PairStats aggregates an application metric over all source-target pairs.
type PairStats struct {
	Mean float64
	Min  float64
	Max  float64
	N    int
}

// SweepMultipathGain runs Multipath over every ordered pair and returns
// statistics of the parallel-session gain and of the max-flow gain.
func SweepMultipathGain(u *underlay.Underlay, wiring [][]int) (parallel, maxflow PairStats, err error) {
	parallel.Min, maxflow.Min = math.Inf(1), math.Inf(1)
	n := u.N()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			res, e := Multipath(u, wiring, s, d)
			if e != nil {
				return parallel, maxflow, e
			}
			g, mg := res.Gain(), res.MaxGain()
			if math.IsNaN(g) || math.IsNaN(mg) {
				continue
			}
			parallel = parallel.fold(g)
			maxflow = maxflow.fold(mg)
		}
	}
	parallel.finish()
	maxflow.finish()
	return parallel, maxflow, nil
}

// SweepDisjointPaths averages the disjoint-path count over all pairs.
func SweepDisjointPaths(wiring [][]int) (PairStats, error) {
	stats := PairStats{Min: math.Inf(1)}
	n := len(wiring)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			p, err := DisjointPaths(wiring, s, d)
			if err != nil {
				return stats, err
			}
			stats = stats.fold(float64(p))
		}
	}
	stats.finish()
	return stats, nil
}

func (s PairStats) fold(v float64) PairStats {
	s.Mean += v
	if v < s.Min {
		s.Min = v
	}
	if v > s.Max {
		s.Max = v
	}
	s.N++
	return s
}

func (s *PairStats) finish() {
	if s.N > 0 {
		s.Mean /= float64(s.N)
	} else {
		s.Mean = math.NaN()
		s.Min = math.NaN()
	}
}
