package apps

import (
	"fmt"
	"math/rand"

	"egoist/internal/graph"
)

// StreamingConfig parameterizes the real-time traffic experiment of
// Sect. 6.2: a source duplicates every packet over up to Copies
// vertex-disjoint overlay paths; a packet is useful only if at least one
// copy arrives before the playout deadline, surviving per-hop loss and
// jitter.
type StreamingConfig struct {
	// Wiring is the overlay adjacency (from a delay-metric EGOIST run).
	Wiring [][]int
	// Delay returns the one-way delay of overlay link (i,j) in ms.
	Delay func(i, j int) float64
	// Copies bounds how many disjoint paths carry duplicates (<= k).
	Copies int
	// DeadlineMS is the playout deadline.
	DeadlineMS float64
	// LossPerHop is the independent per-overlay-hop loss probability.
	LossPerHop float64
	// JitterFrac is the relative stddev of per-hop delay jitter.
	JitterFrac float64
	// Packets is the number of simulated packets per pair (default 200).
	Packets int
	// Seed drives the loss/jitter randomness.
	Seed int64
}

// StreamingResult reports delivery quality for one source-target pair.
type StreamingResult struct {
	// PathsUsed is the number of vertex-disjoint paths actually found.
	PathsUsed int
	// InTime is the fraction of packets with >= 1 copy before deadline.
	InTime float64
	// Lost is the fraction of packets where every copy was dropped.
	Lost float64
}

// Stream simulates duplicated transmission from src to dst.
func Stream(cfg StreamingConfig, src, dst int) (StreamingResult, error) {
	n := len(cfg.Wiring)
	if src < 0 || src >= n || dst < 0 || dst >= n || src == dst {
		return StreamingResult{}, fmt.Errorf("apps: bad pair (%d,%d)", src, dst)
	}
	if cfg.Copies < 1 {
		return StreamingResult{}, fmt.Errorf("apps: need >= 1 copy")
	}
	if cfg.Delay == nil {
		return StreamingResult{}, fmt.Errorf("apps: missing delay function")
	}
	packets := cfg.Packets
	if packets == 0 {
		packets = 200
	}
	paths := disjointPathSet(cfg.Wiring, cfg.Delay, src, dst, cfg.Copies)
	if len(paths) == 0 {
		return StreamingResult{PathsUsed: 0, InTime: 0, Lost: 1}, nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := StreamingResult{PathsUsed: len(paths)}
	inTime, lost := 0, 0
	for p := 0; p < packets; p++ {
		anyArrived, anyInTime := false, false
		for _, path := range paths {
			arrived := true
			delay := 0.0
			for h := 0; h+1 < len(path); h++ {
				if rng.Float64() < cfg.LossPerHop {
					arrived = false
					break
				}
				hop := cfg.Delay(path[h], path[h+1])
				delay += hop * (1 + rng.NormFloat64()*cfg.JitterFrac)
			}
			if arrived {
				anyArrived = true
				if delay <= cfg.DeadlineMS {
					anyInTime = true
					break
				}
			}
		}
		if anyInTime {
			inTime++
		}
		if !anyArrived {
			lost++
		}
	}
	res.InTime = float64(inTime) / float64(packets)
	res.Lost = float64(lost) / float64(packets)
	return res, nil
}

// disjointPathSet extracts up to m vertex-disjoint src->dst paths, cheapest
// first: repeatedly take the shortest path and remove its intermediate
// nodes. (Greedy, not max-flow optimal, matching what a streaming
// application can discover online.)
func disjointPathSet(wiring [][]int, delay func(i, j int) float64, src, dst, m int) [][]int {
	n := len(wiring)
	g := graph.New(n)
	for i, ws := range wiring {
		for _, j := range ws {
			g.AddArc(i, j, delay(i, j))
		}
	}
	var paths [][]int
	for len(paths) < m {
		_, parent := graph.Dijkstra(g, src)
		path := graph.PathTo(parent, src, dst)
		if path == nil {
			break
		}
		paths = append(paths, path)
		for _, v := range path {
			if v != src && v != dst {
				g.ClearNode(v)
			}
		}
		// Direct edge may remain; remove it so the next path differs.
		g.RemoveArc(src, dst)
	}
	return paths
}

// StreamSweep averages Stream over sampled pairs for each copy count
// 1..maxCopies, returning InTime fractions — the quality-vs-redundancy
// curve of the Sect. 6.2 application.
func StreamSweep(cfg StreamingConfig, maxCopies, pairs int) ([]float64, error) {
	n := len(cfg.Wiring)
	if n < 2 {
		return nil, fmt.Errorf("apps: overlay too small")
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	type pair struct{ s, d int }
	var ps []pair
	for len(ps) < pairs {
		s, d := rng.Intn(n), rng.Intn(n)
		if s != d {
			ps = append(ps, pair{s, d})
		}
	}
	out := make([]float64, 0, maxCopies)
	for copies := 1; copies <= maxCopies; copies++ {
		c := cfg
		c.Copies = copies
		total := 0.0
		for i, p := range ps {
			c.Seed = cfg.Seed + int64(i)*31
			r, err := Stream(c, p.s, p.d)
			if err != nil {
				return nil, err
			}
			total += r.InTime
		}
		out = append(out, total/float64(len(ps)))
	}
	return out, nil
}
