// Package par provides the deterministic worker pool shared by the
// simulator and the experiment harness. Work items are independent and
// identified by index; callers merge results by writing each item's output
// into its own slot, so the outcome is identical for any worker count —
// parallelism changes wall-clock time, never results.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a workers knob: values <= 0 select runtime.NumCPU().
func Workers(w int) int {
	if w <= 0 {
		return runtime.NumCPU()
	}
	return w
}

// Do runs fn(worker, i) for every i in [0, n), distributing items over up
// to workers goroutines. The worker argument is a dense id in [0, W) that
// lets callers maintain per-worker scratch state; each worker processes
// items one at a time, so fn invocations sharing a worker id never overlap.
// With workers <= 1 (or a single item) everything runs inline on the
// calling goroutine. Do returns when all items are done.
func Do(n, workers int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for worker := 0; worker < w; worker++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(worker)
	}
	wg.Wait()
}

// DoErr runs fn(worker, i) like Do and returns the error of the
// lowest-indexed item that failed (deterministic regardless of scheduling),
// or nil if every item succeeded. All items run even when some fail.
func DoErr(n, workers int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	Do(n, workers, func(worker, i int) {
		errs[i] = fn(worker, i)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
