package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefaultsToNumCPU(t *testing.T) {
	if got := Workers(0); got != runtime.NumCPU() {
		t.Fatalf("Workers(0) = %d, want %d", got, runtime.NumCPU())
	}
	if got := Workers(-3); got != runtime.NumCPU() {
		t.Fatalf("Workers(-3) = %d, want %d", got, runtime.NumCPU())
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}

func TestDoCoversEveryItemOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 137
			var counts [n]atomic.Int64
			Do(n, workers, func(worker, i int) {
				counts[i].Add(1)
			})
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("item %d ran %d times", i, c)
				}
			}
		})
	}
}

func TestDoWorkerIDsAreDense(t *testing.T) {
	const n, workers = 64, 4
	var seen [workers]atomic.Int64
	Do(n, workers, func(worker, i int) {
		if worker < 0 || worker >= workers {
			t.Errorf("worker id %d outside [0,%d)", worker, workers)
			return
		}
		seen[worker].Add(1)
	})
	total := int64(0)
	for w := range seen {
		total += seen[w].Load()
	}
	if total != n {
		t.Fatalf("items processed = %d, want %d", total, n)
	}
}

// TestDoPerWorkerStateIsUnshared drives per-worker accumulators the way the
// simulator uses per-worker scratch buffers: fn invocations with the same
// worker id must never overlap, so unsynchronized per-worker state is safe.
// Run under -race this is the pool's core safety property.
func TestDoPerWorkerStateIsUnshared(t *testing.T) {
	const n, workers = 500, 8
	scratch := make([][]int, workers)
	Do(n, workers, func(worker, i int) {
		scratch[worker] = append(scratch[worker], i)
	})
	total := 0
	for _, s := range scratch {
		total += len(s)
	}
	if total != n {
		t.Fatalf("items recorded = %d, want %d", total, n)
	}
}

func TestDoZeroItems(t *testing.T) {
	Do(0, 4, func(worker, i int) { t.Fatal("fn called for n=0") })
}

func TestDoErrReturnsLowestIndexedError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, workers := range []int{1, 8} {
		err := DoErr(10, workers, func(worker, i int) error {
			switch i {
			case 3:
				return errB
			case 7:
				return errA
			}
			return nil
		})
		if err != errB {
			t.Fatalf("workers=%d: err = %v, want %v (lowest index wins)", workers, err, errB)
		}
	}
	if err := DoErr(10, 4, func(worker, i int) error { return nil }); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}
