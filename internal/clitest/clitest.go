// Package clitest holds the shared harness of the cmd/* smoke suites:
// building the command under test as a real binary, and invoking its
// main() in process so main's own statements appear in the coverage
// profile (a built binary runs uninstrumented).
package clitest

import (
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// Build compiles the package in the test's working directory (the
// command under test) into a temp dir and returns the binary path.
// Skips the test when no go toolchain is on PATH.
func Build(t *testing.T, name string) string {
	t.Helper()
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go toolchain not on PATH: %v", err)
	}
	bin := filepath.Join(t.TempDir(), name)
	out, err := exec.Command(goTool, "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// RunMain invokes the caller's main() inside the test binary with the
// given argv (args[0] is the command name), swapping os.Args and
// flag.CommandLine for the duration and routing stdout to /dev/null.
// Only happy paths may run this way: every CLI failure path calls
// os.Exit, which would kill the test binary.
func RunMain(t *testing.T, mainFn func(), args ...string) {
	t.Helper()
	oldArgs, oldFlags, oldStdout := os.Args, flag.CommandLine, os.Stdout
	defer func() { os.Args, flag.CommandLine, os.Stdout = oldArgs, oldFlags, oldStdout }()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	os.Stdout = devnull
	flag.CommandLine = flag.NewFlagSet(args[0], flag.ExitOnError)
	os.Args = args
	mainFn()
}
