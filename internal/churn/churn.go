// Package churn models node arrival and departure: trace-driven ON/OFF
// replay and synthetic ON/OFF processes with exponential or Pareto session
// and gap times, plus the paper's churn-rate metric (Sect. 4.4):
//
//	Churn = (1/T) Σ_events |U_{i-1} Δ U_i| / max{|U_{i-1}|, |U_i|}
//
// where U_i is the node set after membership event i and Δ is the symmetric
// set difference. A timescale knob rescales any process to sweep churn
// intensity the way the paper rescales its PlanetLab traces.
package churn

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Event is a single membership change: node Node turns ON (joins) or OFF
// (leaves) at time Time (in wiring-epoch units unless stated otherwise).
type Event struct {
	Time float64
	Node int
	On   bool
}

// Schedule is a time-ordered list of membership events for an n-node
// overlay, together with the initial ON set.
type Schedule struct {
	N         int
	InitialOn []bool
	Events    []Event
}

// Validate checks event ordering and node ranges.
func (s *Schedule) Validate() error {
	if s.N < 1 {
		return fmt.Errorf("churn: bad node count %d", s.N)
	}
	if len(s.InitialOn) != s.N {
		return fmt.Errorf("churn: InitialOn has %d entries, want %d", len(s.InitialOn), s.N)
	}
	last := math.Inf(-1)
	for i, e := range s.Events {
		if e.Time < last {
			return fmt.Errorf("churn: event %d out of order (%.3f < %.3f)", i, e.Time, last)
		}
		last = e.Time
		if e.Node < 0 || e.Node >= s.N {
			return fmt.Errorf("churn: event %d names node %d outside [0,%d)", i, e.Node, s.N)
		}
	}
	return nil
}

// Rescale returns a copy of the schedule with all event times multiplied by
// factor. factor < 1 compresses the timescale (more churn per unit time).
func (s *Schedule) Rescale(factor float64) *Schedule {
	out := &Schedule{N: s.N, InitialOn: append([]bool(nil), s.InitialOn...)}
	out.Events = make([]Event, len(s.Events))
	for i, e := range s.Events {
		e.Time *= factor
		out.Events[i] = e
	}
	return out
}

// Truncate returns a copy containing only events strictly before horizon.
func (s *Schedule) Truncate(horizon float64) *Schedule {
	out := &Schedule{N: s.N, InitialOn: append([]bool(nil), s.InitialOn...)}
	for _, e := range s.Events {
		if e.Time < horizon {
			out.Events = append(out.Events, e)
		}
	}
	return out
}

// Rate computes the paper's churn metric over the horizon [0, T]: the sum
// over events of |symmetric difference| / max(set sizes), divided by T.
// With single-node events the symmetric difference is always 1, so this is
// effectively (events per unit time) weighted by 1/|U|.
func (s *Schedule) Rate(horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	on := append([]bool(nil), s.InitialOn...)
	size := 0
	for _, b := range on {
		if b {
			size++
		}
	}
	total := 0.0
	for _, e := range s.Events {
		if e.Time >= horizon {
			break
		}
		prev := size
		if e.On && !on[e.Node] {
			on[e.Node] = true
			size++
		} else if !e.On && on[e.Node] {
			on[e.Node] = false
			size--
		} else {
			continue // no-op event
		}
		denom := prev
		if size > denom {
			denom = size
		}
		if denom > 0 {
			total += 1 / float64(denom)
		}
	}
	return total / horizon
}

// SessionDist draws ON (session) and OFF (gap) durations.
type SessionDist interface {
	// Sample returns a positive duration in epoch units.
	Sample(rng *rand.Rand) float64
}

// Exponential is a memoryless duration distribution with the given mean.
type Exponential struct{ Mean float64 }

// Sample draws an exponential duration.
func (d Exponential) Sample(rng *rand.Rand) float64 {
	return math.Max(1e-6, rng.ExpFloat64()*d.Mean)
}

// Pareto is a heavy-tailed duration distribution with shape Alpha > 1 and
// the given mean, matching the measured heavy-tailed session times of
// deployed P2P systems.
type Pareto struct {
	Mean  float64
	Alpha float64
}

// Sample draws a Pareto duration.
func (d Pareto) Sample(rng *rand.Rand) float64 {
	alpha := d.Alpha
	if alpha <= 1 {
		alpha = 1.5
	}
	xm := d.Mean * (alpha - 1) / alpha
	u := rng.Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	return math.Max(1e-6, xm/math.Pow(u, 1/alpha))
}

// SyntheticConfig parameterizes GenerateSynthetic.
type SyntheticConfig struct {
	N       int
	Horizon float64     // schedule length in epoch units
	On      SessionDist // ON-period distribution
	Off     SessionDist // OFF-period distribution
	Seed    int64
	StartOn float64 // probability a node starts ON; default 0.9
}

// GenerateSynthetic builds an ON/OFF schedule where each node independently
// alternates ON and OFF periods drawn from the configured distributions —
// the synthetic counterpart of the paper's rescaled PlanetLab traces.
func GenerateSynthetic(cfg SyntheticConfig) (*Schedule, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("churn: bad N %d", cfg.N)
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("churn: bad horizon %v", cfg.Horizon)
	}
	if cfg.On == nil || cfg.Off == nil {
		return nil, fmt.Errorf("churn: missing ON/OFF distributions")
	}
	startOn := cfg.StartOn
	if startOn == 0 {
		startOn = 0.9
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Schedule{N: cfg.N, InitialOn: make([]bool, cfg.N)}
	for v := 0; v < cfg.N; v++ {
		on := rng.Float64() < startOn
		s.InitialOn[v] = on
		t := 0.0
		for t < cfg.Horizon {
			var dur float64
			if on {
				dur = cfg.On.Sample(rng)
			} else {
				dur = cfg.Off.Sample(rng)
			}
			t += dur
			if t >= cfg.Horizon {
				break
			}
			on = !on
			s.Events = append(s.Events, Event{Time: t, Node: v, On: on})
		}
	}
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].Time < s.Events[j].Time })
	return s, nil
}

// WriteTrace serializes a schedule: "churn <n>" header, one
// "init <0|1>..." line, then "t node on" event lines.
func WriteTrace(w io.Writer, s *Schedule) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "churn %d\ninit", s.N); err != nil {
		return err
	}
	for _, b := range s.InitialOn {
		v := 0
		if b {
			v = 1
		}
		if _, err := fmt.Fprintf(bw, " %d", v); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw); err != nil {
		return err
	}
	for _, e := range s.Events {
		on := 0
		if e.On {
			on = 1
		}
		if _, err := fmt.Fprintf(bw, "%.6f %d %d\n", e.Time, e.Node, on); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses the format written by WriteTrace.
func ReadTrace(r io.Reader) (*Schedule, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("churn: empty trace")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 2 || header[0] != "churn" {
		return nil, fmt.Errorf("churn: bad header %q", sc.Text())
	}
	n, err := strconv.Atoi(header[1])
	if err != nil || n < 1 {
		return nil, fmt.Errorf("churn: bad node count %q", header[1])
	}
	if !sc.Scan() {
		return nil, fmt.Errorf("churn: missing init line")
	}
	initFields := strings.Fields(sc.Text())
	if len(initFields) != n+1 || initFields[0] != "init" {
		return nil, fmt.Errorf("churn: bad init line %q", sc.Text())
	}
	s := &Schedule{N: n, InitialOn: make([]bool, n)}
	for i := 0; i < n; i++ {
		s.InitialOn[i] = initFields[i+1] == "1"
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 3 {
			return nil, fmt.Errorf("churn: bad event line %q", line)
		}
		t, err1 := strconv.ParseFloat(f[0], 64)
		node, err2 := strconv.Atoi(f[1])
		on, err3 := strconv.Atoi(f[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("churn: bad event line %q", line)
		}
		s.Events = append(s.Events, Event{Time: t, Node: node, On: on == 1})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
