package churn

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func synthetic(t *testing.T, cfg SyntheticConfig) *Schedule {
	t.Helper()
	s, err := GenerateSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func defaultCfg(seed int64) SyntheticConfig {
	return SyntheticConfig{
		N:       50,
		Horizon: 100,
		On:      Exponential{Mean: 20},
		Off:     Exponential{Mean: 4},
		Seed:    seed,
	}
}

func TestGenerateSyntheticValid(t *testing.T) {
	s := synthetic(t, defaultCfg(1))
	if s.N != 50 {
		t.Fatalf("N = %d", s.N)
	}
	if len(s.Events) == 0 {
		t.Fatal("no churn events generated")
	}
	for _, e := range s.Events {
		if e.Time < 0 || e.Time >= 100 {
			t.Fatalf("event outside horizon: %+v", e)
		}
	}
}

func TestGenerateSyntheticErrors(t *testing.T) {
	if _, err := GenerateSynthetic(SyntheticConfig{N: 0, Horizon: 1, On: Exponential{1}, Off: Exponential{1}}); err == nil {
		t.Fatal("want error for N=0")
	}
	if _, err := GenerateSynthetic(SyntheticConfig{N: 5, Horizon: 0, On: Exponential{1}, Off: Exponential{1}}); err == nil {
		t.Fatal("want error for horizon=0")
	}
	if _, err := GenerateSynthetic(SyntheticConfig{N: 5, Horizon: 1}); err == nil {
		t.Fatal("want error for missing distributions")
	}
}

func TestEventsAlternatePerNode(t *testing.T) {
	s := synthetic(t, defaultCfg(2))
	state := append([]bool(nil), s.InitialOn...)
	for _, e := range s.Events {
		if e.On == state[e.Node] {
			t.Fatalf("node %d event does not alternate state", e.Node)
		}
		state[e.Node] = e.On
	}
}

func TestRescaleCompressesTime(t *testing.T) {
	s := synthetic(t, defaultCfg(3))
	half := s.Rescale(0.5)
	if err := half.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range s.Events {
		if math.Abs(half.Events[i].Time-s.Events[i].Time*0.5) > 1e-12 {
			t.Fatal("rescale did not halve event times")
		}
	}
	// Same events in half the horizon => roughly double the rate.
	r1 := s.Rate(100)
	r2 := half.Rate(50)
	if r2 < r1*1.5 {
		t.Fatalf("rescaled rate %v not ~2x original %v", r2, r1)
	}
}

func TestTruncate(t *testing.T) {
	s := synthetic(t, defaultCfg(4))
	cut := s.Truncate(10)
	for _, e := range cut.Events {
		if e.Time >= 10 {
			t.Fatalf("event past horizon survived truncate: %+v", e)
		}
	}
}

func TestRateHandMade(t *testing.T) {
	// 2 nodes both ON; one leaves at t=1: symmetric diff 1, max size 2.
	s := &Schedule{
		N:         2,
		InitialOn: []bool{true, true},
		Events:    []Event{{Time: 1, Node: 0, On: false}},
	}
	got := s.Rate(10)
	want := (1.0 / 2.0) / 10.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Rate = %v, want %v", got, want)
	}
}

func TestRateIgnoresNoOpEvents(t *testing.T) {
	s := &Schedule{
		N:         2,
		InitialOn: []bool{true, true},
		Events:    []Event{{Time: 1, Node: 0, On: true}}, // already ON
	}
	if got := s.Rate(10); got != 0 {
		t.Fatalf("Rate = %v, want 0 for no-op event", got)
	}
}

func TestRateZeroHorizon(t *testing.T) {
	s := &Schedule{N: 1, InitialOn: []bool{true}}
	if s.Rate(0) != 0 {
		t.Fatal("Rate over empty horizon should be 0")
	}
}

func TestParetoHeavyTail(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := Pareto{Mean: 10, Alpha: 1.5}
	var sum float64
	maxv := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		v := d.Sample(rng)
		if v <= 0 {
			t.Fatal("non-positive Pareto sample")
		}
		sum += v
		if v > maxv {
			maxv = v
		}
	}
	meanv := sum / n
	if meanv < 5 || meanv > 20 {
		t.Fatalf("Pareto sample mean %v, want near 10", meanv)
	}
	if maxv < 100 {
		t.Fatalf("Pareto max %v suspiciously small; tail not heavy", maxv)
	}
}

func TestExponentialMean(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := Exponential{Mean: 7}
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += d.Sample(rng)
	}
	if meanv := sum / n; math.Abs(meanv-7) > 0.5 {
		t.Fatalf("Exponential mean %v, want ~7", meanv)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	s := synthetic(t, defaultCfg(7))
	var buf bytes.Buffer
	if err := WriteTrace(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != s.N || len(got.Events) != len(s.Events) {
		t.Fatalf("round trip mismatch: N %d/%d events %d/%d", got.N, s.N, len(got.Events), len(s.Events))
	}
	for i := range s.InitialOn {
		if got.InitialOn[i] != s.InitialOn[i] {
			t.Fatal("InitialOn mismatch")
		}
	}
	for i := range s.Events {
		a, b := got.Events[i], s.Events[i]
		if a.Node != b.Node || a.On != b.On || math.Abs(a.Time-b.Time) > 1e-5 {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"churn x\ninit 1\n",
		"churn 2\ninit 1\n", // short init
		"churn 1\ninit 1\nbadline\n",
		"churn 1\ninit 1\n5 0 1\n1 0 0\n", // out of order
		"churn 1\ninit 1\n1 7 0\n",        // bad node
	}
	for _, in := range cases {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Fatalf("expected error for %q", in)
		}
	}
}

// Property: churn rate is non-negative and grows (weakly) as the timescale
// compresses.
func TestRateMonotoneUnderRescaleProperty(t *testing.T) {
	f := func(seed int64) bool {
		s, err := GenerateSynthetic(SyntheticConfig{
			N: 10, Horizon: 50,
			On:   Exponential{Mean: 10},
			Off:  Exponential{Mean: 2},
			Seed: seed,
		})
		if err != nil {
			return false
		}
		r1 := s.Rate(50)
		r2 := s.Rescale(0.5).Rate(25)
		return r1 >= 0 && r2 >= r1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
