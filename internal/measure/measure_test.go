package measure

import (
	"math"
	"testing"

	"egoist/internal/core"
	"egoist/internal/graph"
)

func ring(n int, w float64) *graph.Digraph {
	g := graph.New(n)
	for v := 0; v < n; v++ {
		g.AddArc(v, (v+1)%n, w)
	}
	return g
}

func TestNodeCostsRing(t *testing.T) {
	// Directed 4-ring with weight 1: costs per node = 1+2+3 = 6.
	costs := NodeCosts(ring(4, 1), core.Additive, nil)
	for i, c := range costs {
		if c != 6 {
			t.Fatalf("cost[%d] = %v, want 6", i, c)
		}
	}
}

func TestNodeCostsDisconnectedPenalty(t *testing.T) {
	g := graph.New(3)
	g.AddArc(0, 1, 1)
	g.AddArc(1, 0, 1)
	costs := NodeCosts(g, core.Additive, nil)
	if costs[0] != 1+core.DisconnectedPenalty {
		t.Fatalf("cost[0] = %v, want 1+penalty", costs[0])
	}
}

func TestNodeCostsBottleneck(t *testing.T) {
	g := graph.New(3)
	g.AddArc(0, 1, 5)
	g.AddArc(1, 2, 3)
	vals := NodeCosts(g, core.Bottleneck, nil)
	if vals[0] != 5+3 {
		t.Fatalf("bw value[0] = %v, want 8", vals[0])
	}
	// Node 2 reaches nobody: 0.
	if vals[2] != 0 {
		t.Fatalf("bw value[2] = %v, want 0", vals[2])
	}
}

func TestNodeCostsActiveMask(t *testing.T) {
	g := ring(4, 1)
	active := []bool{true, true, true, false}
	costs := NodeCosts(g, core.Additive, active)
	if !math.IsNaN(costs[3]) {
		t.Fatal("dead node should have NaN cost")
	}
	// Ring broken by node 3's death: node 2 can't reach 0 or 1.
	if costs[2] != 2*core.DisconnectedPenalty {
		t.Fatalf("cost[2] = %v, want 2 penalties", costs[2])
	}
}

func TestEfficiencyRing(t *testing.T) {
	eff := Efficiency(ring(4, 2), nil)
	// Per node: (1/2 + 1/4 + 1/6) / 3.
	want := (0.5 + 0.25 + 1.0/6.0) / 3
	for i, e := range eff {
		if math.Abs(e-want) > 1e-12 {
			t.Fatalf("eff[%d] = %v, want %v", i, e, want)
		}
	}
}

func TestEfficiencyDisconnectedIsLower(t *testing.T) {
	g := graph.New(4)
	g.AddArc(0, 1, 1)
	g.AddArc(1, 0, 1)
	g.AddArc(2, 3, 1)
	g.AddArc(3, 2, 1)
	eff := Efficiency(g, nil)
	full := Efficiency(ring(4, 1), nil)
	if eff[0] >= full[0] {
		t.Fatalf("partitioned efficiency %v not below connected %v", eff[0], full[0])
	}
}

func TestEfficiencySingleAlive(t *testing.T) {
	g := graph.New(3)
	active := []bool{true, false, false}
	eff := Efficiency(g, active)
	if eff[0] != 0 {
		t.Fatalf("lone node efficiency = %v, want 0", eff[0])
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Mean != 3 || s.N != 5 {
		t.Fatalf("Summarize mean=%v n=%d", s.Mean, s.N)
	}
	if s.CI95 <= 0 || s.StdDev <= 0 {
		t.Fatalf("CI/std not positive: %+v", s)
	}
}

func TestSummarizeSkipsNaN(t *testing.T) {
	s := Summarize([]float64{2, math.NaN(), 4, math.Inf(1)})
	if s.N != 2 || s.Mean != 3 {
		t.Fatalf("Summarize = %+v, want n=2 mean=3", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || !math.IsNaN(s.Mean) {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{5, 1, 3}); m != 3 {
		t.Fatalf("median = %v, want 3", m)
	}
	if m := Median([]float64{math.NaN(), 2, 4}); m != 3 {
		t.Fatalf("median with NaN = %v, want 3", m)
	}
	if m := Median(nil); !math.IsNaN(m) {
		t.Fatalf("median empty = %v, want NaN", m)
	}
}

func TestRatio(t *testing.T) {
	if r := Ratio(6, 3); r != 2 {
		t.Fatalf("Ratio = %v", r)
	}
	if !math.IsNaN(Ratio(1, 0)) {
		t.Fatal("Ratio by zero should be NaN")
	}
}

func TestRewireCounter(t *testing.T) {
	var c RewireCounter
	c.Record(0, 3)
	c.Record(2, 1)
	c.Record(2, 2)
	got := c.PerEpoch()
	want := []int{3, 0, 3}
	if len(got) != len(want) {
		t.Fatalf("PerEpoch = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PerEpoch = %v, want %v", got, want)
		}
	}
	if tail := c.Tail(0.3); tail != 3 { // last epoch only
		t.Fatalf("Tail = %v, want 3", tail)
	}
}

func TestRewireCounterEmptyTail(t *testing.T) {
	var c RewireCounter
	if c.Tail(0.5) != 0 {
		t.Fatal("empty counter tail should be 0")
	}
}

func TestLinkDiff(t *testing.T) {
	if d := LinkDiff([]int{1, 2, 3}, []int{2, 3, 4}); d != 1 {
		t.Fatalf("LinkDiff = %d, want 1", d)
	}
	if d := LinkDiff(nil, []int{1, 2}); d != 2 {
		t.Fatalf("LinkDiff from nil = %d, want 2", d)
	}
	if d := LinkDiff([]int{1, 2}, []int{1, 2}); d != 0 {
		t.Fatalf("LinkDiff identical = %d, want 0", d)
	}
}
