package measure

import (
	"math"
	"testing"

	"egoist/internal/core"
	"egoist/internal/graph"
)

func TestWeightedNodeCostsUniformMatchesNodeCosts(t *testing.T) {
	g := ring(5, 2)
	plain := NodeCosts(g, core.Additive, nil)
	weighted := WeightedNodeCosts(g, core.Additive, nil, func(i, j int) float64 { return 1 })
	for i := range plain {
		if plain[i] != weighted[i] {
			t.Fatalf("node %d: %v != %v", i, plain[i], weighted[i])
		}
	}
}

func TestWeightedNodeCostsScalesByPreference(t *testing.T) {
	g := ring(4, 1)
	// Preference 2 for every destination doubles every cost.
	doubled := WeightedNodeCosts(g, core.Additive, nil, func(i, j int) float64 { return 2 })
	plain := NodeCosts(g, core.Additive, nil)
	for i := range plain {
		if math.Abs(doubled[i]-2*plain[i]) > 1e-12 {
			t.Fatalf("node %d: %v != 2*%v", i, doubled[i], plain[i])
		}
	}
}

func TestWeightedNodeCostsSelectivePreference(t *testing.T) {
	// Only care about destination 1: cost of node 0 is just d(0,1).
	g := ring(4, 3)
	pref := func(i, j int) float64 {
		if j == 1 {
			return 1
		}
		return 0
	}
	costs := WeightedNodeCosts(g, core.Additive, nil, pref)
	if costs[0] != 3 {
		t.Fatalf("cost[0] = %v, want 3 (one hop to node 1)", costs[0])
	}
}

func TestWeightedNodeCostsBottleneck(t *testing.T) {
	g := graph.New(3)
	g.AddArc(0, 1, 10)
	g.AddArc(0, 2, 4)
	pref := func(i, j int) float64 {
		if j == 1 {
			return 3
		}
		return 1
	}
	vals := WeightedNodeCosts(g, core.Bottleneck, nil, pref)
	if vals[0] != 3*10+4 {
		t.Fatalf("weighted bw value = %v, want 34", vals[0])
	}
}
