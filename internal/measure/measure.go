// Package measure computes the performance metrics the paper reports:
// per-node routing cost (the weighted sum of shortest-path distances,
// Sect. 4.2), aggregate available bandwidth, the Efficiency metric used
// under churn (Sect. 4.4), and summary statistics (mean and 95 %
// confidence intervals).
package measure

import (
	"math"
	"sort"

	"egoist/internal/core"
	"egoist/internal/graph"
)

// NodeCosts returns the routing cost of every alive node over the overlay
// graph g: for the additive algebra the uniform-preference sum of
// shortest-path distances to all other alive nodes (unreachable
// destinations contribute core.DisconnectedPenalty); for the bottleneck
// algebra the sum of widest-path values (unreachable contribute 0, and
// larger is better). Dead nodes get NaN.
func NodeCosts(g *graph.Digraph, kind core.CostKind, active []bool) []float64 {
	return WeightedNodeCosts(g, kind, active, nil)
}

// WeightedNodeCosts is NodeCosts with per-pair routing preferences
// p_ij = pref(i,j); nil pref means uniform weights of 1.
func WeightedNodeCosts(g *graph.Digraph, kind core.CostKind, active []bool, pref func(i, j int) float64) []float64 {
	n := g.N()
	work := g
	if active != nil {
		work = g.Clone()
		for v := 0; v < n; v++ {
			if !active[v] {
				work.ClearNode(v)
			}
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		if active != nil && !active[i] {
			out[i] = math.NaN()
			continue
		}
		var vals []float64
		if kind == core.Bottleneck {
			vals, _ = graph.Widest(work, i)
		} else {
			vals, _ = graph.Dijkstra(work, i)
		}
		total := 0.0
		for j := 0; j < n; j++ {
			if j == i || (active != nil && !active[j]) {
				continue
			}
			v := vals[j]
			if kind == core.Bottleneck {
				if math.IsInf(v, 1) {
					v = 0
				}
			} else if math.IsInf(v, 1) {
				v = core.DisconnectedPenalty
			}
			if pref != nil {
				v *= pref(i, j)
			}
			total += v
		}
		out[i] = total
	}
	return out
}

// Efficiency returns the paper's efficiency metric for every alive node:
// ε_i = (1/(n_alive-1)) · Σ_{j≠i} 1/d(i,j), with ε_ij = 0 for disconnected
// pairs. Dead nodes get NaN.
func Efficiency(g *graph.Digraph, active []bool) []float64 {
	n := g.N()
	work := g
	alive := n
	if active != nil {
		work = g.Clone()
		alive = 0
		for v := 0; v < n; v++ {
			if !active[v] {
				work.ClearNode(v)
			} else {
				alive++
			}
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		if active != nil && !active[i] {
			out[i] = math.NaN()
			continue
		}
		if alive <= 1 {
			out[i] = 0
			continue
		}
		dist, _ := graph.Dijkstra(work, i)
		sum := 0.0
		for j := 0; j < n; j++ {
			if j == i || (active != nil && !active[j]) {
				continue
			}
			if d := dist[j]; d > 0 && !math.IsInf(d, 1) {
				sum += 1 / d
			}
		}
		out[i] = sum / float64(alive-1)
	}
	return out
}

// Summary is a mean with a 95 % confidence interval, the form in which
// every figure of the paper reports its measurements.
type Summary struct {
	Mean   float64
	CI95   float64 // half-width of the 95% confidence interval
	N      int
	StdDev float64
}

// Summarize computes mean, standard deviation and the normal-approximation
// 95 % confidence half-width of the finite entries of xs (NaNs — dead
// nodes — are skipped).
func Summarize(xs []float64) Summary {
	var vals []float64
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			vals = append(vals, x)
		}
	}
	s := Summary{N: len(vals)}
	if s.N == 0 {
		s.Mean = math.NaN()
		return s
	}
	for _, v := range vals {
		s.Mean += v
	}
	s.Mean /= float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, v := range vals {
			d := v - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
		s.CI95 = 1.96 * s.StdDev / math.Sqrt(float64(s.N))
	}
	return s
}

// Ratio returns a/b guarding against division by zero.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return a / b
}

// Median returns the median of the finite entries of xs, NaN when empty.
func Median(xs []float64) float64 {
	var vals []float64
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			vals = append(vals, x)
		}
	}
	if len(vals) == 0 {
		return math.NaN()
	}
	sort.Float64s(vals)
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[mid]
	}
	return (vals[mid-1] + vals[mid]) / 2
}

// RewireCounter tracks link changes per epoch for the re-wiring overhead
// experiments (Fig. 3).
type RewireCounter struct {
	perEpoch []int
}

// Record notes that `links` links changed during epoch e (0-based).
func (c *RewireCounter) Record(epoch, links int) {
	for len(c.perEpoch) <= epoch {
		c.perEpoch = append(c.perEpoch, 0)
	}
	c.perEpoch[epoch] += links
}

// PerEpoch returns the per-epoch totals recorded so far.
func (c *RewireCounter) PerEpoch() []int { return c.perEpoch }

// Tail returns the mean re-wirings per epoch over the last frac fraction of
// epochs — the "steady state" rate of Fig. 3 (center/right).
func (c *RewireCounter) Tail(frac float64) float64 {
	if len(c.perEpoch) == 0 {
		return 0
	}
	start := int(float64(len(c.perEpoch)) * (1 - frac))
	if start >= len(c.perEpoch) {
		start = len(c.perEpoch) - 1
	}
	sum := 0
	for _, v := range c.perEpoch[start:] {
		sum += v
	}
	return float64(sum) / float64(len(c.perEpoch)-start)
}

// LinkDiff counts how many links differ between an old and a new neighbor
// set (both sorted): the number of additions, i.e. new links that must be
// established. A full re-wire of k links counts k.
func LinkDiff(old, new []int) int {
	om := make(map[int]bool, len(old))
	for _, v := range old {
		om[v] = true
	}
	added := 0
	for _, v := range new {
		if !om[v] {
			added++
		}
	}
	return added
}
