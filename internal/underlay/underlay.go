// Package underlay models the IP network beneath an EGOIST overlay: the
// true pairwise one-way delays between sites, per-node CPU load, and the
// available bandwidth between sites constrained by AS peering points.
//
// The paper ran on PlanetLab; this package is the synthetic substitute
// (see DESIGN.md §2). It reproduces the structural properties the
// evaluation depends on — geographically clustered delays, high-variance
// node load, and per-session rate caps at AS peering points — without
// requiring the real testbed. All state evolves deterministically from a
// caller-provided seed.
package underlay

import (
	"fmt"
	"math"
	"math/rand"
)

// Region is a coarse geographic region used to place sites, mirroring the
// paper's 50-node PlanetLab deployment (30 NA, 11 EU, 7 Asia, 1 SA,
// 1 Oceania).
type Region int

// Regions in the paper's deployment.
const (
	NorthAmerica Region = iota
	Europe
	Asia
	SouthAmerica
	Oceania
	numRegions
)

// String returns the region name.
func (r Region) String() string {
	switch r {
	case NorthAmerica:
		return "NorthAmerica"
	case Europe:
		return "Europe"
	case Asia:
		return "Asia"
	case SouthAmerica:
		return "SouthAmerica"
	case Oceania:
		return "Oceania"
	default:
		return fmt.Sprintf("Region(%d)", int(r))
	}
}

// regionCenter gives an approximate (latitude, longitude) in degrees for
// each region's center of mass of PlanetLab sites.
var regionCenter = [numRegions][2]float64{
	NorthAmerica: {40, -95},
	Europe:       {50, 10},
	Asia:         {33, 115},
	SouthAmerica: {-15, -55},
	Oceania:      {-33, 150},
}

// regionSpread is the per-region placement jitter in degrees.
var regionSpread = [numRegions]float64{
	NorthAmerica: 14,
	Europe:       8,
	Asia:         12,
	SouthAmerica: 8,
	Oceania:      6,
}

// PlanetLabMix returns the per-region node counts of the paper's 50-node
// deployment scaled proportionally to n total nodes. The counts always sum
// to n and every region keeps at least one node when n >= 5.
func PlanetLabMix(n int) [5]int {
	base := [5]float64{30, 11, 7, 1, 1}
	var counts [5]int
	assigned := 0
	for i, b := range base {
		c := int(math.Floor(b / 50 * float64(n)))
		if n >= 5 && c == 0 {
			c = 1
		}
		counts[i] = c
		assigned += c
	}
	// Distribute the remainder to the largest regions first.
	for i := 0; assigned < n; i = (i + 1) % 5 {
		counts[i]++
		assigned++
	}
	for i := 0; assigned > n; i = (i + 1) % 5 {
		if counts[i] > 1 {
			counts[i]--
			assigned--
		}
	}
	return counts
}

// Site is a physical host participating in the overlay.
type Site struct {
	Region Region
	Lat    float64 // degrees
	Lon    float64 // degrees
	AS     int     // autonomous system this site lives in
}

// Config parameterizes a synthetic underlay.
type Config struct {
	N    int   // number of sites
	Seed int64 // RNG seed; all dynamics are deterministic given the seed

	// Delay model.
	PropagationFactor float64 // ms per km of great-circle distance; default 0.015 (~2/3 c plus routing inflation)
	AccessDelayMS     float64 // fixed per-end access delay in ms; default 2
	JitterFrac        float64 // stddev of multiplicative delay noise; default 0.08

	// Load model (Ornstein–Uhlenbeck around the mean).
	LoadMean      float64 // default 2.0 (PlanetLab-like loadavg)
	LoadStddev    float64 // default 1.5
	LoadReversion float64 // mean-reversion rate per step; default 0.3

	// Bandwidth / AS model.
	ASCount          int     // number of ASes; default max(2, N/8)
	MultihomeProb    float64 // probability a site's AS is multihomed (has >1 peering); default 0.5
	PeeringCapMbps   float64 // per-session rate cap at a peering point; default 10
	AccessCapMbps    float64 // site access link capacity; default 100
	BandwidthJitter  float64 // relative noise on available bandwidth; default 0.1
	IntraASCapMbps   float64 // capacity between two sites in the same AS; default 80
	PeeringPerASMean float64 // mean number of peering links per AS; default 2.5
}

func (c *Config) applyDefaults() {
	if c.PropagationFactor == 0 {
		c.PropagationFactor = 0.015
	}
	if c.AccessDelayMS == 0 {
		c.AccessDelayMS = 2
	}
	if c.JitterFrac == 0 {
		c.JitterFrac = 0.08
	}
	if c.LoadMean == 0 {
		c.LoadMean = 2.0
	}
	if c.LoadStddev == 0 {
		c.LoadStddev = 1.5
	}
	if c.LoadReversion == 0 {
		c.LoadReversion = 0.3
	}
	if c.ASCount == 0 {
		c.ASCount = c.N / 8
		if c.ASCount < 2 {
			c.ASCount = 2
		}
	}
	if c.MultihomeProb == 0 {
		c.MultihomeProb = 0.5
	}
	if c.PeeringCapMbps == 0 {
		c.PeeringCapMbps = 10
	}
	if c.AccessCapMbps == 0 {
		c.AccessCapMbps = 100
	}
	if c.BandwidthJitter == 0 {
		c.BandwidthJitter = 0.1
	}
	if c.IntraASCapMbps == 0 {
		c.IntraASCapMbps = 80
	}
	if c.PeeringPerASMean == 0 {
		c.PeeringPerASMean = 2.5
	}
}

// Underlay is the synthetic IP network. The true pairwise delays and
// bandwidths are hidden from overlay nodes, which observe them only through
// the probe package's noisy estimators.
type Underlay struct {
	cfg   Config
	rng   *rand.Rand
	sites []Site

	baseDelay [][]float64 // quiescent one-way delay in ms
	jitter    [][]float64 // current multiplicative jitter factor
	load      []float64   // current per-node load
	availBW   [][]float64 // current available bandwidth in Mbps

	asPeers   map[[2]int]bool // unordered AS adjacency
	asOfSite  []int
	asHomed   []int // number of distinct peering ASes per AS (multihoming degree)
	asMembers [][]int
}

// New builds a synthetic underlay from cfg. It returns an error if the
// configuration is invalid.
func New(cfg Config) (*Underlay, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("underlay: need at least 2 sites, got %d", cfg.N)
	}
	cfg.applyDefaults()
	u := &Underlay{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	u.placeSites()
	u.buildASTopology()
	u.computeBaseDelays()
	u.initDynamics()
	return u, nil
}

// N returns the number of sites.
func (u *Underlay) N() int { return u.cfg.N }

// Site returns the i-th site descriptor.
func (u *Underlay) Site(i int) Site { return u.sites[i] }

// ASOf returns the AS identifier of site i.
func (u *Underlay) ASOf(i int) int { return u.asOfSite[i] }

// MultihomingDegree returns the number of distinct ASes site i's AS peers
// with (|AS_i| in the paper's Fig. 10 discussion).
func (u *Underlay) MultihomingDegree(i int) int { return u.asHomed[u.asOfSite[i]] }

func (u *Underlay) placeSites() {
	mix := PlanetLabMix(u.cfg.N)
	u.sites = make([]Site, 0, u.cfg.N)
	for r := Region(0); r < numRegions; r++ {
		for j := 0; j < mix[r]; j++ {
			u.sites = append(u.sites, Site{
				Region: r,
				Lat:    clampLat(regionCenter[r][0] + u.rng.NormFloat64()*regionSpread[r]),
				Lon:    wrapLon(regionCenter[r][1] + u.rng.NormFloat64()*regionSpread[r]*2),
			})
		}
	}
	// Node identifiers are not geographically sorted on real testbeds;
	// shuffle so id-ring constructions (k-Regular, enforced cycles,
	// HybridBR backbones) cross regions the way they would on PlanetLab.
	u.rng.Shuffle(len(u.sites), func(i, j int) {
		u.sites[i], u.sites[j] = u.sites[j], u.sites[i]
	})
}

func (u *Underlay) buildASTopology() {
	n := u.cfg.N
	u.asOfSite = make([]int, n)
	u.asMembers = make([][]int, u.cfg.ASCount)
	for i := 0; i < n; i++ {
		// Sites in the same region tend to share ASes: hash region into the
		// AS choice so ASes are geographically coherent.
		as := (int(u.sites[i].Region)*7 + u.rng.Intn(u.cfg.ASCount)) % u.cfg.ASCount
		u.asOfSite[i] = as
		u.asMembers[as] = append(u.asMembers[as], i)
	}
	// Peering: ring over ASes for connectivity plus random extra peerings,
	// controlled by PeeringPerASMean and MultihomeProb.
	u.asPeers = make(map[[2]int]bool)
	for a := 0; a < u.cfg.ASCount; a++ {
		u.addPeering(a, (a+1)%u.cfg.ASCount)
	}
	extra := int(float64(u.cfg.ASCount) * (u.cfg.PeeringPerASMean - 2) / 2)
	for e := 0; e < extra; e++ {
		a := u.rng.Intn(u.cfg.ASCount)
		if u.rng.Float64() > u.cfg.MultihomeProb {
			continue
		}
		b := u.rng.Intn(u.cfg.ASCount)
		if a != b {
			u.addPeering(a, b)
		}
	}
	u.asHomed = make([]int, u.cfg.ASCount)
	for pair := range u.asPeers {
		u.asHomed[pair[0]]++
		u.asHomed[pair[1]]++
	}
}

func (u *Underlay) addPeering(a, b int) {
	if a > b {
		a, b = b, a
	}
	if a != b {
		u.asPeers[[2]int{a, b}] = true
	}
}

// ASPeered reports whether ASes a and b have a direct peering link.
func (u *Underlay) ASPeered(a, b int) bool {
	if a > b {
		a, b = b, a
	}
	return u.asPeers[[2]int{a, b}]
}

func (u *Underlay) computeBaseDelays() {
	n := u.cfg.N
	u.baseDelay = newMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			km := greatCircleKM(u.sites[i].Lat, u.sites[i].Lon, u.sites[j].Lat, u.sites[j].Lon)
			prop := km * u.cfg.PropagationFactor
			// Asymmetric routing inflation: each direction gets its own
			// lognormal-ish inflation factor, fixed for the lifetime of the
			// underlay (route changes are modeled by jitter).
			inflation := 1 + math.Abs(u.rng.NormFloat64())*0.15
			u.baseDelay[i][j] = u.cfg.AccessDelayMS + prop*inflation
		}
	}
}

func (u *Underlay) initDynamics() {
	n := u.cfg.N
	u.jitter = newMatrix(n)
	for i := range u.jitter {
		for j := range u.jitter[i] {
			u.jitter[i][j] = 1
		}
	}
	u.load = make([]float64, n)
	for i := range u.load {
		u.load[i] = math.Max(0.05, u.cfg.LoadMean+u.rng.NormFloat64()*u.cfg.LoadStddev)
	}
	u.availBW = newMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				u.availBW[i][j] = u.trueBandwidth(i, j)
			}
		}
	}
}

// trueBandwidth derives the quiescent available bandwidth between sites
// from the AS model: intra-AS pairs see the intra-AS capacity; inter-AS
// pairs are capped by the per-session peering rate, with directly peered
// ASes seeing a higher cap than those routing through intermediate ASes.
func (u *Underlay) trueBandwidth(i, j int) float64 {
	ai, aj := u.asOfSite[i], u.asOfSite[j]
	base := 0.0
	switch {
	case ai == aj:
		base = u.cfg.IntraASCapMbps
	case u.ASPeered(ai, aj):
		base = u.cfg.PeeringCapMbps * (1 + 0.5*u.rng.Float64())
	default:
		base = u.cfg.PeeringCapMbps * (0.4 + 0.4*u.rng.Float64())
	}
	access := u.cfg.AccessCapMbps * (0.5 + 0.5*u.rng.Float64())
	return math.Min(base, access)
}

// Delay returns the current true one-way delay in ms from i to j.
func (u *Underlay) Delay(i, j int) float64 {
	if i == j {
		return 0
	}
	return u.baseDelay[i][j] * u.jitter[i][j]
}

// Load returns the current true load of node i.
func (u *Underlay) Load(i int) float64 { return u.load[i] }

// AvailBW returns the current true available bandwidth in Mbps from i to j.
func (u *Underlay) AvailBW(i, j int) float64 {
	if i == j {
		return math.Inf(1)
	}
	return u.availBW[i][j]
}

// PeeringSessionCap returns the per-session rate cap that applies to a
// session leaving site i toward site j (Fig. 9/10 mechanism). Sessions
// within an AS are uncapped (access-limited only).
func (u *Underlay) PeeringSessionCap(i, j int) float64 {
	if u.asOfSite[i] == u.asOfSite[j] {
		return u.cfg.AccessCapMbps
	}
	return u.cfg.PeeringCapMbps
}

// Step advances the underlay dynamics by one tick: delay jitter is
// resampled with temporal correlation, loads follow the OU process, and
// available bandwidths wobble around their quiescent values. dt scales the
// evolution rate (1 = one wiring epoch).
func (u *Underlay) Step(dt float64) {
	n := u.cfg.N
	alpha := math.Min(1, 0.5*dt)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			target := 1 + u.rng.NormFloat64()*u.cfg.JitterFrac
			if target < 0.2 {
				target = 0.2
			}
			u.jitter[i][j] += alpha * (target - u.jitter[i][j])
			bwTarget := u.trueBandwidthQuiescent(i, j) * (1 + u.rng.NormFloat64()*u.cfg.BandwidthJitter)
			if bwTarget < 0.1 {
				bwTarget = 0.1
			}
			u.availBW[i][j] += alpha * (bwTarget - u.availBW[i][j])
		}
		u.load[i] += u.cfg.LoadReversion*dt*(u.cfg.LoadMean-u.load[i]) +
			u.cfg.LoadStddev*math.Sqrt(dt)*u.rng.NormFloat64()*0.6
		if u.load[i] < 0.05 {
			u.load[i] = 0.05
		}
	}
}

// trueBandwidthQuiescent recomputes the quiescent bandwidth without
// consuming RNG randomness for the structural part (cached by category).
func (u *Underlay) trueBandwidthQuiescent(i, j int) float64 {
	ai, aj := u.asOfSite[i], u.asOfSite[j]
	switch {
	case ai == aj:
		return math.Min(u.cfg.IntraASCapMbps, u.cfg.AccessCapMbps*0.75)
	case u.ASPeered(ai, aj):
		return u.cfg.PeeringCapMbps * 1.25
	default:
		return u.cfg.PeeringCapMbps * 0.6
	}
}

func newMatrix(n int) [][]float64 {
	m := make([][]float64, n)
	backing := make([]float64, n*n)
	for i := range m {
		m[i], backing = backing[:n], backing[n:]
	}
	return m
}

func clampLat(lat float64) float64 {
	if lat > 85 {
		return 85
	}
	if lat < -85 {
		return -85
	}
	return lat
}

func wrapLon(lon float64) float64 {
	for lon > 180 {
		lon -= 360
	}
	for lon < -180 {
		lon += 360
	}
	return lon
}

// greatCircleKM returns the great-circle distance between two
// (lat, lon) points in kilometers (haversine formula).
func greatCircleKM(lat1, lon1, lat2, lon2 float64) float64 {
	const earthRadiusKM = 6371
	rad := math.Pi / 180
	dLat := (lat2 - lat1) * rad
	dLon := (lon2 - lon1) * rad
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1*rad)*math.Cos(lat2*rad)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKM * math.Asin(math.Sqrt(a))
}
