package underlay

import (
	"fmt"
	"math"
	"math/rand"
)

// Lite is the O(n)-memory synthetic underlay of the large-scale
// simulation mode: sites are placed with the same PlanetLab-mix
// geography as Underlay, but pairwise delay is computed on demand from
// the great-circle distance plus a deterministic per-pair inflation
// hash — no n×n matrices, so a 10k+-node overlay costs kilobytes
// instead of gigabytes. Delays are static (the static-trace setting of
// the paper's Sect. 5 scalability study).
type Lite struct {
	seed              int64
	sites             []Site
	unit              [][3]float64 // per-site unit vectors for fast arc length
	propagationFactor float64
	accessDelayMS     float64
}

// NewLite builds an n-site constant-memory underlay.
func NewLite(n int, seed int64) (*Lite, error) {
	if n < 2 {
		return nil, fmt.Errorf("underlay: need at least 2 sites, got %d", n)
	}
	l := &Lite{
		seed:              seed,
		propagationFactor: 0.015,
		accessDelayMS:     2,
	}
	rng := rand.New(rand.NewSource(seed))
	mix := PlanetLabMix(n)
	l.sites = make([]Site, 0, n)
	for r := Region(0); r < numRegions; r++ {
		for j := 0; j < mix[r]; j++ {
			l.sites = append(l.sites, Site{
				Region: r,
				Lat:    clampLat(regionCenter[r][0] + rng.NormFloat64()*regionSpread[r]),
				Lon:    wrapLon(regionCenter[r][1] + rng.NormFloat64()*regionSpread[r]*2),
			})
		}
	}
	rng.Shuffle(len(l.sites), func(i, j int) {
		l.sites[i], l.sites[j] = l.sites[j], l.sites[i]
	})
	l.unit = make([][3]float64, n)
	rad := math.Pi / 180
	for i, s := range l.sites {
		lat, lon := s.Lat*rad, s.Lon*rad
		l.unit[i] = [3]float64{
			math.Cos(lat) * math.Cos(lon),
			math.Cos(lat) * math.Sin(lon),
			math.Sin(lat),
		}
	}
	return l, nil
}

// N returns the number of sites.
func (l *Lite) N() int { return len(l.sites) }

// Site returns the i-th site descriptor.
func (l *Lite) Site(i int) Site { return l.sites[i] }

// Delay returns the static one-way delay in ms from i to j: access delay
// plus great-circle propagation inflated by a deterministic per-pair
// routing factor. Asymmetric (the (i,j) and (j,i) inflations differ),
// like real routed paths.
func (l *Lite) Delay(i, j int) float64 {
	if i == j {
		return 0
	}
	const earthRadiusKM = 6371
	a, b := l.unit[i], l.unit[j]
	dot := a[0]*b[0] + a[1]*b[1] + a[2]*b[2]
	if dot > 1 {
		dot = 1
	} else if dot < -1 {
		dot = -1
	}
	km := earthRadiusKM * math.Acos(dot)
	// Hash (seed, i, j) into an inflation factor in [1, 1.36): the same
	// scale as Underlay's |N(0,1)|·0.15 lognormal-ish inflation.
	h := liteMix(uint64(l.seed) ^ 0x9e3779b97f4a7c15 + uint64(i)*0xbf58476d1ce4e5b9 + uint64(j)*0x94d049bb133111eb)
	inflation := 1 + 0.36*float64(h>>11)/float64(1<<53)
	return l.accessDelayMS + km*l.propagationFactor*inflation
}

// liteMix is the SplitMix64 finalizer.
func liteMix(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
