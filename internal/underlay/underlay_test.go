package underlay

import (
	"math"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cfg Config) *Underlay {
	t.Helper()
	u, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestNewRejectsTinyN(t *testing.T) {
	if _, err := New(Config{N: 1}); err == nil {
		t.Fatal("expected error for N=1")
	}
}

func TestPlanetLabMixSums(t *testing.T) {
	for _, n := range []int{5, 10, 50, 100, 295} {
		mix := PlanetLabMix(n)
		sum := 0
		for _, c := range mix {
			sum += c
		}
		if sum != n {
			t.Errorf("n=%d: mix %v sums to %d", n, mix, sum)
		}
		for r, c := range mix {
			if c < 1 {
				t.Errorf("n=%d: region %d has %d nodes, want >=1", n, r, c)
			}
		}
	}
}

func TestPlanetLabMix50MatchesPaper(t *testing.T) {
	mix := PlanetLabMix(50)
	want := [5]int{30, 11, 7, 1, 1}
	if mix != want {
		t.Fatalf("PlanetLabMix(50) = %v, want %v", mix, want)
	}
}

func TestDelayProperties(t *testing.T) {
	u := mustNew(t, Config{N: 50, Seed: 42})
	n := u.N()
	for i := 0; i < n; i++ {
		if u.Delay(i, i) != 0 {
			t.Fatalf("self delay of %d = %v, want 0", i, u.Delay(i, i))
		}
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d := u.Delay(i, j)
			if d <= 0 || math.IsNaN(d) || math.IsInf(d, 0) {
				t.Fatalf("delay(%d,%d) = %v, want positive finite", i, j, d)
			}
		}
	}
}

func TestIntraRegionFasterThanInterContinent(t *testing.T) {
	u := mustNew(t, Config{N: 50, Seed: 1})
	var intraSum, intraN, interSum, interN float64
	for i := 0; i < u.N(); i++ {
		for j := 0; j < u.N(); j++ {
			if i == j {
				continue
			}
			d := u.Delay(i, j)
			if u.Site(i).Region == u.Site(j).Region {
				intraSum += d
				intraN++
			} else if (u.Site(i).Region == NorthAmerica && u.Site(j).Region == Asia) ||
				(u.Site(i).Region == Asia && u.Site(j).Region == NorthAmerica) {
				interSum += d
				interN++
			}
		}
	}
	if intraN == 0 || interN == 0 {
		t.Skip("degenerate placement")
	}
	if intraSum/intraN >= interSum/interN {
		t.Fatalf("intra-region mean %.1f >= NA-Asia mean %.1f; geography not reflected",
			intraSum/intraN, interSum/interN)
	}
}

func TestDelayAsymmetryAllowed(t *testing.T) {
	u := mustNew(t, Config{N: 20, Seed: 3})
	asym := 0
	for i := 0; i < u.N(); i++ {
		for j := i + 1; j < u.N(); j++ {
			if u.Delay(i, j) != u.Delay(j, i) {
				asym++
			}
		}
	}
	if asym == 0 {
		t.Fatal("all delays symmetric; paper model has dij != dji in general")
	}
}

func TestDeterministicAcrossInstances(t *testing.T) {
	a := mustNew(t, Config{N: 30, Seed: 99})
	b := mustNew(t, Config{N: 30, Seed: 99})
	for i := 0; i < a.N(); i++ {
		for j := 0; j < a.N(); j++ {
			if a.Delay(i, j) != b.Delay(i, j) {
				t.Fatalf("same seed, different delay(%d,%d)", i, j)
			}
		}
		if a.Load(i) != b.Load(i) {
			t.Fatalf("same seed, different load(%d)", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := mustNew(t, Config{N: 30, Seed: 1})
	b := mustNew(t, Config{N: 30, Seed: 2})
	same := true
	for i := 0; i < a.N() && same; i++ {
		for j := 0; j < a.N(); j++ {
			if a.Delay(i, j) != b.Delay(i, j) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical delay matrices")
	}
}

func TestLoadPositive(t *testing.T) {
	u := mustNew(t, Config{N: 20, Seed: 5})
	for step := 0; step < 50; step++ {
		u.Step(1)
		for i := 0; i < u.N(); i++ {
			if u.Load(i) <= 0 {
				t.Fatalf("load(%d) = %v after step %d, want > 0", i, u.Load(i), step)
			}
		}
	}
}

func TestLoadVariesOverTime(t *testing.T) {
	u := mustNew(t, Config{N: 10, Seed: 5})
	before := u.Load(0)
	for step := 0; step < 10; step++ {
		u.Step(1)
	}
	if u.Load(0) == before {
		t.Fatal("load did not evolve over 10 steps")
	}
}

func TestStepPerturbsDelaysModestly(t *testing.T) {
	u := mustNew(t, Config{N: 20, Seed: 7})
	before := u.Delay(0, 1)
	for step := 0; step < 20; step++ {
		u.Step(1)
	}
	after := u.Delay(0, 1)
	ratio := after / before
	if ratio < 0.3 || ratio > 3 {
		t.Fatalf("delay drifted by factor %.2f over 20 epochs; jitter model too wild", ratio)
	}
}

func TestBandwidthPositiveFinite(t *testing.T) {
	u := mustNew(t, Config{N: 30, Seed: 11})
	for i := 0; i < u.N(); i++ {
		for j := 0; j < u.N(); j++ {
			if i == j {
				if !math.IsInf(u.AvailBW(i, i), 1) {
					t.Fatalf("self bandwidth should be +Inf")
				}
				continue
			}
			bw := u.AvailBW(i, j)
			if bw <= 0 || math.IsInf(bw, 0) || math.IsNaN(bw) {
				t.Fatalf("availBW(%d,%d) = %v", i, j, bw)
			}
		}
	}
}

func TestIntraASFasterThanInterAS(t *testing.T) {
	u := mustNew(t, Config{N: 50, Seed: 13})
	var intra, inter []float64
	for i := 0; i < u.N(); i++ {
		for j := 0; j < u.N(); j++ {
			if i == j {
				continue
			}
			if u.ASOf(i) == u.ASOf(j) {
				intra = append(intra, u.AvailBW(i, j))
			} else {
				inter = append(inter, u.AvailBW(i, j))
			}
		}
	}
	if len(intra) == 0 || len(inter) == 0 {
		t.Skip("no intra-AS pairs with this seed")
	}
	if mean(intra) <= mean(inter) {
		t.Fatalf("intra-AS mean bw %.1f <= inter-AS %.1f", mean(intra), mean(inter))
	}
}

func TestPeeringSessionCap(t *testing.T) {
	u := mustNew(t, Config{N: 50, Seed: 17})
	foundInter := false
	for i := 0; i < u.N() && !foundInter; i++ {
		for j := 0; j < u.N(); j++ {
			if i != j && u.ASOf(i) != u.ASOf(j) {
				if u.PeeringSessionCap(i, j) >= u.PeeringSessionCap(i, i) {
					t.Fatal("inter-AS session cap should be below access capacity")
				}
				foundInter = true
				break
			}
		}
	}
	if !foundInter {
		t.Skip("all sites in one AS")
	}
}

func TestMultihomingDegreePositive(t *testing.T) {
	u := mustNew(t, Config{N: 50, Seed: 19})
	for i := 0; i < u.N(); i++ {
		if u.MultihomingDegree(i) < 1 {
			t.Fatalf("site %d multihoming degree %d, want >= 1 (AS ring guarantees peering)",
				i, u.MultihomingDegree(i))
		}
	}
}

// Property: delays remain positive and finite under arbitrary dynamics.
func TestDelayStaysPositiveProperty(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		u, err := New(Config{N: 10, Seed: seed})
		if err != nil {
			return false
		}
		for s := 0; s < int(steps%50); s++ {
			u.Step(1)
		}
		for i := 0; i < u.N(); i++ {
			for j := 0; j < u.N(); j++ {
				if i == j {
					continue
				}
				d := u.Delay(i, j)
				if d <= 0 || math.IsNaN(d) || math.IsInf(d, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
