package underlay

import (
	"math"
	"strings"
	"testing"
)

func TestNewLiteValidation(t *testing.T) {
	for _, n := range []int{-1, 0, 1} {
		if _, err := NewLite(n, 1); err == nil {
			t.Fatalf("NewLite(%d) accepted", n)
		}
	}
}

// TestLiteDelayProperties checks the constant-memory underlay against
// the properties the scale engine depends on: zero self-delay, strictly
// positive pair delays bounded by access + inflated antipodal
// propagation, determinism in (n, seed), and the deliberate asymmetry
// of the per-pair inflation hash.
func TestLiteDelayProperties(t *testing.T) {
	const n = 60
	l, err := NewLite(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	if l.N() != n {
		t.Fatalf("N() = %d, want %d", l.N(), n)
	}
	mix := PlanetLabMix(n)
	counts := map[Region]int{}
	for i := 0; i < n; i++ {
		counts[l.Site(i).Region]++
	}
	for r := Region(0); r < numRegions; r++ {
		if counts[r] != mix[r] {
			t.Fatalf("region %v has %d sites, mix says %d", r, counts[r], mix[r])
		}
	}
	// Antipodal upper bound: access + half circumference × factor × max
	// inflation.
	maxDelay := 2 + math.Pi*6371*0.015*1.36
	asymmetric := false
	for i := 0; i < n; i++ {
		if d := l.Delay(i, i); d != 0 {
			t.Fatalf("Delay(%d,%d) = %v, want 0", i, i, d)
		}
		for j := i + 1; j < n; j++ {
			dij, dji := l.Delay(i, j), l.Delay(j, i)
			if dij <= 0 || dji <= 0 {
				t.Fatalf("non-positive delay (%d,%d): %v / %v", i, j, dij, dji)
			}
			if dij > maxDelay || dji > maxDelay {
				t.Fatalf("delay (%d,%d) beyond antipodal bound %v: %v / %v", i, j, maxDelay, dij, dji)
			}
			if dij != dji {
				asymmetric = true
			}
		}
	}
	if !asymmetric {
		t.Fatal("every pair symmetric; the per-pair inflation hash should differ on (i,j) vs (j,i)")
	}

	l2, err := NewLite(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if l.Delay(i, j) != l2.Delay(i, j) {
				t.Fatalf("same (n, seed) but Delay(%d,%d) differs", i, j)
			}
		}
	}
}

func TestRegionString(t *testing.T) {
	seen := map[string]bool{}
	for r := Region(0); r < numRegions; r++ {
		s := r.String()
		if s == "" || strings.HasPrefix(s, "Region(") {
			t.Fatalf("region %d has no name: %q", int(r), s)
		}
		if seen[s] {
			t.Fatalf("duplicate region name %q", s)
		}
		seen[s] = true
	}
	if s := Region(99).String(); s != "Region(99)" {
		t.Fatalf("unknown region prints %q", s)
	}
}
