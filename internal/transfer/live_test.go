package transfer

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"egoist/internal/core"
	"egoist/internal/linkstate"
	"egoist/internal/overlay"
	"egoist/internal/topology"
)

// TestTransferOverLiveOverlay runs a multipath file transfer across a real
// overlay: goroutine nodes, link-state flooding, hop-by-hop forwarding.
func TestTransferOverLiveOverlay(t *testing.T) {
	const n, k = 6, 2
	bus := linkstate.NewBus(n)
	defer bus.Close()
	m := topology.RingLattice(n, 4)
	nodes := make([]*overlay.Node, n)
	for i := 0; i < n; i++ {
		node, err := overlay.Start(overlay.Config{
			ID: i, N: n, K: k,
			Policy:    core.BRPolicy{},
			Transport: bus.Endpoint(i),
			Epoch:     80 * time.Millisecond,
			Announce:  25 * time.Millisecond,
			Bootstrap: []int{(i + n - 1) % n},
			DelayOracle: func(from, to int) float64 {
				return m[from][to]
			},
			Seed: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	defer func() {
		for _, node := range nodes {
			node.Stop()
		}
	}()

	// Wait for overlay convergence.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		ready := true
		for _, node := range nodes {
			if len(node.KnownNodes()) < n-1 {
				ready = false
				break
			}
		}
		if ready {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}

	sender := New(nodes[0])
	receiver := New(nodes[3])
	var mu sync.Mutex
	var got []byte
	receiver.OnComplete(func(src int, id uint64, data []byte) {
		mu.Lock()
		got = data
		mu.Unlock()
	})

	data := payload(20000, 99)
	if _, err := sender.Transfer(3, data, 2048, true); err != nil {
		t.Fatal(err)
	}
	// Drive repair until delivered (data may race ahead of route
	// convergence; NACK ticks recover anything dropped).
	deadline = time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		done := got != nil
		mu.Unlock()
		if done {
			break
		}
		receiver.Tick()
		time.Sleep(50 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if !bytes.Equal(got, data) {
		t.Fatalf("live transfer incomplete: got %d bytes, want %d", len(got), len(data))
	}
}
