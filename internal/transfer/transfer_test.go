package transfer

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

// fakePlane is an in-memory loopback data plane connecting n managers
// directly (no overlay in between), with optional loss.
type fakePlane struct {
	id    int
	net   *fakeNet
	mu    sync.Mutex
	hnd   func(src int, payload []byte)
	sends int
	vias  map[int]int
}

type fakeNet struct {
	mu     sync.Mutex
	planes []*fakePlane
	rng    *rand.Rand
	loss   float64
}

func newFakeNet(n int, loss float64, seed int64) *fakeNet {
	net := &fakeNet{rng: rand.New(rand.NewSource(seed)), loss: loss}
	for i := 0; i < n; i++ {
		net.planes = append(net.planes, &fakePlane{id: i, net: net, vias: map[int]int{}})
	}
	return net
}

func (p *fakePlane) ID() int { return p.id }

func (p *fakePlane) Neighbors() []int {
	var out []int
	for i := range p.net.planes {
		if i != p.id {
			out = append(out, i)
		}
	}
	return out
}

func (p *fakePlane) Send(dst int, payload []byte) error {
	return p.deliver(dst, payload)
}

func (p *fakePlane) SendVia(dst, via int, payload []byte) error {
	p.mu.Lock()
	p.vias[via]++
	p.mu.Unlock()
	return p.deliver(dst, payload)
}

func (p *fakePlane) deliver(dst int, payload []byte) error {
	p.mu.Lock()
	p.sends++
	p.mu.Unlock()
	net := p.net
	net.mu.Lock()
	drop := net.rng.Float64() < net.loss
	target := net.planes[dst]
	net.mu.Unlock()
	if drop {
		return nil
	}
	target.mu.Lock()
	h := target.hnd
	target.mu.Unlock()
	if h != nil {
		h(p.id, append([]byte(nil), payload...))
	}
	return nil
}

func (p *fakePlane) SetDataHandler(h func(src int, payload []byte)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hnd = h
}

func payload(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	rng.Read(out)
	return out
}

func TestTransferLossless(t *testing.T) {
	net := newFakeNet(2, 0, 1)
	tx := New(net.planes[0])
	rx := New(net.planes[1])
	var mu sync.Mutex
	var got []byte
	rx.OnComplete(func(src int, id uint64, data []byte) {
		mu.Lock()
		got = data
		mu.Unlock()
	})
	data := payload(40000, 2)
	if _, err := tx.Transfer(1, data, 4096, false); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if !bytes.Equal(got, data) {
		t.Fatalf("received %d bytes, want %d identical", len(got), len(data))
	}
	if tx.Pending() != 0 {
		t.Fatalf("transfer still pending after completion ack")
	}
}

func TestTransferRepairsLoss(t *testing.T) {
	net := newFakeNet(2, 0.3, 3)
	tx := New(net.planes[0])
	rx := New(net.planes[1])
	var mu sync.Mutex
	var got []byte
	rx.OnComplete(func(src int, id uint64, data []byte) {
		mu.Lock()
		got = data
		mu.Unlock()
	})
	data := payload(60000, 4)
	if _, err := tx.Transfer(1, data, 2048, false); err != nil {
		t.Fatal(err)
	}
	// Drive repair rounds until complete (bounded).
	for round := 0; round < 200; round++ {
		mu.Lock()
		done := got != nil
		mu.Unlock()
		if done {
			break
		}
		rx.Tick()
	}
	mu.Lock()
	defer mu.Unlock()
	if !bytes.Equal(got, data) {
		t.Fatalf("transfer never completed under 30%% loss (got %d/%d bytes)", len(got), len(data))
	}
}

func TestTransferMultipathSpreadsFirstHops(t *testing.T) {
	net := newFakeNet(4, 0, 5)
	tx := New(net.planes[0])
	rx := New(net.planes[3])
	var mu sync.Mutex
	complete := false
	rx.OnComplete(func(src int, id uint64, data []byte) {
		mu.Lock()
		complete = true
		mu.Unlock()
	})
	data := payload(30000, 6)
	if _, err := tx.Transfer(3, data, 1024, true); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if !complete {
		mu.Unlock()
		t.Fatal("multipath transfer incomplete on lossless net")
	}
	mu.Unlock()
	p := net.planes[0]
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.vias) < 2 {
		t.Fatalf("chunks used %d distinct first hops, want >= 2: %v", len(p.vias), p.vias)
	}
}

func TestTransferValidation(t *testing.T) {
	net := newFakeNet(2, 0, 7)
	m := New(net.planes[0])
	if _, err := m.Transfer(0, []byte("x"), 0, false); err == nil {
		t.Fatal("self transfer accepted")
	}
	if _, err := m.Transfer(1, nil, 0, false); err == nil {
		t.Fatal("empty payload accepted")
	}
}

func TestMalformedMessagesIgnored(t *testing.T) {
	net := newFakeNet(2, 0, 8)
	New(net.planes[0])
	rxPlane := net.planes[1]
	New(rxPlane)
	// Inject garbage directly into node 1's handler.
	rxPlane.mu.Lock()
	h := rxPlane.hnd
	rxPlane.mu.Unlock()
	for _, garbage := range [][]byte{
		nil,
		{},
		{0xFF},
		{kindChunk, 1, 2},   // short chunk
		{kindNack, 0, 0, 0}, // short nack
		{kindDone},          // short done
	} {
		h(0, garbage) // must not panic
	}
	// Chunk with absurd total.
	buf := make([]byte, chunkHeader)
	buf[0] = kindChunk
	buf[13] = 0xFF
	buf[14] = 0xFF
	buf[15] = 0xFF
	buf[16] = 0xFF
	h(0, buf)
}

func TestConcurrentTransfers(t *testing.T) {
	net := newFakeNet(3, 0, 9)
	m0 := New(net.planes[0])
	m1 := New(net.planes[1])
	m2 := New(net.planes[2])
	var mu sync.Mutex
	results := map[int][]byte{}
	collect := func(dst int, mgr *Manager) {
		mgr.OnComplete(func(src int, id uint64, data []byte) {
			mu.Lock()
			results[dst] = data
			mu.Unlock()
		})
	}
	collect(1, m1)
	collect(2, m2)
	d1 := payload(9000, 10)
	d2 := payload(7000, 11)
	if _, err := m0.Transfer(1, d1, 1000, false); err != nil {
		t.Fatal(err)
	}
	if _, err := m0.Transfer(2, d2, 1000, false); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if !bytes.Equal(results[1], d1) || !bytes.Equal(results[2], d2) {
		t.Fatal("concurrent transfers corrupted")
	}
}

func TestProgressCallback(t *testing.T) {
	net := newFakeNet(2, 0, 12)
	tx := New(net.planes[0])
	rx := New(net.planes[1])
	var mu sync.Mutex
	updates := 0
	rx.OnProgress(func(id uint64, got, total int) {
		mu.Lock()
		updates++
		mu.Unlock()
	})
	if _, err := tx.Transfer(1, payload(5000, 13), 1000, false); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if updates != 5 {
		t.Fatalf("progress updates = %d, want 5", updates)
	}
}
