// Package transfer implements the multipath file-transfer application of
// Sect. 6.1 on the live overlay data plane: a payload is split into
// chunks, the chunks are spread over parallel first-hop redirections
// (escaping per-session rate caps at AS peering points), and a NACK-based
// repair loop retransmits whatever the lossy datagram substrate drops.
//
// The package speaks through the DataPlane interface, which *overlay.Node
// satisfies, so the same code runs over the in-memory bus and over UDP.
package transfer

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// DataPlane is the overlay routing service a transfer runs on.
type DataPlane interface {
	// ID returns the local node id.
	ID() int
	// Neighbors returns the current first-hop candidates.
	Neighbors() []int
	// Send routes a payload to dst over overlay shortest paths.
	Send(dst int, payload []byte) error
	// SendVia routes a payload forcing the first overlay hop.
	SendVia(dst, via int, payload []byte) error
	// SetDataHandler installs the delivery callback.
	SetDataHandler(h func(src int, payload []byte))
}

// Wire message kinds inside overlay data payloads.
const (
	kindChunk = 0x01
	kindNack  = 0x02
	kindDone  = 0x03
)

// chunkHeader is kind(1) + transferID(8) + index(4) + total(4).
const chunkHeader = 17

// MaxChunk bounds one chunk's data bytes.
const MaxChunk = 16 * 1024

// maxNackList bounds how many missing indices one NACK carries.
const maxNackList = 512

// Manager runs transfers over one data plane. Install exactly one Manager
// per node; it takes over the node's data handler.
type Manager struct {
	dp DataPlane

	mu         sync.Mutex
	nextID     uint64
	outgoing   map[uint64]*txState
	incoming   map[rxKey]*rxState
	onComplete func(src int, id uint64, data []byte)
	onProgress func(id uint64, got, total int)
}

type rxKey struct {
	src int
	id  uint64
}

type txState struct {
	dst       int
	chunks    [][]byte
	done      bool
	multipath bool
	rotor     int
}

type rxState struct {
	chunks [][]byte
	got    int
}

// New installs a Manager on the data plane.
func New(dp DataPlane) *Manager {
	m := &Manager{
		dp:       dp,
		outgoing: map[uint64]*txState{},
		incoming: map[rxKey]*rxState{},
	}
	dp.SetDataHandler(m.handle)
	return m
}

// OnComplete installs the receive-side completion callback.
func (m *Manager) OnComplete(f func(src int, id uint64, data []byte)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onComplete = f
}

// OnProgress installs an optional receive-side progress callback.
func (m *Manager) OnProgress(f func(id uint64, got, total int)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onProgress = f
}

// Transfer starts sending data to dst in chunks of chunkSize bytes.
// When multipath is set, chunks round-robin over the node's first-hop
// neighbors (the parallel sessions of Fig. 9/10); otherwise they follow
// the shortest path. It returns the transfer id. Lost chunks are repaired
// when the receiver NACKs; drive repair with Tick.
func (m *Manager) Transfer(dst int, data []byte, chunkSize int, multipath bool) (uint64, error) {
	if dst == m.dp.ID() {
		return 0, fmt.Errorf("transfer: cannot send to self")
	}
	if len(data) == 0 {
		return 0, fmt.Errorf("transfer: empty payload")
	}
	if chunkSize <= 0 || chunkSize > MaxChunk {
		chunkSize = 4096
	}
	var chunks [][]byte
	for off := 0; off < len(data); off += chunkSize {
		end := off + chunkSize
		if end > len(data) {
			end = len(data)
		}
		chunks = append(chunks, data[off:end])
	}
	m.mu.Lock()
	m.nextID++
	id := m.nextID
	tx := &txState{dst: dst, chunks: chunks, multipath: multipath}
	m.outgoing[id] = tx
	m.mu.Unlock()

	for idx := range chunks {
		m.sendChunk(id, tx, idx)
	}
	return id, nil
}

// sendChunk transmits one chunk, rotating over first hops when multipath.
func (m *Manager) sendChunk(id uint64, tx *txState, idx int) {
	buf := make([]byte, chunkHeader+len(tx.chunks[idx]))
	buf[0] = kindChunk
	binary.BigEndian.PutUint64(buf[1:], id)
	binary.BigEndian.PutUint32(buf[9:], uint32(idx))
	binary.BigEndian.PutUint32(buf[13:], uint32(len(tx.chunks)))
	copy(buf[chunkHeader:], tx.chunks[idx])

	if tx.multipath {
		if nbs := m.dp.Neighbors(); len(nbs) > 0 {
			m.mu.Lock()
			via := nbs[tx.rotor%len(nbs)]
			tx.rotor++
			m.mu.Unlock()
			if err := m.dp.SendVia(tx.dst, via, buf); err == nil {
				return
			}
		}
	}
	_ = m.dp.Send(tx.dst, buf)
}

// Tick drives the repair loop once: incomplete receivers NACK their
// missing chunks. Call it periodically (e.g. once per RTT estimate).
func (m *Manager) Tick() {
	m.mu.Lock()
	type nack struct {
		src     int
		id      uint64
		missing []uint32
	}
	var nacks []nack
	for key, rx := range m.incoming {
		if rx.got == len(rx.chunks) {
			continue
		}
		var missing []uint32
		for i, c := range rx.chunks {
			if c == nil {
				missing = append(missing, uint32(i))
				if len(missing) >= maxNackList {
					break
				}
			}
		}
		nacks = append(nacks, nack{src: key.src, id: key.id, missing: missing})
	}
	m.mu.Unlock()
	for _, nk := range nacks {
		buf := make([]byte, 13+4*len(nk.missing))
		buf[0] = kindNack
		binary.BigEndian.PutUint64(buf[1:], nk.id)
		binary.BigEndian.PutUint32(buf[9:], uint32(len(nk.missing)))
		for i, idx := range nk.missing {
			binary.BigEndian.PutUint32(buf[13+4*i:], idx)
		}
		_ = m.dp.Send(nk.src, buf)
	}
}

// Pending reports how many outgoing transfers are unacknowledged.
func (m *Manager) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, tx := range m.outgoing {
		if !tx.done {
			n++
		}
	}
	return n
}

// handle dispatches inbound transfer messages.
func (m *Manager) handle(src int, payload []byte) {
	if len(payload) < 1 {
		return
	}
	switch payload[0] {
	case kindChunk:
		m.handleChunk(src, payload)
	case kindNack:
		m.handleNack(src, payload)
	case kindDone:
		m.handleDone(payload)
	}
}

func (m *Manager) handleChunk(src int, payload []byte) {
	if len(payload) < chunkHeader {
		return
	}
	id := binary.BigEndian.Uint64(payload[1:])
	idx := int(binary.BigEndian.Uint32(payload[9:]))
	total := int(binary.BigEndian.Uint32(payload[13:]))
	if total <= 0 || idx < 0 || idx >= total || total > 1<<20 {
		return
	}
	key := rxKey{src: src, id: id}
	var complete []byte
	var progress func(uint64, int, int)
	var completeCB func(int, uint64, []byte)

	m.mu.Lock()
	rx, ok := m.incoming[key]
	if !ok {
		rx = &rxState{chunks: make([][]byte, total)}
		m.incoming[key] = rx
	}
	if len(rx.chunks) == total && rx.chunks[idx] == nil {
		rx.chunks[idx] = append([]byte(nil), payload[chunkHeader:]...)
		rx.got++
		progress = m.onProgress
		if rx.got == total {
			for _, c := range rx.chunks {
				complete = append(complete, c...)
			}
			completeCB = m.onComplete
			delete(m.incoming, key)
		}
	}
	got, tot := rx.got, len(rx.chunks)
	m.mu.Unlock()

	if progress != nil {
		progress(id, got, tot)
	}
	if complete != nil {
		// Acknowledge completion so the sender can drop its buffers.
		done := make([]byte, 9)
		done[0] = kindDone
		binary.BigEndian.PutUint64(done[1:], id)
		_ = m.dp.Send(src, done)
		if completeCB != nil {
			completeCB(src, id, complete)
		}
	}
}

func (m *Manager) handleNack(src int, payload []byte) {
	if len(payload) < 13 {
		return
	}
	id := binary.BigEndian.Uint64(payload[1:])
	count := int(binary.BigEndian.Uint32(payload[9:]))
	if count < 0 || count > maxNackList || len(payload) != 13+4*count {
		return
	}
	m.mu.Lock()
	tx, ok := m.outgoing[id]
	m.mu.Unlock()
	if !ok || tx.done || tx.dst != src {
		return
	}
	for i := 0; i < count; i++ {
		idx := int(binary.BigEndian.Uint32(payload[13+4*i:]))
		if idx >= 0 && idx < len(tx.chunks) {
			m.sendChunk(id, tx, idx)
		}
	}
}

func (m *Manager) handleDone(payload []byte) {
	if len(payload) != 9 {
		return
	}
	id := binary.BigEndian.Uint64(payload[1:])
	m.mu.Lock()
	if tx, ok := m.outgoing[id]; ok {
		tx.done = true
		tx.chunks = nil
	}
	m.mu.Unlock()
}
