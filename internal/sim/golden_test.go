package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"egoist/internal/sampling"
)

// This file pins the scale engine's trajectory across refactors. The
// digests below are the SHA-256 of the wall-clock-stripped ScaleResult
// JSON, recorded on the engine as it stood BEFORE the PR-7 shard
// refactor. Sharding is a physical partitioning of the same logical
// computation, so any shard count — including the shards=1 default
// every existing caller gets — must reproduce these bytes exactly.
// A digest change here means the dynamics changed for existing users,
// which is exactly what the no-regression acceptance criterion forbids;
// do not regenerate these values to make a refactor pass.

// goldenConfigs returns the pinned configurations. The churn-heavy one
// exercises every serial mutation path (leaves, rejoins, fresh joins,
// demand flips, directory repair between sub-rounds); the static one is
// the plain convergence path most callers run.
func goldenConfigs() map[string]ScaleConfig {
	return map[string]ScaleConfig{
		"churn-heavy": churnHeavyConfig(2),
		"static": {
			N: 200, K: 3, Seed: 5,
			Sample:    sampling.Spec{Strategy: sampling.Demand, M: 40},
			MaxEpochs: 10, Workers: 2,
		},
	}
}

// goldenDigests are the pre-PR-7 reference digests (see file comment).
var goldenDigests = map[string]string{
	"churn-heavy": "ea40cffbb49f7086f7dffebb33b99e687c5046815cf8bf2b4ba57992d82fece0",
	"static":      "3ff027fa3381426679d273c8914cc24aa33c55e2d22cf812061b49c783c29db6",
}

// TestScaleGoldenDigest runs each pinned config and compares the result
// digest against the pre-refactor reference.
func TestScaleGoldenDigest(t *testing.T) {
	for name, cfg := range goldenConfigs() {
		t.Run(name, func(t *testing.T) {
			res, err := RunScale(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sum := sha256.Sum256(resultJSON(t, res))
			got := hex.EncodeToString(sum[:])
			if want := goldenDigests[name]; got != want {
				t.Fatalf("ScaleResult digest drifted from the pre-shard-refactor engine:\n got %s\nwant %s", got, want)
			}
		})
	}
}
