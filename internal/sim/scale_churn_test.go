package sim

import (
	"reflect"
	"testing"

	"egoist/internal/churn"
	"egoist/internal/sampling"
)

// emptySchedule is an all-on schedule with no events: it routes the run
// through the dynamic-membership machinery (alive-masked sampling,
// reverse index) without ever changing membership, which is how the
// rescue test obtains a byte-identical prefix for its churned twin.
func emptySchedule(n int) *churn.Schedule {
	s := &churn.Schedule{N: n, InitialOn: make([]bool, n)}
	for i := range s.InitialOn {
		s.InitialOn[i] = true
	}
	return s
}

// waveSchedule turns the given nodes off (or on) at time t.
func waveSchedule(n int, t float64, nodes []int, on bool) *churn.Schedule {
	s := emptySchedule(n)
	if on {
		for _, v := range nodes {
			s.InitialOn[v] = false
		}
	}
	for _, v := range nodes {
		s.Events = append(s.Events, churn.Event{Time: t, Node: v, On: on})
	}
	return s
}

// TestScaleChurnDeterministicAcrossWorkers is the dynamic-membership
// determinism contract: a run with joins, leaves and a demand flip must
// be byte-identical at any worker count.
func TestScaleChurnDeterministicAcrossWorkers(t *testing.T) {
	const n = 120
	sched := emptySchedule(n)
	for v := 0; v < n; v += 9 { // leaves spread across epochs 1..2
		sched.Events = append(sched.Events, churn.Event{Time: 1 + float64(v)/float64(n), Node: v, On: false})
	}
	for v := 3; v < n; v += 11 { // rejoining and fresh joins in epoch 3
		sched.Events = append(sched.Events, churn.Event{Time: 3 + float64(v)/float64(n), Node: v, On: true})
	}
	hotA := func(i, j int) float64 { return 1 + float64((i+j)%5) }
	hotB := func(i, j int) float64 { return 1 + float64((i+2*j)%7) }
	base := ScaleConfig{
		N: n, K: 3, Seed: 17, MaxEpochs: 6,
		Sample: sampling.Spec{Strategy: sampling.Demand, M: 25},
		Churn:  sched,
		DemandAt: func(epoch int) func(i, j int) float64 {
			if epoch >= 4 {
				return hotB
			}
			return hotA
		},
	}
	cfgA := base
	cfgA.Workers = 1
	cfgB := base
	cfgB.Workers = 8
	a, err := RunScale(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScale(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripWall(a), stripWall(b)) {
		t.Fatal("Workers 1 vs 8 diverged under churn")
	}
	if a.Leaves == 0 || a.Joins == 0 {
		t.Fatalf("schedule did not exercise both event kinds: joins=%d leaves=%d", a.Joins, a.Leaves)
	}
}

// TestScaleChurnIncrementalDirectory pins the directory-maintenance
// invariant: membership events mid-epoch repair the facility directory
// incrementally — a full DynamicRows rebuild happens exactly once per
// epoch, never per event.
func TestScaleChurnIncrementalDirectory(t *testing.T) {
	const n = 150
	sched := emptySchedule(n)
	// A mid-epoch leave wave plus scattered joins/leaves across epochs.
	for v := 0; v < 20; v++ {
		sched.Events = append(sched.Events, churn.Event{Time: 2.5, Node: v * 3, On: false})
	}
	for v := 0; v < 10; v++ {
		sched.Events = append(sched.Events, churn.Event{Time: 3.5, Node: v * 3, On: true})
	}
	res, err := RunScale(ScaleConfig{
		N: n, K: 3, Seed: 23, MaxEpochs: 6, Workers: 2,
		Sample: sampling.Spec{Strategy: sampling.Uniform, M: 30},
		Churn:  sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Leaves != 20 || res.Joins != 10 {
		t.Fatalf("events applied: joins=%d leaves=%d, want 10/20", res.Joins, res.Leaves)
	}
	if res.DirectoryResets != res.Epochs {
		t.Fatalf("directory fully rebuilt %d times over %d epochs: membership events must repair incrementally",
			res.DirectoryResets, res.Epochs)
	}
	if res.DirectoryApplies == 0 {
		t.Fatal("no incremental directory repairs recorded")
	}
}

// TestScaleRescueWithinOneEpoch is the rescue-path property: a node
// whose last neighbor departs must re-wire within one epoch. The
// churned run shares a byte-identical prefix with an event-free twin
// (both run the dynamic path), so the victim's wiring at the event
// epoch is known exactly and the kill provably orphans it.
func TestScaleRescueWithinOneEpoch(t *testing.T) {
	const n, k, batches, preEpochs = 150, 3, 16, 3
	for _, seed := range []int64{1, 2, 3} {
		base := ScaleConfig{
			N: n, K: k, Seed: seed, Workers: 2,
			Sample:         sampling.Spec{Strategy: sampling.Uniform, M: 30},
			StaggerBatches: batches,
			ConvergedFrac:  -1, // never stop early: the prefix must span all epochs
		}
		pre := base
		pre.MaxEpochs = preEpochs
		pre.Churn = emptySchedule(n)
		preRes, err := RunScale(pre)
		if err != nil {
			t.Fatal(err)
		}
		// The victim acts in sub-round x mod batches = 5, safely after
		// the kill lands (before sub-round 1), so its whole wiring is
		// provably orphaned when its slot comes — within the same epoch.
		const x = 5
		victims := append([]int(nil), preRes.Wiring[x]...)
		if len(victims) == 0 {
			t.Fatalf("seed %d: victim has no wiring to kill", seed)
		}
		run := base
		run.MaxEpochs = preEpochs + 1
		run.Churn = waveSchedule(n, preEpochs, victims, false)
		res, err := RunScale(run)
		if err != nil {
			t.Fatal(err)
		}
		if res.Leaves != len(victims) {
			t.Fatalf("seed %d: %d leaves applied, want %d (prefix diverged?)", seed, res.Leaves, len(victims))
		}
		dead := map[int]bool{}
		for _, v := range victims {
			dead[v] = true
		}
		w := res.Wiring[x]
		if len(w) == 0 {
			t.Fatalf("seed %d: orphaned node %d did not re-wire within the event epoch", seed, x)
		}
		for _, v := range w {
			if dead[v] {
				t.Fatalf("seed %d: node %d still wired to departed node %d", seed, x, v)
			}
		}
		// Global invariant: every alive node ends wired, to alive
		// targets only.
		for i, wi := range res.Wiring {
			if dead[i] {
				if wi != nil {
					t.Fatalf("seed %d: departed node %d kept wiring %v", seed, i, wi)
				}
				continue
			}
			if len(wi) == 0 {
				t.Fatalf("seed %d: alive node %d ended unwired", seed, i)
			}
			for _, v := range wi {
				if dead[v] {
					t.Fatalf("seed %d: node %d wired to departed node %d", seed, i, v)
				}
			}
		}
	}
}

// TestScaleLeaveWaveRecovery is the small-scale version of the headline
// acceptance run: after a 5% leave wave the mean estimated cost must
// return to within 5% of its pre-event value within 3 epochs.
func TestScaleLeaveWaveRecovery(t *testing.T) {
	const n, k = 400, 4
	const waveEpoch = 4
	var victims []int
	for v := 0; v < n && len(victims) < n/20; v += 20 {
		victims = append(victims, v)
	}
	res, err := RunScale(ScaleConfig{
		N: n, K: k, Seed: 2008, Workers: 2, MaxEpochs: waveEpoch + 4,
		Sample:        sampling.Spec{Strategy: sampling.Demand, M: 60},
		Churn:         waveSchedule(n, waveEpoch+0.3, victims, false),
		ConvergedFrac: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs < waveEpoch+4 {
		t.Fatalf("run stopped after %d epochs", res.Epochs)
	}
	pre := res.PerEpoch[waveEpoch-1].MeanEstCost
	recovered := -1
	for d := 1; waveEpoch+d < res.Epochs; d++ {
		if res.PerEpoch[waveEpoch+d].MeanEstCost <= pre*1.05 {
			recovered = d
			break
		}
	}
	if recovered < 0 || recovered > 3 {
		costs := make([]float64, res.Epochs)
		for e, ep := range res.PerEpoch {
			costs[e] = ep.MeanEstCost
		}
		t.Fatalf("no recovery within 3 epochs of the wave (pre=%.1f, costs=%v)", pre, costs)
	}
}

// TestScaleJoinWave checks a flash-crowd join wave integrates: joiners
// end up wired to alive targets and the overlay keeps converging.
func TestScaleJoinWave(t *testing.T) {
	const n = 200
	var joiners []int
	for v := 0; v < n; v += 4 { // 25% of the roster joins at epoch 3
		joiners = append(joiners, v)
	}
	res, err := RunScale(ScaleConfig{
		N: n, K: 3, Seed: 5, Workers: 2, MaxEpochs: 8,
		Sample: sampling.Spec{Strategy: sampling.Uniform, M: 30},
		Churn:  waveSchedule(n, 3.1, joiners, true),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Joins != len(joiners) {
		t.Fatalf("joins applied = %d, want %d", res.Joins, len(joiners))
	}
	for _, v := range joiners {
		if len(res.Wiring[v]) == 0 {
			t.Fatalf("joiner %d ended unwired", v)
		}
	}
	last := res.PerEpoch[res.Epochs-1]
	if last.Alive != n {
		t.Fatalf("alive at end = %d, want %d", last.Alive, n)
	}
}

// TestScaleChurnRejectsBadConfig covers the churn validation paths.
func TestScaleChurnRejectsBadConfig(t *testing.T) {
	spec := sampling.Spec{Strategy: sampling.Uniform, M: 10}
	wrongN := emptySchedule(30)
	if _, err := RunScale(ScaleConfig{N: 50, K: 3, Sample: spec, Churn: wrongN}); err == nil {
		t.Error("churn schedule with wrong N accepted")
	}
	drained := emptySchedule(50)
	for v := 3; v < 50; v++ {
		drained.InitialOn[v] = false // only 3 alive < K+2
	}
	if _, err := RunScale(ScaleConfig{N: 50, K: 3, Sample: spec, Churn: drained}); err == nil {
		t.Error("near-empty initial roster accepted")
	}
	unordered := emptySchedule(20)
	unordered.Events = []churn.Event{{Time: 2, Node: 1, On: false}, {Time: 1, Node: 2, On: false}}
	if _, err := RunScale(ScaleConfig{N: 20, K: 3, Sample: spec, Churn: unordered}); err == nil {
		t.Error("out-of-order schedule accepted")
	}
}
