package sim

import (
	"math"
	"math/rand"
	"testing"

	"egoist/internal/core"
	"egoist/internal/topology"
)

func TestTraceNetworkValidation(t *testing.T) {
	bad := topology.NewMatrix(3) // zeros off-diagonal: invalid
	if _, err := NewTraceNetwork(bad, 0, 1); err == nil {
		t.Fatal("invalid matrix accepted")
	}
}

func TestTraceNetworkServesMatrix(t *testing.T) {
	m := topology.RingLattice(6, 10)
	net, err := NewTraceNetwork(m, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if net.N() != 6 {
		t.Fatalf("N = %d", net.N())
	}
	if net.Delay(0, 1) != 10 || net.Delay(1, 1) != 0 {
		t.Fatalf("delays wrong: %v %v", net.Delay(0, 1), net.Delay(1, 1))
	}
	net.Step(1) // frozen trace: no change
	if net.Delay(0, 1) != 10 {
		t.Fatal("jitter-free trace changed on Step")
	}
	if net.Load(0) <= 0 || net.AvailBW(0, 1) <= 0 {
		t.Fatal("load/bandwidth must be positive placeholders")
	}
}

func TestTraceNetworkJitterStaysSane(t *testing.T) {
	m := topology.Waxman(10, 100, rand.New(rand.NewSource(2)))
	net, err := NewTraceNetwork(m, 0.08, 3)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 30; s++ {
		net.Step(1)
	}
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if i == j {
				continue
			}
			ratio := net.Delay(i, j) / m[i][j]
			if ratio < 0.2 || ratio > 3 || math.IsNaN(ratio) {
				t.Fatalf("delay(%d,%d) drifted by %v", i, j, ratio)
			}
		}
	}
}

func TestSimOverTraceNetwork(t *testing.T) {
	m := topology.Waxman(20, 150, rand.New(rand.NewSource(4)))
	net, err := NewTraceNetwork(m, 0.05, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		N: 20, K: 3, Seed: 6, Metric: DelayPing, Policy: core.BRPolicy{},
		WarmEpochs: 5, MeasureEpochs: 4, Network: net,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.Mean <= 0 || res.Cost.Mean >= core.DisconnectedPenalty {
		t.Fatalf("trace-driven cost = %v", res.Cost.Mean)
	}
}

func TestSimNetworkSizeMismatch(t *testing.T) {
	m := topology.RingLattice(5, 1)
	net, err := NewTraceNetwork(m, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Config{
		N: 10, K: 2, Seed: 1, Policy: core.BRPolicy{},
		MeasureEpochs: 1, Network: net,
	}); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestBRBeatsHeuristicsOnTrace(t *testing.T) {
	m := topology.Waxman(24, 150, rand.New(rand.NewSource(7)))
	runOn := func(policy core.Policy, cycle bool) float64 {
		net, err := NewTraceNetwork(m, 0.05, 9)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{
			N: 24, K: 3, Seed: 8, Metric: DelayPing, Policy: policy,
			WarmEpochs: 5, MeasureEpochs: 4, Network: net, EnforceCycle: cycle,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cost.Mean
	}
	br := runOn(core.BRPolicy{}, false)
	krand := runOn(core.KRandom{}, true)
	if br >= krand {
		t.Fatalf("BR %v not better than k-Random %v on trace", br, krand)
	}
}
