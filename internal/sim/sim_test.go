package sim

import (
	"math"
	"math/rand"
	"testing"

	"egoist/internal/cheat"
	"egoist/internal/churn"
	"egoist/internal/core"
	"egoist/internal/graph"
	"egoist/internal/topology"
)

func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func baseCfg(policy core.Policy) Config {
	return Config{
		N: 24, K: 3, Seed: 42, Metric: DelayPing, Policy: policy,
		WarmEpochs: 6, MeasureEpochs: 4,
	}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{N: 1, K: 1, Policy: core.BRPolicy{}, MeasureEpochs: 1},
		{N: 10, K: 0, Policy: core.BRPolicy{}, MeasureEpochs: 1},
		{N: 10, K: 10, Policy: core.BRPolicy{}, MeasureEpochs: 1},
		{N: 10, K: 2, MeasureEpochs: 1},
		{N: 10, K: 2, Policy: core.BRPolicy{}},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestRunProducesFiniteCosts(t *testing.T) {
	res := run(t, baseCfg(core.BRPolicy{}))
	if math.IsNaN(res.Cost.Mean) || res.Cost.Mean <= 0 {
		t.Fatalf("mean cost = %v", res.Cost.Mean)
	}
	if res.Cost.Mean >= core.DisconnectedPenalty {
		t.Fatalf("mean cost %v includes disconnection penalties; BR overlay should be connected", res.Cost.Mean)
	}
	if res.EpochsRun != 10 {
		t.Fatalf("EpochsRun = %d, want 10", res.EpochsRun)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a := run(t, baseCfg(core.BRPolicy{}))
	b := run(t, baseCfg(core.BRPolicy{}))
	if a.Cost.Mean != b.Cost.Mean {
		t.Fatalf("same seed, different costs: %v vs %v", a.Cost.Mean, b.Cost.Mean)
	}
}

func TestBRBeatsHeuristicsOnDelay(t *testing.T) {
	br := run(t, baseCfg(core.BRPolicy{}))
	cfgRand := baseCfg(core.KRandom{})
	cfgRand.EnforceCycle = true
	krand := run(t, cfgRand)
	cfgReg := baseCfg(core.KRegular{})
	kreg := run(t, cfgReg)

	if br.Cost.Mean >= krand.Cost.Mean {
		t.Errorf("BR %.1f not better than k-Random %.1f", br.Cost.Mean, krand.Cost.Mean)
	}
	if br.Cost.Mean >= kreg.Cost.Mean {
		t.Errorf("BR %.1f not better than k-Regular %.1f", br.Cost.Mean, kreg.Cost.Mean)
	}
}

func TestFullMeshLowerBoundsBR(t *testing.T) {
	cfgMesh := baseCfg(core.FullMesh{})
	cfgMesh.K = cfgMesh.N - 1
	mesh := run(t, cfgMesh)
	br := run(t, baseCfg(core.BRPolicy{}))
	// Allow a tiny tolerance: the mesh is measured on the same dynamic
	// underlay, so individual epochs can wobble.
	if mesh.Cost.Mean > br.Cost.Mean*1.05 {
		t.Fatalf("full mesh %.1f worse than BR %.1f; should be a lower bound", mesh.Cost.Mean, br.Cost.Mean)
	}
}

func TestBandwidthMetricHigherIsBetter(t *testing.T) {
	cfg := baseCfg(core.BRPolicy{})
	cfg.Metric = Bandwidth
	br := run(t, cfg)
	cfgR := baseCfg(core.KRegular{})
	cfgR.Metric = Bandwidth
	kreg := run(t, cfgR)
	if br.Cost.Mean <= kreg.Cost.Mean {
		t.Errorf("bandwidth-BR %.1f not above k-Regular %.1f", br.Cost.Mean, kreg.Cost.Mean)
	}
}

func TestLoadMetricRuns(t *testing.T) {
	cfg := baseCfg(core.BRPolicy{})
	cfg.Metric = Load
	res := run(t, cfg)
	if math.IsNaN(res.Cost.Mean) || res.Cost.Mean <= 0 {
		t.Fatalf("load cost = %v", res.Cost.Mean)
	}
}

func TestCoordsMetricRuns(t *testing.T) {
	cfg := baseCfg(core.BRPolicy{})
	cfg.Metric = DelayCoords
	cfg.CoordRounds = 8
	res := run(t, cfg)
	if math.IsNaN(res.Cost.Mean) || res.Cost.Mean <= 0 {
		t.Fatalf("coords cost = %v", res.Cost.Mean)
	}
	if res.ProbeBits["coord"] <= 0 {
		t.Fatal("coordinate queries not accounted")
	}
}

func TestRewiringsDecayOverTime(t *testing.T) {
	cfg := baseCfg(core.BRPolicy{})
	cfg.WarmEpochs = 0
	cfg.MeasureEpochs = 24
	res := run(t, cfg)
	per := res.Rewires.PerEpoch()
	if len(per) == 0 {
		t.Fatal("no re-wiring data")
	}
	early := 0
	for _, v := range per[:4] {
		early += v
	}
	late := 0
	for _, v := range per[len(per)-4:] {
		late += v
	}
	if late > early {
		t.Fatalf("re-wirings grew over time: early %d late %d", early, late)
	}
}

func TestEpsilonReducesRewirings(t *testing.T) {
	plain := baseCfg(core.BRPolicy{})
	plain.WarmEpochs, plain.MeasureEpochs = 0, 20
	resPlain := run(t, plain)

	eps := plain
	eps.Epsilon = 0.10
	resEps := run(t, eps)

	plainTail := resPlain.Rewires.Tail(0.5)
	epsTail := resEps.Rewires.Tail(0.5)
	if epsTail > plainTail {
		t.Fatalf("BR(0.1) tail re-wirings %.1f above plain BR %.1f", epsTail, plainTail)
	}
	// And cost should not explode: within 25% of plain BR.
	if resEps.Cost.Mean > resPlain.Cost.Mean*1.25 {
		t.Fatalf("BR(0.1) cost %.1f far above plain %.1f", resEps.Cost.Mean, resPlain.Cost.Mean)
	}
}

func TestChurnReducesEfficiency(t *testing.T) {
	calm := baseCfg(core.BRPolicy{})
	calm.WarmEpochs, calm.MeasureEpochs = 4, 8
	resCalm := run(t, calm)

	sched, err := churn.GenerateSynthetic(churn.SyntheticConfig{
		N: calm.N, Horizon: 12, On: churn.Exponential{Mean: 3}, Off: churn.Exponential{Mean: 1.5}, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	churned := calm
	churned.Churn = sched
	resChurn := run(t, churned)

	if resChurn.Efficiency.Mean >= resCalm.Efficiency.Mean {
		t.Fatalf("churned efficiency %.4f not below calm %.4f",
			resChurn.Efficiency.Mean, resCalm.Efficiency.Mean)
	}
}

func TestChurnedNodesRejoinAndRewire(t *testing.T) {
	cfg := baseCfg(core.BRPolicy{})
	cfg.WarmEpochs, cfg.MeasureEpochs = 2, 10
	sched := &churn.Schedule{
		N:         cfg.N,
		InitialOn: allOn(cfg.N),
		Events: []churn.Event{
			{Time: 3.2, Node: 5, On: false},
			{Time: 6.7, Node: 5, On: true},
		},
	}
	cfg.Churn = sched
	res := run(t, cfg)
	if len(res.FinalWiring[5]) == 0 {
		t.Fatal("rejoined node has no links")
	}
	if math.IsNaN(res.PerNodeCost[5]) {
		t.Fatal("rejoined node has no cost samples")
	}
}

func TestCheaterImpactIsBounded(t *testing.T) {
	honest := baseCfg(core.BRPolicy{})
	honest.WarmEpochs, honest.MeasureEpochs = 6, 6
	resHonest := run(t, honest)

	cheating := honest
	cheating.Cheat = cheat.Single(honest.N, 3, 2)
	resCheat := run(t, cheating)

	ratio := resCheat.Cost.Mean / resHonest.Cost.Mean
	if ratio > 1.3 || ratio < 0.7 {
		t.Fatalf("single cheater moved mean cost by %.0f%%; paper says impact is small", (ratio-1)*100)
	}
}

func TestHybridBRUsesDonatedLinks(t *testing.T) {
	cfg := baseCfg(core.BRPolicy{Donated: 2})
	res := run(t, cfg)
	// Every node should carry its two ring links (alive ring = all nodes).
	for i, ws := range res.FinalWiring {
		succ := (i + 1) % cfg.N
		pred := (i - 1 + cfg.N) % cfg.N
		if !contains(ws, succ) || !contains(ws, pred) {
			t.Fatalf("node %d wiring %v missing donated ring links %d/%d", i, ws, succ, pred)
		}
	}
}

func TestOverheadAccountingPing(t *testing.T) {
	cfg := baseCfg(core.BRPolicy{})
	res := run(t, cfg)
	if res.ProbeBits["ping"] <= 0 {
		t.Fatal("ping traffic not accounted")
	}
	if res.LSABits <= 0 {
		t.Fatal("LSA traffic not accounted")
	}
}

func TestFinalWiringRespectsK(t *testing.T) {
	res := run(t, baseCfg(core.BRPolicy{}))
	for i, ws := range res.FinalWiring {
		if len(ws) > 3 {
			t.Fatalf("node %d has %d links, budget 3", i, len(ws))
		}
	}
}

// --- newcomer / sampling simulations ---------------------------------------

func newcomerCfg(grow GrowPolicy, m int) NewcomerConfig {
	rng := rand.New(rand.NewSource(11))
	return NewcomerConfig{
		Delays:     topology.Waxman(60, 150, rng),
		K:          3,
		Grow:       grow,
		SampleSize: m,
		Seed:       5,
	}
}

func TestNewcomerFullBRIsBestOnAverage(t *testing.T) {
	var brWins, trials int
	for seed := int64(0); seed < 5; seed++ {
		cfg := newcomerCfg(GrowBR, 10)
		cfg.Seed = seed
		res, err := RunNewcomer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		trials++
		if res.Ratio[NewcomerBR] >= 1-1e-9 && res.Ratio[NewcomerBRtp] >= 1-1e-9 {
			brWins++
		}
		for s, r := range res.Ratio {
			if r <= 0 || math.IsNaN(r) {
				t.Fatalf("strategy %v ratio %v", s, r)
			}
		}
	}
	if brWins < trials-1 {
		t.Fatalf("full BR beaten by sampled strategies in %d/%d trials", trials-brWins, trials)
	}
}

func TestNewcomerSampledBRBeatsHeuristics(t *testing.T) {
	sumBR, sumRand := 0.0, 0.0
	const trials = 6
	for seed := int64(0); seed < trials; seed++ {
		cfg := newcomerCfg(GrowBR, 10)
		cfg.Seed = seed
		res, err := RunNewcomer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sumBR += res.Ratio[NewcomerBR]
		sumRand += res.Ratio[NewcomerKRandom]
	}
	if sumBR >= sumRand {
		t.Fatalf("sampled BR mean ratio %.3f not below k-Random %.3f", sumBR/trials, sumRand/trials)
	}
}

func TestNewcomerLargerSamplesHelp(t *testing.T) {
	avg := func(m int) float64 {
		sum := 0.0
		const trials = 6
		for seed := int64(0); seed < trials; seed++ {
			cfg := newcomerCfg(GrowBR, m)
			cfg.Seed = seed
			res, err := RunNewcomer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sum += res.Ratio[NewcomerBR]
		}
		return sum / trials
	}
	small, large := avg(5), avg(25)
	if large > small*1.05 {
		t.Fatalf("sample 25 ratio %.3f worse than sample 5 ratio %.3f", large, small)
	}
}

func TestNewcomerAllGrowPolicies(t *testing.T) {
	for _, g := range []GrowPolicy{GrowBR, GrowKRandom, GrowKRegular, GrowKClosest} {
		cfg := newcomerCfg(g, 10)
		res, err := RunNewcomer(cfg)
		if err != nil {
			t.Fatalf("grow %v: %v", g, err)
		}
		if res.Ratio[NewcomerBRFull] != 1 {
			t.Fatalf("grow %v: baseline ratio %v != 1", g, res.Ratio[NewcomerBRFull])
		}
	}
}

func TestNewcomerValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := topology.Waxman(10, 100, rng)
	bad := []NewcomerConfig{
		{Delays: m[:2], K: 1, SampleSize: 2},
		{Delays: m, K: 0, SampleSize: 5},
		{Delays: m, K: 3, SampleSize: 1},
	}
	for i, cfg := range bad {
		if _, err := RunNewcomer(cfg); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestGrowBaseConnected(t *testing.T) {
	for _, g := range []GrowPolicy{GrowBR, GrowKRandom, GrowKRegular, GrowKClosest} {
		cfg := newcomerCfg(g, 10)
		rng := rand.New(rand.NewSource(3))
		base, err := growBase(cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		n := cfg.Delays.N()
		active := aliveUpTo(n, n-1)
		if !graph.StronglyConnected(base, active) {
			t.Fatalf("grow %v: base graph disconnected", g)
		}
	}
}

func allOn(n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = true
	}
	return out
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
