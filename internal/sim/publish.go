package sim

import "sort"

// Publication is one data-plane publication unit: the overlay state
// right after one stagger sub-round folded, plus the exact set of rows
// that changed since the previous publication — what an incremental
// publisher (plane.Snapshot.Patch) needs to derive the next snapshot
// without a full recompile.
type Publication struct {
	// Epoch is the epoch in progress; -1 is the bootstrap publication.
	Epoch int
	// SubRound is the stagger sub-round just folded (0..Rounds-1),
	// Rounds for the epoch-final churn drain, -1 for the bootstrap.
	SubRound int
	// Rounds is the run's sub-round count per epoch.
	Rounds int
	// Full marks the bootstrap publication: Changed is nil and the
	// subscriber must compile from scratch. Every later publication is
	// a delta on top of the previous one.
	Full bool
	// Changed lists, ascending and without duplicates, every node whose
	// wiring row or membership changed since the previous publication:
	// adopted re-wirings, joiners, leavers, and the in-neighbors a
	// leave orphaned. It may be empty (an idle sub-round still
	// publishes, so subscribers can pace on sub-round boundaries). The
	// slice is engine scratch, valid only for the duration of the call.
	Changed []int
	// Wiring and Active are the engine's own live arrays, borrowed
	// read-only for the duration of the call — same contract as
	// OnEpoch's arguments.
	Wiring [][]int
	Active []bool
}

// markChanged records node i into the pending publication's changed
// set. No-op when no OnPublish subscriber is attached (pubMark nil), so
// the hook costs nothing on runs that do not use it.
func (e *scaleEngine) markChanged(i int) {
	if e.pubMark == nil || e.pubMark[i] {
		return
	}
	e.pubMark[i] = true
	e.pubChanged = append(e.pubChanged, i)
}

// publish fires OnPublish with the accumulated changed set and resets
// it. Runs in the engine's serial section; the sort keeps the set
// deterministic regardless of the mark order within the sub-round.
func (e *scaleEngine) publish(epoch, sub, rounds int) {
	if e.c.OnPublish == nil {
		return
	}
	sort.Ints(e.pubChanged)
	e.c.OnPublish(Publication{
		Epoch: epoch, SubRound: sub, Rounds: rounds,
		Changed: e.pubChanged, Wiring: e.wiring, Active: e.active,
	})
	for _, i := range e.pubChanged {
		e.pubMark[i] = false
	}
	e.pubChanged = e.pubChanged[:0]
}

// pubTracker derives Publications for the full engine by diffing
// against the last published state. The full engine mutates wirings
// from several places (adoption, churn repair, the connectivity
// fallback) and — unlike the scale engine — keeps departed nodes'
// links in place awaiting delayed repair, so a row's *compiled* arcs
// change whenever a target's membership flips even though the row
// itself did not. Diffing against a retained copy, with flipped
// targets counted as row changes, captures every mutation source
// without instrumenting them; at full-engine sizes the O(n·k) scan per
// publication is noise.
type pubTracker struct {
	cb      func(Publication)
	rounds  int
	wiring  [][]int // deep copy of the last published wiring
	active  []bool
	flipped []bool // scratch: membership flips this publication
	changed []int
}

func newPubTracker(cb func(Publication), n, rounds int) *pubTracker {
	return &pubTracker{
		cb:      cb,
		rounds:  rounds,
		wiring:  make([][]int, n),
		active:  make([]bool, n),
		flipped: make([]bool, n),
	}
}

// bootstrap fires the Full publication and retains the state.
func (t *pubTracker) bootstrap(wiring [][]int, active []bool) {
	t.retain(nil, wiring, active, true)
	t.cb(Publication{Epoch: -1, SubRound: -1, Rounds: t.rounds, Full: true, Wiring: wiring, Active: active})
}

// publish diffs, fires, and retains.
func (t *pubTracker) publish(epoch, sub int, wiring [][]int, active []bool) {
	t.changed = t.changed[:0]
	anyFlip := false
	for v := range active {
		t.flipped[v] = active[v] != t.active[v]
		anyFlip = anyFlip || t.flipped[v]
	}
	for u := range wiring {
		if t.flipped[u] || !sameWiring(wiring[u], t.wiring[u]) {
			t.changed = append(t.changed, u)
			continue
		}
		if anyFlip && active[u] {
			for _, v := range wiring[u] {
				if t.flipped[v] {
					t.changed = append(t.changed, u)
					break
				}
			}
		}
	}
	t.retain(t.changed, wiring, active, false)
	t.cb(Publication{Epoch: epoch, SubRound: sub, Rounds: t.rounds, Changed: t.changed, Wiring: wiring, Active: active})
}

// retain copies the rows of the changed set (or everything when full)
// plus the membership array into the tracker's shadow state.
func (t *pubTracker) retain(changed []int, wiring [][]int, active []bool, full bool) {
	copy(t.active, active)
	if full {
		for u := range wiring {
			t.wiring[u] = append(t.wiring[u][:0], wiring[u]...)
		}
		return
	}
	for _, u := range changed {
		t.wiring[u] = append(t.wiring[u][:0], wiring[u]...)
	}
}
