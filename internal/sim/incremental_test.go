package sim

import (
	"reflect"
	"testing"

	"egoist/internal/churn"
	"egoist/internal/core"
)

// TestIncrementalMatchesBaseline pins the incremental residual engine's
// equivalence contract: Config.Incremental changes only how the
// proposal-phase residual matrices are computed (repaired shortest-path
// forests instead of per-node APSP), so every measurement must be
// byte-identical with it on and off — including under churn, HybridBR
// donated links, and the bottleneck algebra.
func TestIncrementalMatchesBaseline(t *testing.T) {
	sched, err := churn.GenerateSynthetic(churn.SyntheticConfig{
		N: 40, Horizon: 8, On: churn.Exponential{Mean: 6}, Off: churn.Exponential{Mean: 1}, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"br-delay", Config{
			N: 40, K: 3, Seed: 1, Metric: DelayPing, Policy: core.BRPolicy{},
			WarmEpochs: 2, MeasureEpochs: 3,
		}},
		{"br-epsilon-churn", Config{
			N: 40, K: 3, Seed: 2, Metric: DelayPing, Policy: core.BRPolicy{},
			Epsilon: 0.1, WarmEpochs: 1, MeasureEpochs: 4, Churn: sched,
		}},
		{"hybrid-bandwidth", Config{
			N: 30, K: 4, Seed: 3, Metric: Bandwidth, Policy: core.BRPolicy{Donated: 2},
			WarmEpochs: 1, MeasureEpochs: 3,
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			base := c.cfg
			base.Workers = 4
			inc := c.cfg
			inc.Workers = 4
			inc.Incremental = true
			a, err := Run(base)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(inc)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatal("incremental engine diverged from baseline")
			}
		})
	}
}
