package sim

import (
	"math/rand"

	"egoist/internal/core"
	"egoist/internal/graph"
	"egoist/internal/measure"
	"egoist/internal/par"
)

// This file implements the parallel best-response phase of the epoch loop
// as optimistic concurrency over the paper's staggered (one node after
// another) re-wiring semantics.
//
// At the epoch boundary every node's best response is speculatively
// computed against the announced link-state snapshot, fanned out over a
// worker pool (Config.Workers); per-node best responses share no mutable
// state, so the phase parallelizes perfectly. Adoption then replays the
// stagger order sequentially. A node's speculative proposal is used only
// while the announced view is still exactly the snapshot — i.e. no earlier
// node re-wired, churned, or had its wiring repaired this epoch. The first
// such change marks the epoch dirty and every later node falls back to the
// sequential re-wiring path against the live view.
//
// Because a clean slot sees inputs identical to the snapshot and policy
// randomness is a pure function of (seed, epoch, node), the speculative
// result equals what the sequential engine would compute at that slot:
// results are byte-identical for any worker count, including Workers: 1
// (which skips speculation entirely). Best-response dynamics converge, so
// in the common steady-state epoch no node re-wires and the whole epoch's
// solver work runs parallel; transient epochs degrade gracefully toward
// the sequential engine.

// proposal is one node's speculative phase-1 output: the proposed wiring,
// the wiring the node held at snapshot time, and — for BR policies — the
// BR(ε) adoption-test values evaluated on the snapshot residual matrix.
type proposal struct {
	set     []int // proposed wiring (nil: not computed, node was inactive)
	wiring0 []int // node's wiring at snapshot time
	hasEval bool
	curVal  float64 // objective of wiring0 on the snapshot view
	newVal  float64 // objective of set on the snapshot view
}

// computeProposals runs the speculative best-response phase for one epoch
// and returns one proposal per node (set == nil for inactive nodes). With
// an effective worker count of 1 it returns nil: speculation would only
// duplicate the sequential work it is meant to hide. It also resets the
// epoch's dirty flag for the adoption phase.
func (st *state) computeProposals(epoch int) ([]proposal, error) {
	st.epochDirty = false
	if par.Workers(st.cfg.Workers) <= 1 {
		return nil, nil
	}
	n := st.cfg.N
	kind := st.cfg.Metric.Kind()
	g := st.announcedGraph()
	active := append([]bool(nil), st.active...)
	props := make([]proposal, n)

	_, isBR := st.cfg.Policy.(core.BRPolicy)
	jobs := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if active[i] {
			jobs = append(jobs, i)
			if isBR {
				// Deep copy: EnforceCycle and backbone repair mutate wiring
				// slices in place mid-epoch, and the clean-slot BR(ε)
				// values below are only valid for the snapshot wiring.
				// Only BR policies consume it.
				props[i].wiring0 = append([]int(nil), st.wiring[i]...)
			}
		}
	}
	// With Incremental, each worker maintains one shortest-path forest
	// over the epoch snapshot: a node's residual matrix is produced by
	// cutting its out-links and repairing only the affected trees, then
	// restored exactly — same distances as BuildResid, a fraction of the
	// work once n outgrows the per-epoch forest setup.
	incremental := st.cfg.Incremental && isBR
	scratches := make([]*core.Scratch, par.Workers(st.cfg.Workers))
	var epochForests []*graph.SPForest
	if incremental {
		if st.forests == nil {
			st.forests = make([]*graph.SPForest, par.Workers(st.cfg.Workers))
		}
		// Track which persistent forests have been Reset against this
		// epoch's snapshot.
		epochForests = make([]*graph.SPForest, par.Workers(st.cfg.Workers))
	}
	err := par.DoErr(len(jobs), st.cfg.Workers, func(worker, ji int) error {
		i := jobs[ji]
		sc := scratches[worker]
		if sc == nil {
			sc = &core.Scratch{}
			scratches[worker] = sc
		}
		req := &core.Request{
			Self:    i,
			K:       st.cfg.K,
			Kind:    kind,
			Direct:  st.est[i],
			Graph:   g,
			Active:  active,
			Pref:    st.prefRow(i),
			Rng:     policyRNG(st.cfg.Seed, epoch, i),
			Scratch: sc,
		}
		var forest *graph.SPForest
		if incremental {
			forest = epochForests[worker]
			if forest == nil {
				forest = st.forests[worker]
				if forest == nil {
					forest = graph.NewSPForest()
					st.forests[worker] = forest
				}
				forest.Reset(g, kind == core.Bottleneck)
				epochForests[worker] = forest
			}
			forest.RemoveOut(i)
			req.Resid = forest.Dist()
		} else if isBR {
			// Compute the residual matrix once; Select and the adoption
			// test below share it.
			req.Resid = core.BuildResidScratch(g, i, kind, active, sc)
		}
		set, err := st.cfg.Policy.Select(req)
		if err != nil {
			if forest != nil {
				forest.RestoreOut()
			}
			return err
		}
		props[i].set = set
		if isBR {
			inst := &core.Instance{
				Self: i, Kind: kind, Direct: st.est[i],
				Resid: req.Resid, Pref: req.Pref,
			}
			props[i].curVal = inst.EvalScratch(props[i].wiring0, sc)
			props[i].newVal = inst.EvalScratch(set, sc)
			props[i].hasEval = true
		}
		if forest != nil {
			forest.RestoreOut()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return props, nil
}

// adopt decides node i's re-wiring at its stagger slot. While the epoch is
// clean the speculative proposal is authoritative and the decision logic
// mirrors the sequential rewire exactly; once the epoch is dirty (or no
// proposals were computed) it defers to the sequential path.
func (st *state) adopt(i, epoch int, prop *proposal, counter func(links int)) error {
	if prop == nil || prop.set == nil || st.epochDirty {
		return st.rewire(i, epoch, false, counter)
	}
	proposed := prop.set
	cur := st.wiring[i]
	adopt := len(cur) == 0
	if !adopt {
		// Drop dead neighbors from the current wiring before comparing.
		// (Links to dead nodes are not announced, so this does not dirty
		// the epoch for later nodes.)
		aliveCur := cur[:0:0]
		for _, v := range cur {
			if st.active[v] {
				aliveCur = append(aliveCur, v)
			}
		}
		if len(aliveCur) < len(cur) {
			cur = aliveCur
			st.wiring[i] = aliveCur
			adopt = true // lost links: must re-wire
		}
	}
	if !adopt {
		switch st.cfg.Policy.(type) {
		case core.BRPolicy:
			// BR(ε): adopt only a sufficient improvement, measured on the
			// node's own announced view — the snapshot, which on a clean
			// epoch is the live view.
			adopt = prop.hasEval && core.ShouldRewire(st.cfg.Metric.Kind(), prop.curVal, prop.newVal, st.cfg.Epsilon)
		case core.KClosest:
			adopt = true // tracks measurement changes every epoch
		default:
			// k-Random / k-Regular / full mesh: wiring is static absent
			// churn, per the paper's baseline.
			adopt = false
		}
	}
	if !adopt {
		return nil
	}
	added := measure.LinkDiff(st.wiring[i], proposed)
	if added > 0 && counter != nil {
		counter(added)
	}
	if added > 0 || len(proposed) != len(st.wiring[i]) {
		st.wiring[i] = proposed
		st.epochDirty = true
	}
	return nil
}

// policyRNG derives the deterministic per-(epoch,node) policy randomness.
// Seeding per node rather than sharing one stream is what makes stochastic
// policies (k-Random) independent of both the worker count and the order in
// which the pool happens to schedule nodes.
func policyRNG(seed int64, epoch, node int) *rand.Rand {
	x := uint64(seed) ^ 0x9e3779b97f4a7c15
	x = splitmix64(x + uint64(int64(epoch))*0xbf58476d1ce4e5b9)
	x = splitmix64(x + uint64(int64(node))*0x94d049bb133111eb)
	return rand.New(rand.NewSource(int64(x)))
}

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// well-mixed 64-bit hash.
func splitmix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
