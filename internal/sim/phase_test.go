package sim

import (
	"reflect"
	"testing"

	"egoist/internal/sampling"
)

// TestScaleOnPhaseEvents pins the phase-trace feed: every epoch emits
// its churn/rebuild/propose/adopt/publish events in order, the epoch
// summary's rewires agree with the result record, and — the part the
// determinism contract cares about — enabling the hook changes no
// result byte.
func TestScaleOnPhaseEvents(t *testing.T) {
	cfg := ScaleConfig{
		N: 96, K: 4, Seed: 11,
		Sample:    sampling.Spec{Strategy: sampling.Uniform, M: 12},
		MaxEpochs: 3, Workers: 2,
	}
	base, err := RunScale(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var events []PhaseEvent
	traced := cfg
	traced.OnPhase = func(ev PhaseEvent) { events = append(events, ev) }
	got, err := RunScale(traced)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Wiring, got.Wiring) {
		t.Fatal("OnPhase changed the converged wiring")
	}
	if len(base.PerEpoch) != len(got.PerEpoch) {
		t.Fatalf("OnPhase changed the epoch count: %d vs %d", len(base.PerEpoch), len(got.PerEpoch))
	}
	for e := range base.PerEpoch {
		if base.PerEpoch[e].Rewires != got.PerEpoch[e].Rewires {
			t.Fatalf("OnPhase changed epoch %d rewires", e)
		}
	}

	if len(events) == 0 {
		t.Fatal("no phase events emitted")
	}
	perPhase := map[string]int{}
	var summaries []PhaseEvent
	for _, ev := range events {
		perPhase[ev.Phase]++
		if ev.NS < 0 {
			t.Fatalf("negative duration in %+v", ev)
		}
		if ev.Phase == "epoch" {
			summaries = append(summaries, ev)
		}
	}
	for _, phase := range []string{"churn", "rebuild", "propose", "adopt", "publish", "epoch"} {
		if perPhase[phase] == 0 {
			t.Errorf("no %q events emitted (saw %v)", phase, perPhase)
		}
	}
	if len(summaries) != got.Epochs {
		t.Fatalf("%d epoch summaries for %d epochs", len(summaries), got.Epochs)
	}
	for e, ev := range summaries {
		if ev.Epoch != e {
			t.Fatalf("summary %d reports epoch %d", e, ev.Epoch)
		}
		if ev.Rewires != got.PerEpoch[e].Rewires {
			t.Fatalf("epoch %d summary rewires %d, result says %d", e, ev.Rewires, got.PerEpoch[e].Rewires)
		}
		if ev.Alive != got.PerEpoch[e].Alive {
			t.Fatalf("epoch %d summary alive %d, result says %d", e, ev.Alive, got.PerEpoch[e].Alive)
		}
	}
	// Per-sub-round adopt rewires must sum to each epoch's total.
	adoptSum := map[int]int{}
	for _, ev := range events {
		if ev.Phase == "adopt" {
			adoptSum[ev.Epoch] += ev.Rewires
		}
	}
	for e := range summaries {
		if adoptSum[e] != got.PerEpoch[e].Rewires {
			t.Fatalf("epoch %d adopt events sum to %d rewires, epoch total is %d", e, adoptSum[e], got.PerEpoch[e].Rewires)
		}
	}
}
