package sim

import (
	"math"
	"reflect"
	"testing"

	"egoist/internal/core"
	"egoist/internal/graph"
	"egoist/internal/sampling"
	"egoist/internal/underlay"
)

// stripWall zeroes the wall-clock fields so results can be compared
// byte-for-byte.
func stripWall(r *ScaleResult) *ScaleResult {
	out := *r
	out.PerEpoch = append([]ScaleEpoch(nil), r.PerEpoch...)
	for i := range out.PerEpoch {
		out.PerEpoch[i].WallNS = 0
	}
	return &out
}

// TestScaleDeterministicAcrossWorkers is the sampled-mode determinism
// contract: Workers 1 and Workers 8 must produce byte-identical results.
func TestScaleDeterministicAcrossWorkers(t *testing.T) {
	for _, spec := range []sampling.Spec{
		{Strategy: sampling.Uniform, M: 25},
		{Strategy: sampling.Demand, M: 25},
		{Strategy: sampling.Stratified, M: 25},
	} {
		base := ScaleConfig{
			N: 120, K: 3, Seed: 11, Sample: spec, MaxEpochs: 4,
			Demand: func(i, j int) float64 { return 1 + float64((i+j)%5) },
		}
		cfgA := base
		cfgA.Workers = 1
		cfgB := base
		cfgB.Workers = 8
		a, err := RunScale(cfgA)
		if err != nil {
			t.Fatalf("%v: %v", spec, err)
		}
		b, err := RunScale(cfgB)
		if err != nil {
			t.Fatalf("%v: %v", spec, err)
		}
		if !reflect.DeepEqual(stripWall(a), stripWall(b)) {
			t.Fatalf("%v: Workers 1 vs 8 diverged", spec)
		}
	}
}

// TestScaleConverges checks the dynamics settle: the rewire count at the
// end is a small fraction of the population and the estimated cost does
// not degrade from the bootstrap wiring.
func TestScaleConverges(t *testing.T) {
	res, err := RunScale(ScaleConfig{
		N: 200, K: 3, Seed: 5,
		Sample:    sampling.Spec{Strategy: sampling.Demand, M: 40},
		MaxEpochs: 10, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs == 0 {
		t.Fatal("no epochs run")
	}
	last := res.PerEpoch[res.Epochs-1]
	if !res.Converged && last.Rewires > 200/5 {
		t.Errorf("still re-wiring heavily after %d epochs: %d nodes", res.Epochs, last.Rewires)
	}
	first := res.PerEpoch[0]
	if last.MeanEstCost > first.MeanEstCost*1.05 {
		t.Errorf("estimated cost degraded: %f -> %f", first.MeanEstCost, last.MeanEstCost)
	}
	for i, w := range res.Wiring {
		if len(w) == 0 || len(w) > 3 {
			t.Fatalf("node %d wiring has %d links", i, len(w))
		}
	}
}

// trueSocialCost computes the exact full-roster mean per-node routing
// cost of a wiring over the given net (only feasible at test sizes).
func trueSocialCost(net ScaleNet, wiring [][]int) float64 {
	n := net.N()
	g := graph.New(n)
	for u, ws := range wiring {
		for _, v := range ws {
			g.AddArc(u, v, net.Delay(u, v))
		}
	}
	dist := graph.APSP(g)
	total := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d := dist[i][j]
			if math.IsInf(d, 1) {
				d = core.DisconnectedPenalty
			}
			total += d
		}
	}
	return total / float64(n)
}

// TestScaleSampledNearFull compares the sampled dynamics' true social
// cost against full-roster dynamics (sample = whole roster) at a size
// where both run: the sampled overlay must stay within a modest factor.
func TestScaleSampledNearFull(t *testing.T) {
	net, err := underlay.NewLite(150, 99)
	if err != nil {
		t.Fatal(err)
	}
	full, err := RunScale(ScaleConfig{
		N: 150, K: 3, Seed: 7, Net: net,
		Sample:    sampling.Spec{Strategy: sampling.Uniform, M: 149},
		MaxEpochs: 6, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := RunScale(ScaleConfig{
		N: 150, K: 3, Seed: 7, Net: net,
		Sample:    sampling.Spec{Strategy: sampling.Demand, M: 35},
		MaxEpochs: 6, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cf := trueSocialCost(net, full.Wiring)
	cs := trueSocialCost(net, sampled.Wiring)
	if cs > cf*1.6 {
		t.Errorf("sampled overlay cost %f vs full %f (ratio %.2f)", cs, cf, cs/cf)
	}
	if cf >= core.DisconnectedPenalty || cs >= core.DisconnectedPenalty {
		t.Errorf("overlay disconnected: full %f sampled %f", cf, cs)
	}
}

// TestScaleRejectsBadConfig covers the validation paths.
func TestScaleRejectsBadConfig(t *testing.T) {
	bad := []ScaleConfig{
		{N: 2, K: 1, Sample: sampling.Spec{Strategy: sampling.Uniform, M: 5}},
		{N: 50, K: 0, Sample: sampling.Spec{Strategy: sampling.Uniform, M: 5}},
		{N: 50, K: 3, Sample: sampling.Spec{}},
		{N: 50, K: 5, Sample: sampling.Spec{Strategy: sampling.Uniform, M: 4}},
	}
	for i, cfg := range bad {
		if _, err := RunScale(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}
