package sim

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"egoist/internal/cheat"
	"egoist/internal/churn"
	"egoist/internal/core"
)

// eqFloat treats NaN as equal to NaN (dead nodes report NaN costs) and is
// otherwise exact: the engines must agree bit for bit, not approximately.
func eqFloat(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return a == b
}

func eqFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !eqFloat(a[i], b[i]) {
			return false
		}
	}
	return true
}

// diffResults returns a description of the first field where two Results
// diverge, or "" when they are byte-identical (modulo NaN == NaN).
func diffResults(a, b *Result) string {
	switch {
	case a.Cost != b.Cost:
		return fmt.Sprintf("Cost %+v vs %+v", a.Cost, b.Cost)
	case !eqFloats(a.PerNodeCost, b.PerNodeCost):
		return fmt.Sprintf("PerNodeCost %v vs %v", a.PerNodeCost, b.PerNodeCost)
	case a.Efficiency != b.Efficiency:
		return fmt.Sprintf("Efficiency %+v vs %+v", a.Efficiency, b.Efficiency)
	case !eqFloats(a.PerNodeEfficiency, b.PerNodeEfficiency):
		return fmt.Sprintf("PerNodeEfficiency %v vs %v", a.PerNodeEfficiency, b.PerNodeEfficiency)
	case !reflect.DeepEqual(a.Rewires.PerEpoch(), b.Rewires.PerEpoch()):
		return fmt.Sprintf("Rewires %v vs %v", a.Rewires.PerEpoch(), b.Rewires.PerEpoch())
	case !reflect.DeepEqual(a.FinalWiring, b.FinalWiring):
		return fmt.Sprintf("FinalWiring %v vs %v", a.FinalWiring, b.FinalWiring)
	case !reflect.DeepEqual(a.ProbeBits, b.ProbeBits):
		return fmt.Sprintf("ProbeBits %v vs %v", a.ProbeBits, b.ProbeBits)
	case a.LSABits != b.LSABits:
		return fmt.Sprintf("LSABits %v vs %v", a.LSABits, b.LSABits)
	case a.EpochsRun != b.EpochsRun:
		return fmt.Sprintf("EpochsRun %v vs %v", a.EpochsRun, b.EpochsRun)
	case a.WeightedCost != b.WeightedCost:
		return fmt.Sprintf("WeightedCost %+v vs %+v", a.WeightedCost, b.WeightedCost)
	}
	return ""
}

// testChurn builds a small deterministic membership schedule.
func testChurn(n int) *churn.Schedule {
	sched, err := churn.GenerateSynthetic(churn.SyntheticConfig{
		N: n, Horizon: 10,
		On:   churn.Exponential{Mean: 4},
		Off:  churn.Exponential{Mean: 1.5},
		Seed: 19,
	})
	if err != nil {
		panic(err)
	}
	return sched
}

// workerDeterminismConfigs spans the policy/metric/feature matrix the
// engine supports; every entry must produce deep-equal Results at any
// worker count.
func workerDeterminismConfigs() map[string]Config {
	n := 20
	base := func(p core.Policy) Config {
		return Config{
			N: n, K: 3, Seed: 77, Metric: DelayPing, Policy: p,
			WarmEpochs: 3, MeasureEpochs: 4,
		}
	}
	cfgs := map[string]Config{
		"BR/delay":       base(core.BRPolicy{}),
		"BR/epsilon":     base(core.BRPolicy{}),
		"BR/bandwidth":   base(core.BRPolicy{}),
		"BR/load":        base(core.BRPolicy{}),
		"BR/churn":       base(core.BRPolicy{}),
		"BR/cheat":       base(core.BRPolicy{}),
		"BR/pref":        base(core.BRPolicy{}),
		"HybridBR/churn": base(core.BRPolicy{Donated: 2}),
		"kRandom/cycle":  base(core.KRandom{}),
		"kClosest/cycle": base(core.KClosest{}),
		"kRegular":       base(core.KRegular{}),
		"BR/churn/immed": base(core.BRPolicy{}),
	}
	for name, cfg := range cfgs {
		switch name {
		case "BR/epsilon":
			cfg.Epsilon = 0.1
		case "BR/bandwidth":
			cfg.Metric = Bandwidth
		case "BR/load":
			cfg.Metric = Load
		case "BR/churn", "HybridBR/churn":
			cfg.Churn = testChurn(cfg.N)
		case "BR/churn/immed":
			cfg.Churn = testChurn(cfg.N)
			cfg.Immediate = true
		case "BR/cheat":
			cfg.Cheat = cheat.Single(cfg.N, 4, 2)
		case "BR/pref":
			cfg.Pref = func(i, j int) float64 { return 1 + float64((i+j)%5) }
		case "kRandom/cycle", "kClosest/cycle":
			cfg.EnforceCycle = true
		}
		cfgs[name] = cfg
	}
	return cfgs
}

// TestWorkerCountDoesNotChangeResults is the engine's core determinism
// contract: a fixed seed yields deep-equal Results whether the
// best-response phase runs sequentially (Workers: 1) or speculatively over
// a pool (Workers: 8). Run with -race this also exercises the pool for
// data races across the full feature matrix.
func TestWorkerCountDoesNotChangeResults(t *testing.T) {
	for name, cfg := range workerDeterminismConfigs() {
		t.Run(name, func(t *testing.T) {
			seq := cfg
			seq.Workers = 1
			par := cfg
			par.Workers = 8
			a, err := Run(seq)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(par)
			if err != nil {
				t.Fatal(err)
			}
			if d := diffResults(a, b); d != "" {
				t.Fatalf("Workers 1 vs 8 diverge: %s", d)
			}
		})
	}
}

// TestIntermediateWorkerCountsAgree pins a few more pool shapes, including
// the NumCPU default (Workers: 0), against the sequential engine.
func TestIntermediateWorkerCountsAgree(t *testing.T) {
	cfg := Config{
		N: 18, K: 3, Seed: 5, Metric: DelayPing, Policy: core.BRPolicy{},
		WarmEpochs: 2, MeasureEpochs: 3, Workers: 1,
	}
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 16} {
		cfg.Workers = workers
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if d := diffResults(want, got); d != "" {
			t.Fatalf("Workers %d diverges from sequential: %s", workers, d)
		}
	}
}

// TestSpeculativeProposalsMatchSequentialSlots drives one epoch's proposal
// phase directly and checks the clean-slot equivalence invariant: with no
// churn and no prior adoption, the speculative proposal for the first node
// in stagger order equals what the sequential path computes at its slot.
func TestSpeculativeProposalsMatchSequentialSlots(t *testing.T) {
	cfg := Config{
		N: 16, K: 3, Seed: 9, Metric: DelayPing, Policy: core.BRPolicy{},
		WarmEpochs: 0, MeasureEpochs: 1, Workers: 4,
	}
	st, err := newState(cfg)
	if err != nil {
		t.Fatal(err)
	}
	props, err := st.computeProposals(0)
	if err != nil {
		t.Fatal(err)
	}
	if props == nil {
		t.Fatal("no proposals at Workers: 4")
	}
	for i := 0; i < cfg.N; i++ {
		if props[i].set == nil {
			t.Fatalf("active node %d got no proposal", i)
		}
		if !props[i].hasEval {
			t.Fatalf("BR proposal for node %d lacks adoption-test values", i)
		}
		// Recompute sequentially against the (untouched) live view.
		req := &core.Request{
			Self: i, K: cfg.K, Kind: cfg.Metric.Kind(), Direct: st.est[i],
			Graph: st.announcedGraph(), Active: st.active,
			Rng: policyRNG(cfg.Seed, 0, i),
		}
		seq, err := cfg.Policy.Select(req)
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(props[i].set, seq) {
			t.Fatalf("node %d: speculative %v != sequential %v", i, props[i].set, seq)
		}
	}
}

// equalInts reports element-wise equality of two int slices.
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEqualInts(t *testing.T) {
	if !equalInts(nil, nil) || !equalInts([]int{1, 2}, []int{1, 2}) {
		t.Fatal("equal slices reported unequal")
	}
	if equalInts([]int{1}, []int{2}) || equalInts([]int{1}, []int{1, 2}) {
		t.Fatal("unequal slices reported equal")
	}
}

// TestPolicyRNGIsStable pins the per-(epoch,node) RNG derivation: equal
// coordinates agree, distinct coordinates draw independently.
func TestPolicyRNGIsStable(t *testing.T) {
	a := policyRNG(42, 3, 7).Int63()
	if b := policyRNG(42, 3, 7).Int63(); a != b {
		t.Fatalf("same coordinates drew %d and %d", a, b)
	}
	seen := map[int64]bool{a: true}
	for _, coord := range [][2]int{{3, 8}, {4, 7}, {0, 0}, {-1, 7}} {
		v := policyRNG(42, coord[0], coord[1]).Int63()
		if seen[v] {
			t.Fatalf("coordinate %v collides with an earlier stream", coord)
		}
		seen[v] = true
	}
}
