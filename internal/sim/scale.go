package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"egoist/internal/churn"
	"egoist/internal/core"
	"egoist/internal/graph"
	"egoist/internal/par"
	"egoist/internal/sampling"
	"egoist/internal/underlay"
)

// This file is the large-scale simulation mode: best-response dynamics
// for overlays of 10k+ nodes, where the full engine's per-node O(n²)
// residual matrices and O(n) destination rosters are out of the
// question. Three ideas make it scale:
//
//  1. Sampled destinations (Sect. 5 generalized from the newcomer
//     experiment to every node): per epoch each node draws a weighted
//     destination sample and optimizes the inverse-probability
//     (Horvitz–Thompson) estimate of its full-roster cost, adopting a
//     new wiring only on a BR(ε) improvement of the paired estimates —
//     the pairing cancels the sampling noise that would otherwise keep
//     equilibria twitching forever.
//
//  2. A shared facility directory (the "pool"): the candidate
//     facilities any node may wire this epoch are drawn from a bounded
//     pool — every currently wired target plus a rotating crop of
//     explorer nodes. One exact single-source shortest-path row per
//     pool member is computed per epoch over the live overlay and
//     shared by all nodes, so residual distances are real distances:
//     an earlier design that estimated them from per-node induced
//     subgraphs (or landmark shortcuts) either drowned the dynamics in
//     phantom disconnection penalties or collapsed the overlay by
//     trusting paths that vanished mid-epoch. Total distance work per
//     epoch is O(|pool|·E·log n) — independent of it being shared by
//     all n solvers.
//
//  3. Staggered adoption in batches, a coarse version of the paper's
//     one-node-at-a-time stagger: each epoch runs StaggerBatches
//     sub-rounds; proposals are computed in parallel within a batch and
//     adoptions apply between batches. Fully synchronous play (one
//     batch) lets every node re-wire against the same view into a graph
//     nobody evaluated — the classic simultaneous-move collapse.
//
// The pool rows include each node's own current out-links (removing
// them per node would mean per-node SSSP — the cost this engine
// avoids). The contamination is paths that leave a node and return
// through it, relevant only when the node lies on the shortest path
// between its own facility and destination — an O(diameter/n) fraction
// of pairs, absorbed by the BR(ε) threshold.
//
// Memory is O(|pool|·n + n·k): pool rows dominate (~110 MB at n=10⁴,
// |pool|≈1400); there is no n×n anything.

// ScaleNet is the minimal underlay view of the scale engine: static
// pairwise delays, computable on demand (no n² storage).
type ScaleNet interface {
	N() int
	Delay(i, j int) float64
}

// ScaleConfig parameterizes one large-scale run.
type ScaleConfig struct {
	// N is the overlay size; K the per-node degree budget.
	N, K int
	// Seed drives all randomness (sampling, tie-breaking, bootstrap).
	Seed int64
	// Sample selects the destination-sampling strategy and size, e.g.
	// {Demand, 500} for "demand:500".
	Sample sampling.Spec
	// Epsilon is the BR(ε) adoption threshold on the estimated cost.
	// Zero selects the sampled-mode default of 0.05: with a noisy
	// objective a strictly-positive threshold is what makes convergence
	// well-defined.
	Epsilon float64
	// MaxEpochs bounds the run (default 8); the run stops earlier once
	// converged.
	MaxEpochs int
	// ConvergedFrac declares convergence when the fraction of nodes
	// re-wiring in an epoch drops to or below it (default 0.01).
	ConvergedFrac float64
	// Workers is the parallelism of the proposal and pool-row phases
	// (0 = NumCPU). Results are byte-identical for any value.
	Workers int
	// Shards partitions the facility directory and the proposal phase
	// into this many contiguous node-id bands (0 = 1), each owning its
	// own DynamicRows instance and a slice of the worker budget —
	// two-level parallelism, shards × workers. Sharding is a physical
	// layout choice only: results are byte-identical for any value, and
	// Shards=1 is the pre-shard single-directory engine. See shard.go.
	Shards int
	// StaggerBatches splits each epoch into this many staggered
	// adoption sub-rounds (default 32). 1 means fully synchronous play —
	// unstable, see the package comment; n means the paper's
	// one-at-a-time stagger, serial.
	StaggerBatches int
	// PoolTarget caps the facility directory (default 2·Sample.M + 256,
	// at most N). The pool holds every currently wired target (trimmed
	// by in-degree if over the cap) plus explorers.
	PoolTarget int
	// PoolExplore is the number of rotating explorer slots per epoch
	// (default PoolTarget/8): nodes outside the wired set get their turn
	// in the directory so the dynamics can discover them.
	PoolExplore int
	// CandSample is the per-node candidate-sample size drawn from the
	// pool each re-wiring (default min(64, pool size)): half the
	// nearest pool members by direct cost, half uniform.
	CandSample int
	// Demand, when non-nil, supplies the preference weight p_ij driving
	// both the objective and the demand-proportional sampler. Must be
	// safe for concurrent calls.
	Demand func(i, j int) float64
	// DemandAt, when non-nil, overrides Demand with a per-epoch demand
	// function — the scenario harness's demand shifts. The engine
	// re-draws every node's destination sample against the epoch's
	// weights, so a shift propagates into the dynamics within one
	// epoch. The returned function must be safe for concurrent calls.
	DemandAt func(epoch int) func(i, j int) float64
	// Churn, when non-nil, drives dynamic membership: event times are
	// in epoch units, fractional times land between stagger sub-rounds.
	// Joins bootstrap a wiring over the alive roster and enter the
	// facility directory; leaves orphan their in-links immediately
	// (heartbeat semantics), putting the victims on the rescue path.
	// Membership events repair the directory incrementally — see the
	// invariant note above runScaleChurn.
	Churn *churn.Schedule
	// Net overrides the default constant-memory geographic underlay
	// (underlay.NewLite(N, Seed+1)).
	Net ScaleNet
	// OnEpoch, when non-nil, is the data-plane publication hook: it is
	// called serially once after the bootstrap (epoch -1) and once at
	// the end of every epoch — after that epoch's final churn drain, so
	// the arguments are the epoch-final state. wiring and active are
	// the engine's own live arrays, borrowed read-only for the duration
	// of the call; publishers must compile an immutable view (e.g. a
	// plane.Snapshot) before returning and must not retain references.
	// The hook runs outside the parallel proposal phase and must stay
	// deterministic to preserve the engine's any-worker-count contract.
	OnEpoch func(epoch int, wiring [][]int, active []bool)
	// OnPublish, when non-nil, is the sub-epoch publication hook: it is
	// called serially after every stagger sub-round's serial fold (and
	// after the epoch-final churn drain) with the set of rows that
	// changed since the previous call, so a data-plane publisher can
	// delta-patch its snapshot instead of recompiling per epoch.
	//
	// Ordering contract, pinned by TestScalePublicationOrdering: the
	// FIRST call is the bootstrap publication {Epoch: -1, SubRound: -1,
	// Full: true}, delivered on the engine goroutine before any churn
	// event or proposal is played — the same state OnEpoch(-1) sees,
	// and delivered after OnEpoch(-1) when both hooks are set. Every
	// later call is a delta that applies on top of the state of the
	// previous call, in strict call order on the same goroutine: the
	// first sub-round delta (which also carries any churn drained
	// before epoch 0's first batch) applies on top of the bootstrap
	// snapshot and can never race or precede it. Subscribers must
	// finish deriving their snapshot before returning; the Changed
	// slice and the wiring/active arrays are engine-owned scratch, not
	// to be retained. The hook must stay deterministic — like OnEpoch
	// it runs outside the parallel proposal phase, and the engine's
	// byte-identical any-(workers, shards) contract extends to the
	// publication sequence.
	//
	// OnEpoch remains the full per-epoch compile fallback; both hooks
	// may be set (each epoch's final-drain publication fires before
	// that epoch's OnEpoch call).
	OnPublish func(pub Publication)
	// OnPhase, when non-nil, receives one timed PhaseEvent per engine
	// phase — churn drains, directory rebuilds, each sub-round's
	// propose/adopt split, and every publication — the observability
	// feed for phase-level tracing and /metrics. It is called serially
	// on the engine goroutine, outside the parallel proposal phase.
	// Durations are wall-clock and for diagnosis only: the hook never
	// feeds back into the dynamics, so the engine's byte-identical
	// any-(workers, shards) result contract is unaffected, and when the
	// hook is nil the engine takes no extra clock readings at all.
	OnPhase func(ev PhaseEvent)
	// BROpts tunes the per-node solver.
	BROpts core.BROptions
}

// PhaseEvent is one timed engine phase, emitted through
// ScaleConfig.OnPhase. The JSON tags are the trace-stream (JSONL)
// schema egoist-bench -trace writes; events are diagnostic output and
// excluded from every determinism comparison.
type PhaseEvent struct {
	// Epoch is the epoch being played (-1 covers bootstrap-time work).
	Epoch int `json:"epoch"`
	// Sub is the stagger sub-round within the epoch, -1 for
	// epoch-level phases (the start-of-epoch churn drain, the directory
	// rebuild, the epoch summary). The epoch-final churn drain and
	// publication carry Sub == Rounds.
	Sub int `json:"sub"`
	// Phase is one of churn | rebuild | propose | adopt | publish |
	// epoch ("epoch" is the whole-epoch summary event).
	Phase string `json:"phase"`
	// NS is the phase's wall-clock duration in nanoseconds.
	NS int64 `json:"ns"`
	// Rewires is the re-wirings applied (adopt: this sub-round; epoch:
	// the epoch total).
	Rewires int `json:"rewires,omitempty"`
	// Resets / Applies are the directory's cumulative full resets and
	// incremental applies (rebuild events).
	Resets  int `json:"resets,omitempty"`
	Applies int `json:"applies,omitempty"`
	// Alive is the live membership after the phase (churn and epoch
	// events).
	Alive int `json:"alive,omitempty"`
	// Joins / Leaves are the epoch's cumulative membership events so
	// far (churn and epoch events).
	Joins  int `json:"joins,omitempty"`
	Leaves int `json:"leaves,omitempty"`
}

func (c *ScaleConfig) withDefaults() (ScaleConfig, error) {
	out := *c
	if out.N < 4 {
		return out, fmt.Errorf("sim: scale N = %d, need >= 4", out.N)
	}
	if out.K < 1 || out.K >= out.N {
		return out, fmt.Errorf("sim: scale K = %d, need 1 <= K < N", out.K)
	}
	if out.Sample.M < 1 {
		return out, fmt.Errorf("sim: sample spec %v has no size", out.Sample)
	}
	if out.Sample.M < out.K+1 {
		return out, fmt.Errorf("sim: sample size %d below K+1 = %d", out.Sample.M, out.K+1)
	}
	if out.Epsilon == 0 {
		out.Epsilon = 0.05
	}
	if out.MaxEpochs <= 0 {
		out.MaxEpochs = 8
	}
	if out.ConvergedFrac == 0 {
		out.ConvergedFrac = 0.01
	}
	if out.StaggerBatches <= 0 {
		// Batch size ~n/B is the stability knob: sub-rounds of about 3%
		// of the overlay kept the dynamics convergent across every size
		// tested, while coarser play (≥6%) let correlated re-wirings
		// collapse the overlay. Incremental row repair makes the
		// per-sub-round cost proportional to churn, so fine staggering
		// is affordable.
		out.StaggerBatches = out.N / 32
		if out.StaggerBatches < 16 {
			out.StaggerBatches = 16
		}
	}
	if out.StaggerBatches > out.N {
		out.StaggerBatches = out.N
	}
	if out.Shards <= 0 {
		out.Shards = 1
	}
	if out.Shards > out.N {
		return out, fmt.Errorf("sim: scale Shards = %d exceeds N = %d", out.Shards, out.N)
	}
	if out.PoolTarget <= 0 {
		out.PoolTarget = 2*out.Sample.M + 256
	}
	if out.PoolTarget > out.N {
		out.PoolTarget = out.N
	}
	if out.PoolTarget < out.K+1 {
		out.PoolTarget = out.K + 1
	}
	if out.PoolExplore <= 0 {
		out.PoolExplore = out.PoolTarget / 8
		if out.PoolExplore < 8 {
			out.PoolExplore = 8
		}
	}
	if out.CandSample <= 0 {
		out.CandSample = 64
	}
	if out.CandSample < 2*out.K {
		out.CandSample = 2 * out.K
	}
	if out.Net == nil {
		lite, err := underlay.NewLite(out.N, out.Seed+1)
		if err != nil {
			return out, err
		}
		out.Net = lite
	}
	if out.Net.N() != out.N {
		return out, fmt.Errorf("sim: net has %d nodes, config %d", out.Net.N(), out.N)
	}
	if out.Churn != nil {
		if out.Churn.N != out.N {
			return out, fmt.Errorf("sim: churn schedule has %d nodes, config %d", out.Churn.N, out.N)
		}
		if err := out.Churn.Validate(); err != nil {
			return out, err
		}
		alive := 0
		for _, on := range out.Churn.InitialOn {
			if on {
				alive++
			}
		}
		if alive < out.K+2 {
			return out, fmt.Errorf("sim: only %d nodes initially alive, need >= K+2 = %d", alive, out.K+2)
		}
	}
	return out, nil
}

// ScaleEpoch is one epoch's aggregate measurements.
type ScaleEpoch struct {
	// Rewires counts nodes that adopted a new wiring this epoch.
	Rewires int
	// MeanEstCost is the mean over nodes of the per-node HT-estimated
	// full-roster cost (of the wiring held when the node last acted).
	MeanEstCost float64
	// MeanBand is the mean 95% half-width of those estimates — the
	// accuracy the sample size buys.
	MeanBand float64
	// PoolSize is the facility directory size this epoch.
	PoolSize int
	// Joins and Leaves count the membership events applied during this
	// epoch; Alive is the alive node count at the epoch's end. Acted
	// counts the nodes that computed a proposal — zero when a drained
	// overlay sat the epoch out, in which case MeanEstCost/MeanBand
	// are meaningless zeros.
	Joins, Leaves int
	Alive         int
	Acted         int
	// WallNS is the epoch's wall-clock nanoseconds (pool refresh +
	// proposals + adoption). Excluded from determinism comparisons.
	WallNS int64
}

// ScaleResult is the outcome of one large-scale run.
type ScaleResult struct {
	// Epochs run; Converged reports whether the rewire fraction reached
	// ConvergedFrac before MaxEpochs.
	Epochs    int
	Converged bool
	// PerEpoch holds each epoch's measurements.
	PerEpoch []ScaleEpoch
	// Wiring is the final overlay wiring (nil rows for departed nodes).
	Wiring [][]int
	// MeanSampleSize is the mean realized destination-sample size (the
	// Demand strategy's Poisson draw makes it random).
	MeanSampleSize float64
	// Joins and Leaves total the membership events applied over the run.
	Joins, Leaves int
	// DirectoryResets counts full facility-directory rebuilds (one per
	// epoch by design) and DirectoryApplies its incremental repairs.
	// The churn tests pin the maintenance invariant on them: membership
	// events must never trigger a full rebuild.
	DirectoryResets, DirectoryApplies int
}

// scaleWorker is one worker's reusable per-node state.
type scaleWorker struct {
	sc      core.Scratch
	sp      graph.SPScratch
	prefBuf []float64   // roster-length demand row (Demand strategy)
	dirBuf  []float64   // roster-length direct-cost row (Stratified)
	rowI    []float64   // live SSSP row of the proposing node
	seeds   []graph.Arc // its current wiring as seed arcs
	lid     []int32     // global -> local candidate id, -1 when absent

	gcands []int       // global ids of the candidates, in local order
	grows  [][]float64 // pool row per candidate (nil: off-pool)
	resid  [][]float64 // dense local residual matrix
	flat   []float64   // its backing block
	direct []float64
	pref   []float64
	lcands []int
	cur    []int
	perm   []int
	order  []int
	delay  []float64
}

// scaleProposal is one node's phase output.
type scaleProposal struct {
	set     []int // nil: keep current wiring
	acted   bool  // false: node was inactive (or skipped) this epoch
	estCost float64
	estBand float64
	samples int
}

// scaleEngine is the mutable run state shared by the epoch loop and the
// churn-event machinery.
type scaleEngine struct {
	c      *ScaleConfig
	wiring [][]int
	pool   *scalePool
	plan   shardPlan // contiguous node-id bands; see shard.go
	active []bool
	// aliveIDs is the sorted alive roster, nil when Churn is nil (the
	// static path keeps its original full-range sampling). Rebuilt after
	// every event batch; proposals read it concurrently in between.
	aliveIDs []int
	// inlinks[v] lists the alive nodes currently wiring v (unordered),
	// nil when Churn is nil. It is what lets a leave event find and
	// orphan the victims in O(in-degree) instead of O(n·k).
	inlinks     [][]int32
	recentJoins []int
	churnAt     int
	evIdx       int // monotonically counts applied events (join-RNG derivation)
	joins       int // per-epoch counters, reset by the epoch loop
	leaves      int

	editsBuf   []graph.RowEdit
	arcsBuf    []graph.Arc
	rewiredBuf []int

	// Pending-publication changed set (nil pubMark: no OnPublish
	// subscriber, zero cost). pubChanged accumulates marks between
	// publish calls; pubMark dedups them.
	pubMark    []bool
	pubChanged []int
}

// The propose/apply split — the scale engine's determinism contract.
//
// Each stagger sub-round is two phases. proposeBatch is the parallel
// half: every node of the batch computes its sampled best response
// concurrently against a strictly read-only view of the run state —
// the wiring, the facility directory (graph + rows, constant between
// DynamicRows mutations), the alive roster and the epoch's demand
// function. Each job draws its randomness from its own policyRNG(Seed,
// epoch, i) stream and writes only props[i] and its per-worker scratch,
// so no observable value depends on which worker ran a job or in what
// order jobs finished. adoptBatch is the serial half: it folds the
// batch's proposals into the wiring in ascending node-id order (the
// batch partition is fixed: node i acts in sub-round i mod B) and then
// repairs the directory rows, so the state the NEXT sub-round reads is
// a pure function of (config, seed) — never of scheduling. Churn
// events land between sub-rounds, in the same serial section.
//
// The shard layer (PR 7) extends the contract to the shard-merge seam:
// proposals are scheduled shard-by-shard (each shard's workers price
// against the shard's own graph replica — identical to every other
// replica by construction), and the serial half is shard-blind: it
// folds proposals in ascending node-id order exactly as before, with
// directory repair fanned to the per-shard instances. The shard count
// therefore changes memory placement and scheduling, never a value —
// see the contract note atop shard.go.
//
// Consequence, pinned by TestScaleDeterministicAcrossWorkers,
// TestScaleResultJSONByteIdenticalAcrossShards, the churn twin-run
// suites and the ci/scenarios engine-equivalence suite: ScaleResult is
// byte-identical (WallNS aside) for any Workers value and any Shards
// value. Anything added to the proposal phase must preserve both
// halves of the contract: no writes to shared state, no RNG stream
// shared across jobs.

// proposeBatch computes one sub-round's proposals in parallel,
// two-level: the outer loop fans the batch's shard-contiguous
// sub-slices across shards, the inner loop fans a shard's nodes across
// its wPer-worker slice of the budget, each shard pricing against its
// own graph replica. props slots of inactive nodes are zeroed so a
// stale proposal from an earlier epoch can never be adopted on their
// behalf.
func (e *scaleEngine) proposeBatch(ws []*scaleWorker, batch []int, epoch int, demand func(i, j int) float64, props []scaleProposal) error {
	c := e.c
	plan := &e.plan
	wPer := e.pool.wPer
	return par.DoErr(plan.s, c.Workers, func(_, s int) error {
		// The batch is ascending, so a shard's slice of it is contiguous.
		lo := sort.SearchInts(batch, plan.bounds[s])
		hi := lo + sort.SearchInts(batch[lo:], plan.bounds[s+1])
		sub := batch[lo:hi]
		if len(sub) == 0 {
			return nil
		}
		g := e.pool.graphFor(s)
		return par.DoErr(len(sub), wPer, func(worker, bi int) error {
			i := sub[bi]
			if !e.active[i] {
				props[i] = scaleProposal{}
				return nil
			}
			w := ws[s*wPer+worker]
			if w == nil {
				w = &scaleWorker{}
				ws[s*wPer+worker] = w
			}
			p, err := c.proposeScale(w, e, g, epoch, i, demand)
			if err != nil {
				return err
			}
			props[i] = p
			return nil
		})
	})
}

// adoptBatch serially folds one sub-round's proposals into the wiring
// in ascending node-id order — the coarse stagger — then repairs the
// directory rows incrementally. It accumulates the epoch measurements
// into ep and returns the batch's acted-node and sample counts.
func (e *scaleEngine) adoptBatch(batch []int, props []scaleProposal, ep *ScaleEpoch) (acted, samples int) {
	rewired := e.rewiredBuf[:0]
	for _, i := range batch {
		if !props[i].acted {
			continue
		}
		acted++
		if props[i].set != nil {
			if !sameWiring(e.wiring[i], props[i].set) {
				ep.Rewires++
				rewired = append(rewired, i)
				e.markChanged(i)
			}
			e.adoptWiring(i, props[i].set)
		}
		ep.MeanEstCost += props[i].estCost
		ep.MeanBand += props[i].estBand
		samples += props[i].samples
	}
	e.pool.apply(e.c, rewired, e.wiring)
	e.rewiredBuf = rewired
	return acted, samples
}

// aliveCount reports the current alive population size.
func (e *scaleEngine) aliveCount() int {
	if e.aliveIDs == nil {
		return e.c.N
	}
	return len(e.aliveIDs)
}

// rebuildAlive refreshes the sorted alive roster after an event batch.
func (e *scaleEngine) rebuildAlive() {
	e.aliveIDs = e.aliveIDs[:0]
	for v, on := range e.active {
		if on {
			e.aliveIDs = append(e.aliveIDs, v)
		}
	}
}

func (e *scaleEngine) addInlink(v, u int) {
	if e.inlinks != nil {
		e.inlinks[v] = append(e.inlinks[v], int32(u))
	}
}

func (e *scaleEngine) removeInlink(v, u int) {
	if e.inlinks == nil {
		return
	}
	l := e.inlinks[v]
	for x := range l {
		if l[x] == int32(u) {
			l[x] = l[len(l)-1]
			e.inlinks[v] = l[:len(l)-1]
			return
		}
	}
}

// adoptWiring installs node i's new wiring, keeping the reverse index
// current (both wirings are sorted; merge-diff).
func (e *scaleEngine) adoptWiring(i int, set []int) {
	if e.inlinks != nil {
		old := e.wiring[i]
		a, b := 0, 0
		for a < len(old) || b < len(set) {
			switch {
			case b >= len(set) || (a < len(old) && old[a] < set[b]):
				e.removeInlink(old[a], i)
				a++
			case a >= len(old) || set[b] < old[a]:
				e.addInlink(set[b], i)
				b++
			default:
				a++
				b++
			}
		}
	}
	e.wiring[i] = set
}

// runScaleChurn applies every membership event scheduled before time t
// (in epoch units).
//
// Directory-repair-on-leave invariant: membership events NEVER trigger
// a full directory rebuild — the per-epoch rebuild is the only caller
// of DynamicRows.Reset (pinned by TestScaleChurnIncrementalDirectory).
// A leave drops the departed node's row (O(1) swap), clears its
// out-arcs and rewrites each orphaned in-neighbor's arc set through
// DynamicRows.Apply, whose repair cost is proportional to the affected
// shortest-path subtrees; a join costs one Dijkstra row (AddSource)
// plus one Apply for its bootstrap arcs. poolLive is false at the
// epoch boundary, where the imminent per-epoch rebuild absorbs the
// membership change and per-event pool repair would be wasted work.
func (e *scaleEngine) runScaleChurn(t float64, poolLive bool) {
	c := e.c
	if c.Churn == nil {
		return
	}
	events := c.Churn.Events
	changed := false
	for e.churnAt < len(events) && events[e.churnAt].Time < t {
		ev := events[e.churnAt]
		e.churnAt++
		if ev.On == e.active[ev.Node] {
			continue
		}
		e.evIdx++
		changed = true
		if ev.On {
			e.join(ev.Node, poolLive)
		} else {
			e.leave(ev.Node, poolLive)
		}
	}
	if changed {
		e.rebuildAlive()
	}
}

// join turns v on: bootstrap wiring over the alive roster (same recipe
// as the epoch -1 bootstrap, from a per-event deterministic RNG) and a
// seat in the facility directory.
func (e *scaleEngine) join(v int, poolLive bool) {
	c := e.c
	e.active[v] = true
	e.joins++
	e.markChanged(v)
	// The alive roster does not include v yet; that is exactly the
	// population a newcomer may wire. A joiner into an empty overlay
	// waits unwired for company.
	var w []int
	if len(e.aliveIDs) > 0 {
		rng := policyRNG(c.Seed, -2-e.evIdx, v)
		w = c.bootstrapWiring(rng, v, e.aliveIDs)
	}
	e.wiring[v] = w
	for _, u := range w {
		e.addInlink(u, v)
	}
	e.recentJoins = append(e.recentJoins, v)
	if poolLive {
		e.arcsBuf = e.arcsBuf[:0]
		for _, u := range w {
			e.arcsBuf = append(e.arcsBuf, graph.Arc{To: u, W: c.Net.Delay(v, u)})
		}
		e.pool.applyEdits([]graph.RowEdit{{Node: v, NewOut: e.arcsBuf}})
		e.pool.addMember(v)
	}
}

// leave turns v off with heartbeat semantics: every in-neighbor drops
// its link to v immediately, and a node whose last link dies re-wires
// unconditionally at its next sub-round slot — the rescue path.
func (e *scaleEngine) leave(v int, poolLive bool) {
	e.active[v] = false
	e.leaves++
	e.markChanged(v)
	e.editsBuf = e.editsBuf[:0]
	e.arcsBuf = e.arcsBuf[:0]
	for _, ui := range e.inlinks[v] {
		u := int(ui)
		e.markChanged(u)
		ws := e.wiring[u]
		for x, tgt := range ws {
			if tgt == v {
				e.wiring[u] = append(ws[:x], ws[x+1:]...)
				break
			}
		}
		if poolLive {
			start := len(e.arcsBuf)
			for _, tgt := range e.wiring[u] {
				e.arcsBuf = append(e.arcsBuf, graph.Arc{To: tgt, W: e.c.Net.Delay(u, tgt)})
			}
			e.editsBuf = append(e.editsBuf, graph.RowEdit{Node: u, NewOut: e.arcsBuf[start:len(e.arcsBuf):len(e.arcsBuf)]})
		}
	}
	e.inlinks[v] = e.inlinks[v][:0]
	for _, tgt := range e.wiring[v] {
		e.removeInlink(tgt, v)
	}
	e.wiring[v] = nil
	if poolLive {
		// Drop the dead member's row first so it is not repaired, then
		// fold the orphaned re-wirings and v's cleared out-set into the
		// surviving rows incrementally.
		e.pool.dropMember(v)
		e.editsBuf = append(e.editsBuf, graph.RowEdit{Node: v})
		e.pool.applyEdits(e.editsBuf)
	}
}

// bootstrapWiring is the shared join recipe: wire the closest member of
// a small uniform probe plus K-1 uniform random picks — over the full
// roster (aliveIDs nil, the static path's original behavior) or the
// alive roster under churn. The random majority keeps the bootstrap
// overlay strongly connected; see the bootstrap note in RunScale.
func (c *ScaleConfig) bootstrapWiring(rng *rand.Rand, i int, aliveIDs []int) []int {
	probeSpec := sampling.Spec{Strategy: sampling.Uniform, M: 4 * c.K}
	var probe *sampling.DestSample
	var err error
	if aliveIDs == nil {
		probe, err = probeSpec.Draw(rng, i, c.N, nil, nil)
	} else {
		probe, err = probeSpec.DrawFrom(rng, i, aliveIDs, nil, nil)
	}
	if err != nil {
		// Unreachable: populations are validated non-empty before any
		// bootstrap (withDefaults and the K+2 churn floor).
		panic(err)
	}
	cands := probe.Dests
	closest := 0
	for x, j := range cands {
		if c.Net.Delay(i, j) < c.Net.Delay(i, cands[closest]) {
			closest = x
		}
	}
	w := []int{cands[closest]}
	have := map[int]bool{i: true, cands[closest]: true}
	if aliveIDs == nil {
		for len(w) < c.K {
			j := rng.Intn(c.N)
			if !have[j] {
				have[j] = true
				w = append(w, j)
			}
		}
	} else {
		// The alive population may be smaller than K+1; wire what exists.
		limit := len(aliveIDs)
		for _, v := range aliveIDs {
			if v == i {
				limit--
				break
			}
		}
		for len(w) < c.K && len(w) < limit {
			j := aliveIDs[rng.Intn(len(aliveIDs))]
			if !have[j] {
				have[j] = true
				w = append(w, j)
			}
		}
	}
	sort.Ints(w)
	return w
}

// demandFor resolves the epoch's demand function.
func (c *ScaleConfig) demandFor(epoch int) func(i, j int) float64 {
	if c.DemandAt != nil {
		return c.DemandAt(epoch)
	}
	return c.Demand
}

// RunScale executes one large-scale sampled simulation.
func RunScale(cfg ScaleConfig) (*ScaleResult, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	n := c.N
	workers := par.Workers(c.Workers)
	// Two-level scratch: each shard owns a wPer-slot slice (the same
	// split the pool applies to its Reset budget), so concurrent shards
	// never share a scaleWorker.
	wPer := workers / c.Shards
	if wPer < 1 {
		wPer = 1
	}
	ws := make([]*scaleWorker, c.Shards*wPer)
	eng := &scaleEngine{
		c:      &c,
		wiring: make([][]int, n),
		pool:   &scalePool{},
		plan:   newShardPlan(n, c.Shards),
		active: make([]bool, n),
	}
	for i := range eng.active {
		eng.active[i] = true
	}
	if c.Churn != nil {
		copy(eng.active, c.Churn.InitialOn)
		eng.inlinks = make([][]int32, n)
		eng.rebuildAlive()
	}
	if c.OnPublish != nil {
		eng.pubMark = make([]bool, n)
	}

	// Bootstrap epoch (-1): every initially-alive node wires its closest
	// member of a small uniform sample plus K-1 uniform random nodes
	// from the (alive) roster. The random majority is what makes the
	// bootstrap overlay strongly connected with high probability — an
	// all-closest bootstrap shatters into geographic islands the myopic
	// sampled dynamics then have to stitch back together — and
	// full-roster randomness gives (almost) every node an initial
	// in-link, which the retention pricing below needs to keep it
	// reachable.
	err = par.DoErr(n, c.Workers, func(worker, i int) error {
		if !eng.active[i] {
			return nil
		}
		rng := policyRNG(c.Seed, -1, i)
		eng.wiring[i] = c.bootstrapWiring(rng, i, eng.aliveIDs)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if eng.inlinks != nil {
		for i, w := range eng.wiring {
			for _, v := range w {
				eng.addInlink(v, i)
			}
		}
	}
	// Phase tracing: when OnPhase is nil the engine takes no extra
	// clock readings; traceStart returns the zero time and every emit
	// branch is dead.
	trace := c.OnPhase
	traceStart := func() time.Time {
		if trace == nil {
			return time.Time{}
		}
		return time.Now()
	}

	if c.OnEpoch != nil || c.OnPublish != nil {
		t0 := traceStart()
		if c.OnEpoch != nil {
			// Publish the bootstrap wiring so the data plane can answer
			// queries from epoch 0's first sub-round onward.
			c.OnEpoch(-1, eng.wiring, eng.active)
		}
		if c.OnPublish != nil {
			// The bootstrap publication — see the ordering contract at the
			// OnPublish field: this Full publication is strictly first, and
			// every sub-round delta below applies on top of it.
			c.OnPublish(Publication{Epoch: -1, SubRound: -1, Rounds: c.StaggerBatches, Full: true, Wiring: eng.wiring, Active: eng.active})
		}
		if trace != nil {
			trace(PhaseEvent{Epoch: -1, Sub: -1, Phase: "publish", NS: time.Since(t0).Nanoseconds(), Alive: eng.aliveCount()})
		}
	}

	// Fixed batch partition: node i acts in sub-round i mod B.
	batches := make([][]int, c.StaggerBatches)
	for i := 0; i < n; i++ {
		b := i % c.StaggerBatches
		batches[b] = append(batches[b], i)
	}

	res := &ScaleResult{}
	props := make([]scaleProposal, n)
	for epoch := 0; epoch < c.MaxEpochs; epoch++ {
		start := time.Now()
		eng.joins, eng.leaves = 0, 0
		// Later epochs find their past events already drained by the
		// previous epoch's end-of-epoch call; this start-of-run sweep
		// (before the first rebuild, which absorbs it for free) only
		// catches events scheduled before epoch 0.
		t0 := traceStart()
		eng.runScaleChurn(float64(epoch), false)
		if trace != nil {
			trace(PhaseEvent{Epoch: epoch, Sub: -1, Phase: "churn", NS: time.Since(t0).Nanoseconds(),
				Alive: eng.aliveCount(), Joins: eng.joins, Leaves: eng.leaves})
		}
		// Membership is fixed for the epoch (full per-member Dijkstras
		// once); the sub-round loop below keeps the rows exact against
		// the live wiring via incremental repair. The stagger only
		// stabilizes the dynamics if later actors see earlier actors'
		// moves: an epoch-frozen directory degenerates into synchronous
		// play — every node re-wires trusting distances that its peers'
		// simultaneous re-wirings have already invalidated, and the
		// overlay collapses into a state nobody evaluated.
		t0 = traceStart()
		eng.pool.rebuild(&c, eng, epoch, workers)
		if trace != nil {
			trace(PhaseEvent{Epoch: epoch, Sub: -1, Phase: "rebuild", NS: time.Since(t0).Nanoseconds(),
				Resets: eng.pool.resets, Applies: eng.pool.applies})
		}
		demand := c.demandFor(epoch)
		ep := ScaleEpoch{PoolSize: len(eng.pool.ids)}
		samples := 0
		acted := 0
		for b, batch := range batches {
			if b > 0 {
				// Mid-epoch membership events land between sub-rounds
				// and repair the live directory incrementally.
				t0 = traceStart()
				eng.runScaleChurn(float64(epoch)+float64(b)/float64(len(batches)), true)
				if trace != nil {
					trace(PhaseEvent{Epoch: epoch, Sub: b, Phase: "churn", NS: time.Since(t0).Nanoseconds(),
						Alive: eng.aliveCount(), Joins: eng.joins, Leaves: eng.leaves})
				}
			}
			// A drained overlay (fewer alive nodes than a wiring needs)
			// sits the proposal phase out until joins replenish it.
			if eng.aliveCount() < c.K+2 {
				for _, i := range batch {
					props[i].acted = false
				}
			} else {
				t0 = traceStart()
				if err := eng.proposeBatch(ws, batch, epoch, demand, props); err != nil {
					return nil, err
				}
				if trace != nil {
					trace(PhaseEvent{Epoch: epoch, Sub: b, Phase: "propose", NS: time.Since(t0).Nanoseconds()})
				}
				t0 = traceStart()
				before := ep.Rewires
				a, s := eng.adoptBatch(batch, props, &ep)
				acted += a
				samples += s
				if trace != nil {
					trace(PhaseEvent{Epoch: epoch, Sub: b, Phase: "adopt", NS: time.Since(t0).Nanoseconds(),
						Rewires: ep.Rewires - before})
				}
			}
			// Sub-round publication: the batch's adoptions plus any churn
			// drained since the previous publication (idle sub-rounds
			// publish an empty delta so subscribers can pace on them).
			t0 = traceStart()
			eng.publish(epoch, b, len(batches))
			if trace != nil {
				trace(PhaseEvent{Epoch: epoch, Sub: b, Phase: "publish", NS: time.Since(t0).Nanoseconds()})
			}
		}
		// Drain the last sub-round window's events before the epoch
		// closes: without this, events scheduled inside the final
		// 1/StaggerBatches of the run's last epoch would silently never
		// apply while pendingEvents still counted them.
		t0 = traceStart()
		eng.runScaleChurn(float64(epoch+1), true)
		if trace != nil {
			trace(PhaseEvent{Epoch: epoch, Sub: len(batches), Phase: "churn", NS: time.Since(t0).Nanoseconds(),
				Alive: eng.aliveCount(), Joins: eng.joins, Leaves: eng.leaves})
		}
		// The epoch-final drain's delta publishes before OnEpoch so the
		// legacy hook stays the epoch's last word.
		t0 = traceStart()
		eng.publish(epoch, len(batches), len(batches))
		if c.OnEpoch != nil {
			c.OnEpoch(epoch, eng.wiring, eng.active)
		}
		if trace != nil {
			trace(PhaseEvent{Epoch: epoch, Sub: len(batches), Phase: "publish", NS: time.Since(t0).Nanoseconds()})
		}
		if acted > 0 {
			ep.MeanEstCost /= float64(acted)
			ep.MeanBand /= float64(acted)
			res.MeanSampleSize += float64(samples) / float64(acted)
		}
		ep.Acted = acted
		ep.Joins, ep.Leaves = eng.joins, eng.leaves
		ep.Alive = eng.aliveCount()
		ep.WallNS = time.Since(start).Nanoseconds()
		if trace != nil {
			trace(PhaseEvent{Epoch: epoch, Sub: -1, Phase: "epoch", NS: ep.WallNS,
				Rewires: ep.Rewires, Alive: ep.Alive, Joins: ep.Joins, Leaves: ep.Leaves})
		}
		res.PerEpoch = append(res.PerEpoch, ep)
		res.Joins += eng.joins
		res.Leaves += eng.leaves
		res.Epochs++
		if float64(ep.Rewires) <= c.ConvergedFrac*float64(eng.aliveCount()) && !eng.pendingEvents() {
			res.Converged = true
			break
		}
	}
	if res.Epochs > 0 {
		res.MeanSampleSize /= float64(res.Epochs)
	}
	res.Wiring = eng.wiring
	if eng.pool.insts != nil {
		res.DirectoryResets = eng.pool.resets
		res.DirectoryApplies = eng.pool.applies
	}
	return res, nil
}

// pendingEvents reports whether unapplied membership events remain
// inside the run's horizon — convergence must not stop the run before
// the schedule has played out.
func (e *scaleEngine) pendingEvents() bool {
	c := e.c
	return c.Churn != nil && e.churnAt < len(c.Churn.Events) &&
		c.Churn.Events[e.churnAt].Time < float64(c.MaxEpochs)
}

// proposeScale computes node i's sampled best response against the
// current wiring (stable for the duration of the node's batch) and the
// epoch's pool rows. g is the proposing shard's overlay replica
// (identical to every shard's — passed in so the whole pricing phase
// reads shard-local memory); demand is the epoch's demand function
// (may be nil for uniform preferences).
func (c *ScaleConfig) proposeScale(w *scaleWorker, eng *scaleEngine, g *graph.Digraph, epoch, i int, demand func(i, j int) float64) (scaleProposal, error) {
	n := c.N
	wiring, pool := eng.wiring, eng.pool
	rng := policyRNG(c.Seed, epoch, i)

	// Draw the destination sample with the strategy's required inputs.
	var pref, direct []float64
	if demand != nil {
		if w.prefBuf == nil {
			w.prefBuf = make([]float64, n)
		}
		for j := 0; j < n; j++ {
			if j != i {
				w.prefBuf[j] = demand(i, j)
			}
		}
		pref = w.prefBuf
	}
	if c.Sample.Strategy == sampling.Stratified {
		if w.dirBuf == nil {
			w.dirBuf = make([]float64, n)
		}
		for j := 0; j < n; j++ {
			if j != i {
				w.dirBuf[j] = c.Net.Delay(i, j)
			}
		}
		direct = w.dirBuf
	}
	// Under dynamic membership the draw runs over the alive roster, so
	// the sample — and with it the certainty-inclusion set and the HT
	// expansion — prices exactly the overlay that exists right now.
	var ds *sampling.DestSample
	var err error
	if eng.aliveIDs != nil {
		ds, err = c.Sample.DrawFrom(rng, i, eng.aliveIDs, pref, direct)
	} else {
		ds, err = c.Sample.Draw(rng, i, n, pref, direct)
	}
	if err != nil {
		return scaleProposal{}, err
	}
	// Current neighbors always enter the objective (certainty
	// inclusions, π=1): dropping the last link to a rarely-sampled
	// neighbor must always be priced — with the neighbor invisible in
	// most epochs' samples, last links decay and the orphan's rescuers
	// re-wire en masse next epoch, an oscillation that never settles.
	ds = ds.EnsureCertain(wiring[i])

	// The node's live routing row: one Dijkstra over the directory graph
	// from i, with i's out-arcs taken from its *current* wiring (the
	// directory graph may be a few re-wirings stale under the refresh
	// hysteresis, and i's own links must never be). It prices the
	// current wiring exactly (estCur below) and anchors the
	// contamination clamp on the pool rows.
	if w.rowI == nil {
		w.rowI = make([]float64, n)
		w.lid = make([]int32, n)
		for x := range w.lid {
			w.lid[x] = -1
		}
	}
	w.seeds = w.seeds[:0]
	for _, v := range wiring[i] {
		w.seeds = append(w.seeds, graph.Arc{To: v, W: c.Net.Delay(i, v)})
	}
	w.sp.DijkstraDistSeeded(g, i, w.seeds, w.rowI)

	// Candidate set: the destinations a direct link could plausibly
	// serve — every dark sampled destination (unreachable right now:
	// only a direct link can rescue it), the nearest and, under demand
	// weights, the heaviest sampled destinations — plus a pool
	// refinement sample (half nearest by direct cost, half uniform) and
	// the current neighbors (so keeping a link is always an option the
	// solver can price). The remaining sampled destinations stay in the
	// objective, served through the candidates' distance rows; keeping
	// them out of the candidate set is what holds the per-node solver
	// at ~100 facilities instead of the full sample size. Pool members
	// carry exact distance rows; off-pool candidates are creditable as
	// direct links only, invisible as transit.
	w.gcands = w.gcands[:0]
	w.grows = w.grows[:0]
	addCand := func(v int, row []float64) {
		// Departed nodes are never candidates: their rows are stale and
		// a link to them carries nothing.
		if v == i || w.lid[v] >= 0 || !eng.active[v] {
			return
		}
		if row == nil {
			row = pool.row(v)
		}
		w.lid[v] = int32(len(w.gcands))
		w.gcands = append(w.gcands, v)
		w.grows = append(w.grows, row)
	}
	for _, j := range ds.Dests {
		if w.rowI[j] >= graph.Inf {
			addCand(j, nil) // dark: rescue candidate
		}
	}
	const nearDests, heavyDests = 32, 16
	if len(ds.Dests) <= nearDests+heavyDests {
		for _, j := range ds.Dests {
			addCand(j, nil)
		}
	} else {
		D := len(ds.Dests)
		w.delay = floatsN(w.delay, D)
		w.order = intsN(w.order, D)
		for x, j := range ds.Dests {
			w.delay[x] = c.Net.Delay(i, j)
			w.order[x] = x
		}
		sort.Slice(w.order, func(a, b int) bool {
			xa, xb := w.order[a], w.order[b]
			if w.delay[xa] != w.delay[xb] {
				return w.delay[xa] < w.delay[xb]
			}
			return ds.Dests[xa] < ds.Dests[xb]
		})
		for _, x := range w.order[:nearDests] {
			addCand(ds.Dests[x], nil)
		}
		if demand != nil {
			for x, j := range ds.Dests {
				w.delay[x] = -demand(i, j)
				w.order[x] = x
			}
			sort.Slice(w.order, func(a, b int) bool {
				xa, xb := w.order[a], w.order[b]
				if w.delay[xa] != w.delay[xb] {
					return w.delay[xa] < w.delay[xb]
				}
				return ds.Dests[xa] < ds.Dests[xb]
			})
			for _, x := range w.order[:heavyDests] {
				addCand(ds.Dests[x], nil)
			}
		}
	}
	P := len(pool.ids)
	w.perm = intsN(w.perm, P)
	for x := range w.perm {
		w.perm[x] = x
	}
	rng.Shuffle(P, func(a, b int) { w.perm[a], w.perm[b] = w.perm[b], w.perm[a] })
	m := c.CandSample
	if m > P {
		m = P
	}
	// Uniform half from the directory permutation...
	for _, x := range w.perm[:m/2] {
		addCand(pool.ids[x], pool.rowAt(x))
	}
	// ...nearest half: order the directory by direct cost once (cached
	// delays, ids as tie-break) and take the closest members not yet
	// picked.
	w.delay = floatsN(w.delay, P)
	w.order = intsN(w.order, P)
	for x := 0; x < P; x++ {
		w.delay[x] = c.Net.Delay(i, pool.ids[x])
		w.order[x] = x
	}
	sort.Slice(w.order, func(a, b int) bool {
		xa, xb := w.order[a], w.order[b]
		if w.delay[xa] != w.delay[xb] {
			return w.delay[xa] < w.delay[xb]
		}
		return pool.ids[xa] < pool.ids[xb]
	})
	need := m - m/2
	for _, x := range w.order {
		if need == 0 {
			break
		}
		v := pool.ids[x]
		if v == i || w.lid[v] >= 0 {
			continue
		}
		addCand(v, pool.rowAt(x))
		need--
	}
	for _, v := range wiring[i] {
		addCand(v, nil)
	}

	// Local id space: candidates first (facilities), then the remaining
	// sampled destinations (columns of the objective only), self last.
	C := len(w.gcands)
	for _, j := range ds.Dests {
		if w.lid[j] < 0 {
			w.lid[j] = int32(len(w.gcands))
			w.gcands = append(w.gcands, j)
		}
	}
	L := len(w.gcands) + 1
	self := L - 1

	// Dense local instance: Resid[a][b] is the pool row's distance with
	// the self-path clamp — an entry whose shortest path demonstrably
	// runs through i (d(w→i)+d(i→b) adds up to d(w→b)) is treated as
	// unreachable via that facility, because those are exactly the
	// paths the node's own re-wiring is about to invalidate. Trusting
	// them is how an earlier design collapsed the overlay: every node
	// believed its destinations stayed covered "through itself" while
	// re-purposing the very links that carried them.
	w.resid = w.residMatrix(L)
	w.direct = floatsN(w.direct, L)
	w.pref = floatsN(w.pref, L)
	w.lcands = intsN(w.lcands, C)
	for a := 0; a < C; a++ {
		row := w.resid[a]
		grow := w.grows[a]
		if grow == nil {
			for b := range row {
				row[b] = graph.Inf
			}
			row[a] = 0
		} else {
			toSelf := grow[i]
			for b := 0; b < L-1; b++ {
				gb := w.gcands[b]
				d := grow[gb]
				if d < graph.Inf && toSelf < graph.Inf {
					if via := toSelf + w.rowI[gb]; via <= d*(1+1e-12)+1e-9 && via >= d*(1-1e-12)-1e-9 {
						d = graph.Inf
					}
				}
				row[b] = d
			}
			row[a] = 0
			row[self] = graph.Inf
		}
		w.lcands[a] = a
	}
	for b, gb := range w.gcands {
		w.direct[b] = c.Net.Delay(i, gb)
		if demand != nil {
			w.pref[b] = demand(i, gb)
		} else {
			w.pref[b] = 1
		}
	}
	w.direct[self] = 0
	w.pref[self] = 0
	localDS := ds.Remap(func(j int) int { return int(w.lid[j]) })

	inst := &core.Instance{
		Self:       self,
		Kind:       core.Additive,
		Direct:     w.direct,
		Resid:      w.resid,
		Pref:       w.pref,
		Candidates: w.lcands,
	}
	chosen, estNew, err := core.BestResponseSampled(inst, c.K, localDS, c.BROpts, &w.sc)
	if err != nil {
		for _, v := range w.gcands {
			w.lid[v] = -1
		}
		return scaleProposal{}, err
	}

	// The current wiring is priced twice. For reporting: from the live
	// row — rowI[j] is the true routed cost to j with the links the node
	// holds right now. For the adoption test: under the same clamped-row
	// model and sample as the proposal, so model mismatch and sampling
	// noise cancel in the comparison.
	estCur := ds.Estimate(func(j int) float64 {
		d := w.rowI[j]
		if d >= graph.Inf {
			d = core.DisconnectedPenalty
		}
		var p float64 = 1
		if demand != nil {
			p = demand(i, j)
		}
		return p * d
	})
	w.cur = w.cur[:0]
	for _, v := range wiring[i] {
		w.cur = append(w.cur, int(w.lid[v]))
	}
	estCurM := core.EvalSampled(inst, w.cur, localDS, &w.sc)
	// Reset the id map now that every lid consumer has run.
	for _, v := range w.gcands {
		w.lid[v] = -1
	}

	// BR(ε) with a significance gate, anchored on the *more favorable*
	// of the two views of the current wiring: the exact live price
	// (rowI) and the model price on the proposal's own sample. The
	// model view alone inflates current neighbors that sit outside the
	// facility directory (their rows are direct-credit-only), which at
	// 10k nodes made every directory rotation trigger mass re-wiring;
	// the exact view alone leaves a model-vs-model mismatch the
	// proposal can game. A proposal must beat whichever view defends
	// the current wiring best.
	//
	// While the anchor is penalty-laden (some sampled destination
	// unreachable) any improvement is adopted: a relative threshold
	// against a cost dominated by M·n disconnection penalties would
	// veto the very re-wirings that restore connectivity. Otherwise the
	// improvement must clear both the ε fraction and the estimate's own
	// 95% half-width: the proposal was *selected* to minimize this
	// sample's objective, so gains inside the band are winner's-curse
	// noise — re-wiring on them is how small-m runs churn forever at a
	// converged cost.
	anchor := estCurM.Total
	if estCur.Total < anchor {
		anchor = estCur.Total
	}
	improve := anchor - estNew.Total
	var adopt bool
	if len(wiring[i]) == 0 {
		adopt = true
	} else if anchor >= core.DisconnectedPenalty/2 {
		adopt = improve > 0
	} else {
		threshold := c.Epsilon * anchor
		if noise := estNew.Hi - estNew.Total; noise > threshold {
			threshold = noise
		}
		adopt = improve > threshold
	}
	p := scaleProposal{acted: true, samples: len(ds.Dests)}
	if adopt {
		p.set = make([]int, len(chosen))
		for x, l := range chosen {
			p.set[x] = w.gcands[l]
		}
		sort.Ints(p.set)
		p.estCost = estNew.Total
		p.estBand = estNew.Hi - estNew.Total
	} else {
		p.estCost = estCur.Total
		p.estBand = estCur.Hi - estCur.Total
	}
	return p, nil
}

// residMatrix sizes the dense local residual matrix to L×L rows over
// the worker's reusable backing block (L varies job to job with the
// Demand strategy's Poisson draw; the block only ever grows).
func (w *scaleWorker) residMatrix(L int) [][]float64 {
	if cap(w.flat) < L*L {
		w.flat = make([]float64, L*L)
	}
	flat := w.flat[:L*L]
	if cap(w.resid) < L {
		w.resid = make([][]float64, L)
	}
	w.resid = w.resid[:L]
	for a := range w.resid {
		w.resid[a] = flat[a*L : (a+1)*L : (a+1)*L]
	}
	return w.resid
}

// sameWiring reports whether two sorted wirings are identical.
func sameWiring(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// floatsN resizes a float scratch slice to n.
func floatsN(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// intsN resizes an int scratch slice to n.
func intsN(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}
