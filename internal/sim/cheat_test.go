package sim

import (
	"math/rand"
	"testing"

	"egoist/internal/cheat"
	"egoist/internal/core"
)

// TestDeflationCheatingAlsoBounded covers footnote 10: announcing
// lower-than-actual delays (factor < 1, making oneself look attractive)
// also leaves costs close to the honest baseline.
func TestDeflationCheatingAlsoBounded(t *testing.T) {
	base := baseCfg(core.BRPolicy{})
	base.WarmEpochs, base.MeasureEpochs = 6, 6
	honest := run(t, base)

	deflating := base
	deflating.Cheat = cheat.Single(base.N, 3, 0.5) // announces half the real cost
	res := run(t, deflating)

	ratio := res.Cost.Mean / honest.Cost.Mean
	if ratio > 1.3 || ratio < 0.7 {
		t.Fatalf("deflating cheater moved mean cost by %.0f%%", (ratio-1)*100)
	}
}

// TestManyCheatersWorstCaseStillConnected: even with a third of the
// population lying, the overlay must remain connected (no penalty costs).
func TestManyCheatersStillConnected(t *testing.T) {
	base := baseCfg(core.BRPolicy{})
	base.Cheat = cheat.Population(base.N, base.N/3, 2, newTestRng(5))
	res := run(t, base)
	if res.Cost.Mean >= core.DisconnectedPenalty {
		t.Fatalf("overlay disconnected under cheating: %v", res.Cost.Mean)
	}
}

func newTestRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
