package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"egoist/internal/churn"
	"egoist/internal/sampling"
)

// This file is the scale engine's side of the PR-4 equivalence suite:
// the propose/apply split (see the contract comment in scale.go) must
// make ScaleResult a pure function of (config, seed) — byte-identical
// JSON for workers ∈ {1, 2, 4} — and the parallel proposal phase must
// survive the race detector while churn events mutate the facility
// directory between sub-rounds.

// churnHeavyConfig is a run that exercises every serial mutation the
// proposal phase can interleave with: mid-epoch leave waves, rejoins,
// fresh joins and a demand flip, over a fine stagger so directory
// repairs land between many small parallel proposal batches.
func churnHeavyConfig(workers int) ScaleConfig {
	const n = 160
	sched := emptySchedule(n)
	for v := 0; v < n; v += 7 { // leaves spread across epochs 1..2
		sched.Events = append(sched.Events, churn.Event{Time: 1 + float64(v)/float64(n), Node: v, On: false})
	}
	for v := 0; v < n; v += 5 { // mid-epoch-3 wave: rejoins and fresh leaves
		on := v%2 == 0
		sched.Events = append(sched.Events, churn.Event{Time: 3.4 + float64(v)/float64(4*n), Node: v, On: on})
	}
	hotA := func(i, j int) float64 { return 1 + float64((i+j)%5) }
	hotB := func(i, j int) float64 { return 1 + float64((i+3*j)%6) }
	return ScaleConfig{
		N: n, K: 3, Seed: 41, MaxEpochs: 6, Workers: workers,
		Sample:         sampling.Spec{Strategy: sampling.Demand, M: 28},
		StaggerBatches: 20,
		ConvergedFrac:  -1, // run the full horizon so every event lands
		Churn:          sched,
		DemandAt: func(epoch int) func(i, j int) float64 {
			if epoch >= 4 {
				return hotB
			}
			return hotA
		},
	}
}

// resultJSON marshals a wall-clock-stripped ScaleResult for byte
// comparison.
func resultJSON(t *testing.T, r *ScaleResult) []byte {
	t.Helper()
	data, err := json.Marshal(stripWall(r))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestScaleResultJSONByteIdenticalAcrossWorkers pins the acceptance
// criterion on the engine output itself: the marshaled ScaleResult of
// a churn-heavy run is byte-identical for workers 1, 2 and 4.
func TestScaleResultJSONByteIdenticalAcrossWorkers(t *testing.T) {
	ref, err := RunScale(churnHeavyConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Joins == 0 || ref.Leaves == 0 {
		t.Fatalf("run exercised no churn: joins=%d leaves=%d", ref.Joins, ref.Leaves)
	}
	refJSON := resultJSON(t, ref)
	for _, workers := range []int{2, 4} {
		got, err := RunScale(churnHeavyConfig(workers))
		if err != nil {
			t.Fatal(err)
		}
		if gotJSON := resultJSON(t, got); !bytes.Equal(refJSON, gotJSON) {
			t.Fatalf("workers=1 vs workers=%d ScaleResult JSON diverged", workers)
		}
	}
}

// TestScaleConcurrentDirectoryReadsRace is the -race stress half of the
// suite: a churn-heavy run at a worker count well above the batch size,
// so every sub-round has all workers reading the facility directory
// (DynamicRows rows and graph) that the serial sections between
// sub-rounds keep mutating via Apply/AddSource/RemoveSource. Any read
// racing a mutation trips the race detector here — or, even without
// -race, the DynamicRows mutation guard.
func TestScaleConcurrentDirectoryReadsRace(t *testing.T) {
	cfg := churnHeavyConfig(8)
	cfg.MaxEpochs = 4
	res, err := RunScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DirectoryApplies == 0 {
		t.Fatal("stress run never repaired the directory incrementally")
	}
}
