package sim

import (
	"sort"

	"egoist/internal/graph"
	"egoist/internal/par"
)

// This file is the scale engine's shard layer (PR 7): the facility
// directory and the proposal scheduler partitioned into region shards.
//
// A shard is a contiguous node-id band [s·n/S, (s+1)·n/S) — the same
// band convention the scenario harness uses for regions, so a regional
// outage drains exactly one shard. Each shard owns
//
//   - the directory rows of the pool members inside its band, held in
//     its own bounded graph.DynamicRows instance (~|pool|/S rows — the
//     unit a distributed control plane would place per machine), and
//   - a full replica of the live overlay graph (inside that instance),
//     which its proposal workers price against: the per-node seeded
//     Dijkstra of the proposal phase reads only shard-local memory.
//
// Cross-shard exchange. A node's candidate facilities are drawn from
// the global directory id list, so most candidates live in remote
// shards. Remote rows are read through row/rowAt — the exchange seam. The exchange stays "thin" because the directory
// itself is already a sampled digest of the overlay: remote nodes are
// visible only as wired targets or through the rotating explorer crop,
// and each proposer refines that digest with its own per-node sampled
// draw (half nearest, half uniform). Inclusion probabilities of the
// destination sample are computed against the global alive roster and
// every draw comes from the node's own policyRNG stream, so the
// Horvitz–Thompson weights — and with them EvalSampled's unbiasedness —
// are untouched by how many shards the directory is split across.
//
// The determinism contract extends to the shard-merge seam: shard
// membership, row values and the adoption fold are all pure functions
// of (config, seed) — the shard count only changes which DynamicRows
// instance stores a row and which worker pool computes a proposal,
// never a value anybody reads. Consequence, pinned by
// TestScaleResultJSONByteIdenticalAcrossShards and the golden-digest
// suite: ScaleResult is byte-identical (WallNS aside) for ANY
// (Shards, Workers) pair, and Shards=1 reproduces the pre-shard engine
// bit-for-bit.

// shardPlan is the node-id partition: shard s owns [bounds[s],
// bounds[s+1]).
type shardPlan struct {
	s      int
	bounds []int
	owner  []int32 // node id -> shard
}

// newShardPlan partitions n ids into s contiguous bands.
func newShardPlan(n, s int) shardPlan {
	p := shardPlan{s: s, bounds: make([]int, s+1), owner: make([]int32, n)}
	for i := 0; i <= s; i++ {
		p.bounds[i] = i * n / s
	}
	for sh := 0; sh < s; sh++ {
		for v := p.bounds[sh]; v < p.bounds[sh+1]; v++ {
			p.owner[v] = int32(sh)
		}
	}
	return p
}

// cut splits a sorted id slice at the shard boundaries: cut(ids)[s] is
// the subslice owned by shard s (possibly empty — a drained or
// undersized band is a valid shard that simply holds no rows).
func (p *shardPlan) cut(ids []int, out [][]int) [][]int {
	out = out[:0]
	lo := 0
	for sh := 0; sh < p.s; sh++ {
		hi := lo + sort.SearchInts(ids[lo:], p.bounds[sh+1])
		out = append(out, ids[lo:hi])
		lo = hi
	}
	return out
}

// scalePool is the epoch's facility directory, physically partitioned
// across the shard plan: member ids and one exact, incrementally
// maintained SSSP row per member, each row owned by the member's
// shard. The ids/pos bookkeeping replicates the pre-shard engine's
// single-instance order evolution exactly (sorted at rebuild, append
// on join, swap-remove on leave), so candidate selection — which
// iterates ids — sees the identical sequence at any shard count.
type scalePool struct {
	plan  *shardPlan
	insts []*graph.DynamicRows // one per shard; insts[s] holds shard s's rows
	wPer  int                  // workers per shard instance

	ids    []int   // directory membership, pre-shard order evolution
	pos    []int32 // node id -> index in ids, -1 when absent
	member []bool
	indeg  []int32
	gbuild *graph.Digraph
	edits  []graph.RowEdit
	arcs   []graph.Arc
	cutBuf [][]int

	// resets counts logical directory rebuilds and applies logical
	// incremental repairs — one per operation regardless of how many
	// shard instances fan out underneath, so ScaleResult's
	// DirectoryResets/DirectoryApplies are shard-count-invariant and the
	// churn tests' maintenance invariant (events never trigger a full
	// rebuild) keeps meaning the same thing at any Shards value.
	resets, applies int
}

// rebuild recomputes the directory membership for the epoch — all wired
// targets (trimmed to the cap by in-degree, ties to lower ids) plus the
// epoch's explorer rotation and any nodes that joined since the last
// rebuild — and runs the full per-member Dijkstras, fanned out shard ×
// worker. Within the epoch, apply/addMember/dropMember keep the rows
// exact incrementally.
func (sp *scalePool) rebuild(c *ScaleConfig, eng *scaleEngine, epoch, workers int) {
	n := c.N
	if sp.insts == nil {
		sp.plan = &eng.plan
		sp.insts = make([]*graph.DynamicRows, sp.plan.s)
		for s := range sp.insts {
			sp.insts[s] = graph.NewDynamicRows()
		}
		sp.wPer = workers / sp.plan.s
		if sp.wPer < 1 {
			sp.wPer = 1
		}
		sp.indeg = make([]int32, n)
		sp.member = make([]bool, n)
		sp.pos = make([]int32, n)
		sp.gbuild = graph.New(n)
	}
	for i := range sp.indeg {
		sp.indeg[i] = 0
		sp.member[i] = false
	}
	sp.gbuild.Resize(n)
	// Dead nodes hold no out-links and their in-links were dropped at
	// the leave event, so indeg-driven membership is alive-only.
	for u, ws := range eng.wiring {
		for _, v := range ws {
			sp.gbuild.AddArc(u, v, c.Net.Delay(u, v))
			sp.indeg[v]++
		}
	}
	sp.ids = sp.ids[:0]
	for v := 0; v < n; v++ {
		if sp.indeg[v] > 0 {
			sp.member[v] = true
			sp.ids = append(sp.ids, v)
		}
	}
	if len(sp.ids) > c.PoolTarget {
		// Trim the least-popular wired targets.
		sort.Slice(sp.ids, func(a, b int) bool {
			da, db := sp.indeg[sp.ids[a]], sp.indeg[sp.ids[b]]
			if da != db {
				return da > db
			}
			return sp.ids[a] < sp.ids[b]
		})
		for _, v := range sp.ids[c.PoolTarget:] {
			sp.member[v] = false
		}
		sp.ids = sp.ids[:c.PoolTarget]
	}
	// Fresh joiners keep their directory seat through the rebuild after
	// their join epoch, so the overlay can discover them even before
	// they attract an in-link.
	for _, v := range eng.recentJoins {
		if eng.active[v] && !sp.member[v] {
			sp.member[v] = true
			sp.ids = append(sp.ids, v)
		}
	}
	eng.recentJoins = eng.recentJoins[:0]
	// Explorer rotation: a consecutive id block shifted by the epoch, so
	// every node periodically appears in the directory even with zero
	// in-links and the whole roster is covered every n/PoolExplore
	// epochs — this rotation is what keeps the cross-shard digest fresh:
	// each epoch a different crop of every band's nodes becomes visible
	// to proposers in all shards. Departed nodes sit the rotation out.
	for e := 0; e < c.PoolExplore; e++ {
		v := (epoch*c.PoolExplore + e) % n
		if !sp.member[v] && eng.active[v] {
			sp.member[v] = true
			sp.ids = append(sp.ids, v)
		}
	}
	sort.Ints(sp.ids)
	for v := range sp.pos {
		sp.pos[v] = -1
	}
	for x, v := range sp.ids {
		sp.pos[v] = int32(x)
	}
	sp.resets++
	// Fan the full per-member Dijkstras out across the shard instances:
	// each shard Resets with its band's member subset (sorted ids cut at
	// the shard bounds) over the same build graph, using its slice of
	// the worker budget. Every instance replicates the overlay graph, so
	// the proposal phase that follows reads shard-local memory only.
	sp.cutBuf = sp.plan.cut(sp.ids, sp.cutBuf)
	par.Do(sp.plan.s, workers, func(_, s int) {
		sp.insts[s].Reset(sp.gbuild, sp.cutBuf[s], sp.wPer)
	})
}

// addMember bootstraps node v into the live directory with one fresh
// Dijkstra row in its owning shard — the per-join incremental path.
func (sp *scalePool) addMember(v int) {
	if sp.member[v] {
		return
	}
	sp.member[v] = true
	sp.insts[sp.plan.owner[v]].AddSource(v)
	sp.pos[v] = int32(len(sp.ids))
	sp.ids = append(sp.ids, v)
}

// dropMember removes a departed node's row from its owning shard,
// mirroring the O(1) swap on the global ids order (the same order
// evolution the pre-shard single-instance engine produced via its
// slot-aligned swap).
func (sp *scalePool) dropMember(v int) {
	if !sp.member[v] {
		return
	}
	sp.member[v] = false
	if p := sp.pos[v]; p >= 0 {
		last := len(sp.ids) - 1
		moved := sp.ids[last]
		sp.ids[p] = moved
		sp.pos[moved] = p
		sp.ids = sp.ids[:last]
		sp.pos[v] = -1
		sp.insts[sp.plan.owner[v]].RemoveSource(v)
	}
}

// applyEdits folds out-set replacements into every shard instance —
// each replica's graph must stay identical, and each shard repairs only
// its own rows — in parallel across shards. One logical apply.
func (sp *scalePool) applyEdits(edits []graph.RowEdit) {
	if len(edits) == 0 {
		return
	}
	sp.applies++
	par.Do(sp.plan.s, sp.plan.s, func(_, s int) {
		sp.insts[s].Apply(edits)
	})
}

// apply folds one sub-round's adopted re-wirings into the directory
// graph replicas and repairs the member rows incrementally.
func (sp *scalePool) apply(c *ScaleConfig, rewired []int, wiring [][]int) {
	if len(rewired) == 0 {
		return
	}
	sp.edits = sp.edits[:0]
	sp.arcs = sp.arcs[:0]
	for _, u := range rewired {
		start := len(sp.arcs)
		for _, v := range wiring[u] {
			sp.arcs = append(sp.arcs, graph.Arc{To: v, W: c.Net.Delay(u, v)})
		}
		sp.edits = append(sp.edits, graph.RowEdit{Node: u, NewOut: sp.arcs[start:]})
	}
	sp.applyEdits(sp.edits)
}

// row returns the pool member's distance row via its owning shard, or
// nil if v is not in the directory — the cross-shard exchange's read
// path.
func (sp *scalePool) row(v int) []float64 {
	return sp.insts[sp.plan.owner[v]].Row(v)
}

// rowAt returns the distance row of the x-th directory member (in the
// global ids order).
func (sp *scalePool) rowAt(x int) []float64 { return sp.row(sp.ids[x]) }

// graphFor exposes shard s's live overlay replica (read-only for
// proposals). All replicas are identical by construction; shard-local
// reads are what the two-level proposal phase is for.
func (sp *scalePool) graphFor(s int) *graph.Digraph { return sp.insts[s].Graph() }
