package sim

import (
	"fmt"
	"math/rand"

	"egoist/internal/topology"
)

// Network abstracts the substrate beneath a simulated overlay: the true
// pairwise delays, per-node loads and available bandwidths, advancing in
// epochs. internal/underlay provides the synthetic wide-area
// implementation; TraceNetwork replays a measured delay matrix (the
// paper's trace-driven Sect. 5 setting).
type Network interface {
	// N returns the number of nodes.
	N() int
	// Delay returns the current true one-way delay in ms from i to j.
	Delay(i, j int) float64
	// Load returns the current true load of node i.
	Load(i int) float64
	// AvailBW returns the current true available bandwidth in Mbps.
	AvailBW(i, j int) float64
	// Step advances the substrate's dynamics by dt epochs.
	Step(dt float64)
}

// TraceNetwork serves delays from a static matrix with optional
// multiplicative jitter, for trace-driven simulations. Loads and
// bandwidths are synthetic constants with small noise: a delay trace
// carries no load or bandwidth information, so only the delay metrics are
// meaningful over it.
type TraceNetwork struct {
	base   topology.DelayMatrix
	jitter [][]float64
	frac   float64
	rng    *rand.Rand
	loads  []float64
}

// NewTraceNetwork wraps a delay matrix. jitterFrac sets the relative
// stddev of per-epoch delay wobble (0 freezes the trace).
func NewTraceNetwork(m topology.DelayMatrix, jitterFrac float64, seed int64) (*TraceNetwork, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := m.N()
	t := &TraceNetwork{
		base: m,
		frac: jitterFrac,
		rng:  rand.New(rand.NewSource(seed)),
	}
	t.jitter = make([][]float64, n)
	for i := range t.jitter {
		t.jitter[i] = make([]float64, n)
		for j := range t.jitter[i] {
			t.jitter[i][j] = 1
		}
	}
	t.loads = make([]float64, n)
	for i := range t.loads {
		t.loads[i] = 1 + t.rng.Float64()
	}
	return t, nil
}

// N implements Network.
func (t *TraceNetwork) N() int { return t.base.N() }

// Delay implements Network.
func (t *TraceNetwork) Delay(i, j int) float64 {
	if i == j {
		return 0
	}
	return t.base[i][j] * t.jitter[i][j]
}

// Load implements Network.
func (t *TraceNetwork) Load(i int) float64 { return t.loads[i] }

// AvailBW implements Network. Traces carry no bandwidth; a constant keeps
// the Bandwidth metric well-defined but uninformative.
func (t *TraceNetwork) AvailBW(i, j int) float64 {
	if i == j {
		return 1e12
	}
	return 100
}

// Step implements Network: jitter factors relax toward fresh noise.
func (t *TraceNetwork) Step(dt float64) {
	if t.frac == 0 {
		return
	}
	alpha := 0.5 * dt
	if alpha > 1 {
		alpha = 1
	}
	n := t.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			target := 1 + t.rng.NormFloat64()*t.frac
			if target < 0.2 {
				target = 0.2
			}
			t.jitter[i][j] += alpha * (target - t.jitter[i][j])
		}
	}
}

// checkNetwork validates a caller-supplied network against the config.
func checkNetwork(net Network, n int) error {
	if net.N() != n {
		return fmt.Errorf("sim: network has %d nodes, config says %d", net.N(), n)
	}
	return nil
}
