// Package sim is the epoch-driven simulator that reproduces the paper's
// experiments: it runs a set of overlay nodes above a synthetic underlay
// (internal/underlay), drives their periodic re-wiring with a pluggable
// neighbor-selection policy, injects churn and cheating, and measures true
// routing costs, efficiency and re-wiring counts.
//
// Time advances in wiring epochs of length T. Like the paper's deployment,
// nodes are unsynchronized: each epoch the nodes re-wire one after another
// in a fixed stagger order (one re-wiring every T/n on average). Underlay
// dynamics (delay jitter, load drift, bandwidth wobble) advance once per
// epoch. Estimated costs (what policies see) are produced by the probe
// layer and differ from the true costs (what the measurement layer
// reports), exactly as on a real testbed.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"egoist/internal/cheat"
	"egoist/internal/churn"
	"egoist/internal/coords"
	"egoist/internal/core"
	"egoist/internal/graph"
	"egoist/internal/measure"
	"egoist/internal/probe"
	"egoist/internal/underlay"
)

// Metric selects the link-cost metric of Sect. 4.1.
type Metric int

const (
	// DelayPing measures one-way delay with active pings.
	DelayPing Metric = iota
	// DelayCoords estimates delay passively from the virtual coordinate
	// system (the pyxida substitute).
	DelayCoords
	// Load uses the destination node's smoothed CPU load as the cost of
	// every link entering it.
	Load
	// Bandwidth maximizes bottleneck available bandwidth.
	Bandwidth
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case DelayPing:
		return "delay-ping"
	case DelayCoords:
		return "delay-coords"
	case Load:
		return "load"
	case Bandwidth:
		return "bandwidth"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Kind returns the cost algebra of the metric.
func (m Metric) Kind() core.CostKind {
	if m == Bandwidth {
		return core.Bottleneck
	}
	return core.Additive
}

// Config parameterizes one simulation run.
type Config struct {
	// N is the overlay size; K the per-node degree budget.
	N, K int
	// Seed drives all simulation randomness. Two runs with equal seeds and
	// equal Underlay configuration see identical network conditions, which
	// is how policies are compared "concurrently" as in the paper.
	Seed int64
	// UnderlaySeed fixes the underlay trajectory independently of policy
	// randomness. Zero means derive from Seed.
	UnderlaySeed int64
	// Metric is the link-cost metric.
	Metric Metric
	// Policy selects neighbors. Required.
	Policy core.Policy
	// Epsilon is the BR(ε) re-wiring threshold; applies to BR policies.
	Epsilon float64
	// WarmEpochs run before measurement; MeasureEpochs are recorded.
	WarmEpochs, MeasureEpochs int
	// Churn optionally drives node ON/OFF membership; times are in epochs.
	Churn *churn.Schedule
	// Cheat optionally installs the free-rider model.
	Cheat *cheat.Model
	// EnforceCycle applies the paper's connectivity fallback after every
	// epoch (used with k-Random and k-Closest).
	EnforceCycle bool
	// Underlay overrides the default underlay configuration (N and Seed
	// are always taken from this Config).
	Underlay *underlay.Config
	// Network, when non-nil, replaces the synthetic underlay entirely —
	// e.g. a TraceNetwork replaying a measured delay matrix. Its node
	// count must equal N.
	Network Network
	// PingNoise is the relative RTT sample noise (default 0.05).
	PingNoise float64
	// CoordRounds is the coordinate-system calibration effort (default 15).
	CoordRounds int
	// Immediate switches failure repair from the paper's default delayed
	// mode (dropped links are replaced at the node's next wiring epoch) to
	// immediate mode (victims re-wire as soon as the failure is detected),
	// per Sect. 3.3.
	Immediate bool
	// Pref, when non-nil, supplies non-uniform routing preferences
	// p_ij = Pref(i,j) used by the wiring policies. Measurement reporting
	// stays uniform (the paper's conservative choice, footnote 8), but
	// Result.WeightedCost additionally reports the preference-weighted
	// cost. With Workers > 1, Pref must be safe for concurrent calls.
	Pref func(i, j int) float64
	// PrefAt, when non-nil, overrides Pref with a per-epoch preference
	// function — the scenario harness's demand shifts. The epoch's
	// function is resolved once at the epoch boundary and drives both
	// the wiring policies and the weighted-cost measurements of that
	// epoch. The returned function must be safe for concurrent calls.
	PrefAt func(epoch int) func(i, j int) float64
	// Workers sets the parallelism of the per-epoch best-response phase:
	// every node's proposal is computed concurrently against the
	// epoch-start link-state snapshot by up to Workers goroutines. Zero (or
	// negative) selects runtime.NumCPU(). Results are byte-identical for
	// any value — parallelism changes wall-clock time, never measurements.
	// Custom Policy implementations must be safe for concurrent Select
	// calls on distinct Requests.
	Workers int
	// OnEpoch, when non-nil, is the data-plane publication hook: it is
	// called serially once after the initial join (epoch -1) and once
	// at the end of every epoch (warm and measured alike), after the
	// epoch's final churn drain and connectivity fallback. wiring and
	// active are the simulator's own live arrays, borrowed read-only
	// for the duration of the call — wiring rows may still list links
	// to departed nodes awaiting delayed repair, which publishers must
	// filter with active (plane.Compile does). Must stay deterministic
	// to preserve the any-worker-count contract.
	OnEpoch func(epoch int, wiring [][]int, active []bool)
	// OnPublish, when non-nil, is the sub-epoch publication hook — the
	// full engine's counterpart of ScaleConfig.OnPublish, with the same
	// Publication schema and ordering contract (bootstrap Full first,
	// strictly ordered deltas after; see the contract note in
	// scale.go). The per-node stagger is grouped into min(16, N)
	// sub-rounds and a publication fires after each, plus one after the
	// epoch-final churn drain and connectivity fallback. Changed sets
	// are computed by diffing against the previously published state —
	// unlike the scale engine, wiring rows here may keep links to
	// departed nodes awaiting delayed repair, so a row also counts as
	// changed when a target's membership flipped (its compiled arcs
	// change even though the row did not).
	OnPublish func(pub Publication)
	// Incremental switches the proposal phase's residual-matrix
	// construction from one full all-pairs computation per node to an
	// incrementally repaired shortest-path forest per worker: each node's
	// residual view is obtained by cutting just its out-links out of the
	// shared epoch snapshot and repairing only the affected shortest-path
	// trees, then undoing exactly. Produces bit-identical distances (and
	// therefore byte-identical simulation results); it only changes the
	// time complexity of the hot path. Applies to BR policies with
	// Workers-driven proposals.
	Incremental bool
}

func (c *Config) validate() error {
	if c.N < 2 {
		return fmt.Errorf("sim: N = %d, need >= 2", c.N)
	}
	if c.K < 1 || c.K >= c.N {
		return fmt.Errorf("sim: K = %d, need 1 <= K < N", c.K)
	}
	if c.Policy == nil {
		return fmt.Errorf("sim: Policy required")
	}
	if c.MeasureEpochs < 1 {
		return fmt.Errorf("sim: MeasureEpochs = %d, need >= 1", c.MeasureEpochs)
	}
	return nil
}

// Result aggregates a run's measurements.
type Result struct {
	// Cost summarizes per-node true routing cost over the measurement
	// window (per-epoch node costs averaged per node, then summarized
	// across nodes). For Bandwidth the value is aggregate bandwidth
	// (higher is better); otherwise lower is better.
	Cost measure.Summary
	// PerNodeCost is each node's time-averaged cost (NaN if never alive).
	PerNodeCost []float64
	// Efficiency summarizes the churn-robustness metric of Sect. 4.4.
	Efficiency measure.Summary
	// PerNodeEfficiency is each node's time-averaged efficiency.
	PerNodeEfficiency []float64
	// Rewires counts established links per epoch (warm + measured).
	Rewires measure.RewireCounter
	// FinalWiring is the overlay wiring at the end of the run.
	FinalWiring [][]int
	// ProbeBits tallies measurement traffic by category.
	ProbeBits map[string]float64
	// LSABits estimates link-state announcement traffic in bits, using the
	// paper's format accounting (192 + 32k bits per announcement).
	LSABits float64
	// EpochsRun is the total number of epochs simulated.
	EpochsRun int
	// WeightedCost summarizes the preference-weighted per-node cost when
	// Config.Pref (or PrefAt) is set (zero Summary otherwise).
	WeightedCost measure.Summary
	// PerEpochCost is the mean true cost over alive nodes at each
	// measured epoch's end (indexed by epoch - WarmEpochs) — the series
	// the scenario harness reads recovery times off. NaN when no node
	// was alive at the snapshot. PerEpochAlive is the alive count at
	// the same snapshots.
	PerEpochCost  []float64
	PerEpochAlive []int
}

// state is the mutable simulation state.
type state struct {
	cfg      Config
	und      Network
	rng      *rand.Rand
	pinger   *probe.Pinger
	bwEst    *probe.BandwidthEstimator
	loadMon  []*probe.LoadMonitor
	coordSys *coords.System
	account  *probe.Accountant

	active  []bool
	wiring  [][]int
	est     [][]float64 // est[i][j]: i's current estimate of direct cost i->j
	churnAt int         // next churn event index
	order   []int       // staggered re-wire order
	pref    func(i, j int) float64

	// epochDirty records whether the announced link-state has changed since
	// the current epoch's proposal snapshot (a node re-wired, membership
	// changed, a cycle was enforced); once set, adoption falls back to the
	// sequential re-wiring path (see parallel.go).
	epochDirty bool

	// forests holds the per-worker incremental shortest-path forests of
	// the Incremental proposal phase, persisted across epochs so their
	// matrices are reused instead of reallocated every epoch.
	forests []*graph.SPForest
}

// Run executes one simulation and returns its measurements.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	st, err := newState(cfg)
	if err != nil {
		return nil, err
	}
	return st.run()
}

func newState(cfg Config) (*state, error) {
	var und Network
	if cfg.Network != nil {
		if err := checkNetwork(cfg.Network, cfg.N); err != nil {
			return nil, err
		}
		und = cfg.Network
	} else {
		ucfg := underlay.Config{N: cfg.N}
		if cfg.Underlay != nil {
			ucfg = *cfg.Underlay
			ucfg.N = cfg.N
		}
		ucfg.Seed = cfg.UnderlaySeed
		if ucfg.Seed == 0 {
			ucfg.Seed = cfg.Seed + 1
		}
		u, err := underlay.New(ucfg)
		if err != nil {
			return nil, err
		}
		und = u
	}
	noise := cfg.PingNoise
	if noise == 0 {
		noise = 0.05
	}
	st := &state{
		cfg:     cfg,
		und:     und,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		account: probe.NewAccountant(),
		active:  make([]bool, cfg.N),
		wiring:  make([][]int, cfg.N),
		est:     make([][]float64, cfg.N),
	}
	st.pref = cfg.Pref
	if cfg.PrefAt != nil {
		// The initial join below plays under the first epoch's demand.
		st.pref = cfg.PrefAt(0)
	}
	st.pinger = probe.NewPinger(cfg.Seed+2, noise, 0.3, st.account)
	st.bwEst = probe.NewBandwidthEstimator(cfg.Seed+3, 0.05, st.account)
	st.loadMon = make([]*probe.LoadMonitor, cfg.N)
	for i := range st.loadMon {
		st.loadMon[i] = probe.NewLoadMonitor(0.5)
		st.loadMon[i].Observe(und.Load(i))
	}
	for i := range st.est {
		st.est[i] = make([]float64, cfg.N)
	}
	for i := range st.active {
		st.active[i] = true
	}
	if cfg.Churn != nil {
		copy(st.active, cfg.Churn.InitialOn)
	}
	if cfg.Metric == DelayCoords {
		st.coordSys = coords.NewSystem(cfg.N)
		rounds := cfg.CoordRounds
		if rounds == 0 {
			rounds = 15
		}
		sampler := func(i, j int) float64 {
			st.account.Charge("coord", probe.CoordQueryBits(cfg.N)/float64(cfg.N))
			return und.Delay(i, j) * (1 + st.rng.NormFloat64()*0.03)
		}
		st.coordSys.Calibrate(rounds, sampler)
	}
	st.order = st.rng.Perm(cfg.N)
	st.refreshEstimates()
	// Initial join: every initially-active node wires itself once, in
	// stagger order, over the growing overlay (inherently sequential, so
	// the join epoch is tagged -1 in the policy-RNG derivation).
	for _, i := range st.order {
		if st.active[i] {
			if err := st.rewire(i, -1, true, nil); err != nil {
				return nil, err
			}
		}
	}
	st.enforceCycleIfNeeded()
	return st, nil
}

// refreshEstimates updates every active node's direct-cost estimates the
// way the paper's measurement schedule does: one probe per pair per epoch.
func (st *state) refreshEstimates() {
	n := st.cfg.N
	if st.cfg.Metric == Load {
		// Every node samples its local loadavg once per epoch and announces
		// the EWMA via the link-state protocol (no network probing).
		for j := 0; j < n; j++ {
			st.loadMon[j].Observe(st.und.Load(j))
		}
	}
	for i := 0; i < n; i++ {
		if !st.active[i] {
			continue
		}
		for j := 0; j < n; j++ {
			if i == j || !st.active[j] {
				continue
			}
			st.est[i][j] = st.estimateOne(i, j)
		}
	}
}

func (st *state) estimateOne(i, j int) float64 {
	switch st.cfg.Metric {
	case DelayPing:
		return st.pinger.Measure(i, j, st.und.Delay(i, j))
	case DelayCoords:
		st.account.Charge("coord", probe.CoordQueryBits(st.cfg.N)/float64(st.cfg.N))
		// Keep the embedding alive with one observation per epoch.
		st.coordSys.Observe(i, j, st.und.Delay(i, j)*(1+st.rng.NormFloat64()*0.03))
		return st.coordSys.Estimate(i, j)
	case Load:
		// The destination's announced (EWMA-smoothed) load is the cost of
		// any link entering it; see DESIGN.md for the modeling note.
		return st.loadMon[j].Value()
	case Bandwidth:
		return st.bwEst.Measure(st.und.AvailBW(i, j))
	default:
		return st.und.Delay(i, j)
	}
}

// announcedGraph materializes the link-state view: every active node's
// established links with the costs their owners announce (cheaters
// misrepresent theirs).
func (st *state) announcedGraph() *graph.Digraph {
	g := graph.New(st.cfg.N)
	bottleneck := st.cfg.Metric.Kind() == core.Bottleneck
	for u, ws := range st.wiring {
		if !st.active[u] {
			continue
		}
		for _, v := range ws {
			if !st.active[v] {
				continue
			}
			cost := st.est[u][v]
			cost = st.cfg.Cheat.Announced(u, cost, bottleneck)
			g.AddArc(u, v, cost)
		}
	}
	return g
}

// trueGraph materializes the real current cost of every established link,
// used only by the measurement layer.
func (st *state) trueGraph() *graph.Digraph {
	g := graph.New(st.cfg.N)
	for u, ws := range st.wiring {
		if !st.active[u] {
			continue
		}
		for _, v := range ws {
			if !st.active[v] {
				continue
			}
			g.AddArc(u, v, st.trueCost(u, v))
		}
	}
	return g
}

func (st *state) trueCost(u, v int) float64 {
	switch st.cfg.Metric {
	case Load:
		return st.und.Load(v)
	case Bandwidth:
		return st.und.AvailBW(u, v)
	default:
		return st.und.Delay(u, v)
	}
}

// rewire re-evaluates node i's wiring against the current (not snapshot)
// link-state view — the sequential path used for initial joins, immediate
// failure repair, and adoption fallback when churn invalidated the node's
// parallel proposal. join indicates a fresh (re)join, which always adopts
// the proposal. counter, when non-nil, records established links. epoch
// seeds the per-(epoch,node) policy RNG (-1 for the initial join).
func (st *state) rewire(i, epoch int, join bool, counter func(links int)) error {
	req := &core.Request{
		Self:   i,
		K:      st.cfg.K,
		Kind:   st.cfg.Metric.Kind(),
		Direct: st.est[i],
		Graph:  st.announcedGraph(),
		Active: st.active,
		Pref:   st.prefRow(i),
		Rng:    policyRNG(st.cfg.Seed, epoch, i),
	}
	proposed, err := st.cfg.Policy.Select(req)
	if err != nil {
		return fmt.Errorf("sim: node %d: %w", i, err)
	}
	cur := st.wiring[i]
	adopt := join || len(cur) == 0
	if !adopt {
		// Drop dead neighbors from the current wiring before comparing.
		aliveCur := cur[:0:0]
		for _, v := range cur {
			if st.active[v] {
				aliveCur = append(aliveCur, v)
			}
		}
		if len(aliveCur) < len(cur) {
			cur = aliveCur
			st.wiring[i] = aliveCur
			adopt = true // lost links: must re-wire
		}
	}
	if !adopt {
		switch st.cfg.Policy.(type) {
		case core.BRPolicy:
			// BR(ε): adopt only a sufficient improvement, measured on the
			// node's own announced view.
			inst := &core.Instance{
				Self:   i,
				Kind:   st.cfg.Metric.Kind(),
				Direct: st.est[i],
				Resid:  core.BuildResid(req.Graph, i, st.cfg.Metric.Kind(), st.active),
				Pref:   req.Pref,
			}
			adopt = core.ShouldRewire(st.cfg.Metric.Kind(), inst.Eval(cur), inst.Eval(proposed), st.cfg.Epsilon)
		case core.KClosest:
			adopt = true // tracks measurement changes every epoch
		default:
			// k-Random / k-Regular / full mesh: wiring is static absent
			// churn, per the paper's baseline.
			adopt = false
		}
	}
	if !adopt {
		return nil
	}
	added := measure.LinkDiff(st.wiring[i], proposed)
	if added > 0 && counter != nil {
		counter(added)
	}
	if added > 0 || len(proposed) != len(st.wiring[i]) {
		st.wiring[i] = proposed
		st.epochDirty = true
	}
	return nil
}

func (st *state) enforceCycleIfNeeded() {
	if !st.cfg.EnforceCycle {
		return
	}
	if core.EnforceCycle(st.wiring, st.cfg.Metric.Kind(), st.active, func(i, j int) float64 {
		return st.est[i][j]
	}) {
		st.epochDirty = true
	}
}

// applyChurn processes all membership events scheduled before time t
// (epochs) and reports whether membership changed.
func (st *state) applyChurn(t float64, counter func(links int)) (bool, error) {
	if st.cfg.Churn == nil {
		return false, nil
	}
	changed := false
	events := st.cfg.Churn.Events
	for st.churnAt < len(events) && events[st.churnAt].Time < t {
		e := events[st.churnAt]
		st.churnAt++
		if e.On == st.active[e.Node] {
			continue
		}
		st.active[e.Node] = e.On
		changed = true
		st.epochDirty = true
		epoch := int(e.Time) // the wiring epoch the event falls in
		if e.On {
			// Re-join: measure candidates, then connect to a single
			// bootstrap neighbor (Sect. 3.1). The full policy wiring
			// happens at the node's next wiring epoch; until then the
			// newcomer is only as connected as its bootstrap link — and,
			// under HybridBR, its immediately re-formed backbone cycles.
			for j := 0; j < st.cfg.N; j++ {
				if j != e.Node && st.active[j] {
					st.est[e.Node][j] = st.estimateOne(e.Node, j)
				}
			}
			if boot := st.randomAlive(e.Node); boot >= 0 {
				st.wiring[e.Node] = []int{boot}
				if counter != nil {
					counter(1)
				}
			}
		} else {
			st.wiring[e.Node] = nil
			if st.cfg.Immediate {
				// Immediate mode: every victim of the failure re-wires as
				// soon as the heartbeat monitor would detect it.
				for i := 0; i < st.cfg.N; i++ {
					if i == e.Node || !st.active[i] || !hasLink(st.wiring[i], e.Node) {
						continue
					}
					if err := st.rewire(i, epoch, false, counter); err != nil {
						return changed, err
					}
				}
			}
		}
		st.repairBackbone(counter)
	}
	return changed, nil
}

// prefRow materializes node i's preference vector for the current
// epoch, or nil for uniform.
func (st *state) prefRow(i int) []float64 {
	if st.pref == nil {
		return nil
	}
	row := make([]float64, st.cfg.N)
	for j := 0; j < st.cfg.N; j++ {
		if j != i {
			row[j] = st.pref(i, j)
		}
	}
	return row
}

func hasLink(ws []int, v int) bool {
	for _, w := range ws {
		if w == v {
			return true
		}
	}
	return false
}

// randomAlive returns a random alive node other than self, or -1.
func (st *state) randomAlive(self int) int {
	var alive []int
	for v := 0; v < st.cfg.N; v++ {
		if v != self && st.active[v] {
			alive = append(alive, v)
		}
	}
	if len(alive) == 0 {
		return -1
	}
	return alive[st.rng.Intn(len(alive))]
}

// repairBackbone implements HybridBR's aggressive monitoring of donated
// links (Sect. 3.3): the connectivity backbone is a pure function of the
// alive ring, so whenever membership changes every alive node immediately
// re-forms its cycles — without waiting for its wiring epoch, unlike the
// lazily-maintained selfish links.
func (st *state) repairBackbone(counter func(links int)) {
	pol, ok := st.cfg.Policy.(core.BRPolicy)
	if !ok || pol.Donated <= 0 {
		return
	}
	for i := 0; i < st.cfg.N; i++ {
		if !st.active[i] {
			continue
		}
		targets := core.DonatedTargets(i, st.cfg.N, pol.Donated, st.active)
		cur := st.wiring[i]
		missing := 0
		have := make(map[int]bool, len(cur))
		for _, v := range cur {
			have[v] = true
		}
		for _, t := range targets {
			if !have[t] {
				missing++
			}
		}
		if missing == 0 {
			continue
		}
		// Keep alive non-backbone links up to the remaining budget, then
		// add the backbone targets.
		isTarget := make(map[int]bool, len(targets))
		for _, t := range targets {
			isTarget[t] = true
		}
		var kept []int
		budget := st.cfg.K - len(targets)
		for _, v := range cur {
			if !isTarget[v] && st.active[v] && len(kept) < budget {
				kept = append(kept, v)
			}
		}
		next := append(append([]int(nil), targets...), kept...)
		sort.Ints(next)
		if added := measure.LinkDiff(st.wiring[i], next); added > 0 && counter != nil {
			counter(added)
		}
		st.wiring[i] = next
	}
}

func (st *state) run() (*Result, error) {
	cfg := st.cfg
	res := &Result{
		PerNodeCost:       make([]float64, cfg.N),
		PerNodeEfficiency: make([]float64, cfg.N),
	}
	costSamples := make([]int, cfg.N)
	effSamples := make([]int, cfg.N)
	weighted := make([]float64, cfg.N)

	hasPref := cfg.Pref != nil || cfg.PrefAt != nil
	snapshot := func(endOfEpoch bool) {
		// The connectivity fallback of k-Random/k-Closest is maintained
		// continuously by the deployed systems; apply it before observing.
		st.enforceCycleIfNeeded()
		tg := st.trueGraph()
		costs := measure.NodeCosts(tg, cfg.Metric.Kind(), st.active)
		effs := measure.Efficiency(tg, st.active)
		var wcosts []float64
		if st.pref != nil {
			wcosts = measure.WeightedNodeCosts(tg, cfg.Metric.Kind(), st.active, st.pref)
		}
		epochSum, epochAlive := 0.0, 0
		for i := 0; i < cfg.N; i++ {
			if st.active[i] {
				res.PerNodeCost[i] += costs[i]
				costSamples[i]++
				res.PerNodeEfficiency[i] += effs[i]
				effSamples[i]++
				epochSum += costs[i]
				epochAlive++
				if wcosts != nil {
					weighted[i] += wcosts[i]
				}
			}
		}
		if endOfEpoch {
			if epochAlive > 0 {
				res.PerEpochCost = append(res.PerEpochCost, epochSum/float64(epochAlive))
			} else {
				res.PerEpochCost = append(res.PerEpochCost, nan())
			}
			res.PerEpochAlive = append(res.PerEpochAlive, epochAlive)
		}
	}

	if cfg.OnEpoch != nil {
		cfg.OnEpoch(-1, st.wiring, st.active)
	}
	var pub *pubTracker
	if cfg.OnPublish != nil {
		rounds := 16
		if cfg.N < rounds {
			rounds = cfg.N
		}
		pub = newPubTracker(cfg.OnPublish, cfg.N, rounds)
		pub.bootstrap(st.wiring, st.active)
	}
	total := cfg.WarmEpochs + cfg.MeasureEpochs
	for epoch := 0; epoch < total; epoch++ {
		if cfg.PrefAt != nil {
			st.pref = cfg.PrefAt(epoch)
		}
		st.und.Step(1)
		st.refreshEstimates()
		counter := func(links int) { res.Rewires.Record(epoch, links) }

		// Speculative best-response phase: every node's proposal is
		// computed concurrently against the epoch-start link-state
		// snapshot (nil with a single worker; see parallel.go).
		props, err := st.computeProposals(epoch)
		if err != nil {
			return nil, err
		}

		// Staggered adoption: node order[p] acts at time epoch + p/n.
		for p, i := range st.order {
			t := float64(epoch) + float64(p)/float64(cfg.N)
			if _, err := st.applyChurn(t, counter); err != nil {
				return nil, err
			}
			if p == cfg.N/2 && epoch >= cfg.WarmEpochs {
				// Mid-epoch snapshot: nodes whose re-wiring slot has not
				// come yet still carry links broken by churn, so transient
				// disconnections show up in the measurements the way the
				// paper's continuous monitoring sees them.
				snapshot(false)
			}
			if st.active[i] {
				var prop *proposal
				if props != nil {
					prop = &props[i]
				}
				if err := st.adopt(i, epoch, prop, counter); err != nil {
					return nil, err
				}
			}
			if pub != nil {
				// Group the per-node stagger into pub.rounds sub-rounds
				// and publish at each boundary.
				if sub := (p + 1) * pub.rounds / cfg.N; sub > p*pub.rounds/cfg.N {
					pub.publish(epoch, sub-1, st.wiring, st.active)
				}
			}
		}
		if _, err := st.applyChurn(float64(epoch+1), counter); err != nil {
			return nil, err
		}
		st.enforceCycleIfNeeded()
		if pub != nil {
			pub.publish(epoch, pub.rounds, st.wiring, st.active)
		}
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(epoch, st.wiring, st.active)
		}

		// Each node announces (192 + 32k bits) every Tannounce = T/3.
		for i := 0; i < cfg.N; i++ {
			if st.active[i] {
				res.LSABits += 3 * float64(192+32*len(st.wiring[i]))
			}
		}

		if epoch >= cfg.WarmEpochs {
			snapshot(true)
		}
	}

	for i := 0; i < cfg.N; i++ {
		if costSamples[i] > 0 {
			res.PerNodeCost[i] /= float64(costSamples[i])
			res.PerNodeEfficiency[i] /= float64(effSamples[i])
		} else {
			res.PerNodeCost[i] = nan()
			res.PerNodeEfficiency[i] = nan()
		}
	}
	res.Cost = measure.Summarize(res.PerNodeCost)
	res.Efficiency = measure.Summarize(res.PerNodeEfficiency)
	if hasPref {
		for i := 0; i < cfg.N; i++ {
			if costSamples[i] > 0 {
				weighted[i] /= float64(costSamples[i])
			} else {
				weighted[i] = nan()
			}
		}
		res.WeightedCost = measure.Summarize(weighted)
	}
	res.FinalWiring = make([][]int, cfg.N)
	for i := range st.wiring {
		res.FinalWiring[i] = append([]int(nil), st.wiring[i]...)
	}
	res.ProbeBits = map[string]float64{}
	for _, c := range st.account.Categories() {
		res.ProbeBits[c] = st.account.Total(c)
	}
	res.EpochsRun = total
	return res, nil
}

func nan() float64 { return math.NaN() }
