package sim

import (
	"fmt"
	"strings"
	"testing"

	"egoist/internal/churn"
	"egoist/internal/core"
	"egoist/internal/sampling"
)

// pubRecorder is the test's model of a delta subscriber: it replays
// every Publication onto a shadow copy of the overlay and fails the
// test the moment a changed set misses a row — if applying exactly the
// Changed rows does not reproduce the engine's wiring and membership
// bit-for-bit, the delta stream is unusable for incremental
// publication. It also keeps an interleaved event log so the ordering
// contract (bootstrap Full strictly first, lexicographic (epoch,
// sub-round) order, epoch-final delta before OnEpoch) can be pinned.
type pubRecorder struct {
	t        *testing.T
	wiring   [][]int
	active   []bool
	log      []string
	rounds   int
	lastE    int
	lastSub  int
	nonEmpty int
	booted   bool
}

func newPubRecorder(t *testing.T) *pubRecorder {
	return &pubRecorder{t: t, lastE: -2}
}

func (r *pubRecorder) onEpoch(epoch int, wiring [][]int, active []bool) {
	r.log = append(r.log, fmt.Sprintf("epoch %d", epoch))
}

func (r *pubRecorder) onPublish(pub Publication) {
	t := r.t
	t.Helper()
	if pub.Rounds <= 0 {
		t.Fatalf("publication with Rounds=%d", pub.Rounds)
	}
	if !r.booted {
		if !pub.Full || pub.Epoch != -1 || pub.SubRound != -1 {
			t.Fatalf("first publication must be the bootstrap Full (-1,-1), got full=%v (%d,%d)",
				pub.Full, pub.Epoch, pub.SubRound)
		}
		r.rounds = pub.Rounds
		r.wiring = make([][]int, len(pub.Wiring))
		for u, row := range pub.Wiring {
			r.wiring[u] = append([]int(nil), row...)
		}
		r.active = append([]bool(nil), pub.Active...)
		r.booted = true
		r.log = append(r.log, "pub bootstrap")
		return
	}
	if pub.Full {
		t.Fatalf("second Full publication at (%d,%d)", pub.Epoch, pub.SubRound)
	}
	if pub.Rounds != r.rounds {
		t.Fatalf("Rounds flipped %d -> %d", r.rounds, pub.Rounds)
	}
	if pub.SubRound < 0 || pub.SubRound > pub.Rounds {
		t.Fatalf("sub-round %d out of [0,%d]", pub.SubRound, pub.Rounds)
	}
	if pub.Epoch < r.lastE || (pub.Epoch == r.lastE && pub.SubRound <= r.lastSub) {
		t.Fatalf("publication order violated: (%d,%d) after (%d,%d)",
			pub.Epoch, pub.SubRound, r.lastE, r.lastSub)
	}
	r.lastE, r.lastSub = pub.Epoch, pub.SubRound

	// Replay the delta, then demand the shadow matches the engine
	// exactly: any divergence means Changed missed a mutated row.
	prev := -1
	for _, u := range pub.Changed {
		if u <= prev || u < 0 || u >= len(r.wiring) {
			t.Fatalf("(%d,%d): changed set not ascending in range: %v", pub.Epoch, pub.SubRound, pub.Changed)
		}
		prev = u
		r.wiring[u] = append(r.wiring[u][:0], pub.Wiring[u]...)
		r.active[u] = pub.Active[u]
	}
	if len(pub.Changed) > 0 {
		r.nonEmpty++
	}
	for u := range r.wiring {
		if r.active[u] != pub.Active[u] {
			t.Fatalf("(%d,%d): membership of %d flipped outside the changed set", pub.Epoch, pub.SubRound, u)
		}
		if !sameWiring(r.wiring[u], pub.Wiring[u]) {
			t.Fatalf("(%d,%d): wiring of %d changed outside the changed set: have %v want %v",
				pub.Epoch, pub.SubRound, u, r.wiring[u], pub.Wiring[u])
		}
	}
	r.log = append(r.log, fmt.Sprintf("pub %d %d", pub.Epoch, pub.SubRound))
}

// checkLog pins the interleaving contract against OnEpoch for epochs
// 0..maxEpoch: bootstrap order is OnEpoch(-1) then the Full
// publication, every epoch publishes sub-rounds 0..Rounds in order, and
// the epoch-final drain delta (sub-round == Rounds) fires immediately
// before that epoch's OnEpoch.
func (r *pubRecorder) checkLog(maxEpoch int) {
	t := r.t
	t.Helper()
	if len(r.log) < 2 || r.log[0] != "epoch -1" || r.log[1] != "pub bootstrap" {
		t.Fatalf("bootstrap ordering wrong: log starts %v", r.log[:min(3, len(r.log))])
	}
	want := []string{"epoch -1", "pub bootstrap"}
	for e := 0; e <= maxEpoch; e++ {
		for s := 0; s <= r.rounds; s++ {
			want = append(want, fmt.Sprintf("pub %d %d", e, s))
		}
		want = append(want, fmt.Sprintf("epoch %d", e))
	}
	if got := strings.Join(r.log, "\n"); got != strings.Join(want, "\n") {
		t.Fatalf("publication/epoch interleaving diverged from the contract:\ngot:\n%s\nwant:\n%s",
			got, strings.Join(want, "\n"))
	}
}

// TestScalePublicationOrdering is the scale engine's sub-epoch
// publication contract: bootstrap Full strictly first, one delta per
// stagger sub-round plus the epoch-final drain, all strictly ordered,
// each delta's changed set sufficient to replay the overlay exactly —
// under live churn in both directions.
func TestScalePublicationOrdering(t *testing.T) {
	const n, epochs = 120, 4
	sched := emptySchedule(n)
	for v := 0; v < n; v += 9 {
		sched.Events = append(sched.Events, churn.Event{Time: 1 + float64(v)/float64(n), Node: v, On: false})
	}
	for v := 3; v < n; v += 11 {
		sched.Events = append(sched.Events, churn.Event{Time: 2 + float64(v)/float64(n), Node: v, On: true})
	}
	rec := newPubRecorder(t)
	res, err := RunScale(ScaleConfig{
		N: n, K: 3, Seed: 17, MaxEpochs: epochs,
		Sample:    sampling.Spec{Strategy: sampling.Demand, M: 25},
		Churn:     sched,
		OnEpoch:   rec.onEpoch,
		OnPublish: rec.onPublish,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec.checkLog(epochs - 1)
	if res.Joins == 0 || res.Leaves == 0 {
		t.Fatalf("schedule did not churn: joins=%d leaves=%d", res.Joins, res.Leaves)
	}
	if rec.nonEmpty == 0 {
		t.Fatal("every delta was empty — adoptions and churn never reached the changed sets")
	}
}

// TestScalePublicationDeterministic: the publication stream itself is
// part of the byte-identical-at-any-(Workers,Shards) contract.
func TestScalePublicationDeterministic(t *testing.T) {
	const n, epochs = 100, 3
	stream := func(workers, shards int) string {
		var b strings.Builder
		sched := emptySchedule(n)
		for v := 0; v < n; v += 8 {
			sched.Events = append(sched.Events, churn.Event{Time: 1 + float64(v)/float64(n), Node: v, On: false})
		}
		_, err := RunScale(ScaleConfig{
			N: n, K: 3, Seed: 23, MaxEpochs: epochs, Workers: workers, Shards: shards,
			Sample: sampling.Spec{Strategy: sampling.Uniform, M: 20},
			Churn:  sched,
			OnPublish: func(pub Publication) {
				fmt.Fprintf(&b, "%d %d %v %v\n", pub.Epoch, pub.SubRound, pub.Full, pub.Changed)
				for _, u := range pub.Changed {
					fmt.Fprintf(&b, "  %d: %v %v\n", u, pub.Active[u], pub.Wiring[u])
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	base := stream(1, 1)
	for _, ws := range [][2]int{{4, 1}, {1, 4}, {4, 4}} {
		if got := stream(ws[0], ws[1]); got != base {
			t.Fatalf("publication stream diverged at workers=%d shards=%d", ws[0], ws[1])
		}
	}
}

// TestFullEnginePublications: the diff-based tracker in the full engine
// honours the same contract — including under delayed repair, where
// wiring rows keep departed targets and rows must count as changed when
// a target's membership flips.
func TestFullEnginePublications(t *testing.T) {
	const n, warm, meas = 40, 2, 3
	const total = warm + meas
	sched := emptySchedule(n)
	for _, v := range []int{4, 9, 14} {
		sched.Events = append(sched.Events, churn.Event{Time: 1.3, Node: v, On: false})
	}
	for _, v := range []int{4, 9} {
		sched.Events = append(sched.Events, churn.Event{Time: 3.4, Node: v, On: true})
	}
	rec := newPubRecorder(t)
	res, err := Run(Config{
		N: n, K: 3, Seed: 11,
		Policy:     core.BRPolicy{},
		WarmEpochs: warm, MeasureEpochs: meas,
		Churn:     sched,
		OnEpoch:   rec.onEpoch,
		OnPublish: rec.onPublish,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	if rec.rounds != 16 {
		t.Fatalf("full engine rounds = %d, want min(16, N) = 16", rec.rounds)
	}
	rec.checkLog(total - 1)
	if rec.nonEmpty == 0 {
		t.Fatal("every full-engine delta was empty")
	}
}
