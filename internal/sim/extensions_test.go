package sim

import (
	"math"
	"testing"

	"egoist/internal/churn"
	"egoist/internal/core"
)

// heavyChurn builds an aggressive schedule for repair-mode comparisons.
func heavyChurn(t *testing.T, n int, horizon float64) *churn.Schedule {
	t.Helper()
	s, err := churn.GenerateSynthetic(churn.SyntheticConfig{
		N: n, Horizon: horizon,
		On:   churn.Exponential{Mean: 2},
		Off:  churn.Exponential{Mean: 0.7},
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestImmediateModeImprovesEfficiencyUnderChurn(t *testing.T) {
	base := Config{
		N: 24, K: 3, Seed: 5, Metric: DelayPing, Policy: core.BRPolicy{},
		WarmEpochs: 2, MeasureEpochs: 10,
		Churn: heavyChurn(t, 24, 12),
	}
	delayed := run(t, base)
	imm := base
	imm.Immediate = true
	immediate := run(t, imm)
	if immediate.Efficiency.Mean < delayed.Efficiency.Mean {
		t.Fatalf("immediate repair efficiency %.5f below delayed %.5f",
			immediate.Efficiency.Mean, delayed.Efficiency.Mean)
	}
}

func TestImmediateModeCostsMoreRewirings(t *testing.T) {
	base := Config{
		N: 24, K: 3, Seed: 5, Metric: DelayPing, Policy: core.BRPolicy{},
		WarmEpochs: 0, MeasureEpochs: 12,
		Churn: heavyChurn(t, 24, 12),
	}
	delayed := run(t, base)
	imm := base
	imm.Immediate = true
	immediate := run(t, imm)
	sum := func(per []int) int {
		total := 0
		for _, v := range per {
			total += v
		}
		return total
	}
	if sum(immediate.Rewires.PerEpoch()) < sum(delayed.Rewires.PerEpoch()) {
		t.Fatalf("immediate mode should re-wire at least as much: %d vs %d",
			sum(immediate.Rewires.PerEpoch()), sum(delayed.Rewires.PerEpoch()))
	}
}

// skewPref concentrates preference on destination 0 (90%) and spreads the
// rest uniformly — the skew footnote 8 says BR can exploit.
func skewPref(n int) func(i, j int) float64 {
	return func(i, j int) float64 {
		if j == 0 {
			return 0.9 * float64(n-1)
		}
		return 0.1 * float64(n-1) / float64(n-2)
	}
}

func TestPreferenceAwareBRBeatsUniformBROnWeightedCost(t *testing.T) {
	n := 24
	pref := skewPref(n)
	// Preference-aware BR optimizes the skewed objective directly.
	aware := run(t, Config{
		N: n, K: 2, Seed: 6, Metric: DelayPing, Policy: core.BRPolicy{},
		WarmEpochs: 6, MeasureEpochs: 4, Pref: pref,
	})
	if aware.WeightedCost.N == 0 {
		t.Fatal("weighted cost not reported")
	}
	// A preference-blind policy measured under the same skewed workload.
	blind := run(t, Config{
		N: n, K: 2, Seed: 6, Metric: DelayPing, Policy: core.KClosest{},
		EnforceCycle: true,
		WarmEpochs:   6, MeasureEpochs: 4, Pref: pref,
	})
	if aware.WeightedCost.Mean >= blind.WeightedCost.Mean {
		t.Fatalf("preference-aware BR weighted cost %.0f not below preference-blind %.0f",
			aware.WeightedCost.Mean, blind.WeightedCost.Mean)
	}
}

func TestWeightedCostAbsentWithoutPref(t *testing.T) {
	res := run(t, baseCfg(core.BRPolicy{}))
	if res.WeightedCost.N != 0 {
		t.Fatalf("WeightedCost reported without Pref: %+v", res.WeightedCost)
	}
}

func TestPrefDeterminism(t *testing.T) {
	cfg := baseCfg(core.BRPolicy{})
	cfg.Pref = skewPref(cfg.N)
	a := run(t, cfg)
	b := run(t, cfg)
	if a.WeightedCost.Mean != b.WeightedCost.Mean || math.IsNaN(a.WeightedCost.Mean) {
		t.Fatalf("weighted cost not deterministic: %v vs %v", a.WeightedCost.Mean, b.WeightedCost.Mean)
	}
}
