package sim

import (
	"bytes"
	"strings"
	"testing"

	"egoist/internal/churn"
	"egoist/internal/sampling"
)

// This file is the shard layer's half of the equivalence suite (the
// worker half lives in equivalence_test.go): the shard count is a
// physical layout knob and must never reach the output bytes, a
// drained shard is a valid shard, and the id-band plan itself holds
// its invariants for any (n, s).

// TestScaleResultJSONByteIdenticalAcrossShards pins the PR-7
// acceptance criterion on the engine output itself: the marshaled
// ScaleResult of a churn-heavy run is byte-identical across shards
// {1, 2, 4} × workers {1, 4}. The shards=1/workers=1 leg doubles as
// the pre-shard reference (its digest is pinned by golden_test.go).
func TestScaleResultJSONByteIdenticalAcrossShards(t *testing.T) {
	ref, err := RunScale(churnHeavyConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Joins == 0 || ref.Leaves == 0 {
		t.Fatalf("run exercised no churn: joins=%d leaves=%d", ref.Joins, ref.Leaves)
	}
	refJSON := resultJSON(t, ref)
	for _, shards := range []int{1, 2, 4} {
		for _, workers := range []int{1, 4} {
			if shards == 1 && workers == 1 {
				continue
			}
			cfg := churnHeavyConfig(workers)
			cfg.Shards = shards
			got, err := RunScale(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if gotJSON := resultJSON(t, got); !bytes.Equal(refJSON, gotJSON) {
				t.Fatalf("shards=1/workers=1 vs shards=%d/workers=%d ScaleResult JSON diverged", shards, workers)
			}
		}
	}
}

// TestScaleShardValidation pins the config surface: non-positive shard
// counts normalize to 1, a shard count above N is an error (bands
// would be empty of ids entirely), and N shards — one node per band —
// is the legal maximum.
func TestScaleShardValidation(t *testing.T) {
	base := ScaleConfig{
		N: 20, K: 2, Seed: 7,
		Sample:    sampling.Spec{Strategy: sampling.Uniform, M: 8},
		MaxEpochs: 2, Workers: 2,
	}
	for _, shards := range []int{0, -3, 1, 5, 20} {
		cfg := base
		cfg.Shards = shards
		if _, err := RunScale(cfg); err != nil {
			t.Fatalf("Shards=%d: unexpected error %v", shards, err)
		}
	}
	cfg := base
	cfg.Shards = 21
	if _, err := RunScale(cfg); err == nil || !strings.Contains(err.Error(), "Shards") {
		t.Fatalf("Shards=21 > N=20: want validation error, got %v", err)
	}
}

// TestScaleShardDrainedBand routes a leave wave at one whole id band —
// shard 0 of 4 empties completely mid-run, then partially refills —
// and requires the run to survive with the same bytes at any shard
// count: churn events target the owning shard, and a drained shard
// keeps participating in rebuilds and repairs with zero rows.
func TestScaleShardDrainedBand(t *testing.T) {
	mk := func(shards, workers int) ScaleConfig {
		const n = 160 // shard 0 of 4 owns [0, 40)
		sched := emptySchedule(n)
		for v := 0; v < 40; v++ {
			sched.Events = append(sched.Events, churn.Event{Time: 1 + float64(v)/128, Node: v, On: false})
		}
		for v := 0; v < 40; v += 4 { // rejoins into the drained band
			sched.Events = append(sched.Events, churn.Event{Time: 2.5 + float64(v)/256, Node: v, On: true})
		}
		return ScaleConfig{
			N: n, K: 3, Seed: 83, MaxEpochs: 4, Workers: workers, Shards: shards,
			Sample:         sampling.Spec{Strategy: sampling.Uniform, M: 24},
			StaggerBatches: 16,
			ConvergedFrac:  -1,
			Churn:          sched,
		}
	}
	ref, err := RunScale(mk(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Leaves != 40 || ref.Joins != 10 {
		t.Fatalf("drain schedule did not play out: joins=%d leaves=%d", ref.Joins, ref.Leaves)
	}
	refJSON := resultJSON(t, ref)
	for _, shards := range []int{4, 8} {
		got, err := RunScale(mk(shards, 3))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(refJSON, resultJSON(t, got)) {
			t.Fatalf("drained-band run diverged at shards=%d", shards)
		}
	}
}

// TestShardPlanCut checks the id-band partition invariants directly:
// bands tile [0, n) contiguously, owner agrees with the bounds, and
// cut reassembles any sorted id subset without loss, duplication or
// cross-band leakage — including empty bands when s does not divide n
// evenly or the subset skips a band.
func TestShardPlanCut(t *testing.T) {
	for _, tc := range []struct{ n, s int }{
		{10, 1}, {10, 3}, {10, 10}, {160, 4}, {7, 5}, {100, 7},
	} {
		p := newShardPlan(tc.n, tc.s)
		if p.bounds[0] != 0 || p.bounds[tc.s] != tc.n {
			t.Fatalf("n=%d s=%d: bounds %v do not tile [0,n)", tc.n, tc.s, p.bounds)
		}
		for v := 0; v < tc.n; v++ {
			sh := int(p.owner[v])
			if v < p.bounds[sh] || v >= p.bounds[sh+1] {
				t.Fatalf("n=%d s=%d: owner[%d]=%d outside its band", tc.n, tc.s, v, sh)
			}
		}
		// A subset that skips every third id, leaving some bands sparse
		// or empty.
		var ids []int
		for v := 0; v < tc.n; v++ {
			if v%3 != 0 {
				ids = append(ids, v)
			}
		}
		parts := p.cut(ids, nil)
		if len(parts) != tc.s {
			t.Fatalf("n=%d s=%d: cut returned %d parts", tc.n, tc.s, len(parts))
		}
		var rejoined []int
		for sh, part := range parts {
			for _, v := range part {
				if int(p.owner[v]) != sh {
					t.Fatalf("n=%d s=%d: id %d landed in part %d, owner %d", tc.n, tc.s, v, sh, p.owner[v])
				}
				rejoined = append(rejoined, v)
			}
		}
		if len(rejoined) != len(ids) {
			t.Fatalf("n=%d s=%d: cut lost ids: %d != %d", tc.n, tc.s, len(rejoined), len(ids))
		}
		for x := range rejoined {
			if rejoined[x] != ids[x] {
				t.Fatalf("n=%d s=%d: cut reordered ids", tc.n, tc.s)
			}
		}
	}
}

// TestScaleShardRaceStress is the -race half for the shard seam: many
// shards × several workers over the churn-heavy run, so concurrent
// shard pools price proposals against their replicas while the serial
// sections between sub-rounds fan repairs across all instances.
func TestScaleShardRaceStress(t *testing.T) {
	cfg := churnHeavyConfig(4)
	cfg.Shards = 8
	cfg.MaxEpochs = 4
	res, err := RunScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DirectoryApplies == 0 {
		t.Fatal("stress run never repaired the directory incrementally")
	}
}
