package sim

import (
	"fmt"
	"math/rand"

	"egoist/internal/core"
	"egoist/internal/graph"
	"egoist/internal/sampling"
	"egoist/internal/topology"
)

// GrowPolicy names the strategy used to grow the base overlay of the
// sampling experiments (Sect. 5): the incremental construction where node
// i joins the overlay formed by nodes 0..i-1.
type GrowPolicy int

const (
	// GrowBR grows the base graph with full best responses (no sampling).
	GrowBR GrowPolicy = iota
	// GrowKRandom grows with k-Random joins.
	GrowKRandom
	// GrowKRegular grows with k-Regular joins computed over the final ring.
	GrowKRegular
	// GrowKClosest grows with k-Closest joins.
	GrowKClosest
)

// String names the grow policy.
func (g GrowPolicy) String() string {
	switch g {
	case GrowBR:
		return "BR"
	case GrowKRandom:
		return "k-Random"
	case GrowKRegular:
		return "k-Regular"
	case GrowKClosest:
		return "k-Closest"
	default:
		return fmt.Sprintf("GrowPolicy(%d)", int(g))
	}
}

// NewcomerStrategy names the wiring strategy of the joining node in the
// sampling experiments. All strategies operate on a size-m sample except
// BRtp, which draws its sample with topology bias.
type NewcomerStrategy int

const (
	// NewcomerKRandom wires to k random members of a random sample.
	NewcomerKRandom NewcomerStrategy = iota
	// NewcomerKRegular wires with the offset rule over a random sample.
	NewcomerKRegular
	// NewcomerKClosest wires to the k closest members of a random sample.
	NewcomerKClosest
	// NewcomerBR computes BR over a random sample.
	NewcomerBR
	// NewcomerBRtp computes BR over a topology-biased sample.
	NewcomerBRtp
	// NewcomerBRFull computes BR over the full residual graph (the
	// normalization baseline of Figs. 5–8).
	NewcomerBRFull
)

// String names the strategy as the figures label it.
func (s NewcomerStrategy) String() string {
	switch s {
	case NewcomerKRandom:
		return "k-Random"
	case NewcomerKRegular:
		return "k-Regular"
	case NewcomerKClosest:
		return "k-Closest"
	case NewcomerBR:
		return "BR"
	case NewcomerBRtp:
		return "BRtp"
	case NewcomerBRFull:
		return "BR-no-sampling"
	default:
		return fmt.Sprintf("NewcomerStrategy(%d)", int(s))
	}
}

// NewcomerConfig parameterizes one sampling experiment.
type NewcomerConfig struct {
	// Delays is the static all-pairs delay matrix (the n=295 PlanetLab
	// trace or a synthetic stand-in). The newcomer is node Delays.N()-1;
	// the base graph is grown over nodes 0..N-2.
	Delays topology.DelayMatrix
	// K is the degree budget (paper: 3).
	K int
	// Grow selects the base-graph construction.
	Grow GrowPolicy
	// SampleSize is m; SamplePrime is m' (default 2m); Radius is r
	// (default 2).
	SampleSize, SamplePrime, Radius int
	// Seed drives sampling and random wiring.
	Seed int64
	// Base, when non-nil, supplies a pre-grown base graph (from GrowBase)
	// so sweeps over sample sizes need not re-grow it. It must have been
	// grown over the same Delays, K and Grow policy.
	Base *graph.Digraph
}

// GrowBase builds (and settles) the base overlay graph for the sampling
// experiments, for reuse across RunNewcomer calls via NewcomerConfig.Base.
func GrowBase(cfg NewcomerConfig) (*graph.Digraph, error) {
	return growBase(cfg, rand.New(rand.NewSource(cfg.Seed)))
}

// NewcomerResult reports the newcomer's achieved cost per strategy.
type NewcomerResult struct {
	// Cost[strategy] is the newcomer's uniform-preference routing cost.
	Cost map[NewcomerStrategy]float64
	// Ratio[strategy] is Cost[strategy] / Cost[NewcomerBRFull].
	Ratio map[NewcomerStrategy]float64
}

// RunNewcomer grows the base overlay, then wires the newcomer with every
// strategy and reports the cost each one achieves (Figs. 5–8).
func RunNewcomer(cfg NewcomerConfig) (*NewcomerResult, error) {
	n := cfg.Delays.N()
	if n < 4 {
		return nil, fmt.Errorf("sim: need >= 4 nodes, got %d", n)
	}
	if cfg.K < 1 || cfg.K >= n-1 {
		return nil, fmt.Errorf("sim: bad k %d", cfg.K)
	}
	if cfg.SampleSize < cfg.K {
		return nil, fmt.Errorf("sim: sample size %d below k %d", cfg.SampleSize, cfg.K)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	base := cfg.Base
	if base == nil {
		var err error
		base, err = growBase(cfg, rng)
		if err != nil {
			return nil, err
		}
	}
	newcomer := n - 1
	direct := make([]float64, n)
	for j := 0; j < n; j++ {
		if j != newcomer {
			direct[j] = cfg.Delays[newcomer][j]
		}
	}
	var cands []int
	for j := 0; j < n-1; j++ {
		cands = append(cands, j)
	}

	resid := core.BuildResid(base, newcomer, core.Additive, nil)
	// brInst builds the scaled-input instance of Sect. 5: when a sample is
	// in play, both the candidate set and the objective's destination pairs
	// are limited to the sample.
	brInst := func(sample []int) *core.Instance {
		return &core.Instance{
			Self: newcomer, Kind: core.Additive, Direct: direct, Resid: resid,
			Candidates: sample, Dests: sample,
		}
	}

	res := &NewcomerResult{Cost: map[NewcomerStrategy]float64{}, Ratio: map[NewcomerStrategy]float64{}}
	// Evaluation is always over the full destination set, regardless of
	// what the newcomer sampled while deciding.
	evalInst := &core.Instance{Self: newcomer, Kind: core.Additive, Direct: direct, Resid: resid}

	wire := func(s NewcomerStrategy) ([]int, error) {
		switch s {
		case NewcomerBRFull:
			full := brInst(nil)
			chosen, _, err := core.BestResponse(full, cfg.K, core.BROptions{})
			return chosen, err
		case NewcomerBR:
			sample := sampling.Random(rng, cands, cfg.SampleSize)
			chosen, _, err := core.BestResponse(brInst(sample), cfg.K, core.BROptions{})
			return chosen, err
		case NewcomerBRtp:
			sample, err := sampling.Biased(rng, base.WithoutNode(newcomer), cands, direct, sampling.BiasedConfig{
				M: cfg.SampleSize, MPrime: cfg.SamplePrime, Radius: cfg.Radius,
			})
			if err != nil {
				return nil, err
			}
			chosen, _, err := core.BestResponse(brInst(sample), cfg.K, core.BROptions{})
			return chosen, err
		case NewcomerKRandom:
			sample := sampling.Random(rng, cands, cfg.SampleSize)
			return sampling.Random(rng, sample, cfg.K), nil
		case NewcomerKClosest:
			sample := sampling.Random(rng, cands, cfg.SampleSize)
			req := &core.Request{Self: newcomer, K: cfg.K, Kind: core.Additive, Direct: direct, Graph: base, Sample: sample}
			return core.KClosest{}.Select(req)
		case NewcomerKRegular:
			sample := sampling.Random(rng, cands, cfg.SampleSize)
			// Offset rule over the sampled ring: pick evenly spaced members.
			var out []int
			k := cfg.K
			for j := 0; j < k && j*len(sample)/k < len(sample); j++ {
				out = append(out, sample[j*len(sample)/k])
			}
			return out, nil
		default:
			return nil, fmt.Errorf("sim: unknown strategy %d", s)
		}
	}

	for _, s := range []NewcomerStrategy{
		NewcomerBRFull, NewcomerBR, NewcomerBRtp,
		NewcomerKRandom, NewcomerKClosest, NewcomerKRegular,
	} {
		chosen, err := wire(s)
		if err != nil {
			return nil, fmt.Errorf("sim: strategy %v: %w", s, err)
		}
		res.Cost[s] = evalInst.Eval(chosen) / float64(n-1)
	}
	baseCost := res.Cost[NewcomerBRFull]
	for s, c := range res.Cost {
		res.Ratio[s] = c / baseCost
	}
	return res, nil
}

// growBase grows the overlay of nodes 0..n-2 incrementally with the
// configured policy, using true delays as direct costs (the static-trace
// setting of Sect. 5). After the incremental joins, every node re-wires
// with its policy over the full membership for a few rounds: a node that
// joined early chose among the handful of nodes present at the time, and
// without these rounds the base graph keeps degenerate early wirings no
// deployed system (which re-wires every epoch) would retain. For BR this
// is the best-response dynamics converging toward the SNS equilibria of
// the underlying game.
func growBase(cfg NewcomerConfig, rng *rand.Rand) (*graph.Digraph, error) {
	n := cfg.Delays.N() - 1 // newcomer excluded
	g := graph.New(cfg.Delays.N())
	for v := 0; v < n; v++ {
		var chosen []int
		switch cfg.Grow {
		case GrowBR:
			if v == 0 {
				break
			}
			direct := directRow(cfg.Delays, v)
			inst := &core.Instance{
				Self:       v,
				Kind:       core.Additive,
				Direct:     direct,
				Resid:      core.BuildResid(g, v, core.Additive, aliveUpTo(cfg.Delays.N(), v)),
				Candidates: seq(0, v),
				Dests:      seq(0, v),
			}
			var err error
			chosen, _, err = core.BestResponse(inst, min(cfg.K, v), core.BROptions{})
			if err != nil {
				return nil, err
			}
		case GrowKRandom:
			chosen = sampling.Random(rng, seq(0, v), min(cfg.K, v))
		case GrowKClosest:
			direct := directRow(cfg.Delays, v)
			req := &core.Request{Self: v, K: min(cfg.K, v), Kind: core.Additive, Direct: direct, Graph: g, Sample: seq(0, v)}
			var err error
			chosen, err = (core.KClosest{}).Select(req)
			if err != nil {
				return nil, err
			}
		case GrowKRegular:
			// Offsets over the final ring of n nodes; forward links to
			// not-yet-joined nodes are fine for this static construction.
			for j := 1; j <= cfg.K; j++ {
				offset := 1 + (j-1)*(n-1)/(cfg.K+1)
				chosen = append(chosen, (v+offset)%n)
			}
			chosen = dedupeExcluding(chosen, v)
		default:
			return nil, fmt.Errorf("sim: unknown grow policy %d", cfg.Grow)
		}
		for _, w := range chosen {
			g.AddArc(v, w, cfg.Delays[v][w])
		}
	}
	if err := settleBase(cfg, g, rng); err != nil {
		return nil, err
	}
	// The paper's growth processes keep the graph connected (BR reconnects
	// via the disconnection penalty); enforce a cycle for the heuristics.
	wirings := make([][]int, cfg.Delays.N())
	for v := 0; v < n; v++ {
		wirings[v] = g.Neighbors(v)
	}
	active := aliveUpTo(cfg.Delays.N(), n)
	if core.EnforceCycle(wirings, core.Additive, active, func(i, j int) float64 { return cfg.Delays[i][j] }) {
		g = graph.New(cfg.Delays.N())
		for v := 0; v < n; v++ {
			for _, w := range wirings[v] {
				g.AddArc(v, w, cfg.Delays[v][w])
			}
		}
	}
	return g, nil
}

// settleBase runs full-membership re-wiring rounds over the grown base
// graph (newcomer excluded): two best-response rounds for GrowBR, one
// re-selection round for the heuristics.
func settleBase(cfg NewcomerConfig, g *graph.Digraph, rng *rand.Rand) error {
	n := cfg.Delays.N() - 1
	active := aliveUpTo(cfg.Delays.N(), n)
	rounds := 1
	if cfg.Grow == GrowBR {
		rounds = 2
	}
	for round := 0; round < rounds; round++ {
		for v := 0; v < n; v++ {
			direct := directRow(cfg.Delays, v)
			var chosen []int
			var err error
			switch cfg.Grow {
			case GrowBR:
				inst := &core.Instance{
					Self:       v,
					Kind:       core.Additive,
					Direct:     direct,
					Resid:      core.BuildResid(g, v, core.Additive, active),
					Candidates: seqExcept(0, n, v),
					Dests:      seqExcept(0, n, v),
				}
				chosen, _, err = core.BestResponse(inst, cfg.K, core.BROptions{})
			case GrowKRandom:
				chosen = sampling.Random(rng, seqExcept(0, n, v), cfg.K)
			case GrowKClosest:
				req := &core.Request{Self: v, K: cfg.K, Kind: core.Additive, Direct: direct, Graph: g, Sample: seqExcept(0, n, v)}
				chosen, err = (core.KClosest{}).Select(req)
			case GrowKRegular:
				// Already wired over the final ring; nothing to settle.
				continue
			}
			if err != nil {
				return err
			}
			g.ClearOut(v)
			for _, w := range chosen {
				g.AddArc(v, w, cfg.Delays[v][w])
			}
		}
		if cfg.Grow == GrowKRegular {
			break
		}
	}
	return nil
}

func seqExcept(lo, hi, skip int) []int {
	var out []int
	for v := lo; v < hi; v++ {
		if v != skip {
			out = append(out, v)
		}
	}
	return out
}

func directRow(m topology.DelayMatrix, v int) []float64 {
	out := make([]float64, m.N())
	for j := range out {
		if j != v {
			out[j] = m[v][j]
		}
	}
	return out
}

func seq(lo, hi int) []int {
	var out []int
	for v := lo; v < hi; v++ {
		out = append(out, v)
	}
	return out
}

func aliveUpTo(n, hi int) []bool {
	out := make([]bool, n)
	for v := 0; v < hi && v < n; v++ {
		out[v] = true
	}
	return out
}

func dedupeExcluding(xs []int, self int) []int {
	seen := map[int]bool{self: true}
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
