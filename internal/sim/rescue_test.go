package sim

import (
	"math"
	"reflect"
	"testing"

	"egoist/internal/churn"
	"egoist/internal/core"
)

// TestFullEngineRescueWithinOneEpoch is the full simulator's half of
// the rescue-path property: after a node's neighbors all depart, every
// alive node — the orphan included — holds a non-empty, all-alive
// wiring within one full epoch. The victim set comes from an identical
// churn-free run (adding an event-only schedule does not perturb the
// prefix), so the kill provably targets the node's live links.
func TestFullEngineRescueWithinOneEpoch(t *testing.T) {
	const n, k, warm, meas = 40, 3, 3, 3
	const total = warm + meas
	for _, seed := range []int64{4, 5, 6} {
		base := Config{
			N: n, K: k, Seed: seed,
			Policy:     core.BRPolicy{},
			WarmEpochs: warm, MeasureEpochs: meas,
		}
		pre, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}
		const x = 7
		victims := append([]int(nil), pre.FinalWiring[x]...)
		if len(victims) == 0 {
			t.Fatalf("seed %d: node %d has no wiring to kill", seed, x)
		}
		sched := &churn.Schedule{N: n, InitialOn: make([]bool, n)}
		for i := range sched.InitialOn {
			sched.InitialOn[i] = true
		}
		for _, v := range victims {
			sched.Events = append(sched.Events, churn.Event{Time: total, Node: v, On: false})
		}
		run := base
		run.MeasureEpochs = meas + 2 // the event epoch plus one full epoch after it
		run.Churn = sched
		res, err := Run(run)
		if err != nil {
			t.Fatal(err)
		}
		dead := map[int]bool{}
		for _, v := range victims {
			dead[v] = true
		}
		if len(res.FinalWiring[x]) == 0 {
			t.Fatalf("seed %d: orphaned node %d never re-wired", seed, x)
		}
		for i, w := range res.FinalWiring {
			if dead[i] {
				continue
			}
			if len(w) == 0 {
				t.Fatalf("seed %d: alive node %d ended unwired", seed, i)
			}
			for _, v := range w {
				if dead[v] {
					t.Fatalf("seed %d: node %d still wired to departed node %d", seed, i, v)
				}
			}
		}
	}
}

// TestPrefAtMatchesStaticPref checks the per-epoch preference override
// degenerates to Pref when it always returns the same function.
func TestPrefAtMatchesStaticPref(t *testing.T) {
	pref := func(i, j int) float64 { return 1 + float64((i*3+j)%4) }
	base := Config{
		N: 25, K: 3, Seed: 11,
		Policy:     core.BRPolicy{},
		WarmEpochs: 2, MeasureEpochs: 4,
	}
	a := base
	a.Pref = pref
	b := base
	b.PrefAt = func(epoch int) func(i, j int) float64 { return pref }
	ra, err := Run(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ra, rb) {
		t.Fatal("PrefAt(const) diverged from Pref")
	}
	if len(ra.PerEpochCost) != 4 {
		t.Fatalf("PerEpochCost has %d entries, want 4", len(ra.PerEpochCost))
	}
	for e, c := range ra.PerEpochCost {
		if math.IsNaN(c) || c <= 0 {
			t.Fatalf("PerEpochCost[%d] = %v", e, c)
		}
	}
}

// TestPrefAtShiftChangesDynamics checks a demand flip actually reaches
// the policies: flipping the hotspot set mid-run must produce a
// different final wiring than the unflipped run.
func TestPrefAtShiftChangesDynamics(t *testing.T) {
	hotA := func(i, j int) float64 {
		if j < 5 {
			return 10
		}
		return 1
	}
	hotB := func(i, j int) float64 {
		if j >= 20 {
			return 10
		}
		return 1
	}
	base := Config{
		N: 25, K: 3, Seed: 3,
		Policy:     core.BRPolicy{},
		WarmEpochs: 0, MeasureEpochs: 8,
	}
	flat := base
	flat.PrefAt = func(epoch int) func(i, j int) float64 { return hotA }
	shift := base
	shift.PrefAt = func(epoch int) func(i, j int) float64 {
		if epoch >= 4 {
			return hotB
		}
		return hotA
	}
	rf, err := Run(flat)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(shift)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(rf.FinalWiring, rs.FinalWiring) {
		t.Fatal("demand flip left the final wiring untouched")
	}
}
