package scenario

import "testing"

func TestBuiltinNamesRoundTrip(t *testing.T) {
	names := BuiltinNames()
	if len(names) == 0 {
		t.Fatal("no built-in scenarios")
	}
	for _, name := range names {
		s, ok := Builtin(name)
		if !ok {
			t.Fatalf("BuiltinNames lists %q but Builtin cannot find it", name)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("built-in %q does not validate: %v", name, err)
		}
	}
	if _, ok := Builtin("no-such-scenario"); ok {
		t.Fatal("Builtin found a scenario that does not exist")
	}
}

func TestEngineList(t *testing.T) {
	got, err := EngineList("")
	if err != nil || len(got) != 1 || got[0] != EngineScale {
		t.Fatalf("EngineList(\"\") = %v, %v", got, err)
	}
	got, err = EngineList(" scale , full ")
	if err != nil || len(got) != 2 || got[0] != EngineScale || got[1] != EngineFull {
		t.Fatalf("EngineList(\" scale , full \") = %v, %v", got, err)
	}
	if _, err := EngineList("scale,warp"); err == nil {
		t.Fatal("EngineList accepted an unknown engine")
	}
}
