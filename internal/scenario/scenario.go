// Package scenario is the declarative workload harness: one spec
// describes an overlay (size, degree budget, policy or sampling
// strategy), a demand model, a background churn process and an event
// timeline — flash-crowd join waves, churn storms, regional
// outage/heal, demand flips — and the runner executes it on either
// simulation engine (the O(n²) full simulator or the sampled scale
// engine), emitting one deterministic metrics record per run. Specs
// round-trip through JSON, so the same file drives Go tests, the CLI
// tools and the CI scenario matrix.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"egoist/internal/sampling"
)

// Engine names the simulation engine a spec runs on.
const (
	// EngineScale is the sampled large-scale engine (sim.RunScale).
	EngineScale = "scale"
	// EngineFull is the O(n²) full simulator (sim.Run).
	EngineFull = "full"
)

// Event kinds of the scenario timeline.
const (
	// JoinWave turns a fraction of the currently-off nodes on — a flash
	// crowd.
	JoinWave = "join_wave"
	// LeaveWave turns a fraction of the currently-alive nodes off — a
	// correlated failure or mass departure.
	LeaveWave = "leave_wave"
	// Outage turns every alive node of one region off.
	Outage = "outage"
	// Heal turns every off node of one region back on.
	Heal = "heal"
	// DemandFlip rotates the demand model's weight structure (hotspot
	// set shift, gravity transpose) without touching membership.
	DemandFlip = "demand_flip"
)

// Spec is one declarative scenario.
type Spec struct {
	// Name identifies the scenario in metrics records and artifacts.
	Name string `json:"name"`
	// Engine selects the default engine: "scale" (default) or "full".
	// The runner may override it to run one spec on both engines.
	Engine string `json:"engine,omitempty"`
	// N is the overlay size, K the per-node degree budget.
	N int `json:"n"`
	K int `json:"k"`
	// Seed drives all randomness (engine dynamics, churn process, wave
	// selection). Identical specs produce byte-identical metric records
	// at any worker count.
	Seed int64 `json:"seed"`
	// Epochs bounds the run; event epochs must fall inside [0, Epochs).
	Epochs int `json:"epochs"`
	// Policy is the full engine's neighbor selection: "BR" (default),
	// "HybridBR", "k-Random", "k-Closest" or "k-Regular". Ignored by
	// the scale engine, which always plays sampled best response.
	Policy string `json:"policy,omitempty"`
	// Epsilon is the BR(ε) threshold (engine default when 0).
	Epsilon float64 `json:"epsilon,omitempty"`
	// Sample is the scale engine's sampling spec "strategy:m"
	// (default "demand:max(k+2, min(n/20, 500))"). Ignored by the full
	// engine.
	Sample string `json:"sample,omitempty"`
	// Shards partitions the scale engine's facility directory and
	// proposal phase into contiguous id bands (0 = 1). A physical
	// layout knob only: metrics records are byte-identical at any
	// value, so it never appears in Metrics. Ignored by the full
	// engine.
	Shards int `json:"shards,omitempty"`
	// Stagger overrides the scale engine's sub-round count per epoch
	// (StaggerBatches; 0 keeps the engine default max(16, n/32)).
	// Unlike Shards this is a dynamics knob — it changes when nodes
	// act and how often sub-round publications fire — so it is part of
	// the scenario, not the run options. Ignored by the full engine.
	Stagger int `json:"stagger,omitempty"`
	// Demand selects the preference weights p_ij (nil = uniform).
	Demand *DemandModel `json:"demand,omitempty"`
	// Churn is the background membership process (nil = static).
	Churn *ChurnProcess `json:"churn,omitempty"`
	// Events is the scenario timeline, in epoch order.
	Events []Event `json:"events,omitempty"`
	// Serve, when non-nil, hammers the routing data plane while the
	// scenario plays: every epoch publishes a plane.Snapshot and a
	// deterministic query panel measures lookup availability and
	// stretch against the previous epoch's published snapshot (the
	// freshness a live client actually sees during a re-wiring epoch).
	// Requires the scale engine, so specs with Serve must pin
	// engine="scale".
	Serve *ServeSpec `json:"serve,omitempty"`
	// Expect, when non-nil, turns the run into a gate: the runner
	// errors if the expectations are violated.
	Expect *Expect `json:"expect,omitempty"`
}

// Publish modes of the serve panel.
const (
	// PublishEpoch publishes one full snapshot per epoch (the default):
	// every query of epoch e is answered from the snapshot compiled at
	// the end of epoch e-1 — up to a whole epoch of staleness.
	PublishEpoch = "epoch"
	// PublishSubround publishes at stagger sub-round granularity: the
	// bootstrap compiles one full snapshot, then every sub-round's
	// changed rows are delta-patched onto the previous snapshot
	// (plane.Snapshot.Patch) and republished, so staleness shrinks to
	// one sub-round. The query panel is spread across the epoch's
	// sub-round windows accordingly.
	PublishSubround = "subround"
)

// ServeSpec enables serve-under-churn measurement.
type ServeSpec struct {
	// QueriesPerEpoch is the per-epoch size of the query panel: src/dst
	// pairs drawn uniformly from the currently-alive roster and
	// answered from the last published snapshot.
	QueriesPerEpoch int `json:"queries_per_epoch"`
	// Publish is the publication cadence: PublishEpoch (default) or
	// PublishSubround.
	Publish string `json:"publish,omitempty"`
}

// DemandModel selects the preference weights p_ij.
type DemandModel struct {
	// Kind is "uniform", "gravity" (deterministic pairwise skew) or
	// "hotspot" (a small set of nodes attracts Weight× demand).
	Kind string `json:"kind"`
	// Hotspots is the hotspot count (default n/20, min 1).
	Hotspots int `json:"hotspots,omitempty"`
	// Weight is the hotspot multiplier (default 10).
	Weight float64 `json:"weight,omitempty"`
}

// ChurnProcess is the background membership process, compiled to a
// churn.Schedule.
type ChurnProcess struct {
	// Process is "exp" (memoryless sessions), "pareto" (heavy-tailed
	// sessions) or "static" (initial membership only, no background
	// events — the substrate for pure event timelines).
	Process string `json:"process"`
	// OnMean and OffMean are the mean session and gap durations in
	// epochs (ignored by "static").
	OnMean  float64 `json:"on_mean,omitempty"`
	OffMean float64 `json:"off_mean,omitempty"`
	// Alpha is the Pareto shape (default 1.5).
	Alpha float64 `json:"alpha,omitempty"`
	// StartOn is the probability a node starts alive (default 0.9).
	StartOn float64 `json:"start_on,omitempty"`
	// Timescale rescales event times (< 1 compresses: more churn per
	// epoch), sweeping intensity the way the paper rescales its traces.
	Timescale float64 `json:"timescale,omitempty"`
}

// Event is one timeline entry.
type Event struct {
	// Epoch is when the event fires, in epoch units (fractions land
	// between the scale engine's stagger sub-rounds).
	Epoch float64 `json:"epoch"`
	// Kind is one of JoinWave, LeaveWave, Outage, Heal, DemandFlip.
	Kind string `json:"kind"`
	// Frac sizes the waves: JoinWave turns on Frac·N of the off nodes,
	// LeaveWave turns off Frac·alive nodes.
	Frac float64 `json:"frac,omitempty"`
	// Region and Regions address Outage/Heal: region r of R is the id
	// band [r·N/R, (r+1)·N/R). Regions defaults to 4.
	Region  int `json:"region,omitempty"`
	Regions int `json:"regions,omitempty"`
}

// Expect gates a run on its metrics.
type Expect struct {
	// MustConverge fails the run if the dynamics never settle.
	MustConverge bool `json:"must_converge,omitempty"`
	// MaxRecoveryEpochs fails the run if the cost has not returned to
	// within RecoverWithin of its pre-event value this many epochs
	// after the last event (0 = unchecked).
	MaxRecoveryEpochs int `json:"max_recovery_epochs,omitempty"`
	// RecoverWithin is the recovery tolerance (default 0.05).
	RecoverWithin float64 `json:"recover_within,omitempty"`
	// MinAvailability fails the run if any epoch's data-plane lookup
	// availability fell below it (0 = unchecked; requires Serve). The
	// zero-failed-lookups invariant — every query answered from some
	// published snapshot — is not an expectation but a harness
	// contract: the runner always errors when it is violated.
	MinAvailability float64 `json:"min_availability,omitempty"`
}

// Validate checks the spec is well-formed.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec needs a name")
	}
	switch s.Engine {
	case "", EngineScale, EngineFull:
	default:
		return fmt.Errorf("scenario %s: unknown engine %q", s.Name, s.Engine)
	}
	if s.N < 4 {
		return fmt.Errorf("scenario %s: n = %d, need >= 4", s.Name, s.N)
	}
	if s.K < 1 || s.K >= s.N {
		return fmt.Errorf("scenario %s: k = %d, need 1 <= k < n", s.Name, s.K)
	}
	if s.Epochs < 1 {
		return fmt.Errorf("scenario %s: epochs = %d, need >= 1", s.Name, s.Epochs)
	}
	switch s.Policy {
	case "", "BR", "HybridBR", "k-Random", "k-Closest", "k-Regular":
	default:
		return fmt.Errorf("scenario %s: unknown policy %q", s.Name, s.Policy)
	}
	if s.Sample != "" {
		if _, err := sampling.ParseSpec(s.Sample); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	if s.Shards < 0 || s.Shards > s.N {
		return fmt.Errorf("scenario %s: shards = %d outside [0, n=%d]", s.Name, s.Shards, s.N)
	}
	if s.Stagger < 0 || s.Stagger > s.N {
		return fmt.Errorf("scenario %s: stagger = %d outside [0, n=%d]", s.Name, s.Stagger, s.N)
	}
	if s.Demand != nil {
		switch s.Demand.Kind {
		case "uniform", "gravity", "hotspot":
		default:
			return fmt.Errorf("scenario %s: unknown demand kind %q", s.Name, s.Demand.Kind)
		}
	}
	if s.Churn != nil {
		switch s.Churn.Process {
		case "exp", "pareto", "static":
		default:
			return fmt.Errorf("scenario %s: unknown churn process %q", s.Name, s.Churn.Process)
		}
		if s.Churn.Process != "static" && (s.Churn.OnMean <= 0 || s.Churn.OffMean <= 0) {
			return fmt.Errorf("scenario %s: churn process %q needs positive on/off means", s.Name, s.Churn.Process)
		}
	}
	if s.Serve != nil {
		if s.Serve.QueriesPerEpoch < 1 {
			return fmt.Errorf("scenario %s: serve needs queries_per_epoch >= 1", s.Name)
		}
		if s.Engine != EngineScale {
			return fmt.Errorf("scenario %s: serve requires engine %q pinned (the full engine has no static delay oracle to price stretch against)", s.Name, EngineScale)
		}
		switch s.Serve.Publish {
		case "", PublishEpoch, PublishSubround:
		default:
			return fmt.Errorf("scenario %s: unknown serve publish mode %q (want %q or %q)",
				s.Name, s.Serve.Publish, PublishEpoch, PublishSubround)
		}
	}
	if s.Expect != nil && s.Expect.MinAvailability > 0 {
		if s.Expect.MinAvailability > 1 {
			return fmt.Errorf("scenario %s: min_availability %v outside (0, 1]", s.Name, s.Expect.MinAvailability)
		}
		if s.Serve == nil {
			return fmt.Errorf("scenario %s: min_availability expects serve to be enabled", s.Name)
		}
	}
	last := -1.0
	for i, e := range s.Events {
		if e.Epoch < 0 || e.Epoch >= float64(s.Epochs) {
			return fmt.Errorf("scenario %s: event %d at epoch %v outside [0, %d)", s.Name, i, e.Epoch, s.Epochs)
		}
		if e.Epoch < last {
			return fmt.Errorf("scenario %s: event %d out of order", s.Name, i)
		}
		last = e.Epoch
		switch e.Kind {
		case JoinWave, LeaveWave:
			if e.Frac <= 0 || e.Frac > 1 {
				return fmt.Errorf("scenario %s: event %d frac %v outside (0, 1]", s.Name, i, e.Frac)
			}
		case Outage, Heal:
			regions := e.Regions
			if regions == 0 {
				regions = 4
			}
			if regions < 2 || regions > s.N {
				return fmt.Errorf("scenario %s: event %d regions = %d", s.Name, i, regions)
			}
			if e.Region < 0 || e.Region >= regions {
				return fmt.Errorf("scenario %s: event %d region %d of %d", s.Name, i, e.Region, regions)
			}
		case DemandFlip:
			if s.Demand == nil || s.Demand.Kind == "uniform" {
				return fmt.Errorf("scenario %s: event %d flips a uniform demand", s.Name, i)
			}
		default:
			return fmt.Errorf("scenario %s: event %d unknown kind %q", s.Name, i, e.Kind)
		}
	}
	return nil
}

// Load reads and validates one spec file (strict JSON: unknown fields
// are errors, so typos in hand-written specs surface immediately).
func Load(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// LoadDir reads every *.json spec in dir, sorted by filename.
func LoadDir(dir string) ([]Spec, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("scenario: no *.json specs in %s", dir)
	}
	var specs []Spec
	for _, p := range paths {
		s, err := Load(p)
		if err != nil {
			return nil, err
		}
		specs = append(specs, s)
	}
	return specs, nil
}

// Save writes the spec as indented JSON.
func (s Spec) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Builtin returns a named built-in scenario. The smoke-sized ones are
// the CI matrix; "leave-wave-10k" is the headline churn-at-scale run
// the nightly workflow executes.
func Builtin(name string) (Spec, bool) {
	for _, s := range Builtins() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// BuiltinNames lists the built-in scenario names.
func BuiltinNames() []string {
	bs := Builtins()
	names := make([]string, len(bs))
	for i, s := range bs {
		names[i] = s.Name
	}
	return names
}

// Builtins returns every built-in scenario.
func Builtins() []Spec {
	return []Spec{
		{
			// A 30% flash crowd hits a converged overlay.
			Name: "flash-crowd", N: 120, K: 3, Seed: 2008, Epochs: 10,
			Sample: "demand:30",
			Churn:  &ChurnProcess{Process: "static", StartOn: 0.7},
			Events: []Event{{Epoch: 5, Kind: JoinWave, Frac: 0.3}},
		},
		{
			// Background churn with a compressed storm: a leave wave
			// followed by a return wave two epochs later.
			Name: "churn-storm", N: 120, K: 3, Seed: 2008, Epochs: 12,
			Sample: "demand:30",
			Churn:  &ChurnProcess{Process: "exp", OnMean: 60, OffMean: 12},
			Events: []Event{
				{Epoch: 5, Kind: LeaveWave, Frac: 0.15},
				{Epoch: 7, Kind: JoinWave, Frac: 0.15},
			},
		},
		{
			// One of four regions goes dark, then heals.
			Name: "regional-outage", N: 120, K: 3, Seed: 2008, Epochs: 12,
			Sample: "demand:30",
			Events: []Event{
				{Epoch: 4, Kind: Outage, Region: 1, Regions: 4},
				{Epoch: 8, Kind: Heal, Region: 1, Regions: 4},
			},
		},
		{
			// The hotspot set rotates mid-run: the wiring must chase it.
			Name: "demand-flip", N: 120, K: 3, Seed: 2008, Epochs: 10,
			Sample: "demand:30",
			Demand: &DemandModel{Kind: "hotspot", Hotspots: 6},
			Events: []Event{{Epoch: 5, Kind: DemandFlip}},
		},
		{
			// The acceptance-criterion shape at smoke size: a 5% leave
			// wave must recover within 3 epochs to within 5%, while the
			// data plane keeps answering every lookup from the last
			// published snapshot (engine pinned: serve needs the scale
			// engine's static delay oracle).
			Name: "leave-wave", N: 400, K: 4, Seed: 2008, Epochs: 8,
			Engine: EngineScale, Sample: "demand:60",
			Events: []Event{{Epoch: 4.3, Kind: LeaveWave, Frac: 0.05}},
			Serve:  &ServeSpec{QueriesPerEpoch: 200},
			Expect: &Expect{MaxRecoveryEpochs: 3, RecoverWithin: 0.05, MinAvailability: 0.97},
		},
		{
			// The headline churn-at-scale run (nightly CI): n=10000 k=8
			// demand:500, 5% leave wave after convergence (the static
			// run converges in 3 epochs), recovery within 3 epochs of
			// the pre-event converged cost — measured recovery is 1
			// epoch (190.5 at the wave epoch back to 177.7 vs the 172.8
			// pre-event cost). 7 epochs (~96s/epoch single-core, near-
			// linearly less with -workers) observe the full recovery
			// window; the nightly job runs with -workers $(nproc) to
			// stay under its 10-minute bound.
			Name: "leave-wave-10k", N: 10000, K: 8, Seed: 2008, Epochs: 7,
			Engine: EngineScale, Sample: "demand:500",
			Events: []Event{{Epoch: 3.3, Kind: LeaveWave, Frac: 0.05}},
			Serve:  &ServeSpec{QueriesPerEpoch: 200},
			Expect: &Expect{MaxRecoveryEpochs: 3, RecoverWithin: 0.05, MinAvailability: 0.97},
		},
	}
}

// EngineList parses a comma-separated engine list ("scale,full").
func EngineList(s string) ([]string, error) {
	if s == "" {
		return []string{EngineScale}, nil
	}
	var out []string
	for _, e := range strings.Split(s, ",") {
		e = strings.TrimSpace(e)
		switch e {
		case EngineScale, EngineFull:
			out = append(out, e)
		default:
			return nil, fmt.Errorf("scenario: unknown engine %q (want scale or full)", e)
		}
	}
	return out, nil
}
