package scenario

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// This file is the harness side of the PR-4 engine-equivalence suite:
// every committed CI scenario spec is twin-run at workers=1 and
// workers=4 and the resulting Metrics records must marshal to
// byte-identical JSON. Together with the ScaleResult suite in
// internal/sim this pins the acceptance criterion end to end — the
// worker knob changes wall-clock time, never a single output byte.

// ciSpecs loads the committed CI matrix, skipping when the test runs
// outside the repository layout.
func ciSpecs(t *testing.T) []Spec {
	t.Helper()
	dir := filepath.Join("..", "..", "ci", "scenarios")
	if _, err := os.Stat(dir); err != nil {
		t.Skipf("no ci/scenarios directory: %v", err)
	}
	specs, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

// specEngines resolves the engine list a spec runs on in the CI matrix:
// its pinned engine, or both.
func specEngines(s *Spec) []string {
	if s.Engine != "" {
		return []string{s.Engine}
	}
	return []string{EngineScale, EngineFull}
}

// TestCIScenariosByteIdenticalAcrossWorkers twin-runs every spec in
// ci/scenarios/ across its engines with workers=1 vs workers=4. The
// full-engine legs are skipped in -short mode and under the race
// detector: they cost minutes under -race (the O(n²) engine twin-run
// at n=120–400) while full-engine worker determinism is already
// race-pinned at smoke size by TestMetricsByteIdenticalAcrossWorkers
// and by the sim package's own parallel suite. The scale-engine legs —
// the propose/apply split this PR locks down — always run.
func TestCIScenariosByteIdenticalAcrossWorkers(t *testing.T) {
	for _, spec := range ciSpecs(t) {
		spec := spec
		for _, engine := range specEngines(&spec) {
			if (testing.Short() || raceEnabled) && engine == EngineFull {
				continue
			}
			engine := engine
			t.Run(spec.Name+"/"+engine, func(t *testing.T) {
				a, err := Run(spec, Options{Engine: engine, Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				b, err := Run(spec, Options{Engine: engine, Workers: 4})
				if err != nil {
					t.Fatal(err)
				}
				ja, err := json.Marshal(a)
				if err != nil {
					t.Fatal(err)
				}
				jb, err := json.Marshal(b)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(ja, jb) {
					t.Fatalf("workers 1 vs 4 metrics diverged:\n%s\n%s", ja, jb)
				}
			})
		}
	}
}
