package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"

	"egoist/internal/churn"
	"egoist/internal/core"
	"egoist/internal/graph"
	"egoist/internal/plane"
	"egoist/internal/sampling"
	"egoist/internal/sim"
	"egoist/internal/underlay"
)

// Options tunes one runner invocation without touching the spec.
type Options struct {
	// Engine overrides the spec's engine ("" keeps it).
	Engine string
	// Workers is the engine parallelism (0 = NumCPU). Metrics are
	// byte-identical for any value.
	Workers int
	// Shards overrides the spec's shard count (0 keeps it). Like
	// Workers, a physical layout knob: metrics are byte-identical for
	// any value. Scale engine only.
	Shards int
}

// Metrics is one run's deterministic record — the BENCH_scenarios.json
// schema. Everything here is a pure function of (spec, engine); no
// wall-clock fields, so records compare byte-for-byte across worker
// counts and reruns.
type Metrics struct {
	Scenario  string  `json:"scenario"`
	Engine    string  `json:"engine"`
	N         int     `json:"n"`
	K         int     `json:"k"`
	Seed      int64   `json:"seed"`
	Epochs    int     `json:"epochs"`
	Converged bool    `json:"converged"`
	ChurnRate float64 `json:"churn_rate"` // the paper's Sect. 4.4 metric over the horizon
	Joins     int     `json:"joins"`
	Leaves    int     `json:"leaves"`
	// CostPerEpoch is the engine's per-epoch cost series, normalized
	// per destination pair (the engine totals divided by alive-1), so
	// values stay comparable across membership changes: a join wave's
	// bigger roster does not masquerade as a cost regression. Scale
	// reports estimated costs, full true costs. Unobservable epochs
	// carry -1.
	CostPerEpoch []float64 `json:"cost_per_epoch"`
	// RewiresPerEpoch counts re-wiring nodes (scale) or established
	// links (full) per epoch.
	RewiresPerEpoch []int   `json:"rewires_per_epoch"`
	MeanRewires     float64 `json:"mean_rewires_per_epoch"`
	// PreEventCost is the cost one epoch before the last
	// membership/demand event; FinalCost the last epoch's cost.
	PreEventCost float64 `json:"pre_event_cost"`
	FinalCost    float64 `json:"final_cost"`
	// RecoveryEpochs is how many epochs after the last event's epoch
	// the cost first returned to within the tolerance (Expect's, or 5%)
	// of PreEventCost: -1 = never within the run, -2 = no events.
	RecoveryEpochs int `json:"recovery_epochs"`
	// Serve holds the serve-under-churn measurements when the spec
	// enables the data plane (nil otherwise).
	Serve *ServeMetrics `json:"serve,omitempty"`
	// Lab holds the deployment measurements when the record came from
	// the real-process lab engine (RunLab; nil for simulated runs).
	Lab *LabMetrics `json:"lab,omitempty"`
}

// ServeMetrics records the data plane hammered alongside a scenario:
// each epoch a deterministic panel of src/dst pairs drawn from the
// currently-alive roster is answered from the snapshot published at
// the previous epoch's end — the one-epoch staleness a live client
// sees while the overlay re-wires underneath it.
type ServeMetrics struct {
	QueriesPerEpoch int `json:"queries_per_epoch"`
	// Queries counts issued lookups; Failed counts lookups no published
	// snapshot could answer. The runner errors when Failed > 0: with
	// the bootstrap wiring published before epoch 0, every query must
	// be answerable from some snapshot.
	Queries int `json:"queries"`
	Failed  int `json:"failed"`
	// AvailabilityPerEpoch is the fraction of the epoch's lookups whose
	// destination was overlay-reachable in the serving snapshot (-1
	// when the epoch issued no queries). StretchPerEpoch is the mean,
	// over reachable lookups, of overlay-route cost divided by the
	// direct underlay delay (-1 when unobservable).
	AvailabilityPerEpoch []float64 `json:"availability_per_epoch"`
	StretchPerEpoch      []float64 `json:"stretch_per_epoch"`
	// MinAvailability and MeanStretch aggregate the series.
	MinAvailability float64 `json:"min_availability"`
	MeanStretch     float64 `json:"mean_stretch"`
}

// compiled is a spec lowered to engine inputs.
type compiled struct {
	sched     *churn.Schedule                        // nil: static membership
	demandAt  func(epoch int) func(i, j int) float64 // nil: uniform demand
	lastEvent float64                                // last timeline-event epoch, -1 if none
}

// compile lowers the spec: the background churn process plus the
// membership waves of the event timeline become one churn.Schedule
// (waves pick their victims from the membership state replayed to the
// event's epoch), and the demand model plus its flips become a
// per-epoch demand function.
func (s *Spec) compile() (*compiled, error) {
	out := &compiled{lastEvent: -1}
	var sched *churn.Schedule
	switch {
	case s.Churn == nil:
		sched = nil
	case s.Churn.Process == "static":
		sched = staticSchedule(s)
	default:
		var on, off churn.SessionDist
		if s.Churn.Process == "pareto" {
			alpha := s.Churn.Alpha
			if alpha == 0 {
				alpha = 1.5
			}
			on = churn.Pareto{Mean: s.Churn.OnMean, Alpha: alpha}
			off = churn.Pareto{Mean: s.Churn.OffMean, Alpha: alpha}
		} else {
			on = churn.Exponential{Mean: s.Churn.OnMean}
			off = churn.Exponential{Mean: s.Churn.OffMean}
		}
		var err error
		sched, err = churn.GenerateSynthetic(churn.SyntheticConfig{
			N: s.N, Horizon: float64(s.Epochs),
			On: on, Off: off,
			Seed:    s.Seed + 101,
			StartOn: s.Churn.StartOn,
		})
		if err != nil {
			return nil, err
		}
		if ts := s.Churn.Timescale; ts > 0 && ts != 1 {
			sched = sched.Rescale(ts).Truncate(float64(s.Epochs))
		}
	}

	// Overlay the timeline: replay membership to each event's epoch,
	// select the wave deterministically, and inject the resulting
	// single-node events.
	var flips []float64
	needsMembership := false
	for _, e := range s.Events {
		if e.Kind != DemandFlip {
			needsMembership = true
		}
	}
	if needsMembership && sched == nil {
		sched = staticSchedule(s)
	}
	var injected []churn.Event
	var replayAt int
	var on []bool
	if sched != nil {
		on = append([]bool(nil), sched.InitialOn...)
	}
	for evi, e := range s.Events {
		if e.Kind == DemandFlip {
			flips = append(flips, e.Epoch)
			out.lastEvent = e.Epoch
			continue
		}
		// Replay base events up to the wave's epoch. Injected events are
		// applied to the state as they are generated (the timeline is in
		// epoch order), so later waves see earlier waves.
		for replayAt < len(sched.Events) && sched.Events[replayAt].Time < e.Epoch {
			ev := sched.Events[replayAt]
			on[ev.Node] = ev.On
			replayAt++
		}
		rng := rand.New(rand.NewSource(s.Seed + 7919*int64(evi+1)))
		var picked []int
		switch e.Kind {
		case JoinWave:
			picked = pickWave(rng, on, false, int(math.Round(e.Frac*float64(s.N))))
		case LeaveWave:
			alive := 0
			for _, b := range on {
				if b {
					alive++
				}
			}
			picked = pickWave(rng, on, true, int(math.Round(e.Frac*float64(alive))))
		case Outage, Heal:
			regions := e.Regions
			if regions == 0 {
				regions = 4
			}
			lo, hi := e.Region*s.N/regions, (e.Region+1)*s.N/regions
			for v := lo; v < hi; v++ {
				if on[v] == (e.Kind == Outage) {
					picked = append(picked, v)
				}
			}
		}
		turnOn := e.Kind == JoinWave || e.Kind == Heal
		for _, v := range picked {
			injected = append(injected, churn.Event{Time: e.Epoch, Node: v, On: turnOn})
			on[v] = turnOn
		}
		out.lastEvent = e.Epoch
	}
	if sched != nil {
		if len(injected) > 0 {
			sched.Events = append(sched.Events, injected...)
			sort.SliceStable(sched.Events, func(a, b int) bool {
				return sched.Events[a].Time < sched.Events[b].Time
			})
		}
		if err := sched.Validate(); err != nil {
			return nil, err
		}
		// A background process alone has no "event" to recover from;
		// only the timeline sets lastEvent.
		out.sched = sched
	}

	if base := s.demandFn(0); base != nil {
		flipped := flips
		out.demandAt = func(epoch int) func(i, j int) float64 {
			n := 0
			for _, t := range flipped {
				if float64(epoch) > t-1e-9 {
					n++
				}
			}
			return s.demandFn(n)
		}
	}
	return out, nil
}

// staticSchedule is membership without background events: all nodes on
// (or a deterministic StartOn subset under a "static" churn process).
func staticSchedule(s *Spec) *churn.Schedule {
	sched := &churn.Schedule{N: s.N, InitialOn: make([]bool, s.N)}
	startOn := 1.0
	if s.Churn != nil && s.Churn.StartOn > 0 {
		startOn = s.Churn.StartOn
	}
	rng := rand.New(rand.NewSource(s.Seed + 53))
	for v := range sched.InitialOn {
		sched.InitialOn[v] = rng.Float64() < startOn
	}
	return sched
}

// pickWave selects count nodes with on-state == from, by shuffled draw.
func pickWave(rng *rand.Rand, on []bool, from bool, count int) []int {
	var pool []int
	for v, b := range on {
		if b == from {
			pool = append(pool, v)
		}
	}
	rng.Shuffle(len(pool), func(a, b int) { pool[a], pool[b] = pool[b], pool[a] })
	if count > len(pool) {
		count = len(pool)
	}
	picked := append([]int(nil), pool[:count]...)
	sort.Ints(picked)
	return picked
}

// demandFn materializes the demand model after the given number of
// flips, or nil for uniform demand.
func (s *Spec) demandFn(flips int) func(i, j int) float64 {
	if s.Demand == nil || s.Demand.Kind == "uniform" {
		return nil
	}
	switch s.Demand.Kind {
	case "gravity":
		if flips%2 == 1 {
			// A flip transposes the gravity skew.
			return func(i, j int) float64 { return 1 + float64((j*31+i*17)%7) }
		}
		return func(i, j int) float64 { return 1 + float64((i*31+j*17)%7) }
	case "hotspot":
		n := s.N
		h := s.Demand.Hotspots
		if h <= 0 {
			h = n / 20
			if h < 1 {
				h = 1
			}
		}
		weight := s.Demand.Weight
		if weight == 0 {
			weight = 10
		}
		stride := n / h
		if stride < 1 {
			stride = 1
		}
		// Hotspots sit at every stride-th id; each flip shifts the set
		// by half a stride, so consecutive flips alternate between two
		// disjoint hot sets.
		offset := (flips % 2) * (stride / 2)
		return func(i, j int) float64 {
			if (j-offset)%stride == 0 && j >= offset {
				return weight
			}
			return 1
		}
	}
	return nil
}

// Run executes one scenario and returns its metrics record. When the
// spec carries expectations, a violated expectation is an error (the
// metrics are still returned for diagnosis).
func Run(spec Spec, opts Options) (*Metrics, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	engine := spec.Engine
	if opts.Engine != "" {
		engine = opts.Engine
	}
	if engine == "" {
		engine = EngineScale
	}
	comp, err := spec.compile()
	if err != nil {
		return nil, err
	}
	m := &Metrics{
		Scenario: spec.Name, Engine: engine,
		N: spec.N, K: spec.K, Seed: spec.Seed,
	}
	if comp.sched != nil {
		m.ChurnRate = comp.sched.Rate(float64(spec.Epochs))
	}
	switch engine {
	case EngineScale:
		err = runScaleEngine(&spec, comp, opts, m)
	case EngineFull:
		err = runFullEngine(&spec, comp, opts.Workers, m)
	default:
		return nil, fmt.Errorf("scenario %s: unknown engine %q", spec.Name, engine)
	}
	if err != nil {
		return nil, err
	}
	finishMetrics(m, comp, spec.recoverTol())
	return m, checkExpect(&spec, m)
}

// recoverTol is the spec's recovery tolerance (Expect's, or 5%).
func (s *Spec) recoverTol() float64 {
	if s.Expect != nil && s.Expect.RecoverWithin > 0 {
		return s.Expect.RecoverWithin
	}
	return 0.05
}

func runScaleEngine(spec *Spec, comp *compiled, opts Options, m *Metrics) error {
	sampleStr := spec.Sample
	if sampleStr == "" {
		ms := spec.N / 20
		if ms < spec.K+2 {
			ms = spec.K + 2
		}
		if ms > 500 {
			ms = 500
		}
		sampleStr = fmt.Sprintf("demand:%d", ms)
	}
	sample, err := sampling.ParseSpec(sampleStr)
	if err != nil {
		return err
	}
	shards := spec.Shards
	if opts.Shards != 0 {
		shards = opts.Shards
	}
	cfg := sim.ScaleConfig{
		N: spec.N, K: spec.K, Seed: spec.Seed,
		Sample: sample, Epsilon: spec.Epsilon,
		MaxEpochs: spec.Epochs, Workers: opts.Workers, Shards: shards,
		StaggerBatches: spec.Stagger,
		Churn:          comp.sched,
		DemandAt:       comp.demandAt,
	}
	var serve *servePlane
	if spec.Serve != nil {
		// The hook needs the engine's delay oracle to compile snapshots
		// and price stretch; constructing the engine default explicitly
		// (same constructor, same arguments) keeps the run byte-identical
		// to a serve-less run of the same spec.
		net, err := underlay.NewLite(spec.N, spec.Seed+1)
		if err != nil {
			return err
		}
		cfg.Net = net
		serve = &servePlane{
			spec: spec, net: net, srv: plane.NewServer(),
			m: &ServeMetrics{QueriesPerEpoch: spec.Serve.QueriesPerEpoch},
		}
		if spec.Serve.Publish == PublishSubround {
			// Sub-epoch cadence: the data plane re-publishes after every
			// stagger sub-round via the delta-patch path, and the query
			// panel measures each sub-round window against the snapshot
			// published one sub-round earlier.
			cfg.OnPublish = serve.onPublish
		} else {
			cfg.OnEpoch = serve.onEpoch
		}
	}
	if len(spec.Events) > 0 {
		// The engine's early convergence stop only waits for membership
		// events; a timeline with demand flips (or a recovery window to
		// observe) needs the full horizon.
		cfg.ConvergedFrac = -1
	}
	res, err := sim.RunScale(cfg)
	if err != nil {
		return err
	}
	m.Epochs = res.Epochs
	m.Joins, m.Leaves = res.Joins, res.Leaves
	for _, ep := range res.PerEpoch {
		if ep.Acted == 0 {
			// A drained overlay sat the epoch out: its zero cost is
			// unobservable, not cheap.
			m.CostPerEpoch = append(m.CostPerEpoch, -1)
			m.RewiresPerEpoch = append(m.RewiresPerEpoch, ep.Rewires)
			continue
		}
		denom := float64(ep.Alive - 1)
		if denom < 1 {
			denom = 1
		}
		m.CostPerEpoch = append(m.CostPerEpoch, ep.MeanEstCost/denom)
		m.RewiresPerEpoch = append(m.RewiresPerEpoch, ep.Rewires)
	}
	m.Converged = res.Converged
	if !m.Converged && res.Epochs > 0 {
		// With the early stop disabled the engine never reports
		// convergence; apply its 1%-of-alive criterion to the last
		// epoch instead.
		last := res.PerEpoch[res.Epochs-1]
		m.Converged = float64(last.Rewires) <= 0.01*float64(last.Alive)
	}
	if serve != nil {
		m.Serve = serve.finish()
		if m.Serve.Failed > 0 {
			// Not an expectation — a violated harness contract: the
			// bootstrap publish must make every query answerable from
			// some snapshot.
			return fmt.Errorf("scenario %s: %d of %d lookups had no published snapshot to answer from",
				spec.Name, m.Serve.Failed, m.Serve.Queries)
		}
	}
	return nil
}

// servePlane is the per-run serve-under-churn state behind the scale
// engine's OnEpoch hook (publish mode "epoch") or OnPublish hook
// (publish mode "subround").
type servePlane struct {
	spec  *Spec
	net   *underlay.Lite
	srv   *plane.Server
	m     *ServeMetrics
	alive []int

	// Subround-mode state: the latest published snapshot (the delta
	// chain's tip), a monotone publication sequence used as the
	// snapshot epoch tag, and the current epoch's partial panel tally.
	prev      *plane.Snapshot
	seq       int64
	epQueries int
	epReach   int
	epStretch float64
}

// onEpoch is the engine hook: measure the epoch's query panel against
// the previously published snapshot (what clients were served while
// this epoch re-wired), then publish the epoch-final snapshot. The
// bootstrap call (epoch -1) only publishes. Runs serially inside the
// engine, with seeded randomness — deterministic at any worker count.
func (sp *servePlane) onEpoch(epoch int, wiring [][]int, active []bool) {
	if epoch >= 0 {
		sp.measure(epoch, active)
	}
	sp.srv.Publish(plane.Compile(int64(epoch), wiring, active, sp.net, plane.Options{}))
}

// onPublish is the subround-mode engine hook, one call per stagger
// sub-round: first the sub-round's slice of the epoch's query panel is
// measured against the currently-served snapshot (published one
// sub-round ago — the staleness a live client sees under sub-epoch
// publication), then the changed rows are delta-patched onto the
// previous snapshot and the result is published. The bootstrap Full
// publication compiles from scratch and only publishes. Runs serially
// inside the engine with seeded randomness, so records stay
// byte-identical at any (Workers, Shards).
func (sp *servePlane) onPublish(pub sim.Publication) {
	if pub.Full {
		sp.prev = plane.Compile(sp.seq, pub.Wiring, pub.Active, sp.net, plane.Options{})
		sp.seq++
		sp.srv.Publish(sp.prev)
		return
	}
	sp.measureSlice(&pub)
	sp.prev = sp.prev.Patch(sp.seq, pub.Changed, pub.Wiring, pub.Active)
	sp.seq++
	sp.srv.Publish(sp.prev)
}

// measureSlice runs the query-panel slice of one sub-round window. An
// epoch has Rounds+1 publications (sub-rounds 0..Rounds-1 plus the
// epoch-final churn drain), so the panel splits into Rounds+1
// near-equal slices; the final slice flushes the epoch's tally into
// the per-epoch series.
func (sp *servePlane) measureSlice(pub *sim.Publication) {
	q := sp.spec.Serve.QueriesPerEpoch
	slots := pub.Rounds + 1
	lo, hi := q*pub.SubRound/slots, q*(pub.SubRound+1)/slots
	sp.alive = sp.alive[:0]
	for v, on := range pub.Active {
		if on {
			sp.alive = append(sp.alive, v)
		}
	}
	if hi > lo && len(sp.alive) >= 2 {
		rng := rand.New(rand.NewSource(sp.spec.Seed + 7717*(int64(pub.Epoch)+2) + 104729*int64(pub.SubRound+1)))
		snap := sp.srv.Current()
		for i := lo; i < hi; i++ {
			src := sp.alive[rng.Intn(len(sp.alive))]
			dst := sp.alive[rng.Intn(len(sp.alive))]
			for dst == src {
				dst = sp.alive[rng.Intn(len(sp.alive))]
			}
			sp.m.Queries++
			sp.epQueries++
			if snap == nil {
				sp.m.Failed++
				continue
			}
			if cost := snap.RouteCost(src, dst); cost < graph.Inf {
				sp.epReach++
				sp.epStretch += cost / sp.net.Delay(src, dst)
			}
		}
	}
	if pub.SubRound == pub.Rounds {
		if sp.epQueries == 0 {
			sp.m.AvailabilityPerEpoch = append(sp.m.AvailabilityPerEpoch, -1)
			sp.m.StretchPerEpoch = append(sp.m.StretchPerEpoch, -1)
		} else {
			sp.m.AvailabilityPerEpoch = append(sp.m.AvailabilityPerEpoch, float64(sp.epReach)/float64(sp.epQueries))
			if sp.epReach > 0 {
				sp.m.StretchPerEpoch = append(sp.m.StretchPerEpoch, sp.epStretch/float64(sp.epReach))
			} else {
				sp.m.StretchPerEpoch = append(sp.m.StretchPerEpoch, -1)
			}
		}
		sp.epQueries, sp.epReach, sp.epStretch = 0, 0, 0
	}
}

func (sp *servePlane) measure(epoch int, active []bool) {
	sp.alive = sp.alive[:0]
	for v, on := range active {
		if on {
			sp.alive = append(sp.alive, v)
		}
	}
	q := sp.spec.Serve.QueriesPerEpoch
	if len(sp.alive) < 2 {
		sp.m.AvailabilityPerEpoch = append(sp.m.AvailabilityPerEpoch, -1)
		sp.m.StretchPerEpoch = append(sp.m.StretchPerEpoch, -1)
		return
	}
	rng := rand.New(rand.NewSource(sp.spec.Seed + 7717*(int64(epoch)+2)))
	snap := sp.srv.Current()
	reachable, stretch := 0, 0.0
	for i := 0; i < q; i++ {
		src := sp.alive[rng.Intn(len(sp.alive))]
		dst := sp.alive[rng.Intn(len(sp.alive))]
		for dst == src {
			dst = sp.alive[rng.Intn(len(sp.alive))]
		}
		sp.m.Queries++
		if snap == nil {
			sp.m.Failed++
			continue
		}
		if cost := snap.RouteCost(src, dst); cost < graph.Inf {
			reachable++
			stretch += cost / sp.net.Delay(src, dst)
		}
	}
	sp.m.AvailabilityPerEpoch = append(sp.m.AvailabilityPerEpoch, float64(reachable)/float64(q))
	if reachable > 0 {
		sp.m.StretchPerEpoch = append(sp.m.StretchPerEpoch, stretch/float64(reachable))
	} else {
		sp.m.StretchPerEpoch = append(sp.m.StretchPerEpoch, -1)
	}
}

// finish derives the aggregates.
func (sp *servePlane) finish() *ServeMetrics {
	m := sp.m
	m.MinAvailability = -1
	sum, ns := 0.0, 0
	for i, a := range m.AvailabilityPerEpoch {
		if a >= 0 && (m.MinAvailability < 0 || a < m.MinAvailability) {
			m.MinAvailability = a
		}
		if s := m.StretchPerEpoch[i]; s >= 0 {
			sum += s
			ns++
		}
	}
	m.MeanStretch = -1
	if ns > 0 {
		m.MeanStretch = sum / float64(ns)
	}
	return m
}

func runFullEngine(spec *Spec, comp *compiled, workers int, m *Metrics) error {
	if spec.Serve != nil {
		return fmt.Errorf("scenario %s: serve-under-churn requires the scale engine", spec.Name)
	}
	var policy core.Policy
	enforceCycle := false
	switch spec.Policy {
	case "", "BR":
		policy = core.BRPolicy{}
	case "HybridBR":
		policy = core.BRPolicy{Donated: 2}
	case "k-Random":
		policy, enforceCycle = core.KRandom{}, true
	case "k-Closest":
		policy, enforceCycle = core.KClosest{}, true
	case "k-Regular":
		policy = core.KRegular{}
	default:
		return fmt.Errorf("scenario %s: unknown policy %q", spec.Name, spec.Policy)
	}
	cfg := sim.Config{
		N: spec.N, K: spec.K, Seed: spec.Seed,
		Policy: policy, Epsilon: spec.Epsilon,
		EnforceCycle: enforceCycle,
		// Warm epochs would shift the event clock; scenarios measure
		// from epoch 0 so event epochs and cost series line up.
		WarmEpochs: 0, MeasureEpochs: spec.Epochs,
		Churn:   comp.sched,
		PrefAt:  comp.demandAt,
		Workers: workers,
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return err
	}
	m.Epochs = res.EpochsRun
	for e, c := range res.PerEpochCost {
		denom := 1.0
		if e < len(res.PerEpochAlive) && res.PerEpochAlive[e] > 2 {
			denom = float64(res.PerEpochAlive[e] - 1)
		}
		m.CostPerEpoch = append(m.CostPerEpoch, c/denom)
	}
	m.RewiresPerEpoch = append(m.RewiresPerEpoch, res.Rewires.PerEpoch()...)
	for len(m.RewiresPerEpoch) < m.Epochs {
		m.RewiresPerEpoch = append(m.RewiresPerEpoch, 0)
	}
	// The full engine has no convergence flag; call the run converged
	// when the final epoch's link churn fell to ≤ 2% of the overlay's
	// link capital.
	if n := len(m.RewiresPerEpoch); n > 0 {
		m.Converged = float64(m.RewiresPerEpoch[n-1]) <= 0.02*float64(spec.N*spec.K)
	}
	if comp.sched != nil {
		for _, e := range comp.sched.Events {
			if e.Time >= float64(spec.Epochs) {
				break
			}
			if e.On {
				m.Joins++
			} else {
				m.Leaves++
			}
		}
	}
	return nil
}

// finishMetrics derives the aggregate fields from the per-epoch series.
func finishMetrics(m *Metrics, comp *compiled, tol float64) {
	for i, c := range m.CostPerEpoch {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			m.CostPerEpoch[i] = -1
		}
	}
	total := 0
	for _, r := range m.RewiresPerEpoch {
		total += r
	}
	if len(m.RewiresPerEpoch) > 0 {
		m.MeanRewires = float64(total) / float64(len(m.RewiresPerEpoch))
	}
	if len(m.CostPerEpoch) > 0 {
		m.FinalCost = m.CostPerEpoch[len(m.CostPerEpoch)-1]
	}
	m.RecoveryEpochs = -2
	if comp.lastEvent >= 0 {
		m.PreEventCost, m.RecoveryEpochs = recovery(m.CostPerEpoch, comp.lastEvent, tol)
	}
}

// recovery scans the cost series for the first epoch after the event's
// whose cost returned to within tol of the pre-event cost, returning
// the pre-event cost and the epoch distance (-1: never). Unobservable
// epochs (cost <= 0) never count as recovered.
func recovery(costs []float64, eventEpoch float64, tol float64) (pre float64, rec int) {
	evt := int(eventEpoch)
	if len(costs) == 0 || evt >= len(costs) {
		return 0, -1
	}
	preIdx := evt - 1
	if preIdx < 0 {
		preIdx = 0
	}
	pre = costs[preIdx]
	if pre <= 0 {
		return pre, -1
	}
	for d := 1; evt+d < len(costs); d++ {
		c := costs[evt+d]
		if c > 0 && c <= pre*(1+tol) {
			return pre, d
		}
	}
	return pre, -1
}

// checkExpect gates the run on the spec's expectations. RecoveryEpochs
// was already derived under the spec's own tolerance (recoverTol), so
// the gate reads it directly.
func checkExpect(spec *Spec, m *Metrics) error {
	e := spec.Expect
	if e == nil {
		return nil
	}
	if e.MustConverge && !m.Converged {
		return fmt.Errorf("scenario %s/%s: expected convergence, got none in %d epochs", m.Scenario, m.Engine, m.Epochs)
	}
	if e.MaxRecoveryEpochs > 0 {
		if m.RecoveryEpochs < 0 || m.RecoveryEpochs > e.MaxRecoveryEpochs {
			return fmt.Errorf("scenario %s/%s: no recovery to within %.0f%% of pre-event cost %.1f in %d epochs (got %d; costs %v)",
				m.Scenario, m.Engine, spec.recoverTol()*100, m.PreEventCost, e.MaxRecoveryEpochs, m.RecoveryEpochs, m.CostPerEpoch)
		}
	}
	if e.MinAvailability > 0 {
		if m.Serve == nil {
			return fmt.Errorf("scenario %s/%s: min_availability expected but the run served no queries", m.Scenario, m.Engine)
		}
		if m.Serve.MinAvailability < e.MinAvailability {
			return fmt.Errorf("scenario %s/%s: data-plane availability dipped to %.3f, below the %.3f floor (per-epoch %v)",
				m.Scenario, m.Engine, m.Serve.MinAvailability, e.MinAvailability, m.Serve.AvailabilityPerEpoch)
		}
	}
	return nil
}

// WriteMetricsJSON writes records to path as a sorted, indented JSON
// array — the BENCH_scenarios.json artifact. Identical specs produce
// byte-identical files at any worker count.
func WriteMetricsJSON(path string, recs []*Metrics) error {
	out := append([]*Metrics(nil), recs...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Scenario != out[b].Scenario {
			return out[a].Scenario < out[b].Scenario
		}
		return out[a].Engine < out[b].Engine
	})
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadMetricsJSON reads a BENCH_scenarios.json file back.
func ReadMetricsJSON(path string) ([]*Metrics, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []*Metrics
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}
