//go:build race

package scenario

// raceEnabled reports whether this test binary was built with the race
// detector; the equivalence suite uses it to trim its slowest legs so
// the CI race run stays inside its timeout.
const raceEnabled = true
