package scenario

import (
	"bytes"
	"encoding/json"
	"testing"
)

// serveSpec is a small serve-under-churn scenario: a flash crowd joins
// at epoch 3, so the epoch-after queries include members the one-epoch-
// stale serving snapshot has never seen.
func serveSpec() Spec {
	return Spec{
		Name: "serve-smoke", Engine: EngineScale,
		N: 120, K: 3, Seed: 9, Epochs: 6,
		Sample: "uniform:12",
		Churn:  &ChurnProcess{Process: "static", StartOn: 0.7},
		Events: []Event{{Epoch: 3, Kind: JoinWave, Frac: 0.3}},
		Serve:  &ServeSpec{QueriesPerEpoch: 150},
	}
}

// TestServeMetricsRecorded pins the serve-under-churn acceptance shape:
// zero failed lookups (every query answered from some published
// snapshot), per-epoch availability and stretch series of full length,
// and a visible availability dip at the join wave — the freshness
// caveat made measurable: queries about fresh joiners are answered from
// the pre-wave snapshot.
func TestServeMetricsRecorded(t *testing.T) {
	m, err := Run(serveSpec(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := m.Serve
	if s == nil {
		t.Fatal("no serve metrics recorded")
	}
	if s.Failed != 0 {
		t.Fatalf("%d failed lookups", s.Failed)
	}
	if s.Queries != s.QueriesPerEpoch*m.Epochs {
		t.Fatalf("queries %d, want %d × %d epochs", s.Queries, s.QueriesPerEpoch, m.Epochs)
	}
	if len(s.AvailabilityPerEpoch) != m.Epochs || len(s.StretchPerEpoch) != m.Epochs {
		t.Fatalf("series lengths %d/%d, want %d", len(s.AvailabilityPerEpoch), len(s.StretchPerEpoch), m.Epochs)
	}
	for e, a := range s.AvailabilityPerEpoch {
		if a < 0 || a > 1 {
			t.Fatalf("epoch %d availability %v", e, a)
		}
	}
	// Epoch 4's queries run against the epoch-3 snapshot... which was
	// compiled after the epoch-3 wave drained; epoch 3's own queries run
	// against the pre-wave epoch-2 snapshot with ~30%-of-n unknown
	// joiners in the panel. That epoch must show the dip.
	if dip := s.AvailabilityPerEpoch[3]; dip > 0.95 {
		t.Fatalf("expected a join-wave availability dip at epoch 3, got %v (series %v)", dip, s.AvailabilityPerEpoch)
	}
	if s.MinAvailability > s.AvailabilityPerEpoch[3] {
		t.Fatalf("min %v above epoch-3 dip %v", s.MinAvailability, s.AvailabilityPerEpoch[3])
	}
	// Stretch is overlay-route over direct-underlay delay: bounded away
	// from zero, and finite wherever observed.
	for e, st := range s.StretchPerEpoch {
		if st != -1 && st < 0.5 {
			t.Fatalf("epoch %d stretch %v", e, st)
		}
	}
	if s.MeanStretch <= 0.5 {
		t.Fatalf("mean stretch %v", s.MeanStretch)
	}
}

// TestServeMetricsByteIdenticalAcrossWorkers extends the worker-
// determinism contract to the serve measurements.
func TestServeMetricsByteIdenticalAcrossWorkers(t *testing.T) {
	a, err := Run(serveSpec(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(serveSpec(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("serve metrics diverged across workers:\n%s\n%s", ja, jb)
	}
}

// TestServeValidation covers the spec-level serve rules.
func TestServeValidation(t *testing.T) {
	s := serveSpec()
	s.Serve.QueriesPerEpoch = 0
	if err := s.Validate(); err == nil {
		t.Error("zero queries_per_epoch accepted")
	}
	s = serveSpec()
	s.Engine = ""
	if err := s.Validate(); err == nil {
		t.Error("serve without a pinned scale engine accepted")
	}
	s = serveSpec()
	s.Engine = EngineFull
	if err := s.Validate(); err == nil {
		t.Error("serve on the full engine accepted")
	}
	s = serveSpec()
	s.Serve = nil
	s.Expect = &Expect{MinAvailability: 0.9}
	if err := s.Validate(); err == nil {
		t.Error("min_availability without serve accepted")
	}
	s = serveSpec()
	s.Expect = &Expect{MinAvailability: 1.5}
	if err := s.Validate(); err == nil {
		t.Error("min_availability > 1 accepted")
	}
}

// TestServeFullEngineRefused: the runner must refuse to silently drop
// serve measurements when forced onto the full engine.
func TestServeFullEngineRefused(t *testing.T) {
	s := serveSpec()
	if _, err := Run(s, Options{Engine: EngineFull, Workers: 1}); err == nil {
		t.Fatal("full engine accepted a serve spec")
	}
}

// TestServeMinAvailabilityGate: an unmeetable availability floor fails
// the run.
func TestServeMinAvailabilityGate(t *testing.T) {
	s := serveSpec()
	s.Expect = &Expect{MinAvailability: 0.9999}
	if _, err := Run(s, Options{Workers: 2}); err == nil {
		t.Fatal("impossible availability floor passed")
	}
}
