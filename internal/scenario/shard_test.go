package scenario

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// This file extends the PR-4 engine-equivalence suite to the shard
// dimension: the scale engine's shard count is a physical layout knob
// like Workers, so every committed CI scenario spec must produce
// byte-identical Metrics JSON at any (shards, workers) combination.
// The CI shard-determinism job runs the same twin-runs out of process
// (egoist-bench + cmp); this test pins the contract in-tree.

// TestCIScenariosByteIdenticalAcrossShards twin-runs every spec in
// ci/scenarios/ on the scale engine across shards {1,4} × workers
// {1,4} and byte-compares the Metrics JSON against the shards=1,
// workers=1 reference. Only the scale engine participates: the full
// engine has no shard dimension (Options.Shards is ignored there).
func TestCIScenariosByteIdenticalAcrossShards(t *testing.T) {
	for _, spec := range ciSpecs(t) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			ref, err := Run(spec, Options{Engine: EngineScale, Workers: 1, Shards: 1})
			if err != nil {
				t.Fatal(err)
			}
			jref, err := json.Marshal(ref)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{1, 4} {
				for _, workers := range []int{1, 4} {
					if shards == 1 && workers == 1 {
						continue
					}
					m, err := Run(spec, Options{Engine: EngineScale, Workers: workers, Shards: shards})
					if err != nil {
						t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
					}
					jm, err := json.Marshal(m)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(jref, jm) {
						t.Fatalf("shards=%d workers=%d metrics diverged from shards=1 workers=1:\n%s\n%s",
							shards, workers, jref, jm)
					}
				}
			}
		})
	}
}

// FuzzShardSpec fuzzes the shard-config surface of the spec pipeline:
// strict decode, the Shards/N validation seam, and — for small valid
// specs — the determinism contract itself, twin-running the scale
// engine at the fuzzed shard count vs shards=1 and byte-comparing the
// Metrics JSON. Seeds are the committed ci/scenarios corpus (whose
// outage/leave-wave timelines drain entire id bands — i.e. entire
// shards — mid-run) crossed with adversarial shard counts. Properties:
// decode+Validate never panic; a validated spec has Shards in [0, N]
// and round-trips losslessly; and no valid (spec, shards) pair can
// change a single Metrics byte.
//
// CI runs this as a short -fuzztime smoke step; run it longer locally
// with: go test ./internal/scenario -run '^$' -fuzz FuzzShardSpec
func FuzzShardSpec(f *testing.F) {
	paths, _ := filepath.Glob(filepath.Join("..", "..", "ci", "scenarios", "*.json"))
	for _, p := range paths {
		if data, err := os.ReadFile(p); err == nil {
			f.Add(string(data), 0)
			f.Add(string(data), 4)
		}
	}
	small := `{"name":"x","n":24,"k":2,"epochs":4,"sample":"uniform:6"}`
	for _, s := range []int{0, 1, 3, 7, 24, 25, 255, -1} {
		f.Add(small, s)
	}
	// Churn that drains a band the fuzzed shard count may isolate.
	f.Add(`{"name":"x","n":40,"k":2,"epochs":6,"sample":"uniform:8","events":[{"epoch":2,"kind":"outage","region":0,"regions":4},{"epoch":4,"kind":"heal","region":0,"regions":4}]}`, 4)
	f.Add(`{"name":"x","n":40,"k":2,"epochs":6,"sample":"uniform:8","churn":{"process":"exp","on_mean":8,"off_mean":2}}`, 8)
	f.Add(`{"name":"","n":0,"k":0,"epochs":0}`, 1000000)

	f.Fuzz(func(t *testing.T, data string, shards int) {
		dec := json.NewDecoder(strings.NewReader(data))
		dec.DisallowUnknownFields()
		var s Spec
		if err := dec.Decode(&s); err != nil {
			return
		}
		s.Shards = shards
		if err := s.Validate(); err != nil {
			return
		}
		if s.Shards < 0 || s.Shards > s.N {
			t.Fatalf("validated spec has shards = %d outside [0, n=%d]", s.Shards, s.N)
		}
		// Round-trip: re-save, strict re-decode, re-validate.
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("valid spec does not marshal: %v (%+v)", err, s)
		}
		dec2 := json.NewDecoder(strings.NewReader(string(out)))
		dec2.DisallowUnknownFields()
		var s2 Spec
		if err := dec2.Decode(&s2); err != nil {
			t.Fatalf("round-trip decode failed: %v\n%s", err, out)
		}
		if err := s2.Validate(); err != nil {
			t.Fatalf("round-tripped spec no longer validates: %v\n%s", err, out)
		}
		if s2.Shards != s.Shards {
			t.Fatalf("shards did not round-trip: %d -> %d\n%s", s.Shards, s2.Shards, out)
		}
		// Twin-run the determinism contract for specs small enough to
		// simulate inside a fuzz iteration. Expect-gated specs are skipped
		// (a violated expectation is an error by design, not a shard bug);
		// the churn bounds mirror FuzzSpecDecode's compile bounds.
		if s.N > 120 || s.Epochs > 12 {
			return
		}
		if s.Expect != nil || s.Serve != nil {
			return
		}
		if c := s.Churn; c != nil && c.Process != "static" && (c.OnMean < 0.1 || c.OffMean < 0.1) {
			return
		}
		cmpShards := s.Shards
		if cmpShards <= 1 {
			cmpShards = 4
			if cmpShards > s.N {
				cmpShards = s.N
			}
		}
		a, errA := Run(s, Options{Engine: EngineScale, Workers: 2, Shards: 1})
		b, errB := Run(s, Options{Engine: EngineScale, Workers: 2, Shards: cmpShards})
		if (errA == nil) != (errB == nil) {
			t.Fatalf("shards=1 err=%v but shards=%d err=%v\n%s", errA, cmpShards, errB, out)
		}
		if errA != nil {
			return
		}
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		if !bytes.Equal(ja, jb) {
			t.Fatalf("metrics diverged at shards=%d:\n%s\n%s\nspec: %s", cmpShards, ja, jb, out)
		}
	})
}
