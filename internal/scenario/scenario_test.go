package scenario

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// smokeSpec is a fast spec exercising churn, a wave and a demand flip.
func smokeSpec() Spec {
	return Spec{
		Name: "smoke", N: 60, K: 3, Seed: 7, Epochs: 6,
		Sample: "uniform:15",
		Demand: &DemandModel{Kind: "hotspot", Hotspots: 4},
		Churn:  &ChurnProcess{Process: "exp", OnMean: 40, OffMean: 10},
		Events: []Event{
			{Epoch: 2, Kind: LeaveWave, Frac: 0.1},
			{Epoch: 3, Kind: DemandFlip},
			{Epoch: 4, Kind: JoinWave, Frac: 0.1},
		},
	}
}

// TestSpecJSONRoundTrip saves and reloads a spec unchanged.
func TestSpecJSONRoundTrip(t *testing.T) {
	spec := smokeSpec()
	path := filepath.Join(t.TempDir(), "smoke.json")
	if err := spec.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(spec)
	b, _ := json.Marshal(back)
	if !bytes.Equal(a, b) {
		t.Fatalf("round trip changed the spec:\n%s\n%s", a, b)
	}
	// Unknown fields must be rejected (typo protection for hand-written
	// specs).
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"name":"x","n":10,"k":2,"epochs":3,"bogus":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Fatal("unknown field accepted")
	}
}

// TestValidateRejects covers the spec validation paths.
func TestValidateRejects(t *testing.T) {
	ok := smokeSpec()
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.Engine = "warp" },
		func(s *Spec) { s.N = 2 },
		func(s *Spec) { s.K = 0 },
		func(s *Spec) { s.Epochs = 0 },
		func(s *Spec) { s.Policy = "banzai" },
		func(s *Spec) { s.Sample = "bogus:5" },
		func(s *Spec) { s.Demand = &DemandModel{Kind: "chaos"} },
		func(s *Spec) { s.Churn = &ChurnProcess{Process: "warp"} },
		func(s *Spec) { s.Churn = &ChurnProcess{Process: "exp"} }, // missing means
		func(s *Spec) { s.Events = []Event{{Epoch: 99, Kind: LeaveWave, Frac: 0.1}} },
		func(s *Spec) { s.Events = []Event{{Epoch: 1, Kind: LeaveWave, Frac: 0}} },
		func(s *Spec) { s.Events = []Event{{Epoch: 1, Kind: Outage, Region: 9, Regions: 4}} },
		func(s *Spec) { s.Events = []Event{{Epoch: 1, Kind: "meteor"}} },
		func(s *Spec) {
			s.Demand = nil
			s.Events = []Event{{Epoch: 1, Kind: DemandFlip}}
		},
		func(s *Spec) {
			s.Events = []Event{{Epoch: 3, Kind: DemandFlip}, {Epoch: 1, Kind: DemandFlip}}
		},
	}
	for i, mutate := range cases {
		s := smokeSpec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

// TestBuiltinsValid checks every built-in validates and compiles.
func TestBuiltinsValid(t *testing.T) {
	bs := Builtins()
	if len(bs) < 5 {
		t.Fatalf("only %d builtins", len(bs))
	}
	for _, s := range bs {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if _, err := s.compile(); err != nil {
			t.Errorf("%s: compile: %v", s.Name, err)
		}
	}
	if _, ok := Builtin("leave-wave-10k"); !ok {
		t.Error("leave-wave-10k builtin missing")
	}
	if _, ok := Builtin("no-such"); ok {
		t.Error("bogus builtin found")
	}
}

// TestCompileWaves checks wave compilation respects membership state:
// a leave wave removes alive nodes, the outage empties exactly its
// region, and injected events keep the schedule valid.
func TestCompileWaves(t *testing.T) {
	s := Spec{
		Name: "waves", N: 80, K: 3, Seed: 1, Epochs: 10,
		Events: []Event{
			{Epoch: 2, Kind: LeaveWave, Frac: 0.25},
			{Epoch: 4, Kind: Outage, Region: 2, Regions: 4},
			{Epoch: 6, Kind: Heal, Region: 2, Regions: 4},
		},
	}
	comp, err := s.compile()
	if err != nil {
		t.Fatal(err)
	}
	if comp.sched == nil {
		t.Fatal("membership events need a schedule")
	}
	if err := comp.sched.Validate(); err != nil {
		t.Fatal(err)
	}
	leaves, joins := 0, 0
	regionOff := map[int]bool{}
	for _, e := range comp.sched.Events {
		if e.On {
			joins++
		} else {
			leaves++
		}
		if e.Time == 4 {
			if e.On || e.Node < 40 || e.Node >= 60 {
				t.Fatalf("outage event outside region 2: %+v", e)
			}
			regionOff[e.Node] = true
		}
		if e.Time == 6 && !e.On {
			t.Fatalf("heal emitted a leave: %+v", e)
		}
	}
	// 25% of 80 alive leave in the wave, then the outage takes the
	// region's survivors (20 minus the wave's overlap with the region).
	if leaves < 30 || leaves > 40 {
		t.Fatalf("unexpected leave count: %d", leaves)
	}
	if joins == 0 {
		t.Fatal("heal emitted no joins")
	}
	if len(regionOff) == 0 {
		t.Fatal("outage emitted no events")
	}
	if comp.lastEvent != 6 {
		t.Fatalf("lastEvent = %v, want 6", comp.lastEvent)
	}
}

// TestRunBothEngines runs the smoke spec end-to-end on both engines.
func TestRunBothEngines(t *testing.T) {
	for _, engine := range []string{EngineScale, EngineFull} {
		m, err := Run(smokeSpec(), Options{Engine: engine, Workers: 2})
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if m.Engine != engine || m.Scenario != "smoke" {
			t.Fatalf("%s: bad identity %+v", engine, m)
		}
		if m.Epochs < 5 || len(m.CostPerEpoch) != m.Epochs || len(m.RewiresPerEpoch) != m.Epochs {
			t.Fatalf("%s: inconsistent series: epochs=%d costs=%d rewires=%d",
				engine, m.Epochs, len(m.CostPerEpoch), len(m.RewiresPerEpoch))
		}
		if m.Leaves == 0 || m.Joins == 0 {
			t.Fatalf("%s: events not applied: %+v", engine, m)
		}
		if m.ChurnRate <= 0 {
			t.Fatalf("%s: churn rate %v", engine, m.ChurnRate)
		}
		for e, c := range m.CostPerEpoch {
			if c < 0 {
				t.Fatalf("%s: epoch %d cost unobservable", engine, e)
			}
		}
	}
}

// TestMetricsByteIdenticalAcrossWorkers is the determinism contract of
// the whole harness: identical specs must produce byte-identical
// metric records at any worker count, on both engines.
func TestMetricsByteIdenticalAcrossWorkers(t *testing.T) {
	for _, engine := range []string{EngineScale, EngineFull} {
		a, err := Run(smokeSpec(), Options{Engine: engine, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(smokeSpec(), Options{Engine: engine, Workers: 7})
		if err != nil {
			t.Fatal(err)
		}
		pa := filepath.Join(t.TempDir(), "a.json")
		pb := filepath.Join(t.TempDir(), "b.json")
		if err := WriteMetricsJSON(pa, []*Metrics{a}); err != nil {
			t.Fatal(err)
		}
		if err := WriteMetricsJSON(pb, []*Metrics{b}); err != nil {
			t.Fatal(err)
		}
		da, _ := os.ReadFile(pa)
		db, _ := os.ReadFile(pb)
		if !bytes.Equal(da, db) {
			t.Fatalf("%s: workers 1 vs 7 records differ:\n%s\n%s", engine, da, db)
		}
	}
}

// TestLeaveWaveExpectGate runs the smoke-sized acceptance scenario on
// the scale engine: the 5% leave wave must recover within 3 epochs
// (Run errors otherwise — this is the CI gate).
func TestLeaveWaveExpectGate(t *testing.T) {
	spec, ok := Builtin("leave-wave")
	if !ok {
		t.Fatal("leave-wave builtin missing")
	}
	m, err := Run(spec, Options{Engine: EngineScale, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.RecoveryEpochs < 0 || m.RecoveryEpochs > 3 {
		t.Fatalf("recovery epochs = %d", m.RecoveryEpochs)
	}
	if m.Leaves != 20 { // 5% of 400
		t.Fatalf("leaves = %d, want 20", m.Leaves)
	}
}

// TestExpectViolationErrors checks an unmeetable expectation fails the
// run.
func TestExpectViolationErrors(t *testing.T) {
	s := smokeSpec()
	s.Expect = &Expect{MaxRecoveryEpochs: 1, RecoverWithin: 1e-9}
	if _, err := Run(s, Options{Engine: EngineScale, Workers: 2}); err == nil {
		t.Fatal("impossible expectation passed")
	}
}

// TestWriteMetricsJSONSorted checks records land sorted by
// (scenario, engine) regardless of input order.
func TestWriteMetricsJSONSorted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	recs := []*Metrics{
		{Scenario: "b", Engine: "scale"},
		{Scenario: "a", Engine: "scale"},
		{Scenario: "a", Engine: "full"},
	}
	if err := WriteMetricsJSON(path, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMetricsJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 || back[0].Scenario != "a" || back[0].Engine != "full" ||
		back[1].Engine != "scale" || back[2].Scenario != "b" {
		t.Fatalf("unsorted: %+v", back)
	}
}

// TestLoadDir loads a directory of specs in filename order.
func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	a := smokeSpec()
	a.Name = "alpha"
	b := smokeSpec()
	b.Name = "beta"
	if err := b.Save(filepath.Join(dir, "2-beta.json")); err != nil {
		t.Fatal(err)
	}
	if err := a.Save(filepath.Join(dir, "1-alpha.json")); err != nil {
		t.Fatal(err)
	}
	specs, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Name != "alpha" || specs[1].Name != "beta" {
		t.Fatalf("bad dir load: %+v", specs)
	}
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Fatal("empty dir accepted")
	}
}

// TestCIScenarioSpecsValid guards the committed CI matrix specs: every
// spec in ci/scenarios must parse, validate and compile, and the four
// engine-agnostic smoke scenarios must be present.
func TestCIScenarioSpecsValid(t *testing.T) {
	dir := filepath.Join("..", "..", "ci", "scenarios")
	if _, err := os.Stat(dir); err != nil {
		t.Skipf("no ci/scenarios directory: %v", err)
	}
	specs, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	both := 0
	for _, s := range specs {
		names[s.Name] = true
		if s.Engine == "" {
			both++
		}
		if _, err := s.compile(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	for _, want := range []string{"flash-crowd", "churn-storm", "regional-outage", "demand-flip", "leave-wave"} {
		if !names[want] {
			t.Errorf("CI matrix is missing the %s spec", want)
		}
	}
	if both < 4 {
		t.Errorf("only %d specs run on both engines, the matrix promises >= 4", both)
	}
}
