package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzSpecDecode fuzzes the spec ingestion surface — strict JSON decode
// plus Validate — the exact path every hand-written scenario file takes
// through Load, the CLI tools and the CI matrix. Seeds are the
// committed ci/scenarios corpus plus adversarial shapes. Properties:
// decode+Validate never panic, and a spec that validates must
// round-trip through Marshal into a spec that still validates (a spec
// the harness accepts but cannot re-save losslessly would corrupt
// saved scenario files). Small valid specs must also compile — the
// timeline/churn lowering is the trickiest consumer of a decoded spec.
//
// CI runs this as a short -fuzztime smoke step; run it longer locally
// with: go test ./internal/scenario -run '^$' -fuzz FuzzSpecDecode
func FuzzSpecDecode(f *testing.F) {
	paths, _ := filepath.Glob(filepath.Join("..", "..", "ci", "scenarios", "*.json"))
	for _, p := range paths {
		if data, err := os.ReadFile(p); err == nil {
			f.Add(string(data))
		}
	}
	f.Add(`{}`)
	f.Add(`{"name":"x","n":10,"k":2,"epochs":3}`)
	f.Add(`{"name":"x","n":10,"k":2,"epochs":3,"events":[{"epoch":1,"kind":"leave_wave","frac":0.5}]}`)
	f.Add(`{"name":"x","n":40,"k":3,"epochs":5,"churn":{"process":"pareto","on_mean":2,"off_mean":1,"alpha":-3}}`)
	f.Add(`{"name":"x","n":40,"k":3,"epochs":5,"demand":{"kind":"hotspot","hotspots":-1},"events":[{"epoch":0.5,"kind":"demand_flip"}]}`)
	f.Add(`{"name":"x","n":8,"k":2,"epochs":4,"events":[{"epoch":2,"kind":"outage","region":3,"regions":8}]}`)
	f.Add(`{"name":"", "n":-1,"k":0,"epochs":0}`)
	f.Add(`[1,2,3]`)
	f.Add(`{"name":"x","n":1e9,"k":2,"epochs":3}`)

	f.Fuzz(func(t *testing.T, data string) {
		dec := json.NewDecoder(strings.NewReader(data))
		dec.DisallowUnknownFields()
		var s Spec
		if err := dec.Decode(&s); err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			return
		}
		// Round-trip: re-save, strict re-decode, re-validate.
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("valid spec does not marshal: %v (%+v)", err, s)
		}
		dec2 := json.NewDecoder(strings.NewReader(string(out)))
		dec2.DisallowUnknownFields()
		var s2 Spec
		if err := dec2.Decode(&s2); err != nil {
			t.Fatalf("round-trip decode failed: %v\n%s", err, out)
		}
		if err := s2.Validate(); err != nil {
			t.Fatalf("round-tripped spec no longer validates: %v\n%s", err, out)
		}
		// Compile the timeline/churn lowering for specs small enough to
		// bound the synthetic event count (compile allocates O(n) state
		// and ~n·epochs/(on+off) events; arbitrary valid sizes would turn
		// the fuzzer into a memory stress test instead of a bug hunt).
		if s.N > 200 || s.Epochs > 20 {
			return
		}
		if c := s.Churn; c != nil && c.Process != "static" && (c.OnMean < 0.1 || c.OffMean < 0.1) {
			return
		}
		if _, err := s.compile(); err != nil {
			t.Fatalf("valid small spec failed to compile: %v\n%s", err, out)
		}
	})
}
