package scenario

import (
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// buildEgoistd compiles the real daemon for the deployment tests. The
// lab engine is the one engine that cannot run without a binary.
func buildEgoistd(t *testing.T) string {
	t.Helper()
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go toolchain not on PATH: %v", err)
	}
	bin := filepath.Join(t.TempDir(), "egoistd")
	out, err := exec.Command(goTool, "build", "-o", bin, "egoist/cmd/egoistd").CombinedOutput()
	if err != nil {
		t.Fatalf("go build egoistd: %v\n%s", err, out)
	}
	return bin
}

// TestRunLabSmall deploys a real 10-process fleet through a leave wave
// and checks the whole pipeline: PEX bootstrap, victim kills, per-epoch
// measurement, and the metrics record's lab half. The convergence bound
// is deliberately loose — a 10-node overlay's equilibria are coarse;
// the tight 10% gate runs in CI at n=20 and in the acceptance run at
// n=50.
func TestRunLabSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("deploys a process fleet")
	}
	bin := buildEgoistd(t)
	spec := Spec{
		Name: "lab-unit", Engine: "scale",
		N: 10, K: 2, Seed: 7, Epochs: 3,
		Sample: "demand:8",
		Events: []Event{{Epoch: 1.5, Kind: LeaveWave, Frac: 0.2}},
	}
	m, err := RunLab(spec, LabOptions{
		Bin: bin, Epoch: 300 * time.Millisecond, Bound: 0.6,
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("RunLab: %v", err)
	}
	if m.Engine != EngineLab {
		t.Errorf("engine %q, want %q", m.Engine, EngineLab)
	}
	lab := m.Lab
	if lab == nil {
		t.Fatal("metrics record has no lab half")
	}
	if lab.Processes != 10 {
		t.Errorf("processes %d, want 10", lab.Processes)
	}
	if lab.Kills != 2 || m.Leaves != 2 {
		t.Errorf("kills %d leaves %d, want 2/2 (0.2 of 10)", lab.Kills, m.Leaves)
	}
	if len(m.CostPerEpoch) < spec.Epochs || len(m.CostPerEpoch) != m.Epochs {
		t.Errorf("cost series length %d (epochs %d), want >= %d and equal",
			len(m.CostPerEpoch), m.Epochs, spec.Epochs)
	}
	if len(m.RewiresPerEpoch) != len(m.CostPerEpoch) {
		t.Errorf("rewire series length %d != cost series %d",
			len(m.RewiresPerEpoch), len(m.CostPerEpoch))
	}
	if lab.LabFinalCost <= 0 || lab.SimFinalCost <= 0 {
		t.Errorf("final costs lab=%v sim=%v, want both positive", lab.LabFinalCost, lab.SimFinalCost)
	}
	if lab.BootstrapSeconds <= 0 || lab.WallSeconds <= lab.BootstrapSeconds {
		t.Errorf("clock bookkeeping: bootstrap=%v wall=%v", lab.BootstrapSeconds, lab.WallSeconds)
	}
}

// TestRunLabRejects pins the misconfigurations the lab engine must
// refuse up front, before any process is spawned.
func TestRunLabRejects(t *testing.T) {
	base := Spec{Name: "r", N: 10, K: 2, Seed: 1, Epochs: 3}
	fakeBin := filepath.Join(t.TempDir(), "egoistd")
	if err := os.WriteFile(fakeBin, []byte("#!/bin/sh\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*Spec)
		opts LabOptions
	}{
		{"no binary", func(*Spec) {}, LabOptions{}},
		{"missing binary", func(*Spec) {}, LabOptions{Bin: filepath.Join(t.TempDir(), "nope")}},
		{"background churn", func(s *Spec) {
			s.Churn = &ChurnProcess{Process: "exp", OnMean: 4, OffMean: 1}
		}, LabOptions{Bin: fakeBin}},
		{"non-uniform demand", func(s *Spec) {
			s.Demand = &DemandModel{Kind: "hotspot"}
		}, LabOptions{Bin: fakeBin}},
		{"demand flip event", func(s *Spec) {
			s.Events = []Event{{Epoch: 1, Kind: DemandFlip}}
		}, LabOptions{Bin: fakeBin}},
	}
	for _, tc := range cases {
		spec := base
		tc.mut(&spec)
		if _, err := RunLab(spec, tc.opts); err == nil {
			t.Errorf("%s: accepted, want error", tc.name)
		}
	}
}

// TestLowerLabEventsDeterministic pins the victim-selection contract:
// the lab must draw the exact victims the sim leg's compile() draws, so
// both legs play one membership trajectory.
func TestLowerLabEventsDeterministic(t *testing.T) {
	spec := Spec{
		Name: "d", N: 40, K: 3, Seed: 2008, Epochs: 6,
		Events: []Event{
			{Epoch: 2.3, Kind: LeaveWave, Frac: 0.2},
			{Epoch: 3.1, Kind: JoinWave, Frac: 0.1},
			{Epoch: 4.0, Kind: Outage, Region: 1},
		},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	on1, ev1, last1, err := spec.lowerLabEvents()
	if err != nil {
		t.Fatal(err)
	}
	on2, ev2, last2, err := spec.lowerLabEvents()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(on1, on2) || !reflect.DeepEqual(ev1, ev2) || last1 != last2 {
		t.Fatal("two lowerings of one spec disagree")
	}
	if len(ev1) != 3 || ev1[2].at != 4.0 || last1 != 4.0 {
		t.Fatalf("timeline shape: %+v last=%v", ev1, last1)
	}
	if want := 8; len(ev1[0].victims) != want { // 0.2 of 40 alive
		t.Errorf("leave wave picked %d victims, want %d", len(ev1[0].victims), want)
	}
	for _, v := range ev1[0].victims {
		if v < 0 || v >= spec.N {
			t.Errorf("victim %d out of range", v)
		}
	}
}

// TestParseSampleClamped pins the rescue that keeps shrunken specs
// valid: a sample budget wider than the new roster clamps to n-2.
func TestParseSampleClamped(t *testing.T) {
	got, err := parseSampleClamped("demand:60", 12)
	if err != nil {
		t.Fatal(err)
	}
	if got != "demand:10" {
		t.Errorf("clamped spec %q, want demand:10", got)
	}
	if _, err := parseSampleClamped("bogus", 12); err == nil {
		t.Error("bogus sampling spec accepted")
	}
}
