package scenario

import (
	"path/filepath"
	"testing"
)

// loadFreshnessSpec reads the committed serve-freshness gate spec so
// the tests and the CI job share one source of truth.
func loadFreshnessSpec(t *testing.T) Spec {
	t.Helper()
	spec, err := Load(filepath.Join("..", "..", "ci", "scenarios", "serve-freshness.json"))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestServeFreshnessSubroundGate runs the committed serve-freshness
// spec as CI does: a 25% join wave hits mid-epoch while the data plane
// republishes delta-patched snapshots every stagger sub-round. With
// sub-round staleness only ~1/(stagger+1) of the wave's arrival window
// is served from a snapshot that predates it, so availability must
// hold the spec's 0.99 floor (enforced by the spec's own expect gate
// inside Run).
func TestServeFreshnessSubroundGate(t *testing.T) {
	spec := loadFreshnessSpec(t)
	if spec.Serve == nil || spec.Serve.Publish != PublishSubround {
		t.Fatalf("spec lost its subround publish mode: %+v", spec.Serve)
	}
	if spec.Expect == nil || spec.Expect.MinAvailability < 0.99 {
		t.Fatalf("spec lost its availability gate: %+v", spec.Expect)
	}
	m, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("subround publish: min availability %.4f (per-epoch %v)",
		m.Serve.MinAvailability, m.Serve.AvailabilityPerEpoch)
}

// TestServeFreshnessEpochModeFalsifies is the gate's falsification
// twin: the identical scenario under the old per-epoch publication
// cadence must dip well below the 0.99 floor when the join wave's
// epoch is served from the previous epoch's snapshot — proving the
// gate measures sub-epoch freshness, not an always-true tautology.
func TestServeFreshnessEpochModeFalsifies(t *testing.T) {
	spec := loadFreshnessSpec(t)
	spec.Serve.Publish = PublishEpoch
	spec.Expect = nil
	m, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("epoch publish: min availability %.4f (per-epoch %v)",
		m.Serve.MinAvailability, m.Serve.AvailabilityPerEpoch)
	if m.Serve.MinAvailability >= 0.99 {
		t.Fatalf("per-epoch publication held %.4f availability through the join wave — the freshness gate would be vacuous",
			m.Serve.MinAvailability)
	}
}
