package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"egoist/internal/obs"
	"egoist/internal/sampling"
)

// EngineLab names the real-process deployment engine: the spec's
// timeline replayed against live egoistd daemons on loopback UDP
// instead of a simulated overlay.
const EngineLab = "lab"

// LabOptions configures one real-process deployment run.
type LabOptions struct {
	// Bin is the egoistd binary to deploy (required).
	Bin string
	// N overrides the spec's overlay size (0 keeps it). The sampling
	// spec is clamped to the new roster so small deployments keep
	// near-exact sampling in the reference simulation.
	N int
	// Epoch is the live wiring epoch T (default 2s). The sim leg is
	// epoch-indexed, so only the lab's wall-clock stretches with it.
	Epoch time.Duration
	// Bound is the relative final-cost gap gate against the sim leg
	// (default 0.10): the run fails when
	// |lab - sim| / sim > Bound.
	Bound float64
	// Workers is the sim leg's parallelism (0 = NumCPU).
	Workers int
	// Dir, when non-empty, keeps per-node logs and announce files there;
	// otherwise a temp dir is used and removed on success.
	Dir string
	// MetricsJSON, when non-empty, writes the fleet metrics timeline
	// there: every epoch boundary each reachable daemon's /metrics is
	// scraped and the curated series (probe, PEX, LSA, fault-drop and
	// data-plane counters) are recorded per node. The file is written
	// even when a later gate fails — it is the debugging artifact.
	MetricsJSON string
	// Logf, when non-nil, receives progress output.
	Logf func(format string, args ...interface{})
}

// labScrapeSeries is the per-daemon series kept in the fleet timeline.
// A lab daemon's plane runs unsharded, so the plane query counters
// render unlabeled.
var labScrapeSeries = []string{
	"egoistd_probes_total",
	"egoistd_probe_latency_ns_count",
	"egoistd_pex_peers",
	"egoistd_neighbors",
	"egoistd_lsa_seq",
	"egoistd_rewires_total",
	"egoistd_epochs_total",
	"egoistd_fault_drops_send_total",
	"egoistd_fault_drops_recv_total",
	"plane_queries_onehop_total",
	"plane_queries_route_total",
	"plane_cache_hits_total",
	"plane_cache_misses_total",
	"plane_snapshot_epoch",
}

// LabMetricsSample is one scrape sweep over the fleet: the epoch whose
// boundary triggered it, the wall-clock offset from deployment start,
// and each scraped daemon's curated series. Killed daemons are simply
// absent; isolated ones still answer (the partition drops UDP, not
// HTTP) and show their fault-drop counters climbing.
type LabMetricsSample struct {
	Epoch int                        `json:"epoch"`
	TimeS float64                    `json:"t_seconds"`
	Nodes map[int]map[string]float64 `json:"nodes"`
}

// LabMetrics is the deployment-specific half of a lab run's record:
// what physically happened to the process fleet, and how close its
// converged cost landed to the simulation of the same spec.
type LabMetrics struct {
	// Processes is the peak process count; Kills and Restarts count
	// SIGKILLs and re-launches executed by the timeline; Isolated and
	// Healed count fault-injection (partition) transitions.
	Processes int `json:"processes"`
	Kills     int `json:"kills"`
	Restarts  int `json:"restarts"`
	Isolated  int `json:"isolated"`
	Healed    int `json:"healed"`
	// SimFinalCost and LabFinalCost are the two legs' final per-pair
	// costs; Gap is their relative difference, gated at Bound.
	SimFinalCost float64 `json:"sim_final_cost"`
	LabFinalCost float64 `json:"lab_final_cost"`
	Gap          float64 `json:"gap"`
	Bound        float64 `json:"bound"`
	// MinReachability is the worst per-epoch fraction of measured pairs
	// that were overlay-reachable.
	MinReachability float64 `json:"min_reachability"`
	// BootstrapSeconds is the time from first launch to full PEX
	// membership; WallSeconds the whole deployment's wall clock.
	BootstrapSeconds float64 `json:"bootstrap_seconds"`
	WallSeconds      float64 `json:"wall_seconds"`
}

// labEvent is one timeline entry lowered to concrete victims, chosen
// with the same seeded draw as the sim leg's compile() so both legs
// play the identical membership trajectory.
type labEvent struct {
	at      float64
	kind    string
	victims []int
}

// lowerLabEvents replays the event timeline over the initial
// membership exactly as compile() does — same staticSchedule, same
// per-event RNG derivation, same pickWave — returning per-event victim
// sets the harness can act on. The lab supports static membership only
// (background churn processes need sub-epoch timing fidelity no real
// deployment reproduces deterministically) and uniform demand (live
// nodes measure cost, they do not weigh it).
func (s *Spec) lowerLabEvents() (initialOn []bool, events []labEvent, lastEvent float64, err error) {
	if s.Churn != nil && s.Churn.Process != "static" {
		return nil, nil, 0, fmt.Errorf("scenario %s: lab engine needs static membership, not churn process %q", s.Name, s.Churn.Process)
	}
	if s.Demand != nil && s.Demand.Kind != "uniform" {
		return nil, nil, 0, fmt.Errorf("scenario %s: lab engine measures uniform demand only", s.Name)
	}
	sched := staticSchedule(s)
	initialOn = append([]bool(nil), sched.InitialOn...)
	on := append([]bool(nil), initialOn...)
	lastEvent = -1
	for evi, e := range s.Events {
		if e.Kind == DemandFlip {
			return nil, nil, 0, fmt.Errorf("scenario %s: lab engine cannot flip demand", s.Name)
		}
		rng := rand.New(rand.NewSource(s.Seed + 7919*int64(evi+1)))
		var picked []int
		switch e.Kind {
		case JoinWave:
			picked = pickWave(rng, on, false, int(math.Round(e.Frac*float64(s.N))))
		case LeaveWave:
			alive := 0
			for _, b := range on {
				if b {
					alive++
				}
			}
			picked = pickWave(rng, on, true, int(math.Round(e.Frac*float64(alive))))
		case Outage, Heal:
			regions := e.Regions
			if regions == 0 {
				regions = 4
			}
			lo, hi := e.Region*s.N/regions, (e.Region+1)*s.N/regions
			for v := lo; v < hi; v++ {
				if on[v] == (e.Kind == Outage) {
					picked = append(picked, v)
				}
			}
		}
		turnOn := e.Kind == JoinWave || e.Kind == Heal
		for _, v := range picked {
			on[v] = turnOn
		}
		events = append(events, labEvent{at: e.Epoch, kind: e.Kind, victims: picked})
		lastEvent = e.Epoch
	}
	return initialOn, events, lastEvent, nil
}

// labProc is one deployed daemon.
type labProc struct {
	id       int
	cmd      *exec.Cmd
	udp      string // bound UDP address, reused across restarts
	http     string
	announce string
	logFile  *os.File
	alive    bool
	isolated bool
	rewires  int // last /status reading, for per-epoch deltas
}

// labRun is the running deployment.
type labRun struct {
	spec    *Spec
	opts    LabOptions
	dir     string
	procs   map[int]*labProc
	client  *http.Client
	lab     LabMetrics
	t0      time.Time
	samples []LabMetricsSample
}

// RunLab deploys the spec against real egoistd processes and returns a
// Metrics record with Engine "lab": the reference simulation runs
// first (with the spec's Expect gates applied unchanged), then the
// fleet is launched with PEX bootstrap, the timeline is replayed as
// kills, restarts and injected partitions, per-epoch costs are
// measured from the nodes' own data planes, and the final costs of the
// two legs must agree to within the configured bound.
//
// The Expect block is the sim leg's gate; the lab leg's gate is the
// convergence bound (a 20-process fleet's recovery trajectory is real —
// and therefore noisy — so epoch-indexed recovery expectations apply
// to the deterministic leg only).
func RunLab(spec Spec, opts LabOptions) (*Metrics, error) {
	if opts.Bin == "" {
		return nil, fmt.Errorf("scenario: lab needs the egoistd binary path")
	}
	if _, err := os.Stat(opts.Bin); err != nil {
		return nil, fmt.Errorf("scenario: lab binary: %w", err)
	}
	if opts.Epoch <= 0 {
		opts.Epoch = 2 * time.Second
	}
	if opts.Bound <= 0 {
		opts.Bound = 0.10
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...interface{}) {}
	}
	if err := rescaleForLab(&spec, opts.N); err != nil {
		return nil, err
	}
	initialOn, events, lastEvent, err := spec.lowerLabEvents()
	if err != nil {
		return nil, err
	}

	// Leg 1: the reference simulation, Expect gates and all.
	opts.Logf("lab %s: sim leg (n=%d k=%d epochs=%d)", spec.Name, spec.N, spec.K, spec.Epochs)
	simM, err := Run(spec, Options{Workers: opts.Workers})
	if err != nil {
		return nil, fmt.Errorf("scenario %s: sim leg: %w", spec.Name, err)
	}
	if simM.FinalCost <= 0 {
		return nil, fmt.Errorf("scenario %s: sim leg final cost %v is unobservable — nothing to converge to", spec.Name, simM.FinalCost)
	}

	// Leg 2: the deployment.
	dir := opts.Dir
	if dir == "" {
		dir, err = os.MkdirTemp("", "egoist-lab-")
		if err != nil {
			return nil, err
		}
	}
	r := &labRun{
		spec: &spec, opts: opts, dir: dir,
		procs:  make(map[int]*labProc),
		client: &http.Client{Timeout: 10 * time.Second},
	}
	r.lab.Bound = opts.Bound
	defer r.teardown()
	defer r.writeFleetMetrics()

	m := &Metrics{
		Scenario: spec.Name, Engine: EngineLab,
		N: spec.N, K: spec.K, Seed: spec.Seed,
		Epochs: spec.Epochs,
	}
	start := time.Now()
	if err := r.bootstrap(initialOn); err != nil {
		return nil, fmt.Errorf("scenario %s: lab bootstrap: %w", spec.Name, err)
	}
	r.lab.BootstrapSeconds = time.Since(start).Seconds()
	opts.Logf("lab %s: %d processes bootstrapped in %.1fs", spec.Name, len(r.procs), r.lab.BootstrapSeconds)

	if err := r.playTimeline(events, m); err != nil {
		return nil, fmt.Errorf("scenario %s: lab timeline: %w", spec.Name, err)
	}
	r.lab.WallSeconds = time.Since(start).Seconds()

	// Derive the aggregates the way the sim legs do, then gate on the
	// cross-leg convergence bound.
	finishMetrics(m, &compiled{lastEvent: lastEvent}, spec.recoverTol())
	if n := len(m.RewiresPerEpoch); n > 0 {
		alive := r.aliveCount()
		m.Converged = float64(m.RewiresPerEpoch[n-1]) <= 0.01*float64(alive)
	}
	r.lab.SimFinalCost = simM.FinalCost
	r.lab.LabFinalCost = m.FinalCost
	r.lab.Gap = math.Abs(m.FinalCost-simM.FinalCost) / simM.FinalCost
	m.Lab = &r.lab
	opts.Logf("lab %s: final cost lab=%.2f sim=%.2f gap=%.1f%% (bound %.0f%%)",
		spec.Name, m.FinalCost, simM.FinalCost, r.lab.Gap*100, opts.Bound*100)
	if m.FinalCost <= 0 {
		return m, fmt.Errorf("scenario %s: lab final cost unobservable (no data-plane answers in the last epoch)", spec.Name)
	}
	if r.lab.Gap > opts.Bound {
		return m, fmt.Errorf("scenario %s: lab final cost %.2f vs sim %.2f — gap %.1f%% exceeds the %.0f%% bound",
			spec.Name, m.FinalCost, simM.FinalCost, r.lab.Gap*100, opts.Bound*100)
	}
	if opts.Dir == "" {
		os.RemoveAll(dir)
	}
	return m, nil
}

// rescaleForLab shrinks (or grows) the spec to the requested roster,
// clamping the sample size so small deployments keep near-exact
// sampling in the reference leg.
func rescaleForLab(s *Spec, n int) error {
	if n == 0 || n == s.N {
		return s.Validate()
	}
	if s.Sample != "" {
		sp, err := parseSampleClamped(s.Sample, n)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		s.Sample = sp
	}
	s.N = n
	return s.Validate()
}

// parseSampleClamped clamps a "strategy:m" spec's m to the n-2
// destinations an n-node overlay actually has.
func parseSampleClamped(sample string, n int) (string, error) {
	sp, err := sampling.ParseSpec(sample)
	if err != nil {
		return "", err
	}
	if sp.M > n-2 {
		sp.M = n - 2
	}
	return sp.String(), nil
}

// epsilonFor mirrors the scale engine's default: live nodes get the
// same BR(ε) damping the sim leg plays with.
func (s *Spec) epsilonFor() float64 {
	if s.Epsilon > 0 {
		return s.Epsilon
	}
	return 0.05
}

// bootstrap launches the initially-alive fleet with PEX membership: the
// lowest-id node is the rendezvous (it knows nobody), every other
// launch names up to three already-announced peers, and the barrier
// holds until every node's /status reports the full roster.
func (r *labRun) bootstrap(initialOn []bool) error {
	var ids []int
	for v, on := range initialOn {
		if on {
			ids = append(ids, v)
		}
	}
	if len(ids) < r.spec.K+2 {
		return fmt.Errorf("only %d nodes initially alive, need >= k+2 = %d", len(ids), r.spec.K+2)
	}
	for _, id := range ids {
		if err := r.launch(id, ""); err != nil {
			return err
		}
		if len(r.procs) == 1 {
			// The rendezvous must be addressable before anyone can name it.
			if err := r.awaitAnnounce(r.procs[id], 30*time.Second); err != nil {
				return err
			}
		}
	}
	deadline := 30*time.Second + time.Duration(len(ids))*500*time.Millisecond
	for _, id := range ids {
		if err := r.awaitAnnounce(r.procs[id], deadline); err != nil {
			return err
		}
	}
	return r.awaitMembership(ids, deadline)
}

// launch starts one daemon. bind is empty for a fresh ephemeral port or
// a previous life's address for a restart (UDP ports have no lingering
// state, and re-binding the old port means gossiped address books stay
// valid even before the restart's own announcements spread).
func (r *labRun) launch(id int, bind string) error {
	p := r.procs[id]
	if p == nil {
		p = &labProc{id: id, announce: filepath.Join(r.dir, fmt.Sprintf("node%d.json", id))}
		r.procs[id] = p
		if len(r.procs) > r.lab.Processes {
			r.lab.Processes = len(r.procs)
		}
		logPath := filepath.Join(r.dir, fmt.Sprintf("node%d.log", id))
		f, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		p.logFile = f
	}
	if bind == "" {
		bind = "127.0.0.1:0"
	}
	os.Remove(p.announce) // the poll below must see this life's file
	args := []string{
		"-id", fmt.Sprint(id),
		"-n", fmt.Sprint(r.spec.N),
		"-k", fmt.Sprint(r.spec.K),
		"-bind", bind,
		"-http", "127.0.0.1:0",
		"-epoch", r.opts.Epoch.String(),
		"-epsilon", fmt.Sprint(r.spec.epsilonFor()),
		"-oracle", fmt.Sprintf("lite:%d", r.spec.Seed+1),
		"-announce", p.announce,
	}
	if peers := r.peersFor(id); peers != "" {
		args = append(args, "-peers", peers)
	}
	cmd := exec.Command(r.opts.Bin, args...)
	cmd.Stdout = p.logFile
	cmd.Stderr = p.logFile
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("node %d: %w", id, err)
	}
	p.cmd = cmd
	p.alive = true
	p.isolated = false
	p.rewires = 0
	return nil
}

// peersFor picks up to three rendezvous addresses from already-running
// announced nodes (ascending id, so every launch agrees on the core).
func (r *labRun) peersFor(id int) string {
	var ids []int
	for pid, p := range r.procs {
		if pid != id && p.alive && p.udp != "" {
			ids = append(ids, pid)
		}
	}
	sort.Ints(ids)
	if len(ids) > 3 {
		ids = ids[:3]
	}
	var parts []string
	for _, pid := range ids {
		parts = append(parts, fmt.Sprintf("%d@%s", pid, r.procs[pid].udp))
	}
	return joinComma(parts)
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ","
		}
		out += p
	}
	return out
}

// awaitAnnounce polls for the daemon's ready file and records its
// bound addresses.
func (r *labRun) awaitAnnounce(p *labProc, timeout time.Duration) error {
	stop := time.Now().Add(timeout)
	for {
		data, err := os.ReadFile(p.announce)
		if err == nil {
			var info struct {
				UDP  string `json:"udp"`
				HTTP string `json:"http"`
			}
			if json.Unmarshal(data, &info) == nil && info.UDP != "" && info.HTTP != "" {
				p.udp, p.http = info.UDP, info.HTTP
				return nil
			}
		}
		if time.Now().After(stop) {
			return fmt.Errorf("node %d never announced (see %s)", p.id, p.announce)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// awaitMembership blocks until every listed node's /status knows the
// whole roster — the PEX convergence barrier.
func (r *labRun) awaitMembership(ids []int, timeout time.Duration) error {
	stop := time.Now().Add(timeout)
	for {
		lagging, minKnown := -1, 0
		for _, id := range ids {
			st, err := r.status(r.procs[id])
			if err != nil || len(st.Known) < len(ids)-1 {
				lagging = id
				if st != nil {
					minKnown = len(st.Known)
				}
				break
			}
		}
		if lagging < 0 {
			return nil
		}
		if time.Now().After(stop) {
			return fmt.Errorf("PEX never converged: node %d knows %d of %d peers", lagging, minKnown, len(ids)-1)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

type labStatus struct {
	ID        int   `json:"id"`
	Neighbors []int `json:"neighbors"`
	Known     []int `json:"known"`
	Rewires   int   `json:"rewires"`
}

func (r *labRun) status(p *labProc) (*labStatus, error) {
	resp, err := r.client.Get("http://" + p.http + "/status")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st labStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// playTimeline replays the lowered events against the fleet on the lab
// clock (epoch e fires at t0 + e·T) and measures the overlay at every
// epoch boundary, filling the metrics record's per-epoch series.
func (r *labRun) playTimeline(events []labEvent, m *Metrics) error {
	type step struct {
		at      float64
		event   *labEvent
		measure int // epoch index to measure, -1 for events
	}
	var steps []step
	for i := range events {
		steps = append(steps, step{at: events[i].at, event: &events[i], measure: -1})
	}
	for e := 0; e < r.spec.Epochs; e++ {
		steps = append(steps, step{at: float64(e + 1), measure: e})
	}
	sort.SliceStable(steps, func(a, b int) bool {
		if steps[a].at != steps[b].at {
			return steps[a].at < steps[b].at
		}
		// An event tied with a boundary fires first, as in the engines.
		return steps[a].measure < steps[b].measure
	})
	t0 := time.Now()
	r.t0 = t0
	for _, s := range steps {
		due := t0.Add(time.Duration(s.at * float64(r.opts.Epoch)))
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		if s.event != nil {
			if err := r.apply(s.event, m); err != nil {
				return err
			}
			continue
		}
		cost, rewires := r.measure()
		m.CostPerEpoch = append(m.CostPerEpoch, cost)
		m.RewiresPerEpoch = append(m.RewiresPerEpoch, rewires)
		r.scrapeFleet(s.measure)
		r.opts.Logf("lab %s: epoch %d cost=%.2f rewires=%d alive=%d",
			r.spec.Name, s.measure, cost, rewires, r.aliveCount())
	}

	// Settle window: a real fleet pays for its knowledge — probe rounds,
	// EWMA warm-up, LSA propagation — so it descends slower than the
	// all-seeing sim and is usually still re-wiring when the spec's
	// horizon ends. The convergence gate compares equilibria, not
	// descent speed: keep measuring (no more events fire) until the
	// fleet goes quiet for two consecutive epochs, bounded by one extra
	// horizon.
	settleMax := r.spec.Epochs
	if settleMax < 8 {
		settleMax = 8
	}
	quiet := 0
	for extra := 0; extra < settleMax && quiet < 2; extra++ {
		due := t0.Add(time.Duration(r.spec.Epochs+extra+1) * r.opts.Epoch)
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		cost, rewires := r.measure()
		m.CostPerEpoch = append(m.CostPerEpoch, cost)
		m.RewiresPerEpoch = append(m.RewiresPerEpoch, rewires)
		r.scrapeFleet(r.spec.Epochs + extra)
		if rewires == 0 {
			quiet++
		} else {
			quiet = 0
		}
		r.opts.Logf("lab %s: settle +%d cost=%.2f rewires=%d",
			r.spec.Name, extra+1, cost, rewires)
	}
	m.Epochs = len(m.CostPerEpoch)
	r.dumpWiring()
	return nil
}

// dumpWiring records every alive node's final neighbor set and delay
// estimates to wiring.json in the run directory — kept when the caller
// supplied -dir, and the raw material for pricing the deployed overlay
// against the oracle offline.
func (r *labRun) dumpWiring() {
	type nodeDump struct {
		Neighbors []int           `json:"neighbors"`
		Estimates map[int]float64 `json:"estimates_ms"`
	}
	dump := struct {
		N     int              `json:"n"`
		Alive []int            `json:"alive"`
		Nodes map[int]nodeDump `json:"nodes"`
	}{N: r.spec.N, Alive: r.aliveIDs(), Nodes: map[int]nodeDump{}}
	for _, id := range dump.Alive {
		resp, err := r.client.Get("http://" + r.procs[id].http + "/status")
		if err != nil {
			continue
		}
		var st struct {
			Neighbors []int           `json:"neighbors"`
			Estimates map[int]float64 `json:"estimates_ms"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err == nil {
			dump.Nodes[id] = nodeDump{Neighbors: st.Neighbors, Estimates: st.Estimates}
		}
	}
	if data, err := json.MarshalIndent(dump, "", " "); err == nil {
		_ = os.WriteFile(filepath.Join(r.dir, "wiring.json"), data, 0o644)
	}
}

// apply executes one timeline event against the fleet.
func (r *labRun) apply(e *labEvent, m *Metrics) error {
	r.opts.Logf("lab %s: epoch %.1f %s -> %v", r.spec.Name, e.at, e.kind, e.victims)
	for _, v := range e.victims {
		switch e.kind {
		case LeaveWave:
			r.kill(v)
			m.Leaves++
		case JoinWave:
			if err := r.restart(v); err != nil {
				return err
			}
			m.Joins++
		case Outage:
			if err := r.isolate(v, true); err != nil {
				return err
			}
			m.Leaves++
		case Heal:
			if err := r.isolate(v, false); err != nil {
				return err
			}
			m.Joins++
		}
	}
	return nil
}

// kill SIGKILLs a node — no goodbye, exactly the failure the protocol's
// staleness rules must absorb.
func (r *labRun) kill(id int) {
	p := r.procs[id]
	if p == nil || !p.alive {
		return
	}
	_ = p.cmd.Process.Kill()
	_, _ = p.cmd.Process.Wait()
	p.alive = false
	r.lab.Kills++
}

// restart brings a node (back) up. A reborn node re-binds its old UDP
// port — gossiped books stay valid — and bootstraps from whichever
// three nodes are currently alive; its clock-derived LSA sequence base
// supersedes its previous life.
func (r *labRun) restart(id int) error {
	bind := ""
	if p := r.procs[id]; p != nil {
		if p.alive {
			return nil
		}
		bind = p.udp
	}
	if err := r.launch(id, bind); err != nil {
		return err
	}
	if err := r.awaitAnnounce(r.procs[id], 30*time.Second); err != nil {
		return err
	}
	r.lab.Restarts++
	return nil
}

// isolate injects (or clears) a full partition around a node via its
// /ctl/drop endpoint: every peer is dropped on both send and receive,
// so the process stays up but falls silent — the outage model.
func (r *labRun) isolate(id int, on bool) error {
	p := r.procs[id]
	if p == nil || !p.alive {
		return nil
	}
	peers := []int{}
	if on {
		for v := 0; v < r.spec.N; v++ {
			if v != id {
				peers = append(peers, v)
			}
		}
	}
	body, _ := json.Marshal(map[string][]int{"peers": peers})
	resp, err := r.client.Post("http://"+p.http+"/ctl/drop", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("node %d drop ctl: %w", id, err)
	}
	resp.Body.Close()
	p.isolated = on
	if on {
		r.lab.Isolated++
	} else {
		r.lab.Healed++
	}
	return nil
}

// aliveIDs is the measurable roster: running and not partitioned away.
func (r *labRun) aliveIDs() []int {
	var ids []int
	for id, p := range r.procs {
		if p.alive && !p.isolated {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

func (r *labRun) aliveCount() int { return len(r.aliveIDs()) }

// measure asks every alive node's own data plane for its routed cost
// to every other alive node and aggregates the same statistic the sim
// legs report: the mean over nodes of the full-roster routed cost,
// normalized per destination pair. Unreachable pairs are excluded from
// the sum (the sim's equivalent penalty would drown the signal) and
// tracked via MinReachability instead. Also drains each node's rewire
// counter delta for the epoch's churn measure.
func (r *labRun) measure() (cost float64, rewires int) {
	ids := r.aliveIDs()
	if len(ids) < 2 {
		return -1, 0
	}
	type nodeResult struct {
		sum       float64
		ok        bool
		reachable int
		rewires   int
	}
	results := make([]nodeResult, len(ids))
	var wg sync.WaitGroup
	for idx, id := range ids {
		wg.Add(1)
		go func(idx, id int) {
			defer wg.Done()
			p := r.procs[id]
			pairs := make([][2]int, 0, len(ids)-1)
			for _, j := range ids {
				if j != id {
					pairs = append(pairs, [2]int{id, j})
				}
			}
			body, _ := json.Marshal(map[string]interface{}{"mode": "route", "pairs": pairs})
			resp, err := r.client.Post("http://"+p.http+"/routes", "application/json", bytes.NewReader(body))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			var batch struct {
				Results []struct {
					Cost float64 `json:"cost"`
					Ok   bool    `json:"ok"`
				} `json:"results"`
			}
			if json.NewDecoder(resp.Body).Decode(&batch) != nil {
				return
			}
			nr := nodeResult{ok: true}
			for _, res := range batch.Results {
				if res.Ok {
					nr.sum += res.Cost
					nr.reachable++
				}
			}
			if st, err := r.status(p); err == nil {
				nr.rewires = st.Rewires - p.rewires
				p.rewires = st.Rewires
			}
			results[idx] = nr
		}(idx, id)
	}
	wg.Wait()

	responded, reachable, pairs := 0, 0, 0
	total := 0.0
	for _, nr := range results {
		if !nr.ok {
			continue
		}
		responded++
		total += nr.sum
		reachable += nr.reachable
		pairs += len(ids) - 1
		if nr.rewires > 0 {
			rewires += nr.rewires
		}
	}
	if responded == 0 || pairs == 0 {
		return -1, rewires
	}
	frac := float64(reachable) / float64(pairs)
	if r.lab.MinReachability == 0 || frac < r.lab.MinReachability {
		r.lab.MinReachability = frac
	}
	return total / float64(responded) / float64(len(ids)-1), rewires
}

// scrapeFleet sweeps every running daemon's /metrics endpoint (HTTP
// still answers inside an injected partition) and appends one fleet
// sample. Scrape failures skip the node — a daemon dying mid-sweep is
// exactly the kind of moment the timeline should record, not abort on.
func (r *labRun) scrapeFleet(epoch int) {
	if r.opts.MetricsJSON == "" {
		return
	}
	var ids []int
	for id, p := range r.procs {
		if p.alive {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	nodes := make([]map[string]float64, len(ids))
	var wg sync.WaitGroup
	for idx, id := range ids {
		wg.Add(1)
		go func(idx, id int) {
			defer wg.Done()
			resp, err := r.client.Get("http://" + r.procs[id].http + "/metrics")
			if err != nil {
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				return
			}
			all := obs.ParsePrometheus(buf.Bytes())
			kept := make(map[string]float64, len(labScrapeSeries))
			for _, name := range labScrapeSeries {
				if v, ok := all[name]; ok {
					kept[name] = v
				}
			}
			nodes[idx] = kept
		}(idx, id)
	}
	wg.Wait()
	sample := LabMetricsSample{
		Epoch: epoch,
		TimeS: time.Since(r.t0).Seconds(),
		Nodes: make(map[int]map[string]float64, len(ids)),
	}
	for idx, id := range ids {
		if nodes[idx] != nil {
			sample.Nodes[id] = nodes[idx]
		}
	}
	r.samples = append(r.samples, sample)
}

// writeFleetMetrics dumps the accumulated scrape timeline. Runs on the
// RunLab defer so a failed convergence gate still leaves the artifact.
func (r *labRun) writeFleetMetrics() {
	if r.opts.MetricsJSON == "" || len(r.samples) == 0 {
		return
	}
	dump := struct {
		Scenario string             `json:"scenario"`
		N        int                `json:"n"`
		EpochSec float64            `json:"epoch_seconds"`
		Series   []string           `json:"series"`
		Samples  []LabMetricsSample `json:"samples"`
	}{
		Scenario: r.spec.Name, N: r.spec.N,
		EpochSec: r.opts.Epoch.Seconds(),
		Series:   labScrapeSeries,
		Samples:  r.samples,
	}
	data, err := json.MarshalIndent(dump, "", " ")
	if err != nil {
		return
	}
	if err := os.WriteFile(r.opts.MetricsJSON, append(data, '\n'), 0o644); err != nil {
		r.opts.Logf("lab %s: fleet metrics write: %v", r.spec.Name, err)
		return
	}
	r.opts.Logf("lab %s: fleet metrics timeline (%d samples) written to %s",
		r.spec.Name, len(r.samples), r.opts.MetricsJSON)
}

// teardown kills the whole fleet and closes its logs.
func (r *labRun) teardown() {
	for _, p := range r.procs {
		if p.alive && p.cmd != nil && p.cmd.Process != nil {
			_ = p.cmd.Process.Kill()
			_, _ = p.cmd.Process.Wait()
		}
		if p.logFile != nil {
			p.logFile.Close()
		}
	}
}
