package scenario

import (
	"fmt"
	"testing"

	"egoist/internal/plane"
	"egoist/internal/sampling"
	"egoist/internal/sim"
	"egoist/internal/underlay"
)

// This file is the delta-publication correctness suite: for every
// committed CI scenario spec, a sub-epoch Patch chain driven by the
// scale engine's OnPublish stream must stay digest-identical to a
// from-scratch Compile at every single publication, at any (shards,
// workers) combination — and the publication digest stream itself must
// be byte-identical across those combinations.

// deltaDigestStream runs one spec on the scale engine with a delta
// subscriber attached: every publication extends the Patch chain,
// byte-compares its digest against a fresh Compile of the same wiring,
// and records it. A couple of routes are warmed per publication so the
// row-cache carry-over path runs against real churn, not just the
// synthetic plane tests.
func deltaDigestStream(t *testing.T, spec Spec, workers, shards int) []string {
	t.Helper()
	sampleStr := spec.Sample
	if sampleStr == "" {
		t.Fatalf("spec %s: CI specs pin their sampling", spec.Name)
	}
	sample, err := sampling.ParseSpec(sampleStr)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := spec.compile()
	if err != nil {
		t.Fatal(err)
	}
	// The engine's own default oracle, constructed explicitly (same
	// constructor, same arguments) so Compile prices arcs identically.
	net, err := underlay.NewLite(spec.N, spec.Seed+1)
	if err != nil {
		t.Fatal(err)
	}
	var stream []string
	var cur *plane.Snapshot
	var seq int64
	cfg := sim.ScaleConfig{
		N: spec.N, K: spec.K, Seed: spec.Seed,
		Sample: sample, Epsilon: spec.Epsilon,
		MaxEpochs: spec.Epochs, Workers: workers, Shards: shards,
		StaggerBatches: spec.Stagger,
		Churn:          comp.sched,
		DemandAt:       comp.demandAt,
		Net:            net,
		OnPublish: func(pub sim.Publication) {
			if pub.Full {
				cur = plane.Compile(seq, pub.Wiring, pub.Active, net, plane.Options{})
			} else {
				cur = cur.Patch(seq, pub.Changed, pub.Wiring, pub.Active)
			}
			seq++
			fresh := plane.Compile(seq, pub.Wiring, pub.Active, net, plane.Options{})
			got, want := cur.Digest(), fresh.Digest()
			if got != want {
				t.Fatalf("spec %s workers=%d shards=%d: patched chain diverged from Compile at publication (%d,%d): %x vs %x",
					spec.Name, workers, shards, pub.Epoch, pub.SubRound, got, want)
			}
			stream = append(stream, fmt.Sprintf("%d %d %x", pub.Epoch, pub.SubRound, got))
			if n := cur.N(); n >= 2 {
				// Warm two deterministic rows for the next Patch to carry
				// or invalidate.
				src := int(seq*13) % n
				cur.RouteCost(src, (src+1)%n)
				cur.RouteCost((src+7)%n, src)
			}
		},
	}
	if len(spec.Events) > 0 {
		cfg.ConvergedFrac = -1
	}
	if _, err := sim.RunScale(cfg); err != nil {
		t.Fatal(err)
	}
	if len(stream) == 0 {
		t.Fatalf("spec %s: no publications fired", spec.Name)
	}
	return stream
}

// TestDeltaPatchDigestEquivalence pins the tentpole contract across
// the whole committed scenario corpus at shards {1,4} × workers {1,4}.
func TestDeltaPatchDigestEquivalence(t *testing.T) {
	for _, spec := range ciSpecs(t) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			ref := deltaDigestStream(t, spec, 1, 1)
			for _, ws := range [][2]int{{4, 1}, {1, 4}, {4, 4}} {
				got := deltaDigestStream(t, spec, ws[0], ws[1])
				if len(got) != len(ref) {
					t.Fatalf("workers=%d shards=%d: %d publications vs %d at workers=1 shards=1",
						ws[0], ws[1], len(got), len(ref))
				}
				for i := range got {
					if got[i] != ref[i] {
						t.Fatalf("workers=%d shards=%d: publication %d digest diverged:\n%s\n%s",
							ws[0], ws[1], i, got[i], ref[i])
					}
				}
			}
		})
	}
}
