package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// svg colors cycled across series.
var svgColors = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// RenderSVG writes the figure as a standalone SVG line chart, so the
// harness can regenerate the paper's plots visually, not just as tables.
func RenderSVG(w io.Writer, fig *Figure) error {
	const (
		width, height    = 640, 420
		marginL, marginR = 70, 180
		marginT, marginB = 50, 50
		plotW            = width - marginL - marginR
		plotH            = height - marginT - marginB
	)
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range fig.Series {
		for i := range s.X {
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return fmt.Errorf("experiments: figure %s has no data", fig.ID)
	}
	if minY > 0 && minY < 1 && maxY > 1 {
		minY = math.Min(minY, 0) // ratio plots look better anchored
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	// Pad the y range slightly.
	pad := (maxY - minY) * 0.05
	minY -= pad
	maxY += pad

	px := func(x float64) float64 { return marginL + (x-minX)/(maxX-minX)*plotW }
	py := func(y float64) float64 { return marginT + plotH - (y-minY)/(maxY-minY)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="14" font-weight="bold">Figure %s: %s</text>`+"\n",
		marginL, fig.ID, escape(fig.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, marginT+plotH)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, height-12, escape(fig.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" font-family="sans-serif" font-size="11" transform="rotate(-90 16 %d)" text-anchor="middle">%s</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2, escape(fig.YLabel))

	// Ticks: 5 on each axis.
	for t := 0; t <= 4; t++ {
		xv := minX + (maxX-minX)*float64(t)/4
		yv := minY + (maxY-minY)*float64(t)/4
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`+"\n",
			px(xv), marginT+plotH+16, trimFloat(xv))
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`+"\n",
			marginL-6, py(yv)+3, trimFloat(yv))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`+"\n",
			marginL, py(yv), marginL+plotW, py(yv))
	}

	// Series.
	for si, s := range fig.Series {
		color := svgColors[si%len(svgColors)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
			strings.Join(pts, " "), color)
		for i := range s.X {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.6" fill="%s"/>`+"\n", px(s.X[i]), py(s.Y[i]), color)
		}
		// Legend.
		ly := marginT + 16*si
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			marginL+plotW+10, ly, marginL+plotW+30, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			marginL+plotW+36, ly+4, escape(s.Label))
	}
	if fig.Notes != "" {
		fmt.Fprintf(&b, `<text x="%d" y="38" font-family="sans-serif" font-size="10" fill="#555555">%s</text>`+"\n",
			marginL, escape(fig.Notes))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
