package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Render writes a figure as an aligned text table: one row per X value,
// one column per series. Time-series figures (many X values) are
// downsampled to at most maxRows rows.
func Render(w io.Writer, fig *Figure, maxRows int) error {
	if maxRows <= 0 {
		maxRows = 30
	}
	if _, err := fmt.Fprintf(w, "Figure %s: %s\n", fig.ID, fig.Title); err != nil {
		return err
	}
	if fig.Notes != "" {
		if _, err := fmt.Fprintf(w, "  (%s)\n", fig.Notes); err != nil {
			return err
		}
	}
	if len(fig.Series) == 0 {
		_, err := fmt.Fprintln(w, "  <no data>")
		return err
	}

	// Collect the union of X values in first-series order (all series share
	// X in practice; Overhead-style figures have scalar series).
	xs := fig.Series[0].X
	header := []string{fig.XLabel}
	for _, s := range fig.Series {
		header = append(header, s.Label)
	}
	rows := [][]string{header}
	step := 1
	if len(xs) > maxRows {
		step = (len(xs) + maxRows - 1) / maxRows
	}
	for i := 0; i < len(xs); i += step {
		row := []string{trimFloat(xs[i])}
		for _, s := range fig.Series {
			if i < len(s.Y) {
				row = append(row, trimFloat(s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}

	widths := make([]int, len(header))
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		b.WriteString("  ")
		for c, cell := range row {
			if c > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[c], cell)
		}
		if _, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}
