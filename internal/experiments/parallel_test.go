package experiments

import (
	"reflect"
	"testing"
)

// figsToPin are Quick-scale figures whose bytes must not depend on the
// worker count. Fig1a exercises the (k, policy) grid including the
// full-mesh column; 2b the pre-generated churn schedules; 5 the sampling
// (m, rep) grid with shared base graphs.
var figsToPin = []string{"1a", "2b", "5"}

// TestFigureBytesIndependentOfWorkers reruns figures with the pool forced
// to one worker and to eight and requires identical output — the
// experiment-level analogue of the simulator's Workers determinism
// contract. Under -race this also drives concurrent sim.Run / RunNewcomer
// over shared inputs (delay matrices, churn schedules, base graphs).
func TestFigureBytesIndependentOfWorkers(t *testing.T) {
	t.Cleanup(func() { SetWorkers(0) })
	for _, id := range figsToPin {
		t.Run(id, func(t *testing.T) {
			runner := Registry[id]
			if runner == nil {
				t.Fatalf("figure %s not registered", id)
			}
			SetWorkers(1)
			seq, err := runner(Quick)
			if err != nil {
				t.Fatal(err)
			}
			SetWorkers(8)
			par, err := runner(Quick)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("figure %s differs between 1 and 8 workers:\nseq: %+v\npar: %+v", id, seq, par)
			}
		})
	}
}

// TestSetWorkersRoundTrips pins the knob's semantics.
func TestSetWorkersRoundTrips(t *testing.T) {
	t.Cleanup(func() { SetWorkers(0) })
	SetWorkers(5)
	if Workers() != 5 {
		t.Fatalf("Workers() = %d after SetWorkers(5)", Workers())
	}
	SetWorkers(0)
	if Workers() != 0 {
		t.Fatalf("Workers() = %d after SetWorkers(0)", Workers())
	}
}
