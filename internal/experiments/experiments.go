// Package experiments reproduces every figure of the paper's evaluation
// (Sect. 4–6). Each FigXX function runs the workload behind one figure and
// returns its data series in the same normalization the paper plots.
// cmd/egoist-bench prints them; bench_test.go wraps them in testing.B
// benchmarks; EXPERIMENTS.md records the measured shapes next to the
// paper's.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"

	"egoist/internal/apps"
	"egoist/internal/cheat"
	"egoist/internal/churn"
	"egoist/internal/core"
	"egoist/internal/graph"
	"egoist/internal/measure"
	"egoist/internal/par"
	"egoist/internal/sim"
	"egoist/internal/topology"
	"egoist/internal/underlay"
)

// workers is the figure-level parallelism knob (0 = runtime.NumCPU()).
var workers atomic.Int64

// SetWorkers sets how many simulations a figure may run concurrently;
// values <= 0 restore the default of runtime.NumCPU(). Figure output is
// identical for any setting: every simulation in a sweep is independently
// seeded and results are merged in a fixed order, so the knob only changes
// wall-clock time.
func SetWorkers(n int) { workers.Store(int64(n)) }

// Workers reports the current figure-level parallelism (0 = NumCPU).
func Workers() int { return int(workers.Load()) }

// forEach runs fn(i) for every i in [0, n) over the experiment worker
// pool, returning the lowest-indexed error. Callers collect results into
// index i of a slice, which keeps merge order — and therefore figure
// bytes — independent of scheduling.
func forEach(n int, fn func(i int) error) error {
	return par.DoErr(n, Workers(), func(_, i int) error { return fn(i) })
}

// Scale selects experiment effort.
type Scale int

const (
	// Quick shrinks sizes and epochs for CI and benchmarks.
	Quick Scale = iota
	// Full matches the paper's dimensions (n=50 deployment, n=295
	// simulations, full k sweeps).
	Full
)

// Series is one plotted curve.
type Series struct {
	Label string
	X     []float64
	Y     []float64
	// Err holds 95% confidence half-widths when available (may be nil).
	Err []float64
}

// Figure is one reproduced figure.
type Figure struct {
	ID     string // e.g. "1a"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  string
}

// params bundles the scale-dependent dimensions.
type params struct {
	n          int
	ks         []int
	warm, meas int
	bigN       int // sampling-simulation size
	sampleMs   []int
	reps       int
	longEpochs int
	seed       int64
}

func (s Scale) params() params {
	if s == Full {
		return params{
			n:    50,
			ks:   []int{2, 3, 4, 5, 6, 7, 8},
			warm: 15, meas: 10,
			bigN:       296,
			sampleMs:   []int{6, 8, 10, 12, 14, 16, 18, 20},
			reps:       11,
			longEpochs: 300,
			seed:       2008,
		}
	}
	return params{
		n:    26,
		ks:   []int{2, 4, 6},
		warm: 5, meas: 4,
		bigN:       80,
		sampleMs:   []int{6, 12, 20},
		reps:       3,
		longEpochs: 40,
		seed:       2008,
	}
}

// fig1Policies are the curves of Fig. 1 (full mesh only in panel a).
var fig1Policies = []struct {
	label  string
	policy func() core.Policy
	cycle  bool
}{
	{"k-Random", func() core.Policy { return core.KRandom{} }, true},
	{"k-Regular", func() core.Policy { return core.KRegular{} }, false},
	{"k-Closest", func() core.Policy { return core.KClosest{} }, true},
}

// runPolicy runs one (policy, metric, k) simulation. Figures parallelize
// across whole simulations (forEach), so each individual run stays on the
// sequential engine: one level of parallelism, no oversubscription.
func runPolicy(p params, metric sim.Metric, policy core.Policy, cycle bool, k int, opts func(*sim.Config)) (*sim.Result, error) {
	cfg := sim.Config{
		N: p.n, K: k, Seed: p.seed, Metric: metric, Policy: policy,
		WarmEpochs: p.warm, MeasureEpochs: p.meas, EnforceCycle: cycle,
		Workers: 1,
	}
	if opts != nil {
		opts(&cfg)
	}
	return sim.Run(cfg)
}

// fig1 builds one Fig. 1 panel: per-policy cost normalized by BR vs k.
func fig1(p params, id, title string, metric sim.Metric, includeMesh bool) (*Figure, error) {
	fig := &Figure{
		ID: id, Title: title,
		XLabel: "k", YLabel: "Individual cost / BR cost",
	}
	if metric == sim.Bandwidth {
		fig.YLabel = "Total Av.Bwth / BR Av.Bwth"
	}
	type curve struct {
		label string
		ys    []float64
	}
	curves := []curve{}
	for _, pol := range fig1Policies {
		curves = append(curves, curve{label: pol.label})
	}
	if includeMesh {
		curves = append(curves, curve{label: "Full mesh"})
	}
	// One job per (k, policy) cell, BR first in each k-column, plus — the
	// full-mesh baseline does not depend on k — a single mesh job at the
	// end; every run is independent, so the whole sweep fans out over the
	// pool and results merge back by index.
	type jobSpec struct {
		policy core.Policy
		cycle  bool
		k      int
	}
	cols := 1 + len(fig1Policies)
	jobs := make([]jobSpec, 0, len(p.ks)*cols+1)
	for _, k := range p.ks {
		jobs = append(jobs, jobSpec{core.BRPolicy{}, false, k})
		for _, pol := range fig1Policies {
			jobs = append(jobs, jobSpec{pol.policy(), pol.cycle, k})
		}
	}
	if includeMesh {
		jobs = append(jobs, jobSpec{core.FullMesh{}, false, p.n - 1})
	}
	results := make([]*sim.Result, len(jobs))
	if err := forEach(len(jobs), func(i int) error {
		var err error
		results[i], err = runPolicy(p, metric, jobs[i].policy, jobs[i].cycle, jobs[i].k, nil)
		return err
	}); err != nil {
		return nil, err
	}
	xs := make([]float64, 0, len(p.ks))
	for ki, k := range p.ks {
		base := ki * cols
		br := results[base]
		xs = append(xs, float64(k))
		for ci := range fig1Policies {
			curves[ci].ys = append(curves[ci].ys, results[base+1+ci].Cost.Mean/br.Cost.Mean)
		}
		if includeMesh {
			mesh := results[len(results)-1]
			curves[len(curves)-1].ys = append(curves[len(curves)-1].ys, mesh.Cost.Mean/br.Cost.Mean)
		}
	}
	for _, c := range curves {
		fig.Series = append(fig.Series, Series{Label: c.label, X: xs, Y: c.ys})
	}
	return fig, nil
}

// Fig1a reproduces Fig. 1 top-left: delay via ping, with the full-mesh
// lower bound.
func Fig1a(s Scale) (*Figure, error) {
	return fig1(s.params(), "1a", "Normalized cost vs k — metric: delay (ping)", sim.DelayPing, true)
}

// Fig1b reproduces Fig. 1 top-right: delay via the coordinate system.
func Fig1b(s Scale) (*Figure, error) {
	return fig1(s.params(), "1b", "Normalized cost vs k — metric: delay (coords)", sim.DelayCoords, false)
}

// Fig1c reproduces Fig. 1 bottom-left: node load.
func Fig1c(s Scale) (*Figure, error) {
	return fig1(s.params(), "1c", "Normalized cost vs k — metric: system load", sim.Load, false)
}

// Fig1d reproduces Fig. 1 bottom-right: available bandwidth (ratios <= 1,
// larger is better).
func Fig1d(s Scale) (*Figure, error) {
	return fig1(s.params(), "1d", "Normalized bandwidth vs k — metric: available bandwidth", sim.Bandwidth, false)
}

// churnPolicies are the Fig. 2 curves (normalized against plain BR).
var churnPolicies = []struct {
	label  string
	policy func() core.Policy
	cycle  bool
}{
	{"k-Random", func() core.Policy { return core.KRandom{} }, true},
	{"k-Regular", func() core.Policy { return core.KRegular{} }, false},
	{"k-Closest", func() core.Policy { return core.KClosest{} }, true},
	{"HybridBR", func() core.Policy { return core.BRPolicy{Donated: 2} }, false},
}

// traceChurn builds the moderate "PlanetLab-like" schedule of Fig. 2 left.
func traceChurn(p params, seed int64) (*churn.Schedule, error) {
	return churn.GenerateSynthetic(churn.SyntheticConfig{
		N:       p.n,
		Horizon: float64(p.warm + p.meas),
		On:      churn.Pareto{Mean: 25, Alpha: 1.8},
		Off:     churn.Exponential{Mean: 3},
		Seed:    seed,
		StartOn: 0.9,
	})
}

// Fig2a reproduces Fig. 2 left: efficiency normalized by BR vs k under
// trace-driven churn.
func Fig2a(s Scale) (*Figure, error) {
	p := s.params()
	fig := &Figure{
		ID: "2a", Title: "Efficiency / BR efficiency vs k — trace-driven churn",
		XLabel: "k", YLabel: "Node efficiency / BR efficiency",
	}
	sched, err := traceChurn(p, p.seed+21)
	if err != nil {
		return nil, err
	}
	ks := p.ks
	if s == Full {
		ks = []int{3, 4, 5, 6, 7, 8} // paper's Fig. 2 left starts at k=3
	}
	cols := 1 + len(churnPolicies)
	results := make([]*sim.Result, len(ks)*cols)
	if err := forEach(len(results), func(i int) error {
		k := ks[i/cols]
		policy, cycle := core.Policy(core.BRPolicy{}), false
		if ci := i%cols - 1; ci >= 0 {
			policy, cycle = churnPolicies[ci].policy(), churnPolicies[ci].cycle
		}
		var err error
		results[i], err = runPolicy(p, sim.DelayPing, policy, cycle, k, func(c *sim.Config) { c.Churn = sched })
		return err
	}); err != nil {
		return nil, err
	}
	curves := make([][]float64, len(churnPolicies))
	xs := []float64{}
	for ki, k := range ks {
		br := results[ki*cols]
		xs = append(xs, float64(k))
		for ci := range churnPolicies {
			res := results[ki*cols+1+ci]
			curves[ci] = append(curves[ci], res.Efficiency.Mean/br.Efficiency.Mean)
		}
	}
	for ci, pol := range churnPolicies {
		fig.Series = append(fig.Series, Series{Label: pol.label, X: xs, Y: curves[ci]})
	}
	fig.Notes = fmt.Sprintf("churn rate %.4f per epoch", sched.Rate(float64(p.warm+p.meas)))
	return fig, nil
}

// Fig2b reproduces Fig. 2 right: efficiency normalized by BR vs churn rate
// at fixed k=5 (k=3 at Quick scale).
func Fig2b(s Scale) (*Figure, error) {
	p := s.params()
	k := 5
	if s == Quick {
		k = 3
	}
	fig := &Figure{
		ID: "2b", Title: fmt.Sprintf("Efficiency / BR efficiency vs churn — k=%d", k),
		XLabel: "churn (events/epoch, normalized)", YLabel: "Node efficiency / BR efficiency",
	}
	// Target churn rates per epoch: mean session+gap = 2/rate.
	targets := []float64{0.002, 0.02, 0.2, 1, 3}
	if s == Quick {
		targets = []float64{0.02, 0.5}
	}
	curves := make([][]float64, len(churnPolicies))
	var xs []float64
	horizon := float64(p.warm + p.meas)
	// Schedules are generated up front (their seeds are fixed per target),
	// then the (target, policy) grid fans out over the pool.
	scheds := make([]*churn.Schedule, len(targets))
	for ti, target := range targets {
		total := 2 / target
		sched, err := churn.GenerateSynthetic(churn.SyntheticConfig{
			N: p.n, Horizon: horizon,
			On:   churn.Exponential{Mean: total * 5 / 6},
			Off:  churn.Exponential{Mean: total / 6},
			Seed: p.seed + 31,
		})
		if err != nil {
			return nil, err
		}
		scheds[ti] = sched
		xs = append(xs, sched.Rate(horizon))
	}
	cols := 1 + len(churnPolicies)
	results := make([]*sim.Result, len(targets)*cols)
	if err := forEach(len(results), func(i int) error {
		sched := scheds[i/cols]
		policy, cycle := core.Policy(core.BRPolicy{}), false
		if ci := i%cols - 1; ci >= 0 {
			policy, cycle = churnPolicies[ci].policy(), churnPolicies[ci].cycle
		}
		var err error
		results[i], err = runPolicy(p, sim.DelayPing, policy, cycle, k, func(c *sim.Config) { c.Churn = sched })
		return err
	}); err != nil {
		return nil, err
	}
	for ti := range targets {
		br := results[ti*cols]
		for ci := range churnPolicies {
			res := results[ti*cols+1+ci]
			curves[ci] = append(curves[ci], res.Efficiency.Mean/br.Efficiency.Mean)
		}
	}
	for ci, pol := range churnPolicies {
		fig.Series = append(fig.Series, Series{Label: pol.label, X: xs, Y: curves[ci]})
	}
	return fig, nil
}

// Fig3a reproduces Fig. 3 left: total re-wirings per epoch over time for a
// range of k.
func Fig3a(s Scale) (*Figure, error) {
	p := s.params()
	fig := &Figure{
		ID: "3a", Title: "Total re-wirings per epoch over time (BR, delay)",
		XLabel: "epoch", YLabel: "re-wirings per epoch",
	}
	ks := []int{2, 3, 5, 8}
	if s == Quick {
		ks = []int{2, 4}
	}
	results := make([]*sim.Result, len(ks))
	if err := forEach(len(ks), func(i int) error {
		var err error
		results[i], err = sim.Run(sim.Config{
			N: p.n, K: ks[i], Seed: p.seed, Metric: sim.DelayPing, Policy: core.BRPolicy{},
			WarmEpochs: 0, MeasureEpochs: p.longEpochs, Workers: 1,
		})
		return err
	}); err != nil {
		return nil, err
	}
	for ki, k := range ks {
		per := results[ki].Rewires.PerEpoch()
		xs := make([]float64, len(per))
		ys := make([]float64, len(per))
		for i, v := range per {
			xs[i], ys[i] = float64(i), float64(v)
		}
		fig.Series = append(fig.Series, Series{Label: fmt.Sprintf("k=%d", k), X: xs, Y: ys})
	}
	return fig, nil
}

// fig3Tradeoff runs BR(eps) across k and reports normalized cost against
// full mesh alongside steady-state re-wirings (Fig. 3 center/right).
func fig3Tradeoff(p params, id string, eps float64) (*Figure, error) {
	label := "BR"
	if eps > 0 {
		label = fmt.Sprintf("BR(%.1f)", eps)
	}
	fig := &Figure{
		ID: id, Title: fmt.Sprintf("%s cost vs full mesh, and re-wirings, vs k", label),
		XLabel: "k", YLabel: "normalized cost / re-wirings per epoch",
	}
	// One BR run per k plus a single full-mesh baseline (it does not
	// depend on k), all fanned out together.
	var xs, costRatio, rewires []float64
	brs := make([]*sim.Result, len(p.ks))
	var mesh *sim.Result
	if err := forEach(len(p.ks)+1, func(i int) error {
		var err error
		if i == len(p.ks) {
			mesh, err = runPolicy(p, sim.DelayPing, core.FullMesh{}, false, p.n-1, nil)
		} else {
			brs[i], err = runPolicy(p, sim.DelayPing, core.BRPolicy{}, false, p.ks[i], func(c *sim.Config) {
				c.Epsilon = eps
				c.WarmEpochs = 0
				c.MeasureEpochs = p.warm + p.meas
			})
		}
		return err
	}); err != nil {
		return nil, err
	}
	for ki, k := range p.ks {
		xs = append(xs, float64(k))
		costRatio = append(costRatio, brs[ki].Cost.Mean/mesh.Cost.Mean)
		rewires = append(rewires, brs[ki].Rewires.Tail(0.5))
	}
	fig.Series = append(fig.Series,
		Series{Label: label + " cost / full-mesh cost", X: xs, Y: costRatio},
		Series{Label: label + " re-wirings (steady)", X: xs, Y: rewires},
	)
	return fig, nil
}

// Fig3b reproduces Fig. 3 center: exact BR cost versus full mesh plus
// re-wiring rate.
func Fig3b(s Scale) (*Figure, error) { return fig3Tradeoff(s.params(), "3b", 0) }

// Fig3c reproduces Fig. 3 right: the same trade-off for BR(ε = 10%).
func Fig3c(s Scale) (*Figure, error) { return fig3Tradeoff(s.params(), "3c", 0.10) }

// fig4Run measures per-node cost with a cheat model and without, returning
// (free-rider ratio, non-free-rider ratio).
func fig4Run(p params, k int, model *cheat.Model) (riders, others float64, err error) {
	honest, err := runPolicy(p, sim.DelayPing, core.BRPolicy{}, false, k, nil)
	if err != nil {
		return 0, 0, err
	}
	cheated, err := runPolicy(p, sim.DelayPing, core.BRPolicy{}, false, k, func(c *sim.Config) { c.Cheat = model })
	if err != nil {
		return 0, 0, err
	}
	isCheater := map[int]bool{}
	for _, c := range model.Cheaters() {
		isCheater[c] = true
	}
	var riderRatios, otherRatios []float64
	for i := 0; i < p.n; i++ {
		if honest.PerNodeCost[i] == 0 || math.IsNaN(honest.PerNodeCost[i]) || math.IsNaN(cheated.PerNodeCost[i]) {
			continue
		}
		r := cheated.PerNodeCost[i] / honest.PerNodeCost[i]
		if isCheater[i] {
			riderRatios = append(riderRatios, r)
		} else {
			otherRatios = append(otherRatios, r)
		}
	}
	return measure.Summarize(riderRatios).Mean, measure.Summarize(otherRatios).Mean, nil
}

// Fig4a reproduces Fig. 4 left: a single free rider announcing 2× costs,
// versus k.
func Fig4a(s Scale) (*Figure, error) {
	p := s.params()
	fig := &Figure{
		ID: "4a", Title: "One free rider (2x inflation): cost ratio vs k",
		XLabel: "k", YLabel: "individual cost / cost without free rider",
	}
	xs := make([]float64, len(p.ks))
	riders := make([]float64, len(p.ks))
	others := make([]float64, len(p.ks))
	if err := forEach(len(p.ks), func(i int) error {
		k := p.ks[i]
		r, o, err := fig4Run(p, k, cheat.Single(p.n, p.n/3, 2))
		xs[i], riders[i], others[i] = float64(k), r, o
		return err
	}); err != nil {
		return nil, err
	}
	fig.Series = append(fig.Series,
		Series{Label: "Free rider", X: xs, Y: riders},
		Series{Label: "Non free riders", X: xs, Y: others},
	)
	return fig, nil
}

// Fig4b reproduces Fig. 4 right: a growing free-rider population at k=2.
func Fig4b(s Scale) (*Figure, error) {
	p := s.params()
	fig := &Figure{
		ID: "4b", Title: "Many free riders (k=2): cost ratio vs population",
		XLabel: "free riders", YLabel: "individual cost / cost without free riders",
	}
	pops := []int{2, 4, 8, 12, 16}
	if s == Quick {
		pops = []int{2, 6}
	}
	// Cheater populations draw from one shared stream, so the models are
	// built sequentially up front; the simulations then fan out.
	rng := rand.New(rand.NewSource(p.seed + 41))
	models := make([]*cheat.Model, len(pops))
	for pi, pop := range pops {
		models[pi] = cheat.Population(p.n, pop, 2, rng)
	}
	xs := make([]float64, len(pops))
	riders := make([]float64, len(pops))
	others := make([]float64, len(pops))
	if err := forEach(len(pops), func(i int) error {
		r, o, err := fig4Run(p, 2, models[i])
		xs[i], riders[i], others[i] = float64(pops[i]), r, o
		return err
	}); err != nil {
		return nil, err
	}
	fig.Series = append(fig.Series,
		Series{Label: "Free riders", X: xs, Y: riders},
		Series{Label: "Non free riders", X: xs, Y: others},
	)
	return fig, nil
}

// graphBase pairs a pre-grown base graph with the seed that grew it.
type graphBase struct {
	g    *graph.Digraph
	seed int64
}

// samplingDelayMatrix builds the n=295-site stand-in for the all-pairs
// ping trace: the geographic underlay's quiescent delays.
func samplingDelayMatrix(n int, seed int64) (topology.DelayMatrix, error) {
	u, err := underlay.New(underlay.Config{N: n, Seed: seed})
	if err != nil {
		return nil, err
	}
	m := topology.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m[i][j] = u.Delay(i, j)
			}
		}
	}
	return m, nil
}

// figSampling builds one of Figs. 5–8 for a base-graph policy.
func figSampling(p params, id string, grow sim.GrowPolicy) (*Figure, error) {
	delays, err := samplingDelayMatrix(p.bigN, p.seed+51)
	if err != nil {
		return nil, err
	}
	return figSamplingOn(p, id, grow, delays)
}

// figSamplingOn builds a sampling figure over an explicit delay matrix.
func figSamplingOn(p params, id string, grow sim.GrowPolicy, delays topology.DelayMatrix) (*Figure, error) {
	fig := &Figure{
		ID:     id,
		Title:  fmt.Sprintf("Newcomer cost vs sample size on a %v graph (n=%d, k=3, r=2)", grow, p.bigN-1),
		XLabel: "size of the sample", YLabel: "newcomer's cost / BR-no-sampling cost",
	}
	strategies := []sim.NewcomerStrategy{
		sim.NewcomerKRandom, sim.NewcomerKRegular, sim.NewcomerKClosest,
		sim.NewcomerBR, sim.NewcomerBRtp,
	}
	// Base graphs depend only on (delays, grow, seed): grow each rep's once
	// and share it across the sample-size sweep. Growing is independent per
	// rep, so it fans out over the pool.
	bases := make([]*graphBase, p.reps)
	if err := forEach(p.reps, func(rep int) error {
		cfg := sim.NewcomerConfig{
			Delays: delays, K: 3, Grow: grow,
			SampleSize: 6, Seed: p.seed + int64(rep)*97,
		}
		g, err := sim.GrowBase(cfg)
		if err != nil {
			return err
		}
		bases[rep] = &graphBase{g: g, seed: cfg.Seed}
		return nil
	}); err != nil {
		return nil, err
	}
	// The (sample size, repetition) grid is this package's biggest sweep;
	// every cell is an independent newcomer simulation.
	cells := make([]*sim.NewcomerResult, len(p.sampleMs)*p.reps)
	if err := forEach(len(cells), func(i int) error {
		m, rep := p.sampleMs[i/p.reps], i%p.reps
		var err error
		cells[i], err = sim.RunNewcomer(sim.NewcomerConfig{
			Delays: delays, K: 3, Grow: grow,
			SampleSize: m, SamplePrime: 4 * m, Radius: 2,
			Seed: bases[rep].seed, Base: bases[rep].g,
		})
		return err
	}); err != nil {
		return nil, err
	}
	curves := make(map[sim.NewcomerStrategy][]float64)
	var xs []float64
	for mi, m := range p.sampleMs {
		xs = append(xs, float64(m))
		acc := map[sim.NewcomerStrategy][]float64{}
		for rep := 0; rep < p.reps; rep++ {
			res := cells[mi*p.reps+rep]
			for _, st := range strategies {
				acc[st] = append(acc[st], res.Ratio[st])
			}
		}
		// Median across repetitions: a rare pre-sample that misses every
		// good candidate produces an outlier that would swamp a mean.
		for _, st := range strategies {
			curves[st] = append(curves[st], measure.Median(acc[st]))
		}
	}
	for _, st := range strategies {
		fig.Series = append(fig.Series, Series{Label: st.String(), X: xs, Y: curves[st]})
	}
	fig.Notes = "median over repetitions; m' = 4m pre-samples"
	return fig, nil
}

// Fig5 reproduces Fig. 5: sampling strategies joining a BR-grown graph.
func Fig5(s Scale) (*Figure, error) { return figSampling(s.params(), "5", sim.GrowBR) }

// Fig5BRITE repeats Fig. 5 on a BRITE-like (Barabási–Albert) topology —
// the paper reports that results on BRITE and AS topologies "were
// similar" to the PlanetLab trace.
func Fig5BRITE(s Scale) (*Figure, error) {
	p := s.params()
	fig, err := figSamplingOn(p, "5brite", sim.GrowBR,
		topology.BarabasiAlbert(p.bigN, 2, rand.New(rand.NewSource(p.seed+53))))
	if err != nil {
		return nil, err
	}
	fig.Title = fmt.Sprintf("Newcomer cost vs sample size on a BR graph over a BRITE-like topology (n=%d)", p.bigN-1)
	return fig, nil
}

// Fig6 reproduces Fig. 6: joining a k-Random graph.
func Fig6(s Scale) (*Figure, error) { return figSampling(s.params(), "6", sim.GrowKRandom) }

// Fig7 reproduces Fig. 7: joining a k-Regular graph.
func Fig7(s Scale) (*Figure, error) { return figSampling(s.params(), "7", sim.GrowKRegular) }

// Fig8 reproduces Fig. 8: joining a k-Closest graph.
func Fig8(s Scale) (*Figure, error) { return figSampling(s.params(), "8", sim.GrowKClosest) }

// Fig10 reproduces Fig. 10: available-bandwidth gain vs k for multipath
// transfer via first-hop neighbors and for full multipath redirection.
func Fig10(s Scale) (*Figure, error) {
	p := s.params()
	fig := &Figure{
		ID: "10", Title: "Available bandwidth gain vs k (multipath transfer)",
		XLabel: "k", YLabel: "available bandwidth gain",
	}
	u, err := underlay.New(underlay.Config{N: p.n, Seed: p.seed + 61})
	if err != nil {
		return nil, err
	}
	var xs, parallel, redirect []float64
	for _, k := range p.ks {
		res, err := runPolicy(p, sim.Bandwidth, core.BRPolicy{}, false, k, func(c *sim.Config) {
			c.UnderlaySeed = p.seed + 61
		})
		if err != nil {
			return nil, err
		}
		par, mf, err := apps.SweepMultipathGain(u, res.FinalWiring)
		if err != nil {
			return nil, err
		}
		xs = append(xs, float64(k))
		parallel = append(parallel, par.Mean)
		redirect = append(redirect, mf.Mean)
	}
	fig.Series = append(fig.Series,
		Series{Label: "source establ. parallel connections", X: xs, Y: parallel},
		Series{Label: "peers allow multipath redirections", X: xs, Y: redirect},
	)
	return fig, nil
}

// Fig11 reproduces Fig. 11: number of vertex-disjoint paths vs k on the
// delay-based overlay.
func Fig11(s Scale) (*Figure, error) {
	p := s.params()
	fig := &Figure{
		ID: "11", Title: "Number of disjoint paths vs k (delay overlay)",
		XLabel: "k", YLabel: "number of disjoint paths",
	}
	var xs, ys []float64
	for _, k := range p.ks {
		res, err := runPolicy(p, sim.DelayPing, core.BRPolicy{}, false, k, nil)
		if err != nil {
			return nil, err
		}
		stats, err := apps.SweepDisjointPaths(res.FinalWiring)
		if err != nil {
			return nil, err
		}
		xs = append(xs, float64(k))
		ys = append(ys, stats.Mean)
	}
	fig.Series = append(fig.Series, Series{Label: "disjoint paths", X: xs, Y: ys})
	return fig, nil
}

// Streaming is the Sect. 6.2 "future work" experiment the paper sketches:
// duplicate real-time packets over vertex-disjoint overlay paths and
// measure the fraction arriving before the playout deadline, as a
// function of the number of copies, under per-hop loss.
func Streaming(s Scale) (*Figure, error) {
	p := s.params()
	fig := &Figure{
		ID: "streaming", Title: "In-time delivery vs duplicated copies (Sect. 6.2 extension)",
		XLabel: "copies over disjoint paths", YLabel: "fraction in time",
	}
	u, err := underlay.New(underlay.Config{N: p.n, Seed: p.seed + 71})
	if err != nil {
		return nil, err
	}
	k := 5
	if s == Quick {
		k = 3
	}
	res, err := runPolicy(p, sim.DelayPing, core.BRPolicy{}, false, k, func(c *sim.Config) {
		c.UnderlaySeed = p.seed + 71
	})
	if err != nil {
		return nil, err
	}
	maxCopies := k
	pairs := 20
	if s == Quick {
		pairs = 8
	}
	for _, loss := range []float64{0.02, 0.10} {
		curve, err := apps.StreamSweep(apps.StreamingConfig{
			Wiring:     res.FinalWiring,
			Delay:      u.Delay,
			DeadlineMS: 400,
			LossPerHop: loss,
			JitterFrac: 0.1,
			Packets:    200,
			Seed:       p.seed,
			Copies:     1,
		}, maxCopies, pairs)
		if err != nil {
			return nil, err
		}
		xs := make([]float64, len(curve))
		for i := range xs {
			xs[i] = float64(i + 1)
		}
		fig.Series = append(fig.Series, Series{
			Label: fmt.Sprintf("%.0f%% per-hop loss", loss*100),
			X:     xs, Y: curve,
		})
	}
	return fig, nil
}

// Overhead reproduces the protocol-overhead accounting of Sect. 4.3:
// analytic bps-per-node formulas next to the simulator's measured traffic.
func Overhead(s Scale) (*Figure, error) {
	p := s.params()
	k := 5
	if s == Quick {
		k = 3
	}
	const epochSeconds = 60.0   // T
	const announceSeconds = 20. // Tannounce
	fig := &Figure{
		ID: "overhead", Title: fmt.Sprintf("Protocol overhead (n=%d, k=%d, T=60s)", p.n, k),
		XLabel: "quantity", YLabel: "bits per second per node",
	}
	res, err := runPolicy(p, sim.DelayPing, core.BRPolicy{}, false, k, nil)
	if err != nil {
		return nil, err
	}
	epochs := float64(res.EpochsRun)
	perNodePerSec := func(totalBits float64) float64 {
		return totalBits / float64(p.n) / (epochs * epochSeconds)
	}
	analyticPing := float64(p.n-k-1) * 320 / epochSeconds
	analyticLSA := (192 + 32*float64(k)) / announceSeconds
	fig.Series = append(fig.Series,
		Series{Label: "ping (analytic)", X: []float64{0}, Y: []float64{analyticPing}},
		Series{Label: "ping (measured)", X: []float64{0}, Y: []float64{perNodePerSec(res.ProbeBits["ping"])}},
		Series{Label: "LSA (analytic)", X: []float64{1}, Y: []float64{analyticLSA}},
		Series{Label: "LSA (measured)", X: []float64{1}, Y: []float64{perNodePerSec(res.LSABits)}},
	)
	fig.Notes = "coord query analytic: (320+32n)/T bps = " +
		fmt.Sprintf("%.1f", (320+32*float64(p.n))/epochSeconds)
	return fig, nil
}

// Registry maps figure ids to their runners.
var Registry = map[string]func(Scale) (*Figure, error){
	"1a": Fig1a, "1b": Fig1b, "1c": Fig1c, "1d": Fig1d,
	"2a": Fig2a, "2b": Fig2b,
	"3a": Fig3a, "3b": Fig3b, "3c": Fig3c,
	"4a": Fig4a, "4b": Fig4b,
	"5": Fig5, "5brite": Fig5BRITE, "6": Fig6, "7": Fig7, "8": Fig8,
	"10": Fig10, "11": Fig11,
	"overhead": Overhead, "streaming": Streaming,
	"scale": FigScale, "gap": FigScaleGap, "churnscale": FigChurnScale,
}

// IDs returns the registry's figure ids in a stable order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
