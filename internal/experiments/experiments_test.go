package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// checkFigure validates basic shape invariants every figure must satisfy.
func checkFigure(t *testing.T, fig *Figure) {
	t.Helper()
	if fig.ID == "" || fig.Title == "" {
		t.Fatalf("figure missing id/title: %+v", fig)
	}
	if len(fig.Series) == 0 {
		t.Fatalf("figure %s has no series", fig.ID)
	}
	for _, s := range fig.Series {
		if len(s.X) != len(s.Y) {
			t.Fatalf("figure %s series %q: |X|=%d |Y|=%d", fig.ID, s.Label, len(s.X), len(s.Y))
		}
		if len(s.Y) == 0 {
			t.Fatalf("figure %s series %q empty", fig.ID, s.Label)
		}
		for i, y := range s.Y {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				t.Fatalf("figure %s series %q y[%d] = %v", fig.ID, s.Label, i, y)
			}
		}
	}
}

func series(fig *Figure, label string) *Series {
	for i := range fig.Series {
		if fig.Series[i].Label == label {
			return &fig.Series[i]
		}
	}
	return nil
}

func TestFig1aShape(t *testing.T) {
	fig, err := Fig1a(Quick)
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig)
	// Heuristics should cost >= BR (ratios >= ~1).
	for _, label := range []string{"k-Random", "k-Regular", "k-Closest"} {
		s := series(fig, label)
		if s == nil {
			t.Fatalf("missing series %s", label)
		}
		for i, y := range s.Y {
			if y < 0.95 {
				t.Errorf("%s ratio[%d] = %.3f; BR should win on delay", label, i, y)
			}
		}
	}
	// Full mesh should be at or below BR (ratio <= ~1).
	mesh := series(fig, "Full mesh")
	if mesh == nil {
		t.Fatal("missing full mesh series")
	}
	for i, y := range mesh.Y {
		if y > 1.1 {
			t.Errorf("full mesh ratio[%d] = %.3f; should lower-bound BR", i, y)
		}
	}
}

func TestFig1dBandwidthRatiosAtMostOne(t *testing.T) {
	fig, err := Fig1d(Quick)
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig)
	for _, s := range fig.Series {
		for i, y := range s.Y {
			if y > 1.05 {
				t.Errorf("%s bandwidth ratio[%d] = %.3f > 1; BR should have most bandwidth", s.Label, i, y)
			}
		}
	}
}

func TestFig2aShape(t *testing.T) {
	fig, err := Fig2a(Quick)
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig)
	if series(fig, "HybridBR") == nil {
		t.Fatal("missing HybridBR series")
	}
	if !strings.Contains(fig.Notes, "churn rate") {
		t.Fatalf("notes missing churn rate: %q", fig.Notes)
	}
}

func TestFig3aRewiringsDecay(t *testing.T) {
	fig, err := Fig3a(Quick)
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig)
	for _, s := range fig.Series {
		n := len(s.Y)
		early, late := 0.0, 0.0
		for _, v := range s.Y[:n/4] {
			early += v
		}
		for _, v := range s.Y[n-n/4:] {
			late += v
		}
		if late > early {
			t.Errorf("%s: re-wirings grew over time (early %.0f late %.0f)", s.Label, early, late)
		}
	}
}

func TestFig3cEpsilonCutsRewirings(t *testing.T) {
	plain, err := Fig3b(Quick)
	if err != nil {
		t.Fatal(err)
	}
	eps, err := Fig3c(Quick)
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, plain)
	checkFigure(t, eps)
	sum := func(f *Figure, label string) float64 {
		s := series(f, label)
		total := 0.0
		for _, y := range s.Y {
			total += y
		}
		return total
	}
	if sum(eps, "BR(0.1) re-wirings (steady)") > sum(plain, "BR re-wirings (steady)")+1e-9 {
		t.Error("BR(0.1) did not reduce steady-state re-wirings")
	}
}

func TestFig4RatiosNearOne(t *testing.T) {
	for _, f := range []func(Scale) (*Figure, error){Fig4a, Fig4b} {
		fig, err := f(Quick)
		if err != nil {
			t.Fatal(err)
		}
		checkFigure(t, fig)
		for _, s := range fig.Series {
			for i, y := range s.Y {
				if y < 0.5 || y > 1.5 {
					t.Errorf("fig %s %s ratio[%d] = %.2f; cheating impact should be bounded",
						fig.ID, s.Label, i, y)
				}
			}
		}
	}
}

func TestFig5SamplingShape(t *testing.T) {
	fig, err := Fig5(Quick)
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig)
	br := series(fig, "BR")
	brtp := series(fig, "BRtp")
	krand := series(fig, "k-Random")
	if br == nil || brtp == nil || krand == nil {
		t.Fatal("missing series")
	}
	// Averaged over reps, sampled BR should beat sampled k-Random.
	avg := func(s *Series) float64 {
		t := 0.0
		for _, y := range s.Y {
			t += y
		}
		return t / float64(len(s.Y))
	}
	if avg(br) >= avg(krand) {
		t.Errorf("sampled BR mean %.3f not below k-Random %.3f", avg(br), avg(krand))
	}
	// All ratios >= ~1 (cannot beat BR-no-sampling).
	for _, s := range fig.Series {
		for i, y := range s.Y {
			if y < 0.98 {
				t.Errorf("%s ratio[%d] = %.3f below 1", s.Label, i, y)
			}
		}
	}
}

func TestFig10GainsGrowWithK(t *testing.T) {
	fig, err := Fig10(Quick)
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig)
	par := series(fig, "source establ. parallel connections")
	mf := series(fig, "peers allow multipath redirections")
	if par == nil || mf == nil {
		t.Fatal("missing series")
	}
	for i := range par.Y {
		if par.Y[i] < 1 {
			t.Errorf("parallel gain[%d] = %.2f < 1", i, par.Y[i])
		}
		if mf.Y[i] < par.Y[i]-1e-9 {
			t.Errorf("redirection gain[%d] = %.2f below parallel %.2f", i, mf.Y[i], par.Y[i])
		}
	}
	if par.Y[len(par.Y)-1] < par.Y[0] {
		t.Error("parallel gain should not shrink with k")
	}
}

func TestFig11DisjointPathsGrowWithK(t *testing.T) {
	fig, err := Fig11(Quick)
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig)
	ys := fig.Series[0].Y
	if ys[len(ys)-1] <= ys[0] {
		t.Errorf("disjoint paths did not grow with k: %v", ys)
	}
}

func TestOverheadAnalyticVsMeasured(t *testing.T) {
	fig, err := Overhead(Quick)
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig)
	get := func(label string) float64 {
		s := series(fig, label)
		if s == nil {
			t.Fatalf("missing %s", label)
		}
		return s.Y[0]
	}
	pa, pm := get("ping (analytic)"), get("ping (measured)")
	if pm <= 0 || pa <= 0 {
		t.Fatalf("ping overheads: analytic %v measured %v", pa, pm)
	}
	// Measured includes probing of established links too, so it is the
	// same order of magnitude but not identical.
	if pm > pa*10 || pm < pa/10 {
		t.Errorf("ping measured %v far from analytic %v", pm, pa)
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"1a", "1b", "1c", "1d", "2a", "2b", "3a", "3b", "3c", "4a", "4b", "5", "5brite", "6", "7", "8", "10", "11", "overhead", "streaming", "scale", "gap", "churnscale"}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registry has %d figures, want %d: %v", len(ids), len(want), ids)
	}
	for _, w := range want {
		if Registry[w] == nil {
			t.Fatalf("registry missing %s", w)
		}
	}
}

func TestRenderProducesTable(t *testing.T) {
	fig := &Figure{
		ID: "t", Title: "test", XLabel: "k",
		Series: []Series{
			{Label: "a", X: []float64{1, 2}, Y: []float64{1.5, 2.5}},
			{Label: "b", X: []float64{1, 2}, Y: []float64{3, 4}},
		},
		Notes: "hello",
	}
	var buf bytes.Buffer
	if err := Render(&buf, fig, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure t", "hello", "a", "b", "1.5", "2.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderDownsamples(t *testing.T) {
	xs := make([]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		xs[i], ys[i] = float64(i), float64(i)
	}
	fig := &Figure{ID: "big", Title: "big", XLabel: "t",
		Series: []Series{{Label: "v", X: xs, Y: ys}}}
	var buf bytes.Buffer
	if err := Render(&buf, fig, 10); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines > 20 {
		t.Fatalf("rendered %d lines; want downsampled to ~12", lines)
	}
}

func TestStreamingExtensionShape(t *testing.T) {
	fig, err := Streaming(Quick)
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig)
	for _, s := range fig.Series {
		if s.Y[len(s.Y)-1] < s.Y[0] {
			t.Errorf("%s: in-time delivery fell with more copies: %v", s.Label, s.Y)
		}
		for i, y := range s.Y {
			if y < 0 || y > 1 {
				t.Errorf("%s: fraction out of range at %d: %v", s.Label, i, y)
			}
		}
	}
}

func TestFig5BRITEShape(t *testing.T) {
	fig, err := Fig5BRITE(Quick)
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig)
	if series(fig, "BRtp") == nil {
		t.Fatal("missing BRtp series")
	}
}
