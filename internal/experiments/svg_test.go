package experiments

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"
)

func testFigure() *Figure {
	return &Figure{
		ID: "t", Title: "test & <figure>", XLabel: "k", YLabel: "ratio",
		Series: []Series{
			{Label: "a", X: []float64{1, 2, 3}, Y: []float64{1.5, 2.5, 2.0}},
			{Label: "b \"quoted\"", X: []float64{1, 2, 3}, Y: []float64{3, 4, 5}},
		},
		Notes: "notes",
	}
}

func TestRenderSVGWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderSVG(&buf, testFigure()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") {
		t.Fatalf("not an svg: %.60s", out)
	}
	// Must be well-formed XML despite special characters in labels.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
	for _, want := range []string{"polyline", "Figure t", "&amp;", "circle"} {
		if !strings.Contains(out, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
}

func TestRenderSVGEmptyFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderSVG(&buf, &Figure{ID: "e", Title: "empty"}); err == nil {
		t.Fatal("empty figure accepted")
	}
}

func TestRenderSVGDegenerateRanges(t *testing.T) {
	fig := &Figure{
		ID: "d", Title: "flat",
		Series: []Series{{Label: "c", X: []float64{5, 5}, Y: []float64{2, 2}}},
	}
	var buf bytes.Buffer
	if err := RenderSVG(&buf, fig); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Fatal("NaN coordinates in degenerate-range svg")
	}
}
