package experiments

import (
	"fmt"

	"egoist/internal/scenario"
)

// FigChurnScale is the churn-at-scale recovery figure: the scale
// engine's per-epoch cost and re-wiring activity through a 5% leave
// wave, the dynamic-membership generalization of the paper's Sect. 4.4
// robustness experiments. The curve shape is the claim: a spike at the
// wave epoch, then recovery to the pre-event converged cost within a
// few epochs, paid for with re-wirings proportional to the churn.
func FigChurnScale(s Scale) (*Figure, error) {
	n, k, sample := 400, 4, "demand:60"
	if s == Full {
		n, k, sample = 1000, 8, "demand:50"
	}
	spec := scenario.Spec{
		Name: "leave-wave-fig", N: n, K: k, Seed: 2008, Epochs: 8,
		Engine: scenario.EngineScale, Sample: sample,
		Events: []scenario.Event{{Epoch: 4.3, Kind: scenario.LeaveWave, Frac: 0.05}},
	}
	m, err := scenario.Run(spec, scenario.Options{Workers: Workers()})
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "churnscale",
		Title:  fmt.Sprintf("Churn at scale: 5%% leave wave at epoch 4 (n=%d, k=%d)", n, k),
		XLabel: "epoch",
		YLabel: "mean estimated cost / re-wiring nodes",
	}
	var xs, costs, rewires []float64
	for e := 0; e < m.Epochs; e++ {
		xs = append(xs, float64(e))
		costs = append(costs, m.CostPerEpoch[e])
		rewires = append(rewires, float64(m.RewiresPerEpoch[e]))
	}
	fig.Series = append(fig.Series,
		Series{Label: "mean estimated cost", X: xs, Y: costs},
		Series{Label: "re-wiring nodes", X: xs, Y: rewires},
	)
	fig.Notes = fmt.Sprintf(
		"pre-event cost %.1f, recovery within %d epoch(s); churn metric %.4f, %d leaves",
		m.PreEventCost, m.RecoveryEpochs, m.ChurnRate, m.Leaves)
	return fig, nil
}
