package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"egoist/internal/sampling"
	"egoist/internal/sim"
)

// TestMeasureScale checks the scale-run measurement produces a sane
// benchmark record.
func TestMeasureScale(t *testing.T) {
	res, rec, err := MeasureScale(sim.ScaleConfig{
		N: 150, K: 3, Seed: 1,
		Sample:    sampling.Spec{Strategy: sampling.Demand, M: 30},
		MaxEpochs: 2, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs == 0 || rec.N != res.Epochs {
		t.Fatalf("record N %d vs epochs %d", rec.N, res.Epochs)
	}
	if rec.NsPerOp <= 0 {
		t.Fatalf("non-positive ns/op: %f", rec.NsPerOp)
	}
	if rec.Name != "scale/n=150/demand:30" {
		t.Fatalf("unexpected record name %q", rec.Name)
	}
}

// TestBenchJSONRoundTrip checks the artifact write/read cycle.
func TestBenchJSONRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	in := []BenchRecord{
		{Name: "b/two", NsPerOp: 2, AllocsPerOp: 1, N: 3},
		{Name: "a/one", NsPerOp: 1, N: 9},
	}
	if err := WriteBenchJSON(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadBenchJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Name != "a/one" || out[1].NsPerOp != 2 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	data, _ := os.ReadFile(path)
	for _, key := range []string{`"name"`, `"ns_per_op"`, `"allocs_per_op"`, `"n"`} {
		if !contains(string(data), key) {
			t.Fatalf("artifact missing %s: %s", key, data)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestFigScaleGapQuick runs the gap figure at quick scale and checks the
// sampled curves stay within a sane factor of the full-roster baseline.
func TestFigScaleGapQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run figure")
	}
	fig, err := FigScaleGap(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("want 3 strategy series, got %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.X) == 0 || len(s.Err) != len(s.Y) {
			t.Fatalf("series %s malformed", s.Label)
		}
		last := s.Y[len(s.Y)-1] // largest sample size: closest to full
		if last > 10 {
			t.Errorf("series %s: gap ratio %f at m=%v — sampled dynamics diverged", s.Label, last, s.X[len(s.X)-1])
		}
	}
}
