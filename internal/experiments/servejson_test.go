package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

func TestServeJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_serve.json")
	recs := []ServeRecord{
		{Name: "publish_full", N: 100, K: 4, Epoch: 2, Clients: 1,
			Seconds: 1.5, Lookups: 10, QPS: 6.7, P50us: 700, P90us: 900, P99us: 1100},
		{Name: "publish_delta", N: 100, K: 4, Epoch: 2, Clients: 1,
			Seconds: 0.2, Lookups: 10, QPS: 50, P50us: 150, P90us: 200, P99us: 400},
	}
	if err := WriteServeJSON(path, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadServeJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != recs[0] || got[1] != recs[1] {
		t.Fatalf("round trip mangled records: %+v", got)
	}
	if _, err := ReadServeJSON(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file read succeeded")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadServeJSON(bad); err == nil {
		t.Fatal("non-JSON artifact accepted")
	}
}

func TestReadServeBaseline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	body := `{"min_onehop_qps": 100000, "max_delta_publish_frac": 0.25}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	bl, err := ReadServeBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if bl.MinOneHopQPS != 100000 || bl.MaxDeltaPublishFrac != 0.25 {
		t.Fatalf("baseline misread: %+v", bl)
	}
	if _, err := ReadServeBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing baseline read succeeded")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("["), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadServeBaseline(bad); err == nil {
		t.Fatal("truncated baseline accepted")
	}
}
