package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestServeJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_serve.json")
	recs := []ServeRecord{
		{Name: "publish_full", N: 100, K: 4, Epoch: 2, Clients: 1,
			Seconds: 1.5, Lookups: 10, QPS: 6.7, P50us: 700, P90us: 900, P99us: 1100},
		{Name: "publish_delta", N: 100, K: 4, Epoch: 2, Clients: 1,
			Seconds: 0.2, Lookups: 10, QPS: 50, P50us: 150, P90us: 200, P99us: 400},
		{Name: "serve_onehop_multicore", N: 100, K: 4, Clients: 4,
			Seconds: 1, Lookups: 4000, QPS: 4000, P50us: 1, P90us: 2, P99us: 3, Cores: 4},
		{Name: "serve_batchbin", N: 100, K: 4, Clients: 1,
			Seconds: 1, Lookups: 2560, QPS: 2560, P50us: 40, P90us: 50, P99us: 90,
			Protocol: "tcp-binary", Batch: 256,
			LatBuckets: []int64{0, 3, 7}, BucketScheme: "log-ns-base45-g1.25-96"},
	}
	if err := WriteServeJSON(path, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadServeJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip returned %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !reflect.DeepEqual(got[i], recs[i]) {
			t.Fatalf("round trip mangled record %d: %+v want %+v", i, got[i], recs[i])
		}
	}
	if _, err := ReadServeJSON(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file read succeeded")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadServeJSON(bad); err == nil {
		t.Fatal("non-JSON artifact accepted")
	}
}

func TestReadServeBaseline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	body := `{"min_onehop_qps": 100000, "max_delta_publish_frac": 0.25,
		"min_onehop_qps_multicore": 300000, "min_multicore_scaling": 3.0,
		"min_binary_batch_speedup": 2.0}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	bl, err := ReadServeBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if bl.MinOneHopQPS != 100000 || bl.MaxDeltaPublishFrac != 0.25 {
		t.Fatalf("baseline misread: %+v", bl)
	}
	if bl.MinOneHopQPSMulticore != 300000 || bl.MinMulticoreScaling != 3.0 || bl.MinBinaryBatchSpeedup != 2.0 {
		t.Fatalf("multi-core/binary gates misread: %+v", bl)
	}
	if _, err := ReadServeBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing baseline read succeeded")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("["), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadServeBaseline(bad); err == nil {
		t.Fatal("truncated baseline accepted")
	}
}
