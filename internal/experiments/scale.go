package experiments

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"

	"egoist/internal/core"
	"egoist/internal/graph"
	"egoist/internal/sampling"
	"egoist/internal/sim"
	"egoist/internal/underlay"
)

// This file holds the large-scale experiments behind the sampling-scaled
// simulation engine (sim.RunScale): the n-sweep that demonstrates 10k+
// node convergence runs with their wall-clock and accuracy envelope, and
// the sampled-vs-full cost-gap curve that generalizes the paper's
// Figs. 5–8 newcomer result to whole-overlay dynamics.

// scaleSweepSizes are the sweep's overlay sizes per Scale.
func scaleSweepSizes(s Scale) []int {
	if s == Full {
		return []int{1000, 5000, 10000}
	}
	return []int{200, 400}
}

// scaleKFor picks the degree budget for an overlay size.
func scaleKFor(n int) int {
	if n >= 1000 {
		return 8
	}
	return 4
}

// scaleMFor picks the destination-sample size for an overlay size:
// n/20, clamped to [k+2, 500] — 500 matching the headline
// "demand:500 at n=10000" configuration.
func scaleMFor(n, k int) int {
	m := n / 20
	if m < k+2 {
		m = k + 2
	}
	if m > 500 {
		m = 500
	}
	return m
}

// ScaleSweepRecords runs the scale sweep and returns both the figure
// and the machine-readable benchmark records for BENCH_scale.json.
func ScaleSweepRecords(s Scale) (*Figure, []BenchRecord, error) {
	p := s.params()
	fig := &Figure{
		ID:     "scale",
		Title:  "Large-scale sampled engine: wall-clock and convergence vs n",
		XLabel: "overlay size n",
		YLabel: "seconds per epoch / epochs to converge / relative 95% band",
	}
	sizes := scaleSweepSizes(s)
	var xs, secs, epochs, relBand []float64
	var recs []BenchRecord
	for _, n := range sizes {
		k := scaleKFor(n)
		spec := sampling.Spec{Strategy: sampling.Demand, M: scaleMFor(n, k)}
		res, rec, err := MeasureScale(sim.ScaleConfig{
			N: n, K: k, Seed: p.seed, Sample: spec, Workers: Workers(),
		})
		if err != nil {
			return nil, nil, err
		}
		last := res.PerEpoch[res.Epochs-1]
		xs = append(xs, float64(n))
		secs = append(secs, rec.NsPerOp/1e9)
		epochs = append(epochs, float64(res.Epochs))
		relBand = append(relBand, last.MeanBand/math.Max(last.MeanEstCost, 1e-12))
		recs = append(recs, rec)
	}
	fig.Series = append(fig.Series,
		Series{Label: "seconds per epoch", X: xs, Y: secs},
		Series{Label: "epochs run (max 8)", X: xs, Y: epochs},
		Series{Label: "relative 95% band of cost estimate", X: xs, Y: relBand},
	)
	fig.Notes = "demand-proportional sampling, m = min(n/20, 500)"
	return fig, recs, nil
}

// FigScale is the registry wrapper for the scale sweep.
func FigScale(s Scale) (*Figure, error) {
	fig, _, err := ScaleSweepRecords(s)
	return fig, err
}

// MeasureScale runs one large-scale simulation and reports it as a
// benchmark record (ns and allocations per epoch, plus the process
// peak RSS after the run). The record name carries only (n, sample) —
// Workers and Shards are physical layout knobs the engine's
// determinism contract keeps invisible, so records gate cleanly
// against baselines measured at any layout.
func MeasureScale(cfg sim.ScaleConfig) (*sim.ScaleResult, BenchRecord, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res, err := sim.RunScale(cfg)
	if err != nil {
		return nil, BenchRecord{}, err
	}
	runtime.ReadMemStats(&after)
	var wall int64
	for _, ep := range res.PerEpoch {
		wall += ep.WallNS
	}
	rec := BenchRecord{
		Name:         fmt.Sprintf("scale/n=%d/%v", cfg.N, cfg.Sample),
		NsPerOp:      float64(wall) / float64(res.Epochs),
		AllocsPerOp:  float64(after.Mallocs-before.Mallocs) / float64(res.Epochs),
		N:            res.Epochs,
		PeakRSSBytes: peakRSSBytes(),
	}
	return res, rec, nil
}

// peakRSSBytes reads the process peak resident set (VmHWM) from
// /proc/self/status, or 0 where unavailable. The high-water mark is
// process-wide and monotonic, so a multi-size sweep must run its sizes
// ascending for each reading to equal that size's own peak.
func peakRSSBytes() float64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// TrueScaleCost computes the exact full-roster mean per-node routing
// cost of a wiring over net — the ground truth the gap figure compares
// against. Only feasible at gap-experiment sizes (it is the O(n²) cost
// the scale engine avoids).
func TrueScaleCost(net sim.ScaleNet, wiring [][]int) float64 {
	n := net.N()
	g := graph.New(n)
	for u, ws := range wiring {
		for _, v := range ws {
			g.AddArc(u, v, net.Delay(u, v))
		}
	}
	dist := graph.APSP(g)
	total := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d := dist[i][j]
			if math.IsInf(d, 1) {
				d = core.DisconnectedPenalty
			}
			total += d
		}
	}
	return total / float64(n)
}

// FigScaleGap reproduces the paper's sampled-vs-full cost-gap curve at
// whole-overlay scale: the true social cost of overlays converged under
// sampled best response, normalized by the full-roster run, as a
// function of the sample size — with the estimator's stated 95% band as
// error bars.
func FigScaleGap(s Scale) (*Figure, error) {
	p := s.params()
	n := 150
	k := 3
	if s == Full {
		n = 400
		k = 4
	}
	fig := &Figure{
		ID:     "gap",
		Title:  fmt.Sprintf("Sampled-vs-full cost gap (n=%d, k=%d, converged overlays)", n, k),
		XLabel: "destination sample size m",
		YLabel: "true cost / full-roster BR cost",
	}
	net, err := underlay.NewLite(n, p.seed+81)
	if err != nil {
		return nil, err
	}
	run := func(spec sampling.Spec) (*sim.ScaleResult, error) {
		return sim.RunScale(sim.ScaleConfig{
			N: n, K: k, Seed: p.seed, Net: net, Sample: spec,
			MaxEpochs: 8, Workers: Workers(),
		})
	}
	full, err := run(sampling.Spec{Strategy: sampling.Uniform, M: n - 1})
	if err != nil {
		return nil, err
	}
	fullCost := TrueScaleCost(net, full.Wiring)
	ms := []int{n / 16, n / 8, n / 4, n / 2}
	strategies := []sampling.Strategy{sampling.Uniform, sampling.Demand, sampling.Stratified}
	for _, st := range strategies {
		var xs, ys, errs []float64
		for _, m := range ms {
			res, err := run(sampling.Spec{Strategy: st, M: m})
			if err != nil {
				return nil, err
			}
			last := res.PerEpoch[res.Epochs-1]
			xs = append(xs, float64(m))
			ys = append(ys, TrueScaleCost(net, res.Wiring)/fullCost)
			errs = append(errs, last.MeanBand/fullCost)
		}
		fig.Series = append(fig.Series, Series{
			Label: st.String(), X: xs, Y: ys, Err: errs,
		})
	}
	fig.Notes = "normalized by a full-roster (m=n-1) run on the same underlay; error bars are the estimator's mean 95% half-width"
	return fig, nil
}
