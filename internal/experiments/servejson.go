package experiments

import (
	"encoding/json"
	"fmt"
	"os"
)

// ServeRecord is one data-plane measurement — the BENCH_serve.json
// schema shared by cmd/egoist-route (which writes it) and
// cmd/benchjson (which gates on it). Two record families use it:
//
//   - serve_onehop / serve_route: load-generator lookup measurements;
//     Lookups counts queries and the quantiles are per-lookup latency.
//     The *_multicore variants are the same paths with one pinned
//     client per server shard (Cores reports the shard count).
//   - serve_batchjson / serve_batchbin: batched lookups through a real
//     transport — HTTP JSON vs the length-prefixed binary protocol —
//     with Batch pairs per request; Lookups still counts pairs and the
//     quantiles are per-batch round-trip latency.
//   - publish_full / publish_delta: snapshot publication cost under
//     churn; Lookups counts publications and the quantiles are
//     per-publication cost — a full from-scratch Compile vs the
//     delta Patch of the same wiring change, measured on the same
//     publication stream.
type ServeRecord struct {
	Name    string  `json:"name"`
	N       int     `json:"n"`
	K       int     `json:"k"`
	Epoch   int64   `json:"epoch"`
	Clients int     `json:"clients"`
	Seconds float64 `json:"seconds"`
	Lookups int64   `json:"lookups"`
	QPS     float64 `json:"qps"`
	P50us   float64 `json:"p50_us"`
	P90us   float64 `json:"p90_us"`
	P99us   float64 `json:"p99_us"`
	// Cores is the server shard count the record was measured against
	// (0 = the pre-sharding single-shard layout).
	Cores int `json:"cores,omitempty"`
	// Protocol names the transport of batch records: "http-json" or
	// "tcp-binary". Empty for in-process measurements.
	Protocol string `json:"protocol,omitempty"`
	// Batch is the pairs-per-request of batch records.
	Batch int `json:"batch,omitempty"`
	// LatBuckets is the record's raw latency bucket vector under the
	// scheme named by BucketScheme (internal/obs), so downstream tooling
	// can recompute any quantile or overlay full distributions instead
	// of settling for the three reported points.
	LatBuckets []int64 `json:"lat_buckets,omitempty"`
	// BucketScheme names the bucket bounds of LatBuckets.
	BucketScheme string `json:"bucket_scheme,omitempty"`
}

// ServeBaseline is the CI gate schema (ci/serve_baseline.json).
type ServeBaseline struct {
	// MinOneHopQPS fails the serve bench when single-client one-hop
	// throughput drops below it.
	MinOneHopQPS float64 `json:"min_onehop_qps"`
	// MaxDeltaPublishFrac fails the publish bench when the delta
	// publication's p50 cost exceeds this fraction of the full
	// recompile's p50 on the same publication stream (0 = unchecked).
	MaxDeltaPublishFrac float64 `json:"max_delta_publish_frac,omitempty"`
	// MinOneHopQPSMulticore fails the serve bench when the multi-core
	// one-hop record (pinned shard handles, Cores > 1) falls below this
	// absolute floor (0 = unchecked).
	MinOneHopQPSMulticore float64 `json:"min_onehop_qps_multicore,omitempty"`
	// MinMulticoreScaling fails the serve bench when multi-core one-hop
	// throughput is below this multiple of the single-core record from
	// the same run (0 = unchecked).
	MinMulticoreScaling float64 `json:"min_multicore_scaling,omitempty"`
	// MinBinaryBatchSpeedup fails the serve bench when the binary batch
	// protocol's throughput is below this multiple of the JSON batch
	// protocol's, measured over the same transport shape (0 =
	// unchecked).
	MinBinaryBatchSpeedup float64 `json:"min_binary_batch_speedup,omitempty"`
}

// ReadServeJSON reads a BENCH_serve.json file.
func ReadServeJSON(path string) ([]ServeRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []ServeRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

// WriteServeJSON writes records to path as indented JSON, in the order
// given (the writer's measurement order is meaningful).
func WriteServeJSON(path string, recs []ServeRecord) error {
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadServeBaseline reads a ci/serve_baseline.json file.
func ReadServeBaseline(path string) (*ServeBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bl ServeBaseline
	if err := json.Unmarshal(data, &bl); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &bl, nil
}
