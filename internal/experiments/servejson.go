package experiments

import (
	"encoding/json"
	"fmt"
	"os"
)

// ServeRecord is one data-plane measurement — the BENCH_serve.json
// schema shared by cmd/egoist-route (which writes it) and
// cmd/benchjson (which gates on it). Two record families use it:
//
//   - serve_onehop / serve_route: load-generator lookup measurements;
//     Lookups counts queries and the quantiles are per-lookup latency.
//   - publish_full / publish_delta: snapshot publication cost under
//     churn; Lookups counts publications and the quantiles are
//     per-publication cost — a full from-scratch Compile vs the
//     delta Patch of the same wiring change, measured on the same
//     publication stream.
type ServeRecord struct {
	Name    string  `json:"name"`
	N       int     `json:"n"`
	K       int     `json:"k"`
	Epoch   int64   `json:"epoch"`
	Clients int     `json:"clients"`
	Seconds float64 `json:"seconds"`
	Lookups int64   `json:"lookups"`
	QPS     float64 `json:"qps"`
	P50us   float64 `json:"p50_us"`
	P90us   float64 `json:"p90_us"`
	P99us   float64 `json:"p99_us"`
}

// ServeBaseline is the CI gate schema (ci/serve_baseline.json).
type ServeBaseline struct {
	// MinOneHopQPS fails the serve bench when single-client one-hop
	// throughput drops below it.
	MinOneHopQPS float64 `json:"min_onehop_qps"`
	// MaxDeltaPublishFrac fails the publish bench when the delta
	// publication's p50 cost exceeds this fraction of the full
	// recompile's p50 on the same publication stream (0 = unchecked).
	MaxDeltaPublishFrac float64 `json:"max_delta_publish_frac,omitempty"`
}

// ReadServeJSON reads a BENCH_serve.json file.
func ReadServeJSON(path string) ([]ServeRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []ServeRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

// WriteServeJSON writes records to path as indented JSON, in the order
// given (the writer's measurement order is meaningful).
func WriteServeJSON(path string, recs []ServeRecord) error {
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadServeBaseline reads a ci/serve_baseline.json file.
func ReadServeBaseline(path string) (*ServeBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bl ServeBaseline
	if err := json.Unmarshal(data, &bl); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &bl, nil
}
