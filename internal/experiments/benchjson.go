package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BenchRecord is one machine-readable benchmark measurement — the
// shared schema of every BENCH_*.json artifact the CI pipeline uploads
// (Go benchmark conversions from cmd/benchjson and scale-engine
// measurements from cmd/egoist-bench alike).
type BenchRecord struct {
	// Name identifies the measurement, e.g.
	// "BenchmarkBestResponseScratch/scratch" or "scale/n=10000/demand:500".
	Name string `json:"name"`
	// NsPerOp is nanoseconds per operation (per benchmark iteration, or
	// per simulated epoch for scale records).
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is heap allocations per operation (0 when not
	// measured).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// N is the iteration count behind the measurement (benchmark b.N,
	// or epochs run for scale records).
	N int `json:"n"`
	// PeakRSSBytes is the process peak resident set (VmHWM) observed
	// after the measurement — the memory-ceiling column of the scale
	// n-sweep. Zero (and omitted) for Go benchmark conversions and on
	// platforms without /proc.
	PeakRSSBytes float64 `json:"peak_rss_bytes,omitempty"`
}

// WriteBenchJSON writes records to path as a sorted, indented JSON
// array.
func WriteBenchJSON(path string, recs []BenchRecord) error {
	out := append([]BenchRecord(nil), recs...)
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBenchJSON reads a BENCH_*.json file back.
func ReadBenchJSON(path string) ([]BenchRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []BenchRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}
