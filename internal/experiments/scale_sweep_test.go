package experiments

import "testing"

func TestScaleSweepHelpers(t *testing.T) {
	if got := scaleSweepSizes(Quick); len(got) == 0 || got[len(got)-1] >= 1000 {
		t.Fatalf("quick sweep sizes = %v", got)
	}
	full := scaleSweepSizes(Full)
	if len(full) == 0 || full[len(full)-1] != 10000 {
		t.Fatalf("full sweep sizes = %v", full)
	}
	for i := 1; i < len(full); i++ {
		if full[i] <= full[i-1] {
			t.Fatalf("sweep sizes not ascending: %v", full)
		}
	}
	if k := scaleKFor(10000); k != 8 {
		t.Fatalf("scaleKFor(10000) = %d, want 8", k)
	}
	if k := scaleKFor(200); k != 4 {
		t.Fatalf("scaleKFor(200) = %d, want 4", k)
	}
	// m = n/20 clamped to [k+2, 500].
	if m := scaleMFor(10000, 8); m != 500 {
		t.Fatalf("scaleMFor(10000, 8) = %d, want 500", m)
	}
	if m := scaleMFor(200, 4); m != 10 {
		t.Fatalf("scaleMFor(200, 4) = %d, want 10", m)
	}
	if m := scaleMFor(40, 4); m != 6 {
		t.Fatalf("scaleMFor(40, 4) = %d, want k+2 = 6", m)
	}
}

// TestScaleSweepRecordsQuick runs the quick-scale sweep end to end:
// every size yields one record with a positive per-epoch wall-clock,
// and the peak-RSS column is populated on platforms with /proc.
func TestScaleSweepRecordsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick sweep still simulates two overlays")
	}
	fig, recs, err := ScaleSweepRecords(Quick)
	if err != nil {
		t.Fatal(err)
	}
	sizes := scaleSweepSizes(Quick)
	if len(recs) != len(sizes) {
		t.Fatalf("%d records for %d sizes", len(recs), len(sizes))
	}
	for i, rec := range recs {
		if rec.NsPerOp <= 0 || rec.N <= 0 {
			t.Fatalf("record %d degenerate: %+v", i, rec)
		}
	}
	if len(fig.Series) == 0 {
		t.Fatal("sweep figure has no series")
	}
	if rss := peakRSSBytes(); rss > 0 {
		for i, rec := range recs {
			if rec.PeakRSSBytes <= 0 {
				t.Fatalf("record %d has no peak RSS on a /proc platform: %+v", i, rec)
			}
		}
	}
}
