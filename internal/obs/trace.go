package obs

import (
	"bufio"
	"encoding/json"
	"os"
	"sync"
)

// TraceWriter emits structured events as JSON Lines — one marshaled
// event per line, flushed on Close. It is safe for concurrent Emit
// calls; events from different goroutines interleave at line
// granularity. The trace stream is diagnostic output, not part of any
// determinism contract: events carry wall-clock durations.
type TraceWriter struct {
	mu sync.Mutex
	bw *bufio.Writer
	f  *os.File
}

// OpenTrace creates (truncating) the JSONL trace file at path.
func OpenTrace(path string) (*TraceWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &TraceWriter{bw: bufio.NewWriterSize(f, 64<<10), f: f}, nil
}

// Emit marshals v and appends it as one line.
func (t *TraceWriter) Emit(v interface{}) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, err := t.bw.Write(data); err != nil {
		return err
	}
	return t.bw.WriteByte('\n')
}

// Close flushes and closes the underlying file.
func (t *TraceWriter) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.bw.Flush(); err != nil {
		t.f.Close()
		return err
	}
	return t.f.Close()
}
