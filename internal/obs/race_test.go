//go:build race

package obs

// raceEnabled reports whether this test binary was built with the race
// detector; the zero-alloc gate skips under it (the detector's
// instrumentation allocates on otherwise allocation-free paths).
const raceEnabled = true
