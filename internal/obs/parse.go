package obs

import (
	"strconv"
	"strings"
)

// ParsePrometheus parses a text-exposition payload into a flat
// series → value map, where a series is the sample name with its label
// set verbatim (e.g. `plane_queries_onehop_total{shard="0"}`). Comment
// and malformed lines are skipped — the parser is the scrape side of
// WritePrometheus, used by the lab harness to fold a fleet's /metrics
// into one timeline, and it tolerates any exposition-format producer.
func ParsePrometheus(data []byte) map[string]float64 {
	out := make(map[string]float64)
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		out[strings.TrimSpace(line[:sp])] = v
	}
	return out
}
