package obs

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// WritePrometheus renders every registered instrument in Prometheus
// text exposition format (version 0.0.4), in registration order.
// Sharded counters emit one series per shard plus no synthetic total —
// Prometheus sums at query time. Histograms are rendered as summaries
// (p50/p90/p99 plus _sum and _count): the fixed bucket scheme makes
// scrape-side quantiles exact enough, and 96 cumulative le-lines per
// histogram would dominate every scrape.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	insts := make([]instrument, len(r.insts))
	copy(insts, r.insts)
	r.mu.Unlock()

	var buf bytes.Buffer
	for _, inst := range insts {
		name := inst.metricName()
		if help := inst.metricHelp(); help != "" {
			fmt.Fprintf(&buf, "# HELP %s %s\n", name, help)
		}
		switch m := inst.(type) {
		case *Counter:
			fmt.Fprintf(&buf, "# TYPE %s counter\n", name)
			if len(m.cells) == 1 {
				fmt.Fprintf(&buf, "%s %d\n", name, m.Value())
				break
			}
			for i := range m.cells {
				fmt.Fprintf(&buf, "%s{shard=\"%d\"} %d\n", name, i, m.cells[i].v.Load())
			}
		case *counterFunc:
			fmt.Fprintf(&buf, "# TYPE %s counter\n", name)
			if m.shards == 1 {
				fmt.Fprintf(&buf, "%s %d\n", name, m.fn(0))
				break
			}
			for i := 0; i < m.shards; i++ {
				fmt.Fprintf(&buf, "%s{shard=\"%d\"} %d\n", name, i, m.fn(i))
			}
		case *Gauge:
			fmt.Fprintf(&buf, "# TYPE %s gauge\n", name)
			fmt.Fprintf(&buf, "%s %s\n", name, formatFloat(m.Value()))
		case *gaugeFunc:
			fmt.Fprintf(&buf, "# TYPE %s gauge\n", name)
			fmt.Fprintf(&buf, "%s %s\n", name, formatFloat(m.fn()))
		case *Histogram:
			fmt.Fprintf(&buf, "# TYPE %s summary\n", name)
			buckets := m.Merged()
			var count, sum int64
			for _, c := range buckets {
				count += c
			}
			for i := range m.cells {
				sum += m.cells[i].sum.Load()
			}
			for _, q := range [...]float64{0.5, 0.9, 0.99} {
				fmt.Fprintf(&buf, "%s{quantile=\"%s\"} %s\n",
					name, formatFloat(q), formatFloat(bucketQuantile(&buckets, count, q)))
			}
			fmt.Fprintf(&buf, "%s_sum %d\n", name, sum)
			fmt.Fprintf(&buf, "%s_count %d\n", name, count)
		}
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// formatFloat renders a float the shortest way that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns the GET /metrics face of the registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// MountPprof wires the net/http/pprof handlers under /debug/pprof/ on
// an explicit mux. Opt-in by design: the profiling surface (heap dumps,
// CPU profiles, symbol tables) stays off every daemon that did not ask
// for it, rather than riding along on http.DefaultServeMux.
func MountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
