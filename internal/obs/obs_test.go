package obs

import (
	"bytes"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestCounterConcurrentStorm hammers one sharded counter and one
// histogram from many writers (run under -race in CI) and checks
// nothing is lost: wait-free atomics, no torn reads.
func TestCounterConcurrentStorm(t *testing.T) {
	reg := NewRegistry()
	c := reg.CounterVec("storm_total", "", 4)
	h := reg.HistogramVec("storm_ns", "", 4)
	g := reg.Gauge("storm_gauge", "")
	const writers = 8
	const perWriter = 10000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.AddShard(w, 1)
				h.ObserveShard(w, int64(50+i%1000))
				g.SetInt(int64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != writers*perWriter {
		t.Fatalf("counter lost updates: %d != %d", got, writers*perWriter)
	}
	if got := h.Count(); got != writers*perWriter {
		t.Fatalf("histogram lost observations: %d != %d", got, writers*perWriter)
	}
	var bucketSum int64
	m := h.Merged()
	for _, b := range m {
		bucketSum += b
	}
	if bucketSum != h.Count() {
		t.Fatalf("merged buckets sum %d != count %d", bucketSum, h.Count())
	}
}

// TestBucketBoundaries pins the histogram's bucket function: values
// at and around every bucket's lower bound land where the scheme says,
// tiny and huge values clamp, and the quantile of a point mass is the
// geometric mean of its bucket's bounds.
func TestBucketBoundaries(t *testing.T) {
	if BucketIndex(0) != 0 || BucketIndex(1) != 0 || BucketIndex(45) != 0 {
		t.Fatalf("values at or below the base must land in bucket 0")
	}
	if BucketIndex(math.MaxInt64) != NumBuckets-1 {
		t.Fatalf("huge values must clamp to the last bucket")
	}
	for i := 1; i < NumBuckets; i++ {
		// The geometric midpoint of bucket i's bounds lands in bucket i
		// (integer-nanosecond truncation at the edges stays inside).
		mid := int64(BucketLower(i) * math.Sqrt(BucketGrowth))
		if got := BucketIndex(mid); got != i {
			t.Fatalf("bucket %d: midpoint %d landed in %d", i, mid, got)
		}
		if BucketLower(i) <= BucketLower(i-1) {
			t.Fatalf("bucket bounds must be strictly increasing at %d", i)
		}
	}
	// Monotone: a geometric sweep never decreases the bucket index.
	prev := 0
	for ns := int64(1); ns < int64(1)<<62; ns += ns/16 + 1 {
		idx := BucketIndex(ns)
		if idx < prev {
			t.Fatalf("bucket index regressed at %dns: %d < %d", ns, idx, prev)
		}
		prev = idx
	}
	h := NewHistogram(1)
	h.Observe(1000) // bucket i, bounds [lo, lo*g)
	i := BucketIndex(1000)
	want := BucketLower(i) * math.Sqrt(BucketGrowth)
	for _, q := range []float64{0, 0.5, 0.99} {
		if got := h.Quantile(q); got != want {
			t.Fatalf("point-mass quantile(%v) = %v, want %v", q, got, want)
		}
	}
	if h.Quantile(0.5) < 1000*0.8 || h.Quantile(0.5) > 1000*1.25 {
		t.Fatalf("quantile %v too far from the observed 1000ns", h.Quantile(0.5))
	}
	if NewHistogram(1).Quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantile must be 0")
	}
}

// TestQuantileMatchesSortedRank feeds a known spread and checks the
// quantiles straddle the true ranks within one bucket's resolution.
func TestQuantileMatchesSortedRank(t *testing.T) {
	h := NewHistogram(2)
	for i := 1; i <= 1000; i++ {
		h.ObserveShard(i, int64(i)*100) // 100ns..100µs uniform
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		truth := float64(int(q*1000)+1) * 100
		got := h.Quantile(q)
		if got < truth/BucketGrowth || got > truth*BucketGrowth {
			t.Fatalf("quantile(%v) = %v, want within one bucket of %v", q, got, truth)
		}
	}
}

// TestPrometheusExpositionGolden pins the exposition format
// byte-for-byte for one of every instrument kind.
func TestPrometheusExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("queries_total", "answered queries")
	cv := reg.CounterVec("sharded_total", "per-shard answered queries", 2)
	g := reg.Gauge("snapshot_epoch", "serving epoch")
	reg.GaugeFunc("alive", "live peers", func() float64 { return 7 })
	reg.CounterFunc("drops_total", "", func() int64 { return 3 })
	h := reg.Histogram("lat_ns", "lookup latency")

	c.Add(41)
	c.Inc()
	cv.AddShard(0, 5)
	cv.AddShard(1, 6)
	g.SetInt(9)
	h.Observe(1000)
	h.Observe(1000)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	q := formatFloat(BucketLower(BucketIndex(1000)) * math.Sqrt(BucketGrowth))
	want := strings.Join([]string{
		"# HELP queries_total answered queries",
		"# TYPE queries_total counter",
		"queries_total 42",
		"# HELP sharded_total per-shard answered queries",
		"# TYPE sharded_total counter",
		`sharded_total{shard="0"} 5`,
		`sharded_total{shard="1"} 6`,
		"# HELP snapshot_epoch serving epoch",
		"# TYPE snapshot_epoch gauge",
		"snapshot_epoch 9",
		"# HELP alive live peers",
		"# TYPE alive gauge",
		"alive 7",
		"# TYPE drops_total counter",
		"drops_total 3",
		"# HELP lat_ns lookup latency",
		"# TYPE lat_ns summary",
		`lat_ns{quantile="0.5"} ` + q,
		`lat_ns{quantile="0.9"} ` + q,
		`lat_ns{quantile="0.99"} ` + q,
		"lat_ns_sum 2000",
		"lat_ns_count 2",
		"",
	}, "\n")
	if buf.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

// TestHandler serves the exposition over HTTP with the text/plain
// content type scrapers expect, and TestParsePrometheus round-trips it
// through the scrape-side parser.
func TestHandlerAndParseRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("rt_total", "", 2).AddShard(1, 11)
	reg.Gauge("rt_gauge", "").Set(2.5)
	reg.Histogram("rt_ns", "").Observe(500)

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	m := ParsePrometheus(buf.Bytes())
	if m[`rt_total{shard="0"}`] != 0 || m[`rt_total{shard="1"}`] != 11 {
		t.Fatalf("parsed shard series wrong: %v", m)
	}
	if m["rt_gauge"] != 2.5 {
		t.Fatalf("parsed gauge %v", m["rt_gauge"])
	}
	if m["rt_ns_count"] != 1 {
		t.Fatalf("parsed histogram count %v", m["rt_ns_count"])
	}
}

// TestRegistryPanics pins the registration contract: duplicates and
// invalid names are programmer errors.
func TestRegistryPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dup", "")
	for name, f := range map[string]func(){
		"duplicate":   func() { reg.Gauge("dup", "") },
		"empty":       func() { reg.Counter("", "") },
		"bad-charset": func() { reg.Counter("a-b", "") },
		"digit-first": func() { reg.Counter("9a", "") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: registration must panic", name)
				}
			}()
			f()
		}()
	}
}

// TestInstrumentsZeroAlloc gates the write paths at exactly zero
// allocations per operation — the property that lets the serving hot
// loops run with metrics enabled.
func TestInstrumentsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	reg := NewRegistry()
	c := reg.CounterVec("za_total", "", 4)
	h := reg.HistogramVec("za_ns", "", 4)
	g := reg.Gauge("za_gauge", "")
	for name, f := range map[string]func(){
		"counter-add":       func() { c.AddShard(3, 1) },
		"histogram-observe": func() { h.ObserveShard(3, 1234) },
		"gauge-set":         func() { g.Set(1.5) },
	} {
		if allocs := testing.AllocsPerRun(1000, f); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
}
