package obs

import (
	"math"
	"sync/atomic"
)

// The histogram bucket scheme, shared by every obs histogram: bucket i
// spans [base·g^i, base·g^(i+1)) nanoseconds with g = 1.25, covering
// ~45ns to ~80s in 96 buckets — ±12% quantile resolution. This is the
// exact scheme the egoist-route load generator's private histogram
// used before it moved here, so BENCH_serve.json quantiles are
// bit-compatible across the change.
const (
	NumBuckets   = 96
	BucketBase   = 45.0 // ns, lower bound of bucket 0's log range
	BucketGrowth = 1.25
)

// BucketScheme names the scheme in artifacts that carry raw bucket
// vectors, so downstream tooling can reconstruct bounds without
// guessing.
const BucketScheme = "log-ns-base45-g1.25-96"

var bucketLogG = math.Log(BucketGrowth)

// BucketIndex maps a nanosecond observation to its bucket.
func BucketIndex(ns int64) int {
	idx := 0
	if f := float64(ns); f > BucketBase {
		idx = int(math.Log(f/BucketBase) / bucketLogG)
		if idx >= NumBuckets {
			idx = NumBuckets - 1
		}
	}
	return idx
}

// BucketLower reports bucket i's lower bound in nanoseconds.
func BucketLower(i int) float64 {
	return BucketBase * math.Exp(float64(i)*bucketLogG)
}

// histCell is one shard's bucket array. count and sum trail the
// buckets; the pad keeps them (and the next cell's first buckets) off
// a shared line under concurrent writers.
type histCell struct {
	buckets [NumBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	_       [48]byte
}

func (c *histCell) observe(ns int64) {
	c.buckets[BucketIndex(ns)].Add(1)
	c.count.Add(1)
	c.sum.Add(ns)
}

// Histogram is a fixed-bucket log-scale latency histogram with one
// padded cell per shard. Observe and ObserveShard are wait-free and
// allocation-free; Merged/Quantile fold the cells at read time.
type Histogram struct {
	name, help string
	cells      []histCell
}

// Histogram registers a single-cell histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.HistogramVec(name, help, 1)
}

// HistogramVec registers a histogram with shards padded cells; writers
// pinned to different shards never contend.
func (r *Registry) HistogramVec(name, help string, shards int) *Histogram {
	if shards < 1 {
		shards = 1
	}
	h := &Histogram{name: name, help: help, cells: make([]histCell, shards)}
	r.register(h)
	return h
}

// NewHistogram returns an unregistered histogram — for callers that
// want the bucket math and quantiles without exposition (the load
// generator's per-client cells).
func NewHistogram(shards int) *Histogram {
	if shards < 1 {
		shards = 1
	}
	return &Histogram{cells: make([]histCell, shards)}
}

func (h *Histogram) metricName() string { return h.name }
func (h *Histogram) metricHelp() string { return h.help }

// Observe records a nanosecond latency into cell 0.
func (h *Histogram) Observe(ns int64) { h.cells[0].observe(ns) }

// ObserveShard records a nanosecond latency into the given shard's
// cell (mod the cell count).
func (h *Histogram) ObserveShard(shard int, ns int64) {
	h.cells[uint(shard)%uint(len(h.cells))].observe(ns)
}

// Count reports the total observation count across cells.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.cells {
		n += h.cells[i].count.Load()
	}
	return n
}

// Sum reports the total of all observed values (nanoseconds).
func (h *Histogram) Sum() int64 {
	var s int64
	for i := range h.cells {
		s += h.cells[i].sum.Load()
	}
	return s
}

// Merged folds every cell into one bucket vector.
func (h *Histogram) Merged() [NumBuckets]int64 {
	var out [NumBuckets]int64
	for c := range h.cells {
		for i := range out {
			out[i] += h.cells[c].buckets[i].Load()
		}
	}
	return out
}

// Quantile returns the q-quantile in nanoseconds — the geometric mean
// of the containing bucket's bounds, so repeated calls on a stable
// histogram are exact and deterministic.
func (h *Histogram) Quantile(q float64) float64 {
	buckets := h.Merged()
	var count int64
	for _, c := range buckets {
		count += c
	}
	return bucketQuantile(&buckets, count, q)
}

// QuantileUS is Quantile scaled to microseconds — the unit the
// BENCH_serve.json schema reports.
func (h *Histogram) QuantileUS(q float64) float64 { return h.Quantile(q) / 1e3 }

// bucketQuantile locates the q-quantile in a merged bucket vector.
func bucketQuantile(buckets *[NumBuckets]int64, count int64, q float64) float64 {
	if count == 0 {
		return 0
	}
	target := int64(q * float64(count))
	var seen int64
	for i, c := range buckets {
		seen += c
		if seen > target {
			return BucketLower(i) * math.Sqrt(BucketGrowth)
		}
	}
	return BucketLower(NumBuckets)
}
