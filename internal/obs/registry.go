// Package obs is the repository's unified observability layer: a
// dependency-free metrics registry (atomic counters, gauges, and
// fixed-bucket log-scale histograms with padded per-shard cells), a
// Prometheus-text /metrics handler, opt-in net/http/pprof mounting,
// and a JSONL trace writer for engine phase events.
//
// Every instrument is pre-registered (registration allocates; use
// never does), so the serving hot paths stay zero-alloc with metrics
// enabled — gated by TestInstrumentsZeroAlloc here and by the plane
// package's TestServeHotPathsZeroAlloc end-to-end.
package obs

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Registry owns a set of named instruments and renders them in
// Prometheus text exposition format. Registration order is exposition
// order (deterministic output for a deterministic input — the golden
// test relies on it). Registering a duplicate or invalid name panics:
// instrument wiring is program structure, not runtime input.
type Registry struct {
	mu    sync.Mutex
	names map[string]bool
	insts []instrument
}

// instrument is one registered metric family.
type instrument interface {
	metricName() string
	metricHelp() string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// register validates and records one instrument.
func (r *Registry) register(inst instrument) {
	name := inst.metricName()
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic(fmt.Sprintf("obs: duplicate metric name %q", name))
	}
	r.names[name] = true
	r.insts = append(r.insts, inst)
}

// validMetricName enforces the Prometheus name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// cell is one padded counter slot: 64 bytes so neighboring cells of a
// sharded instrument never share a cache line.
type cell struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing count with one padded cell per
// shard. Single-cell counters use Add/Inc; sharded counters use
// AddShard so writers pinned to different shards never contend.
type Counter struct {
	name, help string
	cells      []cell
}

// Counter registers a single-cell counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help, 1)
}

// CounterVec registers a counter with shards padded cells, exposed as
// one series per shard (label shard="i") when shards > 1.
func (r *Registry) CounterVec(name, help string, shards int) *Counter {
	if shards < 1 {
		shards = 1
	}
	c := &Counter{name: name, help: help, cells: make([]cell, shards)}
	r.register(c)
	return c
}

func (c *Counter) metricName() string { return c.name }
func (c *Counter) metricHelp() string { return c.help }

// Add adds n to cell 0.
func (c *Counter) Add(n int64) { c.cells[0].v.Add(n) }

// Inc adds 1 to cell 0.
func (c *Counter) Inc() { c.cells[0].v.Add(1) }

// AddShard adds n to the given shard's cell (mod the cell count).
func (c *Counter) AddShard(shard int, n int64) {
	c.cells[uint(shard)%uint(len(c.cells))].v.Add(n)
}

// Value reports the summed count across cells.
func (c *Counter) Value() int64 {
	var sum int64
	for i := range c.cells {
		sum += c.cells[i].v.Load()
	}
	return sum
}

// ShardValue reports one shard's count.
func (c *Counter) ShardValue(shard int) int64 {
	return c.cells[uint(shard)%uint(len(c.cells))].v.Load()
}

// Gauge is a settable instantaneous value (stored as float64 bits).
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Gauge registers a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(g)
	return g
}

func (g *Gauge) metricName() string { return g.name }
func (g *Gauge) metricHelp() string { return g.help }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Value reports the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// gaugeFunc is a gauge whose value is read at scrape time — the shape
// for values another subsystem already maintains (a snapshot epoch, a
// peer-book size) where double-counting into a second atomic would be
// waste.
type gaugeFunc struct {
	name, help string
	fn         func() float64
}

// GaugeFunc registers a scrape-time gauge callback. fn must be safe to
// call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&gaugeFunc{name: name, help: help, fn: fn})
}

func (g *gaugeFunc) metricName() string { return g.name }
func (g *gaugeFunc) metricHelp() string { return g.help }

// counterFunc is a counter whose per-shard values are read at scrape
// time from state another subsystem maintains (the plane's padded
// per-shard query counters predate this package; re-counting them into
// obs cells would double every hot-path atomic add).
type counterFunc struct {
	name, help string
	shards     int
	fn         func(shard int) int64
}

// CounterFunc registers a scrape-time single-series counter callback.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.register(&counterFunc{name: name, help: help, shards: 1, fn: func(int) int64 { return fn() }})
}

// CounterVecFunc registers a scrape-time counter callback exposed as
// one series per shard (label shard="i") when shards > 1. fn must be
// safe to call from any goroutine.
func (r *Registry) CounterVecFunc(name, help string, shards int, fn func(shard int) int64) {
	if shards < 1 {
		shards = 1
	}
	r.register(&counterFunc{name: name, help: help, shards: shards, fn: fn})
}

func (c *counterFunc) metricName() string { return c.name }
func (c *counterFunc) metricHelp() string { return c.help }
