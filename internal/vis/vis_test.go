package vis

import (
	"bytes"
	"encoding/xml"
	"io"
	"strings"
	"testing"

	"egoist/internal/graph"
)

func TestCirclePositions(t *testing.T) {
	pos := CirclePositions(8)
	if len(pos) != 8 {
		t.Fatalf("%d positions", len(pos))
	}
	for i, p := range pos {
		if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 {
			t.Fatalf("position %d out of canvas: %+v", i, p)
		}
	}
}

func TestGeoPositions(t *testing.T) {
	pos := GeoPositions([]float64{0, 90, -90}, []float64{0, 180, -180})
	if pos[0].X != 0.5 || pos[0].Y != 0.5 {
		t.Fatalf("equator/prime meridian not centered: %+v", pos[0])
	}
	if pos[1].Y != 0 || pos[2].Y != 1 {
		t.Fatalf("poles wrong: %+v %+v", pos[1], pos[2])
	}
}

func TestTopologySVGWellFormed(t *testing.T) {
	g := graph.New(5)
	for v := 0; v < 5; v++ {
		g.AddArc(v, (v+1)%5, float64(v+1))
	}
	var buf bytes.Buffer
	if err := Topology(&buf, g, CirclePositions(5), 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		if _, err := dec.Token(); err != nil {
			if err == io.EOF {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
	for _, want := range []string{"<svg", "path", "circle", "5 nodes, 5 links"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
}

func TestTopologyPositionMismatch(t *testing.T) {
	g := graph.New(3)
	var buf bytes.Buffer
	if err := Topology(&buf, g, CirclePositions(2), -1); err == nil {
		t.Fatal("mismatched positions accepted")
	}
}

func TestTopologyEmptyGraph(t *testing.T) {
	g := graph.New(3)
	var buf bytes.Buffer
	if err := Topology(&buf, g, CirclePositions(3), -1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "3 nodes, 0 links") {
		t.Fatal("empty graph header wrong")
	}
}

func TestFromWiring(t *testing.T) {
	g := FromWiring([][]int{{1}, {0}}, func(i, j int) float64 { return 7 })
	if w, ok := g.Weight(0, 1); !ok || w != 7 {
		t.Fatalf("weight %v,%v", w, ok)
	}
	g2 := FromWiring([][]int{{1}, {}}, nil)
	if w, _ := g2.Weight(0, 1); w != 1 {
		t.Fatalf("default weight %v", w)
	}
}
