// Package vis renders overlay topology snapshots as SVG — the equivalent
// of the live topology demonstration the paper's Sect. 7 describes on the
// EGOIST project site. Nodes are laid out by geographic coordinates when
// available, or on a circle otherwise; directed overlay links are drawn
// with their costs encoded in stroke intensity.
package vis

import (
	"fmt"
	"io"
	"math"
	"strings"

	"egoist/internal/graph"
)

// NodePos places a node on the canvas in abstract [0,1]² coordinates.
type NodePos struct {
	X, Y  float64
	Label string
}

// CirclePositions lays n nodes on a circle in id order.
func CirclePositions(n int) []NodePos {
	out := make([]NodePos, n)
	for i := range out {
		angle := 2 * math.Pi * float64(i) / float64(n)
		out[i] = NodePos{
			X:     0.5 + 0.45*math.Cos(angle),
			Y:     0.5 + 0.45*math.Sin(angle),
			Label: fmt.Sprintf("%d", i),
		}
	}
	return out
}

// GeoPositions projects (lat, lon) pairs onto the canvas with a simple
// equirectangular projection.
func GeoPositions(lats, lons []float64) []NodePos {
	out := make([]NodePos, len(lats))
	for i := range out {
		out[i] = NodePos{
			X:     (lons[i] + 180) / 360,
			Y:     (90 - lats[i]) / 180,
			Label: fmt.Sprintf("%d", i),
		}
	}
	return out
}

// Topology renders the overlay graph as an SVG. Positions must cover every
// node id in g. highlight, when >= 0, emphasizes one node and its links.
func Topology(w io.Writer, g *graph.Digraph, pos []NodePos, highlight int) error {
	if len(pos) != g.N() {
		return fmt.Errorf("vis: %d positions for %d nodes", len(pos), g.N())
	}
	const width, height = 720, 480
	const margin = 30
	px := func(p NodePos) (float64, float64) {
		return margin + p.X*(width-2*margin), margin + p.Y*(height-2*margin)
	}

	// Normalize costs for stroke shading.
	minW, maxW := math.Inf(1), math.Inf(-1)
	for u := 0; u < g.N(); u++ {
		for _, a := range g.Out(u) {
			minW = math.Min(minW, a.W)
			maxW = math.Max(maxW, a.W)
		}
	}
	if math.IsInf(minW, 1) {
		minW, maxW = 0, 1
	}
	if maxW == minW {
		maxW = minW + 1
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="#fcfcfc"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-family="sans-serif" font-size="13" font-weight="bold">EGOIST overlay: %d nodes, %d links</text>`+"\n",
		margin, g.N(), g.NumArcs())

	// Links first, nodes on top.
	for u := 0; u < g.N(); u++ {
		x1, y1 := px(pos[u])
		for _, a := range g.Out(u) {
			x2, y2 := px(pos[a.To])
			shade := int(200 - 160*(a.W-minW)/(maxW-minW)) // cheap links darker
			color := fmt.Sprintf("#%02x%02x%02x", shade, shade, shade)
			width := 1.0
			if highlight >= 0 && (u == highlight || a.To == highlight) {
				color, width = "#d62728", 1.8
			}
			// Slight curve so antiparallel links don't overlap: draw a
			// quadratic with a perpendicular offset control point.
			mx, my := (x1+x2)/2, (y1+y2)/2
			dx, dy := x2-x1, y2-y1
			norm := math.Hypot(dx, dy)
			if norm == 0 {
				continue
			}
			ox, oy := -dy/norm*6, dx/norm*6
			fmt.Fprintf(&b, `<path d="M %.1f %.1f Q %.1f %.1f %.1f %.1f" fill="none" stroke="%s" stroke-width="%.1f"/>`+"\n",
				x1, y1, mx+ox, my+oy, x2, y2, color, width)
			// Arrowhead dot near the target.
			tx, ty := x2-dx/norm*8, y2-dy/norm*8
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="1.6" fill="%s"/>`+"\n", tx, ty, color)
		}
	}
	for v := 0; v < g.N(); v++ {
		x, y := px(pos[v])
		fill := "#1f77b4"
		r := 5.0
		if v == highlight {
			fill, r = "#d62728", 7
		}
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n", x, y, r, fill)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="9" text-anchor="middle" fill="#333333">%s</text>`+"\n",
			x, y-8, escape(pos[v].Label))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// FromWiring builds a displayable graph from a wiring and a cost function.
func FromWiring(wiring [][]int, cost func(i, j int) float64) *graph.Digraph {
	g := graph.New(len(wiring))
	for i, ws := range wiring {
		for _, j := range ws {
			w := 1.0
			if cost != nil {
				w = cost(i, j)
			}
			g.AddArc(i, j, w)
		}
	}
	return g
}
