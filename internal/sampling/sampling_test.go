package sampling

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"egoist/internal/graph"
)

func TestRandomSampleSizeAndMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cands := []int{2, 4, 6, 8, 10, 12}
	s := Random(rng, cands, 3)
	if len(s) != 3 {
		t.Fatalf("sample size %d, want 3", len(s))
	}
	if !sort.IntsAreSorted(s) {
		t.Fatalf("sample not sorted: %v", s)
	}
	in := map[int]bool{}
	for _, c := range cands {
		in[c] = true
	}
	seen := map[int]bool{}
	for _, v := range s {
		if !in[v] {
			t.Fatalf("sample member %d not a candidate", v)
		}
		if seen[v] {
			t.Fatalf("duplicate %d in sample", v)
		}
		seen[v] = true
	}
}

func TestRandomSampleWholeSet(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cands := []int{5, 3, 1}
	s := Random(rng, cands, 10)
	if len(s) != 3 {
		t.Fatalf("want all 3 candidates, got %v", s)
	}
}

func TestRankPrefersBigCloseNeighborhoods(t *testing.T) {
	// Node 1 has a big neighborhood of cheap nodes; node 2 a tiny one.
	g := graph.New(6)
	g.AddArc(1, 3, 1)
	g.AddArc(1, 4, 1)
	g.AddArc(1, 5, 1)
	g.AddArc(2, 3, 1)
	direct := []float64{0, 5, 5, 3, 2, 2}
	r1 := Rank(g, 1, direct, 2)
	r2 := Rank(g, 2, direct, 2)
	if r1 <= r2 {
		t.Fatalf("rank(1)=%v <= rank(2)=%v; bigger close neighborhood should win", r1, r2)
	}
}

func TestRankEmptyNeighborhood(t *testing.T) {
	g := graph.New(3)
	if r := Rank(g, 1, []float64{0, 1, 1}, 2); r != 0 {
		t.Fatalf("rank of isolated node = %v, want 0", r)
	}
}

func TestBiasedValidation(t *testing.T) {
	g := graph.New(4)
	rng := rand.New(rand.NewSource(3))
	if _, err := Biased(rng, g, []int{1, 2}, []float64{0, 1, 1, 1}, BiasedConfig{M: 0}); err == nil {
		t.Fatal("M=0 accepted")
	}
	if _, err := Biased(rng, g, []int{1, 2}, []float64{0, 1}, BiasedConfig{M: 1}); err == nil {
		t.Fatal("short direct vector accepted")
	}
}

func TestBiasedKeepsTopRanked(t *testing.T) {
	// Hub node 1 reaches many; leaf nodes reach nothing. Biased sampling
	// with m=1 must pick the hub (with MPrime covering all candidates).
	n := 10
	g := graph.New(n)
	for v := 2; v < n; v++ {
		g.AddArc(1, v, 1)
	}
	direct := make([]float64, n)
	for v := 1; v < n; v++ {
		direct[v] = 1
	}
	cands := make([]int, 0, n-1)
	for v := 1; v < n; v++ {
		cands = append(cands, v)
	}
	rng := rand.New(rand.NewSource(4))
	s, err := Biased(rng, g, cands, direct, BiasedConfig{M: 1, MPrime: n - 1, Radius: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 1 || s[0] != 1 {
		t.Fatalf("biased sample = %v, want the hub [1]", s)
	}
}

// Property: biased samples are well-formed subsets of the candidates.
func TestBiasedWellFormedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(20)
		g := graph.New(n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.2 {
					g.AddArc(u, v, 1+rng.Float64()*5)
				}
			}
		}
		direct := make([]float64, n)
		for v := 1; v < n; v++ {
			direct[v] = 0.1 + rng.Float64()*5
		}
		cands := make([]int, 0, n-1)
		for v := 1; v < n; v++ {
			cands = append(cands, v)
		}
		m := 1 + rng.Intn(len(cands))
		s, err := Biased(rng, g, cands, direct, BiasedConfig{M: m})
		if err != nil {
			return false
		}
		if len(s) != m || !sort.IntsAreSorted(s) {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v <= 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
