package sampling

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// This file implements the destination-sampling side of the scalability
// machinery: instead of evaluating its best response against the full
// O(n) destination roster, a node draws a weighted sample of destinations
// and optimizes an inverse-probability (Horvitz–Thompson) estimate of the
// full-roster cost. Three strategies are provided; all are unbiased for
// the total cost by construction, with a per-sample variance estimate
// that yields the 95% confidence band the simulator's adoption tests and
// the property tests consume.

// Strategy selects how destinations are drawn.
type Strategy int

const (
	// Uniform draws m destinations without replacement, each with equal
	// inclusion probability m/(n-1).
	Uniform Strategy = iota
	// Demand draws destinations with inclusion probability proportional
	// to the preference (demand) weight p_ij — Poisson sampling, so the
	// realized sample size is random with mean <= m. High-demand
	// destinations, which dominate the cost objective, are (almost)
	// always sampled; the tail is thinned.
	Demand
	// Stratified partitions destinations into direct-cost strata
	// (near/mid/far quantile bands) and draws uniformly within each, so
	// the sample covers every distance scale — the failure mode of pure
	// uniform sampling on clustered topologies is missing the far
	// cluster entirely.
	Stratified
)

// String names the strategy as the CLI spells it.
func (s Strategy) String() string {
	switch s {
	case Uniform:
		return "uniform"
	case Demand:
		return "demand"
	case Stratified:
		return "strat"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ParseStrategy parses a strategy name ("uniform", "demand", "strat").
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "uniform":
		return Uniform, nil
	case "demand":
		return Demand, nil
	case "strat", "stratified":
		return Stratified, nil
	default:
		return 0, fmt.Errorf("sampling: unknown strategy %q (want uniform, demand or strat)", s)
	}
}

// Spec is a parsed sampling specification: a strategy plus a target
// sample size, e.g. "demand:500".
//
// A Spec is an immutable value and draws share no hidden state: all
// randomness comes from the *rand.Rand the caller passes in, consumed
// deterministically. That is the contract the scale engine's parallel
// proposal phase builds on — each node draws from its own
// per-(epoch,node) seeded stream, so the sample (and everything priced
// off it) is independent of worker count and scheduling. Concurrent
// Draw/DrawFrom calls are safe whenever each goroutine owns its rng
// (*rand.Rand itself is not safe for shared use); pref/direct may be
// shared read-only.
type Spec struct {
	Strategy Strategy
	// M is the target sample size (exact for Uniform/Stratified, the
	// expected size for Demand's Poisson draw).
	M int
}

// String renders the spec in the CLI syntax.
func (s Spec) String() string { return fmt.Sprintf("%v:%d", s.Strategy, s.M) }

// ParseSpec parses "strategy:m" (e.g. "demand:500", "uniform:100").
func ParseSpec(s string) (Spec, error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return Spec{}, fmt.Errorf("sampling: spec %q not of the form strategy:m", s)
	}
	st, err := ParseStrategy(parts[0])
	if err != nil {
		return Spec{}, err
	}
	m, err := strconv.Atoi(parts[1])
	if err != nil || m < 1 {
		return Spec{}, fmt.Errorf("sampling: bad sample size in spec %q", s)
	}
	return Spec{Strategy: st, M: m}, nil
}

// numStrata is the stratum count of the Stratified strategy: quartile
// bands of the direct-cost distribution.
const numStrata = 4

// DestSample is one node's drawn destination sample with the
// inverse-probability weights that make the weighted sample objective an
// unbiased estimate of the full-roster objective.
type DestSample struct {
	// Dests are the sampled destinations, sorted ascending.
	Dests []int
	// InvProb[i] is 1/π_j for Dests[i]: the Horvitz–Thompson expansion
	// weight.
	InvProb []float64

	strategy Strategy
	// Per-stratum population and sample sizes (Uniform uses one stratum)
	// for the without-replacement variance estimator; nil for Demand.
	stratumOf []int // aligned with Dests
	popN      []int
	samN      []int
}

// roster enumerates the destination population a draw runs over: the
// full id range [0, n) minus self, or an explicit id subset (the alive
// roster under dynamic membership) minus self. Draws index it densely,
// so the same sampling code serves both without duplicating RNG
// consumption on the full-range path.
type roster struct {
	ids     []int // nil: the full range [0, n)
	n       int
	self    int
	selfPos int // index of self within ids, or len(ids) if absent
}

func newRoster(ids []int, self, n int) roster {
	p := roster{ids: ids, n: n, self: self}
	if ids != nil {
		p.selfPos = len(ids)
		for x, v := range ids {
			if v == self {
				p.selfPos = x
				break
			}
		}
	}
	return p
}

// size is the number of drawable destinations (self excluded).
func (p roster) size() int {
	if p.ids == nil {
		return p.n - 1
	}
	if p.selfPos < len(p.ids) {
		return len(p.ids) - 1
	}
	return len(p.ids)
}

// at maps a dense population index to a node id, skipping self.
func (p roster) at(i int) int {
	if p.ids == nil {
		return skipSelf(i, p.self)
	}
	if i >= p.selfPos {
		i++
	}
	return p.ids[i]
}

// Draw samples destinations for node self out of the population
// {0..n-1}\{self} according to the spec. pref supplies the demand weights
// p_ij (nil = uniform; required meaningful only for Demand), direct the
// measured direct costs (used only by Stratified). The draw consumes rng
// deterministically, so a per-(epoch,node) seeded rng gives reproducible
// samples at any worker count.
func (s Spec) Draw(rng *rand.Rand, self, n int, pref, direct []float64) (*DestSample, error) {
	if n < 2 {
		return nil, fmt.Errorf("sampling: population of %d nodes", n)
	}
	return s.draw(rng, newRoster(nil, self, n), pref, direct)
}

// DrawFrom draws like Draw but over the explicit sub-population ids
// (self is skipped when present) — the alive roster under churn.
// Inclusion probabilities, HT weights and the variance bookkeeping are
// all relative to the sub-population, so estimates expand to totals
// over ids, never crediting departed nodes. pref and direct stay
// indexed by global node id.
//
// The draw is a pure function of (rng state, ids contents): how the
// caller assembled ids is invisible. The scale engine's shard layer
// leans on this — a roster concatenated from per-shard contiguous id
// bands is element-wise equal to the globally assembled sorted roster,
// so per-shard assembly changes neither the sample nor its HT weights
// (pinned by TestDrawFromShardAssembledRoster), and EvalSampled stays
// unbiased at any shard count.
func (s Spec) DrawFrom(rng *rand.Rand, self int, ids []int, pref, direct []float64) (*DestSample, error) {
	p := newRoster(ids, self, len(ids)+1)
	if p.size() < 1 {
		return nil, fmt.Errorf("sampling: sub-population of %d nodes besides self", p.size())
	}
	return s.draw(rng, p, pref, direct)
}

func (s Spec) draw(rng *rand.Rand, p roster, pref, direct []float64) (*DestSample, error) {
	if s.M < 1 {
		return nil, fmt.Errorf("sampling: non-positive sample size %d", s.M)
	}
	switch s.Strategy {
	case Uniform:
		return drawUniform(rng, p, s.M), nil
	case Demand:
		return drawDemand(rng, p, s.M, pref), nil
	case Stratified:
		if direct == nil {
			return nil, fmt.Errorf("sampling: stratified draw needs direct costs")
		}
		return drawStratified(rng, p, s.M, direct), nil
	default:
		return nil, fmt.Errorf("sampling: unknown strategy %d", int(s.Strategy))
	}
}

// drawUniform is simple random sampling without replacement:
// π_j = m/pop for every destination.
func drawUniform(rng *rand.Rand, p roster, m int) *DestSample {
	pop := p.size()
	if m > pop {
		m = pop
	}
	// Floyd's algorithm over the population index space [0, pop), mapped
	// around self: O(m) time and space regardless of n.
	picked := make(map[int]bool, m)
	for i := pop - m; i < pop; i++ {
		j := rng.Intn(i + 1)
		if picked[j] {
			j = i
		}
		picked[j] = true
	}
	ds := &DestSample{
		Dests:     make([]int, 0, m),
		InvProb:   make([]float64, m),
		strategy:  Uniform,
		stratumOf: make([]int, m),
		popN:      []int{pop},
		samN:      []int{m},
	}
	for j := range picked {
		ds.Dests = append(ds.Dests, p.at(j))
	}
	sort.Ints(ds.Dests)
	w := float64(pop) / float64(m)
	for i := range ds.InvProb {
		ds.InvProb[i] = w
	}
	return ds
}

// drawDemand is Poisson sampling with π_j proportional to pref[j],
// capped at 1: every destination is included independently with its own
// probability, so the HT estimator and its variance are exact.
func drawDemand(rng *rand.Rand, p roster, m int, pref []float64) *DestSample {
	pop := p.size()
	if m >= pop {
		// Degenerate: the full roster, zero variance.
		ds := &DestSample{strategy: Demand}
		for x := 0; x < pop; x++ {
			ds.Dests = append(ds.Dests, p.at(x))
			ds.InvProb = append(ds.InvProb, 1)
		}
		return ds
	}
	weight := func(j int) float64 {
		if pref == nil {
			return 1
		}
		if w := pref[j]; w > 0 {
			return w
		}
		return 0
	}
	total := 0.0
	for x := 0; x < pop; x++ {
		total += weight(p.at(x))
	}
	ds := &DestSample{strategy: Demand}
	if total <= 0 {
		// No demand anywhere: fall back to a uniform draw.
		return drawUniform(rng, p, m)
	}
	// Water-filling for the cap: capping π at 1 frees probability mass
	// that proportionality would have assigned beyond certainty. One
	// rescale pass over the uncapped remainder recovers most of the
	// target E[sample size] = m without iterating to a fixed point.
	// When the capped set alone reaches m (extreme skew), the rescale
	// is skipped: the certainty inclusions are the sample.
	lambda := float64(m) / total
	capped := 0
	cappedMass := 0.0
	for x := 0; x < pop; x++ {
		if w := weight(p.at(x)); lambda*w >= 1 {
			capped++
			cappedMass += w
		}
	}
	if capped > 0 && m > capped && total > cappedMass {
		lambda = float64(m-capped) / (total - cappedMass)
	}
	for x := 0; x < pop; x++ {
		j := p.at(x)
		pi := lambda * weight(j)
		if pi > 1 {
			pi = 1
		}
		if pi <= 0 {
			continue
		}
		if pi >= 1 || rng.Float64() < pi {
			ds.Dests = append(ds.Dests, j)
			ds.InvProb = append(ds.InvProb, 1/pi)
		}
	}
	if len(ds.Dests) == 0 {
		// Pathologically small m on a huge roster: guarantee one draw.
		j := p.at(rng.Intn(pop))
		ds.Dests = []int{j}
		ds.InvProb = []float64{float64(pop)}
	}
	return ds
}

// drawStratified buckets destinations into numStrata direct-cost quantile
// bands and draws an equal share uniformly within each (SRSWOR per
// stratum) via per-stratum reservoir sampling: one O(n) pass, no sort of
// the full roster.
func drawStratified(rng *rand.Rand, p roster, m int, direct []float64) *DestSample {
	pop := p.size()
	if m > pop {
		m = pop
	}
	if m < numStrata {
		// Too small to stratify meaningfully.
		return drawUniform(rng, p, m)
	}
	cuts := stratumCuts(rng, p, direct)
	per := m / numStrata
	extra := m % numStrata
	reservoirs := make([][]int, numStrata)
	want := make([]int, numStrata)
	for h := 0; h < numStrata; h++ {
		want[h] = per
		if h < extra {
			want[h]++
		}
		reservoirs[h] = make([]int, 0, want[h])
	}
	popN := make([]int, numStrata)
	for x := 0; x < pop; x++ {
		j := p.at(x)
		h := stratumIndex(cuts, direct[j])
		popN[h]++
		// Reservoir sampling: keeps a uniform without-replacement sample
		// of size want[h] from the stream of stratum-h members.
		if len(reservoirs[h]) < want[h] {
			reservoirs[h] = append(reservoirs[h], j)
		} else if want[h] > 0 {
			if r := rng.Intn(popN[h]); r < want[h] {
				reservoirs[h][r] = j
			}
		}
	}
	ds := &DestSample{strategy: Stratified, popN: popN, samN: make([]int, numStrata)}
	type member struct {
		dest, stratum int
	}
	var members []member
	for h := 0; h < numStrata; h++ {
		ds.samN[h] = len(reservoirs[h])
		for _, j := range reservoirs[h] {
			members = append(members, member{dest: j, stratum: h})
		}
	}
	sort.Slice(members, func(a, b int) bool { return members[a].dest < members[b].dest })
	for _, mb := range members {
		ds.Dests = append(ds.Dests, mb.dest)
		ds.InvProb = append(ds.InvProb, float64(ds.popN[mb.stratum])/float64(ds.samN[mb.stratum]))
		ds.stratumOf = append(ds.stratumOf, mb.stratum)
	}
	return ds
}

// stratumCuts estimates the quartile cut points of the direct-cost
// distribution from a small pilot subsample, so stratification costs
// O(pilot·log pilot) instead of O(n·log n) per draw.
func stratumCuts(rng *rand.Rand, p roster, direct []float64) [numStrata - 1]float64 {
	const pilot = 128
	pop := p.size()
	var vals []float64
	if pop <= pilot {
		for x := 0; x < pop; x++ {
			vals = append(vals, direct[p.at(x)])
		}
	} else {
		for i := 0; i < pilot; i++ {
			vals = append(vals, direct[p.at(rng.Intn(pop))])
		}
	}
	sort.Float64s(vals)
	var cuts [numStrata - 1]float64
	for c := range cuts {
		cuts[c] = vals[(c+1)*len(vals)/numStrata]
	}
	return cuts
}

// stratumIndex maps a direct cost to its quantile band.
func stratumIndex(cuts [numStrata - 1]float64, v float64) int {
	for h, c := range cuts {
		if v < c {
			return h
		}
	}
	return numStrata - 1
}

// skipSelf maps a dense population index in [0, n-1) to a node id,
// skipping self.
func skipSelf(idx, self int) int {
	if idx >= self {
		return idx + 1
	}
	return idx
}

// Estimate is an unbiased estimate of a full-roster total with its
// normal-approximation 95% confidence band.
type Estimate struct {
	// Total is the Horvitz–Thompson point estimate Σ y_j/π_j.
	Total float64
	// StdErr is the estimated standard error of Total.
	StdErr float64
	// Lo and Hi bound the 95% confidence band Total ± 1.96·StdErr.
	Lo, Hi float64
}

// Contains reports whether v lies inside the 95% band.
func (e Estimate) Contains(v float64) bool { return v >= e.Lo && v <= e.Hi }

// z95 is the two-sided 95% normal quantile.
const z95 = 1.959963984540054

// t95 holds two-sided 95% Student-t quantiles for 1..30 degrees of
// freedom; beyond 30 the normal quantile is used. Small destination
// samples (the interesting regime of the scalability trade-off) badly
// undercover with the plain normal band.
var t95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// quantile95 returns the two-sided 95% quantile for df degrees of
// freedom.
func quantile95(df int) float64 {
	if df < 1 {
		return t95[0]
	}
	if df <= len(t95) {
		return t95[df-1]
	}
	return z95
}

// Estimate expands the per-destination values y(j) into an unbiased
// estimate of the population total Σ_{j≠self} y(j), with the variance
// estimator matching the strategy that drew the sample: the
// without-replacement (per-stratum) formula for Uniform and Stratified,
// the exact Poisson HT formula for Demand.
func (ds *DestSample) Estimate(y func(j int) float64) Estimate {
	var est Estimate
	df := 0
	switch ds.strategy {
	case Demand:
		exhaustive := true
		for i, j := range ds.Dests {
			yi := y(j)
			w := ds.InvProb[i]
			est.Total += yi * w
			// Var = Σ (1-π_j) (y_j/π_j)^2 for independent inclusions.
			est.StdErr += (1 - 1/w) * yi * yi * w * w
			if w > 1 {
				exhaustive = false
			}
		}
		df = len(ds.Dests) - 1
		if exhaustive {
			df = 1 << 30 // full roster: exact, quantile irrelevant
		}
	default:
		// Stratified expansion; Uniform is the single-stratum case.
		nh := len(ds.popN)
		sums := make([]float64, nh)
		sqs := make([]float64, nh)
		for i, j := range ds.Dests {
			yi := y(j)
			est.Total += yi * ds.InvProb[i]
			h := ds.stratumOf[i]
			if h == certaintyStratum {
				continue // exact inclusion: no variance contribution
			}
			sums[h] += yi
			sqs[h] += yi * yi
		}
		for h := 0; h < nh; h++ {
			N, m := float64(ds.popN[h]), float64(ds.samN[h])
			if m < 2 || N <= m || N <= 0 {
				continue // exhaustive or single-draw stratum: no variance term
			}
			s2 := (sqs[h] - sums[h]*sums[h]/m) / (m - 1)
			if s2 < 0 {
				s2 = 0
			}
			est.StdErr += N * N * (1 - m/N) * s2 / m
			df += ds.samN[h] - 1
		}
	}
	est.StdErr = math.Sqrt(math.Max(0, est.StdErr))
	q := quantile95(df)
	est.Lo = est.Total - q*est.StdErr
	est.Hi = est.Total + q*est.StdErr
	return est
}

// Strategy reports which strategy drew the sample.
func (ds *DestSample) Strategy() Strategy { return ds.strategy }

// Remap returns a copy of the sample with every destination id mapped
// through f, keeping weights and the variance bookkeeping intact. The
// scale engine uses it to translate a roster-level sample into the
// compacted id space of a node's local sub-instance. f must be
// injective; the mapped ids must preserve the original order if callers
// rely on Dests being sorted.
func (ds *DestSample) Remap(f func(j int) int) *DestSample {
	out := *ds
	out.Dests = make([]int, len(ds.Dests))
	for i, j := range ds.Dests {
		out.Dests[i] = f(j)
	}
	return &out
}

// certaintyStratum marks a destination included with probability 1
// outside the random draw: exact contribution, no variance term.
const certaintyStratum = -1

// EnsureCertain returns a copy of the sample with the given ids forced
// in as certainty inclusions (π = 1): their values enter the estimate
// exactly and contribute no variance, and ids the random draw had
// already picked are re-weighted to 1. The forced ids form an exact
// stratum and the rest of the draw keeps its inclusion probabilities;
// for the without-replacement strategies the original strata still
// count the forced ids in their populations, an O(|ids|/n) expansion
// remainder that cancels in paired comparisons (the scale engine's
// only use). The scale engine forces each node's current
// neighbors in so that dropping a rarely-sampled neighbor's last link
// is always priced instead of being invisible in most epochs.
func (ds *DestSample) EnsureCertain(ids []int) *DestSample {
	force := map[int]bool{}
	for _, j := range ids {
		force[j] = true
	}
	out := *ds
	out.Dests = make([]int, 0, len(ds.Dests)+len(ids))
	out.InvProb = make([]float64, 0, cap(out.Dests))
	if ds.stratumOf != nil {
		out.stratumOf = make([]int, 0, cap(out.Dests))
		// The variance bookkeeping must follow the reclassification:
		// a drawn member moved to the certainty stratum leaves both its
		// stratum's sample and (for the finite-population correction)
		// its population.
		out.popN = append([]int(nil), ds.popN...)
		out.samN = append([]int(nil), ds.samN...)
	}
	for i, j := range ds.Dests {
		out.Dests = append(out.Dests, j)
		if force[j] {
			out.InvProb = append(out.InvProb, 1)
			if ds.stratumOf != nil {
				out.stratumOf = append(out.stratumOf, certaintyStratum)
				if h := ds.stratumOf[i]; h != certaintyStratum {
					out.samN[h]--
					out.popN[h]--
				}
			}
			delete(force, j)
		} else {
			out.InvProb = append(out.InvProb, ds.InvProb[i])
			if ds.stratumOf != nil {
				out.stratumOf = append(out.stratumOf, ds.stratumOf[i])
			}
		}
	}
	for _, j := range ids {
		if !force[j] {
			continue
		}
		out.Dests = append(out.Dests, j)
		out.InvProb = append(out.InvProb, 1)
		if ds.stratumOf != nil {
			out.stratumOf = append(out.stratumOf, certaintyStratum)
			// An undrawn forced id also leaves the population it would
			// have been sampled from; its stratum is only identifiable
			// in the single-stratum (Uniform) case. For Stratified the
			// uncorrected population overcounts by O(|ids|) — a slight
			// widening of the finite-population correction, which is
			// the conservative direction.
			if len(out.popN) == 1 {
				out.popN[0]--
			}
		}
	}
	sortSampleByDest(&out)
	return &out
}

// sortSampleByDest re-sorts the parallel sample arrays by destination
// id.
func sortSampleByDest(ds *DestSample) {
	idx := make([]int, len(ds.Dests))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ds.Dests[idx[a]] < ds.Dests[idx[b]] })
	dests := make([]int, len(idx))
	inv := make([]float64, len(idx))
	var strata []int
	if ds.stratumOf != nil {
		strata = make([]int, len(idx))
	}
	for pos, i := range idx {
		dests[pos] = ds.Dests[i]
		inv[pos] = ds.InvProb[i]
		if strata != nil {
			strata[pos] = ds.stratumOf[i]
		}
	}
	ds.Dests, ds.InvProb = dests, inv
	if strata != nil {
		ds.stratumOf = strata
	}
}
