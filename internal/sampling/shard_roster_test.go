package sampling

import (
	"math/rand"
	"testing"
)

// TestDrawFromShardAssembledRoster pins the property the scale
// engine's shard layer relies on for unbiasedness: DrawFrom depends
// only on the roster's contents, so an alive roster assembled by
// concatenating per-shard contiguous id bands draws the identical
// sample — destinations AND Horvitz–Thompson weights — as the global
// sorted roster, for every strategy.
func TestDrawFromShardAssembledRoster(t *testing.T) {
	const n, shards = 300, 4
	// Alive set with gaps (every multiple of 7 departed).
	var global []int
	for v := 0; v < n; v++ {
		if v%7 != 0 {
			global = append(global, v)
		}
	}
	// Shard-assembled copy: band s owns [s·n/S, (s+1)·n/S); concatenating
	// the bands in shard order reproduces the sorted roster.
	var assembled []int
	for s := 0; s < shards; s++ {
		lo, hi := s*n/shards, (s+1)*n/shards
		for _, v := range global {
			if v >= lo && v < hi {
				assembled = append(assembled, v)
			}
		}
	}
	pref := make([]float64, n)
	direct := make([]float64, n)
	for v := 0; v < n; v++ {
		pref[v] = 1 + float64(v%9)
		direct[v] = 1 + float64((v*13)%41)
	}
	for _, spec := range []Spec{
		{Strategy: Uniform, M: 40},
		{Strategy: Demand, M: 40},
		{Strategy: Stratified, M: 40},
	} {
		const self = 11
		a, err := spec.DrawFrom(rand.New(rand.NewSource(77)), self, global, pref, direct)
		if err != nil {
			t.Fatalf("%v: %v", spec, err)
		}
		b, err := spec.DrawFrom(rand.New(rand.NewSource(77)), self, assembled, pref, direct)
		if err != nil {
			t.Fatalf("%v: %v", spec, err)
		}
		if len(a.Dests) != len(b.Dests) {
			t.Fatalf("%v: sample sizes differ: %d vs %d", spec, len(a.Dests), len(b.Dests))
		}
		for x := range a.Dests {
			if a.Dests[x] != b.Dests[x] || a.InvProb[x] != b.InvProb[x] {
				t.Fatalf("%v: draw diverged at %d: (%d, %v) vs (%d, %v)",
					spec, x, a.Dests[x], a.InvProb[x], b.Dests[x], b.InvProb[x])
			}
		}
	}
}
