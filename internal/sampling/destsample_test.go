package sampling

import (
	"math"
	"math/rand"
	"testing"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
		ok   bool
	}{
		{"uniform:100", Spec{Uniform, 100}, true},
		{"demand:500", Spec{Demand, 500}, true},
		{"strat:64", Spec{Stratified, 64}, true},
		{"stratified:64", Spec{Stratified, 64}, true},
		{"demand", Spec{}, false},
		{"demand:0", Spec{}, false},
		{"demand:-3", Spec{}, false},
		{"bogus:10", Spec{}, false},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if c.ok != (err == nil) {
			t.Fatalf("ParseSpec(%q): err = %v, want ok=%v", c.in, err, c.ok)
		}
		if c.ok && got != c.want {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	if s := (Spec{Demand, 500}).String(); s != "demand:500" {
		t.Fatalf("Spec.String() = %q", s)
	}
}

// population builds a deterministic test population: per-destination
// values, preferences and direct costs with realistic skew.
func population(n int, seed int64) (y, pref, direct []float64) {
	rng := rand.New(rand.NewSource(seed))
	y = make([]float64, n)
	pref = make([]float64, n)
	direct = make([]float64, n)
	for j := range y {
		y[j] = 5 + 40*rng.Float64()
		pref[j] = math.Exp(rng.NormFloat64()) // lognormal demand skew
		direct[j] = 1 + 99*rng.Float64()
	}
	return
}

// TestEstimatorUnbiased checks that, averaged over many independent
// draws, the HT estimate matches the true population total for every
// strategy, and that the 95% band covers the truth at roughly the
// nominal rate.
func TestEstimatorUnbiased(t *testing.T) {
	const n, self, m, trials = 400, 7, 60, 400
	y, pref, direct := population(n, 1)
	truth := 0.0
	for j := 0; j < n; j++ {
		if j != self {
			truth += y[j]
		}
	}
	for _, spec := range []Spec{{Uniform, m}, {Demand, m}, {Stratified, m}} {
		rng := rand.New(rand.NewSource(42))
		sum := 0.0
		covered := 0
		for trial := 0; trial < trials; trial++ {
			ds, err := spec.Draw(rng, self, n, pref, direct)
			if err != nil {
				t.Fatalf("%v: %v", spec, err)
			}
			est := ds.Estimate(func(j int) float64 { return y[j] })
			sum += est.Total
			if est.Contains(truth) {
				covered++
			}
			for i, j := range ds.Dests {
				if j == self || j < 0 || j >= n {
					t.Fatalf("%v: bad destination %d", spec, j)
				}
				if ds.InvProb[i] < 1 {
					t.Fatalf("%v: inverse probability %f < 1", spec, ds.InvProb[i])
				}
				if i > 0 && ds.Dests[i-1] >= j {
					t.Fatalf("%v: destinations not sorted/distinct", spec)
				}
			}
		}
		mean := sum / trials
		if rel := math.Abs(mean-truth) / truth; rel > 0.02 {
			t.Errorf("%v: mean estimate %.1f vs truth %.1f (rel err %.3f)", spec, mean, truth, rel)
		}
		if rate := float64(covered) / trials; rate < 0.88 {
			t.Errorf("%v: 95%% band covered truth in only %.0f%% of draws", spec, rate*100)
		}
	}
}

// TestDemandTargetsHighPref checks the demand draw includes the heavy
// destinations (the ones dominating the objective) essentially always.
func TestDemandTargetsHighPref(t *testing.T) {
	const n, self, m = 300, 0, 40
	pref := make([]float64, n)
	for j := range pref {
		pref[j] = 0.1
	}
	heavy := []int{17, 99, 250}
	for _, j := range heavy {
		pref[j] = 100
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		ds, err := Spec{Demand, m}.Draw(rng, self, n, pref, nil)
		if err != nil {
			t.Fatal(err)
		}
		have := map[int]bool{}
		for _, j := range ds.Dests {
			have[j] = true
		}
		for _, j := range heavy {
			if !have[j] {
				t.Fatalf("trial %d: heavy destination %d not sampled", trial, j)
			}
		}
	}
}

// TestStratifiedCoversAllBands checks the stratified draw picks
// destinations from every distance band of a strongly clustered cost
// distribution (the case uniform sampling fumbles).
func TestStratifiedCoversAllBands(t *testing.T) {
	const n, self, m = 400, 5, 32
	direct := make([]float64, n)
	for j := range direct {
		switch j % 4 {
		case 0:
			direct[j] = 1
		case 1:
			direct[j] = 10
		case 2:
			direct[j] = 100
		default:
			direct[j] = 1000
		}
	}
	rng := rand.New(rand.NewSource(4))
	ds, err := Spec{Stratified, m}.Draw(rng, self, n, nil, direct)
	if err != nil {
		t.Fatal(err)
	}
	var bands [4]int
	for _, j := range ds.Dests {
		switch {
		case direct[j] <= 1:
			bands[0]++
		case direct[j] <= 10:
			bands[1]++
		case direct[j] <= 100:
			bands[2]++
		default:
			bands[3]++
		}
	}
	for b, c := range bands {
		if c == 0 {
			t.Fatalf("distance band %d not covered: %v", b, bands)
		}
	}
}

// TestDemandExtremeSkew covers the water-filling edge case where the
// certainty set alone reaches the target size: the dominant
// destinations must stay in the sample with π=1 instead of the rescale
// collapsing every inclusion probability to zero.
func TestDemandExtremeSkew(t *testing.T) {
	const n, self, m = 100, 0, 2
	pref := make([]float64, n) // zero demand everywhere...
	pref[10], pref[20] = 1e6, 1e6
	rng := rand.New(rand.NewSource(8))
	ds, err := Spec{Demand, m}.Draw(rng, self, n, pref, nil)
	if err != nil {
		t.Fatal(err)
	}
	have := map[int]float64{}
	for i, j := range ds.Dests {
		have[j] = ds.InvProb[i]
	}
	for _, j := range []int{10, 20} {
		w, ok := have[j]
		if !ok {
			t.Fatalf("dominant destination %d not sampled: %v", j, ds.Dests)
		}
		if w != 1 {
			t.Fatalf("dominant destination %d should be a certainty inclusion, weight %f", j, w)
		}
	}
}

// TestEnsureCertain checks forced inclusions enter exactly and the
// estimator stays consistent.
func TestEnsureCertain(t *testing.T) {
	y, pref, direct := population(120, 3)
	for _, spec := range []Spec{{Uniform, 20}, {Demand, 20}, {Stratified, 20}} {
		rng := rand.New(rand.NewSource(6))
		base, err := spec.Draw(rng, 0, 120, pref, direct)
		if err != nil {
			t.Fatal(err)
		}
		forced := []int{5, 50, base.Dests[0]} // one likely-absent, one overlap
		ds := base.EnsureCertain(forced)
		have := map[int]float64{}
		for i, j := range ds.Dests {
			if i > 0 && ds.Dests[i-1] >= j {
				t.Fatalf("%v: not sorted/distinct after EnsureCertain", spec)
			}
			have[j] = ds.InvProb[i]
		}
		for _, j := range forced {
			if have[j] != 1 {
				t.Fatalf("%v: forced %d has weight %f, want 1", spec, j, have[j])
			}
		}
		est := ds.Estimate(func(j int) float64 { return y[j] })
		if est.StdErr < 0 || est.Total <= 0 {
			t.Fatalf("%v: degenerate estimate %+v", spec, est)
		}
	}
}

// TestDrawDeterminism checks equal seeds give equal samples.
func TestDrawDeterminism(t *testing.T) {
	_, pref, direct := population(200, 9)
	for _, spec := range []Spec{{Uniform, 30}, {Demand, 30}, {Stratified, 30}} {
		a, err := spec.Draw(rand.New(rand.NewSource(7)), 3, 200, pref, direct)
		if err != nil {
			t.Fatal(err)
		}
		b, err := spec.Draw(rand.New(rand.NewSource(7)), 3, 200, pref, direct)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Dests) != len(b.Dests) {
			t.Fatalf("%v: nondeterministic sample size", spec)
		}
		for i := range a.Dests {
			if a.Dests[i] != b.Dests[i] || a.InvProb[i] != b.InvProb[i] {
				t.Fatalf("%v: nondeterministic draw", spec)
			}
		}
	}
}

// TestDrawFullRoster checks m >= population degenerates to the exact
// full-roster "sample" with unit weights (no variance).
func TestDrawFullRoster(t *testing.T) {
	y, pref, direct := population(20, 2)
	truth := 0.0
	for j := 0; j < 20; j++ {
		if j != 4 {
			truth += y[j]
		}
	}
	for _, spec := range []Spec{{Uniform, 19}, {Demand, 50}} {
		ds, err := spec.Draw(rand.New(rand.NewSource(1)), 4, 20, pref, direct)
		if err != nil {
			t.Fatal(err)
		}
		if len(ds.Dests) != 19 {
			t.Fatalf("%v: got %d dests, want 19", spec, len(ds.Dests))
		}
		est := ds.Estimate(func(j int) float64 { return y[j] })
		if math.Abs(est.Total-truth) > 1e-9 || est.StdErr > 1e-9 {
			t.Fatalf("%v: full roster should be exact: %+v vs %f", spec, est, truth)
		}
	}
}

// TestDrawFromSubsetOnly checks every strategy's masked draw stays
// inside the given id subset and never includes self — the alive-roster
// contract of the scale engine under churn.
func TestDrawFromSubsetOnly(t *testing.T) {
	const n = 200
	_, pref, direct := population(n, 3)
	var ids []int
	inIDs := map[int]bool{}
	for j := 0; j < n; j += 3 { // every third node is alive
		ids = append(ids, j)
		inIDs[j] = true
	}
	self := ids[10]
	for _, spec := range []Spec{{Uniform, 20}, {Demand, 20}, {Stratified, 20}} {
		ds, err := spec.DrawFrom(rand.New(rand.NewSource(7)), self, ids, pref, direct)
		if err != nil {
			t.Fatalf("%v: %v", spec, err)
		}
		if len(ds.Dests) == 0 {
			t.Fatalf("%v: empty draw", spec)
		}
		for _, j := range ds.Dests {
			if !inIDs[j] {
				t.Fatalf("%v: drew %d outside the subset", spec, j)
			}
			if j == self {
				t.Fatalf("%v: drew self", spec)
			}
		}
	}
}

// TestDrawFromUnbiased checks the HT estimate over a masked draw
// targets the subset total (not the full-range total), within a few
// percent over many repetitions.
func TestDrawFromUnbiased(t *testing.T) {
	const n = 300
	y, pref, direct := population(n, 5)
	var ids []int
	for j := 0; j < n; j++ {
		if j%2 == 0 {
			ids = append(ids, j)
		}
	}
	self := ids[0]
	truth := 0.0
	for _, j := range ids {
		if j != self {
			truth += y[j]
		}
	}
	for _, spec := range []Spec{{Uniform, 30}, {Demand, 30}, {Stratified, 30}} {
		rng := rand.New(rand.NewSource(11))
		const reps = 400
		sum := 0.0
		for r := 0; r < reps; r++ {
			ds, err := spec.DrawFrom(rng, self, ids, pref, direct)
			if err != nil {
				t.Fatalf("%v: %v", spec, err)
			}
			sum += ds.Estimate(func(j int) float64 { return y[j] }).Total
		}
		mean := sum / reps
		if rel := math.Abs(mean-truth) / truth; rel > 0.05 {
			t.Errorf("%v: mean estimate %f vs subset total %f (rel err %.3f)", spec, mean, truth, rel)
		}
	}
}

// TestDrawFromTiny covers the degenerate sub-populations: one node
// besides self works, self-only errors.
func TestDrawFromTiny(t *testing.T) {
	_, pref, direct := population(10, 1)
	ds, err := (Spec{Uniform, 5}).DrawFrom(rand.New(rand.NewSource(1)), 3, []int{3, 7}, pref, direct)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Dests) != 1 || ds.Dests[0] != 7 {
		t.Fatalf("draw over {3,7}\\{3} = %v, want [7]", ds.Dests)
	}
	if _, err := (Spec{Uniform, 5}).DrawFrom(rand.New(rand.NewSource(1)), 3, []int{3}, pref, direct); err == nil {
		t.Fatal("self-only sub-population accepted")
	}
}
