// Package sampling implements the scalability techniques of Sect. 5:
// computing best responses on a sample of the residual graph instead of
// the whole node set. It provides unbiased random sampling and the
// topology-based biased sampling (BRtp) that ranks candidates by
//
//	b_ij = |F(v_j)| / Σ_{u ∈ F(v_j)} d(v_i, u)
//
// where F(v_j) is v_j's r-hop out-neighborhood: good candidates have large
// neighborhoods whose members are close to the sampling node.
package sampling

import (
	"fmt"
	"math/rand"
	"sort"

	"egoist/internal/graph"
)

// Random draws m distinct candidates uniformly at random.
// It returns all candidates when m >= len(candidates).
func Random(rng *rand.Rand, candidates []int, m int) []int {
	if m >= len(candidates) {
		out := append([]int(nil), candidates...)
		sort.Ints(out)
		return out
	}
	idx := rng.Perm(len(candidates))[:m]
	out := make([]int, 0, m)
	for _, i := range idx {
		out = append(out, candidates[i])
	}
	sort.Ints(out)
	return out
}

// BiasedConfig parameterizes topology-based biased sampling.
type BiasedConfig struct {
	// M is the final sample size handed to the BR computation.
	M int
	// MPrime is the number of random pre-samples the topological filter
	// ranks (m' > m). Zero defaults to 2·M.
	MPrime int
	// Radius is the neighborhood radius r. Zero defaults to 2, the value
	// used in the paper's simulations.
	Radius int
}

func (c BiasedConfig) mPrime() int {
	if c.MPrime <= 0 {
		return 2 * c.M
	}
	return c.MPrime
}

func (c BiasedConfig) radius() int {
	if c.Radius <= 0 {
		return 2
	}
	return c.Radius
}

// Biased draws cfg.MPrime random candidates and keeps the cfg.M with the
// highest ranking b_ij computed over the residual graph g (which must not
// contain the sampling node's own out-links). direct[u] is the sampling
// node's measured or estimated distance to u, used for the Σ d(v_i, u)
// denominator. Candidates with empty neighborhoods rank last.
func Biased(rng *rand.Rand, g *graph.Digraph, candidates []int, direct []float64, cfg BiasedConfig) ([]int, error) {
	if cfg.M <= 0 {
		return nil, fmt.Errorf("sampling: non-positive sample size %d", cfg.M)
	}
	if len(direct) != g.N() {
		return nil, fmt.Errorf("sampling: direct has %d entries, want %d", len(direct), g.N())
	}
	pre := Random(rng, candidates, cfg.mPrime())
	type ranked struct {
		node  int
		score float64
	}
	rs := make([]ranked, 0, len(pre))
	for _, j := range pre {
		rs = append(rs, ranked{node: j, score: Rank(g, j, direct, cfg.radius())})
	}
	sort.SliceStable(rs, func(a, b int) bool { return rs[a].score > rs[b].score })
	m := cfg.M
	if m > len(rs) {
		m = len(rs)
	}
	out := make([]int, 0, m)
	for _, r := range rs[:m] {
		out = append(out, r.node)
	}
	sort.Ints(out)
	return out, nil
}

// Rank computes the ranking function b_ij for candidate j: neighborhood
// size divided by the total distance from the sampling node to the
// neighborhood's members. A candidate with no reachable neighbors scores 0.
func Rank(g *graph.Digraph, j int, direct []float64, radius int) float64 {
	members := graph.Neighborhood(g, j, radius)
	if len(members) == 0 {
		return 0
	}
	sum := 0.0
	for _, u := range members {
		sum += direct[u]
	}
	if sum <= 0 {
		return 0
	}
	return float64(len(members)) / sum
}
