package sampling

import (
	"math/rand"
	"testing"
)

// TestRemapPreservesWeights pins the contract the scale engine's local
// sub-instances rely on: Remap translates destination ids through an
// injective map while leaving the HT weights and variance bookkeeping
// untouched, and never mutates the original sample.
func TestRemapPreservesWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	spec := Spec{Strategy: Demand, M: 12}
	pref := make([]float64, 40)
	for j := range pref {
		pref[j] = 1 + float64(j%5)
	}
	ds, err := spec.Draw(rng, 0, 40, pref, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Strategy() != Demand {
		t.Fatalf("Strategy() = %v, want %v", ds.Strategy(), Demand)
	}
	origDests := append([]int(nil), ds.Dests...)
	mapped := ds.Remap(func(j int) int { return j + 1000 })
	if len(mapped.Dests) != len(origDests) {
		t.Fatalf("Remap changed sample size: %d -> %d", len(origDests), len(mapped.Dests))
	}
	for i, j := range origDests {
		if mapped.Dests[i] != j+1000 {
			t.Fatalf("dest %d mapped to %d, want %d", j, mapped.Dests[i], j+1000)
		}
		if ds.Dests[i] != j {
			t.Fatalf("Remap mutated the original sample at %d", i)
		}
		if mapped.InvProb[i] != ds.InvProb[i] {
			t.Fatalf("Remap changed weight %d: %v -> %v", i, ds.InvProb[i], mapped.InvProb[i])
		}
	}
}

func TestStrategyString(t *testing.T) {
	names := map[Strategy]string{Uniform: "uniform", Demand: "demand", Stratified: "strat"}
	for s, want := range names {
		if got := s.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
	if got := Strategy(42).String(); got != "Strategy(42)" {
		t.Fatalf("unknown strategy prints %q", got)
	}
}
