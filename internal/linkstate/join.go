package linkstate

import (
	"encoding/binary"
	"fmt"
)

// Bootstrap message types (Sect. 3.1: a newcomer queries a bootstrap node
// and receives a list of potential overlay neighbors).
const (
	// TypeJoin asks a bootstrap node for the current membership.
	TypeJoin = 7
	// TypeJoinReply carries the bootstrap node's known member list.
	TypeJoinReply = 8
)

// JoinReply is a bootstrap response listing known overlay members.
type JoinReply struct {
	From    uint16
	Members []uint16
}

// maxJoinMembers bounds the member list in one reply datagram.
const maxJoinMembers = 1024

// MarshalJoin encodes a join request from the given node.
func MarshalJoin(from uint16) []byte {
	return (&Control{Type: TypeJoin, From: from}).Marshal()
}

// Marshal encodes the reply.
func (r *JoinReply) Marshal() ([]byte, error) {
	if len(r.Members) > maxJoinMembers {
		return nil, fmt.Errorf("linkstate: %d members exceeds %d", len(r.Members), maxJoinMembers)
	}
	buf := make([]byte, 8+2*len(r.Members))
	binary.BigEndian.PutUint16(buf[0:], magic)
	buf[2] = 1
	buf[3] = TypeJoinReply
	binary.BigEndian.PutUint16(buf[4:], r.From)
	binary.BigEndian.PutUint16(buf[6:], uint16(len(r.Members)))
	for i, m := range r.Members {
		binary.BigEndian.PutUint16(buf[8+2*i:], m)
	}
	return buf, nil
}

// UnmarshalJoinReply decodes a bootstrap reply.
func UnmarshalJoinReply(data []byte) (*JoinReply, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("linkstate: short join reply")
	}
	if binary.BigEndian.Uint16(data[0:]) != magic || data[2] != 1 || data[3] != TypeJoinReply {
		return nil, fmt.Errorf("linkstate: not a join reply")
	}
	count := int(binary.BigEndian.Uint16(data[6:]))
	if len(data) != 8+2*count {
		return nil, fmt.Errorf("linkstate: join reply length %d, want %d", len(data), 8+2*count)
	}
	r := &JoinReply{From: binary.BigEndian.Uint16(data[4:])}
	for i := 0; i < count; i++ {
		r.Members = append(r.Members, binary.BigEndian.Uint16(data[8+2*i:]))
	}
	return r, nil
}
