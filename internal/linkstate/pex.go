package linkstate

import (
	"encoding/binary"
	"fmt"
	"net"
)

// TypePEX is a gossip peer-exchange message.
const TypePEX = 9

// The PEX bootstrap protocol
//
// The static roster of cmd/egoistd does not survive real deployments:
// a node joining a running overlay knows only one or two rendezvous
// addresses, and a node that restarts comes back at an address nobody
// re-reads from a file. Peer exchange (PEX) replaces the roster with
// three rules, all carried by the one TypePEX message below:
//
//  1. Learn by hearing. A node that receives any control-plane message
//     whose From field names the immediate sender (Hello, Echo, Join,
//     PEX — never a flooded LSA, whose Origin is not the sender)
//     registers the claimed id at the datagram's source address. A
//     rendezvous node therefore needs no prior knowledge of a
//     newcomer: the newcomer's TypeJoin teaches the rendezvous its
//     address, and the JoinReply + PeerList answer teaches the
//     newcomer the membership.
//
//  2. Push on announce. Every LSA re-broadcast period the node sends
//     its PeerList — a bounded sample of its address book, self
//     included — to a few (pexFanout) randomly chosen known peers.
//     Membership thus spreads epidemically: with fanout f a new
//     address reaches n nodes in O(log_f n) announce periods.
//
//  3. Last write wins. Register overwrites the address of a known id,
//     so a node that restarts on a new address supersedes its stale
//     entry wherever its next announcement (or a gossiped PeerList
//     that includes it) lands.
//
// Addresses are claimed, not verified — the protocol trusts its
// transport domain, which for the lab harness is a single machine's
// loopback. A wide-area deployment would authenticate announcements;
// that is out of scope here, as in the paper's own deployment.
//
// Wire format: the 8-byte header magic(2) version(1) type(1) from(2)
// count(2), then count 8-byte entries id(2) ipv4(4) port(2).

// pexHeaderBytes is the PeerList wire header size.
const pexHeaderBytes = 8

// pexEntryBytes is the wire size of one PeerAddr.
const pexEntryBytes = 8

// MaxPexPeers bounds the entries in one PeerList datagram (2 KB of
// entries — comfortably inside one loopback UDP datagram).
const MaxPexPeers = 256

// PeerAddr is one gossiped membership entry: a node id and its IPv4
// UDP address.
type PeerAddr struct {
	ID   uint16
	IP   [4]byte
	Port uint16
}

// UDPAddr converts the entry to a net address.
func (p PeerAddr) UDPAddr() *net.UDPAddr {
	return &net.UDPAddr{IP: net.IPv4(p.IP[0], p.IP[1], p.IP[2], p.IP[3]), Port: int(p.Port)}
}

// PeerAddrOf packs a net address into a gossip entry; ok is false for
// non-IPv4 addresses (which PEX does not carry).
func PeerAddrOf(id int, addr *net.UDPAddr) (PeerAddr, bool) {
	if addr == nil || id < 0 || id > int(^uint16(0)) {
		return PeerAddr{}, false
	}
	ip4 := addr.IP.To4()
	if ip4 == nil || addr.Port <= 0 || addr.Port > 65535 {
		return PeerAddr{}, false
	}
	p := PeerAddr{ID: uint16(id), Port: uint16(addr.Port)}
	copy(p.IP[:], ip4)
	return p, true
}

// PeerList is the TypePEX payload: a bounded sample of the sender's
// address book.
type PeerList struct {
	From  uint16
	Peers []PeerAddr
}

// Marshal encodes the peer list.
func (p *PeerList) Marshal() ([]byte, error) {
	if len(p.Peers) > MaxPexPeers {
		return nil, fmt.Errorf("linkstate: %d pex entries exceeds %d", len(p.Peers), MaxPexPeers)
	}
	buf := make([]byte, pexHeaderBytes+pexEntryBytes*len(p.Peers))
	binary.BigEndian.PutUint16(buf[0:], magic)
	buf[2] = 1
	buf[3] = TypePEX
	binary.BigEndian.PutUint16(buf[4:], p.From)
	binary.BigEndian.PutUint16(buf[6:], uint16(len(p.Peers)))
	off := pexHeaderBytes
	for _, e := range p.Peers {
		binary.BigEndian.PutUint16(buf[off:], e.ID)
		copy(buf[off+2:off+6], e.IP[:])
		binary.BigEndian.PutUint16(buf[off+6:], e.Port)
		off += pexEntryBytes
	}
	return buf, nil
}

// UnmarshalPeerList decodes a TypePEX message.
func UnmarshalPeerList(data []byte) (*PeerList, error) {
	if len(data) < pexHeaderBytes {
		return nil, fmt.Errorf("linkstate: short pex message (%d bytes)", len(data))
	}
	if binary.BigEndian.Uint16(data[0:]) != magic || data[2] != 1 || data[3] != TypePEX {
		return nil, fmt.Errorf("linkstate: not a pex message")
	}
	count := int(binary.BigEndian.Uint16(data[6:]))
	if count > MaxPexPeers {
		return nil, fmt.Errorf("linkstate: pex count %d exceeds %d", count, MaxPexPeers)
	}
	if len(data) != pexHeaderBytes+pexEntryBytes*count {
		return nil, fmt.Errorf("linkstate: pex length %d, want %d for %d entries",
			len(data), pexHeaderBytes+pexEntryBytes*count, count)
	}
	p := &PeerList{From: binary.BigEndian.Uint16(data[4:])}
	off := pexHeaderBytes
	for i := 0; i < count; i++ {
		var e PeerAddr
		e.ID = binary.BigEndian.Uint16(data[off:])
		copy(e.IP[:], data[off+2:off+6])
		e.Port = binary.BigEndian.Uint16(data[off+6:])
		p.Peers = append(p.Peers, e)
		off += pexEntryBytes
	}
	return p, nil
}

// AddressBook is the mutable id→address view a PEX-capable transport
// exposes to the overlay node: Register folds learned (or superseding)
// addresses in, Peers snapshots the book for gossip. UDPTransport
// implements it; the in-memory Bus has no addresses and PEX-less
// deployments leave the node's book nil.
type AddressBook interface {
	Register(id int, addr *net.UDPAddr)
	Peers() []PeerAddr
}
