// Package linkstate implements EGOIST's overlay link-state routing
// protocol (Sect. 3.1, 4.3): every node periodically broadcasts a
// link-state announcement (LSA) carrying its ID and the IDs and costs of
// its k established links; flooding disseminates LSAs so each node learns
// the full residual graph G−i. The wire format matches the paper's
// accounting: a 192-bit header plus 32 bits per neighbor.
//
// The protocol is transport-agnostic: the same node logic runs over the
// in-memory transport (simulations, tests) and over UDP (the live
// deployment in cmd/egoistd).
package linkstate

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Message types.
const (
	// TypeLSA is a link-state announcement.
	TypeLSA = 1
	// TypeHello is a heartbeat probing a donated (backbone) link.
	TypeHello = 2
	// TypeHelloAck acknowledges a Hello.
	TypeHelloAck = 3
	// TypeEcho is an application-level ping used for delay measurement.
	TypeEcho = 4
	// TypeEchoReply answers an Echo.
	TypeEchoReply = 5
)

// HeaderBytes is the LSA header size: 192 bits per Sect. 4.3.
const HeaderBytes = 24

// NeighborBytes is the per-neighbor payload size: 32 bits per Sect. 4.3.
const NeighborBytes = 4

const magic = 0xE601

// costUnit is the fixed-point resolution of announced costs (0.1 ms or
// 0.1 Mbps per tick).
const costUnit = 0.1

// maxCost is the largest representable announced cost.
const maxCost = costUnit * float64(math.MaxUint16)

// Neighbor is one announced link.
type Neighbor struct {
	ID   uint16
	Cost float64
}

// LSA is a link-state announcement from one node.
type LSA struct {
	Origin    uint16
	Seq       uint64
	Neighbors []Neighbor
}

// Size returns the encoded size in bytes.
func (l *LSA) Size() int { return HeaderBytes + NeighborBytes*len(l.Neighbors) }

// SizeBits returns the encoded size in bits, the unit of the paper's
// overhead formulas.
func (l *LSA) SizeBits() int { return 8 * l.Size() }

// Marshal encodes the LSA in the 24-byte-header + 4-bytes-per-neighbor
// wire format. Costs saturate at the fixed-point maximum.
func (l *LSA) Marshal() []byte {
	buf := make([]byte, l.Size())
	binary.BigEndian.PutUint16(buf[0:], magic)
	buf[2] = 1 // version
	buf[3] = TypeLSA
	binary.BigEndian.PutUint32(buf[4:], uint32(l.Origin))
	binary.BigEndian.PutUint64(buf[8:], l.Seq)
	binary.BigEndian.PutUint16(buf[16:], uint16(len(l.Neighbors)))
	// buf[18:24] is padding, part of the 192-bit header budget.
	off := HeaderBytes
	for _, nb := range l.Neighbors {
		binary.BigEndian.PutUint16(buf[off:], nb.ID)
		binary.BigEndian.PutUint16(buf[off+2:], encodeCost(nb.Cost))
		off += NeighborBytes
	}
	return buf
}

// UnmarshalLSA decodes an LSA, validating magic, version, type, and length.
func UnmarshalLSA(data []byte) (*LSA, error) {
	if len(data) < HeaderBytes {
		return nil, fmt.Errorf("linkstate: short LSA (%d bytes)", len(data))
	}
	if binary.BigEndian.Uint16(data[0:]) != magic {
		return nil, fmt.Errorf("linkstate: bad magic")
	}
	if data[2] != 1 {
		return nil, fmt.Errorf("linkstate: unsupported version %d", data[2])
	}
	if data[3] != TypeLSA {
		return nil, fmt.Errorf("linkstate: not an LSA (type %d)", data[3])
	}
	count := int(binary.BigEndian.Uint16(data[16:]))
	want := HeaderBytes + NeighborBytes*count
	if len(data) != want {
		return nil, fmt.Errorf("linkstate: LSA length %d, want %d for %d neighbors", len(data), want, count)
	}
	l := &LSA{
		Origin: uint16(binary.BigEndian.Uint32(data[4:])),
		Seq:    binary.BigEndian.Uint64(data[8:]),
	}
	off := HeaderBytes
	for i := 0; i < count; i++ {
		l.Neighbors = append(l.Neighbors, Neighbor{
			ID:   binary.BigEndian.Uint16(data[off:]),
			Cost: decodeCost(binary.BigEndian.Uint16(data[off+2:])),
		})
		off += NeighborBytes
	}
	return l, nil
}

func encodeCost(c float64) uint16 {
	if c < 0 || math.IsNaN(c) {
		return 0
	}
	if c >= maxCost {
		return math.MaxUint16
	}
	return uint16(c/costUnit + 0.5)
}

func decodeCost(u uint16) float64 { return float64(u) * costUnit }

// Control is a small fixed-size control message (hello, echo).
type Control struct {
	Type  byte
	From  uint16
	Token uint64 // sequence or timestamp payload
}

// controlBytes is the control message wire size.
const controlBytes = 16

// Marshal encodes a control message.
func (c *Control) Marshal() []byte {
	buf := make([]byte, controlBytes)
	binary.BigEndian.PutUint16(buf[0:], magic)
	buf[2] = 1
	buf[3] = c.Type
	binary.BigEndian.PutUint16(buf[4:], c.From)
	binary.BigEndian.PutUint64(buf[8:], c.Token)
	return buf
}

// UnmarshalControl decodes a control message.
func UnmarshalControl(data []byte) (*Control, error) {
	if len(data) != controlBytes {
		return nil, fmt.Errorf("linkstate: control length %d, want %d", len(data), controlBytes)
	}
	if binary.BigEndian.Uint16(data[0:]) != magic {
		return nil, fmt.Errorf("linkstate: bad magic")
	}
	t := data[3]
	if (t < TypeHello || t > TypeEchoReply) && t != TypeJoin {
		return nil, fmt.Errorf("linkstate: bad control type %d", t)
	}
	return &Control{
		Type:  t,
		From:  binary.BigEndian.Uint16(data[4:]),
		Token: binary.BigEndian.Uint64(data[8:]),
	}, nil
}

// MessageType peeks at a packet's type without a full decode.
func MessageType(data []byte) (byte, error) {
	if len(data) < 4 || binary.BigEndian.Uint16(data[0:]) != magic {
		return 0, fmt.Errorf("linkstate: unrecognized packet")
	}
	return data[3], nil
}
